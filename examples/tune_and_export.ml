(* Autotune a pipeline (paper §3.8) and export the winning schedule as
   C code (paper Fig. 7):

     dune exec examples/tune_and_export.exe
     -> prints the explored configurations and writes camera_pipe.c *)

module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Tune = Polymage_tune.Tune
module Cgen = Polymage_codegen.Cgen

let () =
  let app = Apps.find "camera_pipe" in
  let env = app.small_env in
  let plan0 =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
  in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
      plan0.pipe.Polymage_ir.Pipeline.images
  in
  Format.printf "exploring tile sizes {16,32,64} x thresholds {0.2,0.4,0.5}...@.";
  let r =
    Tune.explore ~tiles:[ 16; 32; 64 ] ~workers:2 ~outputs:app.outputs ~env
      ~images ()
  in
  List.iter
    (fun (s : Tune.sample) ->
      Format.printf "  %a%s@." Tune.pp_sample s
        (if s == r.best then "   <= best" else ""))
    r.samples;
  let best = Tune.best_options r ~estimates:env ~workers:4 in
  Format.printf "best: tile %dx%d, threshold %.1f@." r.best.tile.(0)
    r.best.tile.(1) r.best.threshold;
  let plan = C.Compile.run best ~outputs:app.outputs in
  let src = Cgen.emit plan in
  let oc = open_out "camera_pipe.c" in
  output_string oc src;
  close_out oc;
  Format.printf "wrote camera_pipe.c (%d lines) — compile with:@."
    (List.length (String.split_on_char '\n' src));
  Format.printf "  gcc -O3 -fopenmp -c camera_pipe.c@.";
  Format.printf "tune-and-export OK@."
