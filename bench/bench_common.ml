(* Shared machinery for the benchmark harness: app execution, timing,
   generated-C compilation and measurement. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Cgen = Polymage_codegen.Cgen
module Toolchain = Polymage_backend.Toolchain

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_ms ?(repeats = 1) f =
  ignore (f ());
  (* warm-up *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, t = time f in
    if t < !best then best := t
  done;
  !best *. 1000.

(* Median of k runs: robust to one-sided scheduler noise, which
   best-of-k is not — a single lucky run can hide a real slowdown,
   and a single unlucky one can fake a regression.  The perf gate
   compares medians. *)
let median_ms ?(repeats = 5) f =
  ignore (f ());
  (* warm-up *)
  let ts = Array.init repeats (fun _ -> snd (time f)) in
  Array.sort compare ts;
  ts.(repeats / 2) *. 1000.

(* Benchmark-scale parameter bindings: the paper sizes divided by a
   linear factor (the interpreter back end is ~100x slower per point
   than compiled code; the generated-C measurements use the same sizes
   for comparability).  Sizes keep the divisibility the pyramids
   need. *)
let bench_env ?(scale = 4) (app : App.t) =
  let round16 v = max 32 (v / scale / 16 * 16) in
  List.map (fun (p, v) -> (p, round16 v)) app.default_env

let images_for (app : App.t) (plan : C.Plan.t) env =
  List.map
    (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
    plan.pipe.Pipeline.images

(* Native-executor time for one configuration (ms). *)
let native_ms ?repeats ?pool (app : App.t) opts env =
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let images = images_for app plan env in
  time_ms ?repeats (fun () -> Rt.Executor.run ?pool plan env ~images)

(* Same, but median-of-k — what the regression gate feeds on. *)
let native_median_ms ?repeats ?pool (app : App.t) opts env =
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let images = images_for app plan env in
  median_ms ?repeats (fun () -> Rt.Executor.run ?pool plan env ~images)

(* ---- generated-C measurements ---- *)

let c_fill (im : Ast.image) =
  let n = List.length im.iextents in
  let x = Printf.sprintf "c%d" (max 0 (n - 2)) in
  let y = if n >= 2 then Printf.sprintf "c%d" (n - 1) else "0" in
  let ch = if n >= 3 then "c0" else "0" in
  (* values in [0, 1); the camera RAW input is scaled to 10 bits *)
  let base = Printf.sprintf "((double)imod(%s*7 + %s*13 + %s*5, 32) / 32.0)" x y ch in
  if im.iname = "raw" then Printf.sprintf "(%s * 1023.0)" base else base

exception Cc_failed of string

(* Compile the plan's C with the discovered toolchain ([POLYMAGE_CC]
   honored); [run_exe] measures one thread-count setting with the
   binary's internal best-of-n timer. *)
let c_compile ?(runs = 3) ~optimize (app : App.t) opts env =
  let tc =
    match Toolchain.lookup () with
    | Some tc -> tc
    | None -> raise (Cc_failed "no working C compiler")
  in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let src = Cgen.emit_with_main ~time_runs:runs plan ~fill:c_fill ~env in
  let tmp = Filename.temp_file "pm_bench" ".c" in
  let oc = open_out tmp in
  output_string oc src;
  close_out oc;
  let exe = tmp ^ ".exe" in
  let omp = if tc.has_openmp then " -fopenmp" else "" in
  let flags =
    if optimize then "-O3 -march=native" ^ omp
    else "-O1 -fno-tree-vectorize" ^ omp
  in
  let cmd =
    Printf.sprintf "%s %s -std=gnu99 -o %s %s -lm 2>/dev/null" tc.cc flags exe
      tmp
  in
  if Sys.command cmd <> 0 then
    raise (Cc_failed (tc.cc ^ " failed on " ^ app.name));
  Sys.remove tmp;
  exe

let run_exe ?(threads = 1) exe =
  let outf = exe ^ ".out" in
  let rc =
    Sys.command (Printf.sprintf "OMP_NUM_THREADS=%d %s > %s" threads exe outf)
  in
  if rc <> 0 then raise (Cc_failed ("run failed: " ^ exe));
  let ic = open_in outf in
  let result = ref nan in
  (try
     while true do
       let l = input_line ic in
       match String.split_on_char ' ' l with
       | [ "TIME_MS"; v ] -> result := float_of_string v
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove outf;
  !result

let c_time_ms ?runs ?(optimize = true) ?(threads = 1) (app : App.t) opts env =
  let exe = c_compile ?runs ~optimize app opts env in
  Fun.protect
    ~finally:(fun () -> try Sys.remove exe with Sys_error _ -> ())
    (fun () -> run_exe ~threads exe)

(* Mini autotuner on the compiled back end (the paper's Table 2
   numbers are autotuned, §3.8); memoized per app + size. *)
let tune_menu = [ ([| 32; 256 |], 0.4); ([| 64; 512 |], 0.4);
                  ([| 256; 256 |], 0.5); ([| 32; 256 |], 0.1) ]

let tuned : (string, int array * float) Hashtbl.t = Hashtbl.create 8

let best_c_config (app : App.t) env =
  let key = app.name ^ "@" ^ String.concat "," (List.map (fun (_, v) -> string_of_int v) env) in
  match Hashtbl.find_opt tuned key with
  | Some cfg -> cfg
  | None ->
    let best = ref (nan, ([| 32; 256 |], 0.4)) in
    List.iter
      (fun (tile, th) ->
        let opts =
          C.Options.with_threshold th
            (C.Options.with_tile tile (C.Options.opt_vec ~estimates:env ()))
        in
        match c_time_ms ~optimize:true app opts env with
        | t ->
          let b, _ = !best in
          if Float.is_nan b || t < b then best := (t, (tile, th))
        | exception Cc_failed _ -> ())
      tune_menu;
    let _, cfg = !best in
    Hashtbl.replace tuned key cfg;
    cfg

(* Schema-v4 host metadata: core count, worker setting, compiler
   identity, which backend produced the numbers, and (v4) which
   execution tier — readers of older files default the tier from the
   backend. *)
let host_json ~backend ~tier ~workers =
  let compiler =
    match Toolchain.lookup () with
    | Some (tc : Toolchain.t) -> tc.version
    | None -> "none"
  in
  Printf.sprintf
    "{\"cores\": %d, \"workers\": %d, \"compiler\": \"%s\"}"
    (Domain.recommended_domain_count ())
    workers
    (String.map (fun c -> if c = '"' then '\'' else c) compiler)
  |> fun host ->
  Printf.sprintf "  \"backend\": \"%s\",\n  \"tier\": \"%s\",\n  \"host\": %s,\n"
    backend tier host

let stage_count (app : App.t) =
  Pipeline.n_stages (Pipeline.build ~outputs:app.outputs)

let env_desc env =
  String.concat "x"
    (List.map (fun ((_ : Types.param), v) -> string_of_int v) env)

let hr () = print_endline (String.make 78 '-')

let printf = Printf.printf
