(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4) plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe            -- everything, bench scale
     dune exec bench/main.exe -- --help  -- selection flags

   Numbers are produced on two back ends:
   - "native": the OCaml executor (closure-compiled, per-tile
     scratchpads, Domain pool).  ~100x slower per point than compiled
     code, used at reduced sizes; all relative comparisons (the
     paper's shape) are between native runs.
   - "C": the generated C compiled with gcc (-O1 for the non-vec
     configurations, -O3 -march=native for vec), timed inside the
     binary, mirroring the paper's methodology of timing the compiled
     output.  This machine has a single core, so multi-worker results
     measure overhead, not speedup (see EXPERIMENTS.md). *)
open Bench_common
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Poly = Polymage_poly
module Tune = Polymage_tune.Tune

let opt_workers = [ 1; 2; 4 ]

(* --safe routes executions through the degradation ladder; --fault
   arms the injector process-wide, so any bench can be exercised under
   an injected failure. *)
let safe_mode = ref false

let execute plan env ~images =
  if !safe_mode then fst (Rt.Executor.run_safe plan env ~images)
  else Rt.Executor.run plan env ~images

(* ------------------------------------------------------------------ *)
(* Table 1: the computation patterns of the DSL                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  hr ();
  printf "Table 1: computation patterns (base vs opt+vec, native, ms)\n";
  hr ();
  let open Polymage_dsl.Dsl in
  let n = 512 in
  let x = Polymage_ir.Types.var ~name:"x" ()
  and y = Polymage_ir.Types.var ~name:"y" () in
  let img = image ~name:"pat_in" Float [ ib (n + 4); ib ((2 * n) + 4) ] in
  let dom s =
    [ (x, interval (ib 0) (ib (s + 3)));
      (y, interval (ib 0) (ib ((2 * s) + 3))) ]
  in
  let interior s =
    in_box [ (v x, i 2, i s); (v y, i 2, i (2 * s)) ]
  in
  let chain name rhs_of =
    (* two stages of the pattern, so fusion has something to do *)
    let a = func ~name:(name ^ "_a") Float (dom n) in
    define a [ case (interior n) (rhs_of (fun ix iy -> img_at img [ ix; iy ])) ];
    let b = func ~name:(name ^ "_b") Float (dom n) in
    define b [ case (interior n) (rhs_of (fun ix iy -> app a [ ix; iy ])) ];
    b
  in
  let patterns =
    [
      ("point-wise", chain "pw" (fun s -> (fl 2.0 *: s (v x) (v y)) +: fl 1.));
      ( "stencil",
        chain "st" (fun s ->
            fl 0.2
            *: (s (v x -: i 1) (v y) +: s (v x +: i 1) (v y)
               +: s (v x) (v y -: i 1) +: s (v x) (v y +: i 1)
               +: s (v x) (v y))) );
    ]
  in
  let down =
    let a = func ~name:"tp_down" Float (dom (n / 2)) in
    define a
      [
        case
          (interior (n / 2))
          (fl 0.25
          *: (img_at img [ i 2 *: v x; i 2 *: v y ]
             +: img_at img [ (i 2 *: v x) +: i 1; i 2 *: v y ]
             +: img_at img [ i 2 *: v x; (i 2 *: v y) +: i 1 ]
             +: img_at img [ (i 2 *: v x) +: i 1; (i 2 *: v y) +: i 1 ]));
      ];
    a
  in
  let up =
    let half = image ~name:"pat_half" Float [ ib ((n / 2) + 4); ib (n + 4) ] in
    let a = func ~name:"tp_up" Float (dom n) in
    define a
      [ case (interior n) (upsample2 (fun idx -> img_at half idx) (v x) (v y)) ];
    a
  in
  let hist =
    let b = Polymage_ir.Types.var ~name:"b" () in
    let h = func ~name:"tp_hist" Int [ (b, interval (ib 0) (ib 255)) ] in
    let rx = Polymage_ir.Types.var ~name:"rx" ()
    and ry = Polymage_ir.Types.var ~name:"ry" () in
    accumulate h
      ~over:
        [ (rx, interval (ib 0) (ib (n + 3)));
          (ry, interval (ib 0) (ib ((2 * n) + 3))) ]
      ~index:[ floor_ (img_at img [ v rx; v ry ] *: fl 255.) ]
      ~value:(fl 1.) Polymage_ir.Ast.Rsum;
    h
  in
  let titer =
    let t = Polymage_ir.Types.var ~name:"t" () in
    let f =
      func ~name:"tp_heat" Float
        [ (t, interval (ib 0) (ib 8)); (x, interval (ib 0) (ib (n + 3))) ]
    in
    define f
      [
        case (v t =: i 0) (img_at img [ v x; i 2 ]);
        case
          ((v t >=: i 1) &&: (v x >=: i 1) &&: (v x <=: i (n + 2)))
          (fl (1. /. 3.)
          *: (app f [ v t -: i 1; v x -: i 1 ]
             +: app f [ v t -: i 1; v x ]
             +: app f [ v t -: i 1; v x +: i 1 ]));
      ];
    f
  in
  let all =
    patterns
    @ [ ("downsample", down); ("upsample", up); ("histogram", hist);
        ("time-iterated", titer) ]
  in
  printf "%-14s %10s %10s %8s\n" "pattern" "base" "opt+vec" "speedup";
  List.iter
    (fun (name, out) ->
      let env = [] in
      let images (plan : C.Plan.t) =
        List.map
          (fun im ->
            (im, Rt.Buffer.of_image im env Polymage_apps.Synth.textured))
          plan.pipe.Polymage_ir.Pipeline.images
      in
      let t_of opts =
        let plan = C.Compile.run opts ~outputs:[ out ] in
        let imgs = images plan in
        time_ms (fun () -> execute plan env ~images:imgs)
      in
      let tb = t_of (C.Options.base ~estimates:env ()) in
      let to_ = t_of (C.Options.opt_vec ~estimates:env ()) in
      printf "%-14s %10.2f %10.2f %7.2fx\n" name tb to_ (tb /. to_))
    all

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

let table2 ~scale () =
  hr ();
  printf
    "Table 2: benchmarks (bench scale: paper sizes / %d per dimension)\n"
    scale;
  printf "  native = OCaml executor; C = generated C via gcc;\n";
  printf "  library = hand-written per-stage routines (OpenCV stand-in)\n";
  hr ();
  printf "%-16s %6s %11s | %9s %9s %6s | %9s %9s %6s | %9s %6s\n" "app"
    "stages" "size" "nat base" "nat o+v" "spdup" "C base" "C opt+v" "spdup"
    "library" "vs lib";
  List.iter
    (fun (app : App.t) ->
      let env = bench_env ~scale app in
      let base = C.Options.base ~estimates:env () in
      let tile, th = best_c_config app env in
      let optv =
        C.Options.with_threshold th
          (C.Options.with_tile tile (C.Options.opt_vec ~estimates:env ()))
      in
      let nb = native_ms app base env in
      let no = native_ms app optv env in
      let cb =
        try c_time_ms ~optimize:false app base env with Cc_failed _ -> nan
      in
      let co =
        try c_time_ms ~optimize:true app optv env with Cc_failed _ -> nan
      in
      let lib =
        match Polymage_ref.Reference.for_app app with
        | None -> nan
        | Some reference ->
          ignore (reference env);
          let _, t = time (fun () -> reference env) in
          t *. 1000.
      in
      printf
        "%-16s %6d %11s | %9.1f %9.1f %5.2fx | %9.2f %9.2f %5.2fx | %9.1f %5.2fx\n"
        app.name (stage_count app) (env_desc env) nb no (nb /. no) cb co
        (cb /. co) lib (lib /. co))
    (Apps.all ());
  printf
    "\n  (opt+v uses the per-app autotuned tile/threshold; 'vs lib' is\n";
  printf "   library time / generated-C opt+vec time)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: tiling strategies — overlapped vs parallelogram            *)
(* ------------------------------------------------------------------ *)

let fig5 ~scale () =
  hr ();
  printf "Figure 5: tiling strategies (native executor)\n";
  printf
    "  overlapped: parallel tiles, scratchpad storage, redundant halo;\n";
  printf
    "  parallelogram: no redundancy, but sequential tiles and full\n";
  printf
    "  buffers; split: two-phase trapezoids, parallel within phases,\n";
  printf "  no redundancy, full buffers (paper section 3.2)\n";
  hr ();
  printf "%-16s | %13s %13s | %13s %13s | %9s %9s\n" "app" "overlap 1w"
    "overlap 4w" "parallelogram" "split" "scr cells" "full cells";
  List.iter
    (fun name ->
      let app = Apps.find name in
      let env = bench_env ~scale:(scale * 2) app in
      let opt = C.Options.opt_vec ~estimates:env () in
      let para = { opt with C.Options.tiling = C.Options.Parallelogram } in
      let split = { opt with C.Options.tiling = C.Options.Split } in
      let t_o1 = native_ms app opt env in
      let t_o4 = native_ms app { opt with C.Options.workers = 4 } env in
      let t_p = native_ms app para env in
      let t_s = native_ms app split env in
      let s_o = C.Storage.stats (C.Compile.run opt ~outputs:app.outputs) env in
      let s_p =
        (* parallelogram materializes every member *)
        C.Storage.stats
          (C.Compile.run { para with C.Options.scratchpads = false }
             ~outputs:app.outputs)
          env
      in
      printf "%-16s | %10.1f ms %10.1f ms | %10.1f ms %10.1f ms | %9d %9d\n"
        app.name t_o1 t_o4 t_p t_s s_o.C.Storage.scratch_cells
        s_p.C.Storage.full_cells)
    [ "unsharp_mask"; "harris"; "pyramid_blend" ]

(* ------------------------------------------------------------------ *)
(* Figure 6: tile shapes, tight vs over-approximated                    *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  hr ();
  printf "Figure 6: overlapped tile shapes, tight vs over-approximated\n";
  printf "  (per tiled group: overlap per canonical dim, and redundant\n";
  printf "   computation fraction at the paper's default 32x256 tile)\n";
  hr ();
  List.iter
    (fun (app : App.t) ->
      let env = app.small_env in
      let opts = C.Options.opt ~estimates:env () in
      let plan = C.Compile.run opts ~outputs:app.outputs in
      Array.iteri
        (fun k item ->
          match (item : C.Plan.item) with
          | C.Plan.Straight _ -> ()
          | C.Plan.Tiled g ->
            let show o =
              String.concat ";" (Array.to_list (Array.map string_of_int o))
            in
            let tight = Poly.Tiling.overlap g.sched in
            let naive = Poly.Tiling.overlap ~naive:true g.sched in
            let rf = Poly.Tiling.relative_overlap g.sched ~tile:[| 32; 256 |] in
            let rfn =
              Poly.Tiling.relative_overlap ~naive:true g.sched
                ~tile:[| 32; 256 |]
            in
            printf
              "%-16s group %d (%d stages): tight=[%s] naive=[%s]  redundancy %5.1f%% vs %5.1f%%\n"
              app.name k
              (Array.length g.members)
              (show tight) (show naive) (100. *. rf) (100. *. rfn))
        plan.items)
    (Apps.all ())

(* ------------------------------------------------------------------ *)
(* Figure 9: autotuning                                                 *)
(* ------------------------------------------------------------------ *)

let fig9 ~quick () =
  hr ();
  printf "Figure 9: autotuning (1-worker vs 4-worker times per config)\n";
  hr ();
  let tiles = if quick then [ 16; 64 ] else [ 16; 32; 64; 128 ] in
  List.iter
    (fun name ->
      let app = Apps.find name in
      let env = app.small_env in
      let plan0 =
        C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
      in
      let images = images_for app plan0 env in
      let r =
        Tune.explore ~tiles ~thresholds:Tune.paper_thresholds ~workers:4
          ~outputs:app.outputs ~env ~images ()
      in
      printf "%s (%s): %d configurations\n" app.name (env_desc env)
        (List.length r.samples);
      printf "  %6s %6s %6s %10s %10s %7s\n" "tile_y" "tile_x" "thresh"
        "t_seq(ms)" "t_par(ms)" "groups";
      List.iter
        (fun (s : Tune.sample) ->
          match s.status with
          | Tune.Timed t ->
            printf "  %6d %6d %6.1f %10.2f %10.2f %7d%s\n" s.tile.(0)
              s.tile.(1) s.threshold (t.time_seq *. 1000.)
              (t.time_par *. 1000.) t.n_groups
              (if s == r.best then "  <= best" else "")
          | Tune.Failed e ->
            printf "  %6d %6d %6.1f failed: %s\n" s.tile.(0) s.tile.(1)
              s.threshold
              (Polymage_util.Err.to_string e))
        r.samples)
    [ "pyramid_blend"; "camera_pipe"; "interpolate" ]

(* ------------------------------------------------------------------ *)
(* Figure 10: configuration speedups                                    *)
(* ------------------------------------------------------------------ *)

let fig10 ~scale () =
  hr ();
  printf "Figure 10: speedup over PolyMage(base, 1 thread), generated C\n";
  printf "  ('vec' = gcc -O3 auto-vectorization, 'base/opt' = -O1, as the\n";
  printf "   paper's configurations map onto this back end; single-core\n";
  printf "   machine: thread counts >1 measure OpenMP overhead, not scaling)\n";
  hr ();
  List.iter
    (fun (app : App.t) ->
      let env = bench_env ~scale app in
      let tile, th = best_c_config app env in
      let opt_opts =
        C.Options.with_threshold th
          (C.Options.with_tile tile (C.Options.opt ~estimates:env ()))
      in
      let base_opts = C.Options.base ~estimates:env () in
      let configs =
        [
          ("base", base_opts, false);
          ("base+vec", base_opts, true);
          ("opt", opt_opts, false);
          ("opt+vec", opt_opts, true);
        ]
      in
      match
        List.map
          (fun (name, opts, optimize) ->
            (name, c_compile ~optimize app opts env))
          configs
      with
      | exception Cc_failed msg -> printf "%s: %s\n" app.name msg
      | exes ->
        let base_t = run_exe ~threads:1 (List.assoc "base" exes) in
        printf "%s (%s), base(1t) = %.2f ms\n" app.name (env_desc env) base_t;
        printf "  %-10s" "config";
        List.iter (fun w -> printf " %6dt" w) opt_workers;
        printf "\n";
        List.iter
          (fun (name, exe) ->
            printf "  %-10s" name;
            List.iter
              (fun w -> printf " %6.2fx" (base_t /. run_exe ~threads:w exe))
              opt_workers;
            printf "\n";
            Sys.remove exe)
          exes)
    (Apps.all ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablations ~scale () =
  hr ();
  printf "Ablations (native executor)\n";
  hr ();
  let apps = [ Apps.find "harris"; Apps.find "pyramid_blend" ] in
  List.iter
    (fun (app : App.t) ->
      (* half-linear size: the ablations make many native runs *)
      let env = bench_env ~scale:(scale * 2) app in
      let opt = C.Options.opt_vec ~estimates:env () in
      printf "%s (%s)\n" app.name (env_desc env);
      let t_scr = native_ms app opt env in
      let t_full =
        native_ms app { opt with C.Options.scratchpads = false } env
      in
      let stats o = C.Storage.stats (C.Compile.run o ~outputs:app.outputs) env in
      let s_on = stats opt
      and s_off = stats { opt with C.Options.scratchpads = false } in
      printf
        "  scratchpads     : on %8.1f ms (%d full + %d scratch cells) | off %8.1f ms (%d full cells)\n"
        t_scr s_on.C.Storage.full_cells s_on.C.Storage.scratch_cells t_full
        s_off.C.Storage.full_cells;
      let t_naive =
        native_ms app { opt with C.Options.naive_overlap = true } env
      in
      printf "  tile shape      : tight %8.1f ms | over-approximated %8.1f ms\n"
        t_scr t_naive;
      let t_noinl = native_ms app { opt with C.Options.inline_on = false } env in
      printf "  inlining        : on %8.1f ms | off %8.1f ms\n" t_scr t_noinl;
      let t_nosplit =
        native_ms app { opt with C.Options.split_cases = false } env
      in
      printf "  case splitting  : on %8.1f ms | off %8.1f ms\n" t_scr t_nosplit;
      printf "  threshold sweep :";
      List.iter
        (fun th ->
          let o = C.Options.with_threshold th opt in
          let plan = C.Compile.run o ~outputs:app.outputs in
          let t = native_ms app o env in
          printf " %.1f->(%d items, %.1f ms)" th
            (Array.length plan.items)
            t)
        [ 0.2; 0.4; 0.5; 1.0 ];
      printf "\n")
    apps

(* ------------------------------------------------------------------ *)
(* Row-kernel ablation (the native executor's compilation strategy)     *)
(* ------------------------------------------------------------------ *)

module Regress = Polymage_report.Regress
module Backend = Polymage_backend.Backend

(* ------------------------------------------------------------------ *)
(* Compiled backend: the headline numbers (paper methodology)          *)
(* ------------------------------------------------------------------ *)

(* Native opt+vec vs the two compiled-C execution tiers on every app,
   at a small and a large size (paper Fig. 10 times compiled
   binaries).  Two numbers per tier: first call (compile + first
   execution, what a cold cache costs) and steady state (what every
   later call costs).  The steady states deliberately time different
   things — c-subprocess pays process spawn + blob I/O on every call,
   c-dlopen is a bare in-process function call — because that gap is
   exactly what the dlopen tier exists to remove. *)

type tier_row = {
  r_app : string;
  r_size : string;
  r_native : float;
  r_sub_first : float;  (* c-subprocess: compile + first wall exec *)
  r_sub_steady : float;  (* best warm wall exec (spawn + blob I/O incl.) *)
  r_sub_compute : float;
      (* the binary's internal best-of-5 — same code, dispatch
         excluded; converges with dl steady at large sizes, which
         pins the gap on dispatch, not on the generated code *)
  r_dl_first : float;  (* c-dlopen: compile + first in-process call *)
  r_dl_steady : float;  (* best warm in-process call *)
}

(* The explicit-SIMD level this run's C backend will emit, as the
   string the schema-v7 "isa" field records: the forced level, or for
   auto whatever the toolchain/host probe resolves ("off" when the
   probe finds nothing). *)
let isa_name simd =
  match simd with
  | C.Options.Simd_auto -> (
    match Toolchain.isa_lookup () with
    | None -> "off"
    | Some i -> Toolchain.isa_to_string i)
  | C.Options.Simd_off -> "off"
  | m -> C.Options.simd_mode_to_string m

let backend_bench ~scale ~simd ~json ~compare_file ~tolerance () =
  (* Vet the baseline before spending minutes measuring. *)
  let isa = isa_name simd in
  let baseline_file =
    match compare_file with
    | None -> None
    | Some file -> (
      match Regress.load file with
      | Error e ->
        Printf.eprintf "bench: cannot load baseline: %s\n" e;
        exit 2
      | Ok b ->
        List.iter
          (function
            | Ok () -> ()
            | Error msg ->
              Printf.eprintf "bench: %s\n" msg;
              exit 2)
          [
            Regress.check_backend b ~current:"c";
            Regress.check_tier b ~current:"c-dlopen";
            Regress.check_mode b ~current:"oneshot";
            Regress.check_isa b ~current:isa;
          ];
        Some (file, b))
  in
  hr ();
  printf "Execution tiers vs native executor (opt+vec, scale %d, simd %s)\n"
    scale isa;
  printf "  first  = compile + first call (cold artifact cache)\n";
  printf "  steady = best warm call; c-subprocess pays spawn + blob I/O\n";
  printf "  per call, c-dlopen is an in-process function call\n";
  hr ();
  printf "%-12s %9s | %9s | %8s %8s %8s | %8s %8s | %6s\n" "app" "size"
    "native" "c 1st" "c stdy" "c cmp" "dl 1st" "dl stdy" "dl/c";
  (* Fresh cache per invocation so the first-call column really
     includes the compile; the process-wide default cache may be warm
     from earlier runs. *)
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pm-bench-cache-%d" (Unix.getpid ()))
  in
  let measure (app : App.t) env =
    let optv = C.Options.with_simd simd (C.Options.opt_vec ~estimates:env ()) in
    let native = native_median_ms ~repeats:5 app optv env in
    let plan = C.Compile.run optv ~outputs:app.outputs in
    let images = images_for app plan env in
    (* c-subprocess: cold run for the first-call cost, then three warm
       runs; steady state is the best warm wall time, spawn and blob
       I/O included (that is the per-call price of this tier). *)
    let _, (sub_cold : Backend.stats) =
      Backend.run ~cache_dir ~repeats:1 plan env ~images
    in
    let sub_steady = ref infinity in
    for _ = 1 to 3 do
      let _, (w : Backend.stats) =
        Backend.run ~cache_dir ~repeats:1 plan env ~images
      in
      if w.exec_ms < !sub_steady then sub_steady := w.exec_ms
    done;
    (* dispatch-free compute: the binary's internal best-of-5 timer *)
    let _, (sub_timed : Backend.stats) =
      Backend.run ~cache_dir ~repeats:5 plan env ~images
    in
    let sub_compute =
      Option.value ~default:sub_timed.exec_ms sub_timed.time_ms
    in
    (* c-dlopen: the .so is a separate artifact kind, so the first
       run_dl compiles it; steady state is the best of the warm run's
       in-process repeat loop. *)
    let _, (dl_cold : Backend.stats) =
      Backend.run_dl ~cache_dir ~repeats:1 plan env ~images
    in
    let _, (dl_warm : Backend.stats) =
      Backend.run_dl ~cache_dir ~repeats:5 plan env ~images
    in
    {
      r_app = app.name;
      r_size = env_desc env;
      r_native = native;
      r_sub_first = sub_cold.compile_ms +. sub_cold.exec_ms;
      r_sub_steady = !sub_steady;
      r_sub_compute = sub_compute;
      r_dl_first = dl_cold.compile_ms +. dl_cold.exec_ms;
      r_dl_steady = Option.value ~default:dl_warm.exec_ms dl_warm.time_ms;
    }
  in
  let rows =
    List.concat_map
      (fun (app : App.t) ->
        List.filter_map
          (fun sc ->
            let env = bench_env ~scale:sc app in
            match measure app env with
            | r ->
              printf
                "%-12s %9s | %9.2f | %8.1f %8.2f %8.2f | %8.1f %8.2f | \
                 %5.1fx\n"
                r.r_app r.r_size r.r_native r.r_sub_first r.r_sub_steady
                r.r_sub_compute r.r_dl_first r.r_dl_steady
                (r.r_sub_steady /. r.r_dl_steady);
              Some r
            | exception e ->
              printf "%-12s %9s | failed: %s\n" app.name (env_desc env)
                (Printexc.to_string e);
              None)
          (* small size first (scale*4), then the large one (scale) *)
          [ scale * 4; scale ])
      (Apps.all ())
  in
  (match json with
  | None -> ()
  | Some file ->
    (* Schema v7 adds the "isa" field: the explicit-SIMD level the
       backend emitted for.  v1-v6 files still load — the reader
       defaults the field to "". *)
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\n  \"schema_version\": 7,\n  \"bench\": \"backend\",\n\
         \  \"scale\": %d,\n  \"isa\": \"%s\",\n%s  \"apps\": [\n"
         scale isa
         (host_json ~backend:"c" ~tier:"c-dlopen" ~workers:1));
    List.iteri
      (fun i r ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": \"%s\", \"size\": \"%s\",\n\
             \     \"native_opt_vec_ms\": %.3f,\n\
             \     \"c_first_call_ms\": %.3f, \"c_steady_ms\": %.3f,\n\
             \     \"c_compute_ms\": %.3f,\n\
             \     \"dlopen_first_call_ms\": %.3f, \"dlopen_steady_ms\": %.3f,\n\
             \     \"dlopen_speedup_vs_subprocess\": %.3f}%s\n"
             r.r_app r.r_size r.r_native r.r_sub_first r.r_sub_steady
             r.r_sub_compute r.r_dl_first r.r_dl_steady
             (r.r_sub_steady /. r.r_dl_steady)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out file in
    output_string oc (Buffer.contents b);
    close_out oc;
    printf "  wrote %s\n" file);
  match baseline_file with
  | None -> ()
  | Some (file, b) -> (
    (* Only the tier-dispatch speedup ratio travels between machines;
       absolute milliseconds do not.  This bench has two rows per app
       (small and large size) and the comparator matches on
       (app, metric), so the size is folded into the app name to keep
       the cells distinct. *)
    let is_ratio (m : Regress.measurement) =
      m.metric = "dlopen_speedup_vs_subprocess"
    in
    let by_size (m : Regress.measurement) =
      { m with Regress.app = m.app ^ " " ^ m.size }
    in
    let baseline = List.map by_size (List.filter is_ratio b.cells) in
    let current =
      List.map
        (fun r ->
          by_size
            {
              Regress.app = r.r_app;
              size = r.r_size;
              metric = "dlopen_speedup_vs_subprocess";
              value = r.r_sub_steady /. r.r_dl_steady;
              noise = 0.;
            })
        rows
    in
    let o = Regress.compare_cells ~tolerance ~baseline ~current () in
    printf "\nregression gate vs %s (schema v%d, tolerance %.0f%%):\n" file
      b.schema_version (100. *. tolerance);
    Format.printf "%a@?" Regress.pp o;
    if not (Regress.ok o) then exit 1)

let kernels_bench ~scale ~json ~compare_file ~tolerance () =
  (* Load and vet the baseline up front: refusing a cross-backend or
     malformed file after minutes of measurement would waste the run. *)
  let baseline_file =
    match compare_file with
    | None -> None
    | Some file -> (
      match Regress.load file with
      | Error e ->
        Printf.eprintf "bench: cannot load baseline: %s\n" e;
        exit 2
      | Ok b ->
        (* The kernels bench always measures the native executor; a
           baseline recorded on another backend is not comparable. *)
        (match Regress.check_backend b ~current:"native" with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "bench: %s\n" msg;
          exit 2);
        (match Regress.check_tier b ~current:"native" with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "bench: %s\n" msg;
          exit 2);
        (* and the lifecycle: this bench measures fresh one-shot
           processes, not server request latency *)
        (match Regress.check_mode b ~current:"oneshot" with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "bench: %s\n" msg;
          exit 2);
        Some (file, b))
  in
  hr ();
  printf "Row kernels (native executor: CSE + access cursors + hoisting)\n";
  printf "  -k = closure trees (kernels=false), +k = flat row kernels\n";
  printf "  (per-config median of 5 interleaved cycles)\n";
  hr ();
  printf "%-16s %11s | %9s %9s %6s | %9s %9s %6s\n" "app" "size" "base-k"
    "base+k" "spdup" "o+v-k" "o+v+k" "spdup";
  let repeats = 5 in
  let rows =
    List.map
      (fun (app : App.t) ->
        let env = bench_env ~scale app in
        let base = C.Options.base ~estimates:env () in
        let optv = C.Options.opt_vec ~estimates:env () in
        let nk o = { o with C.Options.kernels = false } in
        (* Interleave the four configurations cycle by cycle, then take
           per-configuration medians: machine-load drift slower than
           one cycle lands on all four cells equally and cancels out of
           the speedup ratios, where back-to-back blocks per config
           would absorb it into whichever config ran during the bad
           window. *)
        let runners =
          Array.map
            (fun opts ->
              let plan = C.Compile.run opts ~outputs:app.outputs in
              let images = images_for app plan env in
              fun () -> ignore (Rt.Executor.run plan env ~images))
            [| nk base; base; nk optv; optv |]
        in
        (* Warm-up also settles the sticky measured-kernel choices
           (Options.kernel_measure), so the timed cycles compare the
           decided paths, not the measuring phase. *)
        Array.iter
          (fun f ->
            f ();
            f ())
          runners;
        let samples = Array.make_matrix 4 repeats 0. in
        for rep = 0 to repeats - 1 do
          Array.iteri
            (fun c f -> samples.(c).(rep) <- 1000. *. snd (time f))
            runners
        done;
        let median s =
          let s = Array.copy s in
          Array.sort compare s;
          s.(Array.length s / 2)
        in
        (* relative quartile spread: dispersion of the run itself,
           ignoring the two extreme samples *)
        let spread s =
          let s = Array.copy s in
          Array.sort compare s;
          let n = Array.length s in
          (s.(n - 2) -. s.(1)) /. s.(n / 2)
        in
        let t_b_nk = median samples.(0)
        and t_b = median samples.(1)
        and t_o_nk = median samples.(2)
        and t_o = median samples.(3) in
        let noise_b = spread samples.(0) +. spread samples.(1)
        and noise_o = spread samples.(2) +. spread samples.(3) in
        printf "%-16s %11s | %9.1f %9.1f %5.2fx | %9.1f %9.1f %5.2fx\n"
          app.name (env_desc env) t_b_nk t_b (t_b_nk /. t_b) t_o_nk t_o
          (t_o_nk /. t_o);
        (app.name, env_desc env, t_b_nk, t_b, t_o_nk, t_o, noise_b, noise_o))
      (Apps.all ())
  in
  (match json with
  | None -> ()
  | Some file ->
    (* hand-rolled: the JSON is flat and we add no dependencies *)
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\n  \"schema_version\": 4,\n  \"bench\": \"kernels\",\n\
         \  \"scale\": %d,\n%s  \"apps\": [\n"
         scale
         (host_json ~backend:"native" ~tier:"native" ~workers:1));
    List.iteri
      (fun i (name, size, t_b_nk, t_b, t_o_nk, t_o, _, _) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": \"%s\", \"size\": \"%s\",\n\
             \     \"base_nokernels_ms\": %.3f, \"base_ms\": %.3f,\n\
             \     \"opt_vec_nokernels_ms\": %.3f, \"opt_vec_ms\": %.3f,\n\
             \     \"kernel_speedup_base\": %.3f, \"kernel_speedup_opt_vec\": %.3f}%s\n"
             name size t_b_nk t_b t_o_nk t_o (t_b_nk /. t_b) (t_o_nk /. t_o)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out file in
    output_string oc (Buffer.contents b);
    close_out oc;
    printf "  wrote %s\n" file);
  match baseline_file with
  | None -> ()
  | Some (file, b) -> (
      (* Only the kernel_speedup_* ratio columns travel between
         machines; absolute milliseconds do not. *)
      let is_ratio (m : Regress.measurement) =
        String.length m.metric > 15
        && String.sub m.metric 0 15 = "kernel_speedup_"
      in
      let baseline = List.filter is_ratio b.cells in
      let current =
        List.concat_map
          (fun (name, size, t_b_nk, t_b, t_o_nk, t_o, noise_b, noise_o) ->
            [
              {
                Regress.app = name;
                size;
                metric = "kernel_speedup_base";
                value = t_b_nk /. t_b;
                noise = noise_b;
              };
              {
                Regress.app = name;
                size;
                metric = "kernel_speedup_opt_vec";
                value = t_o_nk /. t_o;
                noise = noise_o;
              };
            ])
          rows
      in
      let o = Regress.compare_cells ~tolerance ~baseline ~current () in
      printf "\nregression gate vs %s (schema v%d, tolerance %.0f%%):\n" file
        b.schema_version (100. *. tolerance);
      Format.printf "%a@?" Regress.pp o;
      if not (Regress.ok o) then exit 1)

(* ------------------------------------------------------------------ *)
(* Serve mode: latency percentiles through the long-lived server        *)
(* ------------------------------------------------------------------ *)

module Srv = Polymage_serve
module Rawio = Polymage_backend.Rawio

let percentile p samples =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  a.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* relative quartile spread, as in the kernels bench *)
let spread_of samples =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  if n < 4 then 0. else (a.(n - 2) -. a.(1)) /. a.(n / 2)

let serve_clients = 4
let serve_steady_n = 30
let serve_per_client = 15

let serve_bench ~scale ~json ~compare_file ~tolerance () =
  (* Vet the baseline before measuring, like the kernels gate. *)
  let baseline_file =
    match compare_file with
    | None -> None
    | Some file -> (
      match Regress.load file with
      | Error e ->
        Printf.eprintf "bench: cannot load baseline: %s\n" e;
        exit 2
      | Ok b ->
        List.iter
          (function
            | Ok () -> ()
            | Error msg ->
              Printf.eprintf "bench: %s\n" msg;
              exit 2)
          [
            Regress.check_backend b ~current:"c";
            Regress.check_tier b ~current:"c-dlopen";
            Regress.check_mode b ~current:"serve";
          ];
        Some (file, b))
  in
  hr ();
  printf "Serve mode: request latency through the long-lived server\n";
  printf "  compute  = dispatch-free in-process c-dlopen call\n";
  printf "  stdy p50 = sequential warm requests (dispatch + blob codec)\n";
  printf "  warm     = %d concurrent clients, %d requests each, after the \
          hot swap\n"
    serve_clients serve_per_client;
  printf "  full     = warm plus the same load cold-started (plan compile \
          + hot-swap window)\n";
  hr ();
  if not (Toolchain.available ()) then
    printf "  no C toolchain: serve bench skipped\n"
  else begin
    printf "%-16s %9s | %8s %8s | %8s %8s %8s | %8s | %6s %6s\n" "app" "size"
      "compute" "stdy p50" "p50" "p99" "req/s" "full p99" "p50/c" "p99/c";
    let measure (app : App.t) env =
      let cache_dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "pm-serve-bench-%d-%s" (Unix.getpid ()) app.name)
      in
      let server =
        Srv.Server.create
          {
            Srv.Server.tier = Polymage_backend.Exec_tier.Auto;
            workers = 1;
            batch_max = 8;
            batch_window_ms = 0;
            shed_depth = 10_000;
            max_depth = 20_000;
            cache_dir = Some cache_dir;
            telemetry = false;
            access_log = None;
            simd = C.Options.Simd_auto;
          }
      in
      Fun.protect ~finally:(fun () -> Srv.Server.stop server) @@ fun () ->
      let plan =
        (* Must match the server's plan exactly (same workers) so the
           compute column below resolves the same cache key and reuses
           the artifact the server already canaried and trusts. *)
        C.Compile.run
          (C.Options.opt_vec ~workers:1 ~estimates:env ())
          ~outputs:app.outputs
      in
      let request =
        {
          Srv.Protocol.app = app.name;
          params =
            List.map
              (fun ((p : Polymage_ir.Types.param), v) -> (p.Polymage_ir.Types.pname, v))
              env;
          images =
            List.map
              (fun im ->
                ( im.Polymage_ir.Ast.iname,
                  Rawio.encode (Rt.Buffer.of_image im env (app.fill env im)) ))
              plan.pipe.Polymage_ir.Pipeline.images;
        }
      in
      let submit () =
        match Srv.Server.submit server request with
        | Srv.Protocol.Ok_response { tier; _ } -> tier
        | Srv.Protocol.Err_response e ->
          failwith (Polymage_util.Err.to_string e)
      in
      let concurrent_round () =
        List.init serve_clients (fun _ ->
            Domain.spawn (fun () ->
                Array.init serve_per_client (fun _ ->
                    1000. *. snd (time (fun () -> ignore (submit ()))))))
        |> List.map Domain.join |> Array.concat
      in
      (* Cold phase: the same concurrent load from process start — the
         first request compiles the plan, the rest ride the native
         tier until the background .so compile hot-swaps in.  These
         latencies only feed the full-run percentiles. *)
      let cold = concurrent_round () in
      (* Warm phase: after the hot swap, every timed request is a warm
         c-dlopen call. *)
      Srv.Server.await_warm server;
      let tier = submit () in
      if tier <> "c-dlopen" then
        failwith ("server never reached c-dlopen, still on " ^ tier);
      let steady =
        Array.init serve_steady_n (fun _ ->
            1000. *. snd (time (fun () -> ignore (submit ()))))
      in
      let t0 = Unix.gettimeofday () in
      let lat = concurrent_round () in
      let wall = Unix.gettimeofday () -. t0 in
      let throughput =
        float_of_int (serve_clients * serve_per_client) /. wall
      in
      let full = Array.append cold lat in
      (* The compute column: best-of-5 wall time of a dispatch-free
         in-process call on the pinned trusted artifact — the same hot
         path the warm server takes, minus queueing and the request /
         response blob codec.  Wall time (not the artifact's internal
         timer) so the boundary copies every call pays are counted on
         both sides of the ratio. *)
      let images = images_for app plan env in
      (* One run_dl compiles this plan's artifact and canaries it to
         trusted (the server's artifact has its own key: plan
         compilation gensyms differently per invocation, so the two
         C sources hash apart even for identical options). *)
      ignore (Backend.run_dl ~cache_dir plan env ~images);
      let so, _, _, key, dir = Backend.compile_so ~cache_dir plan in
      let compute = ref infinity in
      for _ = 1 to 5 do
        let _, t =
          time (fun () ->
              ignore (Backend.run_dl_pinned ~dir ~key ~so plan env ~images))
        in
        if 1000. *. t < !compute then compute := 1000. *. t
      done;
      let compute = !compute in
      let steady_p50 = percentile 0.50 steady in
      let p50 = percentile 0.50 lat
      and p99 = percentile 0.99 lat
      and full_p50 = percentile 0.50 full
      and full_p99 = percentile 0.99 full in
      let noise = spread_of steady +. spread_of lat in
      ( app.name,
        env_desc env,
        compute,
        steady_p50,
        p50,
        p99,
        full_p50,
        full_p99,
        throughput,
        noise )
    in
    let rows =
      List.filter_map
        (fun (app : App.t) ->
          let env = bench_env ~scale app in
          match measure app env with
          | row ->
            let name, size, compute, steady_p50, p50, p99, _, full_p99, rps, _
                =
              row
            in
            printf
              "%-16s %9s | %8.2f %8.2f | %8.2f %8.2f %8.1f | %8.2f | %5.2fx \
               %5.2fx\n"
              name size compute steady_p50 p50 p99 rps full_p99
              (steady_p50 /. compute) (p99 /. compute);
            Some row
          | exception e ->
            printf "%-16s %9s | failed: %s\n" app.name (env_desc env)
              (Printexc.to_string e);
            None)
        (List.filter
           (fun (a : App.t) -> List.mem a.name [ "unsharp_mask"; "harris" ])
           (Apps.all ()))
    in
    (match json with
    | None -> ()
    | Some file ->
      let b = Buffer.create 1024 in
      (* Schema v6: serve_p50_ms/serve_p99_ms are warm-only (measured
         after the hot swap, the steady state the gate should judge);
         serve_full_* fold in the same load cold-started, so the
         one-time plan-compile + hot-swap window stays visible without
         polluting the gate.  v1-v5 files still load: the reader is
         field-agnostic. *)
      Buffer.add_string b
        (Printf.sprintf
           "{\n  \"schema_version\": 6,\n  \"bench\": \"serve\",\n\
           \  \"scale\": %d,\n  \"mode\": \"serve\",\n%s  \"apps\": [\n"
           scale
           (host_json ~backend:"c" ~tier:"c-dlopen" ~workers:1));
      List.iteri
        (fun i
             (name, size, compute, steady_p50, p50, p99, full_p50, full_p99,
              rps, _) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"name\": \"%s\", \"size\": \"%s\",\n\
               \     \"dl_call_ms\": %.3f, \"serve_steady_p50_ms\": %.3f,\n\
               \     \"serve_p50_ms\": %.3f, \"serve_p99_ms\": %.3f,\n\
               \     \"serve_full_p50_ms\": %.3f, \"serve_full_p99_ms\": \
                %.3f,\n\
               \     \"throughput_rps\": %.3f,\n\
               \     \"serve_p50_over_compute\": %.3f, \
                \"serve_p99_over_compute\": %.3f}%s\n"
               name size compute steady_p50 p50 p99 full_p50 full_p99 rps
               (steady_p50 /. compute) (p99 /. compute)
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string b "  ]\n}\n";
      let oc = open_out file in
      output_string oc (Buffer.contents b);
      close_out oc;
      printf "  wrote %s\n" file);
    match baseline_file with
    | None -> ()
    | Some (file, b) -> (
      (* Only the machine-independent dispatch-overhead ratios travel
         between machines, and for them lower is better. *)
      let is_ratio (m : Regress.measurement) =
        Filename.check_suffix m.metric "_over_compute"
      in
      let baseline = List.filter is_ratio b.cells in
      let current =
        List.concat_map
          (fun (name, size, compute, steady_p50, _, p99, _, _, _, noise) ->
            [
              {
                Regress.app = name;
                size;
                metric = "serve_p50_over_compute";
                value = steady_p50 /. compute;
                noise;
              };
              {
                Regress.app = name;
                size;
                metric = "serve_p99_over_compute";
                value = p99 /. compute;
                noise;
              };
            ])
          rows
      in
      let o =
        Regress.compare_cells
          ~lower_is_better:(fun m -> Filename.check_suffix m "_over_compute")
          ~tolerance ~baseline ~current ()
      in
      printf "\nregression gate vs %s (schema v%d, tolerance %.0f%%):\n" file
        b.schema_version (100. *. tolerance);
      Format.printf "%a@?" Regress.pp o;
      if not (Regress.ok o) then exit 1)
  end

(* Interleaved telemetry A/B: two identical servers — telemetry off vs
   on — both warmed to the pinned c-dlopen tier, then steady-state
   request batches submitted in alternating rounds (off/on, on/off,
   ...) so thermal and allocator drift hits both arms equally.
   Reports each arm's steady p50 and the relative on-vs-off delta:
   the acceptance bar for instrumenting the serve hot path. *)
let serve_ab ~scale () =
  hr ();
  printf "Serve telemetry A/B: steady p50, telemetry off vs on, interleaved\n";
  hr ();
  if not (Toolchain.available ()) then
    printf "  no C toolchain: serve A/B skipped\n"
  else begin
    let app =
      List.find (fun (a : App.t) -> a.name = "unsharp_mask") (Apps.all ())
    in
    let env = bench_env ~scale app in
    let arm label telemetry =
      let cache_dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "pm-serve-ab-%d-%s" (Unix.getpid ()) label)
      in
      let server =
        Srv.Server.create
          {
            Srv.Server.tier = Polymage_backend.Exec_tier.Auto;
            workers = 1;
            batch_max = 8;
            batch_window_ms = 0;
            shed_depth = 10_000;
            max_depth = 20_000;
            cache_dir = Some cache_dir;
            telemetry;
            access_log = None;
            simd = C.Options.Simd_auto;
          }
      in
      let plan =
        C.Compile.run
          (C.Options.opt_vec ~workers:1 ~estimates:env ())
          ~outputs:app.outputs
      in
      let request =
        {
          Srv.Protocol.app = app.name;
          params =
            List.map
              (fun ((p : Polymage_ir.Types.param), v) ->
                (p.Polymage_ir.Types.pname, v))
              env;
          images =
            List.map
              (fun im ->
                ( im.Polymage_ir.Ast.iname,
                  Rawio.encode (Rt.Buffer.of_image im env (app.fill env im)) ))
              plan.pipe.Polymage_ir.Pipeline.images;
        }
      in
      let submit () =
        match Srv.Server.submit server request with
        | Srv.Protocol.Ok_response { tier; _ } -> tier
        | Srv.Protocol.Err_response e ->
          failwith (Polymage_util.Err.to_string e)
      in
      ignore (submit ());
      Srv.Server.await_warm server;
      let tier = submit () in
      if tier <> "c-dlopen" then
        failwith (label ^ ": server never reached c-dlopen, still on " ^ tier);
      (server, submit)
    in
    let srv_off, submit_off = arm "off" false in
    let srv_on, submit_on = arm "on" true in
    Fun.protect
      ~finally:(fun () ->
        Srv.Server.stop srv_off;
        Srv.Server.stop srv_on)
      (fun () ->
        let rounds = 12
        and per_round = 25 in
        let lat_off = ref []
        and lat_on = ref [] in
        let batch submit acc =
          for _ = 1 to per_round do
            acc := (1000. *. snd (time (fun () -> ignore (submit ())))) :: !acc
          done
        in
        for r = 1 to rounds do
          (* alternate which arm goes first each round *)
          if r mod 2 = 0 then begin
            batch submit_off lat_off;
            batch submit_on lat_on
          end
          else begin
            batch submit_on lat_on;
            batch submit_off lat_off
          end
        done;
        let p50_off = percentile 0.50 (Array.of_list !lat_off)
        and p50_on = percentile 0.50 (Array.of_list !lat_on) in
        let delta = 100. *. ((p50_on -. p50_off) /. p50_off) in
        printf "  %-16s %d rounds x %d requests per arm, alternating order\n"
          app.name rounds per_round;
        printf "  steady p50: telemetry off %.3f ms, on %.3f ms  (on-off \
                delta %+.2f%%)\n"
          p50_off p50_on delta)
  end

(* Interleaved SIMD A/B: the same plan compiled twice through the
   c-dlopen tier — --simd auto vs --simd off — both canaried to
   trusted and pinned, then timed in alternating rounds so machine
   drift lands on both arms equally.  Runs the two fast-math-heavy
   apps at >= 512x512 (the acceptance sizes); reports each arm's
   steady p50 and the auto-over-off speedup. *)
let simd_ab ~scale () =
  hr ();
  printf "SIMD A/B: c-dlopen steady state, --simd auto vs off, interleaved\n";
  hr ();
  if not (Toolchain.available ()) then
    printf "  no C toolchain: SIMD A/B skipped\n"
  else
    match Toolchain.isa_lookup () with
    | None -> printf "  no SIMD level probed (POLYMAGE_ISA=off?): A/B skipped\n"
    | Some isa ->
      printf "  resolved level: %s\n" (Toolchain.isa_to_string isa);
      let cache_dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "pm-simd-ab-%d" (Unix.getpid ()))
      in
      List.iter
        (fun name ->
          let app = Apps.find name in
          (* acceptance sizes: the scaled default, floored at 512 per
             dimension (512 is a multiple of every pyramid step) *)
          let env =
            List.map
              (fun (p, v) -> (p, max 512 (v / scale / 16 * 16)))
              app.App.default_env
          in
          match
            let arm simd =
              let opts =
                C.Options.with_simd simd (C.Options.opt_vec ~estimates:env ())
              in
              let plan = C.Compile.run opts ~outputs:app.outputs in
              let images = images_for app plan env in
              (* first run_dl compiles the arm's artifact (the SIMD
                 level is part of the cache key) and canaries it to
                 trusted; then pin it for dispatch-free calls *)
              ignore (Backend.run_dl ~cache_dir plan env ~images);
              let so, _, _, key, dir = Backend.compile_so ~cache_dir plan in
              fun () ->
                1000.
                *. snd
                     (time (fun () ->
                          ignore
                            (Backend.run_dl_pinned ~dir ~key ~so plan env
                               ~images)))
            in
            let run_auto = arm C.Options.Simd_auto in
            let run_off = arm C.Options.Simd_off in
            let rounds = 12
            and per_round = 3 in
            let lat_auto = ref []
            and lat_off = ref []
            and ratios = ref [] in
            let batch f =
              let acc = ref [] in
              for _ = 1 to per_round do
                acc := f () :: !acc
              done;
              !acc
            in
            for r = 1 to rounds do
              (* alternate which arm goes first each round *)
              let a, o =
                if r mod 2 = 0 then begin
                  let o = batch run_off in
                  let a = batch run_auto in
                  (a, o)
                end
                else begin
                  let a = batch run_auto in
                  let o = batch run_off in
                  (a, o)
                end
              in
              lat_auto := a @ !lat_auto;
              lat_off := o @ !lat_off;
              (* pair the two arms within the round: machine-wide load
                 drift on a shared box moves adjacent batches together,
                 so the per-round ratio cancels it where a global
                 percentile ratio would not (identical binaries measure
                 1.0x under this estimator, ±10% under the global one) *)
              ratios :=
                percentile 0.50 (Array.of_list o)
                /. percentile 0.50 (Array.of_list a)
                :: !ratios
            done;
            let p50_auto = percentile 0.50 (Array.of_list !lat_auto)
            and p50_off = percentile 0.50 (Array.of_list !lat_off)
            and speedup = percentile 0.50 (Array.of_list !ratios) in
            (p50_auto, p50_off, speedup)
          with
          | p50_auto, p50_off, speedup ->
            printf
              "  %-16s %9s | off %8.2f ms | auto %8.2f ms | speedup %.2fx\n"
              app.App.name (env_desc env) p50_off p50_auto speedup
          | exception e ->
            printf "  %-16s %9s | failed: %s\n" app.App.name (env_desc env)
              (Printexc.to_string e))
        [ "bilateral_grid"; "local_laplacian" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per table/figure)           *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  hr ();
  printf "Bechamel micro-benchmarks (harris, small size)\n";
  hr ();
  let open Bechamel in
  let app = Apps.find "harris" in
  let env = app.small_env in
  let runner opts =
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let images = images_for app plan env in
    Staged.stage (fun () -> ignore (Rt.Executor.run plan env ~images))
  in
  let tests =
    [
      (* Table 2's two headline configurations *)
      Test.make ~name:"table2-base" (runner (C.Options.base ~estimates:env ()));
      Test.make ~name:"table2-opt_vec"
        (runner (C.Options.opt_vec ~estimates:env ()));
      (* Figure 10's intermediate configurations *)
      Test.make ~name:"fig10-base_vec"
        (runner (C.Options.base_vec ~estimates:env ()));
      Test.make ~name:"fig10-opt" (runner (C.Options.opt ~estimates:env ()));
      (* Figure 9: one non-default tile configuration *)
      Test.make ~name:"fig9-tile8x8"
        (runner
           (C.Options.with_tile [| 8; 8 |] (C.Options.opt_vec ~estimates:env ())));
    ]
  in
  let test = Test.make_grouped ~name:"polymage" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name est ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> printf "  %-28s %12.3f ms/run\n" name (t /. 1e6)
      | _ -> printf "  %-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let () =
  let run_table1 = ref false
  and run_table2 = ref false
  and run_fig5 = ref false
  and run_fig6 = ref false
  and run_fig9 = ref false
  and run_fig10 = ref false
  and run_abl = ref false
  and run_kern = ref false
  and run_backend = ref false
  and run_simd_ab = ref false
  and simd = ref C.Options.Simd_auto
  and backend_json = ref None
  and run_serve = ref false
  and run_serve_ab = ref false
  and serve_json = ref None
  and run_bech = ref false
  and quick = ref false
  and json = ref None
  and trace_json = ref None
  and compare_file = ref None
  and tolerance = ref 0.10
  and scale = ref 4 in
  let any = ref false in
  let set r () =
    any := true;
    r := true
  in
  Arg.parse
    [
      ("--table1", Arg.Unit (set run_table1), "Table 1 patterns");
      ("--table2", Arg.Unit (set run_table2), "Table 2 benchmarks");
      ("--fig5", Arg.Unit (set run_fig5), "Figure 5 tiling strategies");
      ("--fig6", Arg.Unit (set run_fig6), "Figure 6 tile shapes");
      ("--fig9", Arg.Unit (set run_fig9), "Figure 9 autotuning");
      ("--fig10", Arg.Unit (set run_fig10), "Figure 10 speedups");
      ("--ablations", Arg.Unit (set run_abl), "design-choice ablations");
      ("--kernels", Arg.Unit (set run_kern), "row-kernel ablation");
      ( "--backend-bench",
        Arg.Unit (set run_backend),
        "compiled-C backend vs native executor" );
      ( "--backend-json",
        Arg.String
          (fun s ->
            any := true;
            run_backend := true;
            backend_json := Some s),
        "FILE  run the execution-tier bench and write its schema-v7 JSON" );
      ( "--simd",
        Arg.String
          (fun s ->
            match C.Options.simd_mode_of_string s with
            | Some m -> simd := m
            | None ->
              Printf.eprintf
                "bench: unknown --simd %S (auto, off, sse2, avx2, avx512)\n" s;
              exit 2),
        "LEVEL  explicit SIMD for the compiled-C benches: auto (default), \
         off, sse2, avx2, avx512" );
      ( "--simd-ab",
        Arg.Unit (set run_simd_ab),
        "interleaved c-dlopen steady-state A/B of --simd auto vs off on the \
         fast-math-heavy apps" );
      ( "--serve-bench",
        Arg.Unit (set run_serve),
        "request-latency percentiles through the long-lived server" );
      ( "--serve-json",
        Arg.String
          (fun s ->
            any := true;
            run_serve := true;
            serve_json := Some s),
        "FILE  run the serve bench and write its schema-v6 JSON" );
      ( "--serve-ab",
        Arg.Unit (set run_serve_ab),
        "interleaved steady-state A/B of the serve hot path with telemetry \
         off vs on" );
      ("--bechamel", Arg.Unit (set run_bech), "bechamel micro-benchmarks");
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE  write the row-kernel timings as JSON" );
      ( "--compare",
        Arg.String
          (fun s ->
            any := true;
            compare_file := Some s),
        "FILE  rerun the bench the baseline records (row kernels, the \
         execution-tier bench for a backend baseline, or the serve bench \
         for a serve-mode baseline) and gate its ratio columns against \
         this JSON; exit 1 on regression" );
      ( "--tolerance",
        Arg.Float (fun p -> tolerance := p /. 100.),
        "PCT  allowed relative drop before --compare fails (default 10)" );
      ("--quick", Arg.Set quick, "smaller search spaces");
      ("--scale", Arg.Set_int scale, "size divisor vs paper sizes (default 4)");
      ( "--fault",
        Arg.String
          (fun s ->
            let { Rt.Fault.site; seed } = Rt.Fault.parse s in
            Rt.Fault.arm ~site ~seed),
        "SITE:SEED  arm the fault injector" );
      ("--safe", Arg.Set safe_mode, "execute through the degradation ladder");
      ( "--trace",
        Arg.Unit
          (fun () ->
            Polymage_util.Trace.enable ();
            Polymage_util.Metrics.enable ()),
        "enable structured tracing and metrics for all runs" );
      ( "--trace-json",
        Arg.String (fun s -> trace_json := Some s),
        "FILE  write the captured trace as Chrome trace JSON; implies \
         --trace" );
    ]
    (fun _ -> ())
    "polymage benchmark harness";
  if !trace_json <> None then begin
    Polymage_util.Trace.enable ();
    Polymage_util.Metrics.enable ()
  end;
  (* --compare dispatches on what the baseline measured: a serve-mode
     file reruns the serve bench, a backend file the execution-tier
     bench, anything else the row-kernel bench (whose own gate still
     refuses mismatched files loudly). *)
  (match !compare_file with
  | None -> ()
  | Some file -> (
    match Regress.load file with
    | Error e ->
      Printf.eprintf "bench: cannot load baseline: %s\n" e;
      exit 2
    | Ok b ->
      if b.Regress.mode = "serve" then run_serve := true
      else if b.Regress.bench = "backend" then run_backend := true
      else run_kern := true));
  let all = not !any in
  if all || !run_table1 then table1 ();
  if all || !run_table2 then table2 ~scale:!scale ();
  if all || !run_fig5 then fig5 ~scale:!scale ();
  if all || !run_fig6 then fig6 ();
  if all || !run_fig9 then fig9 ~quick:!quick ();
  if all || !run_fig10 then fig10 ~scale:!scale ();
  if all || !run_abl then ablations ~scale:!scale ();
  if all || !run_kern then
    kernels_bench ~scale:!scale ~json:!json ~compare_file:!compare_file
      ~tolerance:!tolerance ();
  if all || !run_backend then
    backend_bench ~scale:!scale ~simd:!simd ~json:!backend_json
      ~compare_file:(if !run_kern then None else !compare_file)
      ~tolerance:!tolerance ();
  if !run_serve then
    serve_bench ~scale:!scale ~json:!serve_json
      ~compare_file:(if !run_kern || !run_backend then None else !compare_file)
      ~tolerance:!tolerance ();
  if !run_serve_ab then serve_ab ~scale:!scale ();
  if !run_simd_ab then simd_ab ~scale:!scale ();
  if all || !run_bech then bechamel ();
  (match !trace_json with
  | Some file ->
    Polymage_util.Trace.write_chrome_json file (Polymage_util.Trace.events ());
    printf "wrote trace to %s\n" file
  | None -> ());
  hr ();
  printf "done.\n"
