(* Polyhedral layer: access extraction, alignment & scaling (paper
   Fig. 6), overlapped-tile widening, overlap estimates. *)
open Polymage_ir
module Poly = Polymage_poly
open Polymage_dsl.Dsl

let access_units () =
  let x = Types.var ~name:"x" () in
  let check name e expected =
    let got = Format.asprintf "%a" Poly.Access.pp (Poly.Access.of_expr e) in
    Alcotest.(check string) name expected got
  in
  check "identity" (v x) "1*x+0";
  check "shift" (v x +: i 3) "1*x+3";
  check "downsample" ((i 2 *: v x) -: i 1) "2*x-1";
  check "upsample" ((v x +: i 1) /^ 2) "floor((1*x+1)/2)";
  check "nested div" ((v x /^ 2) /^ 2) "floor((1*x+0)/4)";
  check "shift under div" ((v x /^ 2) +: i 1) "floor((1*x+2)/2)";
  check "constant" (i 5) "0*0+5";
  check "dynamic (param shift)" (v x +: p (Types.param ~name:"q" ())) "dynamic";
  check "dynamic (nonlinear)" (v x *: v x) "dynamic";
  Alcotest.(check bool) "is_identity" true (Poly.Access.is_identity (Poly.Access.of_expr (v x)));
  Alcotest.(check bool) "shift not identity" false
    (Poly.Access.is_identity (Poly.Access.of_expr (v x +: i 1)));
  Alcotest.(check bool) "shift is stencil" true
    (Poly.Access.is_shift (Poly.Access.of_expr (v x -: i 4)))

(* The heterogeneous chain of paper Fig. 6:
     f(x) = in(x);  g(x) = f(2x-1) * f(2x+1);  h(x) = g(2x-1) * g(2x+1);
     fup(x) = h(x/2) * h(x/2+1);  fout(x) = fup(x/2).
   Expected scaling: f:1, g:2, h:4, fup:2, fout:1 -> normalized
   against the sink fout (scale 1) gives 1,2,4,2,1 after clearing
   denominators: fout=4?  The absolute factors depend on
   normalization; what matters and is asserted here is the ratio
   between consecutive stages. *)
let fig6_chain () =
  let n = Types.param ~name:"N" () in
  let x = Types.var ~name:"x" () in
  let img = image ~name:"fin" Float [ (4 *~ param_b n) +~ ib 4 ] in
  let dom sz = [ (x, interval (ib 0) sz) ] in
  let f = func ~name:"f" Float (dom ((4 *~ param_b n) +~ ib 3)) in
  define f [ always (img_at img [ v x ]) ];
  let g = func ~name:"g" Float (dom ((2 *~ param_b n) +~ ib 1)) in
  define g
    [ always (app f [ (i 2 *: v x) -: i 1 ] *: app f [ (i 2 *: v x) +: i 1 ]) ];
  let h = func ~name:"h" Float (dom (param_b n)) in
  define h
    [ always (app g [ (i 2 *: v x) -: i 1 ] *: app g [ (i 2 *: v x) +: i 1 ]) ];
  let fup = func ~name:"fup" Float (dom ((2 *~ param_b n) -~ ib 2)) in
  define fup [ always (app h [ v x /^ 2 ] *: app h [ (v x /^ 2) +: i 1 ]) ];
  let fout = func ~name:"fout" Float (dom ((4 *~ param_b n) -~ ib 6)) in
  define fout [ always (app fup [ v x /^ 2 ]) ];
  (fout, [ f; g; h; fup; fout ])

let scale_of sched (name : string) =
  let m =
    Array.to_list sched.Poly.Schedule.members
    |> List.find (fun (m : Poly.Schedule.stage_sched) ->
           m.func.Ast.fname = name)
  in
  m.scale.(0)

let scaling_fig6 () =
  let fout, stages = fig6_chain () in
  ignore stages;
  let pipe = Pipeline.build ~outputs:[ fout ] in
  let members = List.init (Pipeline.n_stages pipe) (fun i -> i) in
  match Poly.Schedule.solve pipe members with
  | Error e -> Alcotest.failf "solve failed: %a" Poly.Schedule.pp_failure e
  | Ok sched ->
    let s name = scale_of sched name in
    (* consecutive ratios: g = 2f, h = 2g, fup = h/2, fout = fup/2 *)
    Alcotest.(check int) "g/f" (2 * s "f") (s "g");
    Alcotest.(check int) "h/g" (2 * s "g") (s "h");
    Alcotest.(check int) "h/fup" (2 * s "fup") (s "h");
    Alcotest.(check int) "fup/fout" (2 * s "fout") (s "fup");
    (* all dependences constant => widening finite and nonnegative *)
    Array.iter
      (fun (m : Poly.Schedule.stage_sched) ->
        Alcotest.(check bool) "widen_l >= 0" true (m.widen_l.(0) >= 0);
        Alcotest.(check bool) "widen_r >= 0" true (m.widen_r.(0) >= 0))
      sched.members

let scaling_failures () =
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let dom2 = [ (x, interval (ib 0) (ib 31)); (y, interval (ib 0) (ib 31)) ] in
  (* f(x,y) = g(x,y) + g(y,x): transposed access cannot be aligned *)
  let g = func ~name:"g" Float dom2 in
  define g [ always (v x +: v y) ];
  let f = func ~name:"f" Float dom2 in
  define f [ always (app g [ v x; v y ] +: app g [ v y; v x ]) ];
  let pipe = Pipeline.build ~outputs:[ f ] in
  (match Poly.Schedule.solve pipe [ 0; 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "transposed access must not be schedulable");
  (* f(x) = g(x/2) + g(x/4): two inconsistent scalings *)
  let x1 = Types.var ~name:"x1" () in
  let dom1 = [ (x1, interval (ib 0) (ib 63)) ] in
  let g1 = func ~name:"g1" Float [ (x1, interval (ib 0) (ib 63)) ] in
  define g1 [ always (v x1) ];
  let f1 = func ~name:"f1" Float dom1 in
  define f1 [ always (app g1 [ v x1 /^ 2 ] +: app g1 [ v x1 /^ 4 ]) ];
  let pipe1 = Pipeline.build ~outputs:[ f1 ] in
  (match Poly.Schedule.solve pipe1 [ 0; 1 ] with
  | Error (Poly.Schedule.Inconsistent _) -> ()
  | Error e -> Alcotest.failf "unexpected failure: %a" Poly.Schedule.pp_failure e
  | Ok _ -> Alcotest.fail "inconsistent scaling must fail");
  (* reductions are not tiled *)
  let im = image ~name:"ri" Float [ ib 16 ] in
  let acc = func ~name:"acc" Float [ (x1, interval (ib 0) (ib 15)) ] in
  let rx = Types.var ~name:"rx" () in
  accumulate acc
    ~over:[ (rx, interval (ib 0) (ib 15)) ]
    ~index:[ img_at im [ v rx ] ]
    ~value:(fl 1.) Ast.Rsum;
  let cons = func ~name:"consr" Float [ (x1, interval (ib 0) (ib 15)) ] in
  define cons [ always (app acc [ v x1 ]) ];
  let pipe2 = Pipeline.build ~outputs:[ cons ] in
  match Poly.Schedule.solve pipe2 [ 0; 1 ] with
  | Error (Poly.Schedule.Unsupported_stage _) -> ()
  | _ -> Alcotest.fail "reduction must be unsupported in tiled groups"

let widening_blur () =
  (* two 3-tap blurs: the producer must widen by exactly 1 on the
     blurred axis, tight shape; the naive shape with a 2-level group
     is identical here. *)
  let r, c, _img, out = Helpers.blur_pipeline () in
  ignore r;
  ignore c;
  let pipe = Pipeline.build ~outputs:[ out ] in
  match Poly.Schedule.solve pipe [ 0; 1 ] with
  | Error e -> Alcotest.failf "solve: %a" Poly.Schedule.pp_failure e
  | Ok sched ->
    let bx =
      Array.to_list sched.members
      |> List.find (fun (m : Poly.Schedule.stage_sched) -> m.func.Ast.fname = "bx")
    in
    Alcotest.(check (array int)) "bx widen_l" [| 0; 1 |] bx.widen_l;
    Alcotest.(check (array int)) "bx widen_r" [| 0; 1 |] bx.widen_r;
    let o = Poly.Tiling.overlap sched in
    Alcotest.(check (array int)) "group overlap" [| 0; 2 |] o;
    let frac = Poly.Tiling.relative_overlap sched ~tile:[| 16; 16 |] in
    Alcotest.(check (float 1e-9)) "overlap fraction" (18. /. 16. -. 1.) frac

let naive_vs_tight () =
  (* a 3-level chain of y-stencils: tight shape widens level-0 by 2,
     naive by 2 as well (uniform slope 1 * height 2) -- they differ
     once dependences are not uniform; build one asymmetric case. *)
  let x = Types.var ~name:"x" () in
  let dom = [ (x, interval (ib 0) (ib 127)) ] in
  let im = image ~name:"nin" Float [ ib 128 ] in
  let a = func ~name:"na" Float dom in
  define a
    [
      case (between (v x) (i 4) (i 123))
        (img_at im [ v x -: i 4 ] +: img_at im [ v x +: i 4 ]);
    ];
  (* b reads a far (radius 3), c reads b near (radius 1) *)
  let b = func ~name:"nb" Float dom in
  define b
    [
      case (between (v x) (i 4) (i 123))
        (app a [ v x -: i 3 ] +: app a [ v x +: i 3 ]);
    ];
  let c = func ~name:"nc" Float dom in
  define c
    [
      case (between (v x) (i 4) (i 123))
        (app b [ v x -: i 1 ] +: app b [ v x +: i 1 ]);
    ];
  let pipe = Pipeline.build ~outputs:[ c ] in
  match Poly.Schedule.solve pipe [ 0; 1; 2 ] with
  | Error e -> Alcotest.failf "solve: %a" Poly.Schedule.pp_failure e
  | Ok sched ->
    let m name =
      Array.to_list sched.members
      |> List.find (fun (m : Poly.Schedule.stage_sched) -> m.func.Ast.fname = name)
    in
    (* tight: a widens by 3+1 = 4; naive: uniform max slope 3 over
       height 2 = 6 *)
    Alcotest.(check int) "tight a" 4 ((m "na").widen_l.(0));
    Alcotest.(check int) "naive a" 6 ((m "na").widen_l_naive.(0));
    Alcotest.(check bool) "naive >= tight everywhere" true
      (Array.for_all
         (fun (ms : Poly.Schedule.stage_sched) ->
           ms.widen_l_naive.(0) >= ms.widen_l.(0)
           && ms.widen_r_naive.(0) >= ms.widen_r.(0))
         sched.members)

let suite =
  ( "polyhedral",
    [
      Alcotest.test_case "access extraction" `Quick access_units;
      Alcotest.test_case "fig6 scaling chain" `Quick scaling_fig6;
      Alcotest.test_case "scaling failures" `Quick scaling_failures;
      Alcotest.test_case "widening (blur)" `Quick widening_blur;
      Alcotest.test_case "naive vs tight shapes" `Quick naive_vs_tight;
    ] )

(* 3-D groups: the camera pipeline's final group has a 3-D canonical
   space with half-resolution members scaled by 2; bilateral's blur
   group tiles all three grid axes; interpolate's channel dimension is
   residual through the whole pyramid. *)
let three_d_groups () =
  let check_app name pred =
    let app = Polymage_apps.Apps.find name in
    let env = app.Polymage_apps.App.small_env in
    let opts =
      Polymage_compiler.Options.opt ~estimates:env ()
    in
    let plan =
      Polymage_compiler.Compile.run opts ~outputs:app.Polymage_apps.App.outputs
    in
    let found = ref false in
    Array.iter
      (function
        | Polymage_compiler.Plan.Tiled g -> if pred g then found := true
        | Polymage_compiler.Plan.Straight _ -> ())
      plan.items;
    Alcotest.(check bool) name true !found
  in
  (* camera: a 3-D-canonical group containing scale-2 members *)
  check_app "camera_pipe" (fun g ->
      g.sched.n_cdims = 3
      && Array.exists
           (fun (m : Poly.Schedule.stage_sched) ->
             Array.exists (fun s -> s = 2) m.scale)
           g.sched.members);
  (* bilateral: a 3-D group whose z axis needs widening too *)
  check_app "bilateral_grid" (fun g ->
      g.sched.n_cdims = 3
      && Array.exists (fun o -> o > 0) (Poly.Tiling.overlap g.sched));
  (* interpolate: 3-D canonical space where the channel axis needs no
     widening (point-wise along channels) *)
  check_app "interpolate" (fun g ->
      g.sched.n_cdims = 3 && (Poly.Tiling.overlap g.sched).(0) = 0)

(* Residual dimensions: a stage read only at constant indices along
   one dimension is iterated fully inside the tile. *)
let residual_dims () =
  let open Polymage_dsl.Dsl in
  let c = Types.var ~name:"rc" ()
  and x = Types.var ~name:"rx2" ()
  and y = Types.var ~name:"ry2" () in
  let im = image ~name:"res_img" Float [ ib 2; ib 36; ib 36 ] in
  let prod =
    func ~name:"res_prod" Float
      [
        (c, interval (ib 0) (ib 1));
        (x, interval (ib 0) (ib 35));
        (y, interval (ib 0) (ib 35));
      ]
  in
  define prod [ always (img_at im [ v c; v x; v y ] *: fl 2.) ];
  let sink =
    func ~name:"res_sink" Float
      [ (x, interval (ib 0) (ib 35)); (y, interval (ib 0) (ib 35)) ]
  in
  define sink
    [
      case
        (in_box [ (v x, i 1, i 34); (v y, i 1, i 34) ])
        (app prod [ i 0; v x -: i 1; v y ] +: app prod [ i 1; v x +: i 1; v y ]);
    ];
  let pipe = Pipeline.build ~outputs:[ sink ] in
  match Poly.Schedule.solve pipe [ 0; 1 ] with
  | Error e -> Alcotest.failf "solve: %a" Poly.Schedule.pp_failure e
  | Ok sched ->
    Alcotest.(check int) "canonical dims from the 2-D sink" 2 sched.n_cdims;
    let prod_s =
      Array.to_list sched.members
      |> List.find (fun (m : Poly.Schedule.stage_sched) ->
             m.func.Ast.fname = "res_prod")
    in
    Alcotest.(check (array int)) "channel residual, x/y aligned"
      [| -1; 0; 1 |] prod_s.align;
    (* the x stencil widens the producer by one on each side *)
    Alcotest.(check int) "widen_l" 1 prod_s.widen_l.(0);
    Alcotest.(check int) "widen_r" 1 prod_s.widen_r.(0);
    (* and the executor handles the residual dimension: tiled == naive *)
    let module C = Polymage_compiler in
    let module Rt = Polymage_rt in
    let env = [] in
    let images (plan : C.Plan.t) =
      List.map
        (fun im ->
          ( im,
            Rt.Buffer.of_image im env (fun co ->
                float_of_int ((co.(0) * 100) + (co.(1) * 10) + co.(2))) ))
        plan.pipe.Pipeline.images
    in
    let run opts =
      let plan = C.Compile.run opts ~outputs:[ sink ] in
      let r = Rt.Executor.run plan env ~images:(images plan) in
      Rt.Executor.output_buffer r sink
    in
    let b1 = run (C.Options.base ~estimates:env ()) in
    let b2 =
      run (C.Options.with_tile [| 8; 8 |] (C.Options.opt_vec ~estimates:env ()))
    in
    Alcotest.(check bool) "residual exec equal" true
      (Rt.Buffer.equal b1 b2)

let deep_chain_widening () =
  (* a chain of k 3-tap stencils must widen the first stage by exactly
     k-1 on each side (tight shapes accumulate +1 per level) *)
  let open Polymage_dsl.Dsl in
  let x = Types.var ~name:"wx" () in
  let depth = 5 in
  let dom = [ (x, interval (ib 0) (ib 255)) ] in
  let im = image ~name:"wimg" Float [ ib 256 ] in
  let first = func ~name:"w0" Float dom in
  define first
    [
      case
        (between (v x) (i depth) (i (255 - depth)))
        (img_at im [ v x -: i 1 ] +: img_at im [ v x +: i 1 ]);
    ];
  let rec chain k prev =
    if k = depth then prev
    else begin
      let f = func ~name:(Printf.sprintf "w%d" k) Float dom in
      define f
        [
          case
            (between (v x) (i depth) (i (255 - depth)))
            (app prev [ v x -: i 1 ] +: app prev [ v x +: i 1 ]);
        ];
      chain (k + 1) f
    end
  in
  let out = chain 1 first in
  let pipe = Pipeline.build ~outputs:[ out ] in
  let members = List.init (Pipeline.n_stages pipe) (fun i -> i) in
  match Poly.Schedule.solve pipe members with
  | Error e -> Alcotest.failf "solve: %a" Poly.Schedule.pp_failure e
  | Ok sched ->
    let w0 =
      Array.to_list sched.members
      |> List.find (fun (m : Poly.Schedule.stage_sched) ->
             m.func.Ast.fname = "w0")
    in
    Alcotest.(check int) "w0 widen_l" (depth - 1) w0.widen_l.(0);
    Alcotest.(check int) "w0 widen_r" (depth - 1) w0.widen_r.(0);
    Alcotest.(check int) "slope_l" 1 sched.slope_l.(0);
    Alcotest.(check int) "slope_r" 1 sched.slope_r.(0)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "3-D groups" `Quick three_d_groups;
        Alcotest.test_case "residual dimensions" `Quick residual_dims;
        Alcotest.test_case "deep chain widening" `Quick deep_chain_widening;
      ] )
