test/test_runtime.ml: Alcotest Array Ast Atomic Filename Helpers Polymage_apps Polymage_compiler Polymage_dsl Polymage_ir Polymage_rt Printf Sys Types
