test/helpers.ml: Alcotest Float List Pipeline Polymage_apps Polymage_compiler Polymage_dsl Polymage_ir Polymage_rt
