test/test_codegen.ml: Alcotest Array Ast Filename Float Lazy List Pipeline Polymage_apps Polymage_codegen Polymage_compiler Polymage_ir Polymage_rt Printf String Sys
