test/test_apps.ml: Alcotest Array Ast Float Helpers List Option Pipeline Polymage_apps Polymage_compiler Polymage_ir Polymage_ref Polymage_rt Types
