test/test_random.ml: Array List Polymage_compiler Polymage_dsl Polymage_ir Polymage_rt Printf QCheck QCheck_alcotest String Types
