test/test_compiler.ml: Alcotest Array Ast Format Helpers List Pipeline Polymage_apps Polymage_compiler Polymage_dsl Polymage_ir Types
