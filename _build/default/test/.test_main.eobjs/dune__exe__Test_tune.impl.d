test/test_tune.ml: Alcotest Helpers List Polymage_apps Polymage_compiler Polymage_rt Polymage_tune
