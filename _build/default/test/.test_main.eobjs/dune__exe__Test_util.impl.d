test/test_util.ml: Alcotest Array List Polymage_util QCheck QCheck_alcotest
