test/test_ir.ml: Abound Alcotest Array Ast Expr Float Helpers List Pipeline Polymage_dsl Polymage_ir Polymage_util QCheck QCheck_alcotest String Types
