test/test_exec_matrix.ml: Alcotest Hashtbl Helpers List Polymage_apps Polymage_compiler Printf
