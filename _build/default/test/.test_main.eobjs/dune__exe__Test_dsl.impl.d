test/test_dsl.ml: Alcotest Array Ast Expr Float List Polymage_dsl Polymage_ir Types
