test/test_poly.ml: Alcotest Array Ast Format Helpers List Pipeline Polymage_apps Polymage_compiler Polymage_dsl Polymage_ir Polymage_poly Polymage_rt Printf Types
