test/test_eval.ml: Alcotest Array Ast Expr Float Polymage_dsl Polymage_ir Polymage_rt Printf QCheck QCheck_alcotest Types
