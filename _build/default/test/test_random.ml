(* Property-based testing on randomly generated pipelines: arbitrary
   DAGs of point-wise, stencil, down- and up-sampling stages must
   execute identically under the base and the fully optimized
   configurations, for random tile sizes and thresholds. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
open Polymage_dsl.Dsl

(* Stage grids follow the pyramid convention: logical size s, domain
   [0 .. s+3], computed interior [2 .. s].  All four operation kinds
   keep accesses inside the producer's domain (see Pyramid). *)
type op = Point | Stencil | Down | Up

let gen_pipeline =
  let open QCheck.Gen in
  let* n_stages = int_range 2 8 in
  let* ops =
    list_repeat n_stages
      (frequency
         [ (3, return Point); (3, return Stencil); (2, return Down); (2, return Up) ])
  in
  let* extra_edges = list_repeat n_stages (int_range 0 10) in
  let* coeffs = list_repeat n_stages (int_range 1 3) in
  return (ops, extra_edges, coeffs)

let build_random (ops, extra_edges, coeffs) =
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let base_size = 64 in
  let img = image ~name:"rin" Float [ ib (base_size + 4); ib (base_size + 4) ] in
  let dom s =
    [ (x, interval (ib 0) (ib (s + 3))); (y, interval (ib 0) (ib (s + 3))) ]
  in
  let interior s = in_box [ (v x, i 2, i s); (v y, i 2, i s) ] in
  (* stage list with their logical sizes; the image is size base_size *)
  let stages = ref [] in
  let idx = ref 0 in
  List.iter2
    (fun op (extra, coef) ->
      let k = !idx in
      incr idx;
      (* producer: previous stage or the image *)
      let prev_size, prev_sample =
        match !stages with
        | [] -> (base_size, fun ix iy -> img_at img [ ix; iy ])
        | (s, f) :: _ -> (s, fun ix iy -> app f [ ix; iy ])
      in
      let op =
        (* keep sizes within [8, 128] *)
        match op with
        | Down when prev_size < 16 -> Stencil
        | Up when prev_size > 64 -> Stencil
        | o -> o
      in
      let size, rhs =
        match op with
        | Point ->
          ( prev_size,
            (fl (float_of_int coef) *: prev_sample (v x) (v y)) +: fl 0.5 )
        | Stencil ->
          ( prev_size,
            fl (1. /. 5.)
            *: (prev_sample (v x -: i 1) (v y)
               +: prev_sample (v x +: i 1) (v y)
               +: prev_sample (v x) (v y -: i 1)
               +: prev_sample (v x) (v y +: i 1)
               +: prev_sample (v x) (v y)) )
        | Down ->
          ( prev_size / 2,
            prev_sample ((i 2 *: v x) -: i 1) (i 2 *: v y)
            +: prev_sample (i 2 *: v x) ((i 2 *: v y) +: i 1) )
        | Up ->
          ( prev_size * 2,
            prev_sample ((v x -: i 1) /^ 2) (v y /^ 2)
            +: prev_sample ((v x +: i 1) /^ 2) ((v y +: i 1) /^ 2) )
      in
      (* occasionally add a same-size point-wise side input, making the
         graph a DAG rather than a chain *)
      let rhs =
        let same_size =
          List.filter (fun (s, _) -> s = size) !stages
        in
        if same_size <> [] && extra mod 3 = 0 then
          let _, g = List.nth same_size (extra mod List.length same_size) in
          rhs +: app g [ v x; v y ]
        else rhs
      in
      let f = func ~name:(Printf.sprintf "s%d" k) Float (dom size) in
      define f [ case (interior size) rhs ];
      stages := (size, f) :: !stages)
    ops
    (List.combine extra_edges coeffs);
  match !stages with
  | (_, out) :: _ -> (img, out)
  | [] -> assert false

let exec_equal (spec : op list * int list * int list)
    ((tile, threshold, vec), para) =
  let img, out = build_random spec in
  let env = [] in
  let images plan =
    ignore plan;
    [
      ( img,
        Rt.Buffer.of_image img env (fun c ->
            float_of_int (((c.(0) * 13) + (c.(1) * 29)) mod 23) /. 7.) );
    ]
  in
  let base = C.Options.base ~estimates:env () in
  let plan_b = C.Compile.run base ~outputs:[ out ] in
  let rb = Rt.Executor.run plan_b env ~images:(images plan_b) in
  let opts =
    C.Options.with_threshold threshold
      (C.Options.with_tile [| tile; tile |]
         (if vec then C.Options.opt_vec ~estimates:env ()
          else C.Options.opt ~estimates:env ()))
  in
  let opts =
    match para with
    | 0 -> opts
    | 1 -> { opts with C.Options.tiling = C.Options.Parallelogram }
    | _ -> { opts with C.Options.tiling = C.Options.Split }
  in
  let plan_o = C.Compile.run opts ~outputs:[ out ] in
  let ro = Rt.Executor.run plan_o env ~images:(images plan_o) in
  let a = Rt.Executor.output_buffer rb out in
  let b = Rt.Executor.output_buffer ro out in
  Rt.Buffer.max_abs_diff a b <= 1e-9

let arb =
  QCheck.make
    ~print:(fun ((ops, _, _), ((t, th, v), para)) ->
      Printf.sprintf "ops=[%s] tile=%d thresh=%g vec=%b mode=%d"
        (String.concat ";"
           (List.map
              (function
                | Point -> "P" | Stencil -> "S" | Down -> "D" | Up -> "U")
              ops))
        t th v para)
    QCheck.Gen.(
      pair gen_pipeline
        (pair
           (triple (oneofl [ 4; 8; 16; 33 ]) (oneofl [ 0.2; 0.5; 4.0 ]) bool)
           (int_range 0 2)))

let suite =
  ( "random-pipelines",
    [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"tiled == naive on random DAGs" ~count:60 arb
           (fun (spec, cfg) -> exec_equal spec cfg));
    ] )

(* 1-D chains: exercises single-loop tiling, where the inner loop IS
   the tiled loop. *)
let exec_equal_1d (ops : op list) tile =
  let x = Types.var ~name:"ox" () in
  let base_size = 256 in
  let img = image ~name:"rin1" Float [ ib (base_size + 4) ] in
  let dom s = [ (x, interval (ib 0) (ib (s + 3))) ] in
  let interior s = between (v x) (i 2) (i s) in
  let stages = ref [] in
  List.iteri
    (fun k op ->
      let prev_size, prev =
        match !stages with
        | [] -> (base_size, fun ix -> img_at img [ ix ])
        | (s, f) :: _ -> (s, fun ix -> app f [ ix ])
      in
      let op =
        match op with
        | Down when prev_size < 32 -> Stencil
        | Up when prev_size > 256 -> Stencil
        | o -> o
      in
      let size, rhs =
        match op with
        | Point -> (prev_size, (fl 1.5 *: prev (v x)) -: fl 0.25)
        | Stencil ->
          ( prev_size,
            fl (1. /. 3.)
            *: (prev (v x -: i 1) +: prev (v x) +: prev (v x +: i 1)) )
        | Down -> (prev_size / 2, prev ((i 2 *: v x) -: i 1) +: prev (i 2 *: v x))
        | Up -> (prev_size * 2, prev ((v x -: i 1) /^ 2) +: prev ((v x +: i 1) /^ 2))
      in
      let f = func ~name:(Printf.sprintf "o%d" k) Float (dom size) in
      define f [ case (interior size) rhs ];
      stages := (size, f) :: !stages)
    ops;
  let out = snd (List.hd !stages) in
  let env = [] in
  let images (_ : C.Plan.t) =
    [ (img, Rt.Buffer.of_image img env (fun c -> float_of_int (c.(0) mod 19) /. 5.)) ]
  in
  let run opts =
    let plan = C.Compile.run opts ~outputs:[ out ] in
    Rt.Executor.output_buffer
      (Rt.Executor.run plan env ~images:(images plan))
      out
  in
  let a = run (C.Options.base ~estimates:env ()) in
  let b =
    run (C.Options.with_tile [| tile |] (C.Options.opt_vec ~estimates:env ()))
  in
  Rt.Buffer.max_abs_diff a b <= 1e-9

let arb_1d =
  QCheck.make
    ~print:(fun (ops, t) ->
      Printf.sprintf "1d ops=%d tile=%d" (List.length ops) t)
    QCheck.Gen.(
      pair
        (list_size (int_range 2 7)
           (frequency
              [ (2, return Point); (3, return Stencil); (2, return Down);
                (2, return Up) ]))
        (oneofl [ 4; 16; 64 ]))

let suite =
  ( fst suite,
    snd suite
    @ [
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make ~name:"tiled == naive on random 1-D chains"
             ~count:40 arb_1d (fun (ops, t) -> exec_equal_1d ops t));
      ] )
