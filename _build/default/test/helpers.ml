(* Shared utilities for the test suites. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App

let images_for (app : App.t) (plan : C.Plan.t) env =
  List.map
    (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
    plan.pipe.Pipeline.images

let run_app (app : App.t) (opts : C.Options.t) env =
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let images = images_for app plan env in
  let res = Rt.Executor.run plan env ~images in
  (plan, res)

let output_of (app : App.t) res =
  Rt.Executor.output_buffer res (List.hd app.outputs)

let check_buffers_equal ?(eps = 1e-9) what a b =
  let d = Rt.Buffer.max_abs_diff a b in
  if Float.is_nan d then Alcotest.failf "%s: buffer shapes differ" what;
  if d > eps then Alcotest.failf "%s: max abs diff %g > %g" what d eps

(* A tiny two-stage blur pipeline used by several unit suites. *)
let blur_pipeline () =
  let open Polymage_dsl.Dsl in
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img = image ~name:"in" Float [ param_b r +~ ib 2; param_b c +~ ib 2 ] in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let dom =
    [
      (x, interval (ib 0) (param_b r +~ ib 1));
      (y, interval (ib 0) (param_b c +~ ib 1));
    ]
  in
  let interior = in_box [ (v x, i 1, p r); (v y, i 1, p c) ] in
  let bx = func ~name:"bx" Float dom in
  define bx
    [
      case interior
        (fl (1. /. 3.)
        *: (img_at img [ v x -: i 1; v y ]
           +: img_at img [ v x; v y ]
           +: img_at img [ v x +: i 1; v y ]));
    ];
  let by = func ~name:"by" Float dom in
  define by
    [
      case interior
        (fl (1. /. 3.)
        *: (app bx [ v x; v y -: i 1 ]
           +: app bx [ v x; v y ]
           +: app bx [ v x; v y +: i 1 ]));
    ];
  (r, c, img, by)
