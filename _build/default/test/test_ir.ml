(* IR tests: affine bounds, expression simplification (semantics
   preserved, checked by qcheck), condition boxes, pipeline graphs. *)
open Polymage_ir
module Q = Polymage_util.Rational
open Polymage_dsl.Dsl

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* ---------- Abound ---------- *)

let abound_units () =
  let r = parameter ~name:"r" () and c = parameter ~name:"c" () in
  let env = [ (r, 100); (c, 7) ] in
  let b = param_b r +~ ib 2 in
  Alcotest.(check int) "R+2" 102 (Abound.eval b env);
  let half = param_b r /~ 8 in
  Alcotest.(check int) "R/8 floors" 12 (Abound.eval half env);
  let mix = (param_b r /~ 4) +~ (param_b c /~ 2) +~ ib 1 in
  (* exact rational evaluation then one floor: 25 + 3.5 + 1 = 29.5 *)
  Alcotest.(check int) "single floor at the end" 29 (Abound.eval mix env);
  Alcotest.(check bool) "nonneg" true (Abound.nonneg_for_nonneg_params b);
  Alcotest.(check bool) "not nonneg" false
    (Abound.nonneg_for_nonneg_params (Abound.sub (ib 0) (param_b r)));
  let cst, terms, den = Abound.to_linear mix in
  Alcotest.(check int) "linear den" 4 den;
  Alcotest.(check int) "linear const" 4 cst;
  Alcotest.(check int) "linear terms" 2 (List.length terms)

(* ---------- expression simplification ---------- *)

(* Random closed expressions over two variables (no stage reads). *)
let arb_expr =
  let open QCheck.Gen in
  let x = Types.var ~name:"tx" () and y = Types.var ~name:"ty" () in
  let leaf =
    oneof
      [
        map (fun n -> fl (float_of_int n)) (int_range (-8) 8);
        return (v x);
        return (v y);
      ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> a +: b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> a -: b) (expr (n - 1)) (expr (n - 1)));
          (2, map2 (fun a b -> a *: b) (expr (n - 1)) (expr (n - 1)));
          (1, map (fun a -> neg a) (expr (n - 1)));
          (1, map (fun a -> a /^ 2) (expr (n - 1)));
          (1, map (fun a -> a %^ 3) (expr (n - 1)));
          (1, map (fun a -> min_ a (fl 2.)) (expr (n - 1)));
          ( 1,
            map2
              (fun a b -> select (a <: b) a b)
              (expr (n - 1))
              (expr (n - 1)) );
        ]
  in
  let gen = expr 4 in
  (QCheck.make ~print:Expr.to_string gen, x, y)

let eval_closed x y (xv, yv) e =
  Expr.eval
    ~var:(fun w ->
      if Types.var_equal w x then float_of_int xv
      else if Types.var_equal w y then float_of_int yv
      else Alcotest.fail "unexpected var")
    ~param:(fun _ -> Alcotest.fail "unexpected param")
    ~call:(fun _ _ -> Alcotest.fail "unexpected call")
    ~img:(fun _ _ -> Alcotest.fail "unexpected img")
    e

let simplify_preserves =
  let arb, x, y = arb_expr in
  prop "simplify preserves evaluation" 500
    QCheck.(pair arb (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (e, pt) ->
      let a = eval_closed x y pt e in
      let b = eval_closed x y pt (Expr.simplify e) in
      (Float.is_nan a && Float.is_nan b) || a = b)

let simplify_units () =
  let x = Types.var ~name:"x" () in
  let e = Expr.simplify ((v x +: i 0) *: fl 1.0) in
  (match e with Ast.Var _ -> () | _ -> Alcotest.fail "x*1+0 should fold");
  (match Expr.simplify (fl 2. *: fl 3.) with
  | Ast.Const 6. -> ()
  | _ -> Alcotest.fail "const folding");
  match Expr.simplify (select (i 1 <: i 2) (v x) (fl 0.)) with
  | Ast.Var _ -> ()
  | _ -> Alcotest.fail "true select folds"

(* ---------- condition boxes ---------- *)

let box_units () =
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let r = Types.param ~name:"R" () in
  let c = in_box [ (v x, i 2, p r -: i 1); (v y, i 1, p r) ] in
  (match Expr.box_of_cond [ x; y ] c with
  | None -> Alcotest.fail "box expected"
  | Some box ->
    let lo0, hi0 = box.(0) and lo1, hi1 = box.(1) in
    let ev = function
      | Some b -> Abound.eval b [ (r, 10) ]
      | None -> Alcotest.fail "bound expected"
    in
    Alcotest.(check int) "x lo" 2 (ev lo0);
    Alcotest.(check int) "x hi" 9 (ev hi0);
    Alcotest.(check int) "y lo" 1 (ev lo1);
    Alcotest.(check int) "y hi" 10 (ev hi1));
  (* disjunction is not a box *)
  (match Expr.box_of_cond [ x ] ((v x <: i 1) ||: (v x >: i 5)) with
  | None -> ()
  | Some _ -> Alcotest.fail "disjunction must not be a box");
  (* data-dependent condition is not a box *)
  let im = image ~name:"t" Float [ ib 4 ] in
  match Expr.box_of_cond [ x ] (img_at im [ v x ] <: fl 0.5) with
  | None -> ()
  | Some _ -> Alcotest.fail "data-dependent must not be a box"

(* ---------- pipeline graphs ---------- *)

let pipeline_units () =
  let r, c, img, out = Helpers.blur_pipeline () in
  ignore r;
  ignore c;
  let pipe = Pipeline.build ~outputs:[ out ] in
  Alcotest.(check int) "stages" 2 (Pipeline.n_stages pipe);
  Alcotest.(check int) "levels" 1 (Pipeline.max_level pipe);
  Alcotest.(check int) "images" 1 (List.length pipe.images);
  Alcotest.(check bool) "img found" true
    (List.exists (fun i -> Ast.image_equal i img) pipe.images);
  Alcotest.(check int) "params" 2 (List.length pipe.params);
  let dot = Pipeline.to_dot pipe in
  Alcotest.(check bool) "dot has edges" true
    (String.length dot > 0
    && String.length (String.concat "" (String.split_on_char '>' dot))
       < String.length dot)

let pipeline_errors () =
  let x = Types.var ~name:"x" () in
  let dom = [ (x, interval (ib 0) (ib 9)) ] in
  let a = func ~name:"a" Float dom in
  let b = func ~name:"b" Float dom in
  (* mutual cycle *)
  a.Ast.fbody <- Ast.Cases [ { ccond = None; rhs = app b [ v x ] } ];
  b.Ast.fbody <- Ast.Cases [ { ccond = None; rhs = app a [ v x ] } ];
  (match Pipeline.build ~outputs:[ b ] with
  | exception Pipeline.Invalid_pipeline _ -> ()
  | _ -> Alcotest.fail "cycle must be rejected");
  (* undefined stage *)
  let u = func ~name:"u" Float dom in
  let consumer = func ~name:"cons" Float dom in
  define consumer [ always (app u [ v x ]) ];
  (match Pipeline.build ~outputs:[ consumer ] with
  | exception Pipeline.Invalid_pipeline _ -> ()
  | _ -> Alcotest.fail "undefined stage must be rejected");
  (* arity mismatch *)
  let w = func ~name:"w" Float dom in
  define w [ always (v x) ];
  let bad = func ~name:"bad" Float dom in
  define bad [ always (app w [ v x; v x ]) ];
  match Pipeline.build ~outputs:[ bad ] with
  | exception Pipeline.Invalid_pipeline _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let dsl_errors () =
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let dom = [ (x, interval (ib 0) (ib 9)) ] in
  let f = func ~name:"f" Float dom in
  (match define f [ always (v y) ] with
  | exception Definition_error _ -> ()
  | _ -> Alcotest.fail "foreign variable must be rejected");
  let g = func ~name:"g" Float dom in
  define g [ always (v x) ];
  match define g [ always (v x) ] with
  | exception Definition_error _ -> ()
  | _ -> Alcotest.fail "double definition must be rejected"

let suite =
  ( "ir",
    [
      Alcotest.test_case "abound" `Quick abound_units;
      Alcotest.test_case "simplify units" `Quick simplify_units;
      Alcotest.test_case "condition boxes" `Quick box_units;
      Alcotest.test_case "pipeline graph" `Quick pipeline_units;
      Alcotest.test_case "pipeline errors" `Quick pipeline_errors;
      Alcotest.test_case "dsl definition errors" `Quick dsl_errors;
      simplify_preserves;
    ] )
