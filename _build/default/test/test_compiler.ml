(* Compiler phases: bounds checking, inlining, grouping (Algorithm 1
   invariants), storage statistics, plan shapes. *)
open Polymage_ir
module C = Polymage_compiler
module Apps = Polymage_apps.Apps
open Polymage_dsl.Dsl

(* ---------- bounds checking ---------- *)

let bounds_accepts_apps () =
  List.iter
    (fun (app : Polymage_apps.App.t) ->
      let pipe = Pipeline.build ~outputs:app.outputs in
      match C.Bounds_check.check pipe with
      | [] -> ()
      | ds ->
        Alcotest.failf "%s: %a" app.name
          (Format.pp_print_list C.Bounds_check.pp_diag)
          ds)
    (Apps.all ())

let bounds_rejects () =
  let r = parameter ~name:"R" () in
  let x = Types.var ~name:"x" () in
  let img = image ~name:"bi" Float [ param_b r ] in
  (* reads img at x+1 over the full [0, R-1]: off the end *)
  let f = func ~name:"bad" Float [ (x, interval (ib 0) (param_b r -~ ib 1)) ] in
  define f [ always (img_at img [ v x +: i 1 ]) ];
  let pipe = Pipeline.build ~outputs:[ f ] in
  (match C.Bounds_check.check pipe with
  | [] -> Alcotest.fail "out-of-bounds stencil must be reported"
  | d :: _ ->
    Alcotest.(check string) "stage" "bad" d.stage;
    Alcotest.(check string) "target" "bi" d.target);
  (* lower bound violation guarded by a case condition is fine *)
  let g = func ~name:"ok" Float [ (x, interval (ib 0) (param_b r -~ ib 1)) ] in
  define g
    [ case (between (v x) (i 1) (p r -: i 1)) (img_at img [ v x -: i 1 ]) ];
  let pipe = Pipeline.build ~outputs:[ g ] in
  (match C.Bounds_check.check pipe with
  | [] -> ()
  | ds ->
    Alcotest.failf "guarded access wrongly reported: %a"
      (Format.pp_print_list C.Bounds_check.pp_diag)
      ds);
  (* unguarded version of the same access is rejected *)
  let h = func ~name:"bad2" Float [ (x, interval (ib 0) (param_b r -~ ib 1)) ] in
  define h [ always (img_at img [ v x -: i 1 ]) ];
  let pipe = Pipeline.build ~outputs:[ h ] in
  (match C.Bounds_check.check pipe with
  | [] -> Alcotest.fail "lower-bound violation must be reported"
  | _ -> ());
  (* accumulator cell index out of the accumulator domain *)
  let a = func ~name:"acc" Float [ (x, interval (ib 0) (ib 7)) ] in
  let rx = Types.var ~name:"rx" () in
  accumulate a
    ~over:[ (rx, interval (ib 0) (ib 15)) ]
    ~index:[ v rx ] ~value:(fl 1.) Ast.Rsum;
  let pipe = Pipeline.build ~outputs:[ a ] in
  (match C.Bounds_check.check pipe with
  | [] -> Alcotest.fail "accumulator overflow must be reported"
  | _ -> ());
  (* Compile.run surfaces the diagnostics *)
  match
    C.Compile.run (C.Options.base ~estimates:[ (r, 32) ] ()) ~outputs:[ f ]
  with
  | exception C.Compile.Bounds_error _ -> ()
  | _ -> Alcotest.fail "Compile.run must raise Bounds_error"

(* ---------- inlining ---------- *)

let inline_units () =
  let r = parameter ~name:"R" () in
  let x = Types.var ~name:"x" () in
  let img = image ~name:"ii" Float [ param_b r +~ ib 2 ] in
  let dom = [ (x, interval (ib 0) (param_b r +~ ib 1)) ] in
  let stencil_stage = func ~name:"st" Float dom in
  define stencil_stage
    [
      case (between (v x) (i 1) (p r))
        (img_at img [ v x -: i 1 ] +: img_at img [ v x +: i 1 ]);
    ];
  let pw = func ~name:"pw" Float dom in
  define pw [ always (app stencil_stage [ v x ] *: fl 2.) ];
  let sink = func ~name:"sink" Float dom in
  define sink [ always (app pw [ v x ] +: fl 1.) ];
  Alcotest.(check bool) "stencil not pointwise" false
    (C.Inline.is_pointwise stencil_stage);
  Alcotest.(check bool) "pw pointwise" true (C.Inline.is_pointwise pw);
  let pipe = Pipeline.build ~outputs:[ sink ] in
  let pipe', inlined = C.Inline.run pipe in
  Alcotest.(check int) "pw disappears" 2 (Pipeline.n_stages pipe');
  Alcotest.(check bool) "pw recorded" true
    (List.exists (fun (p, _) -> p = "pw") inlined)

let inline_preserves_semantics () =
  (* Run apps with inlining on and off; outputs agree up to the
     single-precision rounding of materialized intermediates (camera
     additionally quantizes to 8 bits, so one count of difference is
     possible at rounding boundaries). *)
  List.iter
    (fun (name, eps) ->
      let app = Apps.find name in
      let env = app.small_env in
      let with_inline = C.Options.base ~estimates:env () in
      let without = { with_inline with C.Options.inline_on = false } in
      let _, r1 = Helpers.run_app app with_inline env in
      let _, r2 = Helpers.run_app app without env in
      Helpers.check_buffers_equal ~eps
        (app.name ^ " inline on/off")
        (Helpers.output_of app r1) (Helpers.output_of app r2))
    [ ("harris", 1e-5); ("pyramid_blend", 1e-5); ("camera_pipe", 1.0) ]

(* ---------- grouping ---------- *)

let grouping_invariants () =
  List.iter
    (fun (app : Polymage_apps.App.t) ->
      let env = app.small_env in
      let pipe = Pipeline.build ~outputs:app.outputs in
      let pipe, _ = C.Inline.run pipe in
      let cfg = C.Grouping.default_config ~estimates:env in
      let g = C.Grouping.run pipe cfg in
      Alcotest.(check bool)
        (app.name ^ " grouping valid")
        true
        (C.Grouping.valid pipe g);
      (* group_order is a topological order of the quotient graph *)
      let order = C.Grouping.group_order pipe g in
      Alcotest.(check int)
        (app.name ^ " order covers")
        (Array.length g.groups) (List.length order))
    (Apps.all ())

let grouping_threshold_monotone () =
  (* a larger overlap threshold can only allow more merging *)
  let app = Apps.find "pyramid_blend" in
  let env = app.small_env in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let pipe, _ = C.Inline.run pipe in
  let groups_at t =
    let cfg =
      { (C.Grouping.default_config ~estimates:env) with
        C.Grouping.threshold = t; tile = [| 16; 16 |] }
    in
    Array.length (C.Grouping.run pipe cfg).groups
  in
  let g02 = groups_at 0.2 and g05 = groups_at 0.5 and g2 = groups_at 2.0 in
  Alcotest.(check bool) "0.5 merges at least as much as 0.2" true (g05 <= g02);
  Alcotest.(check bool) "2.0 merges at least as much as 0.5" true (g2 <= g05)

let grouping_tile_dependence () =
  (* bigger tiles amortize overlap: fewer groups *)
  let app = Apps.find "pyramid_blend" in
  let env = app.small_env in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let pipe, _ = C.Inline.run pipe in
  let groups_with tile =
    let cfg =
      { (C.Grouping.default_config ~estimates:env) with C.Grouping.tile }
    in
    Array.length (C.Grouping.run pipe cfg).groups
  in
  Alcotest.(check bool) "64x64 merges >= 8x8" true
    (groups_with [| 64; 64 |] <= groups_with [| 8; 8 |])

(* ---------- storage ---------- *)

let storage_stats () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts = C.Options.opt ~estimates:env () in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let s = C.Storage.stats plan env in
  Alcotest.(check bool) "scratch smaller than full-replacement" true
    (s.scratch_cells < s.unopt_cells);
  Alcotest.(check bool) "full buffers only for live-outs" true
    (s.full_cells < s.unopt_cells);
  (* base plan allocates everything *)
  let plan_b = C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs in
  let sb = C.Storage.stats plan_b env in
  Alcotest.(check int) "base full = unopt" sb.unopt_cells sb.full_cells;
  Alcotest.(check int) "base no scratch" 0 sb.scratch_cells

let plan_shapes () =
  let app = Apps.find "bilateral_grid" in
  let env = app.small_env in
  let plan = C.Compile.run (C.Options.opt ~estimates:env ()) ~outputs:app.outputs in
  (* the two grid reductions must be straight items, blurs tiled *)
  Alcotest.(check bool) "has tiled groups" true (C.Plan.n_tiled_groups plan >= 1);
  let has_reduction_straight =
    Array.exists
      (function
        | C.Plan.Straight i -> (
          match plan.pipe.stages.(i).Ast.fbody with
          | Ast.Reduce _ -> true
          | _ -> false)
        | _ -> false)
      plan.items
  in
  Alcotest.(check bool) "reductions straight" true has_reduction_straight;
  (* tiled members are never reductions *)
  Array.iter
    (function
      | C.Plan.Tiled g ->
        Array.iter
          (fun (m : C.Plan.member) ->
            match m.ms.func.Ast.fbody with
            | Ast.Reduce _ -> Alcotest.fail "reduction inside tiled group"
            | _ -> ())
          g.members
      | C.Plan.Straight _ -> ())
    plan.items

let suite =
  ( "compiler",
    [
      Alcotest.test_case "bounds accepts all apps" `Quick bounds_accepts_apps;
      Alcotest.test_case "bounds rejections" `Quick bounds_rejects;
      Alcotest.test_case "inline units" `Quick inline_units;
      Alcotest.test_case "inline preserves semantics" `Slow
        inline_preserves_semantics;
      Alcotest.test_case "grouping invariants" `Quick grouping_invariants;
      Alcotest.test_case "grouping threshold monotone" `Quick
        grouping_threshold_monotone;
      Alcotest.test_case "grouping tile dependence" `Quick
        grouping_tile_dependence;
      Alcotest.test_case "storage stats" `Quick storage_stats;
      Alcotest.test_case "plan shapes" `Quick plan_shapes;
    ] )

(* min_size keeps small stages out of groups; an absurd threshold
   disables grouping entirely. *)
let grouping_min_size () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let pipe, _ = C.Inline.run pipe in
  let groups_with min_size =
    let cfg =
      { (C.Grouping.default_config ~estimates:env) with C.Grouping.min_size }
    in
    Array.length (C.Grouping.run pipe cfg).groups
  in
  Alcotest.(check int) "huge min_size disables merging"
    (Pipeline.n_stages pipe)
    (groups_with max_int);
  Alcotest.(check bool) "normal min_size merges" true (groups_with 0 < Pipeline.n_stages pipe)

(* Inlining limits: a huge point-wise body is not inlined. *)
let inline_size_limit () =
  let open Polymage_dsl.Dsl in
  let x = Types.var ~name:"ix" () in
  let dom = [ (x, interval (ib 0) (ib 63)) ] in
  let im = image ~name:"inl_img" Float [ ib 64 ] in
  let big = func ~name:"big_pw" Float dom in
  (* a point-wise body with ~600 nodes *)
  let rec grow n acc =
    if n = 0 then acc else grow (n - 1) (acc +: (img_at im [ v x ] *: fl 1.5))
  in
  define big [ always (grow 200 (img_at im [ v x ])) ];
  let sink = func ~name:"inl_sink" Float dom in
  define sink [ always (app big [ v x ] +: fl 1.) ];
  let pipe = Pipeline.build ~outputs:[ sink ] in
  let pipe', inlined = C.Inline.run pipe in
  Alcotest.(check int) "big body kept" 2 (Pipeline.n_stages pipe');
  Alcotest.(check (list (pair string string))) "nothing inlined" [] inlined;
  (* with a custom limit it does get inlined *)
  let pipe'', _ = C.Inline.run ~max_size:10000 ~small_size:10000 pipe in
  Alcotest.(check int) "inlined under a larger limit" 1
    (Pipeline.n_stages pipe'')

(* Pyramid-style rational bounds pass the checker at every level. *)
let rational_bounds_check () =
  let app = Apps.find "local_laplacian" in
  let pipe = Pipeline.build ~outputs:app.outputs in
  Alcotest.(check int) "no diagnostics" 0
    (List.length (C.Bounds_check.check pipe))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "grouping min_size" `Quick grouping_min_size;
        Alcotest.test_case "inline size limit" `Quick inline_size_limit;
        Alcotest.test_case "rational bounds (pyramids)" `Quick
          rational_bounds_check;
      ] )
