(* Surface-language semantics: the pattern helpers (paper Table 1 /
   the Stencil construct) must build expressions that evaluate to the
   arithmetic they abbreviate, and misuse must be rejected. *)
open Polymage_ir
open Polymage_dsl.Dsl

let xv = Types.var ~name:"dx" ()
let yv = Types.var ~name:"dy" ()

(* Evaluate an expression at a point over a synthetic "image": the
   sampler returns a known function of the coordinates. *)
let sample_fn cs =
  match cs with
  | [ a; b ] -> (3.7 *. a) +. (1.3 *. b) +. (0.01 *. a *. b)
  | _ -> Alcotest.fail "2-D sample expected"

let img = image ~name:"dsl_img" Float [ ib 64; ib 64 ]

let eval_at x y e =
  Expr.eval
    ~var:(fun w ->
      if Types.var_equal w xv then float_of_int x
      else if Types.var_equal w yv then float_of_int y
      else Alcotest.fail "foreign var")
    ~param:(fun _ -> Alcotest.fail "no params")
    ~call:(fun _ _ -> Alcotest.fail "no calls")
    ~img:(fun _ args -> sample_fn (Array.to_list args))
    e

let near = Alcotest.float 1e-9

let stencil_semantics () =
  (* 3x3 weighted stencil vs the hand-written sum *)
  let w = [ [ 1.; 2.; 1. ]; [ 2.; 4.; 2. ]; [ 1.; 2.; 1. ] ] in
  let e =
    stencil (fun idx -> img_at img idx) ~scale:(1. /. 16.) w (v xv) (v yv)
  in
  let x = 10 and y = 20 in
  let expected =
    List.fold_left ( +. ) 0.
      (List.concat
         (List.mapi
            (fun r row ->
              List.mapi
                (fun c wt ->
                  wt /. 16.
                  *. sample_fn
                       [ float_of_int (x + r - 1); float_of_int (y + c - 1) ])
                row)
            w))
  in
  Alcotest.check near "3x3 stencil" expected (eval_at x y e);
  (* zero taps are skipped but do not change the value *)
  let sparse = [ [ 0.; 1.; 0. ]; [ 1.; 0.; 1. ]; [ 0.; 1.; 0. ] ] in
  let e = stencil (fun idx -> img_at img idx) sparse (v xv) (v yv) in
  let expected =
    sample_fn [ 9.; 20. ] +. sample_fn [ 10.; 19. ] +. sample_fn [ 10.; 21. ]
    +. sample_fn [ 11.; 20. ]
  in
  Alcotest.check near "sparse stencil" expected (eval_at x y e)

let stencil1d_semantics () =
  let e =
    stencil1d (fun ix -> img_at img [ ix; v yv ]) ~scale:0.2
      [ 1.; 2.; 4.; 2.; 1. ] (v xv)
  in
  let x = 8 and y = 5 in
  let expected =
    0.2
    *. ((1. *. sample_fn [ 6.; 5. ]) +. (2. *. sample_fn [ 7.; 5. ])
       +. (4. *. sample_fn [ 8.; 5. ])
       +. (2. *. sample_fn [ 9.; 5. ])
       +. (1. *. sample_fn [ 10.; 5. ]))
  in
  Alcotest.check near "5-tap row stencil" expected (eval_at x y e)

let downsample_semantics () =
  let e =
    downsample2 (fun idx -> img_at img idx) [ [ 1.; 1. ]; [ 1.; 1. ] ]
      (v xv) (v yv)
  in
  (* 2x2 kernel centred at (1,1): taps (2x-1..2x, 2y-1..2y) *)
  let x = 6 and y = 4 in
  let expected =
    sample_fn [ 11.; 7. ] +. sample_fn [ 11.; 8. ] +. sample_fn [ 12.; 7. ]
    +. sample_fn [ 12.; 8. ]
  in
  Alcotest.check near "2x decimation" expected (eval_at x y e)

let upsample_semantics () =
  let e = upsample2 (fun idx -> img_at img idx) (v xv) (v yv) in
  (* even/even copies *)
  Alcotest.check near "even/even" (sample_fn [ 5.; 7. ]) (eval_at 10 14 e);
  (* odd x averages the two x-neighbours *)
  Alcotest.check near "odd/even"
    (0.5 *. (sample_fn [ 5.; 7. ] +. sample_fn [ 6.; 7. ]))
    (eval_at 11 14 e);
  (* odd/odd averages all four corners *)
  Alcotest.check near "odd/odd"
    (0.25
    *. (sample_fn [ 5.; 7. ] +. sample_fn [ 5.; 8. ] +. sample_fn [ 6.; 7. ]
       +. sample_fn [ 6.; 8. ]))
    (eval_at 11 15 e)

let clamp_semantics () =
  Alcotest.check near "clamp low" 2. (eval_at 0 0 (clamp (fl (-5.)) (fl 2.) (fl 7.)));
  Alcotest.check near "clamp high" 7. (eval_at 0 0 (clamp (fl 50.) (fl 2.) (fl 7.)));
  Alcotest.check near "clamp mid" 4.5 (eval_at 0 0 (clamp (fl 4.5) (fl 2.) (fl 7.)))

let accumulate_misuse () =
  let b = Types.var ~name:"bins" () in
  let acc = func ~name:"misuse_acc" Int [ (b, interval (ib 0) (ib 9)) ] in
  let rx = Types.var ~name:"mrx" () in
  (* wrong index arity *)
  (match
     accumulate acc
       ~over:[ (rx, interval (ib 0) (ib 9)) ]
       ~index:[ v rx; v rx ] ~value:(fl 1.) Ast.Rsum
   with
  | exception Definition_error _ -> ()
  | _ -> Alcotest.fail "index arity must be checked");
  (* foreign variable in the value *)
  let acc2 = func ~name:"misuse_acc2" Int [ (b, interval (ib 0) (ib 9)) ] in
  let other = Types.var ~name:"other" () in
  match
    accumulate acc2
      ~over:[ (rx, interval (ib 0) (ib 9)) ]
      ~index:[ v rx ] ~value:(v other) Ast.Rsum
  with
  | exception Definition_error _ -> ()
  | _ -> Alcotest.fail "foreign variable must be rejected"

let redop_defaults () =
  Alcotest.check near "sum neutral" 0. (Ast.redop_init Ast.Rsum);
  Alcotest.check near "mul neutral" 1. (Ast.redop_init Ast.Rmul);
  Alcotest.(check bool) "min neutral" true
    (Ast.redop_init Ast.Rmin = Float.infinity);
  Alcotest.(check bool) "max neutral" true
    (Ast.redop_init Ast.Rmax = Float.neg_infinity);
  Alcotest.check near "apply min" 3. (Ast.apply_redop Ast.Rmin 3. 5.);
  Alcotest.check near "apply max" 5. (Ast.apply_redop Ast.Rmax 3. 5.)

let scalar_store () =
  Alcotest.check near "uchar clamps" 255. (Types.clamp_store Types.UChar 300.);
  Alcotest.check near "uchar floor" 0. (Types.clamp_store Types.UChar (-3.));
  Alcotest.check near "uchar rounds" 3. (Types.clamp_store Types.UChar 2.5);
  Alcotest.check near "short clamps" (-32768.)
    (Types.clamp_store Types.Short (-40000.));
  Alcotest.(check bool) "float32 rounding is lossy" true
    (Types.clamp_store Types.Float 0.1 <> 0.1);
  Alcotest.check near "double exact" 0.1 (Types.clamp_store Types.Double 0.1)

let suite =
  ( "dsl",
    [
      Alcotest.test_case "stencil (Table 1)" `Quick stencil_semantics;
      Alcotest.test_case "stencil1d" `Quick stencil1d_semantics;
      Alcotest.test_case "downsample2 (Table 1)" `Quick downsample_semantics;
      Alcotest.test_case "upsample2 (Table 1)" `Quick upsample_semantics;
      Alcotest.test_case "clamp" `Quick clamp_semantics;
      Alcotest.test_case "accumulate misuse" `Quick accumulate_misuse;
      Alcotest.test_case "reduction operators" `Quick redop_defaults;
      Alcotest.test_case "element-type stores" `Quick scalar_store;
    ] )
