bench/main.mli:
