bench/bench_common.ml: Ast Filename Float Fun Hashtbl List Pipeline Polymage_apps Polymage_codegen Polymage_compiler Polymage_ir Polymage_rt Printf String Sys Types Unix
