(* Corner detection on a synthetic checkerboard with the Harris
   pipeline of paper Fig. 1, using the packaged benchmark app.

     dune exec examples/corner_detection.exe

   Prints the pipeline graph (Fig. 2), runs the optimized plan, and
   reports the strongest corners — which land on the checkerboard's
   block corners, as they should. *)

module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps

let () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  Format.printf "--- Harris stage graph (Graphviz) ---@.%s@."
    (Polymage_ir.Pipeline.to_dot
       (Polymage_ir.Pipeline.build ~outputs:app.outputs));
  let opts = C.Options.opt_vec ~estimates:env () in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
      plan.pipe.Polymage_ir.Pipeline.images
  in
  let res = Rt.Executor.run plan env ~images in
  let out = Rt.Executor.output_buffer res (List.hd app.outputs) in
  (* collect the strongest responses *)
  let r = out.Rt.Buffer.lo.(0) + out.Rt.Buffer.dims.(0) - 1 in
  let c = out.Rt.Buffer.lo.(1) + out.Rt.Buffer.dims.(1) - 1 in
  let corners = ref [] in
  for x = 2 to r - 2 do
    for y = 2 to c - 2 do
      let v = Rt.Buffer.get out [| x; y |] in
      if v > 1e-4 then corners := (v, x, y) :: !corners
    done
  done;
  let top =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) !corners
    |> List.filteri (fun i _ -> i < 10)
  in
  Format.printf "%d corner candidates; top 10 responses:@."
    (List.length !corners);
  List.iter
    (fun (v, x, y) -> Format.printf "  (%3d, %3d)  response %.6f@." x y v)
    top;
  (* the checkerboard has period 12: corners sit on multiples of 12 *)
  let on_grid =
    List.for_all
      (fun (_, x, y) ->
        let near k = k mod 12 <= 2 || k mod 12 >= 10 in
        near x && near y)
      top
  in
  Format.printf "top corners on the checker grid: %b@." on_grid;
  assert on_grid;
  Format.printf "corner detection OK@."
