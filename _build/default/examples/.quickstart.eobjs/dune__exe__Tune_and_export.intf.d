examples/tune_and_export.mli:
