examples/quickstart.ml: Format List Polymage_apps Polymage_compiler Polymage_dsl Polymage_ir Polymage_rt Unix
