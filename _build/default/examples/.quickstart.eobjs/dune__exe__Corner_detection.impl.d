examples/corner_detection.ml: Array Format List Polymage_apps Polymage_compiler Polymage_ir Polymage_rt
