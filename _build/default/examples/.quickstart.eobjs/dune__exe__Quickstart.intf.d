examples/quickstart.mli:
