examples/blend_images.mli:
