examples/corner_detection.mli:
