(* Quickstart: write an image-processing pipeline in the PolyMage DSL,
   compile it with the optimizing compiler, and run it.

     dune exec examples/quickstart.exe

   The pipeline is a separable 3x3 box blur followed by a sharpening
   stage — three stages the compiler fuses into one overlapped-tile
   group with scratchpad storage (compare the two plans it prints). *)

open Polymage_dsl.Dsl
module C = Polymage_compiler
module Rt = Polymage_rt

let () =
  (* 1. Declare parameters, the input image, variables and domains
        (paper Fig. 1 shows the same constructs for Harris). *)
  let rp = parameter ~name:"R" () and cp = parameter ~name:"C" () in
  let img = image ~name:"input" Float [ param_b rp +~ ib 2; param_b cp +~ ib 2 ] in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let dom =
    [
      (x, interval (ib 0) (param_b rp +~ ib 1));
      (y, interval (ib 0) (param_b cp +~ ib 1));
    ]
  in
  let interior = in_box [ (v x, i 1, p rp); (v y, i 1, p cp) ] in

  (* 2. Define the stages.  [stencil1d] is the paper's Stencil
        construct; stages reference each other with [app]. *)
  let blur_x = func ~name:"blur_x" Float dom in
  define blur_x
    [
      case interior
        (stencil1d (fun ix -> img_at img [ ix; v y ]) ~scale:(1. /. 3.)
           [ 1.; 1.; 1. ] (v x));
    ];
  let blur_y = func ~name:"blur_y" Float dom in
  define blur_y
    [
      case interior
        (stencil1d (fun iy -> app blur_x [ v x; iy ]) ~scale:(1. /. 3.)
           [ 1.; 1.; 1. ] (v y));
    ];
  let sharpened = func ~name:"sharpened" Float dom in
  define sharpened
    [
      case interior
        ((fl 2.0 *: img_at img [ v x; v y ]) -: app blur_y [ v x; v y ]);
    ];

  (* 3. Compile.  Options select the paper's configurations; estimates
        tell the grouping heuristic roughly how large images will be. *)
  let size = 512 in
  let env = [ (rp, size); (cp, size) ] in
  let base_plan =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:[ sharpened ]
  in
  let opt_plan =
    C.Compile.run
      (C.Options.with_tile [| 32; 128 |] (C.Options.opt_vec ~estimates:env ()))
      ~outputs:[ sharpened ]
  in
  Format.printf "--- unoptimized plan ---@.%a@." C.Plan.pp base_plan;
  Format.printf "--- optimized plan ---@.%a@." C.Plan.pp opt_plan;

  (* 4. Execute both plans on a synthetic image and compare. *)
  let images (plan : C.Plan.t) =
    List.map
      (fun im ->
        (im, Rt.Buffer.of_image im env (fun c -> Polymage_apps.Synth.textured c)))
      plan.pipe.Polymage_ir.Pipeline.images
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let rb, tb = time (fun () -> Rt.Executor.run base_plan env ~images:(images base_plan)) in
  let ro, to_ = time (fun () -> Rt.Executor.run opt_plan env ~images:(images opt_plan)) in
  let b = Rt.Executor.output_buffer rb sharpened in
  let o = Rt.Executor.output_buffer ro sharpened in
  Format.printf "base: %.1f ms, opt+vec: %.1f ms (%.2fx), max diff %g@." tb
    to_ (tb /. to_)
    (Rt.Buffer.max_abs_diff b o);
  assert (Rt.Buffer.equal ~eps:1e-9 b o);
  Format.printf "quickstart OK@."
