(* Multi-resolution blending (paper Fig. 8): blend two half-focused
   images with a mask through Laplacian pyramids, and write the inputs
   and the result as PGM images you can open with any viewer.

     dune exec examples/blend_images.exe
     -> writes blend_input1.pgm, blend_input2.pgm, blend_output.pgm *)

module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps


let () =
  let app = Apps.find "pyramid_blend" in
  let env = app.small_env in
  let opts =
    C.Options.with_tile [| 32; 32 |] (C.Options.opt_vec ~estimates:env ())
  in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  Format.printf "--- plan (%d tiled groups) ---@.%a@."
    (C.Plan.n_tiled_groups plan) C.Plan.pp plan;
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
      plan.pipe.Polymage_ir.Pipeline.images
  in
  let res = Rt.Executor.run plan env ~images in
  let out = Rt.Executor.output_buffer res (List.hd app.outputs) in
  List.iter
    (fun ((im : Polymage_ir.Ast.image), (b : Rt.Buffer.t)) ->
      if im.iname <> "M" then
        Rt.Image_io.write_pgm
          (Printf.sprintf "blend_input%s.pgm"
             (if im.iname = "I1" then "1" else "2"))
          b)
    images;
  Rt.Image_io.write_pgm "blend_output.pgm" out;
  Format.printf
    "wrote blend_input1.pgm, blend_input2.pgm, blend_output.pgm (%dx%d)@."
    out.Rt.Buffer.dims.(0) out.Rt.Buffer.dims.(1);
  Format.printf "blend OK@."
