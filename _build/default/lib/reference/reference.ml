open Polymage_ir
module Rt = Polymage_rt
module App = Polymage_apps.App

(* The reference routines locate parameters and input images by name
   in the app's pipeline (the apps use stable names: R, C, img/I/...).
   Hot loops work on plain float matrices — these routines stand in
   for tuned library code (OpenCV) in Table 2, so they avoid any
   per-access indirection. *)
let lookup_param (pipe : Pipeline.t) env name =
  match
    List.find_opt (fun (p : Types.param) -> p.pname = name) pipe.params
  with
  | Some p -> Types.bind_exn env p
  | None -> invalid_arg ("Reference: missing parameter " ^ name)

let lookup_image (pipe : Pipeline.t) name =
  match
    List.find_opt (fun (im : Ast.image) -> im.iname = name) pipe.images
  with
  | Some im -> im
  | None -> invalid_arg ("Reference: missing image " ^ name)

(* Materialize a 2-D image into a matrix via the app's generator. *)
let matrix2 env fill (im : Ast.image) =
  let dims = List.map (fun e -> Abound.eval e env) im.iextents in
  match dims with
  | [ rows; cols ] ->
    Array.init rows (fun x ->
        Array.init cols (fun y -> fill im [| x; y |]))
  | _ -> invalid_arg "Reference.matrix2: not a 2-D image"

let matrix3 env fill (im : Ast.image) =
  let dims = List.map (fun e -> Abound.eval e env) im.iextents in
  match dims with
  | [ chans; rows; cols ] ->
    Array.init chans (fun c ->
        Array.init rows (fun x ->
            Array.init cols (fun y -> fill im [| c; x; y |])))
  | _ -> invalid_arg "Reference.matrix3: not a 3-D image"

(* ---------- Unsharp mask ---------- *)

let w5 = [| 1. /. 16.; 4. /. 16.; 6. /. 16.; 4. /. 16.; 1. /. 16. |]

let unsharp env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let img = matrix3 env fill (lookup_image pipe "img") in
  let rows = r + 4 and cols = c + 4 in
  let mk () = Array.init 3 (fun _ -> Array.make_matrix rows cols 0.) in
  let blurx = mk () and blury = mk () in
  for ch = 0 to 2 do
    let ic = img.(ch) and bx = blurx.(ch) in
    for x = 2 to r + 1 do
      let m2 = ic.(x - 2)
      and m1 = ic.(x - 1)
      and z = ic.(x)
      and p1 = ic.(x + 1)
      and p2 = ic.(x + 2)
      and dst = bx.(x) in
      for y = 0 to c + 3 do
        dst.(y) <-
          (w5.(0) *. m2.(y)) +. (w5.(1) *. m1.(y)) +. (w5.(2) *. z.(y))
          +. (w5.(3) *. p1.(y)) +. (w5.(4) *. p2.(y))
      done
    done
  done;
  for ch = 0 to 2 do
    let bx = blurx.(ch) and by = blury.(ch) in
    for x = 2 to r + 1 do
      let s = bx.(x) and dst = by.(x) in
      for y = 2 to c + 1 do
        dst.(y) <-
          (w5.(0) *. s.(y - 2)) +. (w5.(1) *. s.(y - 1)) +. (w5.(2) *. s.(y))
          +. (w5.(3) *. s.(y + 1)) +. (w5.(4) *. s.(y + 2))
      done
    done
  done;
  let weight = 3.0 and threshold = 0.01 in
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  for ch = 0 to 2 do
    let ic = img.(ch) and by = blury.(ch) in
    for x = 2 to r + 1 do
      let irow = ic.(x) and brow = by.(x) in
      let base = ((ch * rows) + x) * cols in
      for y = 2 to c + 1 do
        let i = irow.(y) and b = brow.(y) in
        let sharp = (i *. (1.0 +. weight)) -. (b *. weight) in
        data.(base + y) <-
          (if Float.abs (i -. b) < threshold then i else sharp)
      done
    done
  done;
  out

(* ---------- Harris corner detection ---------- *)

let harris env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let img = matrix2 env fill (lookup_image pipe "I") in
  let rows = r + 2 and cols = c + 2 in
  let mk () = Array.make_matrix rows cols 0. in
  let ix = mk () and iy = mk () in
  for x = 1 to r do
    let up = img.(x - 1) and mid = img.(x) and dn = img.(x + 1) in
    let iyr = iy.(x) and ixr = ix.(x) in
    for y = 1 to c do
      iyr.(y) <-
        1. /. 12.
        *. (((-1.) *. up.(y - 1)) +. ((-2.) *. up.(y)) +. ((-1.) *. up.(y + 1))
           +. dn.(y - 1) +. (2. *. dn.(y)) +. dn.(y + 1));
      ixr.(y) <-
        1. /. 12.
        *. (((-1.) *. up.(y - 1)) +. up.(y + 1)
           +. ((-2.) *. mid.(y - 1)) +. (2. *. mid.(y + 1))
           +. ((-1.) *. dn.(y - 1)) +. dn.(y + 1))
    done
  done;
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  for x = 2 to r - 1 do
    let base = x * cols in
    for y = 2 to c - 1 do
      let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
      for dx = -1 to 1 do
        let ixr = ix.(x + dx) and iyr = iy.(x + dx) in
        for dy = -1 to 1 do
          let a = ixr.(y + dy) and b = iyr.(y + dy) in
          sxx := !sxx +. (a *. a);
          syy := !syy +. (b *. b);
          sxy := !sxy +. (a *. b)
        done
      done;
      let det = (!sxx *. !syy) -. (!sxy *. !sxy) in
      let trace = !sxx +. !syy in
      data.(base + y) <- det -. (0.04 *. trace *. trace)
    done
  done;
  out

(* ---------- Pyramid blending ---------- *)

let w5x5 =
  let w = [| 1.; 4.; 6.; 4.; 1. |] in
  Array.init 5 (fun i -> Array.init 5 (fun j -> w.(i) *. w.(j) /. 256.))

let pyramid_blend ?(levels = 4) env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let i1 = matrix2 env fill (lookup_image pipe "I1") in
  let i2 = matrix2 env fill (lookup_image pipe "I2") in
  let m = matrix2 env fill (lookup_image pipe "M") in
  let size k = ((r lsr k) + 4, (c lsr k) + 4) in
  let hi k = (r lsr k, c lsr k) in
  let mk k =
    let rows, cols = size k in
    Array.make_matrix rows cols 0.
  in
  let down (src : float array array) k =
    let d = mk k in
    let hx, hy = hi k in
    for x = 2 to hx do
      let dst = d.(x) in
      for y = 2 to hy do
        let acc = ref 0. in
        for dx = -2 to 2 do
          let srow = src.((2 * x) + dx) and wrow = w5x5.(dx + 2) in
          for dy = -2 to 2 do
            acc := !acc +. (wrow.(dy + 2) *. srow.((2 * y) + dy))
          done
        done;
        dst.(y) <- !acc
      done
    done;
    d
  in
  let pyramid src0 =
    let rec go k acc prev =
      if k > levels then List.rev acc
      else
        let g = down prev k in
        go (k + 1) (g :: acc) g
    in
    go 1 [] src0
  in
  let g1 = Array.of_list (pyramid i1) in
  let g2 = Array.of_list (pyramid i2) in
  let gm = Array.of_list (pyramid m) in
  (* upsample level-k data onto the level-(k-1) grid (even/odd
     bilinear, matching Dsl.upsample2) *)
  let up (g : float array array) k =
    let u = mk (k - 1) in
    let hx, hy = hi (k - 1) in
    let ay ix y =
      let row = g.(ix) in
      if y land 1 = 0 then row.(y / 2)
      else 0.5 *. (row.((y - 1) / 2) +. row.((y + 1) / 2))
    in
    for x = 2 to hx do
      let dst = u.(x) in
      if x land 1 = 0 then
        for y = 2 to hy do
          dst.(y) <- ay (x / 2) y
        done
      else
        for y = 2 to hy do
          dst.(y) <- 0.5 *. (ay ((x - 1) / 2) y +. ay ((x + 1) / 2) y)
        done
    done;
    u
  in
  let blend k =
    let b = mk k in
    let hx, hy = hi k in
    let mask = if k = 0 then m else gm.(k - 1) in
    if k = levels then begin
      let s1 = g1.(k - 1) and s2 = g2.(k - 1) in
      for x = 2 to hx do
        let mr = mask.(x) and r1 = s1.(x) and r2 = s2.(x) and dst = b.(x) in
        for y = 2 to hy do
          let mv = mr.(y) in
          dst.(y) <- (mv *. r1.(y)) +. ((1.0 -. mv) *. r2.(y))
        done
      done;
      b
    end
    else begin
      let u1 = up g1.(k) (k + 1) in
      let u2 = up g2.(k) (k + 1) in
      let s1 = if k = 0 then i1 else g1.(k - 1) in
      let s2 = if k = 0 then i2 else g2.(k - 1) in
      for x = 2 to hx do
        let mr = mask.(x)
        and r1 = s1.(x)
        and r2 = s2.(x)
        and ur1 = u1.(x)
        and ur2 = u2.(x)
        and dst = b.(x) in
        for y = 2 to hy do
          let mv = mr.(y) in
          let l1 = r1.(y) -. ur1.(y) in
          let l2 = r2.(y) -. ur2.(y) in
          dst.(y) <- (mv *. l1) +. ((1.0 -. mv) *. l2)
        done
      done;
      b
    end
  in
  let rec collapse k =
    if k = levels then blend k
    else begin
      let deeper = collapse (k + 1) in
      let u = up deeper (k + 1) in
      let b = blend k in
      let o = mk k in
      let hx, hy = hi k in
      for x = 2 to hx do
        let br = b.(x) and ur = u.(x) and dst = o.(x) in
        for y = 2 to hy do
          dst.(y) <- br.(y) +. ur.(y)
        done
      done;
      o
    end
  in
  let o0 = collapse 0 in
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  let cols = c + 4 in
  for x = 0 to r + 3 do
    let src = o0.(x) and base = x * cols in
    for y = 0 to c + 3 do
      data.(base + y) <- src.(y)
    done
  done;
  out

let for_app (app : App.t) =
  match app.name with
  | "unsharp_mask" -> Some (fun env -> unsharp env ~fill:(app.fill env) app)
  | "harris" -> Some (fun env -> harris env ~fill:(app.fill env) app)
  | "pyramid_blend" ->
    Some (fun env -> pyramid_blend env ~fill:(app.fill env) app)
  | _ -> None
