lib/reference/reference.ml: Abound Array Ast Float List Pipeline Polymage_apps Polymage_ir Polymage_rt Types
