lib/reference/reference.mli: Ast Polymage_apps Polymage_ir Polymage_rt Types
