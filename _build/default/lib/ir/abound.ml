module Q = Polymage_util.Rational

type t = { c : Q.t; terms : (Types.param * Q.t) list }
(* [terms] is kept sorted by parameter id with nonzero coefficients. *)

let const n = { c = Q.of_int n; terms = [] }
let constq q = { c = q; terms = [] }
let of_param p = { c = Q.zero; terms = [ (p, Q.one) ] }

let norm terms =
  terms
  |> List.filter (fun (_, q) -> Q.sign q <> 0)
  |> List.sort (fun ((a : Types.param), _) (b, _) ->
         compare (a : Types.param).pid b.pid)

let merge f a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], r -> List.map (fun (p, q) -> (p, f Q.zero q)) r
    | l, [] -> List.map (fun (p, q) -> (p, f q Q.zero)) l
    | ((px, qx) :: xt as l), ((py, qy) :: yt as r) ->
      if (px : Types.param).pid = py.pid then (px, f qx qy) :: go xt yt
      else if px.pid < py.pid then (px, f qx Q.zero) :: go xt r
      else (py, f Q.zero qy) :: go l yt
  in
  norm (go a b)

let add a b = { c = Q.add a.c b.c; terms = merge Q.add a.terms b.terms }
let neg a = { c = Q.neg a.c; terms = List.map (fun (p, q) -> (p, Q.neg q)) a.terms }
let sub a b = add a (neg b)
let add_int a n = { a with c = Q.add a.c (Q.of_int n) }

let scale s a =
  {
    c = Q.mul s a.c;
    terms = norm (List.map (fun (p, q) -> (p, Q.mul s q)) a.terms);
  }

let evalq a env =
  List.fold_left
    (fun acc (p, q) -> Q.add acc (Q.mul q (Q.of_int (Types.bind_exn env p))))
    a.c a.terms

let eval a env = Q.floor (evalq a env)
let params a = List.map fst a.terms
let to_const a = if a.terms = [] && Q.is_int a.c then Some (Q.to_int_exn a.c) else None

let equal a b =
  Q.equal a.c b.c
  && List.length a.terms = List.length b.terms
  && List.for_all2
       (fun ((p : Types.param), q) ((p' : Types.param), q') ->
         p.pid = p'.pid && Q.equal q q')
       a.terms b.terms

let nonneg_for_nonneg_params a =
  Q.sign a.c >= 0 && List.for_all (fun (_, q) -> Q.sign q >= 0) a.terms

let to_linear a =
  let den = Q.lcm_dens (a.c :: List.map snd a.terms) in
  let scaleq q = Q.to_int_exn (Q.mul q (Q.of_int den)) in
  (scaleq a.c, List.map (fun (p, q) -> (p, scaleq q)) a.terms, den)

let pp ppf a =
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf ppf " + " in
  if Q.sign a.c <> 0 || a.terms = [] then (
    sep ();
    Q.pp ppf a.c);
  List.iter
    (fun (p, q) ->
      sep ();
      if Q.equal q Q.one then Types.pp_param ppf p
      else Format.fprintf ppf "%a*%a" Q.pp q Types.pp_param p)
    a.terms
