(** Operations over IR expressions, conditions and stage bodies:
    traversal, substitution, constant folding, structural evaluation,
    affine analysis of conditions, and pretty-printing. *)

open Ast

val iter :
  ?on_call:(func -> expr list -> unit) ->
  ?on_img:(image -> expr list -> unit) ->
  expr ->
  unit
(** Depth-first traversal invoking the callbacks on every stage /
    image reference (including references inside index expressions
    and conditions). *)

val iter_cond :
  ?on_call:(func -> expr list -> unit) ->
  ?on_img:(image -> expr list -> unit) ->
  cond ->
  unit

val iter_body :
  ?on_call:(func -> expr list -> unit) ->
  ?on_img:(image -> expr list -> unit) ->
  body ->
  unit

val called_funcs : body -> func list
(** Distinct stages referenced by a body, in first-occurrence order. *)

val used_images : body -> image list

val subst : (Types.var * expr) list -> expr -> expr
(** Simultaneous substitution of variables by expressions. *)

val subst_cond : (Types.var * expr) list -> cond -> cond

val map_calls : (func -> expr list -> expr option) -> expr -> expr
(** Rewrite stage references bottom-up: where the callback returns
    [Some e], the call is replaced by [e] (whose sub-calls are *not*
    revisited); [None] keeps the call (with rewritten arguments). *)

val size : expr -> int
(** Node count, used as the inlining cost metric. *)

val free_vars : expr -> Types.var list

val simplify : expr -> expr
(** Constant folding and algebraic identities ([x*1], [x+0], ...).
    Semantics-preserving (verified by property tests). *)

val eval :
  var:(Types.var -> float) ->
  param:(Types.param -> float) ->
  call:(func -> float array -> float) ->
  img:(image -> float array -> float) ->
  expr ->
  float
(** Reference structural evaluator (slow; the runtime compiles
    closures instead — property tests check they agree). *)

val eval_cond :
  var:(Types.var -> float) ->
  param:(Types.param -> float) ->
  call:(func -> float array -> float) ->
  img:(image -> float array -> float) ->
  cond ->
  bool

val to_abound : expr -> Abound.t option
(** [Some b] when the expression is affine in parameters only
    (no variables, no data references). *)

val box_of_cond :
  Types.var list -> cond -> (Abound.t option * Abound.t option) array option
(** Interpret a condition as a rectangular restriction of the given
    variables: a conjunction of comparisons between a variable and a
    parameter-affine expression.  Returns per-variable optional
    lower/upper tightenings, or [None] when the condition is not of
    that shape (disjunctions, data-dependent tests, multi-variable
    comparisons).  Used by the static bounds checker and by code
    generation to split domains (paper §3.7). *)

val pp : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
val to_string : expr -> string
