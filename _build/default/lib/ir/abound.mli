(** Affine bounds: rational affine forms over pipeline parameters.

    Interval bounds and image extents in the DSL are restricted to
    affine expressions of parameters and constants (paper §2).  We
    additionally allow rational coefficients so that pyramid levels can
    be written as e.g. [R/2^k + 1]; a bound evaluates to
    [floor(const + sum coef_i * param_i)] under concrete bindings. *)

type t

val const : int -> t
val constq : Polymage_util.Rational.t -> t
val of_param : Types.param -> t

val add : t -> t -> t
val sub : t -> t -> t
val add_int : t -> int -> t
val scale : Polymage_util.Rational.t -> t -> t
val neg : t -> t

val eval : t -> Types.bindings -> int
(** Evaluate under bindings, flooring the exact rational result.
    @raise Not_found if a parameter is unbound. *)

val evalq : t -> Types.bindings -> Polymage_util.Rational.t
(** Evaluate exactly, without flooring. *)

val params : t -> Types.param list
(** Parameters occurring with nonzero coefficient. *)

val to_const : t -> int option
(** [Some c] when the bound is the constant [c] (integral). *)

val equal : t -> t -> bool

val nonneg_for_nonneg_params : t -> bool
(** Conservative test: true when the form is provably [>= 0] for every
    assignment of nonnegative parameter values (all coefficients and
    the constant are [>= 0]).  Used by the static bounds checker. *)

val pp : Format.formatter -> t -> unit

val to_linear : t -> int * (Types.param * int) list * int
(** [(num_const, num_terms, den)] such that the bound evaluates to
    [floor((num_const + sum coef_i * p_i) / den)] with all integers —
    the common-denominator form used by the C code generator. *)
