lib/ir/expr.mli: Abound Ast Format Types
