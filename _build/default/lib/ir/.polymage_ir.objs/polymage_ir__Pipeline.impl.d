lib/ir/pipeline.ml: Abound Array Ast Buffer Expr Format Hashtbl Interval List Option Polymage_util Printf String Types
