lib/ir/expr.ml: Abound Array Ast Float Format Hashtbl List Option Polymage_util Types
