lib/ir/types.ml: Float Format Int32 List Printf
