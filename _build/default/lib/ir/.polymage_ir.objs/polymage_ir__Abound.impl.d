lib/ir/abound.ml: Format List Polymage_util Types
