lib/ir/pipeline.mli: Ast Format Types
