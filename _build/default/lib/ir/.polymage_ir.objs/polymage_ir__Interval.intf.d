lib/ir/interval.mli: Abound Format Types
