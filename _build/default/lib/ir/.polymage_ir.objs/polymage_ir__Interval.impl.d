lib/ir/interval.ml: Abound Format
