lib/ir/ast.ml: Abound Float Interval List Types
