lib/ir/abound.mli: Format Polymage_util Types
