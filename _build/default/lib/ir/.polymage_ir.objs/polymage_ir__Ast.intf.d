lib/ir/ast.mli: Abound Interval Types
