(** Parametric intervals: the [Interval] construct of the DSL
    (paper §2).  Bounds are inclusive affine forms over parameters;
    the step is fixed to 1 (the paper's benchmarks never use another
    step — interleaving is expressed with conditions instead). *)

type t = { lo : Abound.t; hi : Abound.t }

val make : Abound.t -> Abound.t -> t

val of_ints : int -> int -> t
(** [of_ints lo hi] is the constant interval [lo..hi]. *)

val extent_of : Types.param -> t
(** [0 .. p-1], the canonical interval for an image dimension of
    extent [p]. *)

val eval : t -> Types.bindings -> int * int
(** Concrete inclusive bounds under parameter bindings. *)

val size : t -> Types.bindings -> int
(** Number of points, [max 0 (hi - lo + 1)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
