(** Base vocabulary of the PolyMage IR: scalar element types, loop
    variables and pipeline parameters (paper §2: [Variable] and
    [Parameter] constructs). *)

(** Element type of an image or function value.  The runtime computes
    in double precision; the element type drives rounding/clamping on
    store ([Cast]) and declared types in generated C. *)
type scalar =
  | UChar
  | Short
  | Int
  | Float
  | Double

val scalar_equal : scalar -> scalar -> bool
val pp_scalar : Format.formatter -> scalar -> unit

val c_name : scalar -> string
(** C type name used by the code generator. *)

val clamp_store : scalar -> float -> float
(** Value actually stored for a given element type: integral types are
    rounded and saturated to their range, [Float] is rounded to single
    precision, [Double] stored as is. *)

(** A loop variable (a dimension label of a function domain). *)
type var = private { vid : int; vname : string }

val var : ?name:string -> unit -> var
(** Fresh variable; automatic names are [x0], [x1], ... *)

val var_equal : var -> var -> bool
val pp_var : Format.formatter -> var -> unit

(** A pipeline parameter: an unknown positive integer (image width,
    number of pyramid levels, ...) fixed at execution time. *)
type param = private { pid : int; pname : string }

val param : ?name:string -> unit -> param
(** Fresh parameter; automatic names are [p0], [p1], ... *)

val param_equal : param -> param -> bool
val pp_param : Format.formatter -> param -> unit

type bindings = (param * int) list
(** Concrete values for parameters, supplied when a pipeline runs. *)

val bind_exn : bindings -> param -> int
(** Look up a parameter value. @raise Not_found if unbound. *)
