(** Pipeline graphs (paper §3): the DAG extracted from a specification,
    with stages as nodes and producer-consumer edges.  Stage levels in
    a topological sort seed the initial schedules. *)

open Ast

exception Invalid_pipeline of string
(** Raised on cyclic stage graphs, undefined stage bodies, or arity
    mismatches in stage references. *)

type t = private {
  outputs : func list;  (** live-out stages, as given by the user *)
  stages : func array;  (** all reachable stages, producers first *)
  producers : int list array;
      (** per stage, indices of the distinct stages it reads
          (self-references of time-iterated stages excluded) *)
  consumers : int list array;
  level : int array;  (** longest-path level; sources are 0 *)
  self_recursive : bool array;
      (** stage reads its own values (time-iterated / summed-area) *)
  images : image list;  (** input images, in first-use order *)
  params : Types.param list;  (** all parameters mentioned anywhere *)
}

val build : outputs:func list -> t
(** Extract the graph reachable from [outputs].  Checks that every
    stage body is defined, stage references have the right arity, and
    the graph (minus self-loops) is acyclic.
    @raise Invalid_pipeline otherwise. *)

val n_stages : t -> int
val stage_index : t -> func -> int
(** @raise Not_found for a stage outside the pipeline. *)

val is_output : t -> int -> bool
val max_level : t -> int

val to_dot : t -> string
(** Graphviz rendering of the stage graph (paper Fig. 2). *)

val pp_summary : Format.formatter -> t -> unit
(** One line per stage: name, level, producers. *)
