type image = {
  iid : int;
  iname : string;
  ityp : Types.scalar;
  iextents : Abound.t list;
}

type binop = Add | Sub | Mul | Div | Min | Max | Pow
type unop = Neg | Abs | Sqrt | Exp | Log | Floor
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Const of float
  | Var of Types.var
  | Param of Types.param
  | Call of func * expr list
  | Img of image * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | IDiv of expr * int
  | IMod of expr * int
  | Select of cond * expr * expr
  | Cast of Types.scalar * expr

and cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

and case = { ccond : cond option; rhs : expr }
and redop = Rsum | Rmul | Rmin | Rmax

and reduction = {
  rvars : Types.var list;
  rdom : Interval.t list;
  rinit : float;
  rindex : expr list;
  rvalue : expr;
  rop : redop;
}

and body = Undefined | Cases of case list | Reduce of reduction

and func = {
  fid : int;
  fname : string;
  ftyp : Types.scalar;
  fvars : Types.var list;
  fdom : Interval.t list;
  mutable fbody : body;
}

let image_counter = ref 0

let image ~name ityp iextents =
  incr image_counter;
  { iid = !image_counter; iname = name; ityp; iextents }

let func_counter = ref 0

let func ~name ftyp var_dom =
  incr func_counter;
  {
    fid = !func_counter;
    fname = name;
    ftyp;
    fvars = List.map fst var_dom;
    fdom = List.map snd var_dom;
    fbody = Undefined;
  }

let func_equal a b = a.fid = b.fid
let image_equal a b = a.iid = b.iid
let func_arity f = List.length f.fvars

let apply_redop op a b =
  match op with
  | Rsum -> a +. b
  | Rmul -> a *. b
  | Rmin -> Float.min a b
  | Rmax -> Float.max a b

let redop_init = function
  | Rsum -> 0.
  | Rmul -> 1.
  | Rmin -> Float.infinity
  | Rmax -> Float.neg_infinity
