(** Abstract syntax of PolyMage pipelines (paper §2).

    A pipeline is a DAG of {!func} stages.  Each stage maps a
    multi-dimensional integer domain to a scalar value, defined either
    piecewise by {!case} expressions ([Function]) or by a reduction
    ({!reduction}, the [Accumulator] construct).  Stage bodies refer to
    other stages ([Call]) and to input images ([Img]); those references
    induce the producer-consumer edges of the pipeline graph. *)

(** An input image: element type plus per-dimension extents (sizes);
    valid indices along dimension [i] are [0 .. extent_i - 1]. *)
type image = {
  iid : int;
  iname : string;
  ityp : Types.scalar;
  iextents : Abound.t list;
}

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** real division *)
  | Min
  | Max
  | Pow

type unop = Neg | Abs | Sqrt | Exp | Log | Floor

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Const of float
  | Var of Types.var
  | Param of Types.param
  | Call of func * expr list  (** value of another (or the same) stage *)
  | Img of image * expr list  (** input image pixel *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | IDiv of expr * int  (** floor division by a positive constant *)
  | IMod of expr * int  (** nonnegative remainder by a positive constant *)
  | Select of cond * expr * expr
  | Cast of Types.scalar * expr
      (** round/saturate to the given element type (paper's camera
          pipeline works on 8/16-bit data) *)

and cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

(** One arm of a piecewise definition: [Case(cond, rhs)].  A missing
    condition means "everywhere in the domain". *)
and case = { ccond : cond option; rhs : expr }

and redop = Rsum | Rmul | Rmin | Rmax

(** An [Accumulator] body (paper Fig. 3): iterate [rvars] over [rdom];
    for each point, combine [rvalue] into the accumulator cell at
    index [rindex] (expressions over [rvars], possibly data-dependent
    as in a histogram) with [rop].  Cells start at [rinit]. *)
and reduction = {
  rvars : Types.var list;
  rdom : Interval.t list;
  rinit : float;
  rindex : expr list;
  rvalue : expr;
  rop : redop;
}

and body = Undefined | Cases of case list | Reduce of reduction

and func = {
  fid : int;
  fname : string;
  ftyp : Types.scalar;
  fvars : Types.var list;
  fdom : Interval.t list;
  mutable fbody : body;
}

val image : name:string -> Types.scalar -> Abound.t list -> image

val func :
  name:string ->
  Types.scalar ->
  (Types.var * Interval.t) list ->
  func
(** Fresh stage with an [Undefined] body; define it by mutating
    [fbody] (mirrors the paper's [f.defn = ...] style). *)

val func_equal : func -> func -> bool
val image_equal : image -> image -> bool
val func_arity : func -> int

val apply_redop : redop -> float -> float -> float
val redop_init : redop -> float
(** Neutral element of the reduction operator (used when [rinit] is
    taken as default). *)
