type t = { lo : Abound.t; hi : Abound.t }

let make lo hi = { lo; hi }
let of_ints lo hi = { lo = Abound.const lo; hi = Abound.const hi }

let extent_of p =
  { lo = Abound.const 0; hi = Abound.add_int (Abound.of_param p) (-1) }

let eval t env = (Abound.eval t.lo env, Abound.eval t.hi env)

let size t env =
  let lo, hi = eval t env in
  max 0 (hi - lo + 1)

let equal a b = Abound.equal a.lo b.lo && Abound.equal a.hi b.hi
let pp ppf t = Format.fprintf ppf "[%a..%a]" Abound.pp t.lo Abound.pp t.hi
