type scalar = UChar | Short | Int | Float | Double

let scalar_equal (a : scalar) b = a = b

let pp_scalar ppf s =
  Format.pp_print_string ppf
    (match s with
    | UChar -> "uchar"
    | Short -> "short"
    | Int -> "int"
    | Float -> "float"
    | Double -> "double")

let c_name = function
  | UChar -> "unsigned char"
  | Short -> "short"
  | Int -> "int"
  | Float -> "float"
  | Double -> "double"

let clamp_store ty v =
  let round_clamp lo hi =
    let r = Float.round v in
    if r < lo then lo else if r > hi then hi else r
  in
  match ty with
  | UChar -> round_clamp 0. 255.
  | Short -> round_clamp (-32768.) 32767.
  | Int -> Float.round v
  | Float -> Int32.float_of_bits (Int32.bits_of_float v)
  | Double -> v

type var = { vid : int; vname : string }

let var_counter = ref 0

let var ?name () =
  incr var_counter;
  let vid = !var_counter in
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" vid in
  { vid; vname }

let var_equal a b = a.vid = b.vid
let pp_var ppf v = Format.pp_print_string ppf v.vname

type param = { pid : int; pname : string }

let param_counter = ref 0

let param ?name () =
  incr param_counter;
  let pid = !param_counter in
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "p%d" pid
  in
  { pid; pname }

let param_equal a b = a.pid = b.pid
let pp_param ppf p = Format.pp_print_string ppf p.pname

type bindings = (param * int) list

let bind_exn env p =
  match List.find_opt (fun (q, _) -> param_equal p q) env with
  | Some (_, v) -> v
  | None -> raise Not_found
