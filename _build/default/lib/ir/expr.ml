open Ast
module Q = Polymage_util.Rational

let rec iter ?(on_call = fun _ _ -> ()) ?(on_img = fun _ _ -> ()) e =
  let self e = iter ~on_call ~on_img e in
  match e with
  | Const _ | Var _ | Param _ -> ()
  | Call (f, args) ->
    on_call f args;
    List.iter self args
  | Img (im, args) ->
    on_img im args;
    List.iter self args
  | Binop (_, a, b) ->
    self a;
    self b
  | Unop (_, a) | IDiv (a, _) | IMod (a, _) | Cast (_, a) -> self a
  | Select (c, a, b) ->
    iter_cond ~on_call ~on_img c;
    self a;
    self b

and iter_cond ?(on_call = fun _ _ -> ()) ?(on_img = fun _ _ -> ()) c =
  match c with
  | Cmp (_, a, b) ->
    iter ~on_call ~on_img a;
    iter ~on_call ~on_img b
  | And (a, b) | Or (a, b) ->
    iter_cond ~on_call ~on_img a;
    iter_cond ~on_call ~on_img b
  | Not a -> iter_cond ~on_call ~on_img a

let iter_body ?(on_call = fun _ _ -> ()) ?(on_img = fun _ _ -> ()) b =
  match b with
  | Undefined -> ()
  | Cases cs ->
    List.iter
      (fun { ccond; rhs } ->
        Option.iter (iter_cond ~on_call ~on_img) ccond;
        iter ~on_call ~on_img rhs)
      cs
  | Reduce r ->
    List.iter (iter ~on_call ~on_img) r.rindex;
    iter ~on_call ~on_img r.rvalue

let called_funcs b =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let on_call f _ =
    if not (Hashtbl.mem seen f.fid) then (
      Hashtbl.add seen f.fid ();
      acc := f :: !acc)
  in
  iter_body ~on_call b;
  List.rev !acc

let used_images b =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let on_img im _ =
    if not (Hashtbl.mem seen im.iid) then (
      Hashtbl.add seen im.iid ();
      acc := im :: !acc)
  in
  iter_body ~on_img b;
  List.rev !acc

let rec subst sub e =
  let self = subst sub in
  match e with
  | Const _ | Param _ -> e
  | Var v -> (
    match List.find_opt (fun (w, _) -> Types.var_equal v w) sub with
    | Some (_, e') -> e'
    | None -> e)
  | Call (f, args) -> Call (f, List.map self args)
  | Img (im, args) -> Img (im, List.map self args)
  | Binop (op, a, b) -> Binop (op, self a, self b)
  | Unop (op, a) -> Unop (op, self a)
  | IDiv (a, n) -> IDiv (self a, n)
  | IMod (a, n) -> IMod (self a, n)
  | Select (c, a, b) -> Select (subst_cond sub c, self a, self b)
  | Cast (ty, a) -> Cast (ty, self a)

and subst_cond sub c =
  match c with
  | Cmp (op, a, b) -> Cmp (op, subst sub a, subst sub b)
  | And (a, b) -> And (subst_cond sub a, subst_cond sub b)
  | Or (a, b) -> Or (subst_cond sub a, subst_cond sub b)
  | Not a -> Not (subst_cond sub a)

let rec map_calls rw e =
  let self = map_calls rw in
  match e with
  | Const _ | Var _ | Param _ -> e
  | Call (f, args) -> (
    let args = List.map self args in
    match rw f args with Some e' -> e' | None -> Call (f, args))
  | Img (im, args) -> Img (im, List.map self args)
  | Binop (op, a, b) -> Binop (op, self a, self b)
  | Unop (op, a) -> Unop (op, self a)
  | IDiv (a, n) -> IDiv (self a, n)
  | IMod (a, n) -> IMod (self a, n)
  | Select (c, a, b) -> Select (map_calls_cond rw c, self a, self b)
  | Cast (ty, a) -> Cast (ty, self a)

and map_calls_cond rw c =
  match c with
  | Cmp (op, a, b) -> Cmp (op, map_calls rw a, map_calls rw b)
  | And (a, b) -> And (map_calls_cond rw a, map_calls_cond rw b)
  | Or (a, b) -> Or (map_calls_cond rw a, map_calls_cond rw b)
  | Not a -> Not (map_calls_cond rw a)

let rec size e =
  match e with
  | Const _ | Var _ | Param _ -> 1
  | Call (_, args) | Img (_, args) ->
    List.fold_left (fun acc a -> acc + size a) 1 args
  | Binop (_, a, b) -> 1 + size a + size b
  | Unop (_, a) | IDiv (a, _) | IMod (a, _) | Cast (_, a) -> 1 + size a
  | Select (c, a, b) -> 1 + size_cond c + size a + size b

and size_cond = function
  | Cmp (_, a, b) -> 1 + size a + size b
  | And (a, b) | Or (a, b) -> 1 + size_cond a + size_cond b
  | Not a -> 1 + size_cond a

let free_vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go e =
    match e with
    | Var v ->
      if not (Hashtbl.mem seen v.vid) then (
        Hashtbl.add seen v.vid ();
        acc := v :: !acc)
    | Const _ | Param _ -> ()
    | Call (_, args) | Img (_, args) -> List.iter go args
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) | IDiv (a, _) | IMod (a, _) | Cast (_, a) -> go a
    | Select (c, a, b) ->
      go_cond c;
      go a;
      go b
  and go_cond = function
    | Cmp (_, a, b) ->
      go a;
      go b
    | And (a, b) | Or (a, b) ->
      go_cond a;
      go_cond b
    | Not a -> go_cond a
  in
  go e;
  List.rev !acc

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b
  | Pow -> Float.pow a b

let apply_unop op a =
  match op with
  | Neg -> -.a
  | Abs -> Float.abs a
  | Sqrt -> Float.sqrt a
  | Exp -> Float.exp a
  | Log -> Float.log a
  | Floor -> Float.floor a

let apply_cmp op a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

(* Floor division/modulo on float-encoded integers; exact as long as
   the operand is integral (which loop coordinates always are). *)
let fdiv a n = Float.floor (a /. float_of_int n)
let fmod a n = a -. (float_of_int n *. fdiv a n)

let rec simplify e =
  match e with
  | Const _ | Var _ | Param _ -> e
  | Call (f, args) -> Call (f, List.map simplify args)
  | Img (im, args) -> Img (im, List.map simplify args)
  | Binop (op, a, b) -> (
    let a = simplify a and b = simplify b in
    match (op, a, b) with
    | _, Const x, Const y -> Const (apply_binop op x y)
    | Add, Const 0., e | Add, e, Const 0. -> e
    | Sub, e, Const 0. -> e
    | Mul, Const 1., e | Mul, e, Const 1. -> e
    | Mul, Const 0., _ | Mul, _, Const 0. -> Const 0.
    | Div, e, Const 1. -> e
    | _ -> Binop (op, a, b))
  | Unop (op, a) -> (
    let a = simplify a in
    match a with
    | Const x -> Const (apply_unop op x)
    | _ -> (
      match (op, a) with Neg, Unop (Neg, e) -> e | _ -> Unop (op, a)))
  | IDiv (a, n) -> (
    let a = simplify a in
    match a with
    | Const x -> Const (fdiv x n)
    | _ -> if n = 1 then a else IDiv (a, n))
  | IMod (a, n) -> (
    let a = simplify a in
    match a with
    | Const x -> Const (fmod x n)
    | _ -> if n = 1 then Const 0. else IMod (a, n))
  | Select (c, a, b) -> (
    let c = simplify_cond c in
    match c with
    | `True -> simplify a
    | `False -> simplify b
    | `Cond c -> Select (c, simplify a, simplify b))
  | Cast (ty, a) -> (
    let a = simplify a in
    match a with
    | Const x -> Const (Types.clamp_store ty x)
    | _ -> Cast (ty, a))

and simplify_cond c =
  match c with
  | Cmp (op, a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> if apply_cmp op x y then `True else `False
    | a, b -> `Cond (Cmp (op, a, b)))
  | And (a, b) -> (
    match (simplify_cond a, simplify_cond b) with
    | `False, _ | _, `False -> `False
    | `True, x | x, `True -> x
    | `Cond a, `Cond b -> `Cond (And (a, b)))
  | Or (a, b) -> (
    match (simplify_cond a, simplify_cond b) with
    | `True, _ | _, `True -> `True
    | `False, x | x, `False -> x
    | `Cond a, `Cond b -> `Cond (Or (a, b)))
  | Not a -> (
    match simplify_cond a with
    | `True -> `False
    | `False -> `True
    | `Cond a -> `Cond (Not a))

let rec eval ~var ~param ~call ~img e =
  let self e = eval ~var ~param ~call ~img e in
  match e with
  | Const x -> x
  | Var v -> var v
  | Param p -> param p
  | Call (f, args) -> call f (Array.of_list (List.map self args))
  | Img (im, args) -> img im (Array.of_list (List.map self args))
  | Binop (op, a, b) -> apply_binop op (self a) (self b)
  | Unop (op, a) -> apply_unop op (self a)
  | IDiv (a, n) -> fdiv (self a) n
  | IMod (a, n) -> fmod (self a) n
  | Select (c, a, b) ->
    if eval_cond ~var ~param ~call ~img c then self a else self b
  | Cast (ty, a) -> Types.clamp_store ty (self a)

and eval_cond ~var ~param ~call ~img c =
  let goe e = eval ~var ~param ~call ~img e in
  let go c = eval_cond ~var ~param ~call ~img c in
  match c with
  | Cmp (op, a, b) -> apply_cmp op (goe a) (goe b)
  | And (a, b) -> go a && go b
  | Or (a, b) -> go a || go b
  | Not a -> not (go a)

let rec to_abound e =
  let ( let* ) = Option.bind in
  match e with
  | Const x ->
    if Float.is_integer x then Some (Abound.const (int_of_float x))
    else None
  | Param p -> Some (Abound.of_param p)
  | Binop (Add, a, b) ->
    let* a = to_abound a in
    let* b = to_abound b in
    Some (Abound.add a b)
  | Binop (Sub, a, b) ->
    let* a = to_abound a in
    let* b = to_abound b in
    Some (Abound.sub a b)
  | Binop (Mul, Const c, b) when Float.is_integer c ->
    let* b = to_abound b in
    Some (Abound.scale (Q.of_int (int_of_float c)) b)
  | Binop (Mul, a, Const c) when Float.is_integer c ->
    let* a = to_abound a in
    Some (Abound.scale (Q.of_int (int_of_float c)) a)
  | IDiv (a, n) ->
    (* floor((affine)/n): exact as a rational form only when we keep
       the floor; we return the rational scaling, which matches the
       floored evaluation performed by {!Abound.eval}. *)
    let* a = to_abound a in
    Some (Abound.scale (Q.make 1 n) a)
  | Unop (Neg, a) ->
    let* a = to_abound a in
    Some (Abound.neg a)
  | _ -> None

let box_of_cond vars c =
  let n = List.length vars in
  let box = Array.make n (None, None) in
  let index_of v =
    let rec go i = function
      | [] -> None
      | w :: tl -> if Types.var_equal v w then Some i else go (i + 1) tl
    in
    go 0 vars
  in
  let tighten_lo i b =
    let lo, hi = box.(i) in
    let lo =
      match lo with None -> Some b | Some _ -> Some b
      (* conjunction: keep the last; exact max would need parameter
         knowledge, and the checker treats each constraint anyway *)
    in
    box.(i) <- (lo, hi)
  in
  let tighten_hi i b =
    let lo, hi = box.(i) in
    let hi = match hi with None -> Some b | Some _ -> Some b in
    box.(i) <- (lo, hi)
  in
  let rec go c =
    match c with
    | And (a, b) -> go a && go b
    | Cmp (op, Var v, e) -> (
      match (index_of v, to_abound e) with
      | Some i, Some b -> (
        match op with
        | Ge -> tighten_lo i b; true
        | Gt -> tighten_lo i (Abound.add_int b 1); true
        | Le -> tighten_hi i b; true
        | Lt -> tighten_hi i (Abound.add_int b (-1)); true
        | Eq ->
          tighten_lo i b;
          tighten_hi i b;
          true
        | Ne -> false)
      | _ -> false)
    | Cmp (op, e, Var v) ->
      let flip =
        match op with
        | Lt -> Gt
        | Le -> Ge
        | Gt -> Lt
        | Ge -> Le
        | Eq -> Eq
        | Ne -> Ne
      in
      go (Cmp (flip, Var v, e))
    | Or _ | Not _ | Cmp _ -> false
  in
  if go c then Some box else None

let rec pp ppf e =
  match e with
  | Const x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Format.fprintf ppf "%d" (int_of_float x)
    else Format.fprintf ppf "%g" x
  | Var v -> Types.pp_var ppf v
  | Param p -> Types.pp_param ppf p
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f.fname (pp_args ()) args
  | Img (im, args) ->
    Format.fprintf ppf "%s(%a)" im.iname (pp_args ()) args
  | Binop (op, a, b) ->
    let s =
      match op with
      | Add -> "+"
      | Sub -> "-"
      | Mul -> "*"
      | Div -> "/"
      | Min -> "min"
      | Max -> "max"
      | Pow -> "pow"
    in
    (match op with
    | Min | Max | Pow -> Format.fprintf ppf "%s(%a, %a)" s pp a pp b
    | _ -> Format.fprintf ppf "(%a %s %a)" pp a s pp b)
  | Unop (op, a) ->
    let s =
      match op with
      | Neg -> "-"
      | Abs -> "abs"
      | Sqrt -> "sqrt"
      | Exp -> "exp"
      | Log -> "log"
      | Floor -> "floor"
    in
    Format.fprintf ppf "%s(%a)" s pp a
  | IDiv (a, n) -> Format.fprintf ppf "(%a /# %d)" pp a n
  | IMod (a, n) -> Format.fprintf ppf "(%a %%# %d)" pp a n
  | Select (c, a, b) ->
    Format.fprintf ppf "select(%a, %a, %a)" pp_cond c pp a pp b
  | Cast (ty, a) -> Format.fprintf ppf "(%a)(%a)" Types.pp_scalar ty pp a

and pp_args () ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp ppf args

and pp_cond ppf c =
  match c with
  | Cmp (op, a, b) ->
    let s =
      match op with
      | Lt -> "<"
      | Le -> "<="
      | Gt -> ">"
      | Ge -> ">="
      | Eq -> "=="
      | Ne -> "!="
    in
    Format.fprintf ppf "%a %s %a" pp a s pp b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "!(%a)" pp_cond a

let to_string e = Format.asprintf "%a" pp e
