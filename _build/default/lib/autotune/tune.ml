module C = Polymage_compiler
module Rt = Polymage_rt

let paper_tiles = [ 8; 16; 32; 64; 128; 256; 512 ]
let paper_thresholds = [ 0.2; 0.4; 0.5 ]

type sample = {
  tile : int array;
  threshold : float;
  time_seq : float;
  time_par : float;
  n_groups : int;
}

type result = { samples : sample list; best : sample }

let time_run ~repeats pool plan env images =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Rt.Executor.run ?pool plan env ~images);
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

let explore ?(tiles = [ 16; 32; 64; 128 ]) ?(thresholds = paper_thresholds)
    ?(workers = 4) ?(repeats = 1) ~outputs ~env ~images () =
  let pool = if workers > 1 then Some (Rt.Pool.create workers) else None in
  let samples = ref [] in
  Fun.protect
    ~finally:(fun () -> Option.iter Rt.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun ty ->
          List.iter
            (fun tx ->
              List.iter
                (fun threshold ->
                  let tile = [| ty; tx |] in
                  let opts =
                    C.Options.with_threshold threshold
                      (C.Options.with_tile tile
                         (C.Options.opt_vec ~estimates:env ()))
                  in
                  let plan = C.Compile.run opts ~outputs in
                  (* one warm-up at this configuration *)
                  ignore (Rt.Executor.run plan env ~images);
                  let time_seq =
                    let plan1 =
                      C.Compile.run { opts with workers = 1 } ~outputs
                    in
                    time_run ~repeats None plan1 env images
                  in
                  let time_par =
                    time_run ~repeats pool
                      { plan with opts = { plan.opts with workers } }
                      env images
                  in
                  samples :=
                    {
                      tile;
                      threshold;
                      time_seq;
                      time_par;
                      n_groups = C.Plan.n_tiled_groups plan;
                    }
                    :: !samples)
                thresholds)
            tiles)
        tiles);
  let samples = List.rev !samples in
  let best =
    List.fold_left
      (fun acc s -> if s.time_par < acc.time_par then s else acc)
      (List.hd samples) samples
  in
  { samples; best }

let best_options r ~estimates ~workers =
  let o = C.Options.opt_vec ~workers ~estimates () in
  C.Options.with_threshold r.best.threshold
    (C.Options.with_tile r.best.tile o)
