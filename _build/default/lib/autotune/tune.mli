(** Autotuner (paper §3.8): explore the small model-driven parameter
    space — tile sizes per tiled dimension and the overlap threshold —
    by compiling and actually running each configuration, and report
    every sample (paper Fig. 9) plus the best configuration.

    The paper's full space is tile sizes {8..512} per dimension and
    thresholds {0.2, 0.4, 0.5}; pass subsets to bound wall-clock time
    on slow machines. *)

open Polymage_ir
module C := Polymage_compiler
module Rt := Polymage_rt

val paper_tiles : int list
(** [8; 16; 32; 64; 128; 256; 512] *)

val paper_thresholds : float list
(** [0.2; 0.4; 0.5] *)

type sample = {
  tile : int array;
  threshold : float;
  time_seq : float;  (** seconds, 1 worker *)
  time_par : float;  (** seconds, [workers] workers *)
  n_groups : int;  (** tiled groups in the plan *)
}

type result = { samples : sample list; best : sample }

val explore :
  ?tiles:int list ->
  ?thresholds:float list ->
  ?workers:int ->
  ?repeats:int ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  unit ->
  result
(** Run the search.  [tiles] are used for both tiled dimensions (the
    benchmarks tile 2, as in the paper); each configuration is timed
    [repeats] times (default 1) and the minimum is kept.  [best]
    minimizes the parallel time. *)

val best_options :
  result -> estimates:Types.bindings -> workers:int -> C.Options.t
(** Full optimization options with the winning tile/threshold. *)
