lib/autotune/tune.ml: Fun List Option Polymage_compiler Polymage_rt Unix
