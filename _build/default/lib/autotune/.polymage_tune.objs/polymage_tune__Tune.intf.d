lib/autotune/tune.mli: Ast Polymage_compiler Polymage_ir Polymage_rt Types
