(** Exact rational arithmetic over native integers.

    PolyMage's alignment-and-scaling phase (paper §3.3) solves for
    per-dimension scaling factors that are ratios of small sampling
    factors, so exact rationals over [int] suffice (no overflow in
    practice: factors are products of 2s and 3s bounded by pipeline
    depth).  Values are kept normalized: positive denominator, gcd 1. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** Multiplicative inverse. @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int

val is_int : t -> bool
(** [is_int q] is true iff [q] has denominator 1. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val floor : t -> int
(** Largest integer [<= q] (floor division, correct for negatives). *)

val ceil : t -> int
(** Smallest integer [>= q]. *)

val to_float : t -> float

val lcm_dens : t list -> int
(** Least common multiple of the denominators; 1 for the empty list. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
