type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rational.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (Stdlib.abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Stdlib.compare a.num 0
let is_int a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rational.to_int_exn: not an integer";
  a.num

(* Floor division that is correct for negative numerators. *)
let floor a =
  if a.num >= 0 then a.num / a.den
  else -(((-a.num) + a.den - 1) / a.den)

let ceil a = -floor (neg a)
let to_float a = float_of_int a.num /. float_of_int a.den

let lcm_dens qs =
  let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b in
  List.fold_left (fun acc q -> lcm acc q.den) 1 qs

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
