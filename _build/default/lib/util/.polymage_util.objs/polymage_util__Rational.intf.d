lib/util/rational.mli: Format
