lib/util/topo.ml: Array List
