lib/util/topo.mli:
