lib/util/rational.ml: Format List Stdlib
