(** Topological ordering and level assignment for small DAGs indexed by
    contiguous integers [0..n-1].  Used for pipeline stage graphs
    (paper §3: the leading schedule dimension of every stage is its
    level in a topological sort of the pipeline DAG). *)

exception Cycle of int list
(** Raised when the graph has a cycle; carries one cycle's node ids. *)

val sort : n:int -> succs:(int -> int list) -> int list
(** [sort ~n ~succs] is a topological order of the [n] nodes
    (producers before consumers). @raise Cycle on cyclic input. *)

val levels : n:int -> succs:(int -> int list) -> int array
(** [levels ~n ~succs] assigns each node the length of the longest
    path from any source to it (sources get level 0).
    @raise Cycle on cyclic input. *)

val is_acyclic : n:int -> succs:(int -> int list) -> bool
