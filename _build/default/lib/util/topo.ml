exception Cycle of int list

(* Depth-first search with three colours; on finding a back edge the
   current stack suffix is the cycle. *)
let sort ~n ~succs =
  let state = Array.make n `White in
  let order = ref [] in
  let stack = ref [] in
  let rec visit u =
    match state.(u) with
    | `Black -> ()
    | `Grey ->
      let rec take acc = function
        | [] -> acc
        | v :: _ when v = u -> u :: acc
        | v :: tl -> take (v :: acc) tl
      in
      raise (Cycle (take [] !stack))
    | `White ->
      state.(u) <- `Grey;
      stack := u :: !stack;
      List.iter visit (succs u);
      stack := List.tl !stack;
      state.(u) <- `Black;
      order := u :: !order
  in
  for u = 0 to n - 1 do
    visit u
  done;
  !order

let levels ~n ~succs =
  let order = sort ~n ~succs in
  let level = Array.make n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun v -> if level.(v) < level.(u) + 1 then level.(v) <- level.(u) + 1)
        (succs u))
    order;
  level

let is_acyclic ~n ~succs =
  match sort ~n ~succs with _ -> true | exception Cycle _ -> false
