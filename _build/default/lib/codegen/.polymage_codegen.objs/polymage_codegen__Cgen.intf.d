lib/codegen/cgen.mli: Ast Polymage_compiler Polymage_ir Types
