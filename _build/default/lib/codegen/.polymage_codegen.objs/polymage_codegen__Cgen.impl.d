lib/codegen/cgen.ml: Abound Array Ast Buffer Expr Float Hashtbl Interval List Option Pipeline Polymage_compiler Polymage_ir Polymage_poly Printf String Types
