(** C back end: emit a complete, compilable C translation unit for an
    execution plan, mirroring the paper's generated code (Fig. 7):
    one function per pipeline with OpenMP-parallel overlapped-tile
    loops, per-tile stack scratchpads with relative indexing, loop
    nests split per case, and [ivdep]-annotated unit-stride inner
    loops.

    All values are computed in [double] (matching the native
    executor), with element-type rounding/saturation applied on store,
    so a compiled run is numerically comparable to the OCaml executor
    — the round-trip test in the suite checks exactly that. *)

open Polymage_ir
module C := Polymage_compiler

val emit : ?name:string -> C.Plan.t -> string
(** The pipeline function alone:
    [void pipeline_<name>(int <param>.., const double* <image>..,
    double** out_<stage>..)].  Output buffers are allocated inside
    (caller frees). *)

val emit_with_main :
  ?name:string ->
  ?time_runs:int ->
  C.Plan.t ->
  fill:(Ast.image -> string) ->
  env:Types.bindings ->
  string
(** The pipeline function plus a [main] that binds the given parameter
    values, fills every input image with the C expression returned by
    [fill] (over coordinates [c0], [c1], ...), runs the pipeline, and
    prints one checksum line per output:
    ["<name> <count> <sum>"].  Used by the differential test against
    the native executor.  With [time_runs > 0] the main additionally
    times that many repetitions of the pipeline call (after one
    warm-up) and prints ["TIME_MS <best>"] — this is how the benchmark
    harness measures the generated code, mirroring the paper's
    methodology of timing compiled output. *)
