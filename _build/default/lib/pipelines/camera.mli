(** Camera raw-processing pipeline (paper Table 2, FCam-style,
    ~28 stages): hot-pixel suppression on the Bayer mosaic,
    deinterleave into the four GRBG planes, demosaic by directional
    interpolation, recombination to full resolution, color matrix
    correction, and a gamma tone curve applied through a lookup table.
    The LUT is indexed by computed values (data-dependent), so it
    stays in its own group while everything else fuses — exactly the
    grouping the paper reports. *)

val build : unit -> App.t
