open Polymage_dsl.Dsl

(* Direct transcription of paper Figure 1. *)
let build () =
  let r = parameter ~name:"R" () and cc = parameter ~name:"C" () in
  let img =
    image ~name:"I" Float [ param_b r +~ ib 2; param_b cc +~ ib 2 ]
  in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let row = interval (ib 0) (param_b r +~ ib 1) in
  let col = interval (ib 0) (param_b cc +~ ib 1) in
  let dom = [ (x, row); (y, col) ] in
  let c = in_box [ (v x, i 1, p r); (v y, i 1, p cc) ] in
  let cb =
    in_box [ (v x, i 2, p r -: i 1); (v y, i 2, p cc -: i 1) ]
  in
  let sample = img_at img in

  let iy = func ~name:"Iy" Float dom in
  define iy
    [
      case c
        (stencil sample ~scale:(1. /. 12.)
           [ [ -1.; -2.; -1. ]; [ 0.; 0.; 0. ]; [ 1.; 2.; 1. ] ]
           (v x) (v y));
    ];

  let ix = func ~name:"Ix" Float dom in
  define ix
    [
      case c
        (stencil sample ~scale:(1. /. 12.)
           [ [ -1.; 0.; 1. ]; [ -2.; 0.; 2. ]; [ -1.; 0.; 1. ] ]
           (v x) (v y));
    ];

  let pointwise name a b =
    let f = func ~name Float dom in
    define f [ case c (app a [ v x; v y ] *: app b [ v x; v y ]) ];
    f
  in
  let ixx = pointwise "Ixx" ix ix in
  let iyy = pointwise "Iyy" iy iy in
  let ixy = pointwise "Ixy" ix iy in

  let box name src =
    let f = func ~name Float dom in
    define f
      [
        case cb
          (stencil
             (fun idx -> app src idx)
             [ [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ] ]
             (v x) (v y));
      ];
    f
  in
  let sxx = box "Sxx" ixx in
  let syy = box "Syy" iyy in
  let sxy = box "Sxy" ixy in

  let det = func ~name:"det" Float dom in
  define det
    [
      case cb
        ((app sxx [ v x; v y ] *: app syy [ v x; v y ])
        -: (app sxy [ v x; v y ] *: app sxy [ v x; v y ]));
    ];

  let trace = func ~name:"trace" Float dom in
  define trace [ case cb (app sxx [ v x; v y ] +: app syy [ v x; v y ]) ];

  let harris = func ~name:"harris" Float dom in
  define harris
    [
      case cb
        (app det [ v x; v y ]
        -: (fl 0.04 *: app trace [ v x; v y ] *: app trace [ v x; v y ]));
    ];

  App.make ~name:"harris"
    ~description:"Harris corner detection (paper Fig. 1)"
    ~outputs:[ harris ]
    ~default_env:[ (r, 6400); (cc, 6400) ]
    ~small_env:[ (r, 96); (cc, 72) ]
    ~fill:(fun _ _ coords -> Synth.checker ~period:12 coords)
    ()
