(* Coordinates may have 2 or 3 dims; the last two are (row, col) and a
   leading channel perturbs the value slightly so channels differ. *)
let rc c =
  let n = Array.length c in
  if n >= 2 then (c.(n - 2), c.(n - 1), if n >= 3 then c.(0) else 0)
  else (c.(0), 0, 0)

let gradient c =
  let x, y, ch = rc c in
  let v = (0.37 *. float_of_int x) +. (0.61 *. float_of_int y) in
  Float.rem (v /. 97.3 +. (0.07 *. float_of_int ch)) 1.0

let checker ?(period = 16) c =
  let x, y, ch = rc c in
  let b = (x / period) + (y / period) + ch in
  if b land 1 = 0 then 0.1 else 0.9

(* splitmix-style integer hash: deterministic, uncorrelated. *)
let hash3 x y ch =
  let z = ref ((x * 0x9e3779b1) lxor (y * 0x85ebca77) lxor (ch * 0xc2b2ae3d)) in
  z := (!z lxor (!z lsr 13)) * 0x27d4eb2f;
  z := !z lxor (!z lsr 15);
  float_of_int (!z land 0xffff) /. 65536.0

let noise c =
  let x, y, ch = rc c in
  hash3 x y ch

let textured c =
  let g = gradient c and k = checker c and n = noise c in
  let v = (0.55 *. g) +. (0.35 *. k) +. (0.1 *. n) in
  if v >= 1.0 then 0.999 else v

let bayer_raw c =
  let x, y, _ = rc c in
  (* Scene radiance, then GRBG mosaic channel gains. *)
  let scene = textured [| x; y |] in
  let gain =
    match (x land 1, y land 1) with
    | 0, 0 -> 0.9 (* G (on R row) *)
    | 0, 1 -> 0.6 (* R *)
    | 1, 0 -> 0.7 (* B *)
    | _ -> 0.9 (* G (on B row) *)
  in
  Float.round (scene *. gain *. 1023.0)

let half_focus ~left ~split c =
  let x, y, ch = rc c in
  let sharp = textured c in
  (* Cheap blur stand-in: sample the texture at a coarser grid. *)
  let blurred = textured [| ch; x / 4 * 4; y / 4 * 4 |] in
  let in_left = y < split in
  if (left && in_left) || ((not left) && not in_left) then sharp else blurred

let mask_left ~split c =
  let _, y, _ = rc c in
  let t = (float_of_int split -. float_of_int y) /. 16.0 in
  if t >= 1.0 then 1.0 else if t <= 0.0 then 0.0 else t
