open Polymage_dsl.Dsl

let sigma_s = 8 (* spatial sampling *)
let zbins = 16 (* intensity bins *)

(* Grid geometry: spatial cells [0 .. R/8] shifted by a ghost border
   of 2 (for the 5-tap blur), intensity bins [0 .. 15] shifted by 2. *)
let build () =
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img = image ~name:"I" Float [ param_b r; param_b c ] in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let gx = variable ~name:"gx" ()
  and gy = variable ~name:"gy" ()
  and gz = variable ~name:"gz" () in
  let rows = interval (ib 0) (param_b r -~ ib 1) in
  let cols = interval (ib 0) (param_b c -~ ib 1) in
  let gext p = (param_b p /~ sigma_s) +~ ib 4 in
  let grid_dom =
    [
      (gx, interval (ib 0) (gext r));
      (gy, interval (ib 0) (gext c));
      (gz, interval (ib 0) (ib (zbins + 3)));
    ]
  in
  (* Histogram-style grid construction (Accumulator, paper Fig. 3):
     every pixel lands in cell (x/8+2, y/8+2, bin(I)+2). *)
  let zindex =
    clamp (floor_ (img_at img [ v x; v y ] *: fl (float_of_int zbins)))
      (i 0)
      (i (zbins - 1))
    +: i 2
  in
  let over = [ (x, rows); (y, cols) ] in
  let cell = [ (v x /^ sigma_s) +: i 2; (v y /^ sigma_s) +: i 2; zindex ] in
  let grid_i = func ~name:"gridI" Float grid_dom in
  accumulate grid_i ~over ~index:cell ~value:(img_at img [ v x; v y ]) Rsum;
  let grid_w = func ~name:"gridW" Float grid_dom in
  accumulate grid_w ~over ~index:cell ~value:(fl 1.0) Rsum;

  (* 5-tap binomial blur along each grid axis, on both channels. *)
  let w5 = [ 1. /. 16.; 4. /. 16.; 6. /. 16.; 4. /. 16.; 1. /. 16. ] in
  let interior =
    in_box
      [
        (v gx, i 2, (p r /^ sigma_s) +: i 2);
        (v gy, i 2, (p c /^ sigma_s) +: i 2);
        (v gz, i 2, i (zbins + 1));
      ]
  in
  let blur_axis name src axis =
    let f = func ~name Float grid_dom in
    let at k =
      match axis with
      | `Z -> [ v gx; v gy; v gz +: i k ]
      | `X -> [ v gx +: i k; v gy; v gz ]
      | `Y -> [ v gx; v gy +: i k; v gz ]
    in
    define f
      [
        case interior
          (List.fold_left
             (fun acc (k, w) -> acc +: (fl w *: app src (at k)))
             (fl (List.nth w5 0) *: app src (at (-2)))
             [ (-1, List.nth w5 1); (0, List.nth w5 2);
               (1, List.nth w5 3); (2, List.nth w5 4) ]);
      ];
    f
  in
  let bzi = blur_axis "blurzI" grid_i `Z in
  let bzw = blur_axis "blurzW" grid_w `Z in
  let bxi = blur_axis "blurxI" bzi `X in
  let bxw = blur_axis "blurxW" bzw `X in
  let byi = blur_axis "bluryI" bxi `Y in
  let byw = blur_axis "bluryW" bxw `Y in

  (* Slice: trilinear interpolation of the blurred grid at the pixel's
     (fractional) grid coordinates — data-dependent in z. *)
  let out = func ~name:"bilateral" Float [ (x, rows); (y, cols) ] in
  let fs = float_of_int sigma_s in
  let xi = (v x /^ sigma_s) +: i 2
  and yi = (v y /^ sigma_s) +: i 2 in
  let xf = fl (1. /. fs) *: (v x %^ sigma_s) in
  let yf = fl (1. /. fs) *: (v y %^ sigma_s) in
  let zv =
    clamp (img_at img [ v x; v y ] *: fl (float_of_int zbins))
      (fl 0.) (fl (float_of_int zbins -. 1e-3))
  in
  let zi = floor_ zv +: i 2 in
  let zf = zv -: floor_ zv in
  let tri src =
    let corner dx dy dz =
      app src [ xi +: i dx; yi +: i dy; zi +: i dz ]
    in
    let lerp w a b = ((fl 1.0 -: w) *: a) +: (w *: b) in
    lerp xf
      (lerp yf (lerp zf (corner 0 0 0) (corner 0 0 1))
         (lerp zf (corner 0 1 0) (corner 0 1 1)))
      (lerp yf (lerp zf (corner 1 0 0) (corner 1 0 1))
         (lerp zf (corner 1 1 0) (corner 1 1 1)))
  in
  define out
    [ always (tri byi /: max_ (tri byw) (fl 1e-6)) ];

  App.make ~name:"bilateral_grid"
    ~description:"Bilateral grid: histogram reduction, 3-D blurs, trilinear slice"
    ~outputs:[ out ]
    ~default_env:[ (r, 2560); (c, 1536) ]
    ~small_env:[ (r, 96); (c, 64) ]
    ~fill:(fun _ _ coords -> Synth.textured coords)
    ()
