open Polymage_dsl.Dsl

(* Output is (3, 2R, 2C) starting at spatial index 2; the RAW mosaic
   is (2R+4, 2C+4), 10-bit values, GRBG layout:
       G R      rows 2x   : G at even col, R at odd col
       B G      rows 2x+1 : B at even col, G at odd col

   Stage structure follows the FCam-style pipeline the paper
   benchmarks: hot-pixel suppression, black level + white balance,
   deinterleave, gradient-guided demosaic, recombination, color matrix
   correction, luma sharpening, and a gamma tone curve applied through
   a lookup table (the LUT stays in its own group — its consumers
   index it with computed values). *)
let build () =
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let raw =
    image ~name:"raw" Short
      [ (2 *~ param_b r) +~ ib 4; (2 *~ param_b c) +~ ib 4 ]
  in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let full_rows = interval (ib 0) ((2 *~ param_b r) +~ ib 3) in
  let full_cols = interval (ib 0) ((2 *~ param_b c) +~ ib 3) in
  let full_dom = [ (x, full_rows); (y, full_cols) ] in
  let half_rows = interval (ib 0) (param_b r +~ ib 1) in
  let half_cols = interval (ib 0) (param_b c +~ ib 1) in
  let half_dom = [ (x, half_rows); (y, half_cols) ] in
  let full_interior =
    in_box
      [ (v x, i 2, (i 2 *: p r) +: i 1); (v y, i 2, (i 2 *: p c) +: i 1) ]
  in

  (* Hot-pixel suppression: clamp each sensor value to the range of
     its same-color neighbours two pixels away. *)
  let denoised = func ~name:"denoised" Float full_dom in
  let at dx dy = img_at raw [ v x +: i dx; v y +: i dy ] in
  define denoised
    [
      case full_interior
        (clamp (at 0 0)
           (min_ (min_ (at (-2) 0) (at 2 0)) (min_ (at 0 (-2)) (at 0 2)))
           (max_ (max_ (at (-2) 0) (at 2 0)) (max_ (at 0 (-2)) (at 0 2))));
    ];

  (* Black level subtraction and per-channel white balance, by Bayer
     phase (point-wise; the inliner folds it into the deinterleave). *)
  let black = 16.0 in
  let gain_r = 1.9 and gain_b = 1.4 and gain_g = 1.0 in
  let balanced = func ~name:"balanced" Float full_dom in
  let d00 = app denoised [ v x; v y ] -: fl black in
  define balanced
    [
      case full_interior
        (max_ (fl 0.)
           (select
              (v x %^ 2 =: i 0)
              (select (v y %^ 2 =: i 0) (fl gain_g *: d00) (fl gain_r *: d00))
              (select (v y %^ 2 =: i 0) (fl gain_b *: d00) (fl gain_g *: d00))));
    ];

  (* Deinterleave the mosaic into four half-resolution planes. *)
  let plane name dx dy =
    let f = func ~name Float half_dom in
    define f
      [
        always
          (app balanced [ (i 2 *: v x) +: i dx; (i 2 *: v y) +: i dy ]);
      ];
    f
  in
  let gr = plane "gr" 0 0 in
  let rp = plane "r" 0 1 in
  let bp = plane "b" 1 0 in
  let gb = plane "gb" 1 1 in

  let half_interior = in_box [ (v x, i 1, p r); (v y, i 1, p c) ] in
  let interp name e =
    let f = func ~name Float half_dom in
    define f [ case half_interior e ];
    f
  in
  let g2 a b = fl 0.5 *: (a +: b) in
  let g4 a b cc d = fl 0.25 *: (a +: b +: cc +: d) in
  let pv f dx dy = app f [ v x +: i dx; v y +: i dy ] in

  (* Gradient-guided green interpolation at red and blue sites (the
     FCam demosaic's directional selection). *)
  let gh_r = interp "gh_r" (abs_ (pv gr 0 0 -: pv gr 0 1)) in
  let gv_r = interp "gv_r" (abs_ (pv gb 0 0 -: pv gb (-1) 0)) in
  let g_r =
    interp "g_r"
      (select
         (app gh_r [ v x; v y ] <: app gv_r [ v x; v y ])
         (g2 (pv gr 0 0) (pv gr 0 1))
         (g2 (pv gb 0 0) (pv gb (-1) 0)))
  in
  let gh_b = interp "gh_b" (abs_ (pv gb 0 0 -: pv gb 0 (-1))) in
  let gv_b = interp "gv_b" (abs_ (pv gr 0 0 -: pv gr 1 0)) in
  let g_b =
    interp "g_b"
      (select
         (app gh_b [ v x; v y ] <: app gv_b [ v x; v y ])
         (g2 (pv gb 0 0) (pv gb 0 (-1)))
         (g2 (pv gr 0 0) (pv gr 1 0)))
  in

  (* Red/blue at the other sites: plane-space averages. *)
  let r_gr = interp "r_gr" (g2 (pv rp 0 0) (pv rp 0 (-1))) in
  let r_gb = interp "r_gb" (g2 (pv rp 0 0) (pv rp 1 0)) in
  let r_b =
    interp "r_b" (g4 (pv rp 0 0) (pv rp 1 0) (pv rp 0 (-1)) (pv rp 1 (-1)))
  in
  let b_gr = interp "b_gr" (g2 (pv bp 0 0) (pv bp (-1) 0)) in
  let b_gb = interp "b_gb" (g2 (pv bp 0 0) (pv bp 0 1)) in
  let b_r =
    interp "b_r" (g4 (pv bp 0 0) (pv bp (-1) 0) (pv bp 0 1) (pv bp (-1) 1))
  in

  (* Recombine to full resolution by Bayer phase. *)
  let phase e00 e01 e10 e11 =
    let h f = app f [ v x /^ 2; v y /^ 2 ] in
    select
      (v x %^ 2 =: i 0)
      (select (v y %^ 2 =: i 0) (h e00) (h e01))
      (select (v y %^ 2 =: i 0) (h e10) (h e11))
  in
  let fullc name e00 e01 e10 e11 =
    let f = func ~name Float full_dom in
    define f [ case full_interior (phase e00 e01 e10 e11) ];
    f
  in
  let red = fullc "red" r_gr rp r_b r_gb in
  let green = fullc "green" gr g_r g_b gb in
  let blue = fullc "blue" b_gr b_r bp b_gb in

  (* Color matrix correction (point-wise; gets inlined). *)
  let mat =
    [|
      [| 1.6; -0.4; -0.2 |]; [| -0.3; 1.5; -0.2 |]; [| -0.1; -0.5; 1.6 |];
    |]
  in
  let corrected k name =
    let f = func ~name Float full_dom in
    let row = mat.(k) in
    define f
      [
        case full_interior
          (clamp
             ((fl row.(0) *: app red [ v x; v y ])
             +: (fl row.(1) *: app green [ v x; v y ])
             +: (fl row.(2) *: app blue [ v x; v y ]))
             (fl 0.) (fl 1023.));
      ];
    f
  in
  let ccr = corrected 0 "ccr" in
  let ccg = corrected 1 "ccg" in
  let ccb = corrected 2 "ccb" in

  (* Luma sharpening: unsharp mask on the luminance channel. *)
  let luma = func ~name:"luma" Float full_dom in
  define luma
    [
      case full_interior
        ((fl 0.299 *: app ccr [ v x; v y ])
        +: (fl 0.587 *: app ccg [ v x; v y ])
        +: (fl 0.114 *: app ccb [ v x; v y ]));
    ];
  let sharp_interior =
    in_box [ (v x, i 3, (i 2 *: p r)); (v y, i 3, (i 2 *: p c)) ]
  in
  let lblurx = func ~name:"lblurx" Float full_dom in
  define lblurx
    [
      case sharp_interior
        (stencil1d (fun ix -> app luma [ ix; v y ]) ~scale:0.25
           [ 1.; 2.; 1. ] (v x));
    ];
  let lblury = func ~name:"lblury" Float full_dom in
  define lblury
    [
      case sharp_interior
        (stencil1d (fun iy -> app lblurx [ v x; iy ]) ~scale:0.25
           [ 1.; 2.; 1. ] (v y));
    ];
  let sharp_amount = 0.4 in
  let detail = func ~name:"detail" Float full_dom in
  define detail
    [
      case sharp_interior
        (fl sharp_amount *: (app luma [ v x; v y ] -: app lblury [ v x; v y ]));
    ];

  (* Gamma tone curve as a 1024-entry LUT (its own group: the apply
     stages index it with computed values). *)
  let z = variable ~name:"z" () in
  let curve = func ~name:"curve" Float [ (z, interval (ib 0) (ib 1023)) ] in
  define curve
    [ always (fl 255.0 *: pow_ (v z /: fl 1023.0) (fl (1.0 /. 2.2))) ];

  (* Final interleaved 8-bit output with sharpening folded in. *)
  let ch = variable ~name:"ch" () in
  let out =
    func ~name:"processed" UChar
      [ (ch, interval (ib 0) (ib 2)); (x, full_rows); (y, full_cols) ]
  in
  let lut cc =
    app curve
      [
        floor_
          (clamp (app cc [ v x; v y ] +: app detail [ v x; v y ]) (fl 0.)
             (fl 1023.));
      ]
  in
  define out
    [
      case full_interior
        (cast UChar
           (select (v ch =: i 0) (lut ccr)
              (select (v ch =: i 1) (lut ccg) (lut ccb))));
    ];

  App.make ~name:"camera_pipe"
    ~description:
      "Camera RAW pipeline: hot-pixel, demosaic, color correction, sharpen, \
       tone LUT"
    ~outputs:[ out ]
    ~default_env:[ (r, 1264); (c, 960) ]
    ~small_env:[ (r, 48); (c, 40) ]
    ~fill:(fun _ _ coords -> Synth.bayer_raw coords)
    ()
