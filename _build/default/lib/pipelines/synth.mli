(** Deterministic synthetic input images.

    The paper's inputs are photographs and RAW captures; the
    optimizations measured are data-independent, so benchmarks and
    tests use synthetic images with comparable statistics
    (see DESIGN.md substitutions).  All generators are pure functions
    of the pixel coordinates, so the same image can be regenerated for
    the reference implementations. *)

val gradient : int array -> float
(** Smooth diagonal ramp in [0, 1). *)

val checker : ?period:int -> int array -> float
(** Checkerboard in {0.1, 0.9}; corners make Harris respond. *)

val noise : int array -> float
(** Deterministic white-ish noise in [0, 1) (hash of coordinates). *)

val textured : int array -> float
(** Gradient + checker + noise mix in [0, 1); the default workload. *)

val bayer_raw : int array -> float
(** A GRBG-mosaicked synthetic scene, values in [0, 1023] (10-bit
    RAW, as a camera sensor produces). *)

val half_focus : left:bool -> split:int -> int array -> float
(** Scene where one half is sharp [textured] and the other blurred —
    the pyramid-blending inputs of paper Fig. 8.  [split] is the
    column where focus changes. *)

val mask_left : split:int -> int array -> float
(** Smooth vertical step mask (1 left of [split], 0 right of it). *)
