let builders : (string * (unit -> App.t)) list =
  [
    ("unsharp_mask", Unsharp.build);
    ("bilateral_grid", Bilateral.build);
    ("harris", Harris.build);
    ("camera_pipe", Camera.build);
    ("pyramid_blend", (fun () -> Pyramid.build ()));
    ("interpolate", (fun () -> Interpolate.build ()));
    ("local_laplacian", (fun () -> Laplacian.build ()));
  ]

let names = List.map fst builders
let all () = List.map (fun (_, b) -> b ()) builders

let find name =
  match List.assoc_opt name builders with
  | Some b -> b ()
  | None -> raise Not_found
