open Polymage_ir

type t = {
  name : string;
  description : string;
  outputs : Ast.func list;
  tile_dims : int;
  default_env : Types.bindings;
  small_env : Types.bindings;
  fill : Types.bindings -> Ast.image -> int array -> float;
}

let make ~name ~description ~outputs ?(tile_dims = 2) ~default_env ~small_env
    ~fill () =
  { name; description; outputs; tile_dims; default_env; small_env; fill }
