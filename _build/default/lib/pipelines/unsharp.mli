(** Unsharp Mask (paper Table 2, 4 stages): a separable Gaussian blur
    followed by thresholded sharpening of a 3-channel image.  The
    simplest benchmark — a straight chain of stencils where fusing
    everything into one group is clearly right. *)

val build : unit -> App.t
