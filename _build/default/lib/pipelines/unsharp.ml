open Polymage_dsl.Dsl

(* Layout follows the PolyMage benchmark: channel-major (c, x, y) with
   a 2-pixel ghost border on the spatial dims; the output is defined
   on the interior [2, R+1] x [2, C+1]. *)
let build () =
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img =
    image ~name:"img" Float [ ib 3; param_b r +~ ib 4; param_b c +~ ib 4 ]
  in
  let ch = variable ~name:"c" ()
  and x = variable ~name:"x" ()
  and y = variable ~name:"y" () in
  let chans = interval (ib 0) (ib 2) in
  let rows = interval (ib 0) (param_b r +~ ib 3) in
  let cols = interval (ib 0) (param_b c +~ ib 3) in
  let dom = [ (ch, chans); (x, rows); (y, cols) ] in
  let w5 = [ 1. /. 16.; 4. /. 16.; 6. /. 16.; 4. /. 16.; 1. /. 16. ] in

  let blurx = func ~name:"blurx" Float dom in
  define blurx
    [
      case
        (between (v x) (i 2) (p r +: i 1))
        (stencil1d
           (fun ix -> img_at img [ v ch; ix; v y ])
           w5 (v x));
    ];

  let blury = func ~name:"blury" Float dom in
  let interior =
    in_box [ (v x, i 2, p r +: i 1); (v y, i 2, p c +: i 1) ]
  in
  define blury
    [
      case interior
        (stencil1d (fun iy -> app blurx [ v ch; v x; iy ]) w5 (v y));
    ];

  let weight = 3.0 and threshold = 0.01 in
  let sharpen = func ~name:"sharpen" Float dom in
  define sharpen
    [
      case interior
        ((img_at img [ v ch; v x; v y ] *: fl (1.0 +. weight))
        -: (app blury [ v ch; v x; v y ] *: fl weight));
    ];

  let masked = func ~name:"masked" Float dom in
  define masked
    [
      case interior
        (select
           (abs_
              (img_at img [ v ch; v x; v y ]
              -: app blury [ v ch; v x; v y ])
           <: fl threshold)
           (img_at img [ v ch; v x; v y ])
           (app sharpen [ v ch; v x; v y ]));
    ];

  App.make ~name:"unsharp_mask"
    ~description:"Unsharp mask: separable Gaussian blur + thresholded sharpen"
    ~outputs:[ masked ]
    ~default_env:[ (r, 2048); (c, 2048) ]
    ~small_env:[ (r, 96); (c, 80) ]
    ~fill:(fun _ _ coords -> Synth.textured coords)
    ()
