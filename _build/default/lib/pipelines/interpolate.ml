open Polymage_dsl.Dsl

let pow2 k = 1 lsl k

(* Level-k grids span [0 .. R/2^k + 3] spatially (2-pixel ghost
   border, interior from 2), with a residual channel dimension
   c in [0 .. 3]; channel 3 is the alpha/weight plane. *)
let build ?(levels = 5) () =
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let rgba =
    image ~name:"rgba" Float
      [ ib 4; param_b r +~ ib 4; param_b c +~ ib 4 ]
  in
  let ch = variable ~name:"ch" ()
  and x = variable ~name:"x" ()
  and y = variable ~name:"y" () in
  let chans = interval (ib 0) (ib 3) in
  let dom_at k =
    [
      (ch, chans);
      (x, interval (ib 0) ((param_b r /~ pow2 k) +~ ib 3));
      (y, interval (ib 0) ((param_b c /~ pow2 k) +~ ib 3));
    ]
  in
  let interior k =
    in_box
      [ (v x, i 2, p r /^ pow2 k); (v y, i 2, p c /^ pow2 k) ]
  in

  (* Alpha-premultiplied level 0. *)
  let d0 = func ~name:"d0" Float (dom_at 0) in
  define d0
    [
      case (interior 0)
        (select (v ch =: i 3)
           (img_at rgba [ i 3; v x; v y ])
           (img_at rgba [ v ch; v x; v y ] *: img_at rgba [ i 3; v x; v y ]));
    ];

  (* Separable decimation: columns then rows (two stages per level,
     as in the Halide benchmark). *)
  let w3 = [ 0.25; 0.5; 0.25 ] in
  let downs =
    let rec go k acc prev =
      if k > levels then List.rev acc
      else begin
        let dy =
          func ~name:(Printf.sprintf "dy%d" k) Float
            [
              (ch, chans);
              (x, interval (ib 0) ((param_b r /~ pow2 (k - 1)) +~ ib 3));
              (y, interval (ib 0) ((param_b c /~ pow2 k) +~ ib 3));
            ]
        in
        define dy
          [
            case
              (in_box
                 [
                   (v x, i 2, p r /^ pow2 (k - 1));
                   (v y, i 2, p c /^ pow2 k);
                 ])
              (stencil1d
                 (fun iy -> app prev [ v ch; v x; iy ])
                 w3
                 (i 2 *: v y));
          ];
        let d = func ~name:(Printf.sprintf "d%d" k) Float (dom_at k) in
        define d
          [
            case (interior k)
              (stencil1d
                 (fun ix -> app dy [ v ch; ix; v y ])
                 w3
                 (i 2 *: v x));
          ];
        go (k + 1) (d :: acc) d
      end
    in
    go 1 [] d0
  in
  let d_at = Array.of_list (d0 :: downs) in

  (* Pull phase: u_levels = d_levels; going up,
     u_k = d_k + (1 - alpha_k) * upsample(u_{k+1}). *)
  let rec pull k =
    if k = levels then d_at.(k)
    else begin
      let deeper = pull (k + 1) in
      let up =
        func ~name:(Printf.sprintf "up%d" (k + 1)) Float (dom_at k)
      in
      define up
        [
          case (interior k)
            (upsample2
               (fun idx ->
                 match idx with
                 | [ ix; iy ] -> app deeper [ v ch; ix; iy ]
                 | _ -> assert false)
               (v x) (v y));
        ];
      let u = func ~name:(Printf.sprintf "u%d" k) Float (dom_at k) in
      define u
        [
          case (interior k)
            (app d_at.(k) [ v ch; v x; v y ]
            +: ((fl 1.0 -: app d_at.(k) [ i 3; v x; v y ])
               *: app up [ v ch; v x; v y ]));
        ];
      u
    end
  in
  let u0 = pull 0 in

  (* Normalize by the interpolated alpha. *)
  let out = func ~name:"interpolated" Float (dom_at 0) in
  define out
    [
      case (interior 0)
        (app u0 [ v ch; v x; v y ]
        /: max_ (app u0 [ i 3; v x; v y ]) (fl 1e-6));
    ];

  App.make ~name:"interpolate"
    ~description:
      (Printf.sprintf "Pull-push multiscale interpolation, %d levels" levels)
    ~outputs:[ out ]
    ~default_env:[ (r, 2560); (c, 1536) ]
    ~small_env:[ (r, 96); (c, 64) ]
    ~fill:(fun _ _ coords ->
      (* RGBA: alpha knocks out a grid of holes to interpolate. *)
      let chn = coords.(0) and xx = coords.(1) and yy = coords.(2) in
      let alpha =
        if xx >= 12 && yy >= 12 && ((xx / 6) + (yy / 6)) mod 4 = 0 then 0.0
        else 1.0
      in
      if chn = 3 then alpha else alpha *. Synth.textured [| chn; xx; yy |])
    ()
