(** Registry of the paper's seven benchmark applications (§4). *)

val all : unit -> App.t list
(** Fresh instances of every benchmark, in the paper's Table 2 order. *)

val find : string -> App.t
(** Build one benchmark by name. @raise Not_found for unknown names. *)

val names : string list
