(** Multiscale interpolation (paper Table 2, ~30 stages): interpolate
    the colors of masked-out pixels by pushing alpha-weighted values
    down a pyramid with separable decimation and pulling them back up
    with blending, normalizing at the end — the classic pull-push
    algorithm on RGBA data.  Exercises fusion across both downsampling
    and upsampling stages with a residual channel dimension. *)

val build : ?levels:int -> unit -> App.t
(** [levels] is the pyramid depth (default 5). *)
