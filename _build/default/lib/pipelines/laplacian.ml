open Polymage_dsl.Dsl

let pow2 k = 1 lsl k
let w5 = [ 1.; 4.; 6.; 4.; 1. ]
let w5x5 = List.map (fun a -> List.map (fun b -> a *. b /. 256.) w5) w5

let build ?(k_levels = 4) ?(j_levels = 4) () =
  let kk = k_levels and jj = j_levels in
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img = image ~name:"I" Float [ param_b r +~ ib 4; param_b c +~ ib 4 ] in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let dom_at j =
    [
      (x, interval (ib 0) ((param_b r /~ pow2 j) +~ ib 3));
      (y, interval (ib 0) ((param_b c /~ pow2 j) +~ ib 3));
    ]
  in
  let interior j =
    in_box [ (v x, i 2, p r /^ pow2 j); (v y, i 2, p c /^ pow2 j) ]
  in
  let gauss_level name j sample =
    let g = func ~name Float (dom_at j) in
    define g [ case (interior j) (downsample2 sample w5x5 (v x) (v y)) ];
    g
  in
  let pyramid tag sample0 =
    (* levels 1..jj-1 of a Gaussian pyramid over the sampler *)
    let rec go j acc prev =
      if j >= jj then List.rev acc
      else
        let g =
          gauss_level (Printf.sprintf "%s_G%d" tag j) j prev
        in
        go (j + 1) (g :: acc) (fun idx -> app g idx)
    in
    go 1 [] sample0
  in

  (* Input Gaussian pyramid (controls the interpolation). *)
  let in_g = pyramid "inG" (fun idx -> img_at img idx) in
  let in_g_at j idx =
    if j = 0 then img_at img idx else app (List.nth in_g (j - 1)) idx
  in

  (* K remapped copies and their Gaussian pyramids. *)
  let alpha = 0.25 and beta = 1.0 in
  let remaps =
    List.init kk (fun k ->
        let gk = float_of_int k /. float_of_int (kk - 1) in
        let f = func ~name:(Printf.sprintf "remap%d" k) Float (dom_at 0) in
        let d = img_at img [ v x; v y ] -: fl gk in
        define f
          [
            case (interior 0)
              (fl gk +: (fl beta *: d)
              +: (fl alpha *: d *: exp_ (fl (-8.0) *: d *: d)));
          ];
        f)
  in
  let g_pyr =
    List.map
      (fun rm ->
        Array.of_list
          (rm :: pyramid (rm.Polymage_ir.Ast.fname ^ "p")
                   (fun idx -> app rm idx)))
      remaps
  in
  let g_pyr = Array.of_list g_pyr in

  (* Upsampled versions of each remapped pyramid level (for Laplacian
     coefficients on level j we need gPyramid[k][j+1] on grid j). *)
  let ups =
    Array.init kk (fun k ->
        Array.init (jj - 1) (fun j ->
            let u =
              func
                ~name:(Printf.sprintf "up_k%d_j%d" k (j + 1))
                Float (dom_at j)
            in
            define u
              [
                case (interior j)
                  (upsample2
                     (fun idx ->
                       match idx with
                       | [ ix; iy ] -> app g_pyr.(k).(j + 1) [ ix; iy ]
                       | _ -> assert false)
                     (v x) (v y));
              ];
            u))
  in

  (* Output Laplacian pyramid: at each level, interpolate between the
     two remap pyramids bracketing the local input intensity — the
     data-dependent part of the benchmark. *)
  let out_l =
    List.init jj (fun j ->
        let f = func ~name:(Printf.sprintf "outL%d" j) Float (dom_at j) in
        let level =
          clamp (in_g_at j [ v x; v y ]) (fl 0.) (fl 0.9999)
          *: fl (float_of_int (kk - 1))
        in
        let lap k idx =
          if j = jj - 1 then app g_pyr.(k).(j) idx
          else
            match idx with
            | [ ix; iy ] ->
              app g_pyr.(k).(j) [ ix; iy ] -: app ups.(k).(j) [ ix; iy ]
            | _ -> assert false
        in
        let li = floor_ level in
        let lf = level -: li in
        (* select chain over the K-1 brackets *)
        let rec bracket k =
          let blend =
            ((fl 1.0 -: lf) *: lap k [ v x; v y ])
            +: (lf *: lap (k + 1) [ v x; v y ])
          in
          if k >= kk - 2 then blend
          else select (li <=: fl (float_of_int k)) blend (bracket (k + 1))
        in
        define f [ case (interior j) (bracket 0) ];
        f)
  in

  (* Collapse the output pyramid. *)
  let rec collapse j =
    if j = jj - 1 then List.nth out_l j
    else begin
      let deeper = collapse (j + 1) in
      let u =
        func ~name:(Printf.sprintf "outG_up%d" (j + 1)) Float (dom_at j)
      in
      define u
        [
          case (interior j)
            (upsample2
               (fun idx ->
                 match idx with
                 | [ ix; iy ] -> app deeper [ ix; iy ]
                 | _ -> assert false)
               (v x) (v y));
        ];
      let o = func ~name:(Printf.sprintf "outG%d" j) Float (dom_at j) in
      define o
        [
          case (interior j)
            (app (List.nth out_l j) [ v x; v y ] +: app u [ v x; v y ]);
        ];
      o
    end
  in
  let out = collapse 0 in

  let sz = pow2 jj * 4 in
  App.make ~name:"local_laplacian"
    ~description:
      (Printf.sprintf
         "Local Laplacian filter, %d intensity levels x %d pyramid levels"
         kk jj)
    ~outputs:[ out ]
    ~default_env:[ (r, 2560); (c, 1536) ]
    ~small_env:[ (r, sz); (c, sz) ]
    ~fill:(fun _ _ coords -> Synth.textured coords)
    ()
