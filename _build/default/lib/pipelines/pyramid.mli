(** Pyramid blending (paper Fig. 8 / Table 2, ~44 stages): blend two
    images with a mask by building Laplacian pyramids, blending each
    level with the mask's Gaussian pyramid, and collapsing.  The
    deepest multi-resolution benchmark: fusing across pyramid levels
    requires the scaling transformation of §3.3. *)

val build : ?levels:int -> unit -> App.t
(** [levels] is the pyramid depth (default 4, as in paper Fig. 8).
    Image sizes must be divisible by [2^levels]. *)
