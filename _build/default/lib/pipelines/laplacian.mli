(** Local Laplacian filter (paper Table 2, the most complex benchmark):
    local contrast enhancement via K remapped Gaussian pyramids and a
    data-dependent interpolation between them when assembling the
    output Laplacian pyramid (Paris et al., Aubry et al.; structured
    after the Halide benchmark).  Stage count scales as O(K * J).

    The paper runs K = 8 intensity levels and J = 8 pyramid levels
    (99 stages); the default here is K = 4, J = 4 (~40 stages) to keep
    expression sizes manageable — pass larger values to scale up. *)

val build : ?k_levels:int -> ?j_levels:int -> unit -> App.t
