(** Harris corner detection (paper Fig. 1 / Table 2, 11 stages):
    Sobel-style gradients, products, 3x3 box sums, determinant/trace
    corner response.  A direct transcription of the paper's Figure 1
    specification. *)

val build : unit -> App.t
