open Polymage_dsl.Dsl

(* Pyramid level geometry: level k spans [0 .. R/2^k + 3] per spatial
   dim (a 2-pixel ghost border), with the computed interior at
   [2 .. R/2^k + 1]; everything outside the interior stays 0. *)

let pow2 k = 1 lsl k

(* 5x5 binomial kernel (outer product of [1 4 6 4 1]/16). *)
let w5 = [ 1.; 4.; 6.; 4.; 1. ]

let w5x5 =
  List.map (fun a -> List.map (fun b -> a *. b /. 256.) w5) w5

let build ?(levels = 4) () =
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let extent p k = (param_b p /~ pow2 k) +~ ib 3 in
  let dom_at k =
    [
      (x, interval (ib 0) (extent r k));
      (y, interval (ib 0) (extent c k));
    ]
  in
  (* Interior stops at R/2^k (not the full ghost extent) so that the
     5-tap decimating stencil 2x+2 stays inside the previous level. *)
  let interior k =
    in_box
      [
        (v x, i 2, p r /^ pow2 k);
        (v y, i 2, p c /^ pow2 k);
      ]
  in
  let img name = image ~name Float [ param_b r +~ ib 4; param_b c +~ ib 4 ] in
  let i1 = img "I1" and i2 = img "I2" and m = img "M" in

  (* Gaussian pyramid of a sampler: level 0 is the source itself. *)
  let gaussian_pyramid tag sample0 =
    let rec go k acc prev_sample =
      if k > levels then List.rev acc
      else begin
        let g = func ~name:(Printf.sprintf "%s_G%d" tag k) Float (dom_at k) in
        define g
          [ case (interior k) (downsample2 prev_sample w5x5 (v x) (v y)) ];
        go (k + 1) (g :: acc) (fun idx -> app g idx)
      end
    in
    go 1 [] sample0
    (* returns [G1; ...; Glevels] *)
  in
  let sample_img im idx = img_at im idx in
  let g1 = gaussian_pyramid "a" (sample_img i1) in
  let g2 = gaussian_pyramid "b" (sample_img i2) in
  let gm = gaussian_pyramid "m" (sample_img m) in

  (* Upsample stage of level-k data onto the level-(k-1) grid. *)
  let upsample tag k sample =
    let u = func ~name:(Printf.sprintf "%s_U%d" tag k) Float (dom_at (k - 1)) in
    define u [ case (interior (k - 1)) (upsample2 sample (v x) (v y)) ];
    u
  in

  (* Laplacian levels: L_k = G_k - upsample(G_{k+1}) for k < levels;
     the coarsest level is the Gaussian itself. *)
  let laplacian tag sample0 gs =
    let arr = Array.of_list gs in
    List.init levels (fun k ->
        let gk_sample =
          if k = 0 then sample0 else fun idx -> app arr.(k - 1) idx
        in
        let u = upsample tag (k + 1) (fun idx -> app arr.(k) idx) in
        let l = func ~name:(Printf.sprintf "%s_L%d" tag k) Float (dom_at k) in
        define l
          [ case (interior k) (gk_sample [ v x; v y ] -: app u [ v x; v y ]) ];
        l)
    @ [ List.nth gs (levels - 1) ]
  in
  let l1 = laplacian "a" (sample_img i1) g1 in
  let l2 = laplacian "b" (sample_img i2) g2 in

  (* Blend each level with the mask pyramid. *)
  let mask_at k idx =
    if k = 0 then img_at m idx else app (List.nth gm (k - 1)) idx
  in
  let blended =
    List.init (levels + 1) (fun k ->
        let b = func ~name:(Printf.sprintf "blend%d" k) Float (dom_at k) in
        let mk = mask_at k [ v x; v y ] in
        define b
          [
            case (interior k)
              ((mk *: app (List.nth l1 k) [ v x; v y ])
              +: ((fl 1.0 -: mk) *: app (List.nth l2 k) [ v x; v y ]));
          ];
        b)
  in

  (* Collapse: O_levels = blend_levels; O_k = blend_k + upsample(O_{k+1}). *)
  let rec collapse k =
    if k = levels then List.nth blended k
    else begin
      let deeper = collapse (k + 1) in
      let u = upsample "o" (k + 1) (fun idx -> app deeper idx) in
      let o = func ~name:(Printf.sprintf "out%d" k) Float (dom_at k) in
      define o
        [
          case (interior k)
            (app (List.nth blended k) [ v x; v y ] +: app u [ v x; v y ]);
        ];
      o
    end
  in
  let out = collapse 0 in

  let sz = pow2 levels * 8 in
  App.make ~name:"pyramid_blend"
    ~description:
      (Printf.sprintf
         "Pyramid blending with %d levels (Laplacian blend + collapse)"
         levels)
    ~outputs:[ out ]
    ~default_env:[ (r, 2048); (c, 2048) ]
    ~small_env:[ (r, sz); (c, sz / 2) ]
    ~fill:(fun env im coords ->
      let split = (Polymage_ir.Types.bind_exn env c / 2) + 2 in
      match im.Polymage_ir.Ast.iname with
      | "I1" -> Synth.half_focus ~left:true ~split coords
      | "I2" -> Synth.half_focus ~left:false ~split coords
      | _ -> Synth.mask_left ~split coords)
    ()
