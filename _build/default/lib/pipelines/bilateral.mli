(** Bilateral grid (paper Table 2, Chen et al.): build a coarse 3-D
    grid of (sum, count) by a histogram-style reduction, blur it along
    all three axes, and slice it back with trilinear interpolation for
    edge-aware smoothing.  Exercises the Accumulator construct and
    data-dependent slicing; the compiler fuses the blur stencils into
    one group and keeps the reduction and the slice separate, matching
    the paper's description. *)

val build : unit -> App.t
