lib/pipelines/apps.mli: App
