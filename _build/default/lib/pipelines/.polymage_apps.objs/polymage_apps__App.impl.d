lib/pipelines/app.ml: Ast Polymage_ir Types
