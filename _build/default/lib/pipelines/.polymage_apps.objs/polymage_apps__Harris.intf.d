lib/pipelines/harris.mli: App
