lib/pipelines/apps.ml: App Bilateral Camera Harris Interpolate Laplacian List Pyramid Unsharp
