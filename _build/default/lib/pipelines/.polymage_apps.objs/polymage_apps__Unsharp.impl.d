lib/pipelines/unsharp.ml: App Polymage_dsl Synth
