lib/pipelines/interpolate.mli: App
