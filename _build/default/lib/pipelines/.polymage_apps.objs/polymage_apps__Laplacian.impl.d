lib/pipelines/laplacian.ml: App Array List Polymage_dsl Polymage_ir Printf Synth
