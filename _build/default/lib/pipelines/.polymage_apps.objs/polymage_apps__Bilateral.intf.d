lib/pipelines/bilateral.mli: App
