lib/pipelines/pyramid.ml: App Array List Polymage_dsl Polymage_ir Printf Synth
