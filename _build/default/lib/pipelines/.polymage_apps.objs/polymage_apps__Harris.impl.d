lib/pipelines/harris.ml: App Polymage_dsl Synth
