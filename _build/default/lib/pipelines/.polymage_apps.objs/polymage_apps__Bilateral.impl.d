lib/pipelines/bilateral.ml: App List Polymage_dsl Synth
