lib/pipelines/camera.ml: App Array Polymage_dsl Synth
