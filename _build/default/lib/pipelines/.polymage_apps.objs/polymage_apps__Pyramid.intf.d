lib/pipelines/pyramid.mli: App
