lib/pipelines/app.mli: Ast Polymage_ir Types
