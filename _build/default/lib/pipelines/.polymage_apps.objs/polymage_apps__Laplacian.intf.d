lib/pipelines/laplacian.mli: App
