lib/pipelines/interpolate.ml: App Array List Polymage_dsl Printf Synth
