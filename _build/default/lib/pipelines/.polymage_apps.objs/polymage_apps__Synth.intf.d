lib/pipelines/synth.mli:
