lib/pipelines/unsharp.mli: App
