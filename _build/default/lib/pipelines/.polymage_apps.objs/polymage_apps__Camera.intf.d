lib/pipelines/camera.mli: App
