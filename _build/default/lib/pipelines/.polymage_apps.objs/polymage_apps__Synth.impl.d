lib/pipelines/synth.ml: Array Float
