(** Benchmark application descriptor: a pipeline specification plus
    everything needed to run it (parameter bindings for the paper's
    image sizes and for fast tests, and synthetic input generators —
    see DESIGN.md, substitution of the paper's photographic inputs). *)

open Polymage_ir

type t = {
  name : string;
  description : string;
  outputs : Ast.func list;
  tile_dims : int;
      (** how many canonical dimensions are worth tiling (the paper's
          benchmarks have 2) *)
  default_env : Types.bindings;  (** paper-scale image size *)
  small_env : Types.bindings;  (** small size for tests *)
  fill : Types.bindings -> Ast.image -> int array -> float;
      (** synthetic input generator, dispatched on the image; receives
          the parameter bindings so workloads can scale with the
          image size *)
}

val make :
  name:string ->
  description:string ->
  outputs:Ast.func list ->
  ?tile_dims:int ->
  default_env:Types.bindings ->
  small_env:Types.bindings ->
  fill:(Types.bindings -> Ast.image -> int array -> float) ->
  unit ->
  t
