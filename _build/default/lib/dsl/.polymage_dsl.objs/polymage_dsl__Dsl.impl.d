lib/dsl/dsl.ml: Abound Ast Expr Format Interval List Option Polymage_ir Polymage_util Types
