lib/dsl/dsl.mli: Abound Ast Interval Polymage_ir Types
