(** Inlining of point-wise producers (paper §3).

    A stage is point-wise when every stage reference in its body is an
    identity access ([f(x, y)]) and every image reference uses identity
    or constant indices; substituting such a stage into its consumers
    introduces (almost) no redundant computation, so it is always
    profitable (the paper's Ixx/Ixy/det/trace example).  Stencil and
    sampling producers are never inlined — the schedule transformations
    handle their locality instead.

    Inlining rewrites the pipeline into a fresh one: stage bodies are
    immutable from the outside's perspective, so new [func] values are
    created for all surviving stages.  Piecewise producers are inlined
    as nested [Select]s with a default of 0 (matching the executor's
    zero-initialized buffers). *)

open Polymage_ir

val is_pointwise : Ast.func -> bool

val run :
  ?max_size:int ->
  ?small_size:int ->
  Pipeline.t ->
  Pipeline.t * (string * string) list
(** [run pipe] returns the rewritten pipeline and the list of
    (inlined stage, consumer) pairs.  A stage is inlined when it is
    point-wise, not a pipeline output, not self-recursive, its body has
    at most [max_size] nodes (default 256), and either (a) every
    consumer reads it with identity accesses — substitution duplicates
    nothing — or (b) its body is tiny (at most [small_size] nodes,
    default 16), so duplicating it inside a stencil or sampling
    consumer costs almost nothing (the paper's Ixx-into-Sxx case).
    Stencil/sampling consumers of larger bodies keep the producer as a
    stage — §3: "we restrict our inlining to cases where the consumer
    functions are point-wise". *)
