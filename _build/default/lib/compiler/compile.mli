(** Compiler driver (paper Fig. 4): build the stage graph, check
    bounds statically, inline point-wise stages, group, schedule and
    produce an execution {!Plan.t}. *)

open Polymage_ir

exception Bounds_error of Bounds_check.diag list

val run :
  ?check_bounds:bool -> Options.t -> outputs:Ast.func list -> Plan.t
(** Compile a pipeline given its live-out stages.
    @raise Bounds_error when [check_bounds] (default true) finds a
    potential out-of-domain access.
    @raise Pipeline.Invalid_pipeline on malformed specifications. *)

val phases : Format.formatter -> Options.t -> outputs:Ast.func list -> Plan.t
(** Like {!run} but narrates each compiler phase to the formatter
    (the CLI's verbose mode). *)
