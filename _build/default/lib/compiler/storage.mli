(** Storage mapping (paper §3.6): scratchpad sizing for intermediates
    of tiled groups, and storage statistics for the ablation study.

    Intermediate values of a fused group are only consumed inside the
    tile, so they live in small per-worker scratchpads indexed
    relative to the tile origin; only live-outs get full buffers. *)

open Polymage_ir

val scratch_extents :
  naive:bool ->
  Plan.tiled ->
  Types.bindings ->
  Polymage_poly.Schedule.stage_sched ->
  int array
(** Allocation extent of a member's scratchpad, per stage dimension:
    aligned dimensions cover one widened tile
    ([ceil((tile_scaled + widen_l + widen_r) / scale)] points, plus
    slack), residual dimensions cover the whole domain extent. *)

type stats = {
  full_cells : int;  (** cells in full buffers the plan allocates *)
  scratch_cells : int;
      (** cells in scratchpads, per worker (reused across tiles) *)
  unopt_cells : int;
      (** cells if every stage had a full buffer (the base config) *)
}

val stats : Plan.t -> Types.bindings -> stats

val pp_stats : Format.formatter -> stats -> unit
