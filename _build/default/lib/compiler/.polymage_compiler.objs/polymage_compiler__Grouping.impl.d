lib/compiler/grouping.ml: Array Ast Format Hashtbl Interval List Pipeline Polymage_ir Polymage_poly Polymage_util String Types
