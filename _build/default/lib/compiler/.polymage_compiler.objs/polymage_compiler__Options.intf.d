lib/compiler/options.mli: Format Polymage_ir Types
