lib/compiler/plan.mli: Ast Format Grouping Options Pipeline Polymage_ir Polymage_poly
