lib/compiler/bounds_check.ml: Abound Array Ast Expr Format Interval List Option Pipeline Polymage_ir Polymage_poly Polymage_util Types
