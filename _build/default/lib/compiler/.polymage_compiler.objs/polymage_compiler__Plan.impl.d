lib/compiler/plan.ml: Array Ast Format Grouping Inline List Options Pipeline Polymage_ir Polymage_poly String
