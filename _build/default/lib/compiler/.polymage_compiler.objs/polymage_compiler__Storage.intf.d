lib/compiler/storage.mli: Format Plan Polymage_ir Polymage_poly Types
