lib/compiler/bounds_check.mli: Format Pipeline Polymage_ir
