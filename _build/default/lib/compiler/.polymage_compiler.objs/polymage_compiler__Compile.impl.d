lib/compiler/compile.ml: Bounds_check Format List Pipeline Plan Polymage_ir Storage
