lib/compiler/inline.mli: Ast Pipeline Polymage_ir
