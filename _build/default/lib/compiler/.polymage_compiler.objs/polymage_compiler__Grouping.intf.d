lib/compiler/grouping.mli: Format Pipeline Polymage_ir Types
