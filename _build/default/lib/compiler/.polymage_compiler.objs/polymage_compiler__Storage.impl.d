lib/compiler/storage.ml: Array Ast Format Interval List Plan Polymage_ir Polymage_poly
