lib/compiler/compile.mli: Ast Bounds_check Format Options Plan Polymage_ir
