lib/compiler/inline.ml: Array Ast Expr Hashtbl List Option Pipeline Polymage_ir Polymage_poly
