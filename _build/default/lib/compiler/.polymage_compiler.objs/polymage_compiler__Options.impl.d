lib/compiler/options.ml: Array Format Polymage_ir String Types
