open Polymage_ir
module Poly = Polymage_poly

let is_pointwise (f : Ast.func) =
  match f.fbody with
  | Undefined | Reduce _ -> false
  | Cases _ ->
    let ok = ref true in
    List.iter
      (fun (site : Poly.Access.ref_site) ->
        let identity_ok =
          match site.target with
          | `Func _ -> Array.for_all Poly.Access.is_identity site.dims
          | `Img _ ->
            Array.for_all
              (fun a ->
                Poly.Access.is_identity a
                ||
                match a with
                | Poly.Access.Affine { v = None; _ } -> true
                | _ -> false)
              site.dims
        in
        if not identity_ok then ok := false)
      (Poly.Access.refs_of_body f.fbody);
    !ok

let body_size (f : Ast.func) =
  match f.fbody with
  | Undefined -> 0
  | Reduce r -> Expr.size r.rvalue
  | Cases cs -> List.fold_left (fun acc c -> acc + Expr.size c.Ast.rhs) 0 cs

(* The inlined form of a point-wise producer at index expressions
   [args]: its cases folded into nested selects, variables substituted
   by the arguments.  Out-of-case points read 0, matching the
   zero-initialized buffer a materialized stage would have. *)
let inlined_value (f : Ast.func) (args : Ast.expr list) =
  let sub = List.combine f.fvars args in
  match f.fbody with
  | Cases cases ->
    List.fold_right
      (fun { Ast.ccond; rhs } acc ->
        let rhs = Expr.subst sub rhs in
        match ccond with
        | None -> rhs
        | Some c -> Ast.Select (Expr.subst_cond sub c, rhs, acc))
      cases (Ast.Const 0.)
  | Undefined | Reduce _ -> assert false

let run ?(max_size = 256) ?(small_size = 16) (pipe : Pipeline.t) =
  let inlined = ref [] in
  let n = Pipeline.n_stages pipe in
  (* Is every access to stage [i] (from any consumer) an identity
     access?  Then inlining duplicates no computation at all. *)
  let read_pointwise = Array.make n true in
  Array.iter
    (fun (c : Ast.func) ->
      List.iter
        (fun (site : Poly.Access.ref_site) ->
          match site.target with
          | `Img _ -> ()
          | `Func p -> (
            match Pipeline.stage_index pipe p with
            | exception Not_found -> ()
            | j ->
              if not (Array.for_all Poly.Access.is_identity site.dims) then
                read_pointwise.(j) <- false))
        (Poly.Access.refs_of_body c.fbody))
    pipe.stages;
  (* Static part of the decision; the size/point-wise part is checked
     on the rewritten body (chained inlining can grow it). *)
  let static_ok = Array.make n false in
  Array.iteri
    (fun i _ ->
      static_ok.(i) <-
        (not (Pipeline.is_output pipe i)) && not pipe.self_recursive.(i))
    pipe.stages;
  let inlinable = Array.make n false in
  (* Rewrite stages in topological order; [fresh] maps old stage ids to
     their rewritten bodies' funcs (for surviving stages).  Inlinable
     producers are substituted transitively: their rewritten bodies
     (which already contain no inlinable calls) are what gets pasted. *)
  let fresh : (int, Ast.func) Hashtbl.t = Hashtbl.create 16 in
  let rewritten : (int, Ast.func) Hashtbl.t = Hashtbl.create 16 in
  let rewrite_expr consumer e =
    Expr.map_calls
      (fun g args ->
        match Pipeline.stage_index pipe g with
        | exception Not_found -> None
        | j ->
          if Ast.func_equal g consumer then
            (* self reference: keep pointing at the consumer's own
               fresh version, patched afterwards *)
            None
          else if inlinable.(j) then begin
            let g' = Hashtbl.find rewritten j in
            inlined := (g.Ast.fname, consumer.Ast.fname) :: !inlined;
            Some (inlined_value g' args)
          end
          else Some (Ast.Call (Hashtbl.find fresh j, args)))
      e
  in
  let rewrite_cond consumer c =
    let rec go c =
      match (c : Ast.cond) with
      | Cmp (op, a, b) -> Ast.Cmp (op, rewrite_expr consumer a, rewrite_expr consumer b)
      | And (a, b) -> And (go a, go b)
      | Or (a, b) -> Or (go a, go b)
      | Not a -> Not (go a)
    in
    go c
  in
  Array.iteri
    (fun i f ->
      let body' =
        match f.Ast.fbody with
        | Ast.Undefined -> Ast.Undefined
        | Cases cs ->
          Ast.Cases
            (List.map
               (fun { Ast.ccond; rhs } ->
                 {
                   Ast.ccond = Option.map (rewrite_cond f) ccond;
                   rhs = Expr.simplify (rewrite_expr f rhs);
                 })
               cs)
        | Reduce r ->
          Ast.Reduce
            {
              r with
              rindex = List.map (rewrite_expr f) r.rindex;
              rvalue = Expr.simplify (rewrite_expr f r.rvalue);
            }
      in
      let f' =
        Ast.func ~name:f.fname f.ftyp (List.combine f.fvars f.fdom)
      in
      f'.fbody <- body';
      (* Patch self references to point at the fresh func. *)
      let patch_self e =
        Expr.map_calls
          (fun g args ->
            if Ast.func_equal g f then Some (Ast.Call (f', args)) else None)
          e
      in
      (match f'.fbody with
      | Cases cs ->
        f'.fbody <-
          Cases
            (List.map
               (fun ({ Ast.ccond = _; rhs } as c) ->
                 { c with rhs = patch_self rhs })
               cs)
      | Reduce r -> f'.fbody <- Reduce { r with rvalue = patch_self r.rvalue }
      | Undefined -> ());
      Hashtbl.replace rewritten i f';
      inlinable.(i) <-
        static_ok.(i) && is_pointwise f'
        && body_size f' <= max_size
        && (read_pointwise.(i) || body_size f' <= small_size);
      if not inlinable.(i) then Hashtbl.replace fresh i f')
    pipe.stages;
  let outputs =
    List.map
      (fun f -> Hashtbl.find fresh (Pipeline.stage_index pipe f))
      pipe.outputs
  in
  (Pipeline.build ~outputs, List.rev !inlined)
