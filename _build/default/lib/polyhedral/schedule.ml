open Polymage_ir
module Q = Polymage_util.Rational

type stage_sched = {
  func : Ast.func;
  sidx : int;
  align : int array;
  scale : int array;
  widen_l : int array;
  widen_r : int array;
  widen_l_naive : int array;
  widen_r_naive : int array;
}

type t = {
  members : stage_sched array;
  n_cdims : int;
  sink : int;
  slope_l : int array;
  slope_r : int array;
}

type failure =
  | No_unique_sink
  | Dynamic_intra_edge of string
  | Inconsistent of string
  | Unsupported_stage of string

exception Fail of failure

let pp_failure ppf = function
  | No_unique_sink -> Format.pp_print_string ppf "no unique sink stage"
  | Dynamic_intra_edge s ->
    Format.fprintf ppf "non-affine access inside the group (stage %s)" s
  | Inconsistent s -> Format.fprintf ppf "alignment/scaling conflict: %s" s
  | Unsupported_stage s ->
    Format.fprintf ppf "stage %s is a reduction or self-recursive" s

(* Pending (rational) assignment of one stage during the solve. *)
type pending = {
  p_align : int array;  (* stage dim -> canonical dim or -1 *)
  p_scale : Q.t array;  (* stage dim -> rational scale (1 if residual) *)
  mutable p_set : bool array;  (* stage dim assigned yet? *)
}

let var_index f v =
  let rec go i = function
    | [] -> None
    | w :: tl -> if Types.var_equal v w then Some i else go (i + 1) tl
  in
  go 0 f.Ast.fvars

let solve (pipe : Pipeline.t) members =
  try
    let in_group = Hashtbl.create 8 in
    List.iter (fun i -> Hashtbl.replace in_group i ()) members;
    let mem i = Hashtbl.mem in_group i in
    (* Only plain piecewise stages can be tiled. *)
    List.iter
      (fun i ->
        let f = pipe.stages.(i) in
        match f.Ast.fbody with
        | Ast.Reduce _ -> raise (Fail (Unsupported_stage f.fname))
        | _ ->
          if pipe.self_recursive.(i) then
            raise (Fail (Unsupported_stage f.fname)))
      members;
    (* Unique sink: the member with no consumers inside the group. *)
    let sinks =
      List.filter
        (fun i -> not (List.exists mem pipe.consumers.(i)))
        members
    in
    let sink_idx =
      match sinks with [ s ] -> s | _ -> raise (Fail No_unique_sink)
    in
    let sink_f = pipe.stages.(sink_idx) in
    let n_cdims = Ast.func_arity sink_f in
    (* Member list in pipeline topological order (producers first). *)
    let ordered = List.sort compare members in
    let pend = Hashtbl.create 8 in
    let get_pending i =
      match Hashtbl.find_opt pend i with
      | Some p -> p
      | None ->
        let a = Ast.func_arity pipe.stages.(i) in
        let p =
          {
            p_align = Array.make a (-1);
            p_scale = Array.make a Q.one;
            p_set = Array.make a false;
          }
        in
        Hashtbl.replace pend i p;
        p
    in
    (* Sink: identity alignment, unit scaling. *)
    let ps = get_pending sink_idx in
    Array.iteri
      (fun d _ ->
        ps.p_align.(d) <- d;
        ps.p_scale.(d) <- Q.one;
        ps.p_set.(d) <- true)
      ps.p_align;
    let assign consumer_name p j (cd : int) (sc : Q.t) =
      (* Constrain producer dim [j] to canonical dim [cd] (or residual
         when [cd] < 0) with scale [sc]; checks consistency with any
         earlier constraint. *)
      if p.p_set.(j) then begin
        if p.p_align.(j) <> cd || (cd >= 0 && not (Q.equal p.p_scale.(j) sc))
        then
          raise
            (Fail
               (Inconsistent
                  (Printf.sprintf
                     "conflicting requirements on a dimension used by %s"
                     consumer_name)))
      end
      else begin
        p.p_align.(j) <- cd;
        p.p_scale.(j) <- (if cd >= 0 then sc else Q.one);
        p.p_set.(j) <- true
      end
    in
    (* Propagate from consumers to producers, consumers first. *)
    List.iter
      (fun ci ->
        let c = pipe.stages.(ci) in
        let pc = get_pending ci in
        if not (Array.for_all (fun b -> b) pc.p_set) then
          raise
            (Fail
               (Inconsistent
                  (Printf.sprintf "stage %s not reachable from the group sink"
                     c.fname)));
        List.iter
          (fun (site : Access.ref_site) ->
            match site.target with
            | `Img _ -> ()
            | `Func p when Ast.func_equal p c -> ()
            | `Func p -> (
              match Pipeline.stage_index pipe p with
              | exception Not_found -> ()
              | pi ->
                if mem pi then begin
                  let pp_ = get_pending pi in
                  Array.iteri
                    (fun j acc ->
                      match (acc : Access.t) with
                      | Dynamic -> raise (Fail (Dynamic_intra_edge c.fname))
                      | Affine { v = None; _ } ->
                        (* constant index: producer dim is residual *)
                        assign c.fname pp_ j (-1) Q.one
                      | Affine { v = Some v; num; den; off = _ } -> (
                        match var_index c v with
                        | None ->
                          (* index depends on a reduction variable or a
                             foreign variable: opaque *)
                          raise (Fail (Dynamic_intra_edge c.fname))
                        | Some i ->
                          if pc.p_align.(i) < 0 then
                            (* residual consumer dim: producer dim is
                               residual too *)
                            assign c.fname pp_ j (-1) Q.one
                          else if num <= 0 then
                            raise
                              (Fail
                                 (Inconsistent
                                    (Printf.sprintf
                                       "non-positive access coefficient in %s"
                                       c.fname)))
                          else
                            let sc =
                              Q.mul pc.p_scale.(i) (Q.make den num)
                            in
                            assign c.fname pp_ j pc.p_align.(i) sc))
                    site.dims
                end))
          (Access.refs_of_body c.Ast.fbody))
      (List.rev ordered);
    (* Each canonical dim may be claimed by at most one dim per stage. *)
    Hashtbl.iter
      (fun i (p : pending) ->
        let seen = Array.make n_cdims false in
        Array.iter
          (fun d ->
            if d >= 0 then begin
              if seen.(d) then
                raise
                  (Fail
                     (Inconsistent
                        (Printf.sprintf
                           "two dimensions of %s map to one canonical \
                            dimension"
                           pipe.stages.(i).fname)));
              seen.(d) <- true
            end)
          p.p_align)
      pend;
    (* Normalize scales to integers per canonical dimension. *)
    let denoms = Array.make n_cdims [] in
    Hashtbl.iter
      (fun _ (p : pending) ->
        Array.iteri
          (fun j d -> if d >= 0 then denoms.(d) <- p.p_scale.(j) :: denoms.(d))
          p.p_align)
      pend;
    let lcm_per_dim = Array.map Q.lcm_dens denoms in
    let int_scale p j =
      let d = p.p_align.(j) in
      if d < 0 then 1
      else Q.to_int_exn (Q.mul p.p_scale.(j) (Q.of_int lcm_per_dim.(d)))
    in
    (* Dependence offset intervals per intra-group edge, in scaled
       space, then tight widening by reverse-topological walk. *)
    let order = Array.of_list ordered in
    let pos = Hashtbl.create 8 in
    Array.iteri (fun k i -> Hashtbl.replace pos i k) order;
    let n = Array.length order in
    let wl = Array.init n (fun _ -> Array.make n_cdims 0) in
    let wr = Array.init n (fun _ -> Array.make n_cdims 0) in
    (* Uniform maximal slopes for the over-approximated shape. *)
    let slope_l = Array.make n_cdims 0 in
    let slope_r = Array.make n_cdims 0 in
    let edges = ref [] in
    (* collect (consumer_pos, producer_pos, canonical dim, lo, hi) *)
    List.iter
      (fun ci ->
        let c = pipe.stages.(ci) in
        List.iter
          (fun (site : Access.ref_site) ->
            match site.target with
            | `Img _ -> ()
            | `Func p when Ast.func_equal p c -> ()
            | `Func p -> (
              match Pipeline.stage_index pipe p with
              | exception Not_found -> ()
              | pi ->
                if mem pi then
                  let pp_ = Hashtbl.find pend pi in
                  Array.iteri
                    (fun j acc ->
                      match (acc : Access.t) with
                      | Affine { v = Some _; num = _; den; off }
                        when pp_.p_align.(j) >= 0 ->
                        let d = pp_.p_align.(j) in
                        let sp = int_scale pp_ j in
                        (* delta = sp*(off - r)/den, r in [0, den-1] *)
                        let lo = Q.floor (Q.make (sp * (off - den + 1)) den) in
                        let hi = Q.ceil (Q.make (sp * off) den) in
                        edges :=
                          ( Hashtbl.find pos ci,
                            Hashtbl.find pos pi,
                            d,
                            lo,
                            hi )
                          :: !edges;
                        slope_l.(d) <- max slope_l.(d) (max 0 (-lo));
                        slope_r.(d) <- max slope_r.(d) (max 0 hi)
                      | _ -> ())
                    site.dims))
          (Access.refs_of_body c.Ast.fbody))
      ordered;
    (* Tight widening: consumers before producers. *)
    for k = n - 1 downto 0 do
      List.iter
        (fun (ck, pk, d, lo, hi) ->
          if ck = k then begin
            wl.(pk).(d) <- max wl.(pk).(d) (max 0 (wl.(ck).(d) - lo));
            wr.(pk).(d) <- max wr.(pk).(d) (max 0 (wr.(ck).(d) + hi))
          end)
        !edges
    done;
    let sink_pos = Hashtbl.find pos sink_idx in
    let members_arr =
      Array.mapi
        (fun k i ->
          let f = pipe.stages.(i) in
          let p = Hashtbl.find pend i in
          let h = pipe.level.(sink_idx) - pipe.level.(i) in
          {
            func = f;
            sidx = i;
            align = Array.copy p.p_align;
            scale = Array.init (Array.length p.p_align) (int_scale p);
            widen_l = wl.(k);
            widen_r = wr.(k);
            widen_l_naive = Array.map (fun s -> s * h) slope_l;
            widen_r_naive = Array.map (fun s -> s * h) slope_r;
          })
        order
    in
    Ok { members = members_arr; n_cdims; sink = sink_pos; slope_l; slope_r }
  with Fail f -> Error f

let member t sidx =
  Array.find_opt (fun (m : stage_sched) -> m.sidx = sidx) t.members

let scaled_domain ~n_cdims (m : stage_sched) env =
  let arr = Array.make n_cdims (0, 0) in
  List.iteri
    (fun j (iv : Interval.t) ->
      let d = m.align.(j) in
      if d >= 0 then
        let lo, hi = Interval.eval iv env in
        let s = m.scale.(j) in
        arr.(d) <- (s * lo, s * hi))
    m.func.Ast.fdom;
  arr

let pp ppf t =
  Array.iteri
    (fun k (m : stage_sched) ->
      Format.fprintf ppf "%s%-18s align=[%s] scale=[%s] widen_l=[%s] widen_r=[%s]@."
        (if k = t.sink then "*" else " ")
        m.func.Ast.fname
        (String.concat ";" (Array.to_list (Array.map string_of_int m.align)))
        (String.concat ";" (Array.to_list (Array.map string_of_int m.scale)))
        (String.concat ";" (Array.to_list (Array.map string_of_int m.widen_l)))
        (String.concat ";" (Array.to_list (Array.map string_of_int m.widen_r))))
    t.members
