let sink_scale (t : Schedule.t) =
  let s = Array.make t.n_cdims 1 in
  let sink = t.members.(t.sink) in
  Array.iteri
    (fun j d -> if d >= 0 then s.(d) <- sink.scale.(j))
    sink.align;
  s

let overlap ?(naive = false) (t : Schedule.t) =
  let o = Array.make t.n_cdims 0 in
  Array.iter
    (fun (m : Schedule.stage_sched) ->
      for d = 0 to t.n_cdims - 1 do
        let l = if naive then m.widen_l_naive.(d) else m.widen_l.(d) in
        let r = if naive then m.widen_r_naive.(d) else m.widen_r.(d) in
        o.(d) <- max o.(d) (l + r)
      done)
    t.members;
  o

let scaled_tile (t : Schedule.t) ~tile =
  let s = sink_scale t in
  Array.init t.n_cdims (fun d ->
      let n = Array.length tile in
      let base = if n = 0 then 32 else if d < n then tile.(d) else tile.(n - 1) in
      max 1 (base * s.(d)))

let relative_overlap ?naive (t : Schedule.t) ~tile =
  if Array.length t.members <= 1 then 0.
  else begin
    let o = overlap ?naive t in
    let tau = scaled_tile t ~tile in
    let num = ref 1.0 and den = ref 1.0 in
    for d = 0 to t.n_cdims - 1 do
      num := !num *. float_of_int (tau.(d) + o.(d));
      den := !den *. float_of_int tau.(d)
    done;
    (!num /. !den) -. 1.0
  end
