(** Alignment, scaling, and overlapped-tile shapes for a group of
    heterogeneous stages (paper §3.3–3.4).

    The canonical iteration space of a group is the domain of its sink
    stage.  Each member stage dimension is aligned to a canonical
    dimension and given an integer scaling factor so that every
    intra-group dependence has a constant offset interval in the scaled
    space (Fig. 6).  From those offsets we compute, per stage and
    canonical dimension, the tight left/right widening of an overlapped
    tile: stage [f] inside tile [[T, T+tau)] evaluates scaled
    coordinates [[T - widen_l, T + tau + widen_r)] intersected with its
    own domain.  This is the exact (per-level) tile shape of the paper;
    the over-approximated shape — uniform maximal slope at every level
    — is also computed for the Fig. 6 ablation. *)

open Polymage_ir

type stage_sched = {
  func : Ast.func;
  sidx : int;  (** index of the stage in the pipeline *)
  align : int array;
      (** per stage dimension: canonical dimension, or [-1] for a
          residual dimension iterated fully inside the tile *)
  scale : int array;
      (** per stage dimension: integer scaling factor into canonical
          space (1 for residual dimensions) *)
  widen_l : int array;  (** per canonical dimension, tight shape *)
  widen_r : int array;
  widen_l_naive : int array;  (** over-approximated shape (ablation) *)
  widen_r_naive : int array;
}

type t = {
  members : stage_sched array;  (** pipeline topological order *)
  n_cdims : int;  (** canonical dimensionality (the sink's arity) *)
  sink : int;  (** index into [members] *)
  slope_l : int array;
      (** per canonical dim, the maximal leftward dependence offset of
          any intra-group edge (the uniform hyperplane slope of the
          over-approximated shape, and the skew of parallelogram
          tiling) *)
  slope_r : int array;  (** maximal rightward dependence offset *)
}

type failure =
  | No_unique_sink
  | Dynamic_intra_edge of string  (** stage name with the opaque access *)
  | Inconsistent of string  (** alignment/scaling conflict description *)
  | Unsupported_stage of string  (** reduction or self-recursive stage *)

val solve : Pipeline.t -> int list -> (t, failure) result
(** [solve pipe members] computes the group schedule for the given
    stage indices, or explains why the stages cannot be fused with
    overlapped tiling (Algorithm 1's [hasConstantDependenceVectors]
    test is [Result.is_ok]). *)

val member : t -> int -> stage_sched option
(** Schedule of pipeline stage [sidx] inside this group, if any. *)

val scaled_domain :
  n_cdims:int -> stage_sched -> Types.bindings -> (int * int) array
(** Concrete scaled bounds of the stage domain per canonical dimension:
    for stage dim [j] aligned to canonical dim [d] with scale [s],
    the scaled range is [[s*lo, s*hi]].  Canonical dimensions not
    covered by any stage dimension get [(0, 0)]. *)

val pp_failure : Format.formatter -> failure -> unit
val pp : Format.formatter -> t -> unit
