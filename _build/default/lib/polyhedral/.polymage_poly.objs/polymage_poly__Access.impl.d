lib/polyhedral/access.ml: Array Ast Expr Float Format List Polymage_ir Types
