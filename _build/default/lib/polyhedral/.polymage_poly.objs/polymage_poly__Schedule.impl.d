lib/polyhedral/schedule.ml: Access Array Ast Format Hashtbl Interval List Pipeline Polymage_ir Polymage_util Printf String Types
