lib/polyhedral/tiling.ml: Array Schedule
