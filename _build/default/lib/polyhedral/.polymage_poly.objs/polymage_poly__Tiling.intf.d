lib/polyhedral/tiling.mli: Schedule
