lib/polyhedral/schedule.mli: Ast Format Pipeline Polymage_ir Types
