lib/polyhedral/access.mli: Ast Format Polymage_ir Types
