open Polymage_ir

type dim = { v : Types.var option; num : int; den : int; off : int }
type t = Affine of dim | Dynamic

let const_int e =
  match e with
  | Ast.Const x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

(* Recognize floor((num*v + off)/den).  Composition rules:
   (e + c), (e - c), (c * e), (e * c), floor(e / n) with
   floor(floor(a/b)/c) = floor(a/(b*c)) for positive b, c. *)
let rec of_expr e =
  match e with
  | Ast.Var v -> Affine { v = Some v; num = 1; den = 1; off = 0 }
  | Ast.Const x when Float.is_integer x ->
    Affine { v = None; num = 0; den = 1; off = int_of_float x }
  | Ast.Binop (Add, a, b) -> (
    match (const_int b, const_int a) with
    | Some c, _ -> shift (of_expr a) c
    | _, Some c -> shift (of_expr b) c
    | _ -> Dynamic)
  | Ast.Binop (Sub, a, b) -> (
    match const_int b with Some c -> shift (of_expr a) (-c) | None -> Dynamic)
  | Ast.Binop (Mul, a, b) -> (
    match (const_int a, const_int b) with
    | Some c, _ -> scale (of_expr b) c
    | _, Some c -> scale (of_expr a) c
    | _ -> Dynamic)
  | Ast.IDiv (a, n) -> divide (of_expr a) n
  | Ast.Unop (Neg, a) -> scale (of_expr a) (-1)
  | _ -> Dynamic

(* Shifting under a floor is only exact when the shift is a multiple of
   the denominator: floor((nv+o)/d) + c = floor((nv+o+cd)/d). *)
and shift a c =
  match a with
  | Dynamic -> Dynamic
  | Affine d -> Affine { d with off = d.off + (c * d.den) }

and scale a c =
  match a with
  | Dynamic -> Dynamic
  | Affine d ->
    if d.den = 1 then Affine { d with num = d.num * c; off = d.off * c }
    else Dynamic

and divide a n =
  if n <= 0 then Dynamic
  else
    match a with
    | Dynamic -> Dynamic
    | Affine d ->
      if d.num >= 0 && d.den >= 1 then Affine { d with den = d.den * n }
      else Dynamic

let of_expr e = of_expr (Expr.simplify e)
let of_args args = Array.of_list (List.map of_expr args)

let is_identity = function
  | Affine { v = Some _; num = 1; den = 1; off = 0 } -> true
  | _ -> false

let is_shift = function
  | Affine { v = Some _; num = 1; den = 1; off = _ } -> true
  | _ -> false

let pp ppf = function
  | Dynamic -> Format.pp_print_string ppf "dynamic"
  | Affine { v; num; den; off } ->
    let vs = match v with Some v -> Format.asprintf "%a" Types.pp_var v | None -> "0" in
    if den = 1 then Format.fprintf ppf "%d*%s%+d" num vs off
    else Format.fprintf ppf "floor((%d*%s%+d)/%d)" num vs off den

type ref_site = {
  target : [ `Func of Ast.func | `Img of Ast.image ];
  dims : t array;
}

let refs_of_body body =
  let acc = ref [] in
  let on_call f args = acc := { target = `Func f; dims = of_args args } :: !acc in
  let on_img im args = acc := { target = `Img im; dims = of_args args } :: !acc in
  Expr.iter_body ~on_call ~on_img body;
  List.rev !acc
