(** Affine access functions.

    Every stage/image reference is analyzed per dimension into the
    canonical form [floor((num * v + off) / den)] over a single loop
    variable [v] (paper §3.3): stencils are [v + off], downsampling is
    [num*v + off], upsampling is [floor((v + off)/den)].  Anything else
    (data-dependent indices, multi-variable expressions, parameter
    offsets, clamped borders) is [Dynamic] — still executable, but
    opaque to the polyhedral analyses, so it blocks grouping and is
    skipped by the static bounds checker, exactly as in the paper. *)

open Polymage_ir

type dim = {
  v : Types.var option;  (** [None] means a constant index [off/den] *)
  num : int;
  den : int;  (** strictly positive *)
  off : int;
}

type t = Affine of dim | Dynamic

val of_expr : Ast.expr -> t
(** Analyze one index expression. *)

val of_args : Ast.expr list -> t array

val is_identity : t -> bool
(** [v + 0] with [num = den = 1]: a point-wise access along this
    dimension. *)

val is_shift : t -> bool
(** [v + off] with [num = den = 1]: a stencil access. *)

val pp : Format.formatter -> t -> unit

(** All stage and image references made by a body, with their analyzed
    index vectors. *)
type ref_site = {
  target : [ `Func of Ast.func | `Img of Ast.image ];
  dims : t array;
}

val refs_of_body : Ast.body -> ref_site list
(** Every reference occurrence (not deduplicated — each textual access
    contributes its own dependence vector, as in the paper's Sxx
    example with four vectors). *)
