(** Minimal Netpbm image I/O (binary PGM/PPM), so pipelines can consume
    and produce files any image viewer understands.  Values are mapped
    between the byte range [0, 255] and the unit interval [0., 1.].

    Grayscale buffers are 2-D (rows, cols); color buffers are 3-D in
    the channel-major layout the benchmark apps use (c, rows, cols)
    with c in [0, 2]. *)

exception Format_error of string

val write_pgm : string -> Buffer.t -> unit
(** Write a 2-D buffer as binary PGM, clamping values to [0, 1].
    @raise Invalid_argument on a buffer that is not 2-D. *)

val write_ppm : string -> Buffer.t -> unit
(** Write a 3-D channel-major buffer as binary PPM.
    @raise Invalid_argument on a buffer that is not 3-D with 3
    channels. *)

val read_pgm : string -> Buffer.t
(** Read a binary (P5) PGM into a 2-D buffer with values in [0, 1]
    and lower bounds 0. @raise Format_error on malformed input. *)

val read_ppm : string -> Buffer.t
(** Read a binary (P6) PPM into a channel-major 3-D buffer.
    @raise Format_error on malformed input. *)
