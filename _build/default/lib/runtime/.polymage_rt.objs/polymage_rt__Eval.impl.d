lib/runtime/eval.ml: Array Ast Buffer Expr Float Format List Polymage_ir Printf Types
