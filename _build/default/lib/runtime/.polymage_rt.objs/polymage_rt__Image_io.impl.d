lib/runtime/image_io.ml: Array Buffer Char Float Fun Printf Stdlib String
