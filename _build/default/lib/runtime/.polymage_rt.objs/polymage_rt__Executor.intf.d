lib/runtime/executor.mli: Ast Buffer Polymage_compiler Polymage_ir Pool Types
