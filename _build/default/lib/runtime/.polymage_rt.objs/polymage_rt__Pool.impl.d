lib/runtime/pool.ml: Array Atomic Condition Domain Fun Mutex Option
