lib/runtime/eval.mli: Ast Buffer Polymage_ir Types
