lib/runtime/pool.mli:
