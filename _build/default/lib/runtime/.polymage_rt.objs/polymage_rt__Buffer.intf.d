lib/runtime/buffer.mli: Ast Polymage_ir Types
