lib/runtime/executor.ml: Abound Array Ast Buffer Domain Eval Expr Float Hashtbl Interval List Option Pipeline Polymage_compiler Polymage_ir Polymage_poly Pool Printf Types
