lib/runtime/buffer.ml: Abound Array Ast Float Interval List Polymage_ir Printf
