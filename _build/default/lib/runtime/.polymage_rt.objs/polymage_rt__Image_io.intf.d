lib/runtime/image_io.mli: Buffer
