(** Plan execution: the native back end.

    Runs an execution {!C.Plan.t} under concrete parameter bindings.
    [Straight] items evaluate whole stages into full buffers
    (parallelized over outer-dimension chunks); [Tiled] items run
    overlapped tiles in parallel over a worker pool, with per-worker
    scratchpads for intermediates and relative indexing, following the
    paper's generated-code structure (Fig. 7). *)

open Polymage_ir
module C = Polymage_compiler

type result = {
  buffers : Buffer.t option array;
      (** per pipeline stage: the full buffer, when one was allocated
          (straight stages and group live-outs) *)
  outputs : (Ast.func * Buffer.t) list;
}

val run :
  ?pool:Pool.t ->
  C.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Buffer.t) list ->
  result
(** Execute the plan.  Every input image of the pipeline must be
    provided with matching extents.  When [pool] is absent a pool of
    [plan.opts.workers] workers is created for the call.
    @raise Eval.Runtime_error on out-of-window accesses (safe mode)
    @raise Invalid_argument on missing images or malformed plans. *)

val output_buffer : result -> Ast.func -> Buffer.t
(** Buffer of a given output stage. @raise Not_found if absent. *)
