(* Command-line driver for the PolyMage reproduction: inspect pipeline
   graphs (Fig. 2), watch the compiler phases (Fig. 4), print the
   grouping (Fig. 8), emit C (Fig. 7), execute, and autotune (§3.8). *)
open Cmdliner
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Cgen = Polymage_codegen.Cgen
module Tune = Polymage_tune.Tune
module Report = Polymage_report
module Backend = Polymage_backend.Backend
module Exec_tier = Polymage_backend.Exec_tier

let app_arg =
  let parse s =
    match Apps.find s with
    | app -> Ok app
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf "unknown app %S (known: %s)" s
              (String.concat ", " Apps.names)))
  in
  Arg.conv (parse, fun ppf (a : App.t) -> Format.pp_print_string ppf a.name)

let app_pos =
  Arg.(required & pos 0 (some app_arg) None & info [] ~docv:"APP")

let size_flag =
  Arg.(
    value
    & opt (some (pair ~sep:'x' int int)) None
    & info [ "size" ] ~docv:"RxC" ~doc:"Image size (default: small size)")

let env_of (app : App.t) = function
  | None -> app.small_env
  | Some (r, c) -> (
    match app.small_env with
    | [ (pr, _); (pc, _) ] -> [ (pr, r); (pc, c) ]
    | other -> other)

let config_flag =
  Arg.(
    value
    & opt (enum [ ("base", `Base); ("base+vec", `BaseVec); ("opt", `Opt); ("opt+vec", `OptVec) ]) `OptVec
    & info [ "config" ] ~doc:"Configuration: base, base+vec, opt, opt+vec")

let tile_flag =
  Arg.(
    value
    & opt (list int) [ 32; 256 ]
    & info [ "tile" ] ~doc:"Tile sizes per canonical dimension")

let threshold_flag =
  Arg.(
    value & opt float 0.4
    & info [ "threshold" ] ~doc:"Overlap threshold (Algorithm 1)")

let workers_flag =
  Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Worker domains")

let simd_flag =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", C.Options.Simd_auto);
             ("off", C.Options.Simd_off);
             ("sse2", C.Options.Simd_sse2);
             ("avx2", C.Options.Simd_avx2);
             ("avx512", C.Options.Simd_avx512);
           ])
        C.Options.Simd_auto
    & info [ "simd" ]
        ~doc:
          "Explicit SIMD codegen for the compiled-C tiers: auto (probe \
           the toolchain and host, the default), off (scalar loops), or \
           a forced level (sse2, avx2, avx512). Forcing a level the \
           host lacks is safe: the generated C is portable and the \
           fast-math dispatcher caps at what cpuid reports. Ignored by \
           the native executor")

let options_of ?(simd = C.Options.Simd_auto) config tile threshold workers env
    =
  let mk =
    match config with
    | `Base -> C.Options.base
    | `BaseVec -> C.Options.base_vec
    | `Opt -> C.Options.opt
    | `OptVec -> C.Options.opt_vec
  in
  C.Options.with_simd simd
    (C.Options.with_threshold threshold
       (C.Options.with_tile (Array.of_list tile) (mk ~workers ~estimates:env ())))

(* ---- commands ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (app : App.t) ->
        Printf.printf "%-16s %2d stages  %s\n" app.name
          (Pipeline.n_stages (Pipeline.build ~outputs:app.outputs))
          app.description)
      (Apps.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark applications")
    Term.(const run $ const ())

let graph_cmd =
  let run (app : App.t) =
    print_string (Pipeline.to_dot (Pipeline.build ~outputs:app.outputs))
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print the stage graph in Graphviz format (Fig. 2)")
    Term.(const run $ app_pos)

let compile_cmd =
  let run (app : App.t) size config tile threshold workers =
    let env = env_of app size in
    let opts = options_of config tile threshold workers env in
    ignore (C.Compile.phases Format.std_formatter opts ~outputs:app.outputs)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run the compiler phases verbosely and print the plan (Fig. 4)")
    Term.(
      const run $ app_pos $ size_flag $ config_flag $ tile_flag
      $ threshold_flag $ workers_flag)

let groups_cmd =
  let run (app : App.t) size tile threshold =
    let env = env_of app size in
    let opts = options_of `Opt tile threshold 1 env in
    let plan = C.Compile.run opts ~outputs:app.outputs in
    match plan.grouping with
    | None -> print_endline "no grouping (base configuration)"
    | Some g -> Format.printf "%a" (C.Grouping.pp plan.pipe) g
  in
  Cmd.v (Cmd.info "groups" ~doc:"Print the grouping of stages (Fig. 8)")
    Term.(const run $ app_pos $ size_flag $ tile_flag $ threshold_flag)

let codegen_cmd =
  let out_flag =
    Arg.(
      value & opt (some string) None
      & info [ "o" ] ~docv:"FILE" ~doc:"Write the C to FILE")
  in
  let run (app : App.t) size config tile threshold simd out =
    let env = env_of app size in
    let opts = options_of ~simd config tile threshold 1 env in
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let src = Cgen.emit ?simd:(Backend.resolve_simd opts) plan in
    match out with
    | None -> print_string src
    | Some f ->
      let oc = open_out f in
      output_string oc src;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" f (String.length src)
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Emit the generated C (Fig. 7)")
    Term.(
      const run $ app_pos $ size_flag $ config_flag $ tile_flag
      $ threshold_flag $ simd_flag $ out_flag)

let fault_flag =
  let parse s =
    match Rt.Fault.parse s with
    | { Rt.Fault.site; seed } -> Ok (site, seed)
    | exception Polymage_util.Err.Polymage_error e ->
      Error (`Msg (Polymage_util.Err.to_string e))
  in
  Arg.(
    value
    & opt (some (conv (parse, fun ppf (s, n) -> Format.fprintf ppf "%s:%d" s n)))
        None
    & info [ "fault" ] ~docv:"SITE:SEED"
        ~doc:
          (Printf.sprintf
             "Arm the fault injector: the SEED-th hit of SITE raises (sites: \
              %s)"
             (String.concat ", " Rt.Fault.sites)))

let backend_flag =
  Arg.(
    value
    & opt
        (enum
           (List.map (fun t -> (Exec_tier.to_string t, t)) Exec_tier.all))
        Exec_tier.Native
    & info [ "backend" ]
        ~doc:
          "Execution tier: native (the OCaml executor), c (generated C \
           compiled into the on-disk artifact cache and run as a \
           subprocess), c-dlopen (the same artifact cache, built as a \
           shared object and called in-process through dlopen), or auto \
           (serve immediately on the native executor while the shared \
           object compiles in the background, then hot-swap)")

let exec_timeout_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "exec-timeout" ] ~docv:"MS"
        ~doc:
          "Watchdog deadline in milliseconds for compiled-artifact child \
           processes (the c tier and quarantine canary runs): a child \
           that has not exited by the deadline is killed — whole process \
           group, SIGTERM then SIGKILL — and the run reports a \
           structured watchdog error (with --safe, execution then \
           degrades down the tier ladder). Canary runs are always \
           bounded, by 120000 ms when this flag is absent")

let safe_flag =
  Arg.(
    value & flag
    & info [ "safe" ]
        ~doc:
          "Execute with graceful degradation: on failure retry down the \
           ladder opt+vec+kernels -> opt -> naive, reporting each \
           degradation")

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Enable structured tracing and metrics; prints a counter \
           summary after the run")

let trace_json_flag =
  Arg.(
    value & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Write the captured trace as Chrome trace format JSON \
           (chrome://tracing, Perfetto) to FILE; implies tracing")

let run_cmd =
  let repeats_flag =
    Arg.(value & opt int 3 & info [ "repeats" ] ~doc:"Timed repetitions")
  in
  let no_kernels_flag =
    Arg.(
      value & flag
      & info [ "no-kernels" ]
          ~doc:"Evaluate with closure trees instead of row kernels (ablation)")
  in
  let run (app : App.t) size config tile threshold workers simd repeats
      no_kernels backend safe fault exec_timeout trace trace_json =
    let env = env_of app size in
    let opts = options_of ~simd config tile threshold workers env in
    let opts =
      C.Options.with_fault fault
        { opts with C.Options.kernels = not no_kernels }
    in
    let opts = C.Options.with_exec_timeout exec_timeout opts in
    let tracing = trace || trace_json <> None in
    let opts = C.Options.with_trace tracing opts in
    if tracing then begin
      Polymage_util.Trace.reset ();
      Polymage_util.Metrics.reset ()
    end;
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let images =
      List.map
        (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
        plan.pipe.Pipeline.images
    in
    let print_degradations degradations =
      List.iter
        (fun (d : Rt.Executor.degradation) ->
          Printf.printf "  degraded from %s: %s\n" d.rung
            (Polymage_util.Err.to_string d.error))
        degradations
    in
    let print_outputs (res : Rt.Executor.result) =
      List.iter
        (fun (f, (b : Rt.Buffer.t)) ->
          Printf.printf "  output %s: %d values, checksum %.17g\n" f.Ast.fname
            (Rt.Buffer.size b)
            (Array.fold_left ( +. ) 0. b.data))
        res.outputs
    in
    (match backend with
    | Exec_tier.Native ->
      let execute () =
        if not safe then Rt.Executor.run plan env ~images
        else begin
          let r, degradations = Rt.Executor.run_safe plan env ~images in
          print_degradations degradations;
          r
        end
      in
      let res = ref (execute ()) in
      let best = ref infinity in
      for _ = 1 to repeats do
        let t0 = Unix.gettimeofday () in
        res := execute ();
        let t = Unix.gettimeofday () -. t0 in
        if t < !best then best := t
      done;
      Printf.printf "%s: %.2f ms (best of %d)\n" app.name (!best *. 1000.)
        repeats;
      print_outputs !res
    | Exec_tier.Auto ->
      (* Tiered serving: every call is answered immediately on
         whatever tier is ready, and the tier upgrades mid-stream
         when the background compile lands. *)
      let a = Exec_tier.auto_start plan in
      let res = ref None in
      let last = ref "" in
      let serve i =
        let (r, st), degradations, served =
          Exec_tier.auto_run a env ~images
        in
        print_degradations degradations;
        if served <> !last then begin
          Printf.printf "  call %d served by %s (%s)\n" i served
            (Exec_tier.auto_state a);
          last := served
        end;
        res := Some (r, st)
      in
      for i = 1 to max 1 repeats do serve i done;
      Exec_tier.auto_await a;
      serve (max 1 repeats + 1);
      (match !res with
      | Some (r, st) ->
        (match st with
        | Some st ->
          Printf.printf "%s: %.2f ms (last call, %s)\n" app.name st.exec_ms
            !last
        | None -> Printf.printf "%s: completed (%s)\n" app.name !last);
        print_outputs r
      | None -> ())
    | (Exec_tier.C_subprocess | Exec_tier.C_dlopen) as tier ->
      let res, stats =
        if safe then begin
          let (res, stats), degradations =
            Exec_tier.run_safe ~repeats tier plan env ~images
          in
          print_degradations degradations;
          (res, stats)
        end
        else Exec_tier.run ~repeats tier plan env ~images
      in
      (match stats with
      | Some st ->
        Printf.printf "%s: %.2f ms (best of %d, %s, %s%s)\n" app.name
          (Option.value ~default:st.exec_ms st.time_ms)
          repeats
          (Exec_tier.to_string tier)
          (if st.cache_hit then "cache hit"
           else Printf.sprintf "compile %.0f ms" st.compile_ms)
          (if st.quarantined then ", quarantine canary" else "")
      | None ->
        (* run_safe fell back to the native executor *)
        Printf.printf "%s: completed on the native executor (no timing)\n"
          app.name);
      print_outputs res);
    (match trace_json with
    | Some file ->
      Polymage_util.Trace.write_chrome_json file (Polymage_util.Trace.events ());
      Printf.printf "wrote trace to %s\n" file
    | None -> ());
    if trace then
      List.iter
        (fun (n, v) -> Printf.printf "  %-32s %12d\n" n v)
        (Polymage_util.Metrics.snapshot ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute the pipeline and report timing")
    Term.(
      const run $ app_pos $ size_flag $ config_flag $ tile_flag
      $ threshold_flag $ workers_flag $ simd_flag $ repeats_flag
      $ no_kernels_flag $ backend_flag $ safe_flag $ fault_flag
      $ exec_timeout_flag $ trace_flag $ trace_json_flag)

let profile_cmd =
  let run (app : App.t) size config tile threshold workers simd backend
      exec_timeout trace_json =
    let env = env_of app size in
    let opts = options_of ~simd config tile threshold workers env in
    let opts = C.Options.with_exec_timeout exec_timeout opts in
    let pipe = Pipeline.build ~outputs:app.outputs in
    let images =
      List.map
        (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
        pipe.Pipeline.images
    in
    let report =
      let report, stats =
        Exec_tier.profile ~opts ~outputs:app.outputs ~env ~images backend
      in
      (match stats with
      | None -> ()
      | Some (stats : Backend.stats) ->
        Printf.printf "== compiled backend (%s) ==\n"
          (Exec_tier.to_string backend);
        Printf.printf "  %s\n" (Backend.describe ());
        Printf.printf "  compile %.1f ms (%s), exec %.1f ms%s\n"
          stats.compile_ms
          (if stats.cache_hit then "cache hit" else "cache miss")
          stats.exec_ms
          (if stats.quarantined then
             " [quarantine canary run; artifact now trusted]"
           else ""));
      report
    in
    Format.printf "%a" Rt.Profile.pp_report report;
    Format.printf "%a" Report.Attribution.pp
      (Report.Attribution.of_report report);
    match trace_json with
    | Some file ->
      Rt.Profile.write_chrome_json file report;
      Printf.printf "wrote trace to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and run once with tracing on; print per-phase and \
          per-group tables")
    Term.(
      const run $ app_pos $ size_flag $ config_flag $ tile_flag
      $ threshold_flag $ workers_flag $ simd_flag $ backend_flag
      $ exec_timeout_flag $ trace_json_flag)

let explain_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the decision report as JSON (schema in DESIGN.md)")
  in
  let out_flag =
    Arg.(
      value & opt (some string) None
      & info [ "o" ] ~docv:"FILE" ~doc:"Write the report to FILE")
  in
  let run (app : App.t) size config tile threshold workers simd backend json
      out =
    let env = env_of app size in
    let opts = options_of ~simd config tile threshold workers env in
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let ex = Report.Explain.make ~name:app.name plan ~env in
    let text =
      if json then Report.Explain.to_json_string ex ^ "\n"
      else Format.asprintf "%a" Report.Explain.pp ex
    in
    (match out with
    | None -> print_string text
    | Some f ->
      let oc = open_out f in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" f (String.length text));
    (* Backend and cache status ride along on stdout (never into the
       JSON report, whose schema is golden-tested). *)
    if backend <> Exec_tier.Native && not json then
      Printf.printf "%s\n" (Exec_tier.describe backend);
    (* The SIMD report rides along the same way: the resolved level and
       the vector width each plan item's innermost loop is blocked by
       (1 = scalar: reductions, guarded split cases, self-recursive). *)
    if not json then
      match Backend.resolve_simd opts with
      | None -> ()
      | Some level ->
        let widths = Cgen.plan_widths ~simd:level plan in
        Printf.printf "simd: %s, loop widths per plan item [%s]\n"
          (Cgen.simd_level_to_string level)
          (String.concat "; "
             (Array.to_list (Array.map string_of_int widths)))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain the compiled plan: grouping decisions and why, \
          alignment/scaling, tile shapes and overlaps, scratch \
          footprint vs budget, demotions")
    Term.(
      const run $ app_pos $ size_flag $ config_flag $ tile_flag
      $ threshold_flag $ workers_flag $ simd_flag $ backend_flag $ json_flag
      $ out_flag)

let tune_cmd =
  let tiles_flag =
    Arg.(
      value
      & opt (list int) [ 16; 32; 64; 128 ]
      & info [ "tiles" ] ~doc:"Tile size menu")
  in
  let run (app : App.t) size tiles workers simd backend =
    let env = env_of app size in
    let plan0 =
      C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
    in
    let images =
      List.map
        (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
        plan0.pipe.Pipeline.images
    in
    let r =
      Tune.explore ~tiles ~workers ~backend ~simd ~outputs:app.outputs ~env
        ~images ()
    in
    List.iter
      (fun (s : Tune.sample) ->
        Format.printf "%a%s@." Tune.pp_sample s
          (if s == r.best then "   <= best" else ""))
      r.samples
  in
  Cmd.v (Cmd.info "tune" ~doc:"Autotune tile sizes and threshold (§3.8)")
    Term.(
      const run $ app_pos $ size_flag $ tiles_flag $ workers_flag $ simd_flag
      $ backend_flag)

let process_cmd =
  let input_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"INPUT.pgm" ~doc:"Input image (binary PGM)")
  in
  let out_flag =
    Arg.(
      value & opt string "out.pgm"
      & info [ "o" ] ~docv:"FILE" ~doc:"Output image file")
  in
  let normalize_flag =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:"Min-max normalize the output to [0,1] before writing")
  in
  let run (app : App.t) input out normalize =
    (* Only apps with a single 2-D input image whose extents are R+k /
       C+k can be driven from a file; sizes are inferred from it. *)
    let pipe = Pipeline.build ~outputs:app.outputs in
    let im =
      match pipe.images with
      | [ im ] when List.length im.Ast.iextents = 2 -> im
      | _ ->
        Printf.eprintf "%s does not take a single 2-D input image\n" app.name;
        exit 1
    in
    let img = Rt.Image_io.read_pgm input in
    let rows = img.Rt.Buffer.dims.(0) and cols = img.Rt.Buffer.dims.(1) in
    let env =
      match (app.small_env, im.Ast.iextents) with
      | [ (pr, _); (pc, _) ], [ er; ec ] ->
        (* extent = param + k: recover k by evaluating at param = 0 *)
        let kr = Abound.eval er [ (pr, 0); (pc, 0) ] in
        let kc = Abound.eval ec [ (pr, 0); (pc, 0) ] in
        [ (pr, rows - kr); (pc, cols - kc) ]
      | _ ->
        Printf.eprintf "cannot infer parameters for %s\n" app.name;
        exit 1
    in
    let opts = C.Options.opt_vec ~estimates:env () in
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let res = Rt.Executor.run plan env ~images:[ (im, img) ] in
    let b = Rt.Executor.output_buffer res (List.hd app.outputs) in
    let b =
      if not normalize then b
      else begin
        let mn = Array.fold_left Float.min infinity b.Rt.Buffer.data in
        let mx = Array.fold_left Float.max neg_infinity b.Rt.Buffer.data in
        let scale = if mx > mn then 1. /. (mx -. mn) else 1. in
        let c = Rt.Buffer.create ~lo:b.Rt.Buffer.lo ~dims:b.Rt.Buffer.dims in
        Array.iteri
          (fun k v -> c.Rt.Buffer.data.(k) <- (v -. mn) *. scale)
          b.Rt.Buffer.data;
        c
      end
    in
    (match Array.length b.Rt.Buffer.dims with
    | 2 -> Rt.Image_io.write_pgm out b
    | 3 -> Rt.Image_io.write_ppm out b
    | _ ->
      Printf.eprintf "unsupported output rank\n";
      exit 1);
    Printf.printf "%s: %s -> %s (%dx%d input)\n" app.name input out rows cols
  in
  Cmd.v
    (Cmd.info "process"
       ~doc:"Run a pipeline on a PGM image file and write the result")
    Term.(const run $ app_pos $ input_pos $ out_flag $ normalize_flag)

(* ---- serve: the long-lived daemon, its client, and cache status ---- *)

module Srv = Polymage_serve

let socket_flag =
  Arg.(
    value
    & opt string "/tmp/polymage.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let cache_dir_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Artifact cache directory (default: the per-user cache)")

let print_metrics () =
  List.iter
    (fun (n, v) -> Printf.printf "  %-32s %12d\n" n v)
    (Polymage_util.Metrics.snapshot ())

let serve_cmd =
  let batch_flag =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"N"
          ~doc:"Serve up to N consecutive same-plan requests per dispatch")
  in
  let batch_window_flag =
    Arg.(
      value & opt int 0
      & info [ "batch-window" ] ~docv:"MS"
          ~doc:
            "Hold the head request MS milliseconds so same-plan requests \
             arriving together ride one dispatch (0 = no window)")
  in
  let shed_depth_flag =
    Arg.(
      value & opt int 64
      & info [ "shed-depth" ] ~docv:"N"
          ~doc:
            "Queue depth at which requests are shed to the naive plan so \
             the queue drains faster")
  in
  let max_depth_flag =
    Arg.(
      value & opt int 256
      & info [ "max-depth" ] ~docv:"N"
          ~doc:
            "Queue depth at which requests are rejected with a structured \
             error")
  in
  let max_conns_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Exit after serving N connections (deterministic runs for CI; \
             default: serve forever)")
  in
  let serve_backend_flag =
    Arg.(
      value
      & opt
          (enum (List.map (fun t -> (Exec_tier.to_string t, t)) Exec_tier.all))
          Exec_tier.Auto
      & info [ "backend" ]
          ~doc:
            "Serving tier; auto (the default) answers on the native \
             executor while each plan's shared object compiles in the \
             background, then hot-swaps")
  in
  let access_log_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per completed request (timestamp, \
             plan, tier, queue-wait ms, exec ms, bytes, outcome)")
  in
  let no_telemetry_flag =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable serve telemetry (latency histograms, per-plan \
             counters, slow-request ring, access log): the request path \
             takes no clock readings")
  in
  let run socket backend workers simd batch batch_window shed_depth max_depth
      max_conns cache_dir access_log no_telemetry fault trace trace_json =
    (match fault with
    | None -> ()
    | Some (site, seed) -> Rt.Fault.arm ~site ~seed);
    let telemetry = not no_telemetry in
    let tracing = trace || trace_json <> None in
    if tracing then begin
      Polymage_util.Trace.reset ();
      Polymage_util.Metrics.reset ();
      Polymage_util.Trace.enable ()
    end;
    (* the stats frame reports Metrics counters and gauges; they are
       part of the telemetry layer, not only of tracing *)
    if tracing || telemetry then Polymage_util.Metrics.enable ();
    let server =
      Srv.Server.create
        {
          Srv.Server.tier = backend;
          workers;
          batch_max = batch;
          batch_window_ms = batch_window;
          shed_depth;
          max_depth;
          cache_dir;
          telemetry;
          access_log = (if telemetry then access_log else None);
          simd;
        }
    in
    let listener = Srv.Listener.bind ~socket_path:socket server in
    Printf.printf "serving on %s (%s tier, %d workers%s)\n%!" socket
      (Exec_tier.to_string backend) workers
      (match max_conns with
      | None -> ""
      | Some n -> Printf.sprintf ", %d connections" n);
    Srv.Listener.run ?max_conns listener;
    Srv.Server.stop server;
    (match trace_json with
    | Some file ->
      Polymage_util.Trace.write_chrome_json file (Polymage_util.Trace.events ());
      Printf.printf "wrote trace to %s\n" file
    | None -> ());
    if tracing then print_metrics ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the pipeline server: a long-lived daemon answering requests \
          over a Unix-domain socket, batching same-plan requests, shedding \
          load past a queue-depth bound, and hot-swapping to compiled \
          artifacts as background compiles land")
    Term.(
      const run $ socket_flag $ serve_backend_flag $ workers_flag $ simd_flag
      $ batch_flag $ batch_window_flag $ shed_depth_flag $ max_depth_flag
      $ max_conns_flag $ cache_dir_flag $ access_log_flag $ no_telemetry_flag
      $ fault_flag $ trace_flag $ trace_json_flag)

let timeout_flag =
  Arg.(
    value & opt int 5000
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Connect/read deadline: a hung server yields a structured \
           timeout error and exit code 1 instead of blocking forever \
           (0 = wait indefinitely)")

let with_timeout_errors f =
  try f ()
  with Polymage_util.Err.Polymage_error e ->
    Printf.eprintf "error: %s\n" (Polymage_util.Err.to_string e);
    exit 1

let connect_with_timeout socket timeout_ms =
  Srv.Listener.connect
    ?timeout_ms:(if timeout_ms <= 0 then None else Some timeout_ms)
    socket

let client_cmd =
  let repeats_flag =
    Arg.(value & opt int 1 & info [ "repeats" ] ~doc:"Requests to send")
  in
  let run (app : App.t) socket size repeats timeout_ms =
    let env = env_of app size in
    let params =
      List.map (fun ((p : Types.param), v) -> (p.Types.pname, v)) env
    in
    let pipe = Pipeline.build ~outputs:app.outputs in
    let images =
      List.map
        (fun im -> (im.Ast.iname, Rt.Buffer.of_image im env (app.fill env im)))
        pipe.Pipeline.images
    in
    with_timeout_errors (fun () ->
        let fd = connect_with_timeout socket timeout_ms in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            for i = 1 to max 1 repeats do
              let t0 = Unix.gettimeofday () in
              match Srv.Listener.call fd ~app:app.name ~params ~images with
              | Srv.Protocol.Ok_response { tier; outputs } ->
                let ms = (Unix.gettimeofday () -. t0) *. 1000. in
                Printf.printf "call %d: %s, %.2f ms\n" i tier ms;
                List.iter
                  (fun (name, (b : Rt.Buffer.t)) ->
                    Printf.printf "  output %s: %d values, checksum %.17g\n"
                      name
                      (Rt.Buffer.size b)
                      (Array.fold_left ( +. ) 0. b.data))
                  outputs
              | Srv.Protocol.Err_response e ->
                Printf.eprintf "call %d: error: %s\n" i
                  (Polymage_util.Err.to_string e);
                exit 1
            done))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send pipeline requests to a running server and print the \
          responses")
    Term.(
      const run $ app_pos $ socket_flag $ size_flag $ repeats_flag
      $ timeout_flag)

(* ---- stats: scrape and render a daemon's 'S' snapshot ---- *)

module J = Polymage_util.Trace

let jfield name = function
  | J.Obj fs -> List.assoc_opt name fs
  | _ -> None

let jnum j name = match jfield name j with Some (J.Num v) -> v | _ -> 0.
let jint j name = int_of_float (jnum j name)
let jstr j name = match jfield name j with Some (J.Str s) -> s | _ -> ""
let jbool j name = match jfield name j with Some (J.Bool b) -> b | _ -> false
let jobj j name = match jfield name j with Some o -> o | None -> J.Null
let jarr j name = match jfield name j with Some (J.Arr l) -> l | _ -> []

let prom_sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    name

let print_prometheus j =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let metric ?(typ = "gauge") name v =
    line "# TYPE %s %s" name typ;
    line "%s %g" name v
  in
  metric "polymage_serve_uptime_seconds" (jnum j "uptime_ms" /. 1000.);
  let conns = jobj j "connections" and queue = jobj j "queue" in
  metric "polymage_serve_connections" (jnum conns "live");
  metric "polymage_serve_connections_peak" (jnum conns "peak");
  metric "polymage_serve_queue_depth" (jnum queue "depth");
  metric "polymage_serve_queue_depth_peak" (jnum queue "peak");
  (* the gauges above come from their structured sections; skip their
     Metrics-registry copies so each series is emitted once *)
  let skip =
    [
      "serve/queue_depth"; "serve/queue_depth_peak"; "serve/connections";
      "serve/connections_peak";
    ]
  in
  (match jobj j "counters" with
  | J.Obj fs ->
    List.iter
      (fun (name, v) ->
        match v with
        | J.Num n when not (List.mem name skip) ->
          metric ~typ:"counter"
            ("polymage_serve_"
            ^ prom_sanitize
                (if String.length name > 6 then
                   String.sub name 6 (String.length name - 6)
                 else name))
            n
        | _ -> ())
      fs
  | _ -> ());
  (match jobj j "histograms" with
  | J.Obj phases ->
    line "# TYPE polymage_serve_latency_ms summary";
    List.iter
      (fun (phase, h) ->
        List.iter
          (fun (q, field) ->
            line "polymage_serve_latency_ms{phase=%S,quantile=%S} %g" phase q
              (jnum h field))
          [
            ("0.5", "p50_ms"); ("0.9", "p90_ms"); ("0.99", "p99_ms");
            ("0.999", "p999_ms");
          ];
        line "polymage_serve_latency_ms_count{phase=%S} %g" phase
          (jnum h "count"))
      phases
  | _ -> ());
  print_string (Buffer.contents b)

let print_pretty socket j =
  Printf.printf "%s on %s — schema v%d, up %.1f s, telemetry %s\n"
    (jstr j "service") socket (jint j "schema_version")
    (jnum j "uptime_ms" /. 1000.)
    (if jbool j "telemetry" then "on" else "off");
  let conns = jobj j "connections" and queue = jobj j "queue" in
  Printf.printf
    "connections: %d live (peak %d)   queue: %d deep (peak %d, shed at %d, \
     reject at %d)\n"
    (jint conns "live") (jint conns "peak") (jint queue "depth")
    (jint queue "peak") (jint queue "shed_depth") (jint queue "max_depth");
  let pool = jobj j "pool" in
  Printf.printf "pool: %d workers, batch up to %d (window %d ms)\n"
    (jint pool "workers") (jint pool "batch_max") (jint pool "batch_window_ms");
  (match jobj j "counters" with
  | J.Obj fs when fs <> [] ->
    Printf.printf "\ncounters:\n";
    List.iter
      (fun (name, v) ->
        match v with
        | J.Num n -> Printf.printf "  %-32s %12.0f\n" name n
        | _ -> ())
      fs
  | _ -> ());
  let print_hist_table indent h =
    match h with
    | J.Obj phases ->
      Printf.printf "%s%-10s %8s %9s %9s %9s %9s %9s %9s\n" indent "phase"
        "count" "p50" "p90" "p99" "p999" "mean" "max";
      List.iter
        (fun (phase, ph) ->
          Printf.printf
            "%s%-10s %8.0f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n" indent phase
            (jnum ph "count") (jnum ph "p50_ms") (jnum ph "p90_ms")
            (jnum ph "p99_ms") (jnum ph "p999_ms") (jnum ph "mean_ms")
            (jnum ph "max_ms"))
        phases
    | _ -> ()
  in
  (match jobj j "histograms" with
  | J.Null -> ()
  | h ->
    Printf.printf "\nlatency (ms):\n";
    print_hist_table "  " h);
  (match jarr j "plans" with
  | [] -> ()
  | plans ->
    Printf.printf "\nplans:\n";
    List.iter
      (fun p ->
        let pinned =
          match jfield "pinned_artifact" p with
          | Some (J.Obj _ as pa) -> ", pinned " ^ jstr pa "so"
          | _ -> ""
        in
        Printf.printf
          "  %s [%s%s]  requests %d, batched %d, shed %d, rejected %d, \
           errors %d\n"
          (jstr p "key") (jstr p "state") pinned (jint p "requests")
          (jint p "batched") (jint p "shed") (jint p "rejected")
          (jint p "errors");
        print_hist_table "    " (jobj p "histograms"))
      plans);
  let cache = jobj j "cache" in
  Printf.printf "\ncache: %s — %d entries, %d bytes, %d trusted, %d quarantined\n"
    (jstr cache "dir") (jint cache "entries") (jint cache "bytes")
    (jint cache "trusted") (jint cache "quarantined");
  match jarr j "slow_requests" with
  | [] -> ()
  | slow ->
    Printf.printf "\nslowest recent requests:\n";
    List.iter
      (fun r ->
        Printf.printf
          "  rid %-6d %-12s %-12s %-8s queue %8.2f  exec %8.2f  total %8.2f \
           ms  in %d B out %d B\n"
          (jint r "rid") (jstr r "app") (jstr r "tier") (jstr r "outcome")
          (jnum r "queue_ms") (jnum r "exec_ms") (jnum r "total_ms")
          (jint r "bytes_in") (jint r "bytes_out"))
      slow

let stats_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw JSON snapshot unmodified")
  in
  let prom_flag =
    Arg.(
      value & flag
      & info [ "prom" ] ~doc:"Print Prometheus text-format metrics")
  in
  let run socket json prom timeout_ms =
    with_timeout_errors (fun () ->
        let fd = connect_with_timeout socket timeout_ms in
        let body =
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () -> Srv.Listener.call_stats fd)
        in
        if json then print_endline body
        else
          match J.parse_json body with
          | Error why ->
            Printf.eprintf "error: malformed stats snapshot: %s\n" why;
            exit 1
          | Ok j -> if prom then print_prometheus j else print_pretty socket j)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a running server's live stats snapshot (uptime, queue and \
          connection gauges, latency quantiles per phase and per plan, \
          cache trust, slowest recent requests) and render it \
          human-readable, as raw JSON, or as Prometheus text metrics")
    Term.(const run $ socket_flag $ json_flag $ prom_flag $ timeout_flag)

let cache_cmd =
  let run cache_dir =
    Printf.printf "%s\n" (Backend.describe ?cache_dir ());
    Printf.printf "%s\n" (Polymage_backend.Toolchain.describe ())
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Describe the artifact cache (location, entries, trust states) \
          and the detected C toolchain")
    Term.(const run $ cache_dir_flag)

let () =
  let doc = "PolyMage: automatic optimization for image processing pipelines" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "polymage" ~doc)
          [
            list_cmd; graph_cmd; compile_cmd; groups_cmd; codegen_cmd;
            run_cmd; profile_cmd; explain_cmd; tune_cmd; process_cmd;
            serve_cmd; client_cmd; stats_cmd; cache_cmd;
          ]))
