(* Decision report for a compiled plan: which stages fused into which
   group and why, the alignment/scaling and tile shape per stage, the
   scratchpad footprint against its budget, and every demotion — the
   paper's grouping/tiling heuristics (§3.4–3.5) made inspectable. *)

open Polymage_ir
module C = Polymage_compiler
module Poly = Polymage_poly
module Trace = Polymage_util.Trace

let schema_version = 1

type member_info = {
  stage : string;
  align : int array;  (* per stage dim: canonical dim or -1 *)
  scale : int array;
  widen_l : int array;  (* per canonical dim *)
  widen_r : int array;
  live_out : bool;
  scratchpad : bool;
  domain_points : int;
  tile_points : int;  (* predicted points computed per tile *)
}

type item_info =
  | Straight_item of { item : int; stage : string; reason : string }
  | Tiled_item of {
      item : int;
      members : member_info list;
      tile : int array;  (* scaled tile extents per canonical dim *)
      overlap : int array;  (* group overlap per canonical dim *)
      tiles_predicted : int;
      scratch_bytes : int;
      redundancy_predicted : float;
    }

type t = {
  name : string option;
  opts : C.Options.t;
  n_stages : int;
  env : (string * int) list;
  inlined : (string * string) list;
  decisions : C.Grouping.decision list;
  items : item_info list;
  demotions : C.Plan.demotion list;
}

let straight_reason (plan : C.Plan.t) i =
  let f = plan.pipe.stages.(i) in
  if List.exists (fun (d : C.Plan.demotion) -> List.mem f.Ast.fname d.stages)
       plan.demotions
  then "demoted: group scratchpad footprint over budget"
  else
    match f.Ast.fbody with
    | Ast.Reduce _ -> "reduction: not fusable with overlapped tiling"
    | _ ->
      if plan.pipe.self_recursive.(i) then
        "self-recursive: sequential time iteration"
      else if not plan.opts.grouping_on then "grouping disabled"
      else "left in a single-stage group by the grouping heuristic"

let make ?name (plan : C.Plan.t) ~env =
  let opts = plan.opts in
  let naive = opts.naive_overlap in
  let tiles = Polymage_rt.Executor.tile_counts plan env in
  let items =
    Array.to_list plan.items
    |> List.mapi (fun k (item : C.Plan.item) ->
           match item with
           | C.Plan.Straight i ->
             Straight_item
               {
                 item = k;
                 stage = plan.pipe.stages.(i).Ast.fname;
                 reason = straight_reason plan i;
               }
           | C.Plan.Tiled g ->
             let tiles_predicted =
               try List.assoc k tiles with Not_found -> 0
             in
             let members =
               Array.to_list g.members
               |> List.map (fun (m : C.Plan.member) ->
                      let ms = m.ms in
                      {
                        stage = ms.func.Ast.fname;
                        align = ms.align;
                        scale = ms.scale;
                        widen_l = (if naive then ms.widen_l_naive else ms.widen_l);
                        widen_r = (if naive then ms.widen_r_naive else ms.widen_r);
                        live_out = m.live_out;
                        scratchpad = m.used_in_group && opts.scratchpads;
                        domain_points = Poly.Tiling.domain_points env ms;
                        tile_points =
                          Poly.Tiling.tile_points ~naive g.sched ~tile:g.tile
                            env ms;
                      })
             in
             let useful =
               List.fold_left (fun a m -> a + m.domain_points) 0 members
             in
             let computed =
               List.fold_left
                 (fun a m -> a + (m.tile_points * tiles_predicted))
                 0 members
             in
             let redundancy_predicted =
               if useful = 0 then 0.
               else (float_of_int computed /. float_of_int useful) -. 1.
             in
             Tiled_item
               {
                 item = k;
                 members;
                 tile = Poly.Tiling.scaled_tile g.sched ~tile:g.tile;
                 overlap = Poly.Tiling.overlap ~naive g.sched;
                 tiles_predicted;
                 scratch_bytes = g.scratch_bytes;
                 redundancy_predicted;
               })
  in
  {
    name;
    opts;
    n_stages = Pipeline.n_stages plan.pipe;
    env =
      List.map (fun ((p : Types.param), v) -> (p.pname, v)) env
      |> List.sort compare;
    inlined = plan.inlined;
    decisions =
      (match plan.grouping with None -> [] | Some g -> g.decisions);
    items;
    demotions = plan.demotions;
  }

(* ---- JSON rendering (schema documented in DESIGN.md) ---- *)

let jint n = Trace.Num (float_of_int n)
let jints a = Trace.Arr (List.map jint (Array.to_list a))
let jstrs l = Trace.Arr (List.map (fun s -> Trace.Str s) l)

let json_of_options (o : C.Options.t) =
  Trace.Obj
    [
      ("grouping", Trace.Bool o.grouping_on);
      ( "tiling",
        Trace.Str
          (match o.tiling with
          | C.Options.Overlap -> "overlap"
          | C.Options.Parallelogram -> "parallelogram"
          | C.Options.Split -> "split") );
      ("inline", Trace.Bool o.inline_on);
      ("vec", Trace.Bool o.vec);
      ("split_cases", Trace.Bool o.split_cases);
      ("workers", jint o.workers);
      ("tile", jints o.tile);
      ("threshold", Trace.Num o.threshold);
      ("min_size", jint o.min_size);
      ("naive_overlap", Trace.Bool o.naive_overlap);
      ("scratchpads", Trace.Bool o.scratchpads);
      ("kernels", Trace.Bool o.kernels);
      ("kernel_measure", Trace.Bool o.kernel_measure);
      ( "max_scratch_bytes",
        match o.max_scratch_bytes with
        | None -> Trace.Null
        | Some b -> jint b );
    ]

let json_of_decision (d : C.Grouping.decision) =
  Trace.Obj
    [
      ("group", jstrs d.group);
      ("child", jstrs d.child);
      ( "overlap",
        match d.overlap with None -> Trace.Null | Some o -> Trace.Num o );
      ("threshold", Trace.Num d.threshold);
      ( "verdict",
        Trace.Str
          (match d.verdict with
          | C.Grouping.Merged -> "merged"
          | C.Grouping.Above_threshold _ -> "above_threshold"
          | C.Grouping.Unschedulable _ -> "unschedulable") );
      ( "detail",
        match d.verdict with
        | C.Grouping.Unschedulable msg -> Trace.Str msg
        | _ -> Trace.Null );
    ]

let json_of_member (m : member_info) =
  Trace.Obj
    [
      ("stage", Trace.Str m.stage);
      ("align", jints m.align);
      ("scale", jints m.scale);
      ("widen_l", jints m.widen_l);
      ("widen_r", jints m.widen_r);
      ("live_out", Trace.Bool m.live_out);
      ("scratchpad", Trace.Bool m.scratchpad);
      ("domain_points", jint m.domain_points);
      ("tile_points", jint m.tile_points);
    ]

let json_of_item = function
  | Straight_item s ->
    Trace.Obj
      [
        ("kind", Trace.Str "straight");
        ("item", jint s.item);
        ("stage", Trace.Str s.stage);
        ("reason", Trace.Str s.reason);
      ]
  | Tiled_item g ->
    Trace.Obj
      [
        ("kind", Trace.Str "tiled");
        ("item", jint g.item);
        ("tile", jints g.tile);
        ("overlap", jints g.overlap);
        ("tiles_predicted", jint g.tiles_predicted);
        ("scratch_bytes", jint g.scratch_bytes);
        ("redundancy_predicted", Trace.Num g.redundancy_predicted);
        ("members", Trace.Arr (List.map json_of_member g.members));
      ]

let to_json t =
  Trace.Obj
    [
      ("schema_version", jint schema_version);
      ( "app",
        match t.name with None -> Trace.Null | Some n -> Trace.Str n );
      ("options", json_of_options t.opts);
      ("n_stages", jint t.n_stages);
      ( "env",
        Trace.Obj (List.map (fun (n, v) -> (n, jint v)) t.env) );
      ( "inlined",
        Trace.Arr
          (List.map
             (fun (p, c) ->
               Trace.Obj
                 [ ("producer", Trace.Str p); ("consumer", Trace.Str c) ])
             t.inlined) );
      ("grouping_decisions", Trace.Arr (List.map json_of_decision t.decisions));
      ("items", Trace.Arr (List.map json_of_item t.items));
      ( "demotions",
        Trace.Arr
          (List.map
             (fun (d : C.Plan.demotion) ->
               Trace.Obj
                 [
                   ("stages", jstrs d.stages);
                   ("bytes", jint d.bytes);
                   ("budget", jint d.budget);
                 ])
             t.demotions) );
    ]

let to_json_string t = Trace.json_to_string (to_json t)

(* ---- text rendering ---- *)

let ints a =
  String.concat ";" (Array.to_list (Array.map string_of_int a))

let pp ppf t =
  (match t.name with
  | Some n -> Format.fprintf ppf "== %s ==@." n
  | None -> ());
  Format.fprintf ppf "options: %a@." C.Options.pp t.opts;
  Format.fprintf ppf "env: %s@."
    (String.concat ", "
       (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) t.env));
  Format.fprintf ppf "stages: %d@." t.n_stages;
  if t.inlined <> [] then
    Format.fprintf ppf "inlined: %s@."
      (String.concat ", "
         (List.map (fun (p, c) -> p ^ " into " ^ c) t.inlined));
  if t.decisions <> [] then begin
    Format.fprintf ppf "@.== grouping decisions (overlap threshold %.2f) ==@."
      t.opts.threshold;
    List.iter
      (fun (d : C.Grouping.decision) ->
        let side l = "{" ^ String.concat ", " l ^ "}" in
        match d.verdict with
        | C.Grouping.Merged ->
          Format.fprintf ppf "  merge %s into %s: overlap %.3f < %.2f@."
            (side d.group) (side d.child)
            (Option.value ~default:0. d.overlap)
            d.threshold
        | C.Grouping.Above_threshold o ->
          Format.fprintf ppf
            "  keep  %s apart from %s: overlap %.3f >= %.2f@." (side d.group)
            (side d.child) o d.threshold
        | C.Grouping.Unschedulable msg ->
          Format.fprintf ppf "  keep  %s apart from %s: %s@." (side d.group)
            (side d.child) msg)
      t.decisions
  end;
  Format.fprintf ppf "@.== plan (%d items) ==@." (List.length t.items);
  List.iter
    (function
      | Straight_item s ->
        Format.fprintf ppf "[%d] straight %s — %s@." s.item s.stage s.reason
      | Tiled_item g ->
        Format.fprintf ppf
          "[%d] tiled group: tile=[%s] overlap=[%s] tiles=%d scratch=%.1f \
           KiB%s redundancy(pred)=%.3f@."
          g.item (ints g.tile) (ints g.overlap) g.tiles_predicted
          (float_of_int g.scratch_bytes /. 1024.)
          (match t.opts.max_scratch_bytes with
          | None -> ""
          | Some b -> Printf.sprintf " (budget %.1f KiB)" (float_of_int b /. 1024.))
          g.redundancy_predicted;
        List.iter
          (fun m ->
            Format.fprintf ppf
              "      %-20s align=[%s] scale=[%s] widen_l=[%s] widen_r=[%s]%s%s@."
              m.stage (ints m.align) (ints m.scale) (ints m.widen_l)
              (ints m.widen_r)
              (if m.live_out then " live-out" else "")
              (if m.scratchpad then " scratchpad" else ""))
          g.members)
    t.items;
  List.iter
    (fun (d : C.Plan.demotion) ->
      Format.fprintf ppf
        "demoted over scratch budget (%d > %d bytes/tile): %s@." d.bytes
        d.budget
        (String.concat ", " d.stages))
    t.demotions;
  if t.opts.kernels then
    Format.fprintf ppf
      "@.kernels: on, measured closure fallback %s (decisions appear as \
       exec/stage/<name>/kernel_kept|kernel_dropped counters in profile \
       runs)@."
      (if t.opts.kernel_measure then "on" else "off")
