(** Attribution: fold a {!Polymage_rt.Profile.report} (captured trace
    + metrics snapshot) into a per-item / per-stage profile.

    Span times are attributed as a tree (a span is a child of the
    innermost span containing it on the same thread) with self time =
    duration − children.  Per plan item the profile reports tiles
    executed vs planned, rows split by execution class
    (kernel/closure/cond), scratchpad bytes and attaches, and the
    redundant-compute ratio twice: as predicted by the
    {!Polymage_poly.Tiling} layouts and as measured by the executed
    point counters — printing both makes model-vs-measurement skew
    visible. *)

type span_node = {
  name : string;
  cat : string;
  dur_ms : float;
  self_ms : float;  (** duration minus the children's durations *)
  children : span_node list;
}

val span_tree : Polymage_util.Trace.event list -> span_node list
(** Exposed for tests: fold flat span events into the nesting tree. *)

type stage_profile = {
  stage : string;
  rows_kernel : int;
  rows_closure : int;
  rows_cond : int;
  points : int;  (** points actually computed (clamped tile windows) *)
  domain_points : int;  (** useful points under the run's bindings *)
  kernel_kept : int;  (** measured-fallback decisions, one per worker *)
  kernel_dropped : int;
}

type item_profile = {
  item : int;
  label : string;
  item_ms : float;
  stages : stage_profile list;
  tiles_planned : int;
  tiles_run : int;
  scratch_bytes : int;
  scratch_attaches : int;
  redundancy_predicted : float option;
      (** [sum(tile_points * tiles) / sum(domain_points) - 1], from the
          tiling model; [None] for straight items *)
  redundancy_measured : float option;
      (** same ratio from the [exec/stage/<name>/points] counters;
          [None] when metrics were off *)
}

type t = {
  wall_ms : float;
  compile_ms : float;
  io_ms : float;
  codegen_ms : float;
  tree : span_node list;
  items : item_profile list;
}

val of_report : Polymage_rt.Profile.report -> t
val pp : Format.formatter -> t -> unit
