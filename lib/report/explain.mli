(** [polymage explain]: render a compiled {!Polymage_compiler.Plan} as
    a decision report — which stages fused into which group and why
    (the grouping heuristic's inputs and verdicts), the
    alignment/scaling per stage, tile shape and overlap per dimension,
    scratchpad footprint against its budget, and demotions — as text
    or JSON.

    The JSON schema (documented in DESIGN.md, [schema_version] 1) is
    stable for tooling: predicted tile counts come from
    {!Polymage_rt.Executor.tile_counts}, so they equal the executed
    tile counters for the same options and bindings by construction. *)

open Polymage_ir
module C = Polymage_compiler

val schema_version : int

type member_info = {
  stage : string;
  align : int array;  (** per stage dim: canonical dim or -1 *)
  scale : int array;
  widen_l : int array;  (** per canonical dim, the shape in force *)
  widen_r : int array;
  live_out : bool;
  scratchpad : bool;
  domain_points : int;
  tile_points : int;  (** predicted points computed per tile *)
}

type item_info =
  | Straight_item of { item : int; stage : string; reason : string }
  | Tiled_item of {
      item : int;
      members : member_info list;
      tile : int array;
      overlap : int array;
      tiles_predicted : int;
      scratch_bytes : int;
      redundancy_predicted : float;
    }

type t = {
  name : string option;
  opts : C.Options.t;
  n_stages : int;
  env : (string * int) list;
  inlined : (string * string) list;
  decisions : C.Grouping.decision list;
  items : item_info list;
  demotions : C.Plan.demotion list;
}

val make : ?name:string -> C.Plan.t -> env:Types.bindings -> t
(** Pure function of the plan and bindings: no execution happens. *)

val to_json : t -> Polymage_util.Trace.json
val to_json_string : t -> string
val pp : Format.formatter -> t -> unit
