(* Fold a captured trace + metrics snapshot into a per-item /
   per-stage profile: self vs child time from the span tree, rows by
   execution class, tiles, scratch traffic, and the redundant-compute
   ratio both as the tiling model predicts it and as the executed
   point counters measured it, so model-vs-measurement skew is
   visible. *)

module C = Polymage_compiler
module Poly = Polymage_poly
module Rt = Polymage_rt
module Trace = Polymage_util.Trace

(* ---- span tree with self time ---- *)

type span_node = {
  name : string;
  cat : string;
  dur_ms : float;
  self_ms : float;
  children : span_node list;
}

type raw = {
  rname : string;
  rcat : string;
  rt0 : int;
  rt1 : int;
  rdepth : int;
  mutable rkids : raw list;
}

let ms ns = float_of_int ns /. 1e6

let rec freeze (r : raw) =
  (* rkids accumulates by prepending, so rev_map restores start order *)
  let children = List.rev_map freeze r.rkids in
  let child_ns =
    List.fold_left (fun acc (c : raw) -> acc + (c.rt1 - c.rt0)) 0 r.rkids
  in
  {
    name = r.rname;
    cat = r.rcat;
    dur_ms = ms (r.rt1 - r.rt0);
    self_ms = Float.max 0. (ms (r.rt1 - r.rt0 - child_ns));
    children;
  }

(* Nest spans by interval containment, per thread: a span is a child
   of the innermost span that contains it.  Sorting by (start asc,
   end desc, depth asc) makes parents precede their children even for
   zero-length ties, so one stack pass suffices. *)
let span_tree (events : Trace.event list) =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Span s ->
        let l = try Hashtbl.find by_tid s.tid with Not_found -> [] in
        Hashtbl.replace by_tid s.tid
          ({
             rname = s.name;
             rcat = s.cat;
             rt0 = s.t_start_ns;
             rt1 = s.t_end_ns;
             rdepth = s.depth;
             rkids = [];
           }
          :: l)
      | Trace.Instant _ -> ())
    events;
  let roots = ref [] in
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] in
  List.iter
    (fun tid ->
      let spans =
        List.sort
          (fun a b ->
            if a.rt0 <> b.rt0 then compare a.rt0 b.rt0
            else if a.rt1 <> b.rt1 then compare b.rt1 a.rt1
            else compare a.rdepth b.rdepth)
          (Hashtbl.find by_tid tid)
      in
      let stack = ref [] in
      List.iter
        (fun s ->
          let rec unwind () =
            match !stack with
            | top :: rest when not (s.rt0 >= top.rt0 && s.rt1 <= top.rt1) ->
              stack := rest;
              unwind ()
            | _ -> ()
          in
          unwind ();
          (match !stack with
          | top :: _ -> top.rkids <- s :: top.rkids
          | [] -> roots := s :: !roots);
          stack := s :: !stack)
        spans)
    (List.sort compare tids);
  (* roots accumulates by prepending, so rev_map restores start order *)
  List.rev_map freeze !roots

(* ---- per-item / per-stage profile ---- *)

type stage_profile = {
  stage : string;
  rows_kernel : int;
  rows_closure : int;
  rows_cond : int;
  points : int;  (* points actually computed (clamped tile windows) *)
  domain_points : int;  (* useful points under the run's bindings *)
  kernel_kept : int;  (* measured-fallback decisions, per worker *)
  kernel_dropped : int;
}

type item_profile = {
  item : int;
  label : string;
  item_ms : float;  (* total time of this item's exec spans *)
  stages : stage_profile list;
  tiles_planned : int;
  tiles_run : int;
  scratch_bytes : int;
  scratch_attaches : int;
  redundancy_predicted : float option;  (* tiled groups only *)
  redundancy_measured : float option;  (* needs nonzero point counters *)
}

type t = {
  wall_ms : float;  (* the exec.run span *)
  compile_ms : float;  (* the top-level compile span *)
  io_ms : float;  (* image read/write spans *)
  codegen_ms : float;  (* C emission spans *)
  tree : span_node list;
  items : item_profile list;
}

let get counters n = try List.assoc n counters with Not_found -> 0

let stage_profile counters env (f : Polymage_ir.Ast.func) =
  let c what = get counters (Printf.sprintf "exec/stage/%s/%s" f.fname what) in
  {
    stage = f.fname;
    rows_kernel = c "rows_kernel";
    rows_closure = c "rows_closure";
    rows_cond = c "rows_cond";
    points = c "points";
    domain_points =
      List.fold_left
        (fun acc iv -> acc * Polymage_ir.Interval.size iv env)
        1 f.fdom;
    kernel_kept = c "kernel_kept";
    kernel_dropped = c "kernel_dropped";
  }

let rec sum_spans pred nodes =
  List.fold_left
    (fun acc (n : span_node) ->
      (if pred n then acc +. n.dur_ms else acc) +. sum_spans pred n.children)
    0. nodes

let of_report (r : Rt.Profile.report) =
  let counters = r.counters in
  let env = r.env in
  let plan = r.plan in
  let tree = span_tree r.events in
  let span_total name = sum_spans (fun n -> n.name = name) tree in
  let items =
    Array.to_list plan.items
    |> List.mapi (fun k (item : C.Plan.item) ->
           match item with
           | C.Plan.Straight i ->
             let f = plan.pipe.stages.(i) in
             {
               item = k;
               label = "straight " ^ f.fname;
               item_ms = span_total ("exec.straight." ^ f.fname);
               stages = [ stage_profile counters env f ];
               tiles_planned = 0;
               tiles_run = 0;
               scratch_bytes = 0;
               scratch_attaches = 0;
               redundancy_predicted = None;
               redundancy_measured = None;
             }
           | C.Plan.Tiled g ->
             let naive = plan.opts.naive_overlap in
             let tiles_planned =
               try List.assoc k r.tiles with Not_found -> 0
             in
             let gc what =
               get counters (Printf.sprintf "exec/group%d/%s" k what)
             in
             let stages =
               Array.to_list g.members
               |> List.map (fun (m : C.Plan.member) ->
                      stage_profile counters env m.ms.func)
             in
             let useful =
               List.fold_left (fun a s -> a + s.domain_points) 0 stages
             in
             let computed = List.fold_left (fun a s -> a + s.points) 0 stages in
             let predicted =
               Array.fold_left
                 (fun a (m : C.Plan.member) ->
                   a
                   + Poly.Tiling.tile_points ~naive g.sched ~tile:g.tile env
                       m.ms
                     * tiles_planned)
                 0 g.members
             in
             let ratio num den =
               if den = 0 then None
               else Some ((float_of_int num /. float_of_int den) -. 1.)
             in
             {
               item = k;
               label = Printf.sprintf "group%d" k;
               item_ms = span_total (Printf.sprintf "exec.group%d" k);
               stages;
               tiles_planned;
               tiles_run = gc "tiles";
               scratch_bytes = gc "scratch_bytes";
               scratch_attaches = gc "scratch_attaches";
               redundancy_predicted = ratio predicted useful;
               redundancy_measured =
                 (if computed = 0 then None else ratio computed useful);
             })
  in
  {
    wall_ms = r.wall_ms;
    compile_ms = span_total "compile";
    io_ms = sum_spans (fun n -> n.cat = "io") tree;
    codegen_ms = sum_spans (fun n -> n.cat = "codegen") tree;
    tree;
    items;
  }

(* ---- rendering ---- *)

let pp_tree ppf nodes =
  let rec go indent (n : span_node) =
    Format.fprintf ppf "  %s%-*s %10.3f ms  (self %8.3f ms)@."
      (String.make indent ' ')
      (max 1 (30 - indent))
      n.name n.dur_ms n.self_ms;
    List.iter (go (indent + 2)) n.children
  in
  List.iter (go 0) nodes

let opt_ratio = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.3f" x

let pp ppf t =
  Format.fprintf ppf "== attributed spans (self vs child time) ==@.";
  pp_tree ppf t.tree;
  Format.fprintf ppf
    "== phase totals ==@.  compile %10.3f ms@.  exec    %10.3f ms@.  io      \
     %10.3f ms@.  codegen %10.3f ms@."
    t.compile_ms t.wall_ms t.io_ms t.codegen_ms;
  Format.fprintf ppf "== items ==@.";
  List.iter
    (fun it ->
      Format.fprintf ppf
        "  [%d] %-24s %10.3f ms  tiles %d/%d  scratch %.1f KiB (%d \
         attaches)  redundancy pred=%s meas=%s@."
        it.item it.label it.item_ms it.tiles_run it.tiles_planned
        (float_of_int it.scratch_bytes /. 1024.)
        it.scratch_attaches
        (opt_ratio it.redundancy_predicted)
        (opt_ratio it.redundancy_measured);
      List.iter
        (fun s ->
          Format.fprintf ppf
            "        %-20s rows k/c/q %d/%d/%d  points %d (domain %d)%s@."
            s.stage s.rows_kernel s.rows_closure s.rows_cond s.points
            s.domain_points
            (if s.kernel_kept + s.kernel_dropped = 0 then ""
             else
               Printf.sprintf "  kernel kept %d dropped %d" s.kernel_kept
                 s.kernel_dropped))
        it.stages)
    t.items
