(* Noise-aware performance regression gate: load a committed bench
   baseline (BENCH_PRn.json), match its cells against freshly measured
   values, and flag cells whose metric fell more than the tolerance
   below the baseline.  Comparisons are meant for machine-independent
   "higher is better" ratios (the kernel_speedup_* columns) — absolute
   milliseconds recorded on another machine are not comparable. *)

module Trace = Polymage_util.Trace

type measurement = {
  app : string;
  size : string;
  metric : string;
  value : float;
  noise : float;
      (* relative dispersion of the measurement (0 when unknown, as
         for baseline cells loaded from JSON); widens the cell's
         regression bar so a noisy run cannot hard-fail the gate *)
}

type host = {
  cores : int;
  workers : int;
  compiler : string;
}

type baseline = {
  schema_version : int;  (* 1 when the file predates the field *)
  bench : string;
  scale : int;
  backend : string;  (* "native" for v1/v2 files, which predate it *)
  tier : string;
      (* schema v4 execution tier; for v1-v3 files it defaults to the
         backend, which itself defaults to "native" *)
  mode : string;
      (* schema v5 measurement mode: "oneshot" (a fresh process per
         measurement — every earlier schema) or "serve" (request
         latency through the long-lived server) *)
  isa : string;
      (* schema v7 explicit-SIMD level the C backend emitted for
         ("off", "sse2", "avx2", "avx512"); "" for earlier files,
         which predate explicit SIMD codegen *)
  host : host option;  (* schema v3 host metadata, when present *)
  cells : measurement list;
}

let of_json (j : Trace.json) : (baseline, string) result =
  let field name = function
    | Trace.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  match j with
  | Trace.Obj _ -> (
    let schema_version =
      match field "schema_version" j with
      | Some (Trace.Num v) -> int_of_float v
      | _ -> 1
    in
    let bench =
      match field "bench" j with Some (Trace.Str s) -> s | _ -> ""
    in
    let scale =
      match field "scale" j with
      | Some (Trace.Num v) -> int_of_float v
      | _ -> 0
    in
    (* v1/v2 files predate the backend field; every one of them was
       measured on the native executor. *)
    let backend =
      match field "backend" j with
      | Some (Trace.Str s) -> s
      | _ -> "native"
    in
    (* v4 adds the execution tier (the backend field kept its coarse
       native-vs-c meaning for old gates); earlier files default to
       the backend value, which is exactly what they measured. *)
    let tier =
      match field "tier" j with Some (Trace.Str s) -> s | _ -> backend
    in
    (* v5 adds the measurement mode; every earlier file measured fresh
       one-shot processes. *)
    let mode =
      match field "mode" j with Some (Trace.Str s) -> s | _ -> "oneshot"
    in
    (* v7 adds the explicit-SIMD level; earlier files predate the
       knob and load with an empty level. *)
    let isa =
      match field "isa" j with Some (Trace.Str s) -> s | _ -> ""
    in
    let host =
      match field "host" j with
      | Some (Trace.Obj _ as h) ->
        let num name =
          match field name h with
          | Some (Trace.Num v) -> int_of_float v
          | _ -> 0
        in
        let compiler =
          match field "compiler" h with Some (Trace.Str s) -> s | _ -> ""
        in
        Some { cores = num "cores"; workers = num "workers"; compiler }
      | _ -> None
    in
    match field "apps" j with
    | Some (Trace.Arr apps) -> (
      try
        let cells =
          List.concat_map
            (fun app ->
              let str name =
                match field name app with
                | Some (Trace.Str s) -> s
                | _ -> failwith ("app entry missing string field " ^ name)
              in
              let name = str "name" in
              let size = str "size" in
              match app with
              | Trace.Obj fields ->
                List.filter_map
                  (fun (k, v) ->
                    match v with
                    | Trace.Num value ->
                      if k = "schema_version" then None
                      else
                        Some { app = name; size; metric = k; value; noise = 0. }
                    | _ -> None)
                  fields
              | _ -> failwith "apps entry is not an object")
            apps
        in
        Ok
          { schema_version; bench; scale; backend; tier; mode; isa; host; cells }
      with Failure msg -> Error msg)
    | _ -> Error "baseline has no \"apps\" array")
  | _ -> Error "baseline top level is not an object"

let load file =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> (
    match Trace.parse_json src with
    | Error e -> Error (Printf.sprintf "%s: parse error: %s" file e)
    | Ok j -> (
      match of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok b -> Ok b))

(* Numbers measured on different backends are not comparable: the
   compiled backend is 1-2 orders of magnitude faster than the
   interpreter, so a cross-backend "comparison" only ever reports an
   artifact of the setup.  Refuse loudly instead. *)
let check_backend (b : baseline) ~current =
  if b.backend = current then Ok ()
  else
    Error
      (Printf.sprintf
         "baseline was measured on the %S backend but the current run uses \
          %S; cross-backend comparisons are meaningless — re-measure the \
          baseline with --backend %s or compare against a %s-backend \
          baseline"
         b.backend current current current)

(* Same refusal one level finer: within the compiled backend, the
   subprocess and dlopen tiers time different things (the former's
   steady state includes spawn + blob I/O, the latter's does not), so
   a cross-tier "comparison" measures the dispatch mechanism, not the
   generated code. *)
let check_tier (b : baseline) ~current =
  if b.tier = current then Ok ()
  else
    Error
      (Printf.sprintf
         "baseline was measured on the %S execution tier but the current \
          run uses %S; cross-tier comparisons are meaningless — re-measure \
          the baseline on the %s tier or compare against a %s-tier baseline"
         b.tier current current current)

(* And once more for the measurement mode: a one-shot process pays
   compile and warm-up that a long-lived server amortizes away, so a
   serve-mode p50 against a one-shot median compares lifecycles, not
   performance. *)
let check_mode (b : baseline) ~current =
  if b.mode = current then Ok ()
  else
    Error
      (Printf.sprintf
         "baseline was measured in %S mode but the current run is in %S \
          mode; cross-mode comparisons are meaningless — re-measure the \
          baseline in %s mode or compare against a %s-mode baseline"
         b.mode current current current)

(* The SIMD level is part of what the generated code is; a baseline
   that recorded one (schema v7) only gates runs at the same level.
   Pre-v7 baselines recorded no level — they predate the knob — and
   remain comparable with any run, since the ratio columns the gates
   feed on divide the level's effect out of both sides. *)
let check_isa (b : baseline) ~current =
  if b.isa = "" || b.isa = current then Ok ()
  else
    Error
      (Printf.sprintf
         "baseline was measured at SIMD level %S but the current run emits \
          %S; re-measure the baseline at --simd %s or compare against a \
          %s baseline"
         b.isa current current current)

(* ---- comparison ---- *)

type cell = {
  capp : string;
  csize : string;
  cmetric : string;
  cbaseline : float;
  ccurrent : float;
  delta : float;  (* current/baseline - 1; negative = slower *)
  cnoise : float;  (* combined relative noise of both measurements *)
  cbar : float;
      (* the signed regression bar: the delta is a regression on the
         far side of it.  Negative for higher-is-better metrics,
         positive for lower-is-better ones. *)
  regressed : bool;
      (* higher-is-better: delta < -(tolerance + cnoise);
         lower-is-better: delta > +(tolerance + cnoise) *)
}

type outcome = {
  tolerance : float;
  cells : cell list;
  missing : measurement list;  (* baseline cells with no current value *)
}

let compare_cells ?(lower_is_better = fun _ -> false) ~tolerance
    ~(baseline : measurement list) ~(current : measurement list) () =
  let missing = ref [] in
  let cells =
    List.filter_map
      (fun (b : measurement) ->
        match
          List.find_opt
            (fun (c : measurement) -> c.app = b.app && c.metric = b.metric)
            current
        with
        | None ->
          missing := b :: !missing;
          None
        | Some c ->
          let delta =
            if b.value = 0. then 0. else (c.value /. b.value) -. 1.
          in
          let cnoise = b.noise +. c.noise in
          let bar = tolerance +. cnoise in
          Some
            {
              capp = b.app;
              csize = c.size;
              cmetric = b.metric;
              cbaseline = b.value;
              ccurrent = c.value;
              delta;
              cnoise;
              cbar = (if lower_is_better b.metric then bar else -.bar);
              regressed =
                (if lower_is_better b.metric then delta > bar
                 else delta < -.bar);
            })
      baseline
  in
  { tolerance; cells; missing = List.rev !missing }

let regressions o = List.filter (fun c -> c.regressed) o.cells
let ok o = regressions o = []

let pp ppf o =
  Format.fprintf ppf "%-16s %-10s %-24s %10s %10s %8s %8s@." "app" "size"
    "metric" "baseline" "current" "delta" "bar";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-16s %-10s %-24s %10.3f %10.3f %+7.1f%% %+7.1f%%%s@."
        c.capp c.csize c.cmetric c.cbaseline c.ccurrent (100. *. c.delta)
        (100. *. c.cbar)
        (if c.regressed then "  REGRESSED" else ""))
    o.cells;
  List.iter
    (fun (m : measurement) ->
      Format.fprintf ppf "%-16s %-10s %-24s %10.3f %10s@." m.app m.size
        m.metric m.value "(missing)")
    o.missing;
  let n = List.length (regressions o) in
  if n > 0 then
    Format.fprintf ppf
      "%d cell(s) regressed beyond the %.0f%% tolerance@." n
      (100. *. o.tolerance)
  else
    Format.fprintf ppf "no regressions beyond the %.0f%% tolerance (%d \
                        cells compared)@."
      (100. *. o.tolerance)
      (List.length o.cells)
