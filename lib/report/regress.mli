(** Noise-aware perf-regression gate for [polymage bench --compare].

    A baseline is a committed bench JSON file ([BENCH_PRn.json]):
    [{"schema_version": 2, "bench": ..., "scale": ..., "apps":
    [{"name", "size", <numeric metrics>...}]}].  Files that predate
    the [schema_version] field load as version 1.

    Comparison is cell-wise on (app, metric) and assumes
    higher-is-better ratio metrics (the [kernel_speedup_*] columns):
    a cell regresses when [current/baseline - 1] falls below
    [-(tolerance + noise)], where [noise] is the combined measured
    dispersion of the two cells — a noisy run widens its own bar
    instead of hard-failing the gate.  Absolute millisecond columns
    from another machine are not comparable — the caller chooses
    which metrics to pass. *)

type measurement = {
  app : string;
  size : string;
  metric : string;
  value : float;
  noise : float;
      (** relative dispersion of the measurement; 0 when unknown
          (baseline cells loaded from JSON) *)
}

type host = {
  cores : int;
  workers : int;
  compiler : string;
}

type baseline = {
  schema_version : int;  (** 1 when the file predates the field *)
  bench : string;
  scale : int;
  backend : string;
      (** which backend produced the numbers; ["native"] for v1/v2
          files, which predate the field *)
  tier : string;
      (** schema v4 execution tier (["native"], ["c"], ["c-dlopen"]);
          for v1-v3 files it defaults to [backend], which is what
          those files measured *)
  mode : string;
      (** schema v5 measurement mode: ["oneshot"] (a fresh process per
          measurement — every earlier schema) or ["serve"] (request
          latency through the long-lived server) *)
  isa : string;
      (** schema v7 explicit-SIMD level the C backend emitted
          (["off"], ["sse2"], ["avx2"], ["avx512"]); [""] for earlier
          files, which predate explicit SIMD codegen *)
  host : host option;  (** schema v3 host metadata, when present *)
  cells : measurement list;  (** every numeric field of every app *)
}

val of_json : Polymage_util.Trace.json -> (baseline, string) result
val load : string -> (baseline, string) result

val check_backend : baseline -> current:string -> (unit, string) result
(** Refuse cross-backend comparisons: numbers from the compiled
    backend and the interpreter differ by orders of magnitude, so a
    gate across them only measures the setup.  [Error] carries a
    user-facing explanation. *)

val check_tier : baseline -> current:string -> (unit, string) result
(** Refuse cross-tier comparisons within the compiled backend: the
    subprocess tier's steady state includes process spawn and blob
    I/O, the dlopen tier's does not, so a gate across tiers measures
    the dispatch mechanism rather than the generated code. *)

val check_mode : baseline -> current:string -> (unit, string) result
(** Refuse cross-mode comparisons: a one-shot process pays compile and
    warm-up that a long-lived server amortizes away, so a serve-mode
    percentile against a one-shot median compares lifecycles, not
    performance. *)

val check_isa : baseline -> current:string -> (unit, string) result
(** Refuse cross-SIMD-level comparisons when the baseline recorded a
    level (schema v7).  Pre-v7 baselines ([isa = ""]) pass against any
    current level: they predate the knob, and the ratio columns the
    gates feed on divide the level's effect out of both sides. *)

type cell = {
  capp : string;
  csize : string;
  cmetric : string;
  cbaseline : float;
  ccurrent : float;
  delta : float;  (** [current/baseline - 1]; negative = slower *)
  cnoise : float;  (** combined relative noise of both measurements *)
  cbar : float;
      (** the signed regression bar ([delta] past it = regression):
          [-(tolerance + cnoise)] for higher-is-better metrics,
          [+(tolerance + cnoise)] for lower-is-better ones *)
  regressed : bool;
      (** higher-is-better: [delta < -(tolerance + cnoise)];
          lower-is-better: [delta > +(tolerance + cnoise)] *)
}

type outcome = {
  tolerance : float;
  cells : cell list;
  missing : measurement list;
      (** baseline cells with no matching current measurement *)
}

val compare_cells :
  ?lower_is_better:(string -> bool) ->
  tolerance:float ->
  baseline:measurement list ->
  current:measurement list ->
  unit ->
  outcome
(** Cell-wise comparison on (app, metric).  [lower_is_better], given a
    metric name, flips the regression direction for that metric
    (latency ratios); the default treats every metric as
    higher-is-better (speedup ratios). *)

val regressions : outcome -> cell list
val ok : outcome -> bool
val pp : Format.formatter -> outcome -> unit
