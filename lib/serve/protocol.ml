(* The serve wire protocol: length-prefixed frames carrying pipeline
   requests and responses, with input and output values embedded as
   PMRAW blobs (Rawio) — the compiled backend's exchange format reused
   unchanged at the process boundary.

   Frame layout (all integers little-endian):

     8 bytes   magic "PMSRV01\n"
     1 byte    kind: 'Q' request, 'R' ok response, 'E' error response,
               'S' stats request, 'T' stats response
     u32       payload length (bounded by [max_payload])
     payload

   Stats request payload: empty ('S' with any payload bytes is
   malformed).  Stats response payload: a UTF-8 JSON document — the
   schema-versioned snapshot described in DESIGN.md "Serve
   telemetry".

   Request payload:
     str16 app name
     u16 n_params; each: str16 name, i64 value
     u16 n_images; each: str16 name, u32 blob length, PMRAW blob

   Ok payload:
     str16 serving-tier label
     u16 n_outputs; each: str16 name, u8 rank, rank x i64 lower
       bounds, u32 blob length, PMRAW blob

   Error payload (a structured {!Err.t} crossing the wire):
     str16 phase name, str16 stage ("" = none), str32 detail

   str16/str32 are u16-/u32-length-prefixed byte strings.  Every
   decoding failure raises a phase-[IO] error with stage ["serve"];
   the server turns those into error responses and stays up. *)

module Rt = Polymage_rt
module Err = Polymage_util.Err
module Rawio = Polymage_backend.Rawio

let magic = "PMSRV01\n"
let header_bytes = 8 + 1 + 4

(* Generous for image pipelines, small enough that a hostile length
   prefix cannot make the server allocate without bound. *)
let max_payload = 256 * 1024 * 1024

type request = {
  app : string;
  params : (string * int) list;
  images : (string * bytes) list;  (* name -> embedded PMRAW blob *)
}

type response =
  | Ok_response of {
      tier : string;  (* which tier served the request *)
      outputs : (string * Rt.Buffer.t) list;
    }
  | Err_response of Err.t

let fail fmt = Err.failf Err.IO ~stage:"serve" fmt

(* ---- primitive writers ---- *)

let add_u16 b v =
  if v < 0 || v > 0xffff then fail "Protocol: u16 out of range (%d)" v;
  Buffer.add_uint16_le b v

let add_u32 b v =
  if v < 0 then fail "Protocol: u32 out of range (%d)" v;
  Buffer.add_int32_le b (Int32.of_int v)

let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* ---- primitive readers over a payload ---- *)

type cursor = { buf : bytes; mutable pos : int; stop : int }

let need c n =
  if c.pos + n > c.stop then fail "Protocol: truncated payload"

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then fail "Protocol: u32 out of range";
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let get_str16 c =
  let n = get_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_str32 c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_bytes c n =
  need c n;
  let s = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* ---- framing ---- *)

let frame ~kind payload =
  let n = Buffer.length payload in
  if n > max_payload then fail "Protocol: payload too large (%d bytes)" n;
  let b = Buffer.create (header_bytes + n) in
  Buffer.add_string b magic;
  Buffer.add_char b kind;
  Buffer.add_int32_le b (Int32.of_int n);
  Buffer.add_buffer b payload;
  Buffer.to_bytes b

let known_kind = function 'Q' | 'R' | 'E' | 'S' | 'T' -> true | _ -> false

let parse_frame bytes =
  let len = Bytes.length bytes in
  if len < header_bytes then fail "Protocol: truncated frame header";
  if Bytes.sub_string bytes 0 8 <> magic then fail "Protocol: bad magic";
  let kind = Bytes.get bytes 8 in
  if not (known_kind kind) then
    fail "Protocol: unknown frame kind %C" kind;
  let n = Int32.to_int (Bytes.get_int32_le bytes 9) in
  if n < 0 || n > max_payload then
    fail "Protocol: oversized length prefix (%d bytes, bound %d)" n max_payload;
  if len < header_bytes + n then fail "Protocol: truncated payload";
  (kind, Bytes.sub bytes header_bytes n)

(* ---- requests ---- *)

let encode_request ~app ~params ~images =
  let b = Buffer.create 1024 in
  add_str16 b app;
  add_u16 b (List.length params);
  List.iter
    (fun (name, v) ->
      add_str16 b name;
      add_i64 b v)
    params;
  add_u16 b (List.length images);
  List.iter
    (fun (name, buf) ->
      add_str16 b name;
      let blob = Rawio.encode buf in
      add_u32 b (Bytes.length blob);
      Buffer.add_bytes b blob)
    images;
  frame ~kind:'Q' b

let decode_request payload =
  let c = { buf = payload; pos = 0; stop = Bytes.length payload } in
  let app = get_str16 c in
  let n_params = get_u16 c in
  let params =
    List.init n_params (fun _ ->
        let name = get_str16 c in
        let v = get_i64 c in
        (name, v))
  in
  let n_images = get_u16 c in
  let images =
    List.init n_images (fun _ ->
        let name = get_str16 c in
        let n = get_u32 c in
        let blob = get_bytes c n in
        (* vet the blob header here so a malformed image is reported
           against its name, not deep inside execution *)
        let dims = Rawio.peek_dims ~stage:("image " ^ name) blob ~off:0
            ~len:(Bytes.length blob) in
        if Rawio.blob_bytes dims <> Bytes.length blob then
          fail "Protocol: image %s blob has trailing bytes" name;
        (name, blob))
  in
  if c.pos <> c.stop then fail "Protocol: trailing bytes after request";
  { app; params; images }

(* ---- stats frames ---- *)

let encode_stats_request () = frame ~kind:'S' (Buffer.create 0)

let decode_stats_request payload =
  if Bytes.length payload <> 0 then
    fail "Protocol: stats request carries %d payload bytes (must be empty)"
      (Bytes.length payload)

let encode_stats_response json =
  let b = Buffer.create (String.length json + 16) in
  Buffer.add_string b json;
  frame ~kind:'T' b

let decode_stats_response payload = Bytes.to_string payload

(* ---- responses ---- *)

let encode_response = function
  | Ok_response { tier; outputs } ->
    let b = Buffer.create 1024 in
    add_str16 b tier;
    add_u16 b (List.length outputs);
    List.iter
      (fun (name, (buf : Rt.Buffer.t)) ->
        add_str16 b name;
        let rank = Array.length buf.dims in
        if rank > 0xff then fail "Protocol: rank too large";
        Buffer.add_char b (Char.chr rank);
        Array.iter (fun l -> add_i64 b l) buf.lo;
        let blob = Rawio.encode buf in
        add_u32 b (Bytes.length blob);
        Buffer.add_bytes b blob)
      outputs;
    frame ~kind:'R' b
  | Err_response e ->
    let b = Buffer.create 256 in
    add_str16 b (Err.phase_name e.Err.phase);
    add_str16 b (Option.value ~default:"" e.Err.stage);
    add_str32 b e.Err.detail;
    frame ~kind:'E' b

let decode_response ~kind payload =
  let c = { buf = payload; pos = 0; stop = Bytes.length payload } in
  match kind with
  | 'R' ->
    let tier = get_str16 c in
    let n = get_u16 c in
    let outputs =
      List.init n (fun _ ->
          let name = get_str16 c in
          let rank = get_u8 c in
          let lo = Array.init rank (fun _ -> get_i64 c) in
          let blob_len = get_u32 c in
          let off = c.pos in
          need c blob_len;
          c.pos <- c.pos + blob_len;
          let dims =
            Rawio.peek_dims ~stage:("output " ^ name) c.buf ~off ~len:blob_len
          in
          (name, Rawio.decode ~stage:("output " ^ name) c.buf ~off
             ~len:blob_len ~lo ~dims))
    in
    if c.pos <> c.stop then fail "Protocol: trailing bytes after response";
    Ok_response { tier; outputs }
  | 'E' ->
    let phase_s = get_str16 c in
    let stage = get_str16 c in
    let detail = get_str32 c in
    let phase =
      match Err.phase_of_name phase_s with
      | Some p -> p
      | None -> fail "Protocol: unknown error phase %S" phase_s
    in
    Err_response
      (Err.error ?stage:(if stage = "" then None else Some stage) phase detail)
  | k -> fail "Protocol: frame kind %C is not a response" k

(* ---- file-descriptor transport ---- *)

(* On a socket with SO_RCVTIMEO/SO_SNDTIMEO set (client timeouts),
   expiry surfaces as EAGAIN/EWOULDBLOCK; report it as a structured
   timeout rather than a raw errno.  Descriptors without timeouts —
   the server side — never see these. *)
let timed_out op =
  fail "Protocol: timed out %s (peer not responding within the deadline)" op

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd bytes !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      timed_out "writing a frame"
  done

let really_read fd bytes off len =
  let got = ref 0 in
  (try
     while !got < len do
       let n =
         try Unix.read fd bytes (off + !got) (len - !got)
         with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
           timed_out "waiting for a frame"
       in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

let read_frame fd =
  let header = Bytes.create header_bytes in
  match really_read fd header 0 header_bytes with
  | 0 -> None (* clean EOF at a frame boundary *)
  | n when n < header_bytes -> fail "Protocol: truncated frame header"
  | _ ->
    if Bytes.sub_string header 0 8 <> magic then fail "Protocol: bad magic";
    let kind = Bytes.get header 8 in
    if not (known_kind kind) then
      fail "Protocol: unknown frame kind %C" kind;
    let n = Int32.to_int (Bytes.get_int32_le header 9) in
    if n < 0 || n > max_payload then
      fail "Protocol: oversized length prefix (%d bytes, bound %d)" n
        max_payload;
    let payload = Bytes.create n in
    if really_read fd payload 0 n < n then fail "Protocol: truncated payload";
    Some (kind, payload)
