(* The serve daemon's core: one long-lived process multiplexing
   pipeline requests over the layers the CLI pays for per invocation —
   one compiled plan per (app, params) key, one shared artifact cache,
   one worker pool, and (on the Auto tier) one background compile per
   plan whose artifact hot-swaps in after canary promotion.

   Concurrency shape: client domains submit requests into a bounded
   FIFO; a single dispatcher domain drains it and executes.  The
   dispatcher is alone on purpose — [Pool.parallel_for] is not
   reentrant and a request already fans its tiles out over every
   worker, so a second in-flight request would add contention, not
   throughput.  Batching (consecutive same-plan requests served
   back-to-back, optionally after a short collection window) amortizes
   dispatch without reordering anything.

   Admission control is the degradation ladder turned outward: at
   [shed_depth] pending requests a request is still served, but on the
   shed plan (Options.shed: the naive rung — no grouping, no
   vectorization, no kernels) so the queue drains faster; at
   [max_depth] it is rejected outright with a structured error.  Shed
   before queue, reject before hang.

   Telemetry has two layers, separately gated.  Metrics counters
   (serve/requests, serve/responses, serve/batched, serve/shed,
   serve/rejected, serve/invalid, serve/degraded, serve/served/<tier>)
   and the serve/queue_depth and serve/connections gauges follow
   [Metrics.enabled] as everywhere else.  The serve-local layer —
   per-plan counters, queue-wait/exec/end-to-end histograms, the
   slow-request ring, the access log, and the per-request timestamps
   feeding all of them — is gated on [config.telemetry]: with it off,
   the request path takes no clock readings and touches no histogram,
   so the hot path is the PR 8 one plus a single [None] branch.

   Every request carries a request id (rid) threaded from the
   listener through parse -> enqueue -> dispatch -> exec -> respond as
   trace spans; queue wait is attributed explicitly by a span whose
   endpoints were measured on the submitting and dispatching
   domains. *)

open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Trace = Polymage_util.Trace
module Histogram = Polymage_util.Histogram
module Exec_tier = Polymage_backend.Exec_tier
module Cache = Polymage_backend.Cache
module Rawio = Polymage_backend.Rawio

type config = {
  tier : Exec_tier.t;
  workers : int;
  batch_max : int;
  batch_window_ms : int;
  shed_depth : int;
  max_depth : int;
  cache_dir : string option;
  telemetry : bool;
  access_log : string option;
  simd : C.Options.simd_mode;
}

let default_config ?cache_dir () =
  {
    tier = Exec_tier.Auto;
    workers = 2;
    batch_max = 8;
    batch_window_ms = 0;
    shed_depth = 64;
    max_depth = 256;
    cache_dir;
    telemetry = true;
    access_log = None;
    simd = C.Options.Simd_auto;
  }

(* ---- telemetry state ---- *)

(* Per-plan request accounting: plain atomics (not Metrics counters)
   so per-plan numbers survive a [Metrics.reset] and exist even when
   the global registry is disabled, plus one histogram per phase. *)
type plan_tel = {
  t_requests : int Atomic.t;
  t_batched : int Atomic.t;
  t_shed : int Atomic.t;
  t_rejected : int Atomic.t;
  t_errors : int Atomic.t;
  h_queue : Histogram.t;  (* enqueue -> dequeue, ns *)
  h_exec : Histogram.t;  (* execution proper, ns *)
  h_total : Histogram.t;  (* submit entry -> reply ready, ns *)
}

let make_plan_tel () =
  {
    t_requests = Atomic.make 0;
    t_batched = Atomic.make 0;
    t_shed = Atomic.make 0;
    t_rejected = Atomic.make 0;
    t_errors = Atomic.make 0;
    h_queue = Histogram.create ();
    h_exec = Histogram.create ();
    h_total = Histogram.create ();
  }

(* One completed request, as retained by the slow-request ring and the
   access log.  [r_key] is "" when the request never resolved to a
   plan (unknown app, bad parameter, malformed image). *)
type req_record = {
  r_rid : int;
  r_app : string;
  r_key : string;
  r_tier : string;
  r_outcome : string;  (* "ok" | "error" | "shed" | "rejected" | "invalid" *)
  r_queue_ns : int;
  r_exec_ns : int;
  r_total_ns : int;
  r_bytes_in : int;
  r_bytes_out : int;
  r_wall : float;  (* completion time, epoch seconds *)
}

let ring_size = 256
let slow_report = 8

type telemetry = {
  g_queue : Histogram.t;
  g_exec : Histogram.t;
  g_total : Histogram.t;  (* every request, including rejected/invalid *)
  ring : req_record option array;
  mutable ring_pos : int;
  rmu : Mutex.t;
  log : out_channel option;
  lmu : Mutex.t;
}

type plan_state = {
  key : string;
  app : App.t;
  env : Types.bindings;
  plan : C.Plan.t;
  shed_plan : C.Plan.t Lazy.t;  (* forced by the dispatcher only *)
  auto : Exec_tier.auto option;  (* background compile, Auto tier *)
  ptel : plan_tel;
}

(* One table entry per plan key.  The table mutex only guards
   lookup/insert; the compile itself happens outside it, publishing
   through the slot's own lock — so one plan's cold compile never
   blocks another connection's lookup of an already-compiled plan. *)
type plan_slot = {
  smu : Mutex.t;
  scv : Condition.t;
  mutable built : plan_build;
}

and plan_build = Building | Ready of plan_state | Failed of exn

type job = {
  ps : plan_state;
  images : (Ast.image * Rt.Buffer.t) list;
  rid : int;
  bytes_in : int;
  t_submit_ns : int;  (* 0 when telemetry is off *)
  mutable t_enq_ns : int;
  mutable t_deq_ns : int;
  mutable shed : bool;
  mutable reply : Protocol.response option;
  jmu : Mutex.t;
  jcv : Condition.t;
}

type t = {
  cfg : config;
  pool : Rt.Pool.t;
  plans : (string, plan_slot) Hashtbl.t;
  pmu : Mutex.t;
  q : job Queue.t;
  qmu : Mutex.t;
  qcv : Condition.t;
  tel : telemetry option;
  next_rid : int Atomic.t;
  started_ns : int;
  started_wall : float;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
}

let next_rid t = Atomic.fetch_and_add t.next_rid 1

(* ---- request records: ring + access log ---- *)

let record_json ?ts (r : req_record) =
  let ms ns = float_of_int ns /. 1e6 in
  let base =
    [
      ("rid", Trace.Num (float_of_int r.r_rid));
      ("app", Trace.Str r.r_app);
      ("plan", Trace.Str r.r_key);
      ("tier", Trace.Str r.r_tier);
      ("outcome", Trace.Str r.r_outcome);
      ("queue_ms", Trace.Num (ms r.r_queue_ns));
      ("exec_ms", Trace.Num (ms r.r_exec_ns));
      ("total_ms", Trace.Num (ms r.r_total_ns));
      ("bytes_in", Trace.Num (float_of_int r.r_bytes_in));
      ("bytes_out", Trace.Num (float_of_int r.r_bytes_out));
    ]
  in
  Trace.Obj
    (match ts with
    | None -> base
    | Some w -> ("ts", Trace.Num w) :: base)

let record_request tel (r : req_record) =
  Mutex.protect tel.rmu (fun () ->
      tel.ring.(tel.ring_pos mod ring_size) <- Some r;
      tel.ring_pos <- tel.ring_pos + 1);
  match tel.log with
  | None -> ()
  | Some oc ->
    let line = Trace.json_to_string (record_json ~ts:r.r_wall r) in
    Mutex.protect tel.lmu (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

(* ---- request resolution (caller domain) ---- *)

let env_of_request (app : App.t) params =
  let known (p : Types.param) = p.Types.pname in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (p, _) -> known p = name) app.small_env) then
        Err.failf Err.Dsl ~stage:"serve" "unknown parameter %S for %s (has: %s)"
          name app.name
          (String.concat ", " (List.map (fun (p, _) -> known p) app.small_env)))
    params;
  List.map
    (fun (p, dv) ->
      (p, Option.value ~default:dv (List.assoc_opt (known p) params)))
    app.small_env

let plan_key (app : App.t) env =
  app.name ^ "?"
  ^ String.concat "&"
      (List.map
         (fun ((p : Types.param), v) ->
           Printf.sprintf "%s=%d" p.Types.pname v)
         env)

let plan_state t (app : App.t) env =
  let key = plan_key app env in
  let slot, builder =
    Mutex.protect t.pmu (fun () ->
        match Hashtbl.find_opt t.plans key with
        | Some s -> (s, false)
        | None ->
          let s =
            { smu = Mutex.create (); scv = Condition.create ();
              built = Building }
          in
          Hashtbl.replace t.plans key s;
          (s, true))
  in
  if builder then (
    match
      let opts =
        C.Options.with_simd t.cfg.simd
          (C.Options.opt_vec ~workers:t.cfg.workers ~estimates:env ())
      in
      let plan = C.Compile.run opts ~outputs:app.outputs in
      {
        key;
        app;
        env;
        plan;
        shed_plan =
          lazy (C.Compile.run (C.Options.shed opts) ~outputs:app.outputs);
        auto =
          (if t.cfg.tier = Exec_tier.Auto then
             Some (Exec_tier.auto_start ?cache_dir:t.cfg.cache_dir plan)
           else None);
        ptel = make_plan_tel ();
      }
    with
    | ps ->
      Mutex.protect slot.smu (fun () ->
          slot.built <- Ready ps;
          Condition.broadcast slot.scv);
      ps
    | exception e ->
      (* a failed build must not poison the key: waiters see this
         failure, but later requests retry from scratch *)
      Mutex.protect t.pmu (fun () ->
          match Hashtbl.find_opt t.plans key with
          | Some s when s == slot -> Hashtbl.remove t.plans key
          | _ -> ());
      Mutex.protect slot.smu (fun () ->
          slot.built <- Failed e;
          Condition.broadcast slot.scv);
      raise e)
  else
    Mutex.protect slot.smu (fun () ->
        let rec settled () =
          match slot.built with
          | Building ->
            Condition.wait slot.scv slot.smu;
            settled ()
          | Ready ps -> ps
          | Failed e -> raise e
        in
        settled ())

let pp_dims dims =
  String.concat "x" (Array.to_list (Array.map string_of_int dims))

let images_of_request ps (req : Protocol.request) =
  let pipe_images = ps.plan.C.Plan.pipe.Pipeline.images in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (im : Ast.image) -> im.Ast.iname = name)
                pipe_images)
      then
        Err.failf Err.Dsl ~stage:"serve" "unknown input image %S for %s" name
          ps.app.App.name)
    req.images;
  List.map
    (fun (im : Ast.image) ->
      match List.assoc_opt im.Ast.iname req.images with
      | None ->
        Err.failf Err.Dsl ~stage:"serve" "missing input image %S for %s"
          im.Ast.iname ps.app.App.name
      | Some blob ->
        let stage = "image " ^ im.Ast.iname in
        let dims =
          Array.of_list (List.map (fun e -> Abound.eval e ps.env) im.Ast.iextents)
        in
        let got =
          Rawio.peek_dims ~stage blob ~off:0 ~len:(Bytes.length blob)
        in
        if got <> dims then
          Err.failf Err.IO ~stage:"serve"
            "geometry mismatch for image %S: got [%s], want [%s]"
            im.Ast.iname (pp_dims got) (pp_dims dims);
        let lo = Array.make (Array.length dims) 0 in
        (im, Rawio.decode ~stage blob ~off:0 ~len:(Bytes.length blob) ~lo ~dims))
    pipe_images

(* ---- execution (dispatcher domain) ---- *)

let serve_one t (job : job) =
  let ps = job.ps in
  let rid_s = string_of_int job.rid in
  (match t.tel with
  | None -> ()
  | Some _ ->
    (* queue wait, measured across domains: enqueue on the submitter,
       dequeue on the dispatcher *)
    Trace.emit_span ~cat:"serve"
      ~args:[ ("rid", rid_s); ("key", ps.key) ]
      ~t_start_ns:job.t_enq_ns ~t_end_ns:job.t_deq_ns "serve.queue_wait");
  let t_exec0 = match t.tel with None -> 0 | Some _ -> Trace.now_ns () in
  let resp =
    try
      Rt.Fault.hit "serve_request";
      Trace.with_span ~cat:"serve"
        ~args:
          [ ("rid", rid_s); ("app", ps.app.App.name); ("key", ps.key) ]
        "serve.exec"
        (fun () ->
          let result, tier_label, degradations =
            if job.shed then
              let r, d =
                Rt.Executor.run_safe ~pool:t.pool (Lazy.force ps.shed_plan)
                  ps.env ~images:job.images
              in
              (r, "native-shed", d)
            else
              match ps.auto with
              | Some a ->
                let (r, _st), d, served =
                  Exec_tier.auto_run ~pool:t.pool a ps.env ~images:job.images
                in
                (r, served, d)
              | None ->
                let (r, _st), d =
                  Exec_tier.run_safe ?cache_dir:t.cfg.cache_dir ~pool:t.pool
                    t.cfg.tier ps.plan ps.env ~images:job.images
                in
                (r, Exec_tier.to_string t.cfg.tier, d)
          in
          List.iter (fun _ -> Metrics.bumpn "serve/degraded") degradations;
          Metrics.bumpn ("serve/served/" ^ tier_label);
          Protocol.Ok_response
            {
              tier = tier_label;
              outputs =
                List.map
                  (fun ((f : Ast.func), b) -> (f.Ast.fname, b))
                  result.Rt.Executor.outputs;
            })
    with e -> Protocol.Err_response (Err.of_exn e)
  in
  (match t.tel with
  | None -> ()
  | Some tel ->
    let t_done = Trace.now_ns () in
    let queue_ns = max 0 (job.t_deq_ns - job.t_enq_ns)
    and exec_ns = max 0 (t_done - t_exec0)
    and total_ns = max 0 (t_done - job.t_submit_ns) in
    let tier, outcome, bytes_out =
      match resp with
      | Protocol.Ok_response { tier; outputs } ->
        ( tier,
          (if job.shed then "shed" else "ok"),
          List.fold_left
            (fun acc ((_, b) : _ * Rt.Buffer.t) ->
              acc + Rawio.blob_bytes b.Rt.Buffer.dims)
            0 outputs )
      | Protocol.Err_response _ ->
        Atomic.incr ps.ptel.t_errors;
        ("-", "error", 0)
    in
    Histogram.record tel.g_queue queue_ns;
    Histogram.record tel.g_exec exec_ns;
    Histogram.record tel.g_total total_ns;
    Histogram.record ps.ptel.h_queue queue_ns;
    Histogram.record ps.ptel.h_exec exec_ns;
    Histogram.record ps.ptel.h_total total_ns;
    record_request tel
      {
        r_rid = job.rid;
        r_app = ps.app.App.name;
        r_key = ps.key;
        r_tier = tier;
        r_outcome = outcome;
        r_queue_ns = queue_ns;
        r_exec_ns = exec_ns;
        r_total_ns = total_ns;
        r_bytes_in = job.bytes_in;
        r_bytes_out = bytes_out;
        r_wall = Unix.gettimeofday ();
      });
  Metrics.bumpn "serve/responses";
  Mutex.protect job.jmu (fun () ->
      job.reply <- Some resp;
      Condition.broadcast job.jcv)

let rec dispatch_loop t =
  Mutex.lock t.qmu;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.qcv t.qmu
  done;
  if Queue.is_empty t.q then Mutex.unlock t.qmu (* stopping, drained *)
  else begin
    let job = Queue.pop t.q in
    Metrics.gauge_addn "serve/queue_depth" (-1);
    Mutex.unlock t.qmu;
    if t.tel <> None then job.t_deq_ns <- Trace.now_ns ();
    (* The batching window: hold the first request briefly so
       same-plan requests arriving together ride one dispatch. *)
    if t.cfg.batch_window_ms > 0 then
      Unix.sleepf (float_of_int t.cfg.batch_window_ms /. 1000.);
    let batch = ref [ job ]
    and n = ref 1 in
    Mutex.protect t.qmu (fun () ->
        while
          !n < t.cfg.batch_max
          && (not (Queue.is_empty t.q))
          && (Queue.peek t.q).ps.key = job.ps.key
        do
          let j = Queue.pop t.q in
          if t.tel <> None then j.t_deq_ns <- Trace.now_ns ();
          batch := j :: !batch;
          Metrics.gauge_addn "serve/queue_depth" (-1);
          incr n
        done);
    Metrics.addn "serve/batched" (!n - 1);
    if t.tel <> None then
      ignore (Atomic.fetch_and_add job.ps.ptel.t_batched (!n - 1));
    List.iter (serve_one t) (List.rev !batch);
    dispatch_loop t
  end

(* ---- public interface ---- *)

let create cfg =
  let tel =
    if not cfg.telemetry then None
    else
      Some
        {
          g_queue = Histogram.create ();
          g_exec = Histogram.create ();
          g_total = Histogram.create ();
          ring = Array.make ring_size None;
          ring_pos = 0;
          rmu = Mutex.create ();
          log =
            (match cfg.access_log with
            | None -> None
            | Some file ->
              Some (open_out_gen [ Open_append; Open_creat ] 0o644 file));
          lmu = Mutex.create ();
        }
  in
  let t =
    {
      cfg;
      pool = Rt.Pool.create (max 1 cfg.workers);
      plans = Hashtbl.create 8;
      pmu = Mutex.create ();
      q = Queue.create ();
      qmu = Mutex.create ();
      qcv = Condition.create ();
      tel;
      next_rid = Atomic.make 1;
      started_ns = Trace.now_ns ();
      started_wall = Unix.gettimeofday ();
      stopping = false;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop t));
  t

(* A request that never reached the dispatcher (invalid or rejected)
   still lands in the ring, the access log and the end-to-end
   histogram, so histogram totals always equal serve/requests. *)
let record_short t ~rid ~app ~key ~outcome ~bytes_in ~t_submit_ns =
  match t.tel with
  | None -> ()
  | Some tel ->
    let total_ns = max 0 (Trace.now_ns () - t_submit_ns) in
    Histogram.record tel.g_total total_ns;
    record_request tel
      {
        r_rid = rid;
        r_app = app;
        r_key = key;
        r_tier = "-";
        r_outcome = outcome;
        r_queue_ns = 0;
        r_exec_ns = 0;
        r_total_ns = total_ns;
        r_bytes_in = bytes_in;
        r_bytes_out = 0;
        r_wall = Unix.gettimeofday ();
      }

let submit ?rid t (req : Protocol.request) =
  let rid = match rid with Some r -> r | None -> next_rid t in
  let rid_s = string_of_int rid in
  Trace.with_span ~cat:"serve"
    ~args:[ ("rid", rid_s); ("app", req.Protocol.app) ]
    "serve.request"
    (fun () ->
      Metrics.bumpn "serve/requests";
      let t_submit_ns =
        match t.tel with None -> 0 | Some _ -> Trace.now_ns ()
      in
      let bytes_in =
        match t.tel with
        | None -> 0
        | Some _ ->
          List.fold_left
            (fun acc (_, blob) -> acc + Bytes.length blob)
            0 req.Protocol.images
      in
      match
        let app =
          try Apps.find req.Protocol.app
          with Not_found ->
            Err.failf Err.Dsl ~stage:"serve" "unknown app %S (known: %s)"
              req.Protocol.app
              (String.concat ", " Apps.names)
        in
        let env = env_of_request app req.Protocol.params in
        let ps = plan_state t app env in
        (ps, images_of_request ps req)
      with
      | exception e ->
        Metrics.bumpn "serve/invalid";
        record_short t ~rid ~app:req.Protocol.app ~key:"" ~outcome:"invalid"
          ~bytes_in ~t_submit_ns;
        Protocol.Err_response (Err.of_exn e)
      | ps, images -> (
        if t.tel <> None then Atomic.incr ps.ptel.t_requests;
        let job =
          {
            ps;
            images;
            rid;
            bytes_in;
            t_submit_ns;
            t_enq_ns = 0;
            t_deq_ns = 0;
            shed = false;
            reply = None;
            jmu = Mutex.create ();
            jcv = Condition.create ();
          }
        in
        let verdict =
          Mutex.protect t.qmu (fun () ->
              if t.stopping then `Reject "server is shutting down"
              else
                let depth = Queue.length t.q in
                if depth >= t.cfg.max_depth then
                  `Reject
                    (Printf.sprintf
                       "overloaded: queue depth %d at bound %d; retry later"
                       depth t.cfg.max_depth)
                else begin
                  if depth >= t.cfg.shed_depth then job.shed <- true;
                  if t.tel <> None then job.t_enq_ns <- Trace.now_ns ();
                  Queue.push job t.q;
                  Metrics.gauge_addn "serve/queue_depth" 1;
                  Condition.signal t.qcv;
                  `Admitted
                end)
        in
        match verdict with
        | `Reject why ->
          Metrics.bumpn "serve/rejected";
          if t.tel <> None then Atomic.incr ps.ptel.t_rejected;
          record_short t ~rid ~app:ps.app.App.name ~key:ps.key
            ~outcome:"rejected" ~bytes_in ~t_submit_ns;
          Protocol.Err_response (Err.error ~stage:"serve" Err.Exec
              ("admission: " ^ why))
        | `Admitted ->
          Trace.instant ~cat:"serve" ~args:[ ("rid", rid_s) ] "serve.enqueue";
          if job.shed then begin
            Metrics.bumpn "serve/shed";
            if t.tel <> None then Atomic.incr job.ps.ptel.t_shed
          end;
          Mutex.protect job.jmu (fun () ->
              while job.reply = None do
                Condition.wait job.jcv job.jmu
              done;
              Option.get job.reply)))

(* ---- stats snapshot ---- *)

let stats_schema_version = 1

let quantile_json h =
  let s = Histogram.snapshot h in
  let ms v = v /. 1e6 in
  Trace.Obj
    [
      ("count", Trace.Num (float_of_int s.Histogram.total));
      ("p50_ms", Trace.Num (ms (Histogram.quantile s 0.5)));
      ("p90_ms", Trace.Num (ms (Histogram.quantile s 0.9)));
      ("p99_ms", Trace.Num (ms (Histogram.quantile s 0.99)));
      ("p999_ms", Trace.Num (ms (Histogram.quantile s 0.999)));
      ("mean_ms", Trace.Num (ms (Histogram.mean s)));
      ("max_ms", Trace.Num (ms (float_of_int s.Histogram.s_max)));
    ]

let histograms_json ~queue ~exec ~total =
  Trace.Obj
    [
      ("queue_ms", quantile_json queue);
      ("exec_ms", quantile_json exec);
      ("e2e_ms", quantile_json total);
    ]

let plan_json ps =
  let a name at = (name, Trace.Num (float_of_int (Atomic.get at))) in
  Trace.Obj
    [
      ("key", Trace.Str ps.key);
      ("app", Trace.Str ps.app.App.name);
      ( "state",
        Trace.Str
          (match ps.auto with
          | Some auto -> Exec_tier.auto_state auto
          | None -> "static") );
      ( "pinned_artifact",
        match ps.auto with
        | Some auto -> (
          match Exec_tier.auto_artifact auto with
          | Some (_dir, key, so) ->
            Trace.Obj
              [
                ("key", Trace.Str key);
                ("so", Trace.Str (Filename.basename so));
              ]
          | None -> Trace.Null)
        | None -> Trace.Null );
      a "requests" ps.ptel.t_requests;
      a "batched" ps.ptel.t_batched;
      a "shed" ps.ptel.t_shed;
      a "rejected" ps.ptel.t_rejected;
      a "errors" ps.ptel.t_errors;
      ( "histograms",
        histograms_json ~queue:ps.ptel.h_queue ~exec:ps.ptel.h_exec
          ~total:ps.ptel.h_total );
    ]

let slow_requests_json tel =
  let recs =
    Mutex.protect tel.rmu (fun () ->
        Array.fold_left
          (fun acc r -> match r with None -> acc | Some r -> r :: acc)
          [] tel.ring)
  in
  let sorted =
    List.sort (fun a b -> compare b.r_total_ns a.r_total_ns) recs
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Trace.Arr (List.map (fun r -> record_json r) (take slow_report sorted))

let cache_json t =
  let dir =
    match t.cfg.cache_dir with
    | Some d -> d
    | None -> Cache.default_dir ()
  in
  let entries, bytes = try Cache.stats dir with _ -> (0, 0) in
  let trusted, quarantined = try Cache.trust_stats dir with _ -> (0, 0) in
  Trace.Obj
    [
      ("dir", Trace.Str dir);
      ("entries", Trace.Num (float_of_int entries));
      ("bytes", Trace.Num (float_of_int bytes));
      ("trusted", Trace.Num (float_of_int trusted));
      ("quarantined", Trace.Num (float_of_int quarantined));
    ]

let stats_json t =
  let num i = Trace.Num (float_of_int i) in
  let depth = Mutex.protect t.qmu (fun () -> Queue.length t.q) in
  let plans =
    Mutex.protect t.pmu (fun () ->
        Hashtbl.fold
          (fun _ s acc ->
            match s.built with
            | Ready ps -> ps :: acc
            | Building | Failed _ -> acc)
          t.plans [])
  in
  let plans = List.sort (fun a b -> compare a.key b.key) plans in
  let counters =
    List.filter_map
      (fun (name, v) ->
        if String.length name >= 6 && String.sub name 0 6 = "serve/" then
          Some (name, num v)
        else None)
      (Metrics.snapshot ())
  in
  let o =
    Trace.Obj
      [
        ("schema_version", num stats_schema_version);
        ("service", Trace.Str "polymage-serve");
        ("uptime_ms",
         Trace.Num (float_of_int (Trace.now_ns () - t.started_ns) /. 1e6));
        ("telemetry", Trace.Bool (t.tel <> None));
        ( "connections",
          Trace.Obj
            [
              ("live", num (Metrics.get "serve/connections"));
              ("peak", num (Metrics.get "serve/connections_peak"));
            ] );
        ( "queue",
          Trace.Obj
            [
              ("depth", num depth);
              ("peak", num (Metrics.get "serve/queue_depth_peak"));
              ("shed_depth", num t.cfg.shed_depth);
              ("max_depth", num t.cfg.max_depth);
            ] );
        ( "pool",
          Trace.Obj
            [
              ("workers", num t.cfg.workers);
              ("batch_max", num t.cfg.batch_max);
              ("batch_window_ms", num t.cfg.batch_window_ms);
            ] );
        ("counters", Trace.Obj counters);
        ( "histograms",
          match t.tel with
          | Some tel ->
            histograms_json ~queue:tel.g_queue ~exec:tel.g_exec
              ~total:tel.g_total
          | None -> Trace.Null );
        ("plans", Trace.Arr (List.map plan_json plans));
        ("cache", cache_json t);
        ( "slow_requests",
          match t.tel with
          | Some tel -> slow_requests_json tel
          | None -> Trace.Arr [] );
      ]
  in
  Trace.json_to_string o

let handle_frame ?rid t bytes =
  let rid = match rid with Some r -> r | None -> next_rid t in
  let reply =
    try
      let t_parse0 = if Trace.enabled () then Trace.now_ns () else 0 in
      let kind, payload = Protocol.parse_frame bytes in
      match kind with
      | 'Q' ->
        let req = Protocol.decode_request payload in
        if t_parse0 <> 0 then
          Trace.emit_span ~cat:"serve"
            ~args:[ ("rid", string_of_int rid); ("app", req.Protocol.app) ]
            ~t_start_ns:t_parse0 ~t_end_ns:(Trace.now_ns ()) "serve.parse";
        `Resp (submit ~rid t req)
      | 'S' ->
        Protocol.decode_stats_request payload;
        Metrics.bumpn "serve/stats";
        `Stats (stats_json t)
      | k ->
        Err.failf Err.IO ~stage:"serve"
          "Protocol: expected a request frame, got %C" k
    with e ->
      Metrics.bumpn "serve/invalid";
      `Resp (Protocol.Err_response (Err.of_exn e))
  in
  match reply with
  | `Resp r -> Protocol.encode_response r
  | `Stats j -> Protocol.encode_stats_response j

let await_warm t =
  let autos =
    Mutex.protect t.pmu (fun () ->
        Hashtbl.fold
          (fun _ s acc ->
            match s.built with
            | Ready { auto = Some a; _ } -> a :: acc
            | Ready { auto = None; _ } | Building | Failed _ -> acc)
          t.plans [])
  in
  List.iter Exec_tier.auto_await autos

let stop t =
  Mutex.protect t.qmu (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcv);
  (match t.dispatcher with
  | None -> ()
  | Some d ->
    t.dispatcher <- None;
    Domain.join d);
  await_warm t;
  (match t.tel with
  | Some { log = Some oc; lmu; _ } ->
    Mutex.protect lmu (fun () -> try close_out oc with _ -> ())
  | _ -> ());
  Rt.Pool.shutdown t.pool
