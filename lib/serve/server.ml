(* The serve daemon's core: one long-lived process multiplexing
   pipeline requests over the layers the CLI pays for per invocation —
   one compiled plan per (app, params) key, one shared artifact cache,
   one worker pool, and (on the Auto tier) one background compile per
   plan whose artifact hot-swaps in after canary promotion.

   Concurrency shape: client domains submit requests into a bounded
   FIFO; a single dispatcher domain drains it and executes.  The
   dispatcher is alone on purpose — [Pool.parallel_for] is not
   reentrant and a request already fans its tiles out over every
   worker, so a second in-flight request would add contention, not
   throughput.  Batching (consecutive same-plan requests served
   back-to-back, optionally after a short collection window) amortizes
   dispatch without reordering anything.

   Admission control is the degradation ladder turned outward: at
   [shed_depth] pending requests a request is still served, but on the
   shed plan (Options.shed: the naive rung — no grouping, no
   vectorization, no kernels) so the queue drains faster; at
   [max_depth] it is rejected outright with a structured error.  Shed
   before queue, reject before hang.

   Telemetry: serve/requests, serve/responses, serve/batched,
   serve/shed, serve/rejected, serve/invalid, serve/degraded,
   serve/queue_depth and serve/served/<tier> counters, plus
   serve.request / serve.exec trace spans. *)

open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Trace = Polymage_util.Trace
module Exec_tier = Polymage_backend.Exec_tier
module Rawio = Polymage_backend.Rawio

type config = {
  tier : Exec_tier.t;
  workers : int;
  batch_max : int;
  batch_window_ms : int;
  shed_depth : int;
  max_depth : int;
  cache_dir : string option;
}

let default_config ?cache_dir () =
  {
    tier = Exec_tier.Auto;
    workers = 2;
    batch_max = 8;
    batch_window_ms = 0;
    shed_depth = 64;
    max_depth = 256;
    cache_dir;
  }

type plan_state = {
  key : string;
  app : App.t;
  env : Types.bindings;
  plan : C.Plan.t;
  shed_plan : C.Plan.t Lazy.t;  (* forced by the dispatcher only *)
  auto : Exec_tier.auto option;  (* background compile, Auto tier *)
}

(* One table entry per plan key.  The table mutex only guards
   lookup/insert; the compile itself happens outside it, publishing
   through the slot's own lock — so one plan's cold compile never
   blocks another connection's lookup of an already-compiled plan. *)
type plan_slot = {
  smu : Mutex.t;
  scv : Condition.t;
  mutable built : plan_build;
}

and plan_build = Building | Ready of plan_state | Failed of exn

type job = {
  ps : plan_state;
  images : (Ast.image * Rt.Buffer.t) list;
  mutable shed : bool;
  mutable reply : Protocol.response option;
  jmu : Mutex.t;
  jcv : Condition.t;
}

type t = {
  cfg : config;
  pool : Rt.Pool.t;
  plans : (string, plan_slot) Hashtbl.t;
  pmu : Mutex.t;
  q : job Queue.t;
  qmu : Mutex.t;
  qcv : Condition.t;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
}

(* ---- request resolution (caller domain) ---- *)

let env_of_request (app : App.t) params =
  let known (p : Types.param) = p.Types.pname in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (p, _) -> known p = name) app.small_env) then
        Err.failf Err.Dsl ~stage:"serve" "unknown parameter %S for %s (has: %s)"
          name app.name
          (String.concat ", " (List.map (fun (p, _) -> known p) app.small_env)))
    params;
  List.map
    (fun (p, dv) ->
      (p, Option.value ~default:dv (List.assoc_opt (known p) params)))
    app.small_env

let plan_key (app : App.t) env =
  app.name ^ "?"
  ^ String.concat "&"
      (List.map
         (fun ((p : Types.param), v) ->
           Printf.sprintf "%s=%d" p.Types.pname v)
         env)

let plan_state t (app : App.t) env =
  let key = plan_key app env in
  let slot, builder =
    Mutex.protect t.pmu (fun () ->
        match Hashtbl.find_opt t.plans key with
        | Some s -> (s, false)
        | None ->
          let s =
            { smu = Mutex.create (); scv = Condition.create ();
              built = Building }
          in
          Hashtbl.replace t.plans key s;
          (s, true))
  in
  if builder then (
    match
      let opts = C.Options.opt_vec ~workers:t.cfg.workers ~estimates:env () in
      let plan = C.Compile.run opts ~outputs:app.outputs in
      {
        key;
        app;
        env;
        plan;
        shed_plan =
          lazy (C.Compile.run (C.Options.shed opts) ~outputs:app.outputs);
        auto =
          (if t.cfg.tier = Exec_tier.Auto then
             Some (Exec_tier.auto_start ?cache_dir:t.cfg.cache_dir plan)
           else None);
      }
    with
    | ps ->
      Mutex.protect slot.smu (fun () ->
          slot.built <- Ready ps;
          Condition.broadcast slot.scv);
      ps
    | exception e ->
      (* a failed build must not poison the key: waiters see this
         failure, but later requests retry from scratch *)
      Mutex.protect t.pmu (fun () ->
          match Hashtbl.find_opt t.plans key with
          | Some s when s == slot -> Hashtbl.remove t.plans key
          | _ -> ());
      Mutex.protect slot.smu (fun () ->
          slot.built <- Failed e;
          Condition.broadcast slot.scv);
      raise e)
  else
    Mutex.protect slot.smu (fun () ->
        let rec settled () =
          match slot.built with
          | Building ->
            Condition.wait slot.scv slot.smu;
            settled ()
          | Ready ps -> ps
          | Failed e -> raise e
        in
        settled ())

let pp_dims dims =
  String.concat "x" (Array.to_list (Array.map string_of_int dims))

let images_of_request ps (req : Protocol.request) =
  let pipe_images = ps.plan.C.Plan.pipe.Pipeline.images in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (im : Ast.image) -> im.Ast.iname = name)
                pipe_images)
      then
        Err.failf Err.Dsl ~stage:"serve" "unknown input image %S for %s" name
          ps.app.App.name)
    req.images;
  List.map
    (fun (im : Ast.image) ->
      match List.assoc_opt im.Ast.iname req.images with
      | None ->
        Err.failf Err.Dsl ~stage:"serve" "missing input image %S for %s"
          im.Ast.iname ps.app.App.name
      | Some blob ->
        let stage = "image " ^ im.Ast.iname in
        let dims =
          Array.of_list (List.map (fun e -> Abound.eval e ps.env) im.Ast.iextents)
        in
        let got =
          Rawio.peek_dims ~stage blob ~off:0 ~len:(Bytes.length blob)
        in
        if got <> dims then
          Err.failf Err.IO ~stage:"serve"
            "geometry mismatch for image %S: got [%s], want [%s]"
            im.Ast.iname (pp_dims got) (pp_dims dims);
        let lo = Array.make (Array.length dims) 0 in
        (im, Rawio.decode ~stage blob ~off:0 ~len:(Bytes.length blob) ~lo ~dims))
    pipe_images

(* ---- execution (dispatcher domain) ---- *)

let serve_one t (job : job) =
  let ps = job.ps in
  let resp =
    try
      Rt.Fault.hit "serve_request";
      Trace.with_span ~cat:"serve"
        ~args:[ ("app", ps.app.App.name); ("key", ps.key) ]
        "serve.exec"
        (fun () ->
          let result, tier_label, degradations =
            if job.shed then
              let r, d =
                Rt.Executor.run_safe ~pool:t.pool (Lazy.force ps.shed_plan)
                  ps.env ~images:job.images
              in
              (r, "native-shed", d)
            else
              match ps.auto with
              | Some a ->
                let (r, _st), d, served =
                  Exec_tier.auto_run ~pool:t.pool a ps.env ~images:job.images
                in
                (r, served, d)
              | None ->
                let (r, _st), d =
                  Exec_tier.run_safe ?cache_dir:t.cfg.cache_dir ~pool:t.pool
                    t.cfg.tier ps.plan ps.env ~images:job.images
                in
                (r, Exec_tier.to_string t.cfg.tier, d)
          in
          List.iter (fun _ -> Metrics.bumpn "serve/degraded") degradations;
          Metrics.bumpn ("serve/served/" ^ tier_label);
          Protocol.Ok_response
            {
              tier = tier_label;
              outputs =
                List.map
                  (fun ((f : Ast.func), b) -> (f.Ast.fname, b))
                  result.Rt.Executor.outputs;
            })
    with e -> Protocol.Err_response (Err.of_exn e)
  in
  Metrics.bumpn "serve/responses";
  Mutex.protect job.jmu (fun () ->
      job.reply <- Some resp;
      Condition.broadcast job.jcv)

let rec dispatch_loop t =
  Mutex.lock t.qmu;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.qcv t.qmu
  done;
  if Queue.is_empty t.q then Mutex.unlock t.qmu (* stopping, drained *)
  else begin
    let job = Queue.pop t.q in
    Metrics.addn "serve/queue_depth" (-1);
    Mutex.unlock t.qmu;
    (* The batching window: hold the first request briefly so
       same-plan requests arriving together ride one dispatch. *)
    if t.cfg.batch_window_ms > 0 then
      Unix.sleepf (float_of_int t.cfg.batch_window_ms /. 1000.);
    let batch = ref [ job ]
    and n = ref 1 in
    Mutex.protect t.qmu (fun () ->
        while
          !n < t.cfg.batch_max
          && (not (Queue.is_empty t.q))
          && (Queue.peek t.q).ps.key = job.ps.key
        do
          batch := Queue.pop t.q :: !batch;
          Metrics.addn "serve/queue_depth" (-1);
          incr n
        done);
    Metrics.addn "serve/batched" (!n - 1);
    List.iter (serve_one t) (List.rev !batch);
    dispatch_loop t
  end

(* ---- public interface ---- *)

let create cfg =
  let t =
    {
      cfg;
      pool = Rt.Pool.create (max 1 cfg.workers);
      plans = Hashtbl.create 8;
      pmu = Mutex.create ();
      q = Queue.create ();
      qmu = Mutex.create ();
      qcv = Condition.create ();
      stopping = false;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop t));
  t

let submit t (req : Protocol.request) =
  Trace.with_span ~cat:"serve" ~args:[ ("app", req.Protocol.app) ]
    "serve.request"
    (fun () ->
      Metrics.bumpn "serve/requests";
      match
        let app =
          try Apps.find req.Protocol.app
          with Not_found ->
            Err.failf Err.Dsl ~stage:"serve" "unknown app %S (known: %s)"
              req.Protocol.app
              (String.concat ", " Apps.names)
        in
        let env = env_of_request app req.Protocol.params in
        let ps = plan_state t app env in
        (ps, images_of_request ps req)
      with
      | exception e ->
        Metrics.bumpn "serve/invalid";
        Protocol.Err_response (Err.of_exn e)
      | ps, images -> (
        let job =
          {
            ps;
            images;
            shed = false;
            reply = None;
            jmu = Mutex.create ();
            jcv = Condition.create ();
          }
        in
        let verdict =
          Mutex.protect t.qmu (fun () ->
              if t.stopping then `Reject "server is shutting down"
              else
                let depth = Queue.length t.q in
                if depth >= t.cfg.max_depth then
                  `Reject
                    (Printf.sprintf
                       "overloaded: queue depth %d at bound %d; retry later"
                       depth t.cfg.max_depth)
                else begin
                  if depth >= t.cfg.shed_depth then job.shed <- true;
                  Queue.push job t.q;
                  Metrics.addn "serve/queue_depth" 1;
                  Condition.signal t.qcv;
                  `Admitted
                end)
        in
        match verdict with
        | `Reject why ->
          Metrics.bumpn "serve/rejected";
          Protocol.Err_response (Err.error ~stage:"serve" Err.Exec
              ("admission: " ^ why))
        | `Admitted ->
          if job.shed then Metrics.bumpn "serve/shed";
          Mutex.protect job.jmu (fun () ->
              while job.reply = None do
                Condition.wait job.jcv job.jmu
              done;
              Option.get job.reply)))

let handle_frame t bytes =
  let resp =
    try
      let kind, payload = Protocol.parse_frame bytes in
      if kind <> 'Q' then
        Err.failf Err.IO ~stage:"serve"
          "Protocol: expected a request frame, got %C" kind;
      submit t (Protocol.decode_request payload)
    with e ->
      Metrics.bumpn "serve/invalid";
      Protocol.Err_response (Err.of_exn e)
  in
  Protocol.encode_response resp

let await_warm t =
  let autos =
    Mutex.protect t.pmu (fun () ->
        Hashtbl.fold
          (fun _ s acc ->
            match s.built with
            | Ready { auto = Some a; _ } -> a :: acc
            | Ready { auto = None; _ } | Building | Failed _ -> acc)
          t.plans [])
  in
  List.iter Exec_tier.auto_await autos

let stop t =
  Mutex.protect t.qmu (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcv);
  (match t.dispatcher with
  | None -> ()
  | Some d ->
    t.dispatcher <- None;
    Domain.join d);
  await_warm t;
  Rt.Pool.shutdown t.pool
