(** The serve wire protocol: length-prefixed frames over a socket or
    pipe, with pipeline inputs and outputs embedded as PMRAW blobs
    ({!Polymage_backend.Rawio}).

    Frame: 8-byte magic ["PMSRV01\n"], one kind byte (['Q'] request,
    ['R'] ok response, ['E'] error response, ['S'] stats request,
    ['T'] stats response), u32 LE payload length (bounded by
    {!max_payload}), payload.  See [protocol.ml] for the payload
    layouts.  Every decoding failure raises a structured phase-[IO]
    error with stage ["serve"]; the server converts those into ['E']
    responses and keeps serving. *)

module Rt = Polymage_rt
module Err = Polymage_util.Err

val magic : string
val header_bytes : int

val max_payload : int
(** Upper bound on a frame's payload length; a larger length prefix is
    rejected before any allocation. *)

type request = {
  app : string;  (** pipeline name, as in [polymage list] *)
  params : (string * int) list;  (** parameter overrides by name *)
  images : (string * bytes) list;  (** input name -> PMRAW blob *)
}

type response =
  | Ok_response of {
      tier : string;  (** which tier served it, e.g. ["c-dlopen"] *)
      outputs : (string * Rt.Buffer.t) list;
    }
  | Err_response of Err.t

val parse_frame : bytes -> char * bytes
(** Split a complete frame into kind and payload, validating magic,
    kind and length prefix.  @raise Polymage_util.Err.Polymage_error
    (phase [IO]) on malformed frames. *)

val encode_request :
  app:string ->
  params:(string * int) list ->
  images:(string * Rt.Buffer.t) list ->
  bytes
(** A complete ['Q'] frame. *)

val decode_request : bytes -> request
(** Decode a ['Q'] payload, vetting every embedded blob header.
    @raise Polymage_util.Err.Polymage_error (phase [IO]). *)

val encode_response : response -> bytes
(** A complete ['R'] or ['E'] frame. *)

val decode_response : kind:char -> bytes -> response
(** Decode an ['R'] or ['E'] payload.
    @raise Polymage_util.Err.Polymage_error (phase [IO]). *)

(** {1 Stats frames} *)

val encode_stats_request : unit -> bytes
(** A complete ['S'] frame (empty payload). *)

val decode_stats_request : bytes -> unit
(** Vet an ['S'] payload: it must be empty.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) otherwise. *)

val encode_stats_response : string -> bytes
(** A complete ['T'] frame wrapping a JSON document. *)

val decode_stats_response : bytes -> string

(** {1 File-descriptor transport} *)

val write_all : Unix.file_descr -> bytes -> unit

val read_frame : Unix.file_descr -> (char * bytes) option
(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on a
    malformed or truncated frame. *)
