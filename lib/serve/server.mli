(** The serve daemon's core: a long-lived in-process server that
    multiplexes pipeline requests over one compiled plan per
    (app, params) key, one shared artifact cache, one worker pool and
    — on the [Auto] tier — one background compile per plan whose
    artifact hot-swaps in after canary promotion.

    Requests are submitted by any domain and executed by a single
    dispatcher domain ({!Polymage_rt.Pool.parallel_for} is not
    reentrant, and each request already fans out over every worker).
    Consecutive same-plan requests are served back-to-back as a batch,
    optionally after a short collection window.

    Admission control is the degradation ladder turned outward: past
    [shed_depth] pending requests a request is still served but on the
    naive shed plan ({!Polymage_compiler.Options.shed}) so the queue
    drains faster; past [max_depth] it is rejected with a structured
    error.  Shed before queue, reject before hang.

    Telemetry comes in two separately gated layers.  Counters and
    gauges (when {!Polymage_util.Metrics} is enabled):
    [serve/requests], [serve/responses], [serve/batched], [serve/shed],
    [serve/rejected], [serve/invalid], [serve/degraded], [serve/stats],
    [serve/served/<tier>], and the [serve/queue_depth] and
    [serve/connections] gauges with their [_peak] watermarks.  The
    serve-local layer (gated on [config.telemetry]): per-plan request
    accounting, lock-free latency histograms for queue-wait, exec and
    end-to-end time — per plan and globally — a fixed-size ring of
    recent requests from which the slowest are reported, and an
    optional JSONL access log.  All of it is exposed as a
    schema-versioned JSON snapshot over the ['S'] stats frame
    ({!stats_json}).  With [telemetry = false] the request path takes
    no clock readings and touches no histogram. *)

module Exec_tier = Polymage_backend.Exec_tier

type config = {
  tier : Exec_tier.t;  (** serving tier; [Auto] hot-swaps per plan *)
  workers : int;  (** size of the shared worker pool *)
  batch_max : int;  (** max consecutive same-plan requests per batch *)
  batch_window_ms : int;
      (** hold the head request this long to let same-plan requests
          accumulate (0 = no window) *)
  shed_depth : int;  (** queue depth at which requests are shed *)
  max_depth : int;  (** queue depth at which requests are rejected *)
  cache_dir : string option;  (** shared artifact cache directory *)
  telemetry : bool;
      (** histograms, per-plan counters, slow-request ring, access
          log; off = no per-request clock readings *)
  access_log : string option;
      (** append one JSONL record per completed request (requires
          [telemetry]) *)
  simd : Polymage_compiler.Options.simd_mode;
      (** explicit SIMD knob applied to every plan the server builds
          (default [Simd_auto]) *)
}

val default_config : ?cache_dir:string -> unit -> config
(** [Auto] tier, 2 workers, batches of 8 with no window, shed at 64,
    reject at 256, telemetry on, no access log. *)

type t

val create : config -> t
(** Start the dispatcher domain and the shared pool; open the access
    log when configured. *)

val next_rid : t -> int
(** Allocate the next request id — the listener draws one per incoming
    frame so the id spans accept through respond. *)

val submit : ?rid:int -> t -> Protocol.request -> Protocol.response
(** Resolve, admit, enqueue and wait for the response.  Thread-safe;
    callable from any domain.  Never raises: every failure — unknown
    app or parameter, malformed or mismatched image blob, admission
    rejection, execution error — comes back as [Err_response]. *)

val handle_frame : ?rid:int -> t -> bytes -> bytes
(** Frame-level entry point: parse a ['Q'] frame and {!submit} it, or
    answer an ['S'] stats frame with a ['T'] snapshot.  Malformed
    frames — including an ['S'] with a non-empty payload — yield
    encoded ['E'] frames; never raises. *)

val stats_json : t -> string
(** The live stats snapshot as a compact JSON document
    ([schema_version] 1): uptime, connection and queue gauges with
    peaks, [serve/*] counters, global and per-plan latency quantiles
    (queue-wait / exec / end-to-end, in ms), per-plan
    request/batched/shed/rejected/error counts with tier state and
    pinned artifact, cache trust totals, and the slowest recent
    requests. *)

val await_warm : t -> unit
(** Join every plan's background compile ([Auto] tier); after this,
    requests for already-seen plans are served on their final tier. *)

val stop : t -> unit
(** Drain the queue, join the dispatcher and background compiles, shut
    the pool down and close the access log.  Requests submitted after
    [stop] are rejected. *)
