(* Unix-domain-socket transport for the serve daemon: an accept loop
   feeding connections to per-connection domains, each of which reads
   request frames and writes the server's response frames back.  All
   execution still funnels through the server's single dispatcher —
   connection domains only do protocol I/O, so a slow client cannot
   stall another client's requests, only its own.

   [max_conns] bounds how many connections are accepted before the
   listener closes and joins — the deterministic-exit mode CI uses;
   [None] accepts until the process dies. *)

module Err = Polymage_util.Err

type t = {
  server : Server.t;
  sock : Unix.file_descr;
  path : string;
}

let bind ~socket_path server =
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.bind sock (ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     Err.failf Err.IO ~stage:"serve" "cannot bind %s: %s" socket_path
       (Unix.error_message e));
  Unix.listen sock 64;
  { server; sock; path = socket_path }

(* One connection: frames in, frames out, until clean EOF.  A protocol
   error that read_frame can still attribute to a frame gets an 'E'
   response before the connection closes; anything else just drops the
   connection — the server itself is untouched either way. *)
let serve_conn server fd =
  let closed = ref false in
  (try
     while not !closed do
       match Protocol.read_frame fd with
       | None -> closed := true
       | Some (kind, payload) ->
         let frame = Bytes.create (Protocol.header_bytes + Bytes.length payload) in
         Bytes.blit_string Protocol.magic 0 frame 0 8;
         Bytes.set frame 8 kind;
         Bytes.set_int32_le frame 9 (Int32.of_int (Bytes.length payload));
         Bytes.blit payload 0 frame Protocol.header_bytes
           (Bytes.length payload);
         Protocol.write_all fd (Server.handle_frame server frame)
     done
   with
  | Err.Polymage_error e ->
    (try
       Protocol.write_all fd (Protocol.encode_response (Protocol.Err_response e))
     with _ -> ())
  | _ -> ());
  try Unix.close fd with _ -> ()

let run ?max_conns t =
  let conns = ref []
  and accepted = ref 0 in
  let more () = match max_conns with None -> true | Some n -> !accepted < n in
  (try
     while more () do
       let fd, _ = Unix.accept t.sock in
       incr accepted;
       conns := Domain.spawn (fun () -> serve_conn t.server fd) :: !conns
     done
   with Unix.Unix_error _ -> ());
  List.iter Domain.join !conns;
  (try Unix.close t.sock with _ -> ());
  (try Sys.remove t.path with _ -> ())

(* ---- client side ---- *)

let connect socket_path =
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect sock (ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with _ -> ());
     Err.failf Err.IO ~stage:"serve" "cannot connect to %s: %s" socket_path
       (Unix.error_message e));
  sock

let call fd ~app ~params ~images =
  Protocol.write_all fd (Protocol.encode_request ~app ~params ~images);
  match Protocol.read_frame fd with
  | None ->
    Err.failf Err.IO ~stage:"serve" "server closed the connection"
  | Some (kind, payload) -> Protocol.decode_response ~kind payload
