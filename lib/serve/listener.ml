(* Unix-domain-socket transport for the serve daemon: an accept loop
   feeding connections to per-connection domains, each of which reads
   request frames and writes the server's response frames back.  All
   execution still funnels through the server's single dispatcher —
   connection domains only do protocol I/O, so a slow client cannot
   stall another client's requests, only its own.

   Connection domains are a bounded resource: OCaml caps live domains
   well below typical fd limits, and the pool workers, dispatcher and
   background compiles draw from the same budget.  The accept loop
   therefore keeps at most [max_live] connection domains alive at
   once — finished handlers are joined opportunistically, and accepts
   past the cap wait for a slot while the kernel backlog queues
   clients.

   [max_conns] bounds how many connections are accepted before the
   listener closes and joins — the deterministic-exit mode CI uses;
   [None] accepts until the process dies. *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Trace = Polymage_util.Trace

type t = {
  server : Server.t;
  sock : Unix.file_descr;
  path : string;
}

(* A client that disconnects before its response is written must cost
   one connection, not the daemon: with SIGPIPE at its default
   disposition, the first write to a closed socket kills the whole
   process.  Ignored, the write fails with EPIPE instead, which
   serve_conn treats as a dropped connection. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let bind ~socket_path server =
  ignore_sigpipe ();
  if Sys.file_exists socket_path then begin
    (* Only sweep a *stale* socket file: if a daemon still answers on
       it, unlinking would silently steal its address — clients would
       reach us while the old daemon keeps serving its established
       connections into the void. *)
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (ADDR_UNIX socket_path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with _ -> ());
    if live then
      Err.failf Err.IO ~stage:"serve"
        "%s is already being served (stop the other daemon or pick \
         another --socket path)"
        socket_path;
    Sys.remove socket_path
  end;
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.bind sock (ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     Err.failf Err.IO ~stage:"serve" "cannot bind %s: %s" socket_path
       (Unix.error_message e));
  Unix.listen sock 64;
  { server; sock; path = socket_path }

(* One connection: frames in, frames out, until clean EOF.  A protocol
   error that read_frame can still attribute to a frame gets an 'E'
   response before the connection closes; anything else — including
   EPIPE/ECONNRESET from a client that vanished before its response —
   just drops the connection; the server itself is untouched either
   way. *)
let serve_conn server fd =
  Metrics.gauge_addn "serve/connections" 1;
  let closed = ref false in
  (try
     while not !closed do
       match Protocol.read_frame fd with
       | None -> closed := true
       | Some (kind, payload) ->
         (* one request id per incoming frame, spanning accept
            through respond — the same id the server threads into its
            parse/enqueue/exec spans and the slow-request ring *)
         let rid = Server.next_rid server in
         let frame = Bytes.create (Protocol.header_bytes + Bytes.length payload) in
         Bytes.blit_string Protocol.magic 0 frame 0 8;
         Bytes.set frame 8 kind;
         Bytes.set_int32_le frame 9 (Int32.of_int (Bytes.length payload));
         Bytes.blit payload 0 frame Protocol.header_bytes
           (Bytes.length payload);
         let reply = Server.handle_frame ~rid server frame in
         Trace.with_span ~cat:"serve"
           ~args:[ ("rid", string_of_int rid) ]
           "serve.respond"
           (fun () -> Protocol.write_all fd reply)
     done
   with
  | Err.Polymage_error e ->
    (try
       Protocol.write_all fd (Protocol.encode_response (Protocol.Err_response e))
     with _ -> ())
  | _ -> ());
  Metrics.gauge_addn "serve/connections" (-1);
  (try Unix.close fd with _ -> ())

(* Accept, riding out the transient failures a long-lived daemon will
   see: interruption by a signal, a connection aborted between accept
   and return, fd exhaustion (back off and let connections close).
   Only a genuinely fatal error — e.g. EBADF once the socket is
   closed — ends the accept loop. *)
let rec accept_retry sock =
  match Unix.accept sock with
  | conn -> Some conn
  | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
    accept_retry sock
  | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
    Unix.sleepf 0.05;
    accept_retry sock
  | exception Unix.Unix_error _ -> None

type conn = { dom : unit Domain.t; done_ : bool Atomic.t }

let default_max_live = 32

let run ?(max_live = default_max_live) ?max_conns t =
  let max_live = max 1 max_live in
  let mu = Mutex.create ()
  and cv = Condition.create () in
  let conns = ref []
  and accepted = ref 0 in
  (* under [mu]: drop finished handlers from the live list, returning
     them for the caller to join outside the lock *)
  let reap () =
    let finished, alive =
      List.partition (fun c -> Atomic.get c.done_) !conns
    in
    conns := alive;
    finished
  in
  let more () = match max_conns with None -> true | Some n -> !accepted < n in
  let continue = ref true in
  while !continue && more () do
    let joinable =
      Mutex.protect mu (fun () ->
          let j = ref (reap ()) in
          while List.length !conns >= max_live do
            Condition.wait cv mu;
            j := reap () @ !j
          done;
          !j)
    in
    List.iter (fun c -> Domain.join c.dom) joinable;
    match accept_retry t.sock with
    | None -> continue := false
    | Some (fd, _) ->
      incr accepted;
      let done_ = Atomic.make false in
      (match
         Domain.spawn (fun () ->
             Fun.protect
               ~finally:(fun () ->
                 Atomic.set done_ true;
                 Mutex.protect mu (fun () -> Condition.signal cv))
               (fun () -> serve_conn t.server fd))
       with
      | dom -> Mutex.protect mu (fun () -> conns := { dom; done_ } :: !conns)
      | exception _ ->
        (* the domain budget is shared with pool workers and background
           compiles; if it is exhausted despite the cap, drop this
           connection rather than the daemon *)
        (try Unix.close fd with _ -> ()))
  done;
  let rest =
    Mutex.protect mu (fun () ->
        let finished = reap () in
        finished @ !conns)
  in
  List.iter (fun c -> Domain.join c.dom) rest;
  (try Unix.close t.sock with _ -> ());
  (try Sys.remove t.path with _ -> ())

(* ---- client side ---- *)

(* [timeout_ms] arms SO_RCVTIMEO/SO_SNDTIMEO on the socket: a server
   that accepts but never answers surfaces as a structured phase-[IO]
   timeout from Protocol's transport instead of blocking forever. *)
let connect ?timeout_ms socket_path =
  ignore_sigpipe ();
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     (match timeout_ms with
     | None -> ()
     | Some ms ->
       let s = float_of_int (max 1 ms) /. 1000. in
       Unix.setsockopt_float sock SO_RCVTIMEO s;
       Unix.setsockopt_float sock SO_SNDTIMEO s);
     Unix.connect sock (ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with _ -> ());
     Err.failf Err.IO ~stage:"serve" "cannot connect to %s: %s" socket_path
       (Unix.error_message e));
  sock

let call fd ~app ~params ~images =
  Protocol.write_all fd (Protocol.encode_request ~app ~params ~images);
  match Protocol.read_frame fd with
  | None ->
    Err.failf Err.IO ~stage:"serve" "server closed the connection"
  | Some (kind, payload) -> Protocol.decode_response ~kind payload

let call_stats fd =
  Protocol.write_all fd (Protocol.encode_stats_request ());
  match Protocol.read_frame fd with
  | None ->
    Err.failf Err.IO ~stage:"serve" "server closed the connection"
  | Some ('T', payload) -> Protocol.decode_stats_response payload
  | Some ('E', payload) -> (
    match Protocol.decode_response ~kind:'E' payload with
    | Protocol.Err_response e -> raise (Err.Polymage_error e)
    | Protocol.Ok_response _ -> assert false)
  | Some (kind, _) ->
    Err.failf Err.IO ~stage:"serve"
      "Protocol: expected a stats response, got %C" kind
