(** Unix-domain-socket transport for the serve daemon, plus the
    matching client helpers.

    The listener accepts connections and spawns one domain per
    connection for protocol I/O; execution is still serialized through
    the {!Server}'s single dispatcher, so a slow client only stalls
    itself. *)

type t

val bind : socket_path:string -> Server.t -> t
(** Bind and listen on a Unix-domain socket (an existing file at the
    path is removed first).
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on failure. *)

val run : ?max_conns:int -> t -> unit
(** Accept loop: serve each connection on its own domain until
    [max_conns] connections have been accepted (forever when absent),
    then join them all, close the socket and remove the socket file.
    Does not stop the server — callers own its lifecycle. *)

(** {1 Client side} *)

val connect : string -> Unix.file_descr
(** Connect to a daemon's socket path.
    @raise Polymage_util.Err.Polymage_error (phase [IO]). *)

val call :
  Unix.file_descr ->
  app:string ->
  params:(string * int) list ->
  images:(string * Polymage_rt.Buffer.t) list ->
  Protocol.response
(** One request/response round trip on an open connection. *)
