(** Unix-domain-socket transport for the serve daemon, plus the
    matching client helpers.

    The listener accepts connections and spawns one domain per
    connection for protocol I/O; execution is still serialized through
    the {!Server}'s single dispatcher, so a slow client only stalls
    itself.  SIGPIPE is ignored once a listener is bound (or a client
    connects): a peer that vanishes mid-write costs one connection,
    never the process. *)

type t

val bind : socket_path:string -> Server.t -> t
(** Bind and listen on a Unix-domain socket.  A stale socket file at
    the path (no daemon answering) is swept first; a live one is an
    error — binding never steals a running daemon's address.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on failure. *)

val run : ?max_live:int -> ?max_conns:int -> t -> unit
(** Accept loop: serve each connection on its own domain until
    [max_conns] connections have been accepted (forever when absent),
    then join them all, close the socket and remove the socket file.
    At most [max_live] (default 32) connection domains are alive at
    once — beyond that, accepts wait for a slot while the kernel
    backlog holds clients.  Transient accept failures (EINTR,
    ECONNABORTED, fd exhaustion) are retried, not fatal.  Does not
    stop the server — callers own its lifecycle. *)

(** {1 Client side} *)

val connect : ?timeout_ms:int -> string -> Unix.file_descr
(** Connect to a daemon's socket path.  [timeout_ms] arms a
    send/receive deadline on the socket: a server that accepts but
    never answers makes the next {!call} raise a structured phase-[IO]
    timeout instead of blocking forever.
    @raise Polymage_util.Err.Polymage_error (phase [IO]). *)

val call :
  Unix.file_descr ->
  app:string ->
  params:(string * int) list ->
  images:(string * Polymage_rt.Buffer.t) list ->
  Protocol.response
(** One request/response round trip on an open connection. *)

val call_stats : Unix.file_descr -> string
(** One ['S']/['T'] round trip: the server's JSON stats snapshot.
    @raise Polymage_util.Err.Polymage_error on an ['E'] reply or a
    malformed response. *)
