open Polymage_ir
module Poly = Polymage_poly

type member = {
  ms : Poly.Schedule.stage_sched;
  live_out : bool;
  used_in_group : bool;
}

type tiled = {
  sched : Poly.Schedule.t;
  members : member array;
  tile : int array;
  scratch_bytes : int;
}

type item = Straight of int | Tiled of tiled

type demotion = { stages : string list; bytes : int; budget : int }

type t = {
  pipe : Pipeline.t;
  source_outputs : Ast.func list;
  items : item array;
  opts : Options.t;
  grouping : Grouping.t option;
  inlined : (string * string) list;
  demotions : demotion list;
}

(* Per-worker scratchpad footprint of a tiled group in bytes, under
   the parameter estimates: the sum over members that would get a
   scratchpad of their per-tile extent products (float = 8 bytes).
   Used by the [max_scratch_bytes] budget to demote groups whose tile
   window would over-allocate, instead of OOMing at execution time. *)
let scratch_bytes_of (opts : Options.t) sched ~tile members =
  Array.fold_left
    (fun acc (m : member) ->
      if m.used_in_group then
        acc
        + 8
          * Poly.Tiling.scratch_cells ~naive:opts.naive_overlap sched ~tile
              opts.estimates m.ms
      else acc)
    0 members

let build (pipe : Pipeline.t) (opts : Options.t) =
  let module Trace = Polymage_util.Trace in
  let source_outputs = pipe.outputs in
  let pipe, inlined =
    if opts.inline_on then
      Trace.with_span ~cat:"compile" "inline" (fun () -> Inline.run pipe)
    else (pipe, [])
  in
  if not opts.grouping_on then
    {
      pipe;
      source_outputs;
      items = Array.init (Pipeline.n_stages pipe) (fun i -> Straight i);
      opts;
      grouping = None;
      inlined;
      demotions = [];
    }
  else begin
    let gcfg =
      {
        Grouping.estimates = opts.estimates;
        tile = opts.tile;
        threshold = opts.threshold;
        min_size = opts.min_size;
        naive_overlap = opts.naive_overlap;
      }
    in
    let grouping =
      Trace.with_span ~cat:"compile" "grouping" (fun () ->
          Grouping.run pipe gcfg)
    in
    let order = Grouping.group_order pipe grouping in
    let demotions = ref [] in
    let items =
      Trace.with_span ~cat:"compile" "tiling" (fun () ->
      List.concat_map
        (fun g ->
          let members = grouping.groups.(g) in
          match members with
          | [ i ] -> [ Straight i ]
          | _ -> (
            match
              Trace.with_span ~cat:"compile" "align_scale"
                ~args:[ ("group", string_of_int g) ] (fun () ->
                  Poly.Schedule.solve pipe members)
            with
            | Error f ->
              (* The grouping only ever merges solvable sets, so this
                 is unreachable; fail loudly if the invariant breaks. *)
              Polymage_util.Err.failf Polymage_util.Err.Schedule
                "Plan.build: unschedulable group: %a"
                Poly.Schedule.pp_failure f
            | Ok sched ->
              let in_group i = grouping.of_stage.(i) = g in
              let members =
                Array.map
                  (fun (ms : Poly.Schedule.stage_sched) ->
                    let i = ms.sidx in
                    let live_out =
                      Pipeline.is_output pipe i
                      || List.exists
                           (fun c -> not (in_group c))
                           pipe.consumers.(i)
                    in
                    let used_in_group =
                      List.exists in_group pipe.consumers.(i)
                    in
                    { ms; live_out; used_in_group })
                  sched.members
              in
              let scratch_bytes =
                scratch_bytes_of opts sched ~tile:opts.tile members
              in
              let tg = { sched; members; tile = opts.tile; scratch_bytes } in
              let over_budget, budget =
                Trace.with_span ~cat:"compile" "storage"
                  ~args:[ ("group", string_of_int g) ] (fun () ->
                    match opts.max_scratch_bytes with
                    | None -> (false, 0)
                    | Some budget ->
                      (opts.scratchpads && scratch_bytes > budget, budget))
              in
              if over_budget then begin
                (* Demote the whole group to untiled per-stage
                   execution; pipeline stage indices are topological,
                   so ascending order respects dependences. *)
                demotions :=
                  {
                    stages =
                      Array.to_list
                        (Array.map
                           (fun (m : member) -> m.ms.func.Ast.fname)
                           tg.members);
                    bytes = scratch_bytes;
                    budget;
                  }
                  :: !demotions;
                List.map
                  (fun i -> Straight i)
                  (List.sort compare
                     (Array.to_list
                        (Array.map (fun (m : member) -> m.ms.sidx) tg.members)))
              end
              else [ Tiled tg ]))
        order)
    in
    {
      pipe;
      source_outputs;
      items = Array.of_list items;
      opts;
      grouping = Some grouping;
      inlined;
      demotions = List.rev !demotions;
    }
  end

let n_tiled_groups t =
  Array.fold_left
    (fun acc -> function Tiled _ -> acc + 1 | Straight _ -> acc)
    0 t.items

let n_straight t = Array.length t.items - n_tiled_groups t

let pp ppf t =
  Format.fprintf ppf "plan: %d items (%d tiled groups, %d straight)@."
    (Array.length t.items) (n_tiled_groups t) (n_straight t);
  List.iter
    (fun d ->
      Format.fprintf ppf
        "demoted over scratch budget (%d bytes/tile): %s@." d.bytes
        (String.concat ", " d.stages))
    t.demotions;
  if t.inlined <> [] then
    Format.fprintf ppf "inlined: %s@."
      (String.concat ", "
         (List.map (fun (p, c) -> p ^ " into " ^ c) t.inlined));
  Array.iteri
    (fun k item ->
      match item with
      | Straight i ->
        let f = t.pipe.stages.(i) in
        let kind =
          match f.Ast.fbody with
          | Ast.Reduce _ -> " (reduction)"
          | _ -> if t.pipe.self_recursive.(i) then " (self-recursive)" else ""
        in
        Format.fprintf ppf "[%d] straight %s%s@." k f.Ast.fname kind
      | Tiled g ->
        Format.fprintf ppf "[%d] tiled group (tile=[%s], overlap=[%s]):@." k
          (String.concat ";"
             (Array.to_list (Array.map string_of_int g.tile)))
          (String.concat ";"
             (Array.to_list
                (Array.map string_of_int (Poly.Tiling.overlap g.sched))));
        Poly.Schedule.pp ppf g.sched)
    t.items
