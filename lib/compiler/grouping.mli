(** Iterative grouping of pipeline stages — Algorithm 1 of the paper.

    Starting with one group per stage, repeatedly merge a group into
    its unique child group when (a) the merged group's dependences can
    be made constant by alignment and scaling, and (b) the redundant
    computation introduced by overlapped tiling — the overlap as a
    fraction of the tile — stays below the threshold.  Candidates are
    visited largest-first (by domain size under the parameter
    estimates).  Greedy, terminates in at most |S|-1 merges. *)

open Polymage_ir

(** Outcome of one merge attempt, recorded so reporting layers can
    explain why the final grouping looks the way it does. *)
type verdict =
  | Merged  (** the candidate was folded into its child group *)
  | Above_threshold of float
      (** schedulable, but relative overlap >= threshold *)
  | Unschedulable of string
      (** no constant-dependence alignment/scaling exists; the string
          is the rendered {!Polymage_poly.Schedule.failure} *)

type decision = {
  group : string list;  (** candidate group members at attempt time *)
  child : string list;  (** unique child group members at attempt time *)
  overlap : float option;
      (** relative overlap of the merged group, when schedulable *)
  threshold : float;  (** threshold in force for this attempt *)
  verdict : verdict;
}

type t = {
  groups : int list array;
      (** members (pipeline stage indices) per group, topologically
          ordered within the group *)
  of_stage : int array;  (** stage index -> group index *)
  decisions : decision list;
      (** every merge attempt in the order it was made (Algorithm 1's
          trace), including rejections *)
}

type config = {
  estimates : Types.bindings;  (** approximate parameter values *)
  tile : int array;  (** tile sizes per canonical dim, sink pixels *)
  threshold : float;  (** overlap threshold, e.g. 0.2 / 0.4 / 0.5 *)
  min_size : int;
      (** groups whose estimated domain is smaller are left alone
          (the paper's "very small functions" filter); 0 disables *)
  naive_overlap : bool;
      (** estimate overlap with the over-approximated tile shape *)
}

val default_config : estimates:Types.bindings -> config
(** tile = [|32; 256|], threshold = 0.4, min_size = 0,
    tight overlap. *)

val run : Pipeline.t -> config -> t

val valid : Pipeline.t -> t -> bool
(** Groups partition the stages and the quotient graph is acyclic
    (checked by tests). *)

val group_order : Pipeline.t -> t -> int list
(** Topological order of group indices (producers first). *)

val pp : Pipeline.t -> Format.formatter -> t -> unit
