open Polymage_ir
module Poly = Polymage_poly

type verdict =
  | Merged
  | Above_threshold of float
  | Unschedulable of string

type decision = {
  group : string list;
  child : string list;
  overlap : float option;
  threshold : float;
  verdict : verdict;
}

type t = {
  groups : int list array;
  of_stage : int array;
  decisions : decision list;
}

type config = {
  estimates : Types.bindings;
  tile : int array;
  threshold : float;
  min_size : int;
  naive_overlap : bool;
}

let default_config ~estimates =
  {
    estimates;
    tile = [| 32; 256 |];
    threshold = 0.4;
    min_size = 0;
    naive_overlap = false;
  }

let domain_points (f : Ast.func) env =
  List.fold_left (fun acc iv -> acc * Interval.size iv env) 1 f.Ast.fdom

(* Mutable grouping state: a union of stage index lists per live group. *)
type state = { mutable members : int list; mutable alive : bool }

let run (pipe : Pipeline.t) (cfg : config) =
  let n = Pipeline.n_stages pipe in
  let states = Array.init n (fun i -> { members = [ i ]; alive = true }) in
  let of_stage = Array.init n (fun i -> i) in
  let group_size g =
    List.fold_left
      (fun acc i -> acc + domain_points pipe.stages.(i) cfg.estimates)
      0 states.(g).members
  in
  (* Distinct child groups of group [g] (consumer side). *)
  let children g =
    let cs = ref [] in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            let gj = of_stage.(j) in
            if gj <> g && not (List.mem gj !cs) then cs := gj :: !cs)
          pipe.consumers.(i))
      states.(g).members;
    !cs
  in
  let decisions = ref [] in
  let names ms =
    List.map (fun i -> pipe.stages.(i).Ast.fname) (List.sort compare ms)
  in
  let record g child overlap verdict =
    decisions :=
      {
        group = names states.(g).members;
        child = names states.(child).members;
        overlap;
        threshold = cfg.threshold;
        verdict;
      }
      :: !decisions
  in
  let try_merge g child =
    let merged = states.(g).members @ states.(child).members in
    match Poly.Schedule.solve pipe merged with
    | Error f ->
      record g child None
        (Unschedulable (Format.asprintf "%a" Poly.Schedule.pp_failure f));
      None
    | Ok sched ->
      let overlap =
        Poly.Tiling.relative_overlap ~naive:cfg.naive_overlap sched
          ~tile:cfg.tile
      in
      if overlap < cfg.threshold then begin
        record g child (Some overlap) Merged;
        Some (List.sort compare merged)
      end
      else begin
        record g child (Some overlap) (Above_threshold overlap);
        None
      end
  in
  let converged = ref false in
  while not !converged do
    converged := true;
    (* Candidate groups: alive, with exactly one child group, above the
       size filter; sorted by decreasing size. *)
    let cands =
      Array.to_list (Array.init n (fun g -> g))
      |> List.filter (fun g ->
             states.(g).alive
             && group_size g >= cfg.min_size
             && match children g with [ _ ] -> true | _ -> false)
      |> List.sort (fun a b -> compare (group_size b) (group_size a))
    in
    let rec attempt = function
      | [] -> ()
      | g :: rest -> (
        match children g with
        | [ child ] -> (
          match try_merge g child with
          | Some merged ->
            states.(child).members <- merged;
            states.(g).alive <- false;
            List.iter (fun i -> of_stage.(i) <- child) merged;
            converged := false
          | None -> attempt rest)
        | _ -> attempt rest)
    in
    attempt cands
  done;
  (* Compact group numbering. *)
  let live =
    Array.to_list (Array.init n (fun g -> g))
    |> List.filter (fun g -> states.(g).alive)
  in
  let remap = Hashtbl.create 16 in
  List.iteri (fun k g -> Hashtbl.replace remap g k) live;
  let groups =
    Array.of_list
      (List.map (fun g -> List.sort compare states.(g).members) live)
  in
  let of_stage = Array.map (fun g -> Hashtbl.find remap g) of_stage in
  { groups; of_stage; decisions = List.rev !decisions }

let quotient_succs (pipe : Pipeline.t) (t : t) g =
  let cs = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let gj = t.of_stage.(j) in
          if gj <> g && not (List.mem gj !cs) then cs := gj :: !cs)
        pipe.consumers.(i))
    t.groups.(g);
  !cs

let valid (pipe : Pipeline.t) (t : t) =
  let n = Pipeline.n_stages pipe in
  let covered = Array.make n 0 in
  Array.iter (fun ms -> List.iter (fun i -> covered.(i) <- covered.(i) + 1) ms) t.groups;
  Array.for_all (fun c -> c = 1) covered
  && Array.for_all
       (fun i -> List.mem i t.groups.(t.of_stage.(i)))
       (Array.init n (fun i -> i))
  && Polymage_util.Topo.is_acyclic ~n:(Array.length t.groups)
       ~succs:(quotient_succs pipe t)

let group_order (pipe : Pipeline.t) (t : t) =
  Polymage_util.Topo.sort ~n:(Array.length t.groups)
    ~succs:(quotient_succs pipe t)

let pp (pipe : Pipeline.t) ppf (t : t) =
  Array.iteri
    (fun g ms ->
      Format.fprintf ppf "group %d: {%s}@." g
        (String.concat ", "
           (List.map (fun i -> pipe.stages.(i).Ast.fname) ms)))
    t.groups
