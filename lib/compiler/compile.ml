open Polymage_util
open Polymage_ir

exception Bounds_error of Bounds_check.diag list

let run ?(check_bounds = true) (opts : Options.t) ~outputs =
  if opts.trace then begin
    Trace.enable ();
    Metrics.enable ()
  end;
  Trace.with_span ~cat:"compile" "compile" (fun () ->
      let pipe =
        Trace.with_span ~cat:"compile" "pipeline.build" (fun () ->
            Pipeline.build ~outputs)
      in
      if check_bounds then
        Trace.with_span ~cat:"compile" "bounds_check" (fun () ->
            match Bounds_check.check pipe with
            | [] -> ()
            | ds -> raise (Bounds_error ds));
      Plan.build pipe opts)

let phases ppf (opts : Options.t) ~outputs =
  Format.fprintf ppf "== build stage graph ==@.";
  let pipe = Pipeline.build ~outputs in
  Pipeline.pp_summary ppf pipe;
  Format.fprintf ppf "== static bounds check ==@.";
  (match Bounds_check.check pipe with
  | [] -> Format.fprintf ppf "all analyzable accesses in bounds@."
  | ds ->
    List.iter (fun d -> Format.fprintf ppf "%a@." Bounds_check.pp_diag d) ds;
    raise (Bounds_error ds));
  Format.fprintf ppf "== inlining, grouping, scheduling ==@.";
  let plan = Plan.build pipe opts in
  Plan.pp ppf plan;
  Format.fprintf ppf "== storage ==@.";
  Format.fprintf ppf "%a@." Storage.pp_stats (Storage.stats plan opts.estimates);
  plan
