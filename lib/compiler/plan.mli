(** Execution plans: the output of the compiler, consumed by the
    native executor and the C code generator.

    A plan is a topologically ordered list of execution items.  A
    [Straight] item evaluates one stage over its whole domain into a
    full buffer (also used for reductions and time-iterated stages).
    A [Tiled] item evaluates a fused group with overlapped tiles:
    intermediates live in per-tile scratchpads, live-outs are written
    to full buffers (§3.4–3.7). *)

open Polymage_ir
module Poly = Polymage_poly

type member = {
  ms : Poly.Schedule.stage_sched;
  live_out : bool;
      (** consumed outside the group, or a pipeline output: gets a
          full buffer *)
  used_in_group : bool;  (** read by another member: gets a scratchpad *)
}

type tiled = {
  sched : Poly.Schedule.t;
  members : member array;  (** same order as [sched.members] *)
  tile : int array;  (** tile sizes per canonical dim, sink pixels *)
  scratch_bytes : int;
      (** per-worker scratchpad footprint in bytes under the parameter
          estimates (the quantity compared against
          [Options.t.max_scratch_bytes]) *)
}

type item = Straight of int | Tiled of tiled

type demotion = { stages : string list; bytes : int; budget : int }
(** A fused group demoted to untiled execution by the scratchpad
    budget ({!Options.t.max_scratch_bytes}): its member stage names,
    the per-worker scratch footprint that tripped the budget, and the
    budget in force. *)

type t = {
  pipe : Pipeline.t;  (** the (possibly inlined) pipeline *)
  source_outputs : Ast.func list;
      (** the user's output stages, in the same order as
          [pipe.outputs]; inlining rewrites stages into fresh values,
          so results are keyed by these originals *)
  items : item array;  (** topological execution order *)
  opts : Options.t;
  grouping : Grouping.t option;
  inlined : (string * string) list;  (** (producer, consumer) pairs *)
  demotions : demotion list;
      (** groups demoted by the scratchpad budget, in plan order *)
}

val build : Pipeline.t -> Options.t -> t
(** Group (when enabled), schedule each multi-stage group, and order
    the items.  Single-member groups, reductions and time-iterated
    stages become [Straight] items, as are members of groups whose
    scratchpad footprint exceeds [opts.max_scratch_bytes]. *)

val n_tiled_groups : t -> int
val n_straight : t -> int

val pp : Format.formatter -> t -> unit
(** Human-readable plan summary: groups, schedules, overlaps. *)
