open Polymage_ir

type tiling_mode = Overlap | Parallelogram | Split

type simd_mode = Simd_auto | Simd_off | Simd_sse2 | Simd_avx2 | Simd_avx512

let simd_mode_to_string = function
  | Simd_auto -> "auto"
  | Simd_off -> "off"
  | Simd_sse2 -> "sse2"
  | Simd_avx2 -> "avx2"
  | Simd_avx512 -> "avx512"

let simd_mode_of_string = function
  | "auto" -> Some Simd_auto
  | "off" -> Some Simd_off
  | "sse2" -> Some Simd_sse2
  | "avx2" -> Some Simd_avx2
  | "avx512" -> Some Simd_avx512
  | _ -> None

type t = {
  grouping_on : bool;
  tiling : tiling_mode;
  inline_on : bool;
  vec : bool;
  split_cases : bool;
  workers : int;
  tile : int array;
  threshold : float;
  min_size : int;
  naive_overlap : bool;
  scratchpads : bool;
  kernels : bool;
  kernel_measure : bool;
  max_scratch_bytes : int option;
  exec_timeout_ms : int option;
  fault : (string * int) option;
  trace : bool;
  simd : simd_mode;
  estimates : Types.bindings;
}

let base ?(workers = 1) ~estimates () =
  {
    grouping_on = false;
    tiling = Overlap;
    inline_on = true;
    vec = false;
    split_cases = true;
    workers;
    tile = [| 32; 256 |];
    threshold = 0.4;
    min_size = 0;
    naive_overlap = false;
    scratchpads = true;
    kernels = true;
    kernel_measure = true;
    max_scratch_bytes = None;
    exec_timeout_ms = None;
    fault = None;
    trace = false;
    simd = Simd_auto;
    estimates;
  }

let base_vec ?workers ~estimates () =
  { (base ?workers ~estimates ()) with vec = true }

let opt ?workers ~estimates () =
  { (base ?workers ~estimates ()) with grouping_on = true }

let opt_vec ?workers ~estimates () =
  { (opt ?workers ~estimates ()) with vec = true }

(* The naive ladder rung as a derived configuration: what an
   overloaded server degrades a request to.  No grouping, no
   vectorization, no row kernels, one worker — the cheapest plan that
   still computes the same pipeline. *)
let shed t =
  {
    t with
    grouping_on = false;
    vec = false;
    kernels = false;
    kernel_measure = false;
    workers = 1;
  }

let with_tile tile t = { t with tile }
let with_kernel_measure kernel_measure t = { t with kernel_measure }
let with_threshold threshold t = { t with threshold }
let with_scratch_budget bytes t = { t with max_scratch_bytes = bytes }
let with_exec_timeout ms t = { t with exec_timeout_ms = ms }
let with_fault fault t = { t with fault }
let with_trace trace t = { t with trace }
let with_simd simd t = { t with simd }

let pp ppf t =
  Format.fprintf ppf
    "{grouping=%b inline=%b vec=%b split=%b workers=%d tile=[%s] \
     thresh=%.2f scratch=%b naive_overlap=%b kernels=%b%s%s%s%s%s%s}"
    t.grouping_on t.inline_on t.vec t.split_cases t.workers
    (String.concat ";" (Array.to_list (Array.map string_of_int t.tile)))
    t.threshold t.scratchpads t.naive_overlap t.kernels
    (if t.kernels && not t.kernel_measure then " kernel_measure=off" else "")
    (match t.max_scratch_bytes with
    | None -> ""
    | Some b -> Printf.sprintf " scratch_budget=%dB" b)
    (match t.exec_timeout_ms with
    | None -> ""
    | Some ms -> Printf.sprintf " exec_timeout=%dms" ms)
    (match t.fault with
    | None -> ""
    | Some (site, seed) -> Printf.sprintf " fault=%s:%d" site seed)
    (if t.trace then " trace" else "")
    (match t.simd with
    | Simd_auto -> ""
    | m -> Printf.sprintf " simd=%s" (simd_mode_to_string m))
