open Polymage_ir
module Poly = Polymage_poly
module Q = Polymage_util.Rational

type diag = {
  stage : string;
  target : string;
  dim : int;
  access : string;
  detail : string;
}

let pp_diag ppf d =
  Format.fprintf ppf "%s: access %s (dim %d of %s): %s" d.stage d.access d.dim
    d.target d.detail

(* Bounds of one affine access over the consumer box [lo, hi] (per the
   access's variable), as rational affine forms.  floor((n*x+o)/d) is
   bounded below by (n*x+o-d+1)/d and above by (n*x+o)/d. *)
let access_bounds (a : Poly.Access.dim) (lo : Abound.t) (hi : Abound.t) =
  let n = a.num and d = a.den and o = a.off in
  let at bound extra =
    Abound.add
      (Abound.scale (Q.make n d) bound)
      (Abound.constq (Q.make extra d))
  in
  if n >= 0 then (at lo (o - d + 1), at hi o) else (at hi (o - d + 1), at lo o)

let check (pipe : Pipeline.t) =
  let diags = ref [] in
  let report stage target dim access detail =
    diags := { stage; target; dim; access; detail } :: !diags
  in
  let check_refs f (vars : Types.var list) (bounds : (Abound.t * Abound.t) list)
      (cond : Ast.cond option) (exprs : Ast.expr list) =
    (* Effective per-variable bounds: the case condition's box sides
       override the domain sides they constrain. *)
    let eff = Array.of_list bounds in
    (match cond with
    | None -> ()
    | Some c -> (
      match Expr.box_of_cond vars c with
      | None -> ()
      | Some box ->
        Array.iteri
          (fun i (blo, bhi) ->
            let lo, hi = eff.(i) in
            eff.(i) <-
              ( (match blo with Some b -> b | None -> lo),
                match bhi with Some b -> b | None -> hi ))
          box));
    let var_bounds v =
      let rec go i = function
        | [] -> None
        | w :: tl -> if Types.var_equal v w then Some eff.(i) else go (i + 1) tl
      in
      go 0 vars
    in
    let check_site ((site : Poly.Access.ref_site), access) =
      let target_name, prod_bounds, skip =
        match site.target with
        | `Func g ->
          ( g.Ast.fname,
            List.map (fun (iv : Interval.t) -> (iv.lo, iv.hi)) g.Ast.fdom,
            Ast.func_equal g f (* self-reference: time-iterated *) )
        | `Img im ->
          ( im.Ast.iname,
            List.map
              (fun e -> (Abound.const 0, Abound.add_int e (-1)))
              im.Ast.iextents,
            false )
      in
      if not skip then
        Array.iteri
          (fun dim acc ->
            match (acc : Poly.Access.t) with
            | Dynamic -> ()
            | Affine a -> (
              let plo, phi = List.nth prod_bounds dim in
              let prod_dom =
                Format.asprintf "[%a, %a]" Abound.pp plo Abound.pp phi
              in
              let arange =
                match a.v with
                | None ->
                  let c = Abound.constq (Q.make a.off a.den) in
                  Some (c, c)
                | Some v -> (
                  match var_bounds v with
                  | None -> None (* foreign variable; not analyzable *)
                  | Some (lo, hi) -> Some (access_bounds a lo hi))
              in
              match arange with
              | None -> ()
              | Some (amin, amax) ->
                if not (Abound.nonneg_for_nonneg_params (Abound.sub amin plo))
                then
                  report f.Ast.fname target_name dim access
                    (Format.asprintf
                       "lower bound not provable: min index %a < lower bound \
                        of producer domain %s"
                       Abound.pp amin prod_dom);
                if not (Abound.nonneg_for_nonneg_params (Abound.sub phi amax))
                then
                  report f.Ast.fname target_name dim access
                    (Format.asprintf
                       "upper bound not provable: max index %a > upper bound \
                        of producer domain %s"
                       Abound.pp amax prod_dom)))
          site.dims
    in
    List.iter
      (fun e ->
        let sites = ref [] in
        let on_call g args =
          sites :=
            ( { Poly.Access.target = `Func g; dims = Poly.Access.of_args args },
              Format.asprintf "%a" Expr.pp (Ast.Call (g, args)) )
            :: !sites
        in
        let on_img im args =
          sites :=
            ( { Poly.Access.target = `Img im; dims = Poly.Access.of_args args },
              Format.asprintf "%a" Expr.pp (Ast.Img (im, args)) )
            :: !sites
        in
        Expr.iter ~on_call ~on_img e;
        List.iter check_site !sites)
      exprs;
    Option.iter
      (fun c ->
        let sites = ref [] in
        let on_call g args =
          sites :=
            ( { Poly.Access.target = `Func g; dims = Poly.Access.of_args args },
              Format.asprintf "%a" Expr.pp (Ast.Call (g, args)) )
            :: !sites
        in
        Expr.iter_cond ~on_call c;
        List.iter check_site !sites)
      cond
  in
  Array.iter
    (fun (f : Ast.func) ->
      match f.fbody with
      | Undefined -> ()
      | Cases cases ->
        let bounds =
          List.map (fun (iv : Interval.t) -> (iv.lo, iv.hi)) f.fdom
        in
        List.iter
          (fun { Ast.ccond; rhs } -> check_refs f f.fvars bounds ccond [ rhs ])
          cases
      | Reduce r ->
        let bounds =
          List.map (fun (iv : Interval.t) -> (iv.lo, iv.hi)) r.rdom
        in
        check_refs f r.rvars bounds None (r.rvalue :: r.rindex);
        (* The accumulator's own cell index must land in its domain
           when it is affine in the reduction variables. *)
        List.iteri
          (fun dim e ->
            match Poly.Access.of_expr e with
            | Poly.Access.Dynamic -> ()
            | Poly.Access.Affine a -> (
              let iv = List.nth f.fdom dim in
              let arange =
                match a.v with
                | None ->
                  let c = Abound.constq (Q.make a.off a.den) in
                  Some (c, c)
                | Some rv ->
                  List.combine r.rvars bounds
                  |> List.find_opt (fun (w, _) -> Types.var_equal rv w)
                  |> Option.map (fun (_, (lo, hi)) -> access_bounds a lo hi)
              in
              match arange with
              | None -> ()
              | Some (amin, amax) ->
                if
                  not
                    (Abound.nonneg_for_nonneg_params (Abound.sub amin iv.lo))
                  || not
                       (Abound.nonneg_for_nonneg_params
                          (Abound.sub iv.hi amax))
                then
                  report f.fname
                    (f.fname ^ " (accumulator domain)")
                    dim
                    (Format.asprintf "%a" Expr.pp e)
                    (Format.asprintf
                       "index range [%a, %a] not within producer domain %a"
                       Abound.pp amin Abound.pp amax Interval.pp iv)))
          r.rindex)
    pipe.stages;
  List.rev !diags

let check_exn pipe =
  match check pipe with
  | [] -> ()
  | ds ->
    Polymage_util.Err.fail Polymage_util.Err.Bounds
      ~stage:(List.hd ds).stage
      (Format.asprintf "@[<v>bounds check failed:@,%a@]"
         (Format.pp_print_list pp_diag)
         ds)
