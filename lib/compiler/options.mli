(** Compilation options: the configurations of the paper's evaluation
    (Fig. 10) plus the ablation knobs called out in DESIGN.md. *)

open Polymage_ir

(** Which tiling strategy the executor uses for fused groups (paper
    §3.2 / Fig. 5).  [Overlap] is PolyMage's choice: tiles recompute
    their halo and run concurrently with scratchpad storage.
    [Parallelogram] skews each stage's window by its level and incurs
    no redundant computation, but tiles are dependent — execution is
    sequential — and every stage needs a full buffer (no storage
    optimization).  [Split] evaluates upward-shrinking trapezoids in a
    first parallel phase and the complementary downward trapezoids in
    a second (2^d phases for d tiled dimensions): parallel and
    redundancy-free, but boundary values must stay live across phases,
    so again every stage is fully materialized — exactly the
    trade-offs of the paper's Fig. 5 table. *)
type tiling_mode = Overlap | Parallelogram | Split

(** SIMD strategy for the C backend's explicit vector codegen.
    [Simd_auto] probes the build host's ISA through
    {!Polymage_backend.Toolchain} and strip-mines inner loops for it;
    [Simd_off] keeps the scalar emission (autovectorization only); the
    remaining constructors force a specific strip width and fast-math
    kernel target regardless of the probe — safe everywhere, because
    the emitted artifact still selects its fast-math code path by
    cpuid at load time.  The knob only affects the C backend; the
    native executor ignores it. *)
type simd_mode = Simd_auto | Simd_off | Simd_sse2 | Simd_avx2 | Simd_avx512

val simd_mode_to_string : simd_mode -> string
val simd_mode_of_string : string -> simd_mode option

type t = {
  grouping_on : bool;  (** fuse stages and tile with overlap (§3.4-3.5) *)
  tiling : tiling_mode;
  inline_on : bool;  (** inline point-wise producers (§3) *)
  vec : bool;
      (** "vectorized" inner loops: bounds-check-free accesses and
          4x-unrolled innermost loops — the role icc auto-vectorization
          plays in the paper *)
  split_cases : bool;
      (** split loop nests per case box instead of testing conditions
          per point (§3.7: "avoids branching in the innermost loops by
          splitting function domains") *)
  workers : int;  (** parallel worker domains (OpenMP threads) *)
  tile : int array;  (** tile sizes per canonical dim, sink pixels *)
  threshold : float;  (** overlap threshold o_thresh (§3.5) *)
  min_size : int;  (** grouping small-stage filter *)
  naive_overlap : bool;  (** over-approximated tile shapes (ablation) *)
  scratchpads : bool;
      (** store intermediates in per-tile scratchpads (§3.6); when
          false, grouped intermediates use full buffers (ablation) *)
  kernels : bool;
      (** compile stage bodies to flat row kernels (CSE + access
          cursors + loop-invariant hoisting) instead of closure trees
          in the native executor; when false, every expression node is
          an indirect call (ablation, default on) *)
  kernel_measure : bool;
      (** measured kernel fallback: when both a compiled row kernel and
          the closure path exist for a stage, the executor times the
          first rows of each per worker and keeps the faster path for
          the rest of the run, recording the choice in
          [exec/stage/<name>/kernel_kept|kernel_dropped] counters
          (default on; turn off to pin the row-class split for tests
          or A/B measurements) *)
  max_scratch_bytes : int option;
      (** per-worker scratchpad memory budget: a fused group whose
          per-tile scratchpad footprint (under [estimates]) exceeds
          the budget is demoted to untiled, per-stage execution
          instead of over-allocating (default [None] = off) *)
  exec_timeout_ms : int option;
      (** watchdog deadline for compiled-artifact executions run as
          child processes (the c-subprocess tier and the quarantine
          canary): a child that has not exited within the deadline is
          killed — whole process group, SIGTERM then SIGKILL — and the
          run reports a structured watchdog error.  [None] (default)
          leaves ordinary subprocess runs unbounded; quarantine canary
          runs always apply a generous default so a hung artifact can
          never wedge the process *)
  fault : (string * int) option;
      (** fault-injection spec [(site, seed)] carried to the runtime
          ({!Polymage_rt.Fault}); [None] leaves the injector alone *)
  trace : bool;
      (** enable {!Polymage_util.Trace} spans and {!Polymage_util.Metrics}
          counters for this compile/run (default off; the disabled path
          costs one atomic load per instrumentation point) *)
  simd : simd_mode;
      (** explicit SIMD codegen for the C backend (default
          [Simd_auto]); see {!simd_mode} *)
  estimates : Types.bindings;  (** parameter estimates for grouping *)
}

val base : ?workers:int -> estimates:Types.bindings -> unit -> t
(** Paper's "PolyMage (base)": scalar optimizations including
    inlining, but no grouping, tiling or storage optimization, and no
    vectorization. *)

val base_vec : ?workers:int -> estimates:Types.bindings -> unit -> t
val opt : ?workers:int -> estimates:Types.bindings -> unit -> t
(** All optimizations except vectorization. *)

val opt_vec : ?workers:int -> estimates:Types.bindings -> unit -> t
(** The full configuration, "PolyMage (opt+vec)". *)

val shed : t -> t
(** The naive ladder rung derived from [t]: grouping, vectorization
    and row kernels off, one worker.  What admission control degrades
    a request to under load (the serve layer's shed plan); compiles in
    microseconds and computes the same pipeline. *)

val with_tile : int array -> t -> t
val with_kernel_measure : bool -> t -> t
val with_threshold : float -> t -> t
val with_scratch_budget : int option -> t -> t
val with_exec_timeout : int option -> t -> t
val with_fault : (string * int) option -> t -> t
val with_trace : bool -> t -> t
val with_simd : simd_mode -> t -> t
val pp : Format.formatter -> t -> unit
