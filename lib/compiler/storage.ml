open Polymage_ir
module Poly = Polymage_poly

let scratch_extents ~naive (g : Plan.tiled) env
    (ms : Poly.Schedule.stage_sched) =
  Poly.Tiling.scratch_extents ~naive g.sched ~tile:g.tile env ms

type stats = { full_cells : int; scratch_cells : int; unopt_cells : int }

let domain_cells (f : Ast.func) env =
  List.fold_left (fun acc iv -> acc * Interval.size iv env) 1 f.Ast.fdom

let stats (plan : Plan.t) env =
  let full = ref 0 and scratch = ref 0 and unopt = ref 0 in
  Array.iter
    (fun (f : Ast.func) -> unopt := !unopt + domain_cells f env)
    plan.pipe.stages;
  Array.iter
    (fun item ->
      match (item : Plan.item) with
      | Straight i -> full := !full + domain_cells plan.pipe.stages.(i) env
      | Tiled g ->
        Array.iter
          (fun (m : Plan.member) ->
            if m.live_out then full := !full + domain_cells m.ms.func env;
            if m.used_in_group then
              if plan.opts.scratchpads then
                scratch :=
                  !scratch
                  + Array.fold_left ( * ) 1
                      (scratch_extents ~naive:plan.opts.naive_overlap g env
                         m.ms)
              else if not m.live_out then
                (* ablation: grouped intermediates in full buffers *)
                full := !full + domain_cells m.ms.func env)
          g.members)
    plan.items;
  { full_cells = !full; scratch_cells = !scratch; unopt_cells = !unopt }

let pp_stats ppf s =
  Format.fprintf ppf
    "full buffers: %d cells, scratchpads (per worker): %d cells, \
     unoptimized: %d cells"
    s.full_cells s.scratch_cells s.unopt_cells
