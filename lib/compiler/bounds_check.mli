(** Static bounds checking (paper §3): every analyzable (affine)
    reference to a stage or image must stay inside the producer's
    domain, for all nonnegative parameter values.

    The check is symbolic and conservative: for a consumer case whose
    condition restricts variables to a parametric box, each affine
    access is bounded over that box with exact rational affine
    arithmetic; an access is accepted when
    [access_min - producer_lo >= 0] and [producer_hi - access_max >= 0]
    hold coefficient-wise.  Non-affine (data-dependent) accesses are
    not analyzed, exactly as in the paper. *)

open Polymage_ir

type diag = {
  stage : string;  (** consuming stage *)
  target : string;  (** producer stage or image *)
  dim : int;
  access : string;  (** the offending access expression, rendered *)
  detail : string;
      (** which bound failed, with the access's symbolic index range
          and the producer's domain interval *)
}

val check : Pipeline.t -> diag list
(** All potential out-of-domain accesses.  An empty list means every
    analyzable access is provably within bounds. *)

val check_exn : Pipeline.t -> unit
(** @raise Polymage_util.Err.Polymage_error (phase [Bounds]) with a
    readable report if {!check} finds any violation. *)

val pp_diag : Format.formatter -> diag -> unit
