open Polymage_ir
module Rt = Polymage_rt
module App = Polymage_apps.App

(* The reference routines locate parameters and input images by name
   in the app's pipeline (the apps use stable names: R, C, img/I/...).
   Hot loops work on plain float matrices — these routines stand in
   for tuned library code (OpenCV) in Table 2, so they avoid any
   per-access indirection. *)
let lookup_param (pipe : Pipeline.t) env name =
  match
    List.find_opt (fun (p : Types.param) -> p.pname = name) pipe.params
  with
  | Some p -> Types.bind_exn env p
  | None -> invalid_arg ("Reference: missing parameter " ^ name)

let lookup_image (pipe : Pipeline.t) name =
  match
    List.find_opt (fun (im : Ast.image) -> im.iname = name) pipe.images
  with
  | Some im -> im
  | None -> invalid_arg ("Reference: missing image " ^ name)

(* Materialize a 2-D image into a matrix via the app's generator. *)
let matrix2 env fill (im : Ast.image) =
  let dims = List.map (fun e -> Abound.eval e env) im.iextents in
  match dims with
  | [ rows; cols ] ->
    Array.init rows (fun x ->
        Array.init cols (fun y -> fill im [| x; y |]))
  | _ -> invalid_arg "Reference.matrix2: not a 2-D image"

let matrix3 env fill (im : Ast.image) =
  let dims = List.map (fun e -> Abound.eval e env) im.iextents in
  match dims with
  | [ chans; rows; cols ] ->
    Array.init chans (fun c ->
        Array.init rows (fun x ->
            Array.init cols (fun y -> fill im [| c; x; y |])))
  | _ -> invalid_arg "Reference.matrix3: not a 3-D image"

(* ---------- Unsharp mask ---------- *)

let w5 = [| 1. /. 16.; 4. /. 16.; 6. /. 16.; 4. /. 16.; 1. /. 16. |]

let unsharp env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let img = matrix3 env fill (lookup_image pipe "img") in
  let rows = r + 4 and cols = c + 4 in
  let mk () = Array.init 3 (fun _ -> Array.make_matrix rows cols 0.) in
  let blurx = mk () and blury = mk () in
  for ch = 0 to 2 do
    let ic = img.(ch) and bx = blurx.(ch) in
    for x = 2 to r + 1 do
      let m2 = ic.(x - 2)
      and m1 = ic.(x - 1)
      and z = ic.(x)
      and p1 = ic.(x + 1)
      and p2 = ic.(x + 2)
      and dst = bx.(x) in
      for y = 0 to c + 3 do
        dst.(y) <-
          (w5.(0) *. m2.(y)) +. (w5.(1) *. m1.(y)) +. (w5.(2) *. z.(y))
          +. (w5.(3) *. p1.(y)) +. (w5.(4) *. p2.(y))
      done
    done
  done;
  for ch = 0 to 2 do
    let bx = blurx.(ch) and by = blury.(ch) in
    for x = 2 to r + 1 do
      let s = bx.(x) and dst = by.(x) in
      for y = 2 to c + 1 do
        dst.(y) <-
          (w5.(0) *. s.(y - 2)) +. (w5.(1) *. s.(y - 1)) +. (w5.(2) *. s.(y))
          +. (w5.(3) *. s.(y + 1)) +. (w5.(4) *. s.(y + 2))
      done
    done
  done;
  let weight = 3.0 and threshold = 0.01 in
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  for ch = 0 to 2 do
    let ic = img.(ch) and by = blury.(ch) in
    for x = 2 to r + 1 do
      let irow = ic.(x) and brow = by.(x) in
      let base = ((ch * rows) + x) * cols in
      for y = 2 to c + 1 do
        let i = irow.(y) and b = brow.(y) in
        let sharp = (i *. (1.0 +. weight)) -. (b *. weight) in
        data.(base + y) <-
          (if Float.abs (i -. b) < threshold then i else sharp)
      done
    done
  done;
  out

(* ---------- Harris corner detection ---------- *)

let harris env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let img = matrix2 env fill (lookup_image pipe "I") in
  let rows = r + 2 and cols = c + 2 in
  let mk () = Array.make_matrix rows cols 0. in
  let ix = mk () and iy = mk () in
  for x = 1 to r do
    let up = img.(x - 1) and mid = img.(x) and dn = img.(x + 1) in
    let iyr = iy.(x) and ixr = ix.(x) in
    for y = 1 to c do
      iyr.(y) <-
        1. /. 12.
        *. (((-1.) *. up.(y - 1)) +. ((-2.) *. up.(y)) +. ((-1.) *. up.(y + 1))
           +. dn.(y - 1) +. (2. *. dn.(y)) +. dn.(y + 1));
      ixr.(y) <-
        1. /. 12.
        *. (((-1.) *. up.(y - 1)) +. up.(y + 1)
           +. ((-2.) *. mid.(y - 1)) +. (2. *. mid.(y + 1))
           +. ((-1.) *. dn.(y - 1)) +. dn.(y + 1))
    done
  done;
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  for x = 2 to r - 1 do
    let base = x * cols in
    for y = 2 to c - 1 do
      let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
      for dx = -1 to 1 do
        let ixr = ix.(x + dx) and iyr = iy.(x + dx) in
        for dy = -1 to 1 do
          let a = ixr.(y + dy) and b = iyr.(y + dy) in
          sxx := !sxx +. (a *. a);
          syy := !syy +. (b *. b);
          sxy := !sxy +. (a *. b)
        done
      done;
      let det = (!sxx *. !syy) -. (!sxy *. !sxy) in
      let trace = !sxx +. !syy in
      data.(base + y) <- det -. (0.04 *. trace *. trace)
    done
  done;
  out

(* ---------- Pyramid blending ---------- *)

let w5x5 =
  let w = [| 1.; 4.; 6.; 4.; 1. |] in
  Array.init 5 (fun i -> Array.init 5 (fun j -> w.(i) *. w.(j) /. 256.))

let pyramid_blend ?(levels = 4) env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let i1 = matrix2 env fill (lookup_image pipe "I1") in
  let i2 = matrix2 env fill (lookup_image pipe "I2") in
  let m = matrix2 env fill (lookup_image pipe "M") in
  let size k = ((r lsr k) + 4, (c lsr k) + 4) in
  let hi k = (r lsr k, c lsr k) in
  let mk k =
    let rows, cols = size k in
    Array.make_matrix rows cols 0.
  in
  let down (src : float array array) k =
    let d = mk k in
    let hx, hy = hi k in
    for x = 2 to hx do
      let dst = d.(x) in
      for y = 2 to hy do
        let acc = ref 0. in
        for dx = -2 to 2 do
          let srow = src.((2 * x) + dx) and wrow = w5x5.(dx + 2) in
          for dy = -2 to 2 do
            acc := !acc +. (wrow.(dy + 2) *. srow.((2 * y) + dy))
          done
        done;
        dst.(y) <- !acc
      done
    done;
    d
  in
  let pyramid src0 =
    let rec go k acc prev =
      if k > levels then List.rev acc
      else
        let g = down prev k in
        go (k + 1) (g :: acc) g
    in
    go 1 [] src0
  in
  let g1 = Array.of_list (pyramid i1) in
  let g2 = Array.of_list (pyramid i2) in
  let gm = Array.of_list (pyramid m) in
  (* upsample level-k data onto the level-(k-1) grid (even/odd
     bilinear, matching Dsl.upsample2) *)
  let up (g : float array array) k =
    let u = mk (k - 1) in
    let hx, hy = hi (k - 1) in
    let ay ix y =
      let row = g.(ix) in
      if y land 1 = 0 then row.(y / 2)
      else 0.5 *. (row.((y - 1) / 2) +. row.((y + 1) / 2))
    in
    for x = 2 to hx do
      let dst = u.(x) in
      if x land 1 = 0 then
        for y = 2 to hy do
          dst.(y) <- ay (x / 2) y
        done
      else
        for y = 2 to hy do
          dst.(y) <- 0.5 *. (ay ((x - 1) / 2) y +. ay ((x + 1) / 2) y)
        done
    done;
    u
  in
  let blend k =
    let b = mk k in
    let hx, hy = hi k in
    let mask = if k = 0 then m else gm.(k - 1) in
    if k = levels then begin
      let s1 = g1.(k - 1) and s2 = g2.(k - 1) in
      for x = 2 to hx do
        let mr = mask.(x) and r1 = s1.(x) and r2 = s2.(x) and dst = b.(x) in
        for y = 2 to hy do
          let mv = mr.(y) in
          dst.(y) <- (mv *. r1.(y)) +. ((1.0 -. mv) *. r2.(y))
        done
      done;
      b
    end
    else begin
      let u1 = up g1.(k) (k + 1) in
      let u2 = up g2.(k) (k + 1) in
      let s1 = if k = 0 then i1 else g1.(k - 1) in
      let s2 = if k = 0 then i2 else g2.(k - 1) in
      for x = 2 to hx do
        let mr = mask.(x)
        and r1 = s1.(x)
        and r2 = s2.(x)
        and ur1 = u1.(x)
        and ur2 = u2.(x)
        and dst = b.(x) in
        for y = 2 to hy do
          let mv = mr.(y) in
          let l1 = r1.(y) -. ur1.(y) in
          let l2 = r2.(y) -. ur2.(y) in
          dst.(y) <- (mv *. l1) +. ((1.0 -. mv) *. l2)
        done
      done;
      b
    end
  in
  let rec collapse k =
    if k = levels then blend k
    else begin
      let deeper = collapse (k + 1) in
      let u = up deeper (k + 1) in
      let b = blend k in
      let o = mk k in
      let hx, hy = hi k in
      for x = 2 to hx do
        let br = b.(x) and ur = u.(x) and dst = o.(x) in
        for y = 2 to hy do
          dst.(y) <- br.(y) +. ur.(y)
        done
      done;
      o
    end
  in
  let o0 = collapse 0 in
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  let cols = c + 4 in
  for x = 0 to r + 3 do
    let src = o0.(x) and base = x * cols in
    for y = 0 to c + 3 do
      data.(base + y) <- src.(y)
    done
  done;
  out

(* ---------- Camera RAW pipeline ---------- *)

(* Single-precision store, as the executor applies to every
   materialized Float stage ([Types.clamp_store Float]). *)
let f32 v = Int32.float_of_bits (Int32.bits_of_float v)

(* Mirrors the compiled pipeline's numerics exactly: materialized
   stages round to single precision on store, while the stages the
   inliner folds away on this pipeline (ccr/ccg/ccb, detail, the tone
   curve) are evaluated in double inside their consumers. *)
let camera env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let raw = matrix2 env fill (lookup_image pipe "raw") in
  let rows = (2 * r) + 4 and cols = (2 * c) + 4 in
  let mk () = Array.make_matrix rows cols 0. in
  (* hot-pixel suppression: clamp to the same-color neighbour range *)
  let den = mk () in
  for x = 2 to (2 * r) + 1 do
    for y = 2 to (2 * c) + 1 do
      let v = raw.(x).(y) in
      let n1 = raw.(x - 2).(y)
      and n2 = raw.(x + 2).(y)
      and n3 = raw.(x).(y - 2)
      and n4 = raw.(x).(y + 2) in
      let lo = Float.min (Float.min n1 n2) (Float.min n3 n4) in
      let hi = Float.max (Float.max n1 n2) (Float.max n3 n4) in
      den.(x).(y) <- f32 (Float.max lo (Float.min v hi))
    done
  done;
  (* black level subtraction + white balance by Bayer phase (GRBG) *)
  let bal = mk () in
  for x = 2 to (2 * r) + 1 do
    for y = 2 to (2 * c) + 1 do
      let d = den.(x).(y) -. 16.0 in
      let g =
        if x mod 2 = 0 then if y mod 2 = 0 then d else 1.9 *. d
        else if y mod 2 = 0 then 1.4 *. d
        else d
      in
      bal.(x).(y) <- f32 (Float.max 0. g)
    done
  done;
  (* deinterleave into half-resolution planes *)
  let hrows = r + 2 and hcols = c + 2 in
  let mkh () = Array.make_matrix hrows hcols 0. in
  let plane dx dy =
    let p = mkh () in
    for x = 0 to r + 1 do
      for y = 0 to c + 1 do
        p.(x).(y) <- bal.((2 * x) + dx).((2 * y) + dy)
      done
    done;
    p
  in
  let gr = plane 0 0
  and rp = plane 0 1
  and bp = plane 1 0
  and gb = plane 1 1 in
  let interp f =
    let p = mkh () in
    for x = 1 to r do
      for y = 1 to c do
        p.(x).(y) <- f32 (f x y)
      done
    done;
    p
  in
  let g2 a b = 0.5 *. (a +. b) in
  let g4 a b cc d = 0.25 *. (((a +. b) +. cc) +. d) in
  (* gradient-guided green at red and blue sites *)
  let gh_r = interp (fun x y -> Float.abs (gr.(x).(y) -. gr.(x).(y + 1))) in
  let gv_r = interp (fun x y -> Float.abs (gb.(x).(y) -. gb.(x - 1).(y))) in
  let g_r =
    interp (fun x y ->
        if gh_r.(x).(y) < gv_r.(x).(y) then g2 gr.(x).(y) gr.(x).(y + 1)
        else g2 gb.(x).(y) gb.(x - 1).(y))
  in
  let gh_b = interp (fun x y -> Float.abs (gb.(x).(y) -. gb.(x).(y - 1))) in
  let gv_b = interp (fun x y -> Float.abs (gr.(x).(y) -. gr.(x + 1).(y))) in
  let g_b =
    interp (fun x y ->
        if gh_b.(x).(y) < gv_b.(x).(y) then g2 gb.(x).(y) gb.(x).(y - 1)
        else g2 gr.(x).(y) gr.(x + 1).(y))
  in
  (* red/blue at the other sites: plane-space averages *)
  let r_gr = interp (fun x y -> g2 rp.(x).(y) rp.(x).(y - 1)) in
  let r_gb = interp (fun x y -> g2 rp.(x).(y) rp.(x + 1).(y)) in
  let r_b =
    interp (fun x y ->
        g4 rp.(x).(y) rp.(x + 1).(y) rp.(x).(y - 1) rp.(x + 1).(y - 1))
  in
  let b_gr = interp (fun x y -> g2 bp.(x).(y) bp.(x - 1).(y)) in
  let b_gb = interp (fun x y -> g2 bp.(x).(y) bp.(x).(y + 1)) in
  let b_r =
    interp (fun x y ->
        g4 bp.(x).(y) bp.(x - 1).(y) bp.(x).(y + 1) bp.(x - 1).(y + 1))
  in
  (* recombine to full resolution by Bayer phase *)
  let full e00 e01 e10 e11 =
    let m = mk () in
    for x = 2 to (2 * r) + 1 do
      for y = 2 to (2 * c) + 1 do
        let h (p : float array array) = p.(x / 2).(y / 2) in
        m.(x).(y) <-
          (if x mod 2 = 0 then if y mod 2 = 0 then h e00 else h e01
           else if y mod 2 = 0 then h e10
           else h e11)
      done
    done;
    m
  in
  let red = full r_gr rp r_b r_gb in
  let green = full gr g_r g_b gb in
  let blue = full b_gr b_r bp b_gb in
  (* color matrix correction — inlined in the compiled pipeline, so
     evaluated in double at each use *)
  let mat =
    [|
      [| 1.6; -0.4; -0.2 |]; [| -0.3; 1.5; -0.2 |]; [| -0.1; -0.5; 1.6 |];
    |]
  in
  let cc k x y =
    let row = mat.(k) in
    Float.max 0.
      (Float.min
         (((row.(0) *. red.(x).(y)) +. (row.(1) *. green.(x).(y)))
         +. (row.(2) *. blue.(x).(y)))
         1023.)
  in
  let luma = mk () in
  for x = 2 to (2 * r) + 1 do
    for y = 2 to (2 * c) + 1 do
      luma.(x).(y) <-
        f32
          (((0.299 *. cc 0 x y) +. (0.587 *. cc 1 x y)) +. (0.114 *. cc 2 x y))
    done
  done;
  (* luma sharpening on the sharp interior [3 .. 2R] x [3 .. 2C] *)
  let lblurx = mk () and lblury = mk () in
  for x = 3 to 2 * r do
    for y = 3 to 2 * c do
      lblurx.(x).(y) <-
        f32
          (0.25
          *. ((luma.(x - 1).(y) +. (2.0 *. luma.(x).(y))) +. luma.(x + 1).(y)))
    done
  done;
  for x = 3 to 2 * r do
    for y = 3 to 2 * c do
      lblury.(x).(y) <-
        f32
          (0.25
          *. ((lblurx.(x).(y - 1) +. (2.0 *. lblurx.(x).(y)))
             +. lblurx.(x).(y + 1)))
    done
  done;
  (* gamma tone curve (inlined LUT) applied with sharpening folded in *)
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  let gamma = 1.0 /. 2.2 in
  for chn = 0 to 2 do
    for x = 2 to (2 * r) + 1 do
      let base = ((chn * rows) + x) * cols in
      for y = 2 to (2 * c) + 1 do
        let detail =
          if x >= 3 && x <= 2 * r && y >= 3 && y <= 2 * c then
            0.4 *. (luma.(x).(y) -. lblury.(x).(y))
          else 0.
        in
        let z =
          Float.floor (Float.max 0. (Float.min (cc chn x y +. detail) 1023.))
        in
        data.(base + y) <-
          Types.clamp_store Types.UChar (255.0 *. Float.pow (z /. 1023.0) gamma)
      done
    done
  done;
  out

(* ---------- Pull-push interpolation ---------- *)

let interpolate ?(levels = 5) env ~fill (app : App.t) =
  let pipe = Pipeline.build ~outputs:app.outputs in
  let r = lookup_param pipe env "R" and c = lookup_param pipe env "C" in
  let rgba = matrix3 env fill (lookup_image pipe "rgba") in
  let rdiv k = r / (1 lsl k) and cdiv k = c / (1 lsl k) in
  let mk3 k =
    Array.init 4 (fun _ -> Array.make_matrix (rdiv k + 4) (cdiv k + 4) 0.)
  in
  (* alpha-premultiplied level 0 *)
  let d0 = mk3 0 in
  for ch = 0 to 3 do
    for x = 2 to rdiv 0 do
      for y = 2 to cdiv 0 do
        d0.(ch).(x).(y) <-
          f32
            (if ch = 3 then rgba.(3).(x).(y)
             else rgba.(ch).(x).(y) *. rgba.(3).(x).(y))
      done
    done
  done;
  (* separable decimation, columns then rows (two stages per level) *)
  let w3 a b cc = ((0.25 *. a) +. (0.5 *. b)) +. (0.25 *. cc) in
  let down k (prev : float array array array) =
    let dy =
      Array.init 4 (fun _ ->
          Array.make_matrix (rdiv (k - 1) + 4) (cdiv k + 4) 0.)
    in
    for ch = 0 to 3 do
      for x = 2 to rdiv (k - 1) do
        for y = 2 to cdiv k do
          let p = prev.(ch).(x) in
          dy.(ch).(x).(y) <-
            f32 (w3 p.((2 * y) - 1) p.(2 * y) p.((2 * y) + 1))
        done
      done
    done;
    let d = mk3 k in
    for ch = 0 to 3 do
      for x = 2 to rdiv k do
        for y = 2 to cdiv k do
          let q = dy.(ch) in
          d.(ch).(x).(y) <-
            f32 (w3 q.((2 * x) - 1).(y) q.(2 * x).(y) q.((2 * x) + 1).(y))
        done
      done
    done;
    d
  in
  let d_at = Array.make (levels + 1) d0 in
  for k = 1 to levels do
    d_at.(k) <- down k d_at.(k - 1)
  done;
  (* level-(k+1) data onto the level-k grid (even/odd bilinear,
     matching Dsl.upsample2) *)
  let upsample k (g : float array array array) =
    let u = mk3 k in
    for ch = 0 to 3 do
      let s = g.(ch) in
      let along_y ix y =
        if y mod 2 = 0 then s.(ix).(y / 2)
        else 0.5 *. (s.(ix).((y - 1) / 2) +. s.(ix).((y + 1) / 2))
      in
      for x = 2 to rdiv k do
        for y = 2 to cdiv k do
          u.(ch).(x).(y) <-
            f32
              (if x mod 2 = 0 then along_y (x / 2) y
               else 0.5 *. (along_y ((x - 1) / 2) y +. along_y ((x + 1) / 2) y))
        done
      done
    done;
    u
  in
  (* pull phase: u_levels = d_levels; u_k = d_k + (1 - alpha_k) * up *)
  let rec pull k =
    if k = levels then d_at.(k)
    else begin
      let deeper = pull (k + 1) in
      let up = upsample k deeper in
      let u = mk3 k in
      for ch = 0 to 3 do
        for x = 2 to rdiv k do
          for y = 2 to cdiv k do
            u.(ch).(x).(y) <-
              f32
                (d_at.(k).(ch).(x).(y)
                +. ((1.0 -. d_at.(k).(3).(x).(y)) *. up.(ch).(x).(y)))
          done
        done
      done;
      u
    end
  in
  let u0 = pull 0 in
  (* normalize by the interpolated alpha *)
  let out = Rt.Buffer.of_func (List.hd app.outputs) env in
  let data = out.Rt.Buffer.data in
  let rows = r + 4 and cols = c + 4 in
  for ch = 0 to 3 do
    for x = 2 to r do
      let base = ((ch * rows) + x) * cols in
      for y = 2 to c do
        data.(base + y) <-
          f32 (u0.(ch).(x).(y) /. Float.max u0.(3).(x).(y) 1e-6)
      done
    done
  done;
  out

let for_app (app : App.t) =
  match app.name with
  | "unsharp_mask" -> Some (fun env -> unsharp env ~fill:(app.fill env) app)
  | "harris" -> Some (fun env -> harris env ~fill:(app.fill env) app)
  | "pyramid_blend" ->
    Some (fun env -> pyramid_blend env ~fill:(app.fill env) app)
  | "camera_pipe" -> Some (fun env -> camera env ~fill:(app.fill env) app)
  | "interpolate" ->
    Some (fun env -> interpolate env ~fill:(app.fill env) app)
  | _ -> None
