(** Hand-written, library-style implementations of the benchmarks the
    paper compares against OpenCV (Table 2: Unsharp Mask, Harris,
    Pyramid Blending).

    Each routine processes full buffers stage by stage with plain
    OCaml loops and no cross-stage fusion — the "optimized library
    routine" point in the design space (see DESIGN.md substitutions).
    They double as independent correctness oracles: the test suite
    checks the compiler's output against them numerically. *)

open Polymage_ir
module Rt := Polymage_rt
module App := Polymage_apps.App

val unsharp :
  Types.bindings ->
  fill:(Ast.image -> int array -> float) ->
  App.t ->
  Rt.Buffer.t
(** Runs the unsharp-mask computation directly; the returned buffer
    has the same domain as the app's output stage. *)

val harris :
  Types.bindings ->
  fill:(Ast.image -> int array -> float) ->
  App.t ->
  Rt.Buffer.t

val pyramid_blend :
  ?levels:int ->
  Types.bindings ->
  fill:(Ast.image -> int array -> float) ->
  App.t ->
  Rt.Buffer.t

val camera :
  Types.bindings ->
  fill:(Ast.image -> int array -> float) ->
  App.t ->
  Rt.Buffer.t
(** Camera RAW pipeline oracle.  Mirrors the compiled pipeline's
    numerics: materialized stages round to single precision on store
    (as the executor's [clamp_store Float] does), while the stages the
    inliner folds away (color correction, detail, tone curve) are
    evaluated in double inside their consumers. *)

val interpolate :
  ?levels:int ->
  Types.bindings ->
  fill:(Ast.image -> int array -> float) ->
  App.t ->
  Rt.Buffer.t
(** Pull-push multiscale interpolation oracle, same precision
    conventions as {!camera}. *)

val for_app : App.t -> (Types.bindings -> Rt.Buffer.t) option
(** The reference implementation for a registered app, when one
    exists, already wired to the app's synthetic inputs. *)
