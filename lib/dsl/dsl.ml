open Polymage_ir
module Q = Polymage_util.Rational

type expr = Ast.expr
type cond = Ast.cond
type scalar = Types.scalar = UChar | Short | Int | Float | Double

let parameter = Types.param
let variable = Types.var
let image ~name ty extents = Ast.image ~name ty extents
let interval lo hi = Interval.make lo hi
let func ~name ty var_dom = Ast.func ~name ty var_dom
let ib = Abound.const
let param_b = Abound.of_param
let ( +~ ) = Abound.add
let ( -~ ) = Abound.sub
let ( *~ ) k b = Abound.scale (Q.of_int k) b
let ( /~ ) b k = Abound.scale (Q.make 1 k) b
let i n = Ast.Const (float_of_int n)
let fl x = Ast.Const x
let v x = Ast.Var x
let p x = Ast.Param x
let app f args = Ast.Call (f, args)
let img_at im args = Ast.Img (im, args)
let ( +: ) a b = Ast.Binop (Add, a, b)
let ( -: ) a b = Ast.Binop (Sub, a, b)
let ( *: ) a b = Ast.Binop (Mul, a, b)
let ( /: ) a b = Ast.Binop (Div, a, b)
let check_divisor what n =
  if n <= 0 then
    Polymage_util.Err.failf Polymage_util.Err.Dsl
      "Dsl.( %s ): divisor must be positive, got %d" what n

let ( /^ ) a n =
  check_divisor "/^" n;
  Ast.IDiv (a, n)

let ( %^ ) a n =
  check_divisor "%^" n;
  Ast.IMod (a, n)
let neg a = Ast.Unop (Neg, a)
let abs_ a = Ast.Unop (Abs, a)
let sqrt_ a = Ast.Unop (Sqrt, a)
let exp_ a = Ast.Unop (Exp, a)
let log_ a = Ast.Unop (Log, a)
let floor_ a = Ast.Unop (Floor, a)
let pow_ a b = Ast.Binop (Pow, a, b)
let min_ a b = Ast.Binop (Min, a, b)
let max_ a b = Ast.Binop (Max, a, b)
let clamp e lo hi = max_ lo (min_ e hi)
let cast ty e = Ast.Cast (ty, e)
let select c a b = Ast.Select (c, a, b)
let ( <: ) a b = Ast.Cmp (Lt, a, b)
let ( <=: ) a b = Ast.Cmp (Le, a, b)
let ( >: ) a b = Ast.Cmp (Gt, a, b)
let ( >=: ) a b = Ast.Cmp (Ge, a, b)
let ( =: ) a b = Ast.Cmp (Eq, a, b)
let ( <>: ) a b = Ast.Cmp (Ne, a, b)
let ( &&: ) a b = Ast.And (a, b)
let ( ||: ) a b = Ast.Or (a, b)
let not_ a = Ast.Not a
let between e lo hi = (e >=: lo) &&: (e <=: hi)

let in_box = function
  | [] -> Polymage_util.Err.fail Polymage_util.Err.Dsl "Dsl.in_box: empty box"
  | (e, lo, hi) :: rest ->
    List.fold_left
      (fun acc (e, lo, hi) -> acc &&: between e lo hi)
      (between e lo hi) rest

exception Definition_error of string

let def_error fmt = Format.kasprintf (fun s -> raise (Definition_error s)) fmt
let case c rhs = { Ast.ccond = Some c; rhs }
let always rhs = { Ast.ccond = None; rhs }

let check_vars f allowed e =
  List.iter
    (fun var ->
      if not (List.exists (Types.var_equal var) allowed) then
        def_error "definition of %s uses foreign variable %a" f.Ast.fname
          Types.pp_var var)
    (Expr.free_vars e)

let define f cases =
  (match f.Ast.fbody with
  | Undefined -> ()
  | _ -> def_error "stage %s is already defined" f.fname);
  if cases = [] then def_error "stage %s defined with no cases" f.fname;
  List.iter
    (fun { Ast.ccond; rhs } ->
      check_vars f f.fvars rhs;
      Option.iter
        (fun c ->
          let rec go = function
            | Ast.Cmp (_, a, b) ->
              check_vars f f.fvars a;
              check_vars f f.fvars b
            | Ast.And (a, b) | Ast.Or (a, b) ->
              go a;
              go b
            | Ast.Not a -> go a
          in
          go c)
        ccond)
    cases;
  f.fbody <- Cases cases

let accumulate f ~over ?init ~index ~value op =
  (match f.Ast.fbody with
  | Undefined -> ()
  | _ -> def_error "stage %s is already defined" f.fname);
  if List.length index <> Ast.func_arity f then
    def_error "accumulator %s indexed with %d expressions (arity %d)" f.fname
      (List.length index) (Ast.func_arity f);
  let rvars = List.map fst over in
  List.iter (check_vars f rvars) index;
  check_vars f rvars value;
  let init = match init with Some x -> x | None -> Ast.redop_init op in
  f.fbody <-
    Reduce
      {
        rvars;
        rdom = List.map snd over;
        rinit = init;
        rindex = index;
        rvalue = value;
        rop = op;
      }

(* Kernel centre: middle row/column (for the usual odd-sized kernels). *)
let centred_taps w =
  let rows = List.length w in
  let cols = match w with [] -> 0 | r :: _ -> List.length r in
  let ci = rows / 2 and cj = cols / 2 in
  List.concat
    (List.mapi
       (fun r row -> List.mapi (fun c wt -> (r - ci, c - cj, wt)) row)
       w)

let weighted_sum terms =
  match terms with
  | [] -> Ast.Const 0.
  | (w0, e0) :: rest ->
    let term w e = if w = 1.0 then e else fl w *: e in
    List.fold_left (fun acc (w, e) -> acc +: term w e) (term w0 e0) rest

let stencil sample ?(scale = 1.0) w x y =
  let terms =
    List.filter_map
      (fun (dx, dy, wt) ->
        if wt = 0.0 then None
        else Some (wt, sample [ x +: i dx; y +: i dy ]))
      (centred_taps w)
  in
  let s = weighted_sum terms in
  if scale = 1.0 then s else fl scale *: s

let stencil1d sample ?(scale = 1.0) w x =
  let n = List.length w in
  let c = n / 2 in
  let terms =
    List.mapi (fun k wt -> (k - c, wt)) w
    |> List.filter_map (fun (d, wt) ->
           if wt = 0.0 then None else Some (wt, sample (x +: i d)))
  in
  let s = weighted_sum terms in
  if scale = 1.0 then s else fl scale *: s

let downsample2 sample ?(scale = 1.0) w x y =
  let terms =
    List.filter_map
      (fun (dx, dy, wt) ->
        if wt = 0.0 then None
        else Some (wt, sample [ (i 2 *: x) +: i dx; (i 2 *: y) +: i dy ]))
      (centred_taps w)
  in
  let s = weighted_sum terms in
  if scale = 1.0 then s else fl scale *: s

let upsample2 sample x y =
  (* Separable bilinear interpolation of the half-resolution grid:
     even coordinates copy, odd coordinates average the two
     neighbours.  All four index forms are affine ((x +- 1)/2), so the
     scaling phase can fuse across the resolution change (paper
     Fig. 6). *)
  let along_y ix =
    select
      (y %^ 2 =: i 0)
      (sample [ ix; y /^ 2 ])
      (fl 0.5 *: (sample [ ix; (y -: i 1) /^ 2 ] +: sample [ ix; (y +: i 1) /^ 2 ]))
  in
  select
    (x %^ 2 =: i 0)
    (along_y (x /^ 2))
    (fl 0.5
    *: (select
          (y %^ 2 =: i 0)
          (sample [ (x -: i 1) /^ 2; y /^ 2 ])
          (fl 0.5
          *: (sample [ (x -: i 1) /^ 2; (y -: i 1) /^ 2 ]
             +: sample [ (x -: i 1) /^ 2; (y +: i 1) /^ 2 ]))
       +: select
            (y %^ 2 =: i 0)
            (sample [ (x +: i 1) /^ 2; y /^ 2 ])
            (fl 0.5
            *: (sample [ (x +: i 1) /^ 2; (y -: i 1) /^ 2 ]
               +: sample [ (x +: i 1) /^ 2; (y +: i 1) /^ 2 ]))))
