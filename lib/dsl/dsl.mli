(** The PolyMage surface language, embedded in OCaml (paper §2).

    Mirrors the Python-embedded constructs of the paper —
    [Parameter], [Image], [Variable], [Interval], [Function], [Case],
    [Condition], [Stencil], [Accumulator]/[Accumulate] — with OCaml
    operators for expressions and conditions.  OCaml plays the role of
    the meta-language: pyramids and multi-stage pipelines are built
    with ordinary loops and functions (cf. paper Fig. 1 lines 37–41).

    {[
      let r = parameter ~name:"R" () in
      let img = image ~name:"I" Float [ param_b r + ib 2; ... ] in
      let x = variable ~name:"x" () and y = variable ~name:"y" () in
      let row = interval (ib 0) (param_b r + ib 1) in
      let blur = func ~name:"blur" Float [ (x, row); (y, col) ] in
      define blur
        [ case
            ((v x >=: i 1) &&: (v x <=: p r))
            (stencil (img_at img) ~scale:(1. /. 9.)
               [ [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ]; [ 1.; 1.; 1. ] ]
               (v x) (v y)) ]
    ]} *)

open Polymage_ir

(** {1 Re-exported IR vocabulary} *)

type expr = Ast.expr
type cond = Ast.cond
type scalar = Types.scalar = UChar | Short | Int | Float | Double

(** {1 Declarations} *)

val parameter : ?name:string -> unit -> Types.param
val variable : ?name:string -> unit -> Types.var
val image : name:string -> scalar -> Abound.t list -> Ast.image
val interval : Abound.t -> Abound.t -> Interval.t

(** Inclusive bounds, step 1 (as in the paper's [Interval(lo,hi,1)]). *)

val func :
  name:string -> scalar -> (Types.var * Interval.t) list -> Ast.func

(** A [Function] with its variable domain; define it with {!define}. *)

(** {1 Affine bounds for domains and extents} *)

(** Constant bound. *)
val ib : int -> Abound.t
val param_b : Types.param -> Abound.t
val ( +~ ) : Abound.t -> Abound.t -> Abound.t
val ( -~ ) : Abound.t -> Abound.t -> Abound.t
val ( *~ ) : int -> Abound.t -> Abound.t
val ( /~ ) : Abound.t -> int -> Abound.t

(** Rational division of a bound (pyramid extents such as [R/4]). *)

(** {1 Expressions} *)

(** Integer literal. *)
val i : int -> expr

(** Float literal. *)
val fl : float -> expr
val v : Types.var -> expr
val p : Types.param -> expr

(** Stage value reference. *)
val app : Ast.func -> expr list -> expr

(** Image pixel reference. *)
val img_at : Ast.image -> expr list -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr

(** Floor division by a constant.
    @raise Invalid_argument if the divisor is not positive. *)
val ( /^ ) : expr -> int -> expr

(** Remainder by a constant.
    @raise Invalid_argument if the divisor is not positive. *)
val ( %^ ) : expr -> int -> expr
val neg : expr -> expr
val abs_ : expr -> expr
val sqrt_ : expr -> expr
val exp_ : expr -> expr
val log_ : expr -> expr
val floor_ : expr -> expr
val pow_ : expr -> expr -> expr
val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr
val clamp : expr -> expr -> expr -> expr

(** [clamp e lo hi] *)

val cast : scalar -> expr -> expr
val select : cond -> expr -> expr -> expr

(** {1 Conditions} *)

val ( <: ) : expr -> expr -> cond
val ( <=: ) : expr -> expr -> cond
val ( >: ) : expr -> expr -> cond
val ( >=: ) : expr -> expr -> cond
val ( =: ) : expr -> expr -> cond
val ( <>: ) : expr -> expr -> cond
val ( &&: ) : cond -> cond -> cond
val ( ||: ) : cond -> cond -> cond
val not_ : cond -> cond

val between : expr -> expr -> expr -> cond

(** [between e lo hi] is [lo <= e && e <= hi]. *)

val in_box : (expr * expr * expr) list -> cond

(** Conjunction of [between] constraints; the common interior-domain
    condition of stencil stages (paper Fig. 1 lines 7–11). *)

(** {1 Definitions} *)

exception Definition_error of string

val case : cond -> expr -> Ast.case
val always : expr -> Ast.case

(** A case with no condition (whole domain). *)

val define : Ast.func -> Ast.case list -> unit

(** Set the function's body.  Checks that every variable used belongs
    to the function's domain, and that the function was not already
    defined. @raise Definition_error otherwise. *)

val accumulate :
  Ast.func ->
  over:(Types.var * Interval.t) list ->
  ?init:float ->
  index:expr list ->
  value:expr ->
  Ast.redop ->
  unit

(** Define an [Accumulator] (paper Fig. 3): for every point of the
    reduction domain [over], fold [value] into the cell addressed by
    [index] with the given operator.  [index] expressions range over
    the reduction variables. @raise Definition_error on misuse. *)

(** {1 Common patterns (paper Table 1)} *)

val stencil :
  (expr list -> expr) ->
  ?scale:float ->
  float list list ->
  expr ->
  expr ->
  expr

(** [stencil sample ~scale w x y] builds
    [scale * sum_ij w_ij * sample [x + i - ci; y + j - cj]] with the
    kernel centred at [(ci, cj)]; zero-weight taps are skipped (the
    paper's [Stencil] construct). *)

val stencil1d :
  (expr -> expr) -> ?scale:float -> float list -> expr -> expr

val downsample2 :
  (expr list -> expr) -> ?scale:float -> float list list -> expr -> expr -> expr

(** 2x-decimating stencil: taps at [(2x + i - ci, 2y + j - cj)]. *)

val upsample2 :
  (expr list -> expr) -> expr -> expr -> expr

(** Bilinear 2x upsampling of a half-resolution sampler (Table 1's
    Upsample pattern, made well-defined with even/odd interpolation). *)
