(** Compiled-C execution backend.

    Emits the plan's C translation unit with a raw-blob [main]
    ({!Polymage_codegen.Cgen.emit_raw_main}), compiles it through the
    size-bounded on-disk {!Cache} (key: compiler identity + flags +
    source hash), executes it as a subprocess with
    [OMP_NUM_THREADS = opts.workers], and reads every output blob back
    into a {!Polymage_rt.Buffer.t} — the same {!Polymage_rt.Executor.result}
    shape the native executor produces, so callers can diff them
    element-wise.

    Instrumented with [backend.*] {!Polymage_util.Trace} spans and the
    counters [backend/compile_ms], [backend/cache_hit],
    [backend/cache_miss], [backend/cache_corrupt],
    [backend/cache_evictions], [backend/compile_invocations],
    [backend/exec_ms]. *)

open Polymage_ir
module Comp = Polymage_compiler
module Rt = Polymage_rt

type kind = Native | C

val kind_of_string : string -> kind option
val kind_to_string : kind -> string

type stats = {
  cache_hit : bool;  (** artifact came from the cache *)
  compile_ms : float;  (** wall time spent compiling (0 on a hit) *)
  exec_ms : float;  (** wall time of the subprocess run *)
  time_ms : float option;
      (** the binary's own best-of-[repeats] pipeline time, when
          [repeats > 0] — excludes process start-up and blob I/O *)
}

val run :
  ?cache_dir:string ->
  ?repeats:int ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  Rt.Executor.result * stats
(** Compile (or fetch) and execute the plan.  A cached artifact that
    fails to execute is invalidated and rebuilt once before the error
    propagates.  @raise Polymage_util.Err.Polymage_error when no
    compiler is available (phase [Codegen]), compilation fails, the
    subprocess exits non-zero (phase [Exec]), or an output blob is
    malformed (phase [IO]). *)

val run_safe :
  ?cache_dir:string ->
  ?repeats:int ->
  ?pool:Rt.Pool.t ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  (Rt.Executor.result * stats option) * Rt.Executor.degradation list
(** {!run} with the degradation ladder extended one rung above the
    native executor's: a failing C backend (no compiler, compile
    error, exec error) records a ["c-backend"] degradation and falls
    back to {!Rt.Executor.run_safe} (stats become [None]). *)

val profile :
  ?cache_dir:string ->
  opts:Comp.Options.t ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  unit ->
  Rt.Profile.report * stats
(** Compile and run through the C backend under forced tracing +
    metrics — the compiled-backend counterpart of
    {!Polymage_rt.Profile.run} ([wall_ms] is the subprocess wall
    time). *)

val describe : ?cache_dir:string -> unit -> string
(** One line for [explain]/reports: compiler identity and cache
    occupancy. *)
