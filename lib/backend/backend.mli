(** Compiled-C execution backend: the c-subprocess and c-dlopen tiers.

    Both tiers emit the plan's C translation unit and compile it
    through the size-bounded on-disk {!Cache} (key: compiler identity
    + flags + source hash); they differ in artifact kind and call
    mechanics:

    - {!run} (c-subprocess): a raw-blob [main]
      ({!Polymage_codegen.Cgen.emit_raw_main}) executed as a child
      process with [OMP_NUM_THREADS = opts.workers], inputs and
      outputs crossing as [.raw] temp files;
    - {!run_dl} (c-dlopen): a shared object exporting
      [polymage_run] ({!Polymage_codegen.Cgen.emit_raw_entry}),
      dlopened once per process ({!Dlexec}) and called in-process on
      Bigarray-backed buffers — no spawn, no blob I/O.

    The in-process tier is crash-safe through the quarantine protocol:
    a shared object of unknown provenance is never dlopen'd directly —
    its first execution happens in the crash-isolated {!Canary} child,
    and only a clean canary run promotes it to {!Cache.Trusted} (the
    persistent trust bit in the cache meta).  A crash marker written
    around every in-process call demotes an artifact whose previous
    process died mid-call.  Subprocess and canary executions honor the
    plan's [exec_timeout_ms] watchdog; canary runs are always bounded.
    Compilation retries transient toolchain failures (signal-killed
    compiler) with jittered backoff, and concurrent processes
    compiling the same key are single-flighted through the cache's
    advisory lock.

    Either way the caller gets the same {!Polymage_rt.Executor.result}
    shape the native executor produces, so results can be diffed
    element-wise.

    Instrumented with [backend.*] {!Polymage_util.Trace} spans and the
    counters [backend/compile_ms], [backend/cache_hit],
    [backend/cache_miss], [backend/cache_corrupt],
    [backend/cache_evictions], [backend/compile_invocations],
    [backend/compile_retries], [backend/exec_ms],
    [backend/subprocess_spawns], [backend/dl_loads],
    [backend/dl_calls], [backend/quarantine_runs],
    [backend/promotions], [backend/quarantine_failures],
    [backend/crash_demotions], [backend/watchdog_kills],
    [backend/flight_waits], [backend/flight_stale],
    [backend/capture_truncated]. *)

open Polymage_ir
module Comp = Polymage_compiler
module Rt = Polymage_rt

type stats = {
  cache_hit : bool;  (** artifact came from the cache *)
  compile_ms : float;  (** wall time spent compiling (0 on a hit) *)
  exec_ms : float;  (** wall time of the first execution *)
  time_ms : float option;
      (** best-of-[repeats] steady-state pipeline time, when
          [repeats > 0]: the subprocess binary's own [TIME_MS]
          (excludes start-up and blob I/O) for {!run}; best
          in-process call time for {!run_dl} *)
  quarantined : bool;
      (** this execution was a quarantine canary run (crash-isolated
          child; a clean run promoted the artifact to trusted, so the
          next call runs in-process) *)
}

val resolve_simd :
  Comp.Options.t -> Polymage_codegen.Cgen.simd_level option
(** The explicit SIMD level the backend will hand to codegen for these
    options: [Simd_off] is [None], a forced mode maps to its level
    directly (portable even on hosts lacking the ISA — the emitted C
    stays arch-neutral and the fast-math dispatcher caps at cpuid),
    and [Simd_auto] consults {!Toolchain.isa_lookup} (compile-and-run
    probe, [POLYMAGE_ISA] override). *)

val compile : ?cache_dir:string -> Comp.Plan.t -> string * float * bool * string * string
(** Compile (or fetch) the plan's raw-main executable:
    [(path, compile_ms, cache_hit, key, dir)]. *)

val compile_so : ?cache_dir:string -> Comp.Plan.t -> string * float * bool * string * string
(** Compile (or fetch) the plan's shared-object artifact with the
    toolchain's [-shared -fPIC] flag set.
    @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when the
    compiler cannot build shared objects. *)

val run :
  ?cache_dir:string ->
  ?repeats:int ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  Rt.Executor.result * stats
(** Compile (or fetch) and execute the plan as a subprocess.  A cached
    artifact that fails to execute is invalidated and rebuilt once
    before the error propagates.
    @raise Polymage_util.Err.Polymage_error when no compiler is
    available (phase [Codegen]), compilation fails, the subprocess
    exits non-zero (phase [Exec]), or an output blob is malformed
    (phase [IO]). *)

exception Stale_artifact
(** Raised by {!run_dl_pinned} when the pinned artifact is gone or no
    longer trusted; fall back to {!run_dl} to re-resolve. *)

val run_dl_pinned :
  ?repeats:int ->
  dir:string ->
  key:string ->
  so:string ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  Rt.Executor.result * stats
(** Execute an already-resolved trusted shared object in-process: the
    warm-server hot path.  Unlike {!run_dl} it does not re-emit and
    re-hash the generated C to recompute the cache key, so a long-lived
    process pays only the quarantine-protocol file ops and the
    boundary copies per call.  @raise Stale_artifact when the artifact
    is missing or not trusted (invalidated, demoted, still
    quarantined); other execution errors propagate as usual. *)

val run_dl :
  ?cache_dir:string ->
  ?repeats:int ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  Rt.Executor.result * stats
(** Compile (or fetch) the shared-object artifact and execute it
    under the quarantine protocol: quarantined artifacts run in the
    crash-isolated canary child (promoted to trusted on success,
    invalidated on failure — the error then propagates so the tier
    ladder can degrade a rung); trusted artifacts run in-process with
    a crash marker maintained around the call.  A stale marker (a
    previous process died mid-call) demotes the artifact and
    recompiles once; a trusted artifact that fails recoverably (load
    error, geometry disagreement) is invalidated and rebuilt once,
    re-entering quarantine.
    @raise Polymage_util.Err.Polymage_error when no compiler is
    available or it cannot build shared objects (phase [Codegen]),
    compilation fails, the canary run fails (phase [Exec] — the
    detail names the signal or watchdog deadline), or the object
    cannot be loaded/called (phase [Exec]). *)

val run_safe :
  ?cache_dir:string ->
  ?repeats:int ->
  ?pool:Rt.Pool.t ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  (Rt.Executor.result * stats option) * Rt.Executor.degradation list
(** {!run} with the degradation ladder extended one rung above the
    native executor's: a failing subprocess backend (no compiler,
    compile error, exec error) records a ["c-subprocess"] degradation
    and falls back to {!Rt.Executor.run_safe} (stats become [None]).
    The full three-tier ladder lives in {!Exec_tier.run_safe}. *)

val profile :
  ?cache_dir:string ->
  ?use_dl:bool ->
  opts:Comp.Options.t ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  unit ->
  Rt.Profile.report * stats
(** Compile and run through the C backend under forced tracing +
    metrics — the compiled-backend counterpart of
    {!Polymage_rt.Profile.run} ([wall_ms] is the first execution's
    wall time).  [use_dl] selects the in-process tier. *)

val describe : ?cache_dir:string -> unit -> string
(** One line for [explain]/reports: compiler identity and cache
    occupancy. *)
