(** C-compiler discovery, shared by the compiled backend, the
    benchmark harness and the codegen tests.

    Honors [POLYMAGE_CC]: when set, that command is the only candidate
    (a broken value means "no compiler", which is how tests drive the
    degradation ladder); otherwise [cc], [gcc], [clang] are tried in
    order.  Each candidate is probed for the best working flag set:
    [-O3 -march=native -fopenmp], then without OpenMP, then a bare
    [-O1] fallback.  Results are memoized per [POLYMAGE_CC] value for
    the process. *)

type t = {
  cc : string;  (** compiler command *)
  version : string;  (** first line of [cc --version] *)
  flags : string;  (** best flag set the compiler accepted *)
  has_openmp : bool;
}

val lookup : unit -> t option
val available : unit -> bool

val get : unit -> t
(** @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when no
    usable compiler exists — the trigger for [run_safe] degradation
    to the native executor. *)

val describe : unit -> string
(** One line for reports: command, version, OpenMP availability. *)
