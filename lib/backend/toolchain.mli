(** C-compiler discovery, shared by the compiled backend, the
    benchmark harness and the codegen tests.

    Honors [POLYMAGE_CC]: when set, that command is the only candidate
    (a broken value means "no compiler", which is how tests drive the
    degradation ladder); otherwise [cc], [gcc], [clang] are tried in
    order.  Each candidate is probed for the best working flag set:
    [-O3 -march=native -fopenmp], then without OpenMP, then a bare
    [-O1] fallback — and the accepted set is probed once more with
    [-shared -fPIC] for the in-process shared-object tier.  Results
    are memoized per [POLYMAGE_CC] value for the process.  Probes exec
    the compiler directly ({!Proc}), never through a shell. *)

type t = {
  cc : string;  (** compiler command *)
  version : string;  (** first line of [cc --version] *)
  flags : string;  (** best flag set the compiler accepted *)
  has_openmp : bool;
  so_flags : string option;
      (** [flags] + ["-shared -fPIC"] when the compiler can build
          shared objects; [None] disables the c-dlopen tier *)
}

val lookup : unit -> t option
val available : unit -> bool

val get : unit -> t
(** @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when no
    usable compiler exists — the trigger for [run_safe] degradation
    to the native executor. *)

val so_flags_exn : t -> string
(** The shared-object flag set.
    @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when the
    compiler cannot build shared objects — the trigger for the
    c-dlopen -> c-subprocess degradation. *)

val split_flags : string -> string list
(** Split a flag string on whitespace for argv execution; flag strings
    stay whole everywhere else because they are part of the artifact
    cache key. *)

val describe : unit -> string
(** One line for reports: command, version, OpenMP and shared-object
    availability. *)
