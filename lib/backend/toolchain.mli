(** C-compiler discovery, shared by the compiled backend, the
    benchmark harness and the codegen tests.

    Honors [POLYMAGE_CC]: when set, that command is the only candidate
    (a broken value means "no compiler", which is how tests drive the
    degradation ladder); otherwise [cc], [gcc], [clang] are tried in
    order.  Each candidate is probed for the best working flag set:
    [-O3 -march=native -fopenmp], then without OpenMP, then a bare
    [-O1] fallback — and the accepted set is probed once more with
    [-shared -fPIC] for the in-process shared-object tier.  Results
    are memoized per [POLYMAGE_CC] value for the process.  Probes exec
    the compiler directly ({!Proc}), never through a shell. *)

type t = {
  cc : string;  (** compiler command *)
  version : string;  (** first line of [cc --version] *)
  flags : string;  (** best flag set the compiler accepted *)
  has_openmp : bool;
  so_flags : string option;
      (** [flags] + ["-shared -fPIC"] when the compiler can build
          shared objects; [None] disables the c-dlopen tier *)
}

val lookup : unit -> t option
val available : unit -> bool

val get : unit -> t
(** @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when no
    usable compiler exists — the trigger for [run_safe] degradation
    to the native executor. *)

val so_flags_exn : t -> string
(** The shared-object flag set.
    @raise Polymage_util.Err.Polymage_error (phase [Codegen]) when the
    compiler cannot build shared objects — the trigger for the
    c-dlopen -> c-subprocess degradation. *)

val split_flags : string -> string list
(** Split a flag string on whitespace for argv execution; flag strings
    stay whole everywhere else because they are part of the artifact
    cache key. *)

(** Highest vector ISA level this machine can execute, as established
    by compiling and running a cpuid feature check (not a compile-only
    test: the answer drives codegen decisions that must match the
    hardware, not the compiler). *)
type isa = Sse2 | Avx2 | Avx512

val isa_to_string : isa -> string
val isa_of_string : string -> isa option

val isa_lookup : unit -> isa option
(** The probed ISA level, or [None] when no compiler is available, the
    probe fails, or the host is not x86-64.  Honors [POLYMAGE_ISA]
    (mirroring [POLYMAGE_CC]): ["sse2"|"avx2"|"avx512"] force that
    level without probing — safe even above the hardware, because
    emitted artifacts still select fast-math code paths by cpuid at
    load time — and ["off"] answers [None].  Memoized per
    ([POLYMAGE_CC], [POLYMAGE_ISA]) pair under a mutex; safe to call
    from background compile domains. *)

val simd_cflags : string
(** Extra compile flags the backend appends when the emitted source
    batches transcendentals (currently [-fno-trapping-math], which
    licenses the if-conversion the vector fast-math bodies rely on
    without changing any computed value).  Skipped entirely for plans
    with nothing to batch, so their compile command — and artifact —
    is identical to the SIMD-off one. *)

val describe : unit -> string
(** One line for reports: command, version, OpenMP and shared-object
    availability. *)
