(** In-process loading and invocation of shared-object artifacts —
    the bottom half of the c-dlopen tier.

    Keeps a path-keyed registry of open handles: dlopen of an
    already-loaded path returns the stale image, so the backend must
    {!forget} a path before invalidating and rebuilding the artifact
    behind it.  Buffers cross the boundary as Bigarrays (data off the
    OCaml heap), letting the stubs release the runtime lock for the
    duration of the pipeline call. *)

type f64s =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i32s =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type i64s =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

val get : path:string -> symbol:string -> nativeint
(** Entry pointer for [symbol] in the shared object at [path], loading
    it on first use ([backend/dl_loads]).  The pointer stays valid
    until {!forget}.  Fault site ["dlopen"].
    @raise Polymage_util.Err.Polymage_error (phase [Exec]) when the
    object cannot be loaded or lacks the symbol — the trigger for the
    c-dlopen -> c-subprocess degradation. *)

val forget : string -> unit
(** dlclose the path's handle and drop it from the registry (no-op
    when not loaded).  Must precede any invalidate+rebuild of the
    artifact, or the rebuilt file would be shadowed by the stale
    in-memory image. *)

val loaded : string -> bool
(** Whether the path currently has an open handle (for tests). *)

val call :
  nativeint ->
  nthreads:int ->
  params:i32s ->
  ins:f64s array ->
  outs:f64s array ->
  totals:i64s ->
  int
(** Invoke a {!get}-obtained entry ([backend/dl_calls]): the exit
    status of [polymage_run] — 0 on success, [k+1] when the artifact
    disagrees with the caller about output [k]'s element count. *)
