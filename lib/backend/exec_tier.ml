(* The execution-tier interface: one dial — native OCaml executor,
   compiled C as a subprocess, compiled C in-process via dlopen, or
   [Auto], which serves immediately on whatever is ready while the
   shared object compiles in a background domain and hot-swaps when it
   lands.

   The degradation ladder composes left to right:

     c-dlopen -> c-subprocess -> native (opt+vec+kernels -> opt -> naive)

   Each rung records a degradation and falls to the next; the caller
   always gets a result (or the native executor's terminal error).
   The c-dlopen rung never dlopens an unvetted artifact: Backend's
   quarantine protocol runs the first execution in a crash-isolated
   canary child, so a crashing or hanging shared object kills (or
   times out) the canary, the entry is invalidated, and this ladder
   degrades to c-subprocess with the parent intact. *)

module Comp = Polymage_compiler
module Rt = Polymage_rt
module Err = Polymage_util.Err

type t = Native | C_subprocess | C_dlopen | Auto

let to_string = function
  | Native -> "native"
  | C_subprocess -> "c"
  | C_dlopen -> "c-dlopen"
  | Auto -> "auto"

let of_string = function
  | "native" -> Some Native
  | "c" | "c-subprocess" -> Some C_subprocess
  | "c-dlopen" -> Some C_dlopen
  | "auto" -> Some Auto
  | _ -> None

let all = [ Native; C_subprocess; C_dlopen; Auto ]

(* ---- background compilation state for Auto ---- *)

type auto_phase = Compiling | Ready | Failed of string

type auto = {
  plan : Comp.Plan.t;
  cache_dir : string option;
  state : auto_phase Atomic.t;
  mutable artifact : (string * string * string) option;
      (* (dir, key, so) pinned once the compile lands, so warm calls
         skip the per-call source re-emission run_dl pays to recompute
         the cache key; published before [state] flips to [Ready] *)
  mutable domain : unit Domain.t option;
}

let auto_start ?cache_dir (plan : Comp.Plan.t) =
  (* Probe the toolchain on this domain first: the memo table is a
     plain Hashtbl, so the background domain must only read it.  The
     ISA probe's own table is mutex-protected, but prewarming it here
     too keeps the compile domain from paying the compile-and-run
     probe. *)
  ignore (Toolchain.lookup ());
  ignore (Toolchain.isa_lookup ());
  let a =
    { plan; cache_dir; state = Atomic.make Compiling; artifact = None;
      domain = None }
  in
  let domain =
    Domain.spawn (fun () ->
        match Backend.compile_so ?cache_dir plan with
        | so, _ms, _hit, key, dir ->
          a.artifact <- Some (dir, key, so);
          Atomic.set a.state Ready
        | exception e ->
          Atomic.set a.state (Failed (Err.to_string (Err.of_exn e))))
  in
  a.domain <- Some domain;
  a

let auto_state a =
  match Atomic.get a.state with
  | Compiling -> "compiling"
  | Ready -> "ready"
  | Failed m -> "failed: " ^ m

let auto_artifact a = a.artifact

let auto_await a =
  match a.domain with
  | None -> ()
  | Some d ->
    a.domain <- None;
    Domain.join d

(* ---- unified execution ---- *)

let rec run_safe ?cache_dir ?repeats ?pool tier (plan : Comp.Plan.t) env
    ~images =
  match tier with
  | Native ->
    let result, degr = Rt.Executor.run_safe ?pool plan env ~images in
    ((result, None), degr)
  | C_subprocess -> Backend.run_safe ?cache_dir ?repeats ?pool plan env ~images
  | C_dlopen -> (
    match Backend.run_dl ?cache_dir ?repeats plan env ~images with
    | result, st -> ((result, Some st), [])
    | exception e ->
      let d = { Rt.Executor.rung = "c-dlopen"; error = Err.of_exn e } in
      let result, degr =
        run_safe ?cache_dir ?repeats ?pool C_subprocess plan env ~images
      in
      (result, d :: degr))
  | Auto ->
    (* One-shot Auto: serve on whatever is ready, then join the
       compile domain so no background work outlives the call.  The
       hot-swap loop (serve repeatedly, swap mid-stream) uses the
       explicit {!auto_start}/{!auto_run} API. *)
    let a = auto_start ?cache_dir plan in
    let result, degr, _served = auto_run ?repeats ?pool a env ~images in
    auto_await a;
    (result, degr)

and auto_run ?repeats ?pool a env ~images =
  match Atomic.get a.state with
  | Ready -> (
    let full () =
      let result, degr =
        run_safe ?cache_dir:a.cache_dir ?repeats ?pool C_dlopen a.plan env
          ~images
      in
      (result, degr, "c-dlopen")
    in
    match a.artifact with
    | None -> full ()
    | Some (dir, key, so) -> (
      match Backend.run_dl_pinned ?repeats ~dir ~key ~so a.plan env ~images with
      | result, st -> (((result, Some st) : _ * Backend.stats option), [], "c-dlopen")
      | exception _ ->
        (* The pin no longer holds (artifact invalidated or demoted)
           or the call failed; drop it, take the full path — which
           re-resolves through the cache and can degrade — then try to
           re-pin off the (now warm) cache. *)
        a.artifact <- None;
        let r = full () in
        (match Backend.compile_so ?cache_dir:a.cache_dir a.plan with
        | so, _ms, _hit, key, dir -> a.artifact <- Some (dir, key, so)
        | exception _ -> ());
        r))
  | Compiling | Failed _ ->
    (* Not ready (or sticky failure: the compile will not be retried)
       — serve on the native executor. *)
    let result, degr =
      run_safe ?cache_dir:a.cache_dir ?repeats ?pool Native a.plan env
        ~images
    in
    (result, degr, "native")

let run ?cache_dir ?repeats tier (plan : Comp.Plan.t) env ~images =
  match tier with
  | Native -> (Rt.Executor.run plan env ~images, None)
  | C_subprocess ->
    let r, st = Backend.run ?cache_dir ?repeats plan env ~images in
    (r, Some st)
  | C_dlopen ->
    let r, st = Backend.run_dl ?cache_dir ?repeats plan env ~images in
    (r, Some st)
  | Auto ->
    let a = auto_start ?cache_dir plan in
    auto_await a;
    let r, st = Backend.run_dl ?cache_dir:a.cache_dir ?repeats a.plan env ~images in
    (r, Some st)

let profile ?cache_dir ~opts ~outputs ~env ~images tier =
  match tier with
  | Native -> (Rt.Profile.run ~opts ~outputs ~env ~images, None)
  | C_subprocess ->
    let r, st = Backend.profile ?cache_dir ~opts ~outputs ~env ~images () in
    (r, Some st)
  | C_dlopen | Auto ->
    let r, st =
      Backend.profile ?cache_dir ~use_dl:true ~opts ~outputs ~env ~images ()
    in
    (r, Some st)

let describe = function
  | Native -> "backend native: the OCaml executor"
  | C_subprocess | C_dlopen | Auto -> Backend.describe ()
