(* On-disk artifact cache for compiled pipelines.

   Layout: one <key>.exe + <key>.meta pair per artifact in a flat
   directory, key = MD5 of (compiler identity, flags, emitted source).
   The meta file records the executable's byte size: a missing,
   unparseable or mismatching meta marks the entry corrupt (partial
   store, torn write) and it is silently discarded — the contract is
   "bad artifact => recompile, never crash".  Stores go through a
   temporary name + rename so a concurrent reader only ever sees whole
   files; the meta is written after the exe, so any crash window
   leaves an exe without meta, which reads as corrupt.  Eviction is
   LRU by mtime — lookups touch their entry — bounded by
   [POLYMAGE_CACHE_BYTES] (default 256 MiB). *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics

let default_max_bytes = 256 * 1024 * 1024

let max_bytes () =
  match Sys.getenv_opt "POLYMAGE_CACHE_BYTES" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default_max_bytes)
  | None -> default_max_bytes

let default_dir () =
  match Sys.getenv_opt "POLYMAGE_CACHE_DIR" with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d -> Filename.concat d "polymage"
    | None -> (
      match Sys.getenv_opt "HOME" with
      | Some h -> Filename.concat (Filename.concat h ".cache") "polymage"
      | None -> Filename.concat (Filename.get_temp_dir_name ()) "polymage-cache"))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let key ~cc ~version ~flags ~source =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ cc; version; flags; source ]))

let exe_path ~dir key = Filename.concat dir (key ^ ".exe")
let meta_path ~dir key = Filename.concat dir (key ^ ".meta")

let read_meta_size path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | line -> (
          match String.split_on_char ' ' line with
          | [ "size"; n ] -> int_of_string_opt n
          | _ -> None)
        | exception End_of_file -> None)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> Some st_size
  | exception Unix.Unix_error _ -> None

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let invalidate ~dir key =
  remove_if_exists (exe_path ~dir key);
  remove_if_exists (meta_path ~dir key)

let touch path =
  try Unix.utimes path 0. 0. (* both zero: set to now *)
  with Unix.Unix_error _ -> ()

let lookup ~dir key =
  let exe = exe_path ~dir key and meta = meta_path ~dir key in
  match (file_size exe, read_meta_size meta) with
  | Some got, Some want when got = want && got > 0 ->
    touch exe;
    touch meta;
    Some exe
  | None, None -> None (* plain miss *)
  | _ ->
    (* partial or torn entry: discard, report a miss *)
    Metrics.bumpn "backend/cache_corrupt";
    invalidate ~dir key;
    None

(* Atomic-ish write: temp name in the same directory, then rename. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n ->
           if Filename.check_suffix n ".exe" then
             let k = Filename.chop_suffix n ".exe" in
             let exe = exe_path ~dir k in
             match Unix.stat exe with
             | { Unix.st_size; st_mtime; _ } ->
               let bytes =
                 st_size
                 + Option.value ~default:0 (file_size (meta_path ~dir k))
               in
               Some (k, bytes, st_mtime)
             | exception Unix.Unix_error _ -> None
           else None)

let evict ?max_bytes:limit ?keep dir =
  let limit = match limit with Some l -> l | None -> max_bytes () in
  let es =
    List.sort (fun (_, _, a) (_, _, b) -> compare a b) (entries dir)
  in
  let total = List.fold_left (fun acc (_, b, _) -> acc + b) 0 es in
  let evicted = ref 0 in
  let rec go total = function
    | [] -> ()
    | _ when total <= limit -> ()
    | (k, bytes, _) :: rest ->
      if Some k = keep then go total rest
      else begin
        invalidate ~dir k;
        incr evicted;
        Metrics.bumpn "backend/cache_evictions";
        go (total - bytes) rest
      end
  in
  go total es;
  !evicted

let store ~dir ~key ~build =
  mkdir_p dir;
  let exe = exe_path ~dir key in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".build.%d.%s.exe" (Unix.getpid ()) key)
  in
  Fun.protect
    ~finally:(fun () -> remove_if_exists tmp)
    (fun () ->
      build tmp;
      match file_size tmp with
      | None | Some 0 ->
        Err.fail Err.Codegen ~stage:key
          "Cache.store: build produced no executable"
      | Some size ->
        Sys.rename tmp exe;
        write_file_atomic (meta_path ~dir key)
          (Printf.sprintf "size %d\n" size));
  ignore (evict ~keep:key dir);
  exe

let stats dir =
  let es = entries dir in
  (List.length es, List.fold_left (fun acc (_, b, _) -> acc + b) 0 es)
