(* On-disk artifact cache for compiled pipelines.

   Layout: one <key>.exe or <key>.so plus <key>.meta per artifact in a
   flat directory, key = MD5 of (compiler identity, flags, emitted
   source).  A key never names both kinds: the shared-object build
   uses different flags and a different emitted entry point, so the
   digests diverge by construction.  The meta file records the
   artifact's byte size, kind, exported entry symbol and trust state
   (meta format 3; format-2 files from before the quarantine layer
   lack the trust line and read back as quarantined — safe, a canary
   run re-earns trust; format-1 files from before the shared-object
   tier carry only the size and read back as kind=exe, entry=main —
   old entries stay usable, they are not invalidated).  Trust is the
   quarantine protocol's persistent bit: artifacts are stored
   quarantined, promoted to trusted only after a clean crash-isolated
   first execution, and only trusted shared objects are ever dlopen'd
   into the parent process.  A missing, unparseable or
   mismatching meta — or a meta whose kind disagrees with the artifact
   suffix on disk — marks the entry corrupt (partial store, torn
   write) and it is silently discarded: the contract is "bad artifact
   => recompile, never crash/execute".  Stores go through a temporary
   name + rename so a concurrent reader only ever sees whole files;
   the meta is written after the artifact, so any crash window leaves
   an artifact without meta, which reads as corrupt.  Eviction is LRU
   by mtime over both kinds — lookups touch their entry — bounded by
   [POLYMAGE_CACHE_BYTES] (default 256 MiB). *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics

type kind = Exe | So

let kind_to_string = function Exe -> "exe" | So -> "so"

let kind_of_string = function
  | "exe" -> Some Exe
  | "so" -> Some So
  | _ -> None

let suffix_of_kind k = "." ^ kind_to_string k

type trust = Quarantined | Trusted

let trust_to_string = function
  | Quarantined -> "quarantined"
  | Trusted -> "trusted"

let trust_of_string = function
  | "quarantined" -> Some Quarantined
  | "trusted" -> Some Trusted
  | _ -> None

let default_max_bytes = 256 * 1024 * 1024

let max_bytes () =
  match Sys.getenv_opt "POLYMAGE_CACHE_BYTES" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default_max_bytes)
  | None -> default_max_bytes

let default_dir () =
  match Sys.getenv_opt "POLYMAGE_CACHE_DIR" with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d -> Filename.concat d "polymage"
    | None -> (
      match Sys.getenv_opt "HOME" with
      | Some h -> Filename.concat (Filename.concat h ".cache") "polymage"
      | None -> Filename.concat (Filename.get_temp_dir_name ()) "polymage-cache"))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* [tag] carries configuration that changes the artifact without
   necessarily changing (cc, version, flags, source) — the explicit
   SIMD level, today.  An empty tag hashes exactly like the
   four-element legacy key, so every artifact cached before the tag
   existed keeps its identity (meta compat is tested). *)
let key ~tag ~cc ~version ~flags ~source =
  let parts =
    [ cc; version; flags; source ] @ if tag = "" then [] else [ tag ]
  in
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let artifact_path ~dir ~kind key = Filename.concat dir (key ^ suffix_of_kind kind)
let exe_path ~dir key = artifact_path ~dir ~kind:Exe key
let meta_path ~dir key = Filename.concat dir (key ^ ".meta")

type meta = {
  m_size : int;
  m_kind : kind;
  m_entry : string;
  m_trust : trust;
}

(* Meta format 3: "size N\nkind exe|so\nentry SYMBOL\ntrust T\n".
   Format-2 files (PR 6) lack the trust line and read back
   quarantined — the safe default: an artifact of unknown provenance
   must re-earn trust through a canary run before it is dlopen'd.
   Format-1 files (PR 5) hold only the size line; they read back with
   the defaults an executable artifact always had.  An unrecognized
   trust value also reads as quarantined rather than corrupt. *)
let read_meta ~dir k =
  match open_in (meta_path ~dir k) with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let fields = Hashtbl.create 4 in
        (try
           while true do
             let line = input_line ic in
             match String.index_opt line ' ' with
             | None -> ()
             | Some i ->
               Hashtbl.replace fields (String.sub line 0 i)
                 (String.sub line (i + 1) (String.length line - i - 1))
           done
         with End_of_file -> ());
        match
          Option.bind (Hashtbl.find_opt fields "size") int_of_string_opt
        with
        | None -> None
        | Some m_size ->
          let m_kind =
            match Hashtbl.find_opt fields "kind" with
            | None -> Some Exe (* format 1 *)
            | Some s -> kind_of_string s
          in
          let m_entry =
            Option.value ~default:"main" (Hashtbl.find_opt fields "entry")
          in
          let m_trust =
            match Hashtbl.find_opt fields "trust" with
            | None -> Quarantined (* formats 1-2 predate trust *)
            | Some s -> Option.value ~default:Quarantined (trust_of_string s)
          in
          Option.map
            (fun m_kind -> { m_size; m_kind; m_entry; m_trust })
            m_kind)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> Some st_size
  | exception Unix.Unix_error _ -> None

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let marker_path ~dir key = Filename.concat dir (key ^ ".inflight")

(* Kind-agnostic on purpose: invalidation is the corruption/recovery
   path, where the artifact suffix on disk may disagree with the meta.
   Any crash marker goes too: the entry it attributed is gone. *)
let invalidate ~dir key =
  remove_if_exists (artifact_path ~dir ~kind:Exe key);
  remove_if_exists (artifact_path ~dir ~kind:So key);
  remove_if_exists (meta_path ~dir key);
  remove_if_exists (marker_path ~dir key)

let touch path =
  try Unix.utimes path 0. 0. (* both zero: set to now *)
  with Unix.Unix_error _ -> ()

let lookup ?(kind = Exe) ~dir key =
  let art = artifact_path ~dir ~kind key in
  match (file_size art, read_meta ~dir key) with
  | Some got, Some m when m.m_kind = kind && got = m.m_size && got > 0 ->
    touch art;
    touch (meta_path ~dir key);
    Some art
  | None, None -> None (* plain miss *)
  | None, Some m when m.m_kind <> kind ->
    (* the key exists as the other kind; not corrupt, just a miss for
       this kind (cannot happen for content-hashed keys, but the cache
       does not rely on that) *)
    None
  | _ ->
    (* partial or torn entry, or meta kind disagreeing with the
       artifact on disk: discard, report a miss *)
    Metrics.bumpn "backend/cache_corrupt";
    invalidate ~dir key;
    None

let entry_symbol ~dir key =
  Option.map (fun m -> m.m_entry) (read_meta ~dir key)

(* Atomic-ish write: temp name in the same directory, then rename. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n ->
           let kinded =
             if Filename.check_suffix n ".exe" then
               Some (Filename.chop_suffix n ".exe", Exe)
             else if Filename.check_suffix n ".so" then
               Some (Filename.chop_suffix n ".so", So)
             else None
           in
           match kinded with
           | None -> None
           | Some (k, kind) -> (
             let art = artifact_path ~dir ~kind k in
             match Unix.stat art with
             | { Unix.st_size; st_mtime; _ } ->
               let bytes =
                 st_size
                 + Option.value ~default:0 (file_size (meta_path ~dir k))
               in
               Some (k, kind, bytes, st_mtime)
             | exception Unix.Unix_error _ -> None))

let evict ?max_bytes:limit ?keep dir =
  let limit = match limit with Some l -> l | None -> max_bytes () in
  let es =
    List.sort
      (fun (_, _, _, a) (_, _, _, b) -> compare a b)
      (entries dir)
  in
  let total = List.fold_left (fun acc (_, _, b, _) -> acc + b) 0 es in
  let evicted = ref 0 in
  let rec go total = function
    | [] -> ()
    | _ when total <= limit -> ()
    | (k, _, bytes, _) :: rest ->
      if Some k = keep then go total rest
      else begin
        invalidate ~dir k;
        incr evicted;
        Metrics.bumpn "backend/cache_evictions";
        go (total - bytes) rest
      end
  in
  go total es;
  !evicted

let meta_content m =
  Printf.sprintf "size %d\nkind %s\nentry %s\ntrust %s\n" m.m_size
    (kind_to_string m.m_kind) m.m_entry (trust_to_string m.m_trust)

let trust ~dir key = Option.map (fun m -> m.m_trust) (read_meta ~dir key)

(* Rewrite only the trust line, preserving whatever size/kind/entry
   the meta already records; a missing or unreadable meta means the
   entry reads as corrupt anyway, so there is nothing to promote. *)
let set_trust ~dir ~key t =
  match read_meta ~dir key with
  | None -> ()
  | Some m -> (
    try write_file_atomic (meta_path ~dir key) (meta_content { m with m_trust = t })
    with Sys_error _ -> ())

let trust_stats dir =
  List.fold_left
    (fun (tn, qn) (k, kind, _, _) ->
      match kind with
      | Exe -> (tn, qn)
      | So -> (
        match trust ~dir k with
        | Some Trusted -> (tn + 1, qn)
        | _ -> (tn, qn + 1)))
    (0, 0) (entries dir)

(* Crash markers: a <key>.inflight file holding the caller's pid,
   written immediately before an in-process call into the key's
   artifact and removed immediately after.  If a later process finds a
   marker whose owner is dead, the previous process died mid-call —
   almost certainly inside the artifact — and the entry must lose its
   trust.  A marker owned by a live process is a concurrent run, not
   evidence of a crash. *)
let write_marker ~dir key =
  mkdir_p dir;
  try
    write_file_atomic (marker_path ~dir key)
      (string_of_int (Unix.getpid ()) ^ "\n")
  with Sys_error _ -> ()

let clear_marker ~dir key = remove_if_exists (marker_path ~dir key)

let stale_marker ~dir key =
  match open_in (marker_path ~dir key) with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let line = try input_line ic with End_of_file -> "" in
        match int_of_string_opt (String.trim line) with
        | None -> true (* unreadable marker: cannot attribute, distrust *)
        | Some pid when pid = Unix.getpid () -> false
        | Some pid -> (
          match Unix.kill pid 0 with
          | () -> false (* owner alive: concurrent run, not a crash *)
          | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
          | exception Unix.Unix_error _ -> false (* EPERM: alive *)))

let lock_path ~dir key = Filename.concat dir (key ^ ".lock")

(* Cross-process single-flight for compilation of one key: an advisory
   fcntl lock on <key>.lock so concurrent processes compiling the same
   pipeline don't both pay for the build — the loser waits, then finds
   the winner's artifact with a cheap lookup.  fcntl locks do not
   exclude within one process (the auto tier's background domain
   coordinates through its own state machine), and they vanish with
   their owner, so a crashed holder cannot wedge anyone.  The deadline
   is a backstop against a pathologically slow holder: past it the
   waiter proceeds unlocked (worst case: a duplicate compile, the
   original failure mode). *)
let with_flight ?(stale_ms = 120_000) ~dir ~key f =
  mkdir_p dir;
  let fd =
    Unix.openfile (lock_path ~dir key) [ Unix.O_RDWR; Unix.O_CREAT ] 0o600
  in
  let locked = ref false in
  let waited = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !locked then (
        try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      Unix.close fd)
    (fun () ->
      let deadline =
        Unix.gettimeofday () +. (float_of_int stale_ms /. 1000.)
      in
      let rec acquire () =
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () -> locked := true
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          if not !waited then begin
            waited := true;
            Metrics.bumpn "backend/flight_waits"
          end;
          if Unix.gettimeofday () >= deadline then
            Metrics.bumpn "backend/flight_stale" (* proceed unlocked *)
          else begin
            Unix.sleepf 0.05;
            acquire ()
          end
        | exception Unix.Unix_error _ ->
          () (* filesystem without lock support: proceed unlocked *)
      in
      acquire ();
      f ())

let store ?(kind = Exe) ?(entry = "main") ?(trust = Quarantined) ~dir ~key
    ~build () =
  mkdir_p dir;
  let art = artifact_path ~dir ~kind key in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".build.%d.%s%s" (Unix.getpid ()) key
         (suffix_of_kind kind))
  in
  Fun.protect
    ~finally:(fun () -> remove_if_exists tmp)
    (fun () ->
      build tmp;
      match file_size tmp with
      | None | Some 0 ->
        Err.failf Err.Codegen ~stage:key
          "Cache.store: build produced no %s artifact" (kind_to_string kind)
      | Some size ->
        Sys.rename tmp art;
        write_file_atomic (meta_path ~dir key)
          (meta_content
             { m_size = size; m_kind = kind; m_entry = entry; m_trust = trust }));
  ignore (evict ~keep:key dir);
  art

let stats dir =
  let es = entries dir in
  (List.length es, List.fold_left (fun acc (_, _, b, _) -> acc + b) 0 es)
