(** Argv-style subprocess execution (no shell) with captured output,
    an optional watchdog, and optional kernel-enforced rlimits.

    The backend's compiler invocations, artifact executions, canary
    runs and toolchain probes all go through {!run}: the program is
    exec'd directly with its argv, so paths containing spaces or shell
    metacharacters need no quoting, and stdout/stderr are captured
    (capped at 64 KiB each, with an explicit truncation marker) for
    structured error reporting instead of leaking to the terminal.

    The child runs in its own session (and hence its own process
    group): when a [?timeout_ms] watchdog fires, the whole group is
    killed — SIGTERM first, a short grace window, then SIGKILL — so a
    child that forked helpers (OpenMP workers, compiler sub-processes)
    cannot leave orphans behind.  Total time to reap stays under 2x
    the configured deadline.  Optional rlimits (CPU seconds, address
    space) are applied between fork and exec as a kernel backstop
    underneath the watchdog.

    Every spawn bumps the [backend/subprocess_spawns] counter — the
    in-process execution tier's tests assert it stays at zero on the
    warm path.  Watchdog kills bump [backend/watchdog_kills];
    truncated captures bump [backend/capture_truncated]. *)

type result = {
  status : int;  (** exit code; 128+signal when killed by a signal *)
  stdout : string;
  stderr : string;
  signal : string option;
      (** conventional signal name ("SIGSEGV", "SIGKILL", "SIGXCPU",
          ...) when the child was killed by a signal; distinguishes an
          artifact crash from a watchdog kill in error reports *)
  timed_out : bool;  (** the watchdog killed the process group *)
  timeout_ms : int option;  (** the deadline that was armed, if any *)
}

val capture_limit : int
(** Per-stream capture cap in bytes (64 KiB). *)

val read_capped : string -> string
(** Read a file, capped at {!capture_limit} bytes; longer content is
    truncated with an explicit ["... [truncated at N bytes]"] marker
    appended and the [backend/capture_truncated] counter bumped.
    Missing file reads as [""]. *)

val run :
  ?env_extra:(string * string) list ->
  ?timeout_ms:int ->
  ?rlimit_cpu_s:int ->
  ?rlimit_as_bytes:int ->
  string ->
  string list ->
  result
(** [run prog args] executes [prog] with [args] (argv, not a shell
    string).  [env_extra] bindings shadow the inherited environment.
    [timeout_ms] arms the watchdog; [rlimit_cpu_s] / [rlimit_as_bytes]
    bound the child's CPU time (SIGXCPU on overrun) and address space.
    A failure to exec (missing program) reports status 127 with the
    reason in [stderr]; never raises. *)

val describe_status : result -> string
(** Human-readable one-phrase account of how the child ended:
    ["exit 1"], ["killed by SIGSEGV (exit 139)"], or
    ["killed by watchdog after 2000 ms deadline (SIGKILL)"]. *)

val first_line :
  ?env_extra:(string * string) list -> string -> string list -> string option
(** First stdout line of a successful run, [None] otherwise.  Probes
    carry a 30 s watchdog of their own so a wedged compiler cannot
    hang startup. *)

val first_lines : ?n:int -> string -> string
(** Collapse a capture into at most [n] non-blank lines joined with
    [" | "] — the shape Err details expect. *)
