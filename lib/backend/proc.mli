(** Argv-style subprocess execution (no shell) with captured output.

    The backend's compiler invocations, artifact executions and
    toolchain probes all go through {!run}: the program is exec'd
    directly with its argv, so paths containing spaces or shell
    metacharacters need no quoting, and stdout/stderr are captured
    (capped at 64 KiB each) for structured error reporting instead of
    leaking to the terminal.  Every spawn bumps the
    [backend/subprocess_spawns] counter — the in-process execution
    tier's tests assert it stays at zero on the warm path. *)

type result = {
  status : int;  (** exit code; 128+signal when killed by a signal *)
  stdout : string;
  stderr : string;
}

val run : ?env_extra:(string * string) list -> string -> string list -> result
(** [run prog args] executes [prog] with [args] (argv, not a shell
    string).  [env_extra] bindings shadow the inherited environment.
    A failure to exec (missing program) reports status 127 with the
    reason in [stderr]; never raises. *)

val first_line :
  ?env_extra:(string * string) list -> string -> string list -> string option
(** First stdout line of a successful run, [None] otherwise. *)

val first_lines : ?n:int -> string -> string
(** Collapse a capture into at most [n] non-blank lines joined with
    [" | "] — the shape Err details expect. *)
