/* Child-process spawn stub for Proc.run.
 *
 * OCaml 5 refuses Unix.fork once any domain has been spawned (forking
 * a multi-domain runtime is unsafe in general), and the native
 * executor's worker pool spawns domains — so the backend cannot fork
 * from OCaml.  The narrow fork+exec case is still sound, though: the
 * child touches only async-signal-safe calls (setsid, setrlimit,
 * dup2, execve, write, _exit) before exec'ing, and every argument it
 * needs is copied onto the C heap before the fork.
 *
 * The child calls setsid() so it leads its own session and process
 * group — the watchdog in Proc.run kills the group, catching any
 * helpers the child forked (OpenMP runtime, compiler drivers).
 * Optional rlimits bound CPU seconds (hard limit one second above
 * soft so SIGXCPU, which the parent can name in its report, fires
 * before SIGKILL) and address space as a kernel-enforced backstop
 * underneath the watchdog.
 *
 * Argument is a single tuple so no bytecode wrapper is needed:
 *   (prog, argv, env, out_fd, err_fd, rlimit_cpu_s, rlimit_as_bytes)
 * stdin comes from /dev/null; rlimit values <= 0 mean "no limit".
 * Returns the child pid, or -errno when fork itself fails.
 */

#define _GNU_SOURCE /* execvpe */

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>
#include <unistd.h>

#include <caml/memory.h>
#include <caml/mlvalues.h>

static char **dup_string_array(value varr)
{
  int n = Wosize_val(varr);
  char **out = calloc((size_t)n + 1, sizeof(char *));
  if (!out) return NULL;
  for (int i = 0; i < n; i++) {
    out[i] = strdup(String_val(Field(varr, i)));
    if (!out[i]) {
      for (int j = 0; j < i; j++) free(out[j]);
      free(out);
      return NULL;
    }
  }
  out[n] = NULL;
  return out;
}

static void free_string_array(char **arr)
{
  if (!arr) return;
  for (char **p = arr; *p; p++) free(*p);
  free(arr);
}

CAMLprim value pm_spawn(value vspec)
{
  CAMLparam1(vspec);
  char *prog = strdup(String_val(Field(vspec, 0)));
  char **argv = dup_string_array(Field(vspec, 1));
  char **envp = dup_string_array(Field(vspec, 2));
  int out_fd = Int_val(Field(vspec, 3));
  int err_fd = Int_val(Field(vspec, 4));
  long cpu_s = Long_val(Field(vspec, 5));
  long as_bytes = Long_val(Field(vspec, 6));
  int devnull = open("/dev/null", O_RDONLY);
  pid_t pid;

  if (!prog || !argv || !envp) {
    pid = -1;
    errno = ENOMEM;
  } else {
    pid = fork();
  }
  if (pid == 0) {
    /* Child: async-signal-safe calls only from here to execve. */
    setsid();
    if (cpu_s > 0) {
      struct rlimit rl;
      rl.rlim_cur = (rlim_t)cpu_s;
      rl.rlim_max = (rlim_t)cpu_s + 1;
      (void)setrlimit(RLIMIT_CPU, &rl);
    }
    if (as_bytes > 0) {
      struct rlimit rl;
      rl.rlim_cur = (rlim_t)as_bytes;
      rl.rlim_max = (rlim_t)as_bytes;
      (void)setrlimit(RLIMIT_AS, &rl);
    }
    if (devnull >= 0) (void)dup2(devnull, 0);
    (void)dup2(out_fd, 1);
    (void)dup2(err_fd, 2);
    /* execvpe, not execve: bare program names ("cc") resolve through
     * PATH like the shell would */
    execvpe(prog, argv, envp);
    {
      const char msg[] = ": cannot execute\n";
      (void)!write(2, prog, strlen(prog));
      (void)!write(2, msg, sizeof(msg) - 1);
    }
    _exit(127);
  }

  int saved_errno = errno;
  if (devnull >= 0) close(devnull);
  free(prog);
  free_string_array(argv);
  free_string_array(envp);
  CAMLreturn(Val_long(pid < 0 ? -(long)saved_errno : (long)pid));
}
