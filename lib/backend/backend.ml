(* The compiled-C execution backend: emit the plan's C with a raw-blob
   main, compile it through the artifact cache, run it as a subprocess
   and read the outputs back into buffers.  This is what turns the
   paper's Fig. 10 methodology — every number is a compiled-binary
   time — into a first-class backend behind [--backend c]. *)

open Polymage_ir
module Comp = Polymage_compiler
module Rt = Polymage_rt
module Cgen = Polymage_codegen.Cgen
module Err = Polymage_util.Err
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

type kind = Native | C

let kind_of_string = function
  | "native" -> Some Native
  | "c" -> Some C
  | _ -> None

let kind_to_string = function Native -> "native" | C -> "c"

type stats = {
  cache_hit : bool;
  compile_ms : float;
  exec_ms : float;
  time_ms : float option;
}

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let first_lines ?(n = 4) path =
  match open_in path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go k acc =
          if k = 0 then acc
          else
            match input_line ic with
            | l -> go (k - 1) (acc ^ (if acc = "" then "" else " | ") ^ l)
            | exception End_of_file -> acc
        in
        go n "")

(* ---- compile through the cache ---- *)

let cc_build (tc : Toolchain.t) src exe =
  Metrics.bumpn "backend/compile_invocations";
  let csrc = Filename.temp_file "pm_backend" ".c" in
  let log = csrc ^ ".log" in
  Fun.protect
    ~finally:(fun () ->
      remove_if_exists csrc;
      remove_if_exists log)
    (fun () ->
      let oc = open_out csrc in
      output_string oc src;
      close_out oc;
      let cmd =
        Printf.sprintf "%s %s -std=gnu99 -o %s %s -lm > %s 2>&1" tc.cc
          tc.flags (Filename.quote exe) (Filename.quote csrc)
          (Filename.quote log)
      in
      let rc = Sys.command cmd in
      if rc <> 0 then
        Err.failf Err.Codegen "Backend: %s failed (exit %d): %s" tc.cc rc
          (first_lines log))

(* Compile the plan's raw-main C into a cached executable.  Returns
   the exe path, compile wall time (0 on a hit), hit flag, and the
   cache coordinates for later invalidation. *)
let compile ?cache_dir (plan : Comp.Plan.t) =
  let tc = Toolchain.get () in
  let src = Cgen.emit_raw_main plan in
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let key =
    Cache.key ~cc:tc.cc ~version:tc.version ~flags:tc.flags ~source:src
  in
  match Cache.lookup ~dir key with
  | Some exe ->
    Metrics.bumpn "backend/cache_hit";
    (exe, 0., true, key, dir)
  | None ->
    Metrics.bumpn "backend/cache_miss";
    let t0 = Unix.gettimeofday () in
    let exe =
      Trace.with_span ~cat:"backend" "backend.compile"
        ~args:[ ("cc", tc.cc); ("flags", tc.flags) ]
      @@ fun () -> Cache.store ~dir ~key ~build:(cc_build tc src)
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Metrics.addn "backend/compile_ms" (int_of_float ms);
    (exe, ms, false, key, dir)

(* ---- one subprocess execution ---- *)

let parse_time_ms path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let result = ref None in
        (try
           while true do
             match String.split_on_char ' ' (input_line ic) with
             | [ "TIME_MS"; v ] -> result := float_of_string_opt v
             | _ -> ()
           done
         with End_of_file -> ());
        !result)

let exec_exe ~repeats (plan : Comp.Plan.t) env ~images exe =
  Trace.with_span ~cat:"backend" "backend.exec" @@ fun () ->
  let pipe = plan.pipe in
  let buf_of (im : Ast.image) =
    match
      List.find_opt (fun ((i : Ast.image), _) -> i.iname = im.iname) images
    with
    | Some (_, b) -> b
    | None ->
      Err.failf Err.Exec "Backend: missing input image %s" im.iname
  in
  let temps = ref [] in
  let fresh prefix =
    let p = Filename.temp_file prefix ".raw" in
    temps := p :: !temps;
    p
  in
  Fun.protect
    ~finally:(fun () -> List.iter remove_if_exists !temps)
    (fun () ->
      let in_paths =
        List.map
          (fun (im : Ast.image) ->
            let p = fresh "pm_in" in
            Rawio.write p (buf_of im);
            p)
          pipe.images
      in
      let out_paths =
        List.map (fun (_ : Ast.func) -> fresh "pm_out") pipe.outputs
      in
      let stdout_f = fresh "pm_stdout" and stderr_f = fresh "pm_stderr" in
      let argv =
        string_of_int repeats
        :: List.map
             (fun p -> string_of_int (Types.bind_exn env p))
             pipe.params
        @ in_paths @ out_paths
      in
      let cmd =
        Printf.sprintf "OMP_NUM_THREADS=%d %s %s > %s 2> %s"
          plan.opts.workers (Filename.quote exe)
          (String.concat " " (List.map Filename.quote argv))
          (Filename.quote stdout_f) (Filename.quote stderr_f)
      in
      let t0 = Unix.gettimeofday () in
      let rc = Sys.command cmd in
      let exec_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if rc <> 0 then
        Err.failf Err.Exec "Backend: compiled pipeline exited %d: %s" rc
          (first_lines stderr_f);
      Metrics.addn "backend/exec_ms" (int_of_float exec_ms);
      let time_ms = if repeats > 0 then parse_time_ms stdout_f else None in
      (* Read outputs back; results are keyed by the user's original
         output stages, like the native executor's. *)
      let outputs =
        List.map2
          (fun (src_f : Ast.func) ((out_f : Ast.func), path) ->
            let lo, dims = Rt.Buffer.geometry_of_func out_f env in
            (src_f, Rawio.read path ~lo ~dims))
          plan.source_outputs
          (List.combine pipe.outputs out_paths)
      in
      let buffers = Array.make (Array.length pipe.stages) None in
      List.iter2
        (fun ((out_f : Ast.func), _) (_, b) ->
          Array.iteri
            (fun i (s : Ast.func) ->
              if s.fname = out_f.fname then buffers.(i) <- Some b)
            pipe.stages)
        (List.combine pipe.outputs out_paths)
        outputs;
      ({ Rt.Executor.buffers; outputs }, exec_ms, time_ms))

(* ---- public entry points ---- *)

let run ?cache_dir ?(repeats = 0) (plan : Comp.Plan.t) env ~images =
  Trace.with_span ~cat:"backend" "backend.run" @@ fun () ->
  let exe, compile_ms, hit, key, dir = compile ?cache_dir plan in
  let exec () = exec_exe ~repeats plan env ~images exe in
  match exec () with
  | result, exec_ms, time_ms ->
    (result, { cache_hit = hit; compile_ms; exec_ms; time_ms })
  | exception e when hit ->
    (* A cached artifact that will not run is treated like any other
       corruption: drop the entry and rebuild once. *)
    ignore e;
    Cache.invalidate ~dir key;
    Metrics.bumpn "backend/cache_corrupt";
    let exe, compile_ms2, _, _, _ = compile ?cache_dir plan in
    let result, exec_ms, time_ms =
      exec_exe ~repeats plan env ~images exe
    in
    ( result,
      {
        cache_hit = false;
        compile_ms = compile_ms +. compile_ms2;
        exec_ms;
        time_ms;
      } )

let run_safe ?cache_dir ?repeats ?pool (plan : Comp.Plan.t) env ~images =
  match run ?cache_dir ?repeats plan env ~images with
  | result, stats -> ((result, Some stats), [])
  | exception e ->
    let d = { Rt.Executor.rung = "c-backend"; error = Err.of_exn e } in
    let result, degr = Rt.Executor.run_safe ?pool plan env ~images in
    ((result, None), d :: degr)

let profile ?cache_dir ~(opts : Comp.Options.t) ~outputs ~env ~images () =
  let opts = Comp.Options.with_trace true opts in
  let metrics_were_on = Metrics.enabled () in
  Trace.reset ();
  Metrics.reset ();
  let (plan, result, stats), events =
    Trace.capture (fun () ->
        let plan = Comp.Compile.run opts ~outputs in
        let result, stats = run ?cache_dir plan env ~images in
        (plan, result, stats))
  in
  let counters = Metrics.snapshot () in
  if not metrics_were_on then Metrics.disable ();
  let tiles = Rt.Executor.tile_counts plan env in
  ( {
      Rt.Profile.plan;
      result;
      events;
      counters;
      tiles;
      wall_ms = stats.exec_ms;
      env;
    },
    stats )

let describe ?cache_dir () =
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let n, bytes = Cache.stats dir in
  Printf.sprintf
    "backend c: compiler %s; cache %s (%d entr%s, %.1f MiB used, %.0f MiB \
     limit)"
    (Toolchain.describe ()) dir n
    (if n = 1 then "y" else "ies")
    (float_of_int bytes /. 1048576.)
    (float_of_int (Cache.max_bytes ()) /. 1048576.)
