(* The compiled-C execution backend: emit the plan's C, compile it
   through the artifact cache, and execute it — either as a subprocess
   speaking raw blobs over temp files (the c-subprocess tier, PR 5's
   backend), or in-process through dlopen of a shared object (the
   c-dlopen tier), which eliminates process start-up and blob I/O from
   every call.  This is what turns the paper's Fig. 10 methodology —
   every number is a compiled-binary time — into first-class backends
   behind [--backend c] and [--backend c-dlopen].

   The in-process tier is gated by the quarantine protocol: a shared
   object of unknown provenance (fresh compile, cache entry from an
   older process, meta predating the trust bit) is never dlopen'd
   directly.  Its first execution happens in the crash-isolated canary
   child ({!Canary}); a clean canary run promotes the entry to trusted
   in the cache meta, and only trusted objects run in-process.  Around
   every in-process call the parent maintains a crash marker on disk,
   so a process that dies mid-call leaves evidence: the next process
   finds the stale marker, demotes the artifact (invalidate — it
   recompiles and re-enters quarantine) and never repeats the crash.
   Subprocess executions run under the watchdog when the plan carries
   an [exec_timeout_ms]; canary runs are always bounded. *)

open Polymage_ir
module Comp = Polymage_compiler
module Rt = Polymage_rt
module Cgen = Polymage_codegen.Cgen
module Err = Polymage_util.Err
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

type stats = {
  cache_hit : bool;
  compile_ms : float;
  exec_ms : float;
  time_ms : float option;
  quarantined : bool;
}

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* ---- compile through the cache ---- *)

let compile_timeout_ms = 300_000
let compile_max_attempts = 3

(* Deterministic "jitter": a hash of (output path, attempt) spreads
   concurrent retriers without a global RNG — same failure, same
   schedule, reproducible tests. *)
let backoff_s out attempt =
  let base = 0.05 *. float_of_int (1 lsl (attempt - 1)) in
  base +. (float_of_int (Hashtbl.hash (out, attempt) mod 50) /. 1000.)

(* Compile with bounded retry for transient toolchain failures: a
   compiler killed by a signal (OOM killer, crashed cc1) or the
   injected [compile_flaky] fault gets up to two more attempts with
   jittered backoff; a real diagnostic (non-zero exit, no signal) is
   deterministic and fails immediately. *)
let cc_build (tc : Toolchain.t) ~flags src out =
  let csrc = Filename.temp_file "pm_backend" ".c" in
  Fun.protect
    ~finally:(fun () -> remove_if_exists csrc)
    (fun () ->
      let oc = open_out csrc in
      output_string oc src;
      close_out oc;
      let args =
        Toolchain.split_flags flags @ [ "-std=gnu99"; "-o"; out; csrc; "-lm" ]
      in
      let rec attempt n =
        Metrics.bumpn "backend/compile_invocations";
        let failure =
          match Rt.Fault.hit "compile_flaky" with
          | exception e ->
            Some (true, "injected: " ^ Err.to_string (Err.of_exn e))
          | () -> (
            match Proc.run ~timeout_ms:compile_timeout_ms tc.cc args with
            | { Proc.status = 0; _ } -> None
            | r ->
              Some
                ( r.Proc.signal <> None,
                  Printf.sprintf "%s failed (%s): %s" tc.cc
                    (Proc.describe_status r)
                    (Proc.first_lines (r.Proc.stderr ^ "\n" ^ r.Proc.stdout))
                ))
        in
        match failure with
        | None -> ()
        | Some (true, _) when n < compile_max_attempts ->
          Metrics.bumpn "backend/compile_retries";
          Unix.sleepf (backoff_s out n);
          attempt (n + 1)
        | Some (_, msg) -> Err.failf Err.Codegen "Backend: %s" msg
      in
      attempt 1)

(* Resolve the plan's SIMD knob to the emission level: forced levels
   pass straight through (always safe — the artifact dispatches its
   fast-math kernels by cpuid at load time), [Simd_auto] asks the
   toolchain's compile-and-run ISA probe, [Simd_off] keeps the scalar
   emission.  The resolved level is surfaced in the
   [backend/simd_level] gauge (0 = scalar, 1..3 = sse2/avx2/avx512). *)
let resolve_simd (opts : Comp.Options.t) : Cgen.simd_level option =
  match opts.simd with
  | Comp.Options.Simd_off -> None
  | Comp.Options.Simd_sse2 -> Some Cgen.Sse2
  | Comp.Options.Simd_avx2 -> Some Cgen.Avx2
  | Comp.Options.Simd_avx512 -> Some Cgen.Avx512
  | Comp.Options.Simd_auto -> (
    match Toolchain.isa_lookup () with
    | None -> None
    | Some Toolchain.Sse2 -> Some Cgen.Sse2
    | Some Toolchain.Avx2 -> Some Cgen.Avx2
    | Some Toolchain.Avx512 -> Some Cgen.Avx512)

let simd_gauge = function
  | None -> 0
  | Some Cgen.Sse2 -> 1
  | Some Cgen.Avx2 -> 2
  | Some Cgen.Avx512 -> 3

(* Compile the plan's C into a cached artifact of the given kind.
   Returns the artifact path, compile wall time (0 on a hit), hit
   flag, and the cache coordinates for later invalidation.  The two
   kinds never share a key: they differ in both flags and source.
   SIMD configuration reaches the key three ways — strip widths and
   the fast-math header change the source, [simd_cflags] changes the
   flags (batching plans only), and the level is named in the key tag
   outright — so scalar and vector artifacts, and artifacts for
   different ISA levels, can never collide. *)
let compile_kind ?cache_dir ~(kind : Cache.kind) (plan : Comp.Plan.t) =
  let tc = Toolchain.get () in
  let simd = resolve_simd plan.opts in
  Metrics.gauge_setn "backend/simd_level" (simd_gauge simd);
  let src, flags, entry =
    match kind with
    | Cache.Exe -> (Cgen.emit_raw_main ?simd plan, tc.flags, "main")
    | Cache.So ->
      (Cgen.emit_raw_entry ?simd plan, Toolchain.so_flags_exn tc,
       Cgen.raw_entry_symbol)
  in
  let flags =
    if simd <> None && Cgen.plan_batches plan then
      flags ^ " " ^ Toolchain.simd_cflags
    else flags
  in
  let tag =
    match simd with
    | None -> ""
    | Some l -> "simd=" ^ Cgen.simd_level_to_string l
  in
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let key =
    Cache.key ~tag ~cc:tc.cc ~version:tc.version ~flags ~source:src
  in
  match Cache.lookup ~kind ~dir key with
  | Some art ->
    Metrics.bumpn "backend/cache_hit";
    (art, 0., true, key, dir)
  | None ->
    (* Single-flight across processes: take the key's advisory lock,
       then re-check — a concurrent process may have compiled this
       exact key while we waited, in which case its artifact is our
       hit and we never invoke the compiler. *)
    Cache.with_flight ~dir ~key @@ fun () ->
    (match Cache.lookup ~kind ~dir key with
    | Some art ->
      Metrics.bumpn "backend/cache_hit";
      (art, 0., true, key, dir)
    | None ->
      Metrics.bumpn "backend/cache_miss";
      let t0 = Unix.gettimeofday () in
      let art =
        Trace.with_span ~cat:"backend" "backend.compile"
          ~args:
            [
              ("cc", tc.cc);
              ("flags", flags);
              ("kind", Cache.kind_to_string kind);
            ]
        @@ fun () ->
        Cache.store ~kind ~entry ~dir ~key ~build:(cc_build tc ~flags src) ()
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Metrics.addn "backend/compile_ms" (int_of_float ms);
      (art, ms, false, key, dir))

let compile ?cache_dir plan = compile_kind ?cache_dir ~kind:Cache.Exe plan
let compile_so ?cache_dir plan = compile_kind ?cache_dir ~kind:Cache.So plan

(* ---- shared plumbing ---- *)

let image_buffer images (im : Ast.image) =
  match
    List.find_opt (fun ((i : Ast.image), _) -> i.iname = im.iname) images
  with
  | Some (_, b) -> b
  | None -> Err.failf Err.Exec "Backend: missing input image %s" im.iname

(* Results are keyed by the user's original output stages, like the
   native executor's, and mirrored into the per-stage buffer array. *)
let assemble_result (plan : Comp.Plan.t) out_bufs =
  let pipe = plan.pipe in
  let outputs =
    List.map2
      (fun (src_f : Ast.func) (_, b) -> (src_f, b))
      plan.source_outputs out_bufs
  in
  let buffers = Array.make (Array.length pipe.stages) None in
  List.iter
    (fun ((out_f : Ast.func), b) ->
      Array.iteri
        (fun i (s : Ast.func) ->
          if s.fname = out_f.fname then buffers.(i) <- Some b)
        pipe.stages)
    out_bufs;
  { Rt.Executor.buffers; outputs }

(* ---- one subprocess execution (the c-subprocess tier) ---- *)

let parse_time_ms stdout =
  List.fold_left
    (fun acc line ->
      match String.split_on_char ' ' line with
      | [ "TIME_MS"; v ] -> float_of_string_opt v
      | _ -> acc)
    None
    (String.split_on_char '\n' stdout)

let exec_exe ~repeats (plan : Comp.Plan.t) env ~images exe =
  Trace.with_span ~cat:"backend" "backend.exec" @@ fun () ->
  let pipe = plan.pipe in
  let temps = ref [] in
  let fresh prefix =
    let p = Filename.temp_file prefix ".raw" in
    temps := p :: !temps;
    p
  in
  Fun.protect
    ~finally:(fun () -> List.iter remove_if_exists !temps)
    (fun () ->
      let in_paths =
        List.map
          (fun (im : Ast.image) ->
            let p = fresh "pm_in" in
            Rawio.write p (image_buffer images im);
            p)
          pipe.images
      in
      let out_paths =
        List.map (fun (_ : Ast.func) -> fresh "pm_out") pipe.outputs
      in
      let argv =
        string_of_int repeats
        :: List.map
             (fun p -> string_of_int (Types.bind_exn env p))
             pipe.params
        @ in_paths @ out_paths
      in
      Rt.Fault.hit "exec_crash";
      Rt.Fault.hit "exec_hang";
      let t0 = Unix.gettimeofday () in
      let r =
        Proc.run
          ?timeout_ms:plan.opts.exec_timeout_ms
          ~env_extra:
            [ ("OMP_NUM_THREADS", string_of_int plan.opts.workers) ]
          exe argv
      in
      let exec_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if r.Proc.status <> 0 then
        Err.failf Err.Exec "Backend: compiled pipeline failed (%s): %s"
          (Proc.describe_status r)
          (Proc.first_lines r.Proc.stderr);
      Metrics.addn "backend/exec_ms" (int_of_float exec_ms);
      let time_ms =
        if repeats > 0 then parse_time_ms r.Proc.stdout else None
      in
      let out_bufs =
        List.map2
          (fun (out_f : Ast.func) path ->
            let lo, dims = Rt.Buffer.geometry_of_func out_f env in
            (out_f, Rawio.read path ~lo ~dims))
          pipe.outputs out_paths
      in
      (assemble_result plan out_bufs, exec_ms, time_ms))

(* ---- one crash-isolated canary execution (quarantine) ---- *)

(* A hung artifact must never wedge the parent, so canary runs are
   always bounded: the plan's exec_timeout_ms when set, a generous
   default otherwise.  A CPU rlimit sized from the deadline backstops
   the watchdog in the kernel (scaled by the worker count — CPU time
   accumulates across OpenMP threads). *)
let canary_default_timeout_ms = 120_000

let exec_canary ~repeats (plan : Comp.Plan.t) env ~images ~dir so =
  Trace.with_span ~cat:"backend" "backend.exec_canary" @@ fun () ->
  let pipe = plan.pipe in
  let runner = Canary.runner ~cache_dir:dir () in
  let temps = ref [] in
  let fresh prefix =
    let p = Filename.temp_file prefix ".raw" in
    temps := p :: !temps;
    p
  in
  Fun.protect
    ~finally:(fun () -> List.iter remove_if_exists !temps)
    (fun () ->
      let in_paths =
        List.map
          (fun (im : Ast.image) ->
            let p = fresh "pm_in" in
            Rawio.write p (image_buffer images im);
            p)
          pipe.images
      in
      let out_specs =
        List.map
          (fun (f : Ast.func) ->
            let lo, dims = Rt.Buffer.geometry_of_func f env in
            (f, fresh "pm_out", lo, dims))
          pipe.outputs
      in
      let argv =
        so :: Cgen.raw_entry_symbol
        :: string_of_int plan.opts.workers
        :: string_of_int repeats
        :: string_of_int (List.length pipe.params)
        :: List.map
             (fun p -> string_of_int (Types.bind_exn env p))
             pipe.params
        @ (string_of_int (List.length in_paths) :: in_paths)
        @ string_of_int (List.length out_specs)
          :: List.concat_map
               (fun (_, path, _, dims) ->
                 path
                 :: string_of_int (Array.length dims)
                 :: List.map string_of_int (Array.to_list dims))
               out_specs
      in
      let timeout_ms =
        Option.value plan.opts.exec_timeout_ms
          ~default:canary_default_timeout_ms
      in
      let rlimit_cpu_s =
        (timeout_ms / 1000 + 1) * 2 * max 1 plan.opts.workers
      in
      Rt.Fault.hit "exec_crash";
      Rt.Fault.hit "exec_hang";
      let t0 = Unix.gettimeofday () in
      let r =
        Proc.run ~timeout_ms ~rlimit_cpu_s
          ~env_extra:
            [ ("OMP_NUM_THREADS", string_of_int plan.opts.workers) ]
          runner argv
      in
      let exec_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if r.Proc.status <> 0 then
        Err.failf Err.Exec "Backend: quarantine canary failed (%s): %s"
          (Proc.describe_status r)
          (Proc.first_lines r.Proc.stderr);
      Metrics.addn "backend/exec_ms" (int_of_float exec_ms);
      let time_ms =
        if repeats > 0 then parse_time_ms r.Proc.stdout else None
      in
      let out_bufs =
        List.map
          (fun (f, path, lo, dims) -> (f, Rawio.read path ~lo ~dims))
          out_specs
      in
      (assemble_result plan out_bufs, exec_ms, time_ms))

(* ---- one in-process execution (the c-dlopen tier) ---- *)

let total_of dims = Array.fold_left ( * ) 1 dims

let exec_dl ~repeats (plan : Comp.Plan.t) env ~images so =
  Trace.with_span ~cat:"backend" "backend.exec_dl" @@ fun () ->
  let pipe = plan.pipe in
  let fn = Dlexec.get ~path:so ~symbol:Cgen.raw_entry_symbol in
  let params =
    let a =
      Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout
        (List.length pipe.params)
    in
    List.iteri
      (fun i p -> a.{i} <- Int32.of_int (Types.bind_exn env p))
      pipe.params;
    a
  in
  (* The executor's buffers are plain OCaml float arrays on the GC
     heap; the stubs release the runtime lock around the call, so the
     boundary copies through off-heap Bigarrays.  The copies are
     O(pixels) with no syscalls — the spawn and blob round-trip of the
     subprocess tier are what this path removes. *)
  let ins =
    Array.of_list
      (List.map
         (fun (im : Ast.image) ->
           let b = image_buffer images im in
           let n = total_of b.Rt.Buffer.dims in
           let a =
             Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
           in
           for i = 0 to n - 1 do
             a.{i} <- b.Rt.Buffer.data.(i)
           done;
           a)
         pipe.images)
  in
  let out_geoms =
    List.map
      (fun (f : Ast.func) -> (f, Rt.Buffer.geometry_of_func f env))
      pipe.outputs
  in
  let outs =
    Array.of_list
      (List.map
         (fun (_, (_, dims)) ->
           Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
             (total_of dims))
         out_geoms)
  in
  let totals =
    let a =
      Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
        (List.length out_geoms)
    in
    List.iteri
      (fun i (_, (_, dims)) -> a.{i} <- Int64.of_int (total_of dims))
      out_geoms;
    a
  in
  let nthreads = plan.opts.workers in
  let call () = Dlexec.call fn ~nthreads ~params ~ins ~outs ~totals in
  let t0 = Unix.gettimeofday () in
  let rc = call () in
  let exec_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  if rc <> 0 then
    Err.failf Err.Exec
      "Backend: artifact disagrees about output %d's element count \
       (stale or mismatched shared object)"
      (rc - 1);
  Metrics.addn "backend/exec_ms" (int_of_float exec_ms);
  let time_ms =
    if repeats <= 0 then None
    else begin
      let best = ref infinity in
      for _ = 1 to repeats do
        let t0 = Unix.gettimeofday () in
        ignore (call ());
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        if ms < !best then best := ms
      done;
      Some !best
    end
  in
  let out_bufs =
    List.map2
      (fun (f, (lo, dims)) out ->
        let b = Rt.Buffer.create_uninit ~lo ~dims in
        let n = total_of dims in
        for i = 0 to n - 1 do
          b.Rt.Buffer.data.(i) <- out.{i}
        done;
        (f, b))
      out_geoms (Array.to_list outs)
  in
  (assemble_result plan out_bufs, exec_ms, time_ms)

(* ---- public entry points ---- *)

(* Shared compile+exec driver: a cached artifact that will not run is
   treated like any other corruption — drop the entry (and, for shared
   objects, the stale in-memory image) and rebuild once. *)
let run_with ~compile_art ~exec ?cache_dir ?(repeats = 0)
    (plan : Comp.Plan.t) env ~images =
  Trace.with_span ~cat:"backend" "backend.run" @@ fun () ->
  (* Arm the plan's fault spec here just as Executor.run does: the
     compiled tiers never pass through the native executor, so the
     --fault flag would otherwise only reach them via POLYMAGE_FAULT. *)
  Rt.Fault.ensure plan.opts.fault;
  let art, compile_ms, hit, key, dir = compile_art ?cache_dir plan in
  match exec ~repeats plan env ~images art with
  | result, exec_ms, time_ms ->
    ( result,
      { cache_hit = hit; compile_ms; exec_ms; time_ms; quarantined = false }
    )
  | exception e when hit ->
    ignore e;
    Dlexec.forget art;
    Cache.invalidate ~dir key;
    Metrics.bumpn "backend/cache_corrupt";
    let art, compile_ms2, _, _, _ = compile_art ?cache_dir plan in
    let result, exec_ms, time_ms = exec ~repeats plan env ~images art in
    ( result,
      {
        cache_hit = false;
        compile_ms = compile_ms +. compile_ms2;
        exec_ms;
        time_ms;
        quarantined = false;
      } )

let run ?cache_dir ?repeats plan env ~images =
  run_with ~compile_art:compile ~exec:exec_exe ?cache_dir ?repeats plan env
    ~images

(* The in-process tier under the quarantine protocol:

   - stale crash marker (a previous process died mid-call inside this
     artifact): demote — forget the in-memory image, invalidate the
     entry — and recompile once; the fresh store is quarantined.
   - trusted artifact: run in-process, with the crash marker written
     around the call so a death here is attributed next time.  A
     *recoverable* failure (load error, geometry disagreement — the
     process is still alive, by definition) is treated as corruption:
     invalidate and retry once, which routes the rebuilt artifact
     through the canary.
   - quarantined (or unknown-trust) artifact: first execution in the
     crash-isolated canary child.  Success promotes the entry to
     trusted; failure demotes it (invalidate) and raises, so the tier
     ladder degrades a rung — deliberately no in-tier rebuild: the
     same source would recompile to the same crashing object. *)
let run_dl ?cache_dir ?(repeats = 0) (plan : Comp.Plan.t) env ~images =
  Trace.with_span ~cat:"backend" "backend.run" @@ fun () ->
  Rt.Fault.ensure plan.opts.fault;
  let rec attempt ~retried acc_compile_ms =
    let so, compile_ms, hit, key, dir = compile_so ?cache_dir plan in
    let compile_ms = acc_compile_ms +. compile_ms in
    if (not retried) && Cache.stale_marker ~dir key then begin
      Metrics.bumpn "backend/crash_demotions";
      Dlexec.forget so;
      Cache.invalidate ~dir key;
      attempt ~retried:true compile_ms
    end
    else
      match Cache.trust ~dir key with
      | Some Cache.Trusted -> (
        let exec_marked () =
          Cache.write_marker ~dir key;
          Fun.protect
            ~finally:(fun () -> Cache.clear_marker ~dir key)
            (fun () ->
              Rt.Fault.hit "exec_crash";
              exec_dl ~repeats plan env ~images so)
        in
        match exec_marked () with
        | result, exec_ms, time_ms ->
          ( result,
            {
              cache_hit = hit;
              compile_ms;
              exec_ms;
              time_ms;
              quarantined = false;
            } )
        | exception e when not retried ->
          ignore e;
          Dlexec.forget so;
          Cache.invalidate ~dir key;
          Metrics.bumpn "backend/cache_corrupt";
          attempt ~retried:true compile_ms)
      | _ -> (
        Metrics.bumpn "backend/quarantine_runs";
        match exec_canary ~repeats plan env ~images ~dir so with
        | result, exec_ms, time_ms ->
          Cache.set_trust ~dir ~key Cache.Trusted;
          Metrics.bumpn "backend/promotions";
          ( result,
            {
              cache_hit = hit;
              compile_ms;
              exec_ms;
              time_ms;
              quarantined = true;
            } )
        | exception e ->
          Metrics.bumpn "backend/quarantine_failures";
          Dlexec.forget so;
          Cache.invalidate ~dir key;
          raise e)
  in
  attempt ~retried:false 0.

(* The warm-server hot path: one execution of a shared object that
   {!compile_so} already produced.  [run_dl] re-emits and re-hashes
   the generated C on every call just to recompute the cache key —
   wasted work for a long-lived server answering the same plan
   thousands of times.  Here the caller pins [(dir, key, so)] once and
   each call pays only the quarantine-protocol file ops (trust read,
   crash markers around the call) and the boundary copies.
   [Stale_artifact] signals that the pin no longer holds (artifact
   invalidated, demoted, or removed) — the caller falls back to
   {!run_dl}, which re-resolves through the cache. *)
exception Stale_artifact

let run_dl_pinned ?(repeats = 0) ~dir ~key ~so (plan : Comp.Plan.t) env
    ~images =
  Trace.with_span ~cat:"backend" "backend.run_pinned" @@ fun () ->
  Rt.Fault.ensure plan.opts.fault;
  if not (Sys.file_exists so) then raise Stale_artifact;
  match Cache.trust ~dir key with
  | Some Cache.Trusted ->
    Cache.write_marker ~dir key;
    Fun.protect
      ~finally:(fun () -> Cache.clear_marker ~dir key)
      (fun () ->
        Rt.Fault.hit "exec_crash";
        let result, exec_ms, time_ms = exec_dl ~repeats plan env ~images so in
        ( result,
          {
            cache_hit = true;
            compile_ms = 0.;
            exec_ms;
            time_ms;
            quarantined = false;
          } ))
  | _ -> raise Stale_artifact

let run_safe ?cache_dir ?repeats ?pool (plan : Comp.Plan.t) env ~images =
  match run ?cache_dir ?repeats plan env ~images with
  | result, stats -> ((result, Some stats), [])
  | exception e ->
    let d = { Rt.Executor.rung = "c-subprocess"; error = Err.of_exn e } in
    let result, degr = Rt.Executor.run_safe ?pool plan env ~images in
    ((result, None), d :: degr)

let profile ?cache_dir ?(use_dl = false) ~(opts : Comp.Options.t) ~outputs
    ~env ~images () =
  let opts = Comp.Options.with_trace true opts in
  let metrics_were_on = Metrics.enabled () in
  Trace.reset ();
  Metrics.reset ();
  let (plan, result, stats), events =
    Trace.capture (fun () ->
        let plan = Comp.Compile.run opts ~outputs in
        let result, stats =
          if use_dl then run_dl ?cache_dir plan env ~images
          else run ?cache_dir plan env ~images
        in
        (plan, result, stats))
  in
  let counters = Metrics.snapshot () in
  if not metrics_were_on then Metrics.disable ();
  let tiles = Rt.Executor.tile_counts plan env in
  ( {
      Rt.Profile.plan;
      result;
      events;
      counters;
      tiles;
      wall_ms = stats.exec_ms;
      env;
    },
    stats )

let describe ?cache_dir () =
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let n, bytes = Cache.stats dir in
  let trusted, quarantined = Cache.trust_stats dir in
  Printf.sprintf
    "backend c: compiler %s; cache %s (%d entr%s, %.1f MiB used, %.0f MiB \
     limit; shared objects: %d trusted, %d quarantined)"
    (Toolchain.describe ()) dir n
    (if n = 1 then "y" else "ies")
    (float_of_int bytes /. 1048576.)
    (float_of_int (Cache.max_bytes ()) /. 1048576.)
    trusted quarantined
