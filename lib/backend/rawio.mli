(** Little-endian float64 blob exchange with compiled pipelines.

    Format (shared with the C helpers in [Cgen.emit_raw_main]):
    8-byte magic ["PMRAW01\n"], u32 LE rank, rank i64 LE extents, then
    the row-major float64 payload.  Lower bounds are not stored; the
    caller owns the geometry. *)

module Rt = Polymage_rt

val magic : string

val write : string -> Rt.Buffer.t -> unit
(** Serialize a buffer (header + payload) to a file. *)

val read : string -> lo:int array -> dims:int array -> Rt.Buffer.t
(** Read a blob back, validating magic, rank and extents against the
    expected geometry.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on any
    mismatch or truncation. *)
