(** Little-endian float64 blob exchange with compiled pipelines.

    Format (shared with the C helpers in [Cgen.emit_raw_main]):
    8-byte magic ["PMRAW01\n"], u32 LE rank, rank i64 LE extents, then
    the row-major float64 payload.  Lower bounds are not stored; the
    caller owns the geometry.

    One codec serves both transports: files exchanged with compiled
    subprocesses ({!write}/{!read}) and blobs embedded inside serve
    protocol frames ({!encode}/{!peek_dims}/{!decode}). *)

module Rt = Polymage_rt

val magic : string

val header_bytes : int -> int
(** Header size for a given rank. *)

val blob_bytes : int array -> int
(** Exact encoded size (header + payload) of a blob with the given
    extents. *)

val encode : Rt.Buffer.t -> bytes
(** Serialize a buffer (header + payload) to fresh bytes. *)

val peek_dims : ?stage:string -> bytes -> off:int -> len:int -> int array
(** Read and validate the header of a blob starting at [off] with
    [len] bytes available, returning its extents.  Bounds the rank so
    a hostile header cannot force a huge allocation.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on bad magic,
    an implausible rank, a negative extent, or truncation. *)

val decode :
  ?stage:string ->
  bytes ->
  off:int ->
  len:int ->
  lo:int array ->
  dims:int array ->
  Rt.Buffer.t
(** Decode a blob at [off], validating magic, rank and extents against
    the expected geometry.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on any
    mismatch or truncation. *)

val write : string -> Rt.Buffer.t -> unit
(** Serialize a buffer (header + payload) to a file. *)

val read : string -> lo:int array -> dims:int array -> Rt.Buffer.t
(** Read a blob back, validating magic, rank and extents against the
    expected geometry.
    @raise Polymage_util.Err.Polymage_error (phase [IO]) on any
    mismatch or truncation. *)
