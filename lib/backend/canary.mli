(** The quarantine canary: a generic runner executable that dlopens a
    pipeline shared object in a {e child} process and drives it
    through the raw-blob protocol.

    A quarantined [.so]'s first execution happens here, crash-isolated:
    if the artifact segfaults or hangs, only the canary dies (the
    watchdog bounds the hang) and the parent keeps its address space.
    A clean canary run with valid output blobs is what promotes the
    artifact to {!Cache.Trusted}.

    The runner is pipeline-agnostic — [.so] path, entry symbol, thread
    count, parameters, input blobs and output geometry all arrive via
    argv — so one binary, compiled once per toolchain and cached
    born-trusted (it is static repo code, not generated), serves every
    pipeline.  Exit codes: 0 success, 2 usage, 3 blob I/O, 4
    dlopen/dlsym/geometry failure; an artifact crash surfaces as
    death-by-signal.  With [repeats > 0] it prints a best-of
    [TIME_MS] line like the raw main. *)

val runner : ?cache_dir:string -> unit -> string
(** Path to the canary executable, compiling it into the artifact
    cache on first use (single-flighted across processes).
    @raise Polymage_util.Err.Polymage_error when no C compiler is
    available or the build fails. *)

val runner_source : string
(** The canary's C source (exposed for cache-key tests). *)
