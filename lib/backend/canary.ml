(* The quarantine canary: a small generic runner executable that
   dlopens a given pipeline shared object in a *child* process and
   drives it through the same raw-blob protocol as the subprocess
   tier.  A quarantined .so gets its first execution here — if the
   artifact segfaults, aborts, or loops forever, only the canary dies
   (or the watchdog kills it); the parent observes a clean failure,
   keeps its own address space intact, and withholds trust.  A clean
   canary exit with valid output blobs is what promotes the artifact
   to trusted (eligible for in-process dlopen).

   The runner is pipeline-agnostic: the .so path, entry symbol,
   thread count, parameters, input blobs and output geometry all
   arrive via argv, so ONE canary binary (compiled once per toolchain
   and cached like any other artifact, born trusted — it is our own
   static code, not generated) serves every pipeline.

   argv protocol:
     canary <so> <entry> <nthreads> <repeats>
            <np> <p0> ... <ni> <in0.raw> ...
            <no> { <outK.raw> <rankK> <extK_0> ... }...

   Inputs are PMRAW blobs read trusting their own headers; outputs
   are allocated from the argv geometry, validated by the entry's
   out_totals check, and written back as PMRAW.  [repeats > 0] adds a
   best-of timed loop printing TIME_MS, mirroring the raw main.  Exit
   codes: 2 usage, 3 blob I/O, 4 dlopen/dlsym/entry failure; a crash
   inside the artifact surfaces as death-by-signal. *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics

let runner_source =
  {|/* polymage quarantine canary: dlopen a pipeline .so and run it
 * against PMRAW blobs, isolating the parent from artifact crashes. */
#include <dlfcn.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static double pm_now_ms(void) {
  struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec * 1e-6;
}

static const char pm_magic[8] = {'P','M','R','A','W','0','1','\n'};

static double* read_raw(const char* path) {
  FILE* f = fopen(path, "rb");
  if (!f) { fprintf(stderr, "canary: cannot open %s\n", path); exit(3); }
  char magic[8];
  if (fread(magic, 1, 8, f) != 8 || memcmp(magic, pm_magic, 8) != 0) {
    fprintf(stderr, "canary: bad magic in %s\n", path); exit(3);
  }
  uint32_t rank;
  if (fread(&rank, 4, 1, f) != 1 || rank > 16) {
    fprintf(stderr, "canary: bad rank in %s\n", path); exit(3);
  }
  int64_t total = 1;
  for (uint32_t d = 0; d < rank; d++) {
    int64_t e;
    if (fread(&e, 8, 1, f) != 1 || e < 0) {
      fprintf(stderr, "canary: bad extent in %s\n", path); exit(3);
    }
    total *= e;
  }
  double* buf = (double*)malloc(sizeof(double)
                                * (size_t)(total > 0 ? total : 1));
  if (!buf) { fprintf(stderr, "canary: oom for %s\n", path); exit(3); }
  if ((int64_t)fread(buf, sizeof(double), (size_t)total, f) != total) {
    fprintf(stderr, "canary: truncated payload in %s\n", path); exit(3);
  }
  fclose(f);
  return buf;
}

static void write_raw(const char* path, uint32_t rank, const int64_t* ext,
                      const double* data, int64_t total) {
  FILE* f = fopen(path, "wb");
  if (!f) {
    fprintf(stderr, "canary: cannot open %s for writing\n", path);
    exit(3);
  }
  fwrite(pm_magic, 1, 8, f);
  fwrite(&rank, 4, 1, f);
  for (uint32_t d = 0; d < rank; d++) fwrite(&ext[d], 8, 1, f);
  if ((int64_t)fwrite(data, sizeof(double), (size_t)total, f) != total
      || fclose(f) != 0) {
    fprintf(stderr, "canary: short write to %s\n", path); exit(3);
  }
}

typedef int (*pm_entry_fn)(int, const int32_t*, const double* const*,
                           double* const*, const int64_t*);

int main(int argc, char** argv) {
  { uint32_t one = 1;
    if (*(uint8_t*)&one != 1) {
      fprintf(stderr, "canary: big-endian host unsupported\n");
      return 3; } }
  int a = 1;
  if (argc < 6) {
    fprintf(stderr,
            "usage: %s <so> <entry> <nthreads> <repeats> <np> [p...] "
            "<ni> [in.raw...] <no> [out.raw rank ext...]...\n",
            argv[0]);
    return 2;
  }
  const char* so = argv[a++];
  const char* entry = argv[a++];
  int nthreads = atoi(argv[a++]);
  int repeats = atoi(argv[a++]);
  int np = atoi(argv[a++]);
  if (np < 0 || argc < a + np + 1) return 2;
  int32_t* params = (int32_t*)calloc(np > 0 ? np : 1, sizeof(int32_t));
  for (int i = 0; i < np; i++) params[i] = (int32_t)atoi(argv[a++]);
  int ni = atoi(argv[a++]);
  if (ni < 0 || argc < a + ni + 1) return 2;
  const double** ins =
      (const double**)calloc(ni > 0 ? ni : 1, sizeof(double*));
  for (int i = 0; i < ni; i++) ins[i] = read_raw(argv[a++]);
  int no = atoi(argv[a++]);
  if (no <= 0) return 2;
  const char** out_paths = (const char**)calloc(no, sizeof(char*));
  uint32_t* out_ranks = (uint32_t*)calloc(no, sizeof(uint32_t));
  int64_t** out_exts = (int64_t**)calloc(no, sizeof(int64_t*));
  int64_t* totals = (int64_t*)calloc(no, sizeof(int64_t));
  double** outs = (double**)calloc(no, sizeof(double*));
  for (int k = 0; k < no; k++) {
    if (argc < a + 2) return 2;
    out_paths[k] = argv[a++];
    int rank = atoi(argv[a++]);
    if (rank < 0 || rank > 16 || argc < a + rank) return 2;
    out_ranks[k] = (uint32_t)rank;
    out_exts[k] = (int64_t*)calloc(rank > 0 ? rank : 1, sizeof(int64_t));
    int64_t total = 1;
    for (int d = 0; d < rank; d++) {
      out_exts[k][d] = strtoll(argv[a++], NULL, 10);
      if (out_exts[k][d] < 0) return 2;
      total *= out_exts[k][d];
    }
    totals[k] = total;
    outs[k] = (double*)malloc(sizeof(double)
                              * (size_t)(total > 0 ? total : 1));
    if (!outs[k]) { fprintf(stderr, "canary: oom\n"); exit(3); }
  }
  if (a != argc) return 2;
  void* h = dlopen(so, RTLD_NOW | RTLD_LOCAL);
  if (!h) { fprintf(stderr, "canary: dlopen: %s\n", dlerror()); return 4; }
  pm_entry_fn fn = (pm_entry_fn)(intptr_t)dlsym(h, entry);
  if (!fn) {
    fprintf(stderr, "canary: dlsym %s: %s\n", entry, dlerror());
    return 4;
  }
  int rc = fn(nthreads, params, ins, outs, totals);
  if (rc != 0) {
    fprintf(stderr,
            "canary: entry reported geometry mismatch on output %d\n",
            rc - 1);
    return 4;
  }
  if (repeats > 0) {
    double t_best = 1e30;
    for (int rep = 0; rep < repeats; rep++) {
      double t0 = pm_now_ms();
      (void)fn(nthreads, params, ins, outs, totals);
      double t1 = pm_now_ms();
      if (t1 - t0 < t_best) t_best = t1 - t0;
    }
    printf("TIME_MS %.3f\n", t_best);
  }
  for (int k = 0; k < no; k++)
    write_raw(out_paths[k], out_ranks[k], out_exts[k], outs[k], totals[k]);
  return 0;
}
|}

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let build (tc : Toolchain.t) out =
  Metrics.bumpn "backend/compile_invocations";
  let csrc = Filename.temp_file "pm_canary" ".c" in
  Fun.protect
    ~finally:(fun () -> remove_if_exists csrc)
    (fun () ->
      let oc = open_out csrc in
      output_string oc runner_source;
      close_out oc;
      let r =
        Proc.run ~timeout_ms:300_000 tc.cc
          (Toolchain.split_flags tc.flags
          @ [ "-std=gnu99"; "-o"; out; csrc; "-lm"; "-ldl" ])
      in
      if r.Proc.status <> 0 then
        Err.failf Err.Codegen "Canary: %s failed (%s): %s" tc.cc
          (Proc.describe_status r)
          (Proc.first_lines (r.Proc.stderr ^ "\n" ^ r.Proc.stdout)))

(* The canary binary is itself cached — keyed off its own source and
   the toolchain, with a "[canary]" flag salt so it can never collide
   with a pipeline key — and stored born-trusted: it is this repo's
   static code, not generated per-pipeline, and it never runs in the
   parent's address space anyway. *)
let runner ?cache_dir () =
  let tc = Toolchain.get () in
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let key =
    Cache.key ~tag:"" ~cc:tc.cc ~version:tc.version
      ~flags:(tc.flags ^ " [canary]")
      ~source:runner_source
  in
  match Cache.lookup ~kind:Cache.Exe ~dir key with
  | Some exe -> exe
  | None ->
    Cache.with_flight ~dir ~key (fun () ->
        match Cache.lookup ~kind:Cache.Exe ~dir key with
        | Some exe -> exe
        | None ->
          Cache.store ~kind:Cache.Exe ~entry:"main" ~trust:Cache.Trusted
            ~dir ~key ~build:(build tc) ())
