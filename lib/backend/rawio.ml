(* The compiled backend's exchange format: little-endian float64 blobs
   with a small self-describing header, matching the pm_read_raw /
   pm_write_raw helpers emitted by [Cgen.emit_raw_main].

   Layout: 8-byte magic "PMRAW01\n", u32 LE rank, rank x i64 LE
   extents, then the row-major float64 payload.  Lower bounds are not
   stored — the OCaml side owns the geometry and validates extents. *)

module Rt = Polymage_rt
module Err = Polymage_util.Err

let magic = Polymage_codegen.Cgen.raw_magic
let header_bytes rank = 8 + 4 + (8 * rank)

let write path (b : Rt.Buffer.t) =
  let rank = Array.length b.dims in
  let total = Rt.Buffer.size b in
  let bytes = Bytes.create (header_bytes rank + (8 * total)) in
  Bytes.blit_string magic 0 bytes 0 8;
  Bytes.set_int32_le bytes 8 (Int32.of_int rank);
  Array.iteri
    (fun d e -> Bytes.set_int64_le bytes (12 + (8 * d)) (Int64.of_int e))
    b.dims;
  let payload = header_bytes rank in
  for i = 0 to total - 1 do
    Bytes.set_int64_le bytes
      (payload + (8 * i))
      (Int64.bits_of_float b.data.(i))
  done;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)

let read path ~lo ~dims =
  let fail fmt = Err.failf Err.IO ~stage:path fmt in
  let ic =
    try open_in_bin path
    with Sys_error m -> Err.failf Err.IO ~stage:path "Rawio: %s" m
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rank = Array.length dims in
      let header = Bytes.create (header_bytes rank) in
      (try really_input ic header 0 (Bytes.length header)
       with End_of_file -> fail "Rawio: truncated header");
      if Bytes.sub_string header 0 8 <> magic then fail "Rawio: bad magic";
      let got_rank = Int32.to_int (Bytes.get_int32_le header 8) in
      if got_rank <> rank then
        fail "Rawio: rank mismatch (got %d, want %d)" got_rank rank;
      Array.iteri
        (fun d e ->
          let got = Int64.to_int (Bytes.get_int64_le header (12 + (8 * d))) in
          if got <> e then
            fail "Rawio: extent mismatch in dim %d (got %d, want %d)" d got e)
        dims;
      let b = Rt.Buffer.create_uninit ~lo ~dims in
      let total = Rt.Buffer.size b in
      let payload = Bytes.create (8 * total) in
      (try really_input ic payload 0 (8 * total)
       with End_of_file -> fail "Rawio: truncated payload");
      for i = 0 to total - 1 do
        b.data.(i) <- Int64.float_of_bits (Bytes.get_int64_le payload (8 * i))
      done;
      b)
