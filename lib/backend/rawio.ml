(* The compiled backend's exchange format: little-endian float64 blobs
   with a small self-describing header, matching the pm_read_raw /
   pm_write_raw helpers emitted by [Cgen.emit_raw_main].

   Layout: 8-byte magic "PMRAW01\n", u32 LE rank, rank x i64 LE
   extents, then the row-major float64 payload.  Lower bounds are not
   stored — the OCaml side owns the geometry and validates extents.

   The same blobs travel two roads: as temp files between this process
   and a compiled subprocess (write/read), and embedded inside serve
   protocol frames (encode/peek_dims/decode), so both paths share one
   codec. *)

module Rt = Polymage_rt
module Err = Polymage_util.Err

let magic = Polymage_codegen.Cgen.raw_magic
let header_bytes rank = 8 + 4 + (8 * rank)

(* A rank above this is a malformed header, not a real pipeline: it
   bounds how much a hostile length field can make us allocate. *)
let max_rank = 32

let blob_bytes dims =
  header_bytes (Array.length dims) + (8 * Array.fold_left ( * ) 1 dims)

let encode (b : Rt.Buffer.t) =
  let rank = Array.length b.dims in
  let total = Rt.Buffer.size b in
  let bytes = Bytes.create (header_bytes rank + (8 * total)) in
  Bytes.blit_string magic 0 bytes 0 8;
  Bytes.set_int32_le bytes 8 (Int32.of_int rank);
  Array.iteri
    (fun d e -> Bytes.set_int64_le bytes (12 + (8 * d)) (Int64.of_int e))
    b.dims;
  let payload = header_bytes rank in
  for i = 0 to total - 1 do
    Bytes.set_int64_le bytes
      (payload + (8 * i))
      (Int64.bits_of_float b.data.(i))
  done;
  bytes

let peek_dims ?(stage = "blob") bytes ~off ~len =
  let fail fmt = Err.failf Err.IO ~stage fmt in
  if len < 12 then fail "Rawio: truncated header";
  if Bytes.sub_string bytes off 8 <> magic then fail "Rawio: bad magic";
  let rank = Int32.to_int (Bytes.get_int32_le bytes (off + 8)) in
  if rank < 0 || rank > max_rank then fail "Rawio: implausible rank %d" rank;
  if len < header_bytes rank then fail "Rawio: truncated header";
  let dims =
    Array.init rank (fun d ->
        let e = Int64.to_int (Bytes.get_int64_le bytes (off + 12 + (8 * d))) in
        if e < 0 then fail "Rawio: negative extent in dim %d" d;
        e)
  in
  if len < blob_bytes dims then fail "Rawio: truncated payload";
  dims

let decode ?(stage = "blob") bytes ~off ~len ~lo ~dims =
  let fail fmt = Err.failf Err.IO ~stage fmt in
  let got = peek_dims ~stage bytes ~off ~len in
  let rank = Array.length dims in
  if Array.length got <> rank then
    fail "Rawio: rank mismatch (got %d, want %d)" (Array.length got) rank;
  Array.iteri
    (fun d e ->
      if got.(d) <> e then
        fail "Rawio: extent mismatch in dim %d (got %d, want %d)" d got.(d) e)
    dims;
  let b = Rt.Buffer.create_uninit ~lo ~dims in
  let total = Rt.Buffer.size b in
  let payload = off + header_bytes rank in
  for i = 0 to total - 1 do
    b.data.(i) <- Int64.float_of_bits (Bytes.get_int64_le bytes (payload + (8 * i)))
  done;
  b

let write path (b : Rt.Buffer.t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode b))

let read path ~lo ~dims =
  let bytes =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          let b = Bytes.create n in
          really_input ic b 0 n;
          b)
    with
    | b -> b
    | exception Sys_error m -> Err.failf Err.IO ~stage:path "Rawio: %s" m
  in
  decode ~stage:path bytes ~off:0 ~len:(Bytes.length bytes) ~lo ~dims
