(* Argv-style subprocess execution for the backend: every child the
   backend ever spawns (compiler invocations, compiled-artifact runs,
   canary runs, toolchain probes) goes through [run], which forks and
   execs the program directly — no shell, so paths with spaces or
   metacharacters are passed verbatim — and captures stdout/stderr
   into temp files read back after the wait.  Files instead of pipes:
   compiler diagnostics can exceed a pipe buffer, and a full pipe with
   nobody draining it deadlocks the child.  Captures are capped so a
   runaway child cannot balloon the parent, with an explicit
   truncation marker so a cut compiler diagnostic is visible as cut.

   The child calls [setsid] before exec, so it leads its own process
   group: the watchdog ([?timeout_ms]) can kill the whole group —
   SIGTERM, a short grace window, then SIGKILL — and a child that
   forks helpers (an OpenMP runtime, a compiler driver's cc1) cannot
   leave orphans running after the deadline.  Optional rlimits (CPU
   seconds, address-space bytes) are applied between fork and exec as
   a kernel-enforced backstop underneath the watchdog.

   The fork+exec itself lives in a C stub (pm_proc_stubs.c): OCaml 5
   refuses [Unix.fork] once any domain has been spawned, and the
   native executor's worker pool spawns domains — but the narrow
   fork-then-immediately-exec case is sound, as the child performs
   only async-signal-safe calls on pre-copied C-heap arguments.

   Every spawn bumps [backend/subprocess_spawns]; the warm-path tests
   assert the counter stays at zero for in-process execution. *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics

(* (prog, argv, env, out_fd, err_fd, rlimit_cpu_s, rlimit_as_bytes)
   -> pid, or -errno when fork fails.  stdin is /dev/null; exec
   failure surfaces as exit 127 with the reason on stderr. *)
external pm_spawn :
  string
  * string array
  * string array
  * Unix.file_descr
  * Unix.file_descr
  * int
  * int
  -> int = "pm_spawn"

type result = {
  status : int;  (* exit code; 128+signal when killed by a signal *)
  stdout : string;  (* captured stdout, capped at [capture_limit] *)
  stderr : string;  (* captured stderr, capped at [capture_limit] *)
  signal : string option;  (* signal name when signal-killed *)
  timed_out : bool;  (* the watchdog killed the process group *)
  timeout_ms : int option;  (* the deadline that was armed, if any *)
}

let capture_limit = 65536
let truncation_marker n = Printf.sprintf "\n... [truncated at %d bytes]" n

let read_capped path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        if len <= capture_limit then really_input_string ic len
        else begin
          Metrics.bumpn "backend/capture_truncated";
          really_input_string ic capture_limit
          ^ truncation_marker capture_limit
        end)

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Extra bindings shadow the inherited environment: libc getenv returns
   the first match in environ, so stale duplicates must be dropped, not
   merely appended after. *)
let env_with extra =
  let keys = List.map fst extra in
  let inherited =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           match String.index_opt kv '=' with
           | None -> true
           | Some i -> not (List.mem (String.sub kv 0 i) keys))
  in
  Array.of_list
    (List.map (fun (k, v) -> k ^ "=" ^ v) extra @ inherited)

(* OCaml's Unix translates known signal numbers into its own negative
   constants; map them back to conventional names and numbers so exit
   statuses follow the shell's 128+N convention and errors can name
   the signal (SIGSEGV from a crashing artifact vs SIGKILL from the
   watchdog vs SIGXCPU from an rlimit). *)
let signal_table =
  [
    (Sys.sighup, ("SIGHUP", 1));
    (Sys.sigint, ("SIGINT", 2));
    (Sys.sigquit, ("SIGQUIT", 3));
    (Sys.sigill, ("SIGILL", 4));
    (Sys.sigabrt, ("SIGABRT", 6));
    (Sys.sigfpe, ("SIGFPE", 8));
    (Sys.sigkill, ("SIGKILL", 9));
    (Sys.sigusr1, ("SIGUSR1", 10));
    (Sys.sigsegv, ("SIGSEGV", 11));
    (Sys.sigusr2, ("SIGUSR2", 12));
    (Sys.sigpipe, ("SIGPIPE", 13));
    (Sys.sigalrm, ("SIGALRM", 14));
    (Sys.sigterm, ("SIGTERM", 15));
    (Sys.sigchld, ("SIGCHLD", 17));
    (Sys.sigcont, ("SIGCONT", 18));
    (Sys.sigstop, ("SIGSTOP", 19));
    (Sys.sigtstp, ("SIGTSTP", 20));
    (Sys.sigttin, ("SIGTTIN", 21));
    (Sys.sigttou, ("SIGTTOU", 22));
    (Sys.sigxcpu, ("SIGXCPU", 24));
    (Sys.sigxfsz, ("SIGXFSZ", 25));
    (Sys.sigvtalrm, ("SIGVTALRM", 26));
    (Sys.sigprof, ("SIGPROF", 27));
    (Sys.sigbus, ("SIGBUS", 7));
  ]

let signal_info s =
  match List.assoc_opt s signal_table with
  | Some info -> info
  | None ->
    (* positive numbers are system signals OCaml has no constant for *)
    let n = abs s in
    (Printf.sprintf "SIG%d" n, n)

let status_of_process = function
  | Unix.WEXITED n -> (n, None)
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
    let name, n = signal_info s in
    (128 + n, Some name)

let describe_status r =
  match (r.timed_out, r.signal) with
  | true, sig_name ->
    Printf.sprintf "killed by watchdog after %d ms deadline%s"
      (Option.value ~default:0 r.timeout_ms)
      (match sig_name with Some n -> " (" ^ n ^ ")" | None -> "")
  | false, Some name -> Printf.sprintf "killed by %s (exit %d)" name r.status
  | false, None -> Printf.sprintf "exit %d" r.status

(* Kill the child's whole process group (it setsid'd, so its pgid is
   its pid); fall back to the pid alone if the group is already gone. *)
let kill_group pid signal =
  (try Unix.kill (-pid) signal with Unix.Unix_error _ -> ());
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* Poll for exit until [deadline]; None = still running at deadline. *)
let rec wait_until pid deadline =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ ->
    if Unix.gettimeofday () >= deadline then None
    else begin
      Unix.sleepf 0.004;
      wait_until pid deadline
    end
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_until pid deadline

(* Reap with an optional watchdog.  The grace window between SIGTERM
   and SIGKILL is bounded by the timeout itself so the total time to
   reap stays under 2x the configured deadline. *)
let reap pid timeout_ms =
  match timeout_ms with
  | None -> (snd (Unix.waitpid [] pid), false)
  | Some ms ->
    let seconds = float_of_int ms /. 1000. in
    (match wait_until pid (Unix.gettimeofday () +. seconds) with
    | Some status -> (status, false)
    | None ->
      Metrics.bumpn "backend/watchdog_kills";
      kill_group pid Sys.sigterm;
      let grace = Float.min (Float.max (0.5 *. seconds) 0.05) 2.0 in
      (match wait_until pid (Unix.gettimeofday () +. grace) with
      | Some status -> (status, true)
      | None ->
        kill_group pid Sys.sigkill;
        (snd (Unix.waitpid [] pid), true)))

let run ?(env_extra = []) ?timeout_ms ?rlimit_cpu_s ?rlimit_as_bytes prog
    args =
  Metrics.bumpn "backend/subprocess_spawns";
  let out_f = Filename.temp_file "pm_proc" ".out" in
  let err_f = Filename.temp_file "pm_proc" ".err" in
  Fun.protect
    ~finally:(fun () ->
      remove_if_exists out_f;
      remove_if_exists err_f)
    (fun () ->
      let argv = Array.of_list (prog :: args) in
      let env = env_with env_extra in
      let out_fd =
        Unix.openfile out_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let err_fd =
        Unix.openfile err_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let spawn () =
        pm_spawn
          ( prog,
            argv,
            env,
            out_fd,
            err_fd,
            Option.value ~default:0 rlimit_cpu_s,
            Option.value ~default:0 rlimit_as_bytes )
      in
      let pid =
        Fun.protect
          ~finally:(fun () ->
            Unix.close out_fd;
            Unix.close err_fd)
          spawn
      in
      if pid < 0 then
        Err.failf Err.Exec "Proc: cannot fork to run %s (errno %d)" prog
          (-pid);
      let process_status, timed_out = reap pid timeout_ms in
      let status, signal = status_of_process process_status in
      {
        status;
        stdout = read_capped out_f;
        stderr = read_capped err_f;
        signal;
        timed_out;
        timeout_ms;
      })

(* First line of a program's stdout (toolchain version probes).  A
   probe that hangs would otherwise wedge startup, so probes carry a
   generous watchdog of their own. *)
let first_line ?env_extra prog args =
  match run ?env_extra ~timeout_ms:30_000 prog args with
  | { status = 0; stdout; _ } -> (
    match String.index_opt stdout '\n' with
    | Some i -> Some (String.sub stdout 0 i)
    | None -> if stdout = "" then None else Some stdout)
  | _ -> None

(* Collapse a capture into a short single-line detail for Err
   messages: first [n] lines, joined with " | ". *)
let first_lines ?(n = 4) s =
  let lines = String.split_on_char '\n' s in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | l :: rest -> if String.trim l = "" then take k rest else l :: take (k - 1) rest
  in
  String.concat " | " (take n lines)
