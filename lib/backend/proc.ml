(* Argv-style subprocess execution for the backend: every child the
   backend ever spawns (compiler invocations, compiled-artifact runs,
   toolchain probes) goes through [run], which execs the program
   directly — no shell, so paths with spaces or metacharacters are
   passed verbatim — and captures stdout/stderr into temp files read
   back after the wait.  Files instead of pipes: compiler diagnostics
   can exceed a pipe buffer, and a full pipe with nobody draining it
   deadlocks the child.  Captures are capped so a runaway child cannot
   balloon the parent.

   Every spawn bumps [backend/subprocess_spawns]; the warm-path tests
   assert the counter stays at zero for in-process execution. *)

module Metrics = Polymage_util.Metrics

type result = {
  status : int;  (* exit code; 128+signal when killed by a signal *)
  stdout : string;  (* captured stdout, capped at [capture_limit] *)
  stderr : string;  (* captured stderr, capped at [capture_limit] *)
}

let capture_limit = 65536

let read_capped path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = min (in_channel_length ic) capture_limit in
        really_input_string ic n)

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Extra bindings shadow the inherited environment: libc getenv returns
   the first match in environ, so stale duplicates must be dropped, not
   merely appended after. *)
let env_with extra =
  let keys = List.map fst extra in
  let inherited =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           match String.index_opt kv '=' with
           | None -> true
           | Some i -> not (List.mem (String.sub kv 0 i) keys))
  in
  Array.of_list
    (List.map (fun (k, v) -> k ^ "=" ^ v) extra @ inherited)

let run ?(env_extra = []) prog args =
  Metrics.bumpn "backend/subprocess_spawns";
  let out_f = Filename.temp_file "pm_proc" ".out" in
  let err_f = Filename.temp_file "pm_proc" ".err" in
  Fun.protect
    ~finally:(fun () ->
      remove_if_exists out_f;
      remove_if_exists err_f)
    (fun () ->
      let status =
        match
          let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
          let out_fd =
            Unix.openfile out_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
          in
          let err_fd =
            Unix.openfile err_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
          in
          Fun.protect
            ~finally:(fun () ->
              Unix.close devnull;
              Unix.close out_fd;
              Unix.close err_fd)
            (fun () ->
              Unix.create_process_env prog
                (Array.of_list (prog :: args))
                (env_with env_extra) devnull out_fd err_fd)
        with
        | exception Unix.Unix_error (e, _, _) ->
          (* exec failure (missing program, permission): report like a
             shell would, with the reason where stderr goes *)
          let oc = open_out err_f in
          Printf.fprintf oc "%s: %s\n" prog (Unix.error_message e);
          close_out oc;
          127
        | pid -> (
          match snd (Unix.waitpid [] pid) with
          | Unix.WEXITED n -> n
          | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s)
      in
      { status; stdout = read_capped out_f; stderr = read_capped err_f })

(* First line of a program's stdout (toolchain version probes). *)
let first_line ?env_extra prog args =
  match run ?env_extra prog args with
  | { status = 0; stdout; _ } -> (
    match String.index_opt stdout '\n' with
    | Some i -> Some (String.sub stdout 0 i)
    | None -> if stdout = "" then None else Some stdout)
  | _ -> None

(* Collapse a capture into a short single-line detail for Err
   messages: first [n] lines, joined with " | ". *)
let first_lines ?(n = 4) s =
  let lines = String.split_on_char '\n' s in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | l :: rest -> if String.trim l = "" then take k rest else l :: take (k - 1) rest
  in
  String.concat " | " (take n lines)
