(** On-disk artifact cache for compiled pipeline artifacts.

    Entries live as [<key>.exe] or [<key>.so] plus [<key>.meta] in a
    flat directory ([POLYMAGE_CACHE_DIR], default
    [$XDG_CACHE_HOME/polymage] or [~/.cache/polymage]).  The key is a
    content hash of (compiler identity, flags, emitted source) — a key
    never names both kinds, because the shared-object build differs in
    both flags and emitted entry point.  The meta records the
    artifact's size, kind, exported entry symbol and trust state
    (format 3; format-2 metas from before the quarantine layer read
    back as quarantined, format-1 metas from before the shared-object
    tier read back as quarantined executables — old entries remain
    usable either way).  Torn or partial stores — including a meta
    whose kind disagrees with the artifact on disk — read as corrupt
    and are recompiled, never executed.  Size-bounded LRU over both
    kinds: lookups touch their entry's mtime, stores evict
    oldest-first down to [POLYMAGE_CACHE_BYTES] (default 256 MiB).

    The cache also hosts the quarantine protocol's persistence: the
    trust bit in the meta, per-key crash markers ([<key>.inflight])
    that attribute a process death to the artifact that was executing,
    and per-key advisory locks ([<key>.lock]) for cross-process
    single-flight compilation. *)

type kind = Exe | So

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type trust = Quarantined | Trusted
    (** Quarantine state of an artifact.  Fresh stores default to
        [Quarantined]: the artifact's first execution must happen in a
        crash-isolated child (the canary).  A clean canary run
        promotes to [Trusted], which makes a shared object eligible
        for in-process dlopen.  A crash attributed to the artifact
        demotes it (invalidation — it recompiles and re-enters
        quarantine). *)

val trust_to_string : trust -> string
val trust_of_string : string -> trust option

val default_dir : unit -> string
val max_bytes : unit -> int

val key :
  tag:string ->
  cc:string ->
  version:string ->
  flags:string ->
  source:string ->
  string
(** Content hash naming the artifact.  [tag] folds extra configuration
    into the identity (the explicit SIMD level); the default empty tag
    hashes identically to the pre-tag key, so existing cache entries
    stay addressable. *)

val artifact_path : dir:string -> kind:kind -> string -> string

val exe_path : dir:string -> string -> string
(** [artifact_path ~kind:Exe]. *)

val lookup : ?kind:kind -> dir:string -> string -> string option
(** Path to a valid cached artifact of the given kind (default
    [Exe]) for the key, touching its LRU timestamp.  Corrupt entries
    (size or kind mismatch against meta, missing meta) are discarded
    and count as a miss ([backend/cache_corrupt]). *)

val entry_symbol : dir:string -> string -> string option
(** The entry symbol recorded in the key's meta ([main] for format-1
    metas), when the meta is readable. *)

val store :
  ?kind:kind ->
  ?entry:string ->
  ?trust:trust ->
  dir:string ->
  key:string ->
  build:(string -> unit) ->
  unit ->
  string
(** [store ~dir ~key ~build] creates the cache directory, calls
    [build tmp_path] to produce the artifact, atomically installs it
    under the key with the given kind (default [Exe]), entry symbol
    and trust state (default [Quarantined]), writes the meta, evicts
    down to the size bound (never the entry just stored) and returns
    the artifact path.
    @raise Polymage_util.Err.Polymage_error when [build] raises or
    produces nothing. *)

val trust : dir:string -> string -> trust option
(** The trust state recorded in the key's meta; [None] when the meta
    is missing or unreadable.  Format-1/2 metas (no trust line) read
    as [Some Quarantined]. *)

val set_trust : dir:string -> key:string -> trust -> unit
(** Atomically rewrite the key's meta with the given trust state,
    preserving size, kind and entry.  No-op when the meta is missing
    (nothing valid to promote). *)

val trust_stats : string -> int * int
(** [(trusted, quarantined)] counts over the shared-object entries of
    the directory — for [describe]/[explain] surfaces. *)

val write_marker : dir:string -> string -> unit
(** Write the key's crash marker ([<key>.inflight], holding this
    process's pid) — called immediately before an in-process call into
    the key's artifact. *)

val clear_marker : dir:string -> string -> unit
(** Remove the key's crash marker — called immediately after the
    in-process call returns (or raises). *)

val stale_marker : dir:string -> string -> bool
(** [true] when the key carries a crash marker owned by a dead
    process: the previous process died mid-call inside this artifact,
    and the entry must be demoted.  A marker owned by a live process
    (concurrent run) or by this process is not stale; an unreadable
    marker is treated as stale (cannot attribute, distrust). *)

val with_flight :
  ?stale_ms:int -> dir:string -> key:string -> (unit -> 'a) -> 'a
(** [with_flight ~dir ~key f] runs [f] holding an advisory
    cross-process lock on [<key>.lock], so concurrent processes
    compiling the same key don't both pay for the build — waiters
    block (polling), then typically find the winner's artifact with a
    cheap lookup.  Locks are per-process fcntl locks: they do not
    exclude within one process, and they vanish with a crashed owner.
    After [stale_ms] (default 120 s) a waiter gives up and proceeds
    unlocked ([backend/flight_stale]); the first wait of a call bumps
    [backend/flight_waits]. *)

val invalidate : dir:string -> string -> unit
(** Drop an entry, whatever its kind (used when a cached artifact
    fails to execute or load). *)

val evict : ?max_bytes:int -> ?keep:string -> string -> int
(** LRU-evict entries of the directory (both kinds) until total size
    fits the bound; returns how many entries were removed.  Exposed
    for tests. *)

val stats : string -> int * int
(** [(entry count, total bytes)] currently in the directory. *)
