(** On-disk artifact cache for compiled pipeline executables.

    Entries live as [<key>.exe] + [<key>.meta] pairs in a flat
    directory ([POLYMAGE_CACHE_DIR], default
    [$XDG_CACHE_HOME/polymage] or [~/.cache/polymage]).  The key is a
    content hash of (compiler identity, flags, emitted source); the
    meta records the executable size so torn or partial stores read as
    corrupt and are recompiled, never executed.  Size-bounded LRU:
    lookups touch their entry's mtime, stores evict oldest-first down
    to [POLYMAGE_CACHE_BYTES] (default 256 MiB). *)

val default_dir : unit -> string
val max_bytes : unit -> int

val key : cc:string -> version:string -> flags:string -> source:string -> string
(** Content hash naming the artifact. *)

val exe_path : dir:string -> string -> string

val lookup : dir:string -> string -> string option
(** Path to a valid cached executable for the key, touching its LRU
    timestamp.  Corrupt entries (size mismatch against meta, missing
    meta) are discarded and count as a miss
    ([backend/cache_corrupt]). *)

val store : dir:string -> key:string -> build:(string -> unit) -> string
(** [store ~dir ~key ~build] creates the cache directory, calls
    [build tmp_path] to produce the executable, atomically installs it
    under the key, writes the meta, evicts down to the size bound
    (never the entry just stored) and returns the executable path.
    @raise Polymage_util.Err.Polymage_error when [build] raises or
    produces nothing. *)

val invalidate : dir:string -> string -> unit
(** Drop an entry (used when a cached artifact fails to execute). *)

val evict : ?max_bytes:int -> ?keep:string -> string -> int
(** LRU-evict entries of the directory until total size fits the
    bound; returns how many entries were removed.  Exposed for
    tests. *)

val stats : string -> int * int
(** [(entry count, total bytes)] currently in the directory. *)
