(** On-disk artifact cache for compiled pipeline artifacts.

    Entries live as [<key>.exe] or [<key>.so] plus [<key>.meta] in a
    flat directory ([POLYMAGE_CACHE_DIR], default
    [$XDG_CACHE_HOME/polymage] or [~/.cache/polymage]).  The key is a
    content hash of (compiler identity, flags, emitted source) — a key
    never names both kinds, because the shared-object build differs in
    both flags and emitted entry point.  The meta records the
    artifact's size, kind, and exported entry symbol (format 2;
    format-1 metas from before the shared-object tier read back as
    executables, so old entries remain usable).  Torn or partial
    stores — including a meta whose kind disagrees with the artifact
    on disk — read as corrupt and are recompiled, never executed.
    Size-bounded LRU over both kinds: lookups touch their entry's
    mtime, stores evict oldest-first down to [POLYMAGE_CACHE_BYTES]
    (default 256 MiB). *)

type kind = Exe | So

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val default_dir : unit -> string
val max_bytes : unit -> int

val key : cc:string -> version:string -> flags:string -> source:string -> string
(** Content hash naming the artifact. *)

val artifact_path : dir:string -> kind:kind -> string -> string

val exe_path : dir:string -> string -> string
(** [artifact_path ~kind:Exe]. *)

val lookup : ?kind:kind -> dir:string -> string -> string option
(** Path to a valid cached artifact of the given kind (default
    [Exe]) for the key, touching its LRU timestamp.  Corrupt entries
    (size or kind mismatch against meta, missing meta) are discarded
    and count as a miss ([backend/cache_corrupt]). *)

val entry_symbol : dir:string -> string -> string option
(** The entry symbol recorded in the key's meta ([main] for format-1
    metas), when the meta is readable. *)

val store :
  ?kind:kind ->
  ?entry:string ->
  dir:string ->
  key:string ->
  build:(string -> unit) ->
  unit ->
  string
(** [store ~dir ~key ~build] creates the cache directory, calls
    [build tmp_path] to produce the artifact, atomically installs it
    under the key with the given kind (default [Exe]) and entry
    symbol, writes the meta, evicts down to the size bound (never the
    entry just stored) and returns the artifact path.
    @raise Polymage_util.Err.Polymage_error when [build] raises or
    produces nothing. *)

val invalidate : dir:string -> string -> unit
(** Drop an entry, whatever its kind (used when a cached artifact
    fails to execute or load). *)

val evict : ?max_bytes:int -> ?keep:string -> string -> int
(** LRU-evict entries of the directory (both kinds) until total size
    fits the bound; returns how many entries were removed.  Exposed
    for tests. *)

val stats : string -> int * int
(** [(entry count, total bytes)] currently in the directory. *)
