(* In-process loading and invocation of compiled shared-object
   artifacts (the c-dlopen tier's bottom half).

   A path-keyed registry caches (dlopen handle, entry pointer) pairs.
   The registry is not a convenience: dlopen of a path that is already
   loaded returns the existing handle without re-reading the file, so
   after the backend invalidates and rebuilds a cached artifact under
   the same path, a naive re-open would keep executing the stale
   image.  [forget] dlcloses and drops the registry entry; the backend
   calls it before every invalidate+rebuild.

   Buffers cross the boundary as Bigarrays (float64/c_layout): their
   data lives off the OCaml heap, so the stubs can release the runtime
   lock for the duration of the pipeline call.  The conversion from
   the executor's [float array] buffers happens in the backend — this
   module only speaks Bigarray. *)

module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Fault = Polymage_rt.Fault

type f64s =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i32s =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type i64s =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external dl_open : string -> nativeint = "pm_dl_open"
external dl_sym : nativeint -> string -> nativeint = "pm_dl_sym"
external dl_close : nativeint -> unit = "pm_dl_close"

external dl_call :
  nativeint -> int -> i32s -> f64s array -> f64s array -> i64s -> int
  = "pm_dl_call_byte" "pm_dl_call"

(* Entry pointers stay valid exactly as long as their handle stays in
   the registry; [forget] is the only dlclose site. *)
type entry = { handle : nativeint; fn : nativeint }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let loaded path = Mutex.protect lock (fun () -> Hashtbl.mem registry path)

let get ~path ~symbol =
  Fault.hit "dlopen";
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry path with
  | Some e -> e.fn
  | None ->
    let handle =
      try dl_open path
      with Failure msg ->
        Err.failf Err.Exec ~stage:"dlopen" "Dlexec: cannot load %s: %s" path
          msg
    in
    let fn =
      try dl_sym handle symbol
      with Failure msg ->
        dl_close handle;
        Err.failf Err.Exec ~stage:"dlsym" "Dlexec: no entry %s in %s: %s"
          symbol path msg
    in
    Metrics.bumpn "backend/dl_loads";
    Hashtbl.replace registry path { handle; fn };
    fn

let forget path =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry path with
  | None -> ()
  | Some e ->
    Hashtbl.remove registry path;
    dl_close e.handle

let call fn ~nthreads ~params ~ins ~outs ~totals =
  Metrics.bumpn "backend/dl_calls";
  dl_call fn nthreads params ins outs totals
