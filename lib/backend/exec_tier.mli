(** The execution-tier interface: every consumer of "run this plan" —
    CLI, tuner, benchmarks, tests — goes through one dial.

    Tiers: [Native] (the OCaml executor), [C_subprocess] (compiled C
    run as a child process, {!Backend.run}), [C_dlopen] (compiled C
    called in-process through dlopen, {!Backend.run_dl}), and [Auto]
    (serve immediately on whatever is ready while the shared object
    compiles in a background domain, hot-swapping when it lands).

    The degradation ladder composes left to right:
    c-dlopen -> c-subprocess -> native (opt+vec+kernels -> opt ->
    naive); each rung records a degradation and falls to the next.

    The c-dlopen rung is crash-safe: a fresh or unknown shared object
    is quarantined — its first execution happens in a crash-isolated
    canary child, and only after a clean run is it promoted to trusted
    and dlopen'd into this process (see {!Backend.run_dl}).  An
    artifact that crashes or hangs its canary is invalidated, the rung
    records a degradation naming the signal or watchdog deadline, and
    execution falls to c-subprocess — the parent process survives
    every artifact failure mode. *)

open Polymage_ir
module Comp = Polymage_compiler
module Rt = Polymage_rt

type t = Native | C_subprocess | C_dlopen | Auto

val to_string : t -> string
(** ["native"], ["c"], ["c-dlopen"], ["auto"] — the CLI spellings. *)

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts ["c-subprocess"] for ["c"]. *)

val all : t list

val run :
  ?cache_dir:string ->
  ?repeats:int ->
  t ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  Rt.Executor.result * Backend.stats option
(** Execute on exactly the given tier (no ladder); [Auto] waits for
    the background compile and runs on [C_dlopen].  Stats are [None]
    only for [Native].  @raise Polymage_util.Err.Polymage_error as the
    tier's runner does. *)

val run_safe :
  ?cache_dir:string ->
  ?repeats:int ->
  ?pool:Rt.Pool.t ->
  t ->
  Comp.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  (Rt.Executor.result * Backend.stats option) * Rt.Executor.degradation list
(** Execute with the full degradation ladder from the given tier down.
    Rung names in recorded degradations: ["c-dlopen"],
    ["c-subprocess"], then the native executor's.  [Auto] serves
    one-shot on whatever is ready and joins the compile domain before
    returning — the hot-swap loop uses {!auto_start}/{!auto_run}. *)

(** {1 Tiered execution with hot-swap}

    [auto_start] kicks off the shared-object compile in a background
    domain and returns immediately; [auto_run] serves each request on
    the best tier currently available — the native executor while the
    compile is in flight (or after it failed: the failure is sticky,
    the compile is not retried), the in-process artifact once it is
    ready.  The swap is atomic per call: a request sees entirely one
    tier or the other, never a mixture. *)

type auto

val auto_start : ?cache_dir:string -> Comp.Plan.t -> auto

val auto_run :
  ?repeats:int ->
  ?pool:Rt.Pool.t ->
  auto ->
  Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  (Rt.Executor.result * Backend.stats option)
  * Rt.Executor.degradation list
  * string
(** Serve one request; the third component names the tier that served
    it (["c-dlopen"] or ["native"]). *)

val auto_await : auto -> unit
(** Block until the background compile finishes and join its domain
    (idempotent).  Call before process exit or before asserting on
    {!auto_state}. *)

val auto_state : auto -> string
(** ["compiling"], ["ready"], or ["failed: <why>"]. *)

val auto_artifact : auto -> (string * string * string) option
(** The pinned (cache dir, cache key, shared-object path) once the
    background compile has landed; [None] while compiling, after a
    failed compile, or while a demoted pin is being re-established. *)

val profile :
  ?cache_dir:string ->
  opts:Comp.Options.t ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  t ->
  Rt.Profile.report * Backend.stats option
(** Tier-dispatched profiling: {!Rt.Profile.run} for [Native],
    {!Backend.profile} otherwise ([Auto] profiles the dlopen tier). *)

val describe : t -> string
(** One line for [explain]/reports. *)
