/* dlopen/dlsym/dlclose/call stubs for the in-process shared-object
 * tier.  Handles and function pointers cross into OCaml as boxed
 * nativeints; buffers cross as Bigarrays, whose data lives outside the
 * OCaml heap and never moves — that is what makes it safe to release
 * the runtime lock for the duration of the pipeline call, so OpenMP
 * worker threads and other domains proceed while the kernel runs.
 * Every value needed by the call is copied into C locals before the
 * release.
 */

#include <dlfcn.h>
#include <stdint.h>

#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

/* Must match Cgen.emit_raw_entry. */
typedef int (*pm_entry_fn)(int nthreads, const int32_t *params,
                           const double *const *ins, double *const *outs,
                           const int64_t *out_totals);

CAMLprim value pm_dl_open(value vpath)
{
  CAMLparam1(vpath);
  void *h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (!h) {
    const char *e = dlerror();
    caml_failwith(e ? e : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

CAMLprim value pm_dl_sym(value vh, value vname)
{
  CAMLparam2(vh, vname);
  dlerror(); /* clear: NULL is a legal symbol value */
  void *fn = dlsym((void *)Nativeint_val(vh), String_val(vname));
  const char *e = dlerror();
  if (e) caml_failwith(e);
  if (!fn) caml_failwith("dlsym returned NULL");
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value pm_dl_close(value vh)
{
  CAMLparam1(vh);
  dlclose((void *)Nativeint_val(vh));
  CAMLreturn(Val_unit);
}

#define PM_MAX_BUFS 64

CAMLprim value pm_dl_call(value vfn, value vnthreads, value vparams,
                          value vins, value vouts, value vtotals)
{
  CAMLparam5(vfn, vnthreads, vparams, vins, vouts);
  CAMLxparam1(vtotals);
  pm_entry_fn fn = (pm_entry_fn)Nativeint_val(vfn);
  int nthreads = Int_val(vnthreads);
  mlsize_t nin = Wosize_val(vins);
  mlsize_t nout = Wosize_val(vouts);
  if (nin > PM_MAX_BUFS || nout > PM_MAX_BUFS)
    caml_invalid_argument("pm_dl_call: too many buffers");
  const int32_t *params = (const int32_t *)Caml_ba_data_val(vparams);
  const int64_t *totals = (const int64_t *)Caml_ba_data_val(vtotals);
  const double *ins[PM_MAX_BUFS];
  double *outs[PM_MAX_BUFS];
  for (mlsize_t i = 0; i < nin; i++)
    ins[i] = (const double *)Caml_ba_data_val(Field(vins, i));
  for (mlsize_t i = 0; i < nout; i++)
    outs[i] = (double *)Caml_ba_data_val(Field(vouts, i));
  int rc;
  caml_enter_blocking_section();
  rc = fn(nthreads, params, ins, outs, totals);
  caml_leave_blocking_section();
  CAMLreturn(Val_int(rc));
}

CAMLprim value pm_dl_call_byte(value *argv, int argn)
{
  (void)argn;
  return pm_dl_call(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
}
