(* C-compiler discovery, shared by the compiled backend, the benchmark
   harness and the codegen tests.  One probe per [POLYMAGE_CC] value
   per process: compiler discovery shells out a handful of times, and
   every caller (tests especially) asks repeatedly. *)

module Err = Polymage_util.Err

type t = {
  cc : string;  (* compiler command *)
  version : string;  (* first line of `cc --version` *)
  flags : string;  (* best flag set the compiler accepted *)
  has_openmp : bool;
}

let opt_flags = "-O3 -march=native -fopenmp"
let opt_flags_no_omp = "-O3 -march=native"
let fallback_flags = "-O1"

let first_line_of_command cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let line = try Some (input_line ic) with End_of_file -> None in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> line
  | _ -> None

(* Can [cc flags] turn a trivial translation unit into an executable? *)
let probe_flags cc flags =
  let src = Filename.temp_file "pm_probe" ".c" in
  let exe = src ^ ".exe" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove src with Sys_error _ -> ());
      try Sys.remove exe with Sys_error _ -> ())
    (fun () ->
      let oc = open_out src in
      output_string oc "int main(void) { return 0; }\n";
      close_out oc;
      Sys.command
        (Printf.sprintf "%s %s -o %s %s > /dev/null 2>&1" cc flags
           (Filename.quote exe) (Filename.quote src))
      = 0)

let probe cc =
  match first_line_of_command (cc ^ " --version") with
  | None -> None
  | Some version ->
    if probe_flags cc opt_flags then
      Some { cc; version; flags = opt_flags; has_openmp = true }
    else if probe_flags cc opt_flags_no_omp then
      Some { cc; version; flags = opt_flags_no_omp; has_openmp = false }
    else if probe_flags cc fallback_flags then
      Some { cc; version; flags = fallback_flags; has_openmp = false }
    else None

(* Memoized per POLYMAGE_CC value, so a test can point the variable at
   a bogus command, observe the degradation, unset it, and get the
   real compiler back. *)
let cache : (string option, t option) Hashtbl.t = Hashtbl.create 4

let lookup () =
  let key = Sys.getenv_opt "POLYMAGE_CC" in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r =
      match key with
      | Some cc -> probe cc (* explicit choice: no silent fallback *)
      | None ->
        let rec first = function
          | [] -> None
          | cc :: rest -> (
            match probe cc with Some t -> Some t | None -> first rest)
        in
        first [ "cc"; "gcc"; "clang" ]
    in
    Hashtbl.replace cache key r;
    r

let available () = lookup () <> None

let get () =
  match lookup () with
  | Some t -> t
  | None ->
    Err.fail Err.Codegen
      (match Sys.getenv_opt "POLYMAGE_CC" with
      | Some cc ->
        Printf.sprintf "Toolchain: POLYMAGE_CC=%S is not a working C compiler"
          cc
      | None -> "Toolchain: no working C compiler (tried cc, gcc, clang)")

let describe () =
  match lookup () with
  | None -> "no C compiler available"
  | Some t ->
    Printf.sprintf "%s (%s)%s" t.cc t.version
      (if t.has_openmp then " +openmp" else " -openmp")
