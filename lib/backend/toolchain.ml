(* C-compiler discovery, shared by the compiled backend, the benchmark
   harness and the codegen tests.  One probe per [POLYMAGE_CC] value
   per process: compiler discovery spawns a handful of processes, and
   every caller (tests especially) asks repeatedly.

   Probes exec the compiler directly through [Proc] (argv, no shell).
   The flag ladder is probed twice: once for executables
   (-O3 -march=native -fopenmp, then without OpenMP, then -O1) and —
   on the accepted flag set — once more with [-shared -fPIC] for the
   in-process shared-object tier; a compiler that cannot produce
   shared objects leaves [so_flags = None] and the dlopen tier
   degrades to the subprocess tier. *)

module Err = Polymage_util.Err

type t = {
  cc : string;  (* compiler command *)
  version : string;  (* first line of `cc --version` *)
  flags : string;  (* best flag set the compiler accepted *)
  has_openmp : bool;
  so_flags : string option;
      (* [flags] + "-shared -fPIC" when the compiler can build shared
         objects; None disables the in-process tier *)
}

let opt_flags = "-O3 -march=native -fopenmp"
let opt_flags_no_omp = "-O3 -march=native"
let fallback_flags = "-O1"
let shared_extra = "-shared -fPIC"

(* Flag strings are kept as single strings (they are part of the cache
   key) and split on whitespace at the exec boundary. *)
let split_flags flags =
  String.split_on_char ' ' flags |> List.filter (fun s -> s <> "")

(* Can [cc flags] turn a trivial translation unit into an artifact? *)
let probe_flags cc flags =
  let src = Filename.temp_file "pm_probe" ".c" in
  let out = src ^ ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove src with Sys_error _ -> ());
      try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let oc = open_out src in
      output_string oc
        "int pm_probe(void) { return 0; }\nint main(void) { return 0; }\n";
      close_out oc;
      (* a wedged compiler must not hang startup: probes are bounded *)
      (Proc.run ~timeout_ms:30_000 cc (split_flags flags @ [ "-o"; out; src ]))
        .Proc.status = 0)

let probe cc =
  match Proc.first_line cc [ "--version" ] with
  | None -> None
  | Some version ->
    let mk flags has_openmp =
      let so = flags ^ " " ^ shared_extra in
      Some
        {
          cc;
          version;
          flags;
          has_openmp;
          so_flags = (if probe_flags cc so then Some so else None);
        }
    in
    if probe_flags cc opt_flags then mk opt_flags true
    else if probe_flags cc opt_flags_no_omp then mk opt_flags_no_omp false
    else if probe_flags cc fallback_flags then mk fallback_flags false
    else None

(* Memoized per POLYMAGE_CC value, so a test can point the variable at
   a bogus command, observe the degradation, unset it, and get the
   real compiler back. *)
let cache : (string option, t option) Hashtbl.t = Hashtbl.create 4

let lookup () =
  let key = Sys.getenv_opt "POLYMAGE_CC" in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r =
      match key with
      | Some cc -> probe cc (* explicit choice: no silent fallback *)
      | None ->
        let rec first = function
          | [] -> None
          | cc :: rest -> (
            match probe cc with Some t -> Some t | None -> first rest)
        in
        first [ "cc"; "gcc"; "clang" ]
    in
    Hashtbl.replace cache key r;
    r

let available () = lookup () <> None

let get () =
  match lookup () with
  | Some t -> t
  | None ->
    Err.fail Err.Codegen
      (match Sys.getenv_opt "POLYMAGE_CC" with
      | Some cc ->
        Printf.sprintf "Toolchain: POLYMAGE_CC=%S is not a working C compiler"
          cc
      | None -> "Toolchain: no working C compiler (tried cc, gcc, clang)")

(* ---- ISA probing for explicit SIMD codegen ----

   Which vector ISA should strip-mined loops and the fast-math kernels
   target?  The probe compiles AND RUNS a cpuid feature check — a
   compile-only check would report what the compiler can emit, not
   what this machine can execute, and the answer feeds codegen
   decisions (strip width) that we want matched to the hardware.

   [POLYMAGE_ISA] overrides the probe, mirroring [POLYMAGE_CC]:
   "sse2"/"avx2"/"avx512" force that level (always safe — the emitted
   artifact still dispatches its fast-math kernels by cpuid at load
   time, so a forced level above the hardware only changes the strip
   width), "off" disables explicit SIMD, anything else falls back to
   the probe.  Memoized per (POLYMAGE_CC, POLYMAGE_ISA) under a mutex:
   unlike {!lookup}, this table is consulted from background compile
   domains (the Auto tier, serve workers). *)

type isa = Sse2 | Avx2 | Avx512

let isa_to_string = function
  | Sse2 -> "sse2"
  | Avx2 -> "avx2"
  | Avx512 -> "avx512"

let isa_of_string = function
  | "sse2" -> Some Sse2
  | "avx2" -> Some Avx2
  | "avx512" -> Some Avx512
  | _ -> None

(* Appended to the compile flags when the emitted source batches
   transcendentals: gcc 12 refuses to if-convert the branchless
   ternaries in the fast-math kernels (and in select-bearing vector
   bodies) unless FP-exception-flag traps may be ignored.  The flag
   never changes computed values, only whether FE_* flags are
   faithfully raised.  A per-function optimize attribute would scope
   it tighter but gcc re-derives the whole optimization state for
   attributed functions, which measurably deoptimizes them — so the
   flag stays TU-wide and the backend instead skips it entirely for
   plans with nothing to batch ({!Cgen.plan_batches}). *)
let simd_cflags = "-fno-trapping-math"

let probe_isa_src =
  "#include <stdio.h>\n\
   int main(void) {\n\
   #if defined(__x86_64__) && defined(__GNUC__)\n\
   \  __builtin_cpu_init();\n\
   \  if (__builtin_cpu_supports(\"avx512f\")) { puts(\"avx512\"); return 0; }\n\
   \  if (__builtin_cpu_supports(\"avx2\")) { puts(\"avx2\"); return 0; }\n\
   \  puts(\"sse2\"); return 0;\n\
   #else\n\
   \  puts(\"none\"); return 0;\n\
   #endif\n\
   }\n"

let probe_isa cc =
  let src = Filename.temp_file "pm_isa" ".c" in
  let out = src ^ ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove src with Sys_error _ -> ());
      try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let oc = open_out src in
      output_string oc probe_isa_src;
      close_out oc;
      if (Proc.run ~timeout_ms:30_000 cc [ "-O0"; "-o"; out; src ]).Proc.status
         <> 0
      then None
      else
        match Proc.first_line out [] with
        | Some l -> isa_of_string (String.trim l)
        | None -> None)

let isa_cache : (string option * string option, isa option) Hashtbl.t =
  Hashtbl.create 4

let isa_mutex = Mutex.create ()

let isa_lookup () =
  let key = (Sys.getenv_opt "POLYMAGE_CC", Sys.getenv_opt "POLYMAGE_ISA") in
  Mutex.protect isa_mutex @@ fun () ->
  match Hashtbl.find_opt isa_cache key with
  | Some r -> r
  | None ->
    let r =
      match snd key with
      | Some "off" -> None
      | Some s when isa_of_string s <> None -> isa_of_string s
      | _ -> (
        match lookup () with None -> None | Some t -> probe_isa t.cc)
    in
    Hashtbl.replace isa_cache key r;
    r

let so_flags_exn (t : t) =
  match t.so_flags with
  | Some f -> f
  | None ->
    Err.failf Err.Codegen
      "Toolchain: %s cannot build shared objects (%s rejected)" t.cc
      shared_extra

let describe () =
  match lookup () with
  | None -> "no C compiler available"
  | Some t ->
    Printf.sprintf "%s (%s)%s%s" t.cc t.version
      (if t.has_openmp then " +openmp" else " -openmp")
      (if t.so_flags <> None then " +shared" else " -shared")
