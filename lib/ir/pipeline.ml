open Ast

exception Invalid_pipeline of string

type t = {
  outputs : func list;
  stages : func array;
  producers : int list array;
  consumers : int list array;
  level : int array;
  self_recursive : bool array;
  images : image list;
  params : Types.param list;
}

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_pipeline s)) fmt

(* Depth-first collection of all stages reachable from the outputs.
   Uses an explicit grey set to detect cycles early with a readable
   message (Topo would catch them too, but without stage names). *)
let collect outputs =
  let acc = ref [] in
  let state = Hashtbl.create 16 in
  let rec visit path f =
    match Hashtbl.find_opt state f.fid with
    | Some `Done -> ()
    | Some `Active ->
      invalid "cycle through stage %s (path: %s)" f.fname
        (String.concat " -> " (List.rev_map (fun g -> g.fname) path))
    | None ->
      Hashtbl.add state f.fid `Active;
      (match f.fbody with
      | Undefined -> invalid "stage %s has no definition" f.fname
      | _ -> ());
      let deps =
        List.filter (fun g -> not (func_equal g f)) (Expr.called_funcs f.fbody)
      in
      List.iter (visit (f :: path)) deps;
      Hashtbl.replace state f.fid `Done;
      acc := f :: !acc
  in
  List.iter (visit []) outputs;
  List.rev !acc

(* Integer division/modulo with a non-positive divisor would otherwise
   surface as a bare [Division_by_zero] (or a wrong flooring) deep
   inside a compiled closure; reject it when the pipeline is built. *)
let check_divisors f =
  let bad what n =
    invalid "stage %s: %s with non-positive divisor %d" f.fname what n
  in
  let rec go e =
    match e with
    | Const _ | Var _ | Param _ -> ()
    | Call (_, args) | Img (_, args) -> List.iter go args
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) | Cast (_, a) -> go a
    | IDiv (a, n) ->
      if n <= 0 then bad "integer division" n;
      go a
    | IMod (a, n) ->
      if n <= 0 then bad "integer modulo" n;
      go a
    | Select (c, a, b) ->
      go_c c;
      go a;
      go b
  and go_c = function
    | Cmp (_, a, b) ->
      go a;
      go b
    | And (a, b) | Or (a, b) ->
      go_c a;
      go_c b
    | Not a -> go_c a
  in
  match f.fbody with
  | Undefined -> ()
  | Cases cs ->
    List.iter
      (fun { ccond; rhs } ->
        Option.iter go_c ccond;
        go rhs)
      cs
  | Reduce r ->
    List.iter go r.rindex;
    go r.rvalue

let check_arities f =
  let on_call g args =
    if List.length args <> func_arity g then
      invalid "stage %s references %s with %d indices (expected %d)" f.fname
        g.fname (List.length args) (func_arity g)
  in
  let on_img (im : image) args =
    if List.length args <> List.length im.iextents then
      invalid "stage %s references image %s with %d indices (expected %d)"
        f.fname im.iname (List.length args)
        (List.length im.iextents)
  in
  Expr.iter_body ~on_call ~on_img f.fbody

let build ~outputs =
  if outputs = [] then invalid "pipeline has no outputs";
  let order = collect outputs in
  let stages = Array.of_list order in
  let n = Array.length stages in
  let index = Hashtbl.create n in
  Array.iteri (fun i f -> Hashtbl.replace index f.fid i) stages;
  Array.iter check_arities stages;
  Array.iter check_divisors stages;
  let producers = Array.make n [] in
  let consumers = Array.make n [] in
  let self_recursive = Array.make n false in
  Array.iteri
    (fun i f ->
      let deps = Expr.called_funcs f.fbody in
      List.iter
        (fun g ->
          if func_equal g f then self_recursive.(i) <- true
          else
            let j = Hashtbl.find index g.fid in
            if not (List.mem j producers.(i)) then (
              producers.(i) <- j :: producers.(i);
              consumers.(j) <- i :: consumers.(j)))
        deps)
    stages;
  let level =
    Polymage_util.Topo.levels ~n ~succs:(fun i -> consumers.(i))
  in
  let images =
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    Array.iter
      (fun f ->
        List.iter
          (fun im ->
            if not (Hashtbl.mem seen im.iid) then (
              Hashtbl.add seen im.iid ();
              acc := im :: !acc))
          (Expr.used_images f.fbody))
      stages;
    List.rev !acc
  in
  let params =
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let add (p : Types.param) =
      if not (Hashtbl.mem seen p.pid) then (
        Hashtbl.add seen p.pid ();
        acc := p :: !acc)
    in
    let add_bound b = List.iter add (Abound.params b) in
    let add_dom dom =
      List.iter
        (fun (iv : Interval.t) ->
          add_bound iv.lo;
          add_bound iv.hi)
        dom
    in
    Array.iter
      (fun f ->
        add_dom f.fdom;
        let collect_e e =
          let rec go e =
            match e with
            | Param p -> add p
            | Const _ | Var _ -> ()
            | Call (_, args) | Img (_, args) -> List.iter go args
            | Binop (_, a, b) ->
              go a;
              go b
            | Unop (_, a) | IDiv (a, _) | IMod (a, _) | Cast (_, a) -> go a
            | Select (c, a, b) ->
              go_c c;
              go a;
              go b
          and go_c = function
            | Cmp (_, a, b) ->
              go a;
              go b
            | And (a, b) | Or (a, b) ->
              go_c a;
              go_c b
            | Not a -> go_c a
          in
          go e
        in
        match f.fbody with
        | Undefined -> ()
        | Cases cs ->
          List.iter
            (fun { ccond; rhs } ->
              Option.iter
                (fun c ->
                  let rec go_c = function
                    | Cmp (_, a, b) ->
                      collect_e a;
                      collect_e b
                    | And (a, b) | Or (a, b) ->
                      go_c a;
                      go_c b
                    | Not a -> go_c a
                  in
                  go_c c)
                ccond;
              collect_e rhs)
            cs
        | Reduce r ->
          add_dom r.rdom;
          List.iter collect_e r.rindex;
          collect_e r.rvalue)
      stages;
    List.iter
      (fun (im : image) -> List.iter add_bound im.iextents)
      images;
    List.rev !acc
  in
  {
    outputs;
    stages;
    producers;
    consumers;
    level;
    self_recursive;
    images;
    params;
  }

let n_stages t = Array.length t.stages

let stage_index t f =
  let n = Array.length t.stages in
  let rec go i =
    if i >= n then raise Not_found
    else if func_equal t.stages.(i) f then i
    else go (i + 1)
  in
  go 0

let is_output t i = List.exists (func_equal t.stages.(i)) t.outputs
let max_level t = Array.fold_left max 0 t.level

let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph pipeline {\n  rankdir=TB;\n";
  List.iter
    (fun (im : image) ->
      Buffer.add_string b
        (Printf.sprintf "  img_%d [label=\"%s\", shape=box];\n" im.iid
           im.iname))
    t.images;
  Array.iteri
    (fun i f ->
      let shape =
        match f.fbody with Reduce _ -> "diamond" | _ -> "ellipse"
      in
      let style = if is_output t i then ", style=bold" else "" in
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" i f.fname shape
           style))
    t.stages;
  Array.iteri
    (fun i f ->
      List.iter
        (fun j -> Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" j i))
        t.producers.(i);
      List.iter
        (fun (im : image) ->
          Buffer.add_string b (Printf.sprintf "  img_%d -> n%d;\n" im.iid i))
        (Expr.used_images f.fbody))
    t.stages;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp_summary ppf t =
  Array.iteri
    (fun i f ->
      Format.fprintf ppf "%-20s level=%d producers=[%s]%s@." f.fname
        t.level.(i)
        (String.concat ", "
           (List.map (fun j -> t.stages.(j).fname) t.producers.(i)))
        (if t.self_recursive.(i) then " (self-recursive)" else ""))
    t.stages
