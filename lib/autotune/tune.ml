module C = Polymage_compiler
module Rt = Polymage_rt
module Backend = Polymage_backend.Backend
module Exec_tier = Polymage_backend.Exec_tier
module Err = Polymage_util.Err
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

let paper_tiles = [ 8; 16; 32; 64; 128; 256; 512 ]
let paper_thresholds = [ 0.2; 0.4; 0.5 ]

type status =
  | Timed of {
      time_seq : float;
      time_par : float;
      n_groups : int;
      compile_ms : float;
          (* C-backend candidates: wall time spent compiling the
             artifact, reported separately from the run times (0 on a
             warm cache and for the native backend) *)
    }
  | Failed of Err.t

type sample = { tile : int array; threshold : float; status : status }
type result = { samples : sample list; best : sample }

let time_par s =
  match s.status with Timed t -> Some t.time_par | Failed _ -> None

let pp_sample ppf s =
  Format.fprintf ppf "tile=%dx%d thresh=%.1f  " s.tile.(0) s.tile.(1)
    s.threshold;
  match s.status with
  | Timed t ->
    Format.fprintf ppf "seq %.2f ms  par %.2f ms  groups %d"
      (t.time_seq *. 1000.) (t.time_par *. 1000.) t.n_groups;
    if t.compile_ms > 0. then
      Format.fprintf ppf "  (compile %.0f ms)" t.compile_ms
  | Failed e -> Format.fprintf ppf "FAILED: %a" Err.pp e

let time_run ~repeats pool plan env images =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Rt.Executor.run ?pool plan env ~images);
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

let explore ?(tiles = [ 16; 32; 64; 128 ]) ?(thresholds = paper_thresholds)
    ?(workers = 4) ?(repeats = 1) ?budget ?(backend = Exec_tier.Native)
    ?(simd = C.Options.Simd_auto) ?cache_dir ~outputs ~env ~images () =
  (* Auto is a serving-time policy; for a sweep the interesting number
     is the in-process steady state, so tune it as c-dlopen. *)
  let backend =
    match backend with Exec_tier.Auto -> Exec_tier.C_dlopen | b -> b
  in
  let pool = if workers > 1 then Some (Rt.Pool.create workers) else None in
  let samples = ref [] in
  Fun.protect
    ~finally:(fun () -> Option.iter Rt.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun ty ->
          List.iter
            (fun tx ->
              List.iter
                (fun threshold ->
                  let tile = [| ty; tx |] in
                  (* Each candidate is isolated: a configuration that
                     crashes (or blows its time budget) becomes a
                     [Failed] sample and the sweep continues.  Domains
                     cannot be interrupted, so the budget is soft —
                     checked between the compile/run phases of the
                     candidate. *)
                  let status =
                    Trace.with_span ~cat:"tune" "tune.candidate"
                      ~args:
                        [
                          ("tile", Printf.sprintf "%dx%d" ty tx);
                          ("threshold", Printf.sprintf "%.2f" threshold);
                        ]
                    @@ fun () ->
                    Metrics.bumpn "tune/candidates";
                    try
                      let t_start = Unix.gettimeofday () in
                      let checkpoint what =
                        match budget with
                        | Some b when Unix.gettimeofday () -. t_start > b ->
                          Err.failf Err.Exec
                            ~stage:(Printf.sprintf "tile=%dx%d" ty tx)
                            "Tune.explore: candidate over budget (> %.3fs) \
                             after %s"
                            b what
                        | _ -> ()
                      in
                      let opts =
                        C.Options.with_simd simd
                          (C.Options.with_threshold threshold
                             (C.Options.with_tile tile
                                (C.Options.opt_vec ~estimates:env ())))
                      in
                      let plan = C.Compile.run opts ~outputs in
                      match backend with
                      | Exec_tier.Auto -> assert false (* mapped above *)
                      | Exec_tier.Native ->
                        (* one warm-up at this configuration *)
                        ignore (Rt.Executor.run plan env ~images);
                        checkpoint "warm-up";
                        let time_seq =
                          let plan1 =
                            C.Compile.run { opts with workers = 1 } ~outputs
                          in
                          time_run ~repeats None plan1 env images
                        in
                        checkpoint "sequential timing";
                        let time_par =
                          time_run ~repeats pool
                            { plan with opts = { plan.opts with workers } }
                            env images
                        in
                        Timed
                          {
                            time_seq;
                            time_par;
                            n_groups = C.Plan.n_tiled_groups plan;
                            compile_ms = 0.;
                          }
                      | (Exec_tier.C_subprocess | Exec_tier.C_dlopen) as
                        tier ->
                        (* The emitted C does not depend on the worker
                           count (it arrives at run time), so one
                           compiled artifact serves both timings; the
                           second run is a cache hit by construction.
                           The best-of-[repeats] steady-state timer
                           excludes compile, process start-up and blob
                           I/O. *)
                        let repeats = max 1 repeats in
                        let runner =
                          match tier with
                          | Exec_tier.C_dlopen -> Backend.run_dl
                          | _ -> Backend.run
                        in
                        let tms (st : Backend.stats) =
                          (match st.time_ms with
                          | Some t -> t
                          | None -> st.exec_ms)
                          /. 1000.
                        in
                        let _, st_seq =
                          runner ?cache_dir ~repeats
                            { plan with opts = { plan.opts with workers = 1 } }
                            env ~images
                        in
                        checkpoint "sequential timing";
                        let _, st_par =
                          runner ?cache_dir ~repeats
                            { plan with opts = { plan.opts with workers } }
                            env ~images
                        in
                        Timed
                          {
                            time_seq = tms st_seq;
                            time_par = tms st_par;
                            n_groups = C.Plan.n_tiled_groups plan;
                            compile_ms = st_seq.compile_ms +. st_par.compile_ms;
                          }
                    with e ->
                      Metrics.bumpn "tune/failed";
                      Failed (Err.of_exn e)
                  in
                  samples := { tile; threshold; status } :: !samples)
                thresholds)
            tiles)
        tiles);
  let samples = List.rev !samples in
  let best =
    match List.filter (fun s -> time_par s <> None) samples with
    | [] ->
      Err.fail Err.Exec "Tune.explore: every candidate configuration failed"
    | hd :: tl ->
      List.fold_left
        (fun acc s -> if time_par s < time_par acc then s else acc)
        hd tl
  in
  { samples; best }

let best_options r ~estimates ~workers =
  let o = C.Options.opt_vec ~workers ~estimates () in
  C.Options.with_threshold r.best.threshold
    (C.Options.with_tile r.best.tile o)
