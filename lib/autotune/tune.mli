(** Autotuner (paper §3.8): explore the small model-driven parameter
    space — tile sizes per tiled dimension and the overlap threshold —
    by compiling and actually running each configuration, and report
    every sample (paper Fig. 9) plus the best configuration.

    The paper's full space is tile sizes {8..512} per dimension and
    thresholds {0.2, 0.4, 0.5}; pass subsets to bound wall-clock time
    on slow machines.

    The sweep is resilient: each candidate runs isolated, so one
    configuration that crashes (e.g. under fault injection) or
    exceeds the optional per-candidate budget becomes a [Failed]
    sample instead of aborting the search. *)

open Polymage_ir
module C := Polymage_compiler
module Rt := Polymage_rt

val paper_tiles : int list
(** [8; 16; 32; 64; 128; 256; 512] *)

val paper_thresholds : float list
(** [0.2; 0.4; 0.5] *)

type status =
  | Timed of {
      time_seq : float;  (** seconds, 1 worker *)
      time_par : float;  (** seconds, [workers] workers *)
      n_groups : int;  (** tiled groups in the plan *)
      compile_ms : float;
          (** C-backend candidates: wall milliseconds spent compiling
              the artifact, reported separately from the run times
              (0 on a warm cache and for the native backend) *)
    }
  | Failed of Polymage_util.Err.t
      (** the candidate crashed or blew its budget; the sweep went on *)

type sample = { tile : int array; threshold : float; status : status }
type result = { samples : sample list; best : sample }

val time_par : sample -> float option
(** Parallel time of a [Timed] sample, [None] for a [Failed] one. *)

val pp_sample : Format.formatter -> sample -> unit
(** One-line rendering, including failures. *)

val explore :
  ?tiles:int list ->
  ?thresholds:float list ->
  ?workers:int ->
  ?repeats:int ->
  ?budget:float ->
  ?backend:Polymage_backend.Exec_tier.t ->
  ?simd:Polymage_compiler.Options.simd_mode ->
  ?cache_dir:string ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Rt.Buffer.t) list ->
  unit ->
  result
(** Run the search.  [tiles] are used for both tiled dimensions (the
    benchmarks tile 2, as in the paper); each configuration is timed
    [repeats] times (default 1) and the minimum is kept.  [budget]
    bounds one candidate's wall-clock seconds (soft: checked between
    phases, since running domains cannot be interrupted).  [best]
    minimizes the parallel time over the [Timed] samples.

    With [backend = C_subprocess] or [C_dlopen] (default [Native])
    every candidate is compiled through the artifact cache and timed
    with the best-of-[repeats] steady-state timer — the paper's §3.8
    methodology of sweeping real compiled configurations; compile time
    is recorded separately in the sample.  [Auto] tunes as [C_dlopen]
    (a sweep wants the in-process steady state, not the serving
    policy).  A candidate whose compile fails becomes a [Failed]
    sample like any other crash.  [simd] (default [Simd_auto]) is the
    explicit SIMD knob applied to every candidate's options; it only
    affects the compiled-C backends.
    @raise Polymage_util.Err.Polymage_error (phase [Exec]) when every
    candidate failed. *)

val best_options :
  result -> estimates:Types.bindings -> workers:int -> C.Options.t
(** Full optimization options with the winning tile/threshold. *)
