let sink_scale (t : Schedule.t) =
  let s = Array.make t.n_cdims 1 in
  let sink = t.members.(t.sink) in
  Array.iteri
    (fun j d -> if d >= 0 then s.(d) <- sink.scale.(j))
    sink.align;
  s

let overlap ?(naive = false) (t : Schedule.t) =
  let o = Array.make t.n_cdims 0 in
  Array.iter
    (fun (m : Schedule.stage_sched) ->
      for d = 0 to t.n_cdims - 1 do
        let l = if naive then m.widen_l_naive.(d) else m.widen_l.(d) in
        let r = if naive then m.widen_r_naive.(d) else m.widen_r.(d) in
        o.(d) <- max o.(d) (l + r)
      done)
    t.members;
  o

let scaled_tile (t : Schedule.t) ~tile =
  let s = sink_scale t in
  Array.init t.n_cdims (fun d ->
      let n = Array.length tile in
      let base = if n = 0 then 32 else if d < n then tile.(d) else tile.(n - 1) in
      max 1 (base * s.(d)))

let scratch_extents ~naive (t : Schedule.t) ~tile env
    (ms : Schedule.stage_sched) =
  let open Polymage_ir in
  let tau = scaled_tile t ~tile in
  let doms = Array.of_list ms.func.Ast.fdom in
  Array.of_list
    (List.mapi
       (fun j _ ->
         let d = ms.align.(j) in
         if d < 0 then Interval.size doms.(j) env
         else begin
           let wl = if naive then ms.widen_l_naive.(d) else ms.widen_l.(d) in
           let wr = if naive then ms.widen_r_naive.(d) else ms.widen_r.(d) in
           let span = tau.(d) + wl + wr in
           let s = ms.scale.(j) in
           (* a tile window never holds more points than the whole
              domain extent (tiles larger than the image) *)
           min (((span - 1) / s) + 2) (Interval.size doms.(j) env)
         end)
       ms.func.Ast.fdom)

let scratch_cells ~naive (t : Schedule.t) ~tile env ms =
  Array.fold_left ( * ) 1 (scratch_extents ~naive t ~tile env ms)

(* Points a member computes per interior tile: the widened tile window
   projected into the stage's own space, without the allocation slack
   of [scratch_extents].  Multiplied by the tile count this predicts
   the group's total computed points (edge tiles are clamped by the
   executor, so the prediction is an upper bound per tile). *)
let tile_points ~naive (t : Schedule.t) ~tile env
    (ms : Schedule.stage_sched) =
  let open Polymage_ir in
  let tau = scaled_tile t ~tile in
  let doms = Array.of_list ms.func.Ast.fdom in
  List.mapi
    (fun j _ ->
      let d = ms.align.(j) in
      if d < 0 then Interval.size doms.(j) env
      else begin
        let wl = if naive then ms.widen_l_naive.(d) else ms.widen_l.(d) in
        let wr = if naive then ms.widen_r_naive.(d) else ms.widen_r.(d) in
        let span = tau.(d) + wl + wr in
        let s = ms.scale.(j) in
        min (((span - 1) / s) + 1) (Interval.size doms.(j) env)
      end)
    ms.func.Ast.fdom
  |> List.fold_left ( * ) 1

(* Domain points of a member under [env] (the useful work). *)
let domain_points env (ms : Schedule.stage_sched) =
  let open Polymage_ir in
  List.fold_left
    (fun acc iv -> acc * Interval.size iv env)
    1 ms.func.Ast.fdom

let relative_overlap ?naive (t : Schedule.t) ~tile =
  if Array.length t.members <= 1 then 0.
  else begin
    let o = overlap ?naive t in
    let tau = scaled_tile t ~tile in
    let num = ref 1.0 and den = ref 1.0 in
    for d = 0 to t.n_cdims - 1 do
      num := !num *. float_of_int (tau.(d) + o.(d));
      den := !den *. float_of_int tau.(d)
    done;
    (!num /. !den) -. 1.0
  end
