(** Overlapped-tile arithmetic shared by the grouping heuristic, the
    plan builder and the executor (paper §3.4–3.5).

    Tile sizes are specified in sink pixels per canonical dimension;
    in the scaled canonical space a tile spans [tile_d * sink_scale_d]
    points, and stages widen it by their per-dimension overlap. *)

val sink_scale : Schedule.t -> int array
(** Scaling factor of the sink stage per canonical dimension (1 for
    canonical dimensions not covered by a sink dimension). *)

val overlap : ?naive:bool -> Schedule.t -> int array
(** Per canonical dimension, the widest widening over all member
    stages, [max_f (widen_l_f + widen_r_f)].  [naive] selects the
    over-approximated tile shape (Fig. 6 ablation). *)

val relative_overlap :
  ?naive:bool -> Schedule.t -> tile:int array -> float
(** Redundant-computation estimate used by Algorithm 1 line 11:
    [prod_d (tau_d + o_d) / prod_d tau_d - 1] where [tau_d] is the tile
    size in scaled space and [o_d] the group overlap.  0 when the group
    has a single stage. *)

val scaled_tile : Schedule.t -> tile:int array -> int array
(** Tile extents in scaled canonical space ([tile_d * sink_scale_d]). *)

val scratch_extents :
  naive:bool ->
  Schedule.t ->
  tile:int array ->
  Polymage_ir.Types.bindings ->
  Schedule.stage_sched ->
  int array
(** Allocation extent of a member's scratchpad, per stage dimension
    (paper §3.6): aligned dimensions cover one widened tile
    ([ceil((tile_scaled + widen_l + widen_r) / scale)] points, plus
    slack), residual dimensions cover the whole domain extent. *)

val scratch_cells :
  naive:bool ->
  Schedule.t ->
  tile:int array ->
  Polymage_ir.Types.bindings ->
  Schedule.stage_sched ->
  int
(** Product of {!scratch_extents}: cells in one member's scratchpad. *)

val tile_points :
  naive:bool ->
  Schedule.t ->
  tile:int array ->
  Polymage_ir.Types.bindings ->
  Schedule.stage_sched ->
  int
(** Predicted points a member computes per interior tile: the widened
    tile window projected into the stage's own index space
    ([ceil((tile_scaled + widen_l + widen_r) / scale)] per aligned
    dimension, the full extent per residual dimension), with no
    allocation slack.  [tile_points * n_tiles / domain_points - 1] is
    the model's redundant-compute ratio for a member; edge tiles are
    clamped to the domain at execution time, so per-tile it is an
    upper bound. *)

val domain_points :
  Polymage_ir.Types.bindings -> Schedule.stage_sched -> int
(** Points in a member's own domain under the bindings — the useful
    (non-redundant) work for that stage. *)
