open Polymage_ir
module C = Polymage_compiler
module Poly = Polymage_poly

let spf = Printf.sprintf

(* ---------- emission buffer with indentation ---------- *)

type ctx = { b : Buffer.t; mutable ind : int }

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.b (String.make (2 * ctx.ind) ' ');
      Buffer.add_string ctx.b s;
      Buffer.add_char ctx.b '\n')
    fmt

let blank ctx = Buffer.add_char ctx.b '\n'
let push ctx = ctx.ind <- ctx.ind + 1
let pop ctx = ctx.ind <- ctx.ind - 1

(* ---------- naming ---------- *)

let pname (p : Types.param) = "P_" ^ p.pname
let iname (im : Ast.image) = "img_" ^ im.iname
let bname (f : Ast.func) = "B_" ^ f.fname
let sname (f : Ast.func) = "S_" ^ f.fname
let vname (v : Types.var) = spf "v%d" v.vid

(* ---------- SIMD strip-mining spec ---------- *)

type simd_level = Sse2 | Avx2 | Avx512

type simd = { level : simd_level; lanes : int; width : int }

(* Strip width = 16 vector registers' worth of doubles: wide enough to
   amortize the indirect call into a batched fast-math kernel (measured
   on the remap workload, per-element cost keeps falling well past 4
   registers' worth), small enough that the per-strip argument/result
   arrays stay on the stack and in L1 (32..128 doubles, ≤1 KiB each). *)
let simd_of_level = function
  | Sse2 -> { level = Sse2; lanes = 2; width = 32 }
  | Avx2 -> { level = Avx2; lanes = 4; width = 64 }
  | Avx512 -> { level = Avx512; lanes = 8; width = 128 }

let simd_level_to_string = function
  | Sse2 -> "sse2"
  | Avx2 -> "avx2"
  | Avx512 -> "avx512"

let simd_width l = (simd_of_level l).width

(* ---------- parametric bounds ---------- *)

let cbound (a : Abound.t) =
  let cst, terms, den = Abound.to_linear a in
  let lin =
    List.fold_left
      (fun acc (p, k) ->
        if k = 1 then spf "%s + %s" acc (pname p)
        else spf "%s + %d*%s" acc k (pname p))
      (string_of_int cst) terms
  in
  if den = 1 then spf "(%s)" lin else spf "floord(%s, %d)" lin den

(* ---------- expressions ---------- *)

let cfloat x =
  if Float.is_integer x && Float.abs x < 1e9 then spf "%.1f" x
  else spf "%h" x

(* Renderers for stage/image reads, switched per emission context.
   [sub] short-circuits whole subexpressions — the strip-mined vector
   bodies use it to splice in references to batched fast-math results
   where the transcendental node sat in the tree. *)
type readers = {
  rf : Ast.func -> string list -> string;
  ri : Ast.image -> string list -> string;
  sub : Ast.expr -> string option;
}

let no_sub (_ : Ast.expr) = None

(* Integer-shaped index expressions; None falls back to
   (int)floor(double). *)
let rec iexp e =
  let open Ast in
  match e with
  | Var v -> Some (vname v)
  | Const x when Float.is_integer x -> Some (string_of_int (int_of_float x))
  | Param p -> Some (pname p)
  | Binop (Add, a, b) -> map2 "+" a b
  | Binop (Sub, a, b) -> map2 "-" a b
  | Binop (Mul, a, b) -> map2 "*" a b
  | IDiv (a, n) ->
    Option.map (fun s -> spf "floord(%s, %d)" s n) (iexp a)
  | IMod (a, n) -> Option.map (fun s -> spf "imod(%s, %d)" s n) (iexp a)
  | Unop (Neg, a) -> Option.map (fun s -> spf "(-%s)" s) (iexp a)
  | _ -> None

and map2 op a b =
  match (iexp a, iexp b) with
  | Some x, Some y -> Some (spf "(%s %s %s)" x op y)
  | _ -> None

let rec dexp rd e =
  match rd.sub e with Some s -> s | None -> dexp_raw rd e

and dexp_raw rd e =
  let open Ast in
  let index a =
    match iexp a with
    | Some s -> s
    | None -> spf "(int)floor(%s)" (dexp rd a)
  in
  match e with
  | Const x -> cfloat x
  | Var v -> spf "(double)%s" (vname v)
  | Param p -> spf "(double)%s" (pname p)
  | Call (f, args) -> rd.rf f (List.map index args)
  | Img (im, args) -> rd.ri im (List.map index args)
  | Binop (op, a, b) -> (
    let x = dexp rd a and y = dexp rd b in
    match op with
    | Add -> spf "(%s + %s)" x y
    | Sub -> spf "(%s - %s)" x y
    | Mul -> spf "(%s * %s)" x y
    | Div -> spf "(%s / %s)" x y
    | Min -> spf "fmin(%s, %s)" x y
    | Max -> spf "fmax(%s, %s)" x y
    | Pow -> spf "pow(%s, %s)" x y)
  | Unop (op, a) -> (
    let x = dexp rd a in
    match op with
    | Neg -> spf "(-%s)" x
    | Abs -> spf "fabs(%s)" x
    | Sqrt -> spf "sqrt(%s)" x
    | Exp -> spf "exp(%s)" x
    | Log -> spf "log(%s)" x
    | Floor -> spf "floor(%s)" x)
  | IDiv (a, n) -> spf "floor(%s / %d.0)" (dexp rd a) n
  | IMod (a, n) ->
    let x = dexp rd a in
    spf "(%s - %d.0*floor(%s / %d.0))" x n x n
  | Select (c, a, b) ->
    spf "(%s ? %s : %s)" (cexp rd c) (dexp rd a) (dexp rd b)
  | Cast (ty, a) -> store_of ty (dexp rd a)

and cexp rd c =
  let open Ast in
  match c with
  | Cmp (op, a, b) ->
    let s =
      match op with
      | Lt -> "<"
      | Le -> "<="
      | Gt -> ">"
      | Ge -> ">="
      | Eq -> "=="
      | Ne -> "!="
    in
    spf "(%s %s %s)" (dexp rd a) s (dexp rd b)
  | And (a, b) -> spf "(%s && %s)" (cexp rd a) (cexp rd b)
  | Or (a, b) -> spf "(%s || %s)" (cexp rd a) (cexp rd b)
  | Not a -> spf "(!%s)" (cexp rd a)

and store_of ty v =
  match (ty : Types.scalar) with
  | Double -> v
  | Float -> spf "cs_float(%s)" v
  | UChar -> spf "cs_uchar(%s)" v
  | Short -> spf "cs_short(%s)" v
  | Int -> spf "cs_int(%s)" v

(* ---------- buffer geometry ---------- *)

(* Every stage gets lo/ext/stride int variables; images get ext/stride. *)
let emit_geometry ctx (pipe : Pipeline.t) =
  List.iter
    (fun (im : Ast.image) ->
      List.iteri
        (fun d e -> line ctx "const int %s_ext%d = %s;" im.iname d (cbound e))
        im.iextents;
      let n = List.length im.iextents in
      line ctx "const int %s_str%d = 1;" im.iname (n - 1);
      for d = n - 2 downto 0 do
        line ctx "const int %s_str%d = %s_str%d * %s_ext%d;" im.iname d
          im.iname (d + 1) im.iname (d + 1)
      done)
    pipe.images;
  Array.iter
    (fun (f : Ast.func) ->
      List.iteri
        (fun d (iv : Interval.t) ->
          line ctx "const int %s_lo%d = %s;" f.fname d (cbound iv.lo);
          line ctx "const int %s_hi%d = %s;" f.fname d (cbound iv.hi);
          line ctx "const int %s_ext%d = imax(0, %s_hi%d - %s_lo%d + 1);"
            f.fname d f.fname d f.fname d)
        f.fdom;
      let n = Ast.func_arity f in
      line ctx "const int %s_str%d = 1;" f.fname (n - 1);
      for d = n - 2 downto 0 do
        line ctx "const int %s_str%d = %s_str%d * %s_ext%d;" f.fname d f.fname
          (d + 1) f.fname (d + 1)
      done;
      line ctx "const long %s_total = (long)%s_str0 * %s_ext0;" f.fname
        f.fname f.fname)
    pipe.stages

let buffer_read (f : Ast.func) args =
  let parts =
    List.mapi
      (fun d a ->
        let n = Ast.func_arity f in
        if d = n - 1 then spf "(%s - %s_lo%d)" a f.fname d
        else spf "(%s - %s_lo%d)*%s_str%d" a f.fname d f.fname d)
      args
  in
  spf "%s[%s]" (bname f) (String.concat " + " parts)

let image_read (im : Ast.image) args =
  let n = List.length im.iextents in
  let parts =
    List.mapi
      (fun d a ->
        if d = n - 1 then spf "(%s)" a
        else spf "(%s)*%s_str%d" a im.iname d)
      args
  in
  spf "%s[%s]" (iname im) (String.concat " + " parts)

let default_readers = { rf = buffer_read; ri = image_read; sub = no_sub }

(* ---------- vector fast-math header ----------

   Batched polynomial exp/log/pow over contiguous lanes, Cephes-style:
   a rational (exp, log) or composed (pow) approximation with
   branchless ternary specials, written so gcc's vectorizer can
   if-convert every select.  One complete clone per ISA level behind
   __attribute__((target("arch=..."))) — full bodies, never shared
   static-inline helpers, because gcc refuses to inline across target
   boundaries and a scalarized call inside the loop would silently
   defeat the whole exercise.  The "arch=" (replacing) target form
   matters too: a bare target("avx2") is additive over -march=native
   and would not actually lower the clone.

   Dispatch is by cpuid at load time (constructor), capped by the
   POLYMAGE_ISA environment variable — so one cached artifact carries
   all paths and keeps working when the cache or a serve daemon
   outlives the build host's microarchitecture.

   Numerical contract (documented bounds, enforced by the test suite
   against libm): exp <= 4 ulp over the normal range, flushing to zero
   below exp(-745.13) after producing denormals via two-step scaling;
   log <= 2 ulp including denormal inputs (prescaled by 2^54);
   pow = exp(y*log|x|) with relative error growing as |y*ln x| * 2^-51
   (hundreds of ulps at the extreme magnitude edge), exact special
   cases except pow(-0, negative odd integer) which returns +inf where
   libm returns -inf.  NaN/inf propagation matches libm throughout. *)

let str_replace sub by s =
  let bl = String.length sub in
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + bl <= n && String.sub s !i bl = sub then begin
      Buffer.add_string buf by;
      i := !i + bl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let fm_inst ?(y = "") ~x ~sfx tmpl =
  str_replace "$X" x (str_replace "$Y" y (str_replace "$S" sfx tmpl))

(* exp($X) -> v$S.  Round-to-nearest via the 1.5*2^52 magic constant,
   then a division-free degree-12 minimax polynomial (Horner, all
   fused-multiply-adds) on the reduced argument — a vector division
   costs ~2 cycles per element on every ISA level and the classic
   Cephes rational form needs one; the polynomial is both faster and
   tighter (≤1 ulp measured vs the rational's 2).  The result is then
   scaled by 2^k in two steps so the overflow (k up to 1024) and
   gradual-underflow (k down to -1075) edges stay inside exponent
   range.  The exponent integer is recovered from the magic sum's bit
   pattern with adds and logical shifts only: pre-AVX-512 targets have
   no vector double->int64 conversion or arithmetic 64-bit shift, and
   either would scalarize the loop. *)
let fm_exp_core =
  {|    double t$S = $X * 1.4426950408889634073599247;
    double fn$S = (t$S + 6755399441055744.0) - 6755399441055744.0;
    double r$S = $X - fn$S * 6.93147180559662956511601805687e-1;
    r$S -= fn$S * 2.82352905630315771225884481750e-13;
    double u$S = 2.08860621107283687536341e-09;
    u$S = u$S * r$S + 2.51112930892876518610661e-08;
    u$S = u$S * r$S + 2.75573911234900471893338e-07;
    u$S = u$S * r$S + 2.75572362911928827629423e-06;
    u$S = u$S * r$S + 2.48015871592354729987910e-05;
    u$S = u$S * r$S + 1.98412698960509205564975e-04;
    u$S = u$S * r$S + 1.38888888889774492207962e-03;
    u$S = u$S * r$S + 8.33333333331652721664984e-03;
    u$S = u$S * r$S + 4.16666666666665047591422e-02;
    u$S = u$S * r$S + 1.66666666666666851703837e-01;
    u$S = u$S * r$S + 5.0e-01;
    double e$S = r$S * r$S * u$S + r$S + 1.0;
    double fc$S = fn$S > 1025.0 ? 1025.0 : fn$S;
    fc$S = fc$S < -1075.0 ? -1075.0 : fc$S;
    double md$S = fc$S + 6755399441055744.0;
    int64_t mb$S; memcpy(&mb$S, &md$S, 8);
    int64_t k$S = mb$S - 0x4338000000000000LL;
    uint64_t j$S = (uint64_t)(k$S + 1076);
    int64_t k1$S = (int64_t)(j$S >> 1) - 538;
    int64_t k2$S = k$S - k1$S;
    uint64_t b1$S = (uint64_t)(k1$S + 1023) << 52;
    uint64_t b2$S = (uint64_t)(k2$S + 1023) << 52;
    double s1$S, s2$S; memcpy(&s1$S, &b1$S, 8); memcpy(&s2$S, &b2$S, 8);
    double v$S = (e$S * s1$S) * s2$S;
    v$S = $X > 709.782712893383996732 ? (1.0/0.0) : v$S;
    v$S = $X < -745.133219101941108420 ? 0.0 : v$S;
    v$S = $X != $X ? $X : v$S;
|}

(* log($X) -> v$S.  Exponent/mantissa split by bit extraction (logical
   shifts only, exponent rebuilt as a double through the 2^52 mantissa
   trick rather than an int64->double conversion, for the same
   pre-AVX-512 reason as above), denormals prescaled by 2^54, Cephes
   P/Q rational on the mantissa. *)
let fm_log_core =
  {|    int dn$S = $X > 0.0 && $X < 2.2250738585072014e-308;
    double xs$S = dn$S ? $X * 18014398509481984.0 : $X;
    int64_t lb$S; memcpy(&lb$S, &xs$S, 8);
    uint64_t ee$S = ((uint64_t)lb$S >> 52) & 0x7ff;
    uint64_t eb$S = 0x4330000000000000ULL | ee$S;
    double eu$S; memcpy(&eu$S, &eb$S, 8);
    double ed$S = (eu$S - 4503599627370496.0) - 1022.0 - (dn$S ? 54.0 : 0.0);
    uint64_t lm$S = ((uint64_t)lb$S & 0x000fffffffffffffULL) | 0x3fe0000000000000ULL;
    double m$S; memcpy(&m$S, &lm$S, 8);
    int sm$S = m$S < 0.70710678118654752440;
    m$S = sm$S ? 2.0 * m$S : m$S;
    ed$S = sm$S ? ed$S - 1.0 : ed$S;
    double f$S = m$S - 1.0;
    double z$S = f$S * f$S;
    double lp$S = f$S * z$S * (((((1.01875663804580931796e-4 * f$S
        + 4.97494994976747001425e-1) * f$S + 4.70579119878881725854e0) * f$S
        + 1.44989225341610930846e1) * f$S + 1.79368678507819816313e1) * f$S
        + 7.70838733755885391666e0);
    double lq$S = (((((f$S + 1.12873587189167450590e1) * f$S
        + 4.52279145837532221105e1) * f$S + 8.29875266912776603211e1) * f$S
        + 7.11544750618563894466e1) * f$S + 2.31251620126765340583e1);
    double lr$S = lp$S / lq$S;
    lr$S -= ed$S * 2.121944400546905827679e-4;
    lr$S -= 0.5 * z$S;
    double v$S = f$S + lr$S + ed$S * 0.693359375;
    v$S = $X == 0.0 ? -(1.0/0.0) : v$S;
    v$S = $X < 0.0 ? (0.0/0.0) : v$S;
    v$S = $X != $X ? $X : v$S;
    v$S = $X > 1.7976931348623157e308 ? $X : v$S;
|}

(* pow($X, $Y) -> r$S: exp($Y * log|$X|) with the log and exp cores
   instantiated inline (suffixes $Sl / $Se), then sign and special
   cases patched branchlessly.  Integer-ness of $Y uses the same
   magic-constant rounding; |y| >= 2^53 is always an even integer. *)
let fm_pow_core =
  let log_part = fm_inst ~x:"ax$S" ~sfx:"$Sl" fm_log_core in
  let exp_part = fm_inst ~x:"tt$S" ~sfx:"$Se" fm_exp_core in
  {|    double ax$S = $X < 0.0 ? -$X : $X;
|} ^ log_part
  ^ {|    double tt$S = $Y * v$Sl;
    tt$S = ($Y == 0.0 || ax$S == 1.0) ? 0.0 : tt$S;
|} ^ exp_part
  ^ {|    double r$S = v$Se;
    double ym$S = $Y < 0.0 ? -$Y : $Y;
    double yr$S = ($Y + 6755399441055744.0) - 6755399441055744.0;
    int bigy$S = ym$S >= 9007199254740992.0;
    int isint$S = bigy$S || yr$S == $Y;
    double yh$S = $Y * 0.5;
    double yhr$S = (yh$S + 6755399441055744.0) - 6755399441055744.0;
    int isodd$S = isint$S && !bigy$S && yhr$S != yh$S;
    r$S = ($X < 0.0 && isodd$S) ? -r$S : r$S;
    r$S = ($X < 0.0 && !isint$S && ax$S <= 1.7976931348623157e308) ? (0.0/0.0) : r$S;
    r$S = ($X != $X && $Y != 0.0) ? $X : r$S;
    r$S = ($Y != $Y && $X != 1.0) ? $Y : r$S;
    r$S = ($Y == 0.0) ? 1.0 : r$S;
|}

let fm_variants =
  (* (name suffix, target attribute) — "port" is the unattributed
     portable fallback compiled with the TU's own -march; the x86
     clones use replacing "arch=" targets and are guarded by
     PM_SIMD_X86 together with the cpuid dispatch. *)
  [
    ("sse2", Some "arch=x86-64");
    ("avx2", Some "arch=haswell");
    ("avx512", Some "arch=skylake-avx512");
  ]

let fm_function ~variant ~attr ~kind =
  let b = Buffer.create 2048 in
  (* The edge ternaries rely on if-conversion, which gcc only
     performs under -fno-trapping-math ({!Toolchain.simd_cflags},
     appended by the backend whenever the emitted source batches).
     The per-function optimize attribute is NOT an alternative: gcc
     re-derives the whole optimization state for attributed
     functions, which measurably deoptimizes them. *)
  let attr_s =
    match attr with
    | Some t -> spf "__attribute__((target(\"%s\"),unused)) " t
    | None -> "__attribute__((unused)) "
  in
  (match kind with
  | `Exp | `Log ->
    Buffer.add_string b
      (spf
         "%sstatic void pm_v%s_%s(const double* restrict x, double* \
          restrict y, int n) {\n"
         attr_s
         (if kind = `Exp then "exp" else "log")
         variant);
    Buffer.add_string b "#pragma GCC ivdep\n";
    Buffer.add_string b "  for (int i = 0; i < n; i++) {\n";
    Buffer.add_string b "    double xi = x[i];\n";
    Buffer.add_string b
      (fm_inst ~x:"xi" ~sfx:""
         (if kind = `Exp then fm_exp_core else fm_log_core));
    Buffer.add_string b "    y[i] = v;\n  }\n}\n"
  | `Pow ->
    Buffer.add_string b
      (spf
         "%sstatic void pm_vpow_%s(const double* restrict x, const double* \
          restrict yv, double* restrict r, int n) {\n"
         attr_s variant);
    Buffer.add_string b "#pragma GCC ivdep\n";
    Buffer.add_string b "  for (int i = 0; i < n; i++) {\n";
    Buffer.add_string b "    double xi = x[i], yi = yv[i];\n";
    (* suffix "0" keeps the core's result variable (r0) clear of the
       out-parameter r *)
    Buffer.add_string b (fm_inst ~x:"xi" ~y:"yi" ~sfx:"0" fm_pow_core);
    Buffer.add_string b "    r[i] = r0;\n  }\n}\n");
  Buffer.contents b

let fastmath_source =
  let b = Buffer.create 16384 in
     let add = Buffer.add_string b in
     add "/* ---- polymage vector fast-math: exp/log/pow ---- */\n";
     add "#include <stdint.h>\n";
     add
       "#if defined(__x86_64__) && defined(__GNUC__)\n\
        #define PM_SIMD_X86 1\n\
        #else\n\
        #define PM_SIMD_X86 0\n\
        #endif\n\n";
     List.iter
       (fun kind -> add (fm_function ~variant:"port" ~attr:None ~kind))
       [ `Exp; `Log; `Pow ];
     add "#if PM_SIMD_X86\n";
     List.iter
       (fun (variant, attr) ->
         List.iter
           (fun kind -> add (fm_function ~variant ~attr ~kind))
           [ `Exp; `Log; `Pow ])
       fm_variants;
     add "#endif /* PM_SIMD_X86 */\n\n";
     add
       "typedef void (*pm_v1fn)(const double* restrict, double* restrict, \
        int);\n\
        typedef void (*pm_v2fn)(const double* restrict, const double* \
        restrict, double* restrict, int);\n\
        static pm_v1fn pm_vexp = pm_vexp_port;\n\
        static pm_v1fn pm_vlog = pm_vlog_port;\n\
        static pm_v2fn pm_vpow = pm_vpow_port;\n\
        static int pm_simd_level __attribute__((unused)) = 0;\n\
        #if PM_SIMD_X86\n\
        __attribute__((constructor)) static void pm_simd_init(void) {\n\
       \  int level = 1;\n\
       \  __builtin_cpu_init();\n\
       \  if (__builtin_cpu_supports(\"avx512f\")) level = 3;\n\
       \  else if (__builtin_cpu_supports(\"avx2\")) level = 2;\n\
       \  const char* cap = getenv(\"POLYMAGE_ISA\");\n\
       \  if (cap) {\n\
       \    int c = level;\n\
       \    if (!strcmp(cap, \"off\") || !strcmp(cap, \"sse2\")) c = 1;\n\
       \    else if (!strcmp(cap, \"avx2\")) c = 2;\n\
       \    else if (!strcmp(cap, \"avx512\")) c = 3;\n\
       \    if (c < level) level = c;\n\
       \  }\n\
       \  pm_simd_level = level;\n\
       \  if (level >= 3) { pm_vexp = pm_vexp_avx512; pm_vlog = \
        pm_vlog_avx512; pm_vpow = pm_vpow_avx512; }\n\
       \  else if (level >= 2) { pm_vexp = pm_vexp_avx2; pm_vlog = \
        pm_vlog_avx2; pm_vpow = pm_vpow_avx2; }\n\
       \  else { pm_vexp = pm_vexp_sse2; pm_vlog = pm_vlog_sse2; pm_vpow = \
        pm_vpow_sse2; }\n\
        }\n\
        #endif /* PM_SIMD_X86 */\n\n";
     Buffer.contents b

(* ---------- symbolic case boxes ---------- *)

(* Per stage dim: lower/upper bound C expressions (domain intersected
   with the case condition box when analyzable). *)
let piece_bounds (f : Ast.func) (c : Ast.case) =
  let dom = Array.of_list f.fdom in
  match c.ccond with
  | None ->
    Some
      (Array.map
         (fun (iv : Interval.t) -> (cbound iv.lo, cbound iv.hi))
         dom)
  | Some cond -> (
    match Expr.box_of_cond f.fvars cond with
    | None -> None
    | Some box ->
      Some
        (Array.mapi
           (fun d (blo, bhi) ->
             let dlo = cbound dom.(d).lo and dhi = cbound dom.(d).hi in
             ( (match blo with
               | Some a -> spf "imax(%s, %s)" dlo (cbound a)
               | None -> dlo),
               match bhi with
               | Some a -> spf "imin(%s, %s)" dhi (cbound a)
               | None -> dhi ))
           box))

(* Emit a loop nest over symbolic bounds; [body] emits the innermost
   statement(s) given the context.  Bounds are pre-bound to local
   variables to keep inner loops clean. *)
let emit_loops ctx ?(parallel = false) ?(ivdep = true) tag (f : Ast.func)
    (bounds : (string * string) array) body =
  let n = Array.length bounds in
  Array.iteri
    (fun d (lo, hi) ->
      line ctx "const int %s_l%d = %s, %s_u%d = %s;" tag d lo tag d hi)
    bounds;
  (* Exactly one annotation per loop: gcc rejects [#pragma GCC ivdep]
     stacked with any omp pragma on the same for statement, so a 1-D
     parallel loop takes the combined [omp parallel for simd] form.
     (The ivdep pragma used to be spelled [#pragma ivdep], which gcc
     silently ignores — it is icc spelling; the GCC form actually
     licenses vectorization.) *)
  List.iteri
    (fun d v ->
      if d = 0 && parallel then
        line ctx
          (if n = 1 && ivdep then "#pragma omp parallel for simd"
           else "#pragma omp parallel for")
      else if d = n - 1 && ivdep then line ctx "#pragma GCC ivdep";
      line ctx "for (int %s = %s_l%d; %s <= %s_u%d; %s++) {" (vname v) tag d
        (vname v) tag d (vname v);
      push ctx)
    f.fvars;
  body ();
  for _ = 1 to n do
    pop ctx;
    line ctx "}"
  done

(* ---------- straight stages ---------- *)

let emit_store ctx rd (f : Ast.func) target_index (case : Ast.case) =
  let rhs = store_of f.ftyp (dexp rd case.rhs) in
  line ctx "%s = %s;" target_index rhs

(* ---------- explicit SIMD strip-mining ---------- *)

(* The transcendental nodes of an expression in post-order (inner
   before outer, structurally deduplicated): the batching schedule for
   a strip body.  Post-order guarantees that when node k's argument is
   rendered, every transcendental strictly inside it already has a
   result array to substitute. *)
let collect_trans (e : Ast.expr) =
  let open Ast in
  let acc = ref [] in
  let add n = if not (List.mem n !acc) then acc := n :: !acc in
  let rec go e =
    match e with
    | Const _ | Var _ | Param _ -> ()
    | Call (_, args) | Img (_, args) -> List.iter go args
    | Binop (Pow, a, b) ->
      go a;
      go b;
      add e
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop ((Exp | Log), a) ->
      go a;
      add e
    | Unop (_, a) -> go a
    | IDiv (a, _) | IMod (a, _) | Cast (_, a) -> go a
    | Select (c, a, b) ->
      go_cond c;
      go a;
      go b
  and go_cond c =
    match c with
    | Cmp (_, a, b) ->
      go a;
      go b
    | And (a, b) | Or (a, b) ->
      go_cond a;
      go_cond b
    | Not a -> go_cond a
  in
  go e;
  List.rev !acc

(* Strip-mining only pays where there is transcendental work to batch:
   a plain arithmetic loop already vectorizes under its ivdep / omp
   simd annotation, and the strip's gather arrays and two-level
   structure are pure overhead there (measurably so on
   bilateral_grid).  Emission and [plan_widths] both gate on this. *)
let case_batches (case : Ast.case) = collect_trans case.Ast.rhs <> []

(* One boxed case as a vector-width-blocked nest: the innermost loop is
   strip-mined into whole strips of [simd.width] iterations plus a
   scalar epilogue; inside a strip, every transcendental is evaluated
   as a batched call into the fast-math kernels (argument gather loop,
   one indirect call, results substituted into the readers), and the
   remaining arithmetic runs under [#pragma GCC ivdep] so gcc
   vectorizes it.  Only sound for cases with no loop-carried
   dependence — callers gate on non-self-recursive stages.

   Batching evaluates a transcendental for every lane even when it
   sits under a [Select] arm; that is exactly the speculation
   if-conversion performs, and it is safe because the kernels are
   total over all doubles and the strip never reads outside the loop
   bounds the scalar nest would have read. *)
let emit_strip_case ctx ?(parallel = false) ~(simd : simd) tag (f : Ast.func)
    (bounds : (string * string) array) rd (case : Ast.case) ~target =
  let open Ast in
  let n = Array.length bounds in
  let w = simd.width in
  Array.iteri
    (fun d (lo, hi) ->
      line ctx "const int %s_l%d = %s, %s_u%d = %s;" tag d lo tag d hi)
    bounds;
  let vars = Array.of_list f.fvars in
  for d = 0 to n - 2 do
    if d = 0 && parallel then line ctx "#pragma omp parallel for";
    line ctx "for (int %s = %s_l%d; %s <= %s_u%d; %s++) {" (vname vars.(d))
      tag d
      (vname vars.(d))
      tag d
      (vname vars.(d));
    push ctx
  done;
  let li = n - 1 in
  let lv = vname vars.(li) in
  let trans = collect_trans case.rhs in
  (* First iteration past the last whole strip; empty and negative
     ranges make it land at or below the lower bound, so both the
     blocked loop and the epilogue guard degenerate correctly. *)
  line ctx "const int %s_vs = %s_l%d + ((%s_u%d - %s_l%d + 1) / %d) * %d;" tag
    tag li tag li tag li w w;
  let strip_body ~start ~cnt =
    let subs = ref [] in
    let rd_with subs_now = { rd with sub = (fun e -> List.assoc_opt e subs_now) } in
    List.iteri
      (fun k node ->
        let rdk = rd_with !subs in
        let a = spf "%s_a%d" tag k and t = spf "%s_t%d" tag k in
        (match node with
        | Unop ((Exp | Log) as op, arg) ->
          line ctx "double %s[%d]; double %s[%d];" a w t w;
          line ctx "#pragma GCC ivdep";
          line ctx "for (int %s = %s; %s < %s + %s; %s++) %s[%s - %s] = %s;"
            lv start lv start cnt lv a lv start (dexp rdk arg);
          line ctx "%s(%s, %s, %s);"
            (if op = Exp then "pm_vexp" else "pm_vlog")
            a t cnt
        | Binop (Pow, x, y) ->
          let bx = spf "%s_b%d" tag k in
          line ctx "double %s[%d]; double %s[%d]; double %s[%d];" a w bx w t w;
          line ctx "#pragma GCC ivdep";
          line ctx "for (int %s = %s; %s < %s + %s; %s++) {" lv start lv start
            cnt lv;
          push ctx;
          line ctx "%s[%s - %s] = %s;" a lv start (dexp rdk x);
          line ctx "%s[%s - %s] = %s;" bx lv start (dexp rdk y);
          pop ctx;
          line ctx "}";
          line ctx "pm_vpow(%s, %s, %s, %s);" a bx t cnt
        | _ -> assert false);
        subs := (node, spf "%s[%s - %s]" t lv start) :: !subs)
      trans;
    let rdf = rd_with !subs in
    line ctx "#pragma GCC ivdep";
    line ctx "for (int %s = %s; %s < %s + %s; %s++) {" lv start lv start cnt
      lv;
    push ctx;
    line ctx "%s = %s;" target (store_of f.ftyp (dexp rdf case.rhs));
    pop ctx;
    line ctx "}"
  in
  if n = 1 && parallel then line ctx "#pragma omp parallel for";
  line ctx "for (int %sB = %s_l%d; %sB < %s_vs; %sB += %d) {" tag tag li tag
    tag tag w;
  push ctx;
  strip_body ~start:(spf "%sB" tag) ~cnt:(string_of_int w);
  pop ctx;
  line ctx "}";
  line ctx "if (%s_vs <= %s_u%d) {" tag tag li;
  push ctx;
  line ctx "const int %s_r = %s_u%d - %s_vs + 1;" tag tag li tag;
  strip_body ~start:(spf "%s_vs" tag) ~cnt:(spf "%s_r" tag);
  pop ctx;
  line ctx "}";
  Polymage_util.Metrics.bumpn "cgen/vector_loops";
  Polymage_util.Metrics.bumpn "cgen/scalar_epilogues";
  for _ = 1 to n - 1 do
    pop ctx;
    line ctx "}"
  done

let emit_straight ctx ?simd (plan : C.Plan.t) i =
  let pipe = plan.pipe in
  let f = pipe.stages.(i) in
  line ctx "/* ---- stage %s ---- */" f.fname;
  match f.fbody with
  | Ast.Undefined -> assert false
  | Ast.Cases cases ->
    line ctx "%s = (double*)calloc(%s_total, sizeof(double));" (bname f)
      f.fname;
    let parallel = not pipe.self_recursive.(i) in
    List.iteri
      (fun k (case : Ast.case) ->
        let target () =
          buffer_read f (List.map (fun v -> vname v) f.fvars)
        in
        match
          if plan.opts.split_cases then piece_bounds f case else None
        with
        | Some bounds -> (
          line ctx "{ /* case %d (split) */" k;
          push ctx;
          (match simd with
          | Some s when parallel && case_batches case ->
            emit_strip_case ctx ~parallel ~simd:s (spf "c%d_%d" i k) f bounds
              default_readers case ~target:(target ())
          | _ ->
            (* ivdep is gated on [parallel]: a self-recursive stage has
               real loop-carried dependences, and the GCC form of the
               pragma is a promise the compiler believes. *)
            emit_loops ctx ~parallel ~ivdep:parallel (spf "c%d_%d" i k) f
              bounds (fun () ->
                emit_store ctx default_readers f (target ()) case));
          pop ctx;
          line ctx "}")
        | None ->
          line ctx "{ /* case %d (guarded) */" k;
          push ctx;
          let dom =
            Array.of_list
              (List.map
                 (fun (iv : Interval.t) -> (cbound iv.lo, cbound iv.hi))
                 f.fdom)
          in
          emit_loops ctx ~parallel ~ivdep:false (spf "c%d_%d" i k) f dom
            (fun () ->
              match case.ccond with
              | Some cond ->
                line ctx "if (%s) {" (cexp default_readers cond);
                push ctx;
                emit_store ctx default_readers f (target ()) case;
                pop ctx;
                line ctx "}"
              | None -> emit_store ctx default_readers f (target ()) case);
          pop ctx;
          line ctx "}")
      cases
  | Ast.Reduce r ->
    line ctx "%s = (double*)malloc(%s_total * sizeof(double));" (bname f)
      f.fname;
    line ctx "for (long z = 0; z < %s_total; z++) %s[z] = %s;" f.fname
      (bname f) (cfloat r.rinit);
    (* reduction loops (sequential) *)
    List.iteri
      (fun d (iv : Interval.t) ->
        line ctx "for (int %s = %s; %s <= %s; %s++) {"
          (vname (List.nth r.rvars d))
          (cbound iv.lo)
          (vname (List.nth r.rvars d))
          (cbound iv.hi)
          (vname (List.nth r.rvars d));
        push ctx)
      r.rdom;
    let idxs =
      List.map
        (fun e ->
          match iexp e with
          | Some s -> s
          | None -> spf "(int)floor(%s)" (dexp default_readers e))
        r.rindex
    in
    let cell = buffer_read f idxs in
    let v = dexp default_readers r.rvalue in
    (match r.rop with
    | Rsum -> line ctx "%s += %s;" cell v
    | Rmul -> line ctx "%s *= %s;" cell v
    | Rmin -> line ctx "%s = fmin(%s, %s);" cell cell v
    | Rmax -> line ctx "%s = fmax(%s, %s);" cell cell v);
    for _ = 1 to List.length r.rdom do
      pop ctx;
      line ctx "}"
    done

(* ---------- tiled groups ---------- *)

let emit_tiled ctx ?simd (plan : C.Plan.t) gi (g : C.Plan.tiled) =
  let self_rec (f : Ast.func) =
    let pipe = plan.pipe in
    let r = ref false in
    Array.iteri
      (fun i (st : Ast.func) ->
        if st.fid = f.Ast.fid && pipe.self_recursive.(i) then r := true)
      pipe.stages;
    !r
  in
  let sched = g.sched in
  let ncd = sched.n_cdims in
  let naive = plan.opts.naive_overlap in
  let tau = Poly.Tiling.scaled_tile sched ~tile:g.tile in
  let gtag = spf "g%d" gi in
  line ctx "/* ---- overlapped-tile group %d: %s ---- */" gi
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (m : C.Plan.member) -> m.ms.func.Ast.fname)
             g.members)));
  (* Full buffers. *)
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.live_out || not plan.opts.scratchpads then
        line ctx "%s = (double*)calloc(%s_total, sizeof(double));"
          (bname m.ms.func) m.ms.func.Ast.fname)
    g.members;
  (* Tile space bounds (scaled). *)
  for d = 0 to ncd - 1 do
    line ctx "int %s_splo%d = INT_MAX, %s_sphi%d = INT_MIN;" gtag d gtag d
  done;
  Array.iter
    (fun (m : C.Plan.member) ->
      let f = m.ms.func in
      List.iteri
        (fun j _ ->
          let d = m.ms.align.(j) in
          if d >= 0 then begin
            let s = m.ms.scale.(j) in
            line ctx "%s_splo%d = imin(%s_splo%d, %d * %s_lo%d);" gtag d gtag
              d s f.Ast.fname j;
            line ctx "%s_sphi%d = imax(%s_sphi%d, %d * %s_hi%d);" gtag d gtag
              d s f.Ast.fname j
          end)
        f.Ast.fdom)
    g.members;
  for d = 0 to ncd - 1 do
    line ctx "const int %s_nt%d = imax(1, ceild(%s_sphi%d - %s_splo%d + 1, %d));"
      gtag d gtag d gtag d tau.(d)
  done;
  let widen (ms : Poly.Schedule.stage_sched) d =
    if naive then (ms.widen_l_naive.(d), ms.widen_r_naive.(d))
    else (ms.widen_l.(d), ms.widen_r.(d))
  in
  (* Scratch extents as C expressions (constant for aligned dims). *)
  let scratch_ext (ms : Poly.Schedule.stage_sched) j =
    let d = ms.align.(j) in
    if d < 0 then spf "%s_ext%d" ms.func.Ast.fname j
    else begin
      let wl, wr = widen ms d in
      let span = tau.(d) + wl + wr in
      (* clamped to the domain extent, as in Storage.scratch_extents *)
      spf "imin(%d, %s_ext%d)"
        (((span - 1) / ms.scale.(j)) + 2)
        ms.func.Ast.fname j
    end
  in
  (* Per-thread scratchpads (paper §3.6): geometry is loop-invariant,
     storage is allocated once per thread inside the parallel region
     (stack arrays as in Fig. 7 would overflow for large tiles). *)
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.used_in_group && plan.opts.scratchpads then begin
        let ms = m.ms in
        let f = ms.func in
        let exts = List.mapi (fun j _ -> scratch_ext ms j) f.Ast.fdom in
        line ctx "const long %s_sc_total = (long)%s;" f.Ast.fname
          (String.concat " * " exts);
        List.iteri
          (fun j e -> line ctx "const int %s_sext%d = %s;" f.Ast.fname j e)
          exts;
        let n = Ast.func_arity f in
        line ctx "const int %s_sstr%d = 1;" f.Ast.fname (n - 1);
        for d = n - 2 downto 0 do
          line ctx "const int %s_sstr%d = %s_sstr%d * %s_sext%d;" f.Ast.fname
            d f.Ast.fname (d + 1) f.Ast.fname (d + 1)
        done
      end)
    g.members;
  line ctx "#pragma omp parallel";
  line ctx "{";
  push ctx;
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.used_in_group && plan.opts.scratchpads then
        line ctx
          "double* restrict %s = (double*)malloc(sizeof(double) * \
           %s_sc_total);"
          (sname m.ms.func) m.ms.func.Ast.fname)
    g.members;
  line ctx "#pragma omp for";
  line ctx "for (int T0 = 0; T0 < %s_nt0; T0++) {" gtag;
  push ctx;
  for d = 1 to ncd - 1 do
    line ctx "for (int T%d = 0; T%d < %s_nt%d; T%d++) {" d d gtag d d;
    push ctx
  done;
  for d = 0 to ncd - 1 do
    line ctx "const int base%d = %s_splo%d + T%d * %d;" d gtag d d tau.(d)
  done;
  (* Member evaluation, in group topological order. *)
  let in_scratch = Hashtbl.create 8 in
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.used_in_group && plan.opts.scratchpads then
        Hashtbl.replace in_scratch m.ms.func.Ast.fid m.ms)
    g.members;
  let scratch_read (f : Ast.func) args =
    let n = Ast.func_arity f in
    let parts =
      List.mapi
        (fun j a ->
          if j = n - 1 then spf "(%s - st_%s_%d)" a f.fname j
          else spf "(%s - st_%s_%d)*%s_sstr%d" a f.fname j f.fname j)
        args
    in
    spf "%s[%s]" (sname f) (String.concat " + " parts)
  in
  let rd =
    {
      rf =
        (fun f args ->
          if Hashtbl.mem in_scratch f.Ast.fid then scratch_read f args
          else buffer_read f args);
      ri = image_read;
      sub = no_sub;
    }
  in
  (* Widened ([st, en]) and owned ([ost, oen]) ranges per member and
     dim, declared up front: consumers index producers' scratchpads
     relative to the producers' [st_] origins. *)
  Array.iter
    (fun (m : C.Plan.member) ->
      let ms = m.ms in
      let f = ms.func in
      List.iteri
        (fun j _ ->
          let d = ms.align.(j) in
          if d < 0 then begin
            line ctx "const int st_%s_%d = %s_lo%d, en_%s_%d = %s_hi%d;"
              f.Ast.fname j f.Ast.fname j f.Ast.fname j f.Ast.fname j;
            line ctx
              "const int ost_%s_%d = st_%s_%d, oen_%s_%d = en_%s_%d;"
              f.Ast.fname j f.Ast.fname j f.Ast.fname j f.Ast.fname j
          end
          else begin
            let s = ms.scale.(j) in
            let wl, wr = widen ms d in
            line ctx
              "const int st_%s_%d = imax(%s_lo%d, ceild(base%d - %d, %d));"
              f.Ast.fname j f.Ast.fname j d wl s;
            line ctx
              "const int en_%s_%d = imin(%s_hi%d, floord(base%d + %d, %d));"
              f.Ast.fname j f.Ast.fname j d
              (tau.(d) - 1 + wr)
              s;
            line ctx
              "const int ost_%s_%d = imax(%s_lo%d, ceild(base%d, %d));"
              f.Ast.fname j f.Ast.fname j d s;
            line ctx
              "const int oen_%s_%d = imin(%s_hi%d, floord(base%d + %d, %d));"
              f.Ast.fname j f.Ast.fname j d
              (tau.(d) - 1)
              s
          end)
        f.Ast.fdom)
    g.members;
  Array.iteri
    (fun k (m : C.Plan.member) ->
      let ms = m.ms in
      let f = ms.func in
      let use_scratch = m.used_in_group && plan.opts.scratchpads in
      line ctx "{ /* member %s */" f.Ast.fname;
      push ctx;
      let cases =
        match f.Ast.fbody with Ast.Cases cs -> cs | _ -> assert false
      in
      let needs_zero =
        not (List.exists (fun (c : Ast.case) -> c.ccond = None) cases)
      in
      if use_scratch && needs_zero then begin
        (* Zero the tile window, but skip it when a single boxed piece
           provably covers the whole window (the interior-tile common
           case) — zeroing whole scratchpads per tile would dominate
           on deeply fused groups. *)
        let cover =
          match cases with
          | [ c ] -> (
            match piece_bounds f c with
            | Some bs ->
              Some
                (String.concat " && "
                   (List.mapi
                      (fun j (lo, hi) ->
                        spf "(%s) <= st_%s_%d && (%s) >= en_%s_%d" lo
                          f.Ast.fname j hi f.Ast.fname j)
                      (Array.to_list bs)))
            | None -> None)
          | _ -> None
        in
        let emit_zero () =
          let bs =
            Array.of_list
              (List.mapi
                 (fun j _ ->
                   (spf "st_%s_%d" f.Ast.fname j, spf "en_%s_%d" f.Ast.fname j))
                 f.Ast.fdom)
          in
          emit_loops ctx (spf "z%d_%d" gi k) f bs (fun () ->
              line ctx "%s = 0.0;"
                (scratch_read f (List.map vname f.Ast.fvars)))
        in
        match cover with
        | Some cexpr ->
          line ctx "if (!(%s)) {" cexpr;
          push ctx;
          emit_zero ();
          pop ctx;
          line ctx "}"
        | None -> emit_zero ()
      end;
      (* Which range this member computes: widened when it feeds the
         group, owned otherwise. *)
      let lo_var j =
        if m.used_in_group then spf "st_%s_%d" f.Ast.fname j
        else spf "ost_%s_%d" f.Ast.fname j
      in
      let hi_var j =
        if m.used_in_group then spf "en_%s_%d" f.Ast.fname j
        else spf "oen_%s_%d" f.Ast.fname j
      in
      let target args =
        if use_scratch then scratch_read f args else buffer_read f args
      in
      List.iteri
        (fun kc (case : Ast.case) ->
          let bounds =
            match
              if plan.opts.split_cases then piece_bounds f case else None
            with
            | Some bs ->
              Some
                (Array.mapi
                   (fun j (lo, hi) ->
                     ( spf "imax(%s, %s)" (lo_var j) lo,
                       spf "imin(%s, %s)" (hi_var j) hi ))
                   bs)
            | None -> None
          in
          match bounds with
          | Some bs -> (
            match simd with
            | Some s when (not (self_rec f)) && case_batches case ->
              emit_strip_case ctx ~simd:s
                (spf "m%d_%d_%d" gi k kc)
                f bs rd case
                ~target:(target (List.map vname f.Ast.fvars))
            | _ ->
              emit_loops ctx
                ~ivdep:(not (self_rec f))
                (spf "m%d_%d_%d" gi k kc)
                f bs
                (fun () ->
                  emit_store ctx rd f
                    (target (List.map vname f.Ast.fvars))
                    case))
          | None ->
            let bs =
              Array.of_list
                (List.mapi (fun j _ -> (lo_var j, hi_var j)) f.Ast.fdom)
            in
            emit_loops ctx ~ivdep:false (spf "m%d_%d_%d" gi k kc) f bs
              (fun () ->
                match case.ccond with
                | Some cond ->
                  line ctx "if (%s) {" (cexp rd cond);
                  push ctx;
                  emit_store ctx rd f
                    (target (List.map vname f.Ast.fvars))
                    case;
                  pop ctx;
                  line ctx "}"
                | None ->
                  emit_store ctx rd f
                    (target (List.map vname f.Ast.fvars))
                    case))
        cases;
      (* Copy the owned region of live-outs out of the scratchpad. *)
      if m.live_out && use_scratch then begin
        let bs =
          Array.of_list
            (List.mapi
               (fun j _ ->
                 (spf "ost_%s_%d" f.Ast.fname j, spf "oen_%s_%d" f.Ast.fname j))
               f.Ast.fdom)
        in
        emit_loops ctx (spf "cp%d_%d" gi k) f bs (fun () ->
            let args = List.map vname f.Ast.fvars in
            line ctx "%s = %s;" (buffer_read f args) (scratch_read f args))
      end;
      pop ctx;
      line ctx "}")
    g.members;
  for _ = 1 to ncd - 1 do
    pop ctx;
    line ctx "}"
  done;
  pop ctx;
  line ctx "}";
  (* end of the omp-for tile loop; free the per-thread scratchpads *)
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.used_in_group && plan.opts.scratchpads then
        line ctx "free(%s);" (sname m.ms.func))
    g.members;
  pop ctx;
  line ctx "}"

(* ---------- whole translation unit ---------- *)

let preamble =
  {|#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <limits.h>
#include <stdio.h>

static inline int floord(int a, int b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }
static inline int ceild(int a, int b) { return -floord(-a, b); }
static inline int imod(int a, int b) { int r = a % b; return r < 0 ? r + b : r; }
static inline int imax(int a, int b) { return a > b ? a : b; }
static inline int imin(int a, int b) { return a < b ? a : b; }
static inline double cs_uchar(double v) { double r = round(v); return r < 0 ? 0 : (r > 255 ? 255 : r); }
static inline double cs_short(double v) { double r = round(v); return r < -32768 ? -32768 : (r > 32767 ? 32767 : r); }
static inline double cs_int(double v) { return round(v); }
static inline double cs_float(double v) { return (double)(float)v; }
|}

let func_name ?name (plan : C.Plan.t) =
  match name with
  | Some n -> n
  | None -> (
    match plan.pipe.outputs with
    | f :: _ -> "pipeline_" ^ f.Ast.fname
    | [] -> "pipeline")

let signature ?name (plan : C.Plan.t) =
  let pipe = plan.pipe in
  let params =
    List.map (fun p -> spf "int %s" (pname p)) pipe.params
  in
  (* Every buffer the pipeline touches is reached through exactly one
     pointer (inputs are caller-owned and distinct from the
     internally-allocated stage buffers), so [restrict] is sound and
     tells the vectorizer the gather/store loops cannot alias. *)
  let imgs =
    List.map
      (fun im -> spf "const double* restrict %s" (iname im))
      pipe.images
  in
  let outs =
    List.map
      (fun (f : Ast.func) -> spf "double** restrict out_%s" f.fname)
      pipe.outputs
  in
  spf "void %s(%s)" (func_name ?name plan)
    (String.concat ", " (params @ imgs @ outs))

(* True when SIMD emission would strip-mine at least one loop nest of
   the plan: a non-self-recursive Cases stage with a boxed case whose
   rhs batches transcendentals.  Gates the fast-math header and the
   backend's -fno-trapping-math flag — a plan with no batched loops
   compiles byte-identically to the SIMD-off emission, which keeps
   the off/auto A/B comparison honest. *)
let plan_batches (plan : C.Plan.t) =
  let pipe = plan.pipe in
  let self_rec (f : Ast.func) =
    let r = ref false in
    Array.iteri
      (fun i (st : Ast.func) ->
        if st.fid = f.Ast.fid && pipe.self_recursive.(i) then r := true)
      pipe.stages;
    !r
  in
  plan.opts.split_cases
  && Array.exists
       (fun (f : Ast.func) ->
         (not (self_rec f))
         &&
         match f.Ast.fbody with
         | Ast.Cases cases ->
           List.exists
             (fun c -> piece_bounds f c <> None && case_batches c)
             cases
         | _ -> false)
       pipe.stages

let emit ?name ?simd (plan : C.Plan.t) =
  (match plan.opts.tiling with
  | C.Options.Overlap -> ()
  | C.Options.Parallelogram | C.Options.Split ->
    Polymage_util.Err.fail Polymage_util.Err.Codegen ~stage:"Cgen.emit"
      "the C back end implements overlapped tiling only (the other \
       strategies are native-executor comparison modes)");
  Polymage_util.Trace.with_span ~cat:"codegen" "codegen.emit"
    ~args:
      [
        ("items", string_of_int (Array.length plan.items));
        ("tiled", string_of_int (C.Plan.n_tiled_groups plan));
      ]
  @@ fun () ->
  let simd = Option.map simd_of_level simd in
  let ctx = { b = Buffer.create 4096; ind = 0 } in
  Buffer.add_string ctx.b preamble;
  (* The fast-math helpers ride along only when some loop actually
     calls them: a plan with nothing to batch emits byte-identically
     to the SIMD-off emission, so the off/auto A/B compares the
     batched code and nothing else. *)
  if simd <> None && plan_batches plan then begin
    blank ctx;
    Buffer.add_string ctx.b fastmath_source
  end;
  blank ctx;
  line ctx "%s" (signature ?name plan);
  line ctx "{";
  push ctx;
  let pipe = plan.pipe in
  emit_geometry ctx pipe;
  Array.iter
    (fun (f : Ast.func) -> line ctx "double* restrict %s = NULL;" (bname f))
    pipe.stages;
  blank ctx;
  Array.iteri
    (fun k item ->
      (match (item : C.Plan.item) with
      | Straight i -> emit_straight ctx ?simd plan i
      | Tiled g -> emit_tiled ctx ?simd plan k g);
      blank ctx)
    plan.items;
  (* Hand outputs to the caller, free the rest. *)
  List.iter
    (fun (f : Ast.func) -> line ctx "*out_%s = %s;" f.fname (bname f))
    pipe.outputs;
  Array.iteri
    (fun i (f : Ast.func) ->
      if not (Pipeline.is_output pipe i) then
        line ctx "if (%s) free(%s);" (bname f) (bname f))
    pipe.stages;
  pop ctx;
  line ctx "}";
  let src = Buffer.contents ctx.b in
  Polymage_util.Metrics.bumpn "codegen/emits";
  Polymage_util.Metrics.addn "codegen/bytes" (String.length src);
  src

let emit_with_main ?name ?simd ?(time_runs = 0) (plan : C.Plan.t) ~fill ~env =
  let pipe = plan.pipe in
  let base = emit ?name ?simd plan in
  Polymage_util.Trace.with_span ~cat:"codegen" "codegen.emit_main"
  @@ fun () ->
  let ctx = { b = Buffer.create 1024; ind = 0 } in
  if time_runs > 0 then begin
    line ctx "#include <time.h>";
    line ctx "static double now_ms(void) {";
    line ctx "  struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);";
    line ctx "  return ts.tv_sec * 1e3 + ts.tv_nsec * 1e-6;";
    line ctx "}";
    blank ctx
  end;
  line ctx "int main(void)";
  line ctx "{";
  push ctx;
  List.iter
    (fun (p : Types.param) ->
      line ctx "const int %s = %d;" (pname p) (Types.bind_exn env p))
    pipe.params;
  (* Fill input images. *)
  List.iter
    (fun (im : Ast.image) ->
      let n = List.length im.iextents in
      List.iteri
        (fun d e -> line ctx "const int %s_ext%d = %s;" im.iname d (cbound e))
        im.iextents;
      let total =
        String.concat " * "
          (List.mapi (fun d _ -> spf "%s_ext%d" im.iname d) im.iextents)
      in
      line ctx "double* %s = (double*)malloc(sizeof(double) * %s);" (iname im)
        total;
      let rec loops d =
        if d = n then begin
          (* row-major flattened index: ((c0*e1 + c1)*e2 + c2)... *)
          let pos =
            let rec go d acc =
              if d = n then acc
              else go (d + 1) (spf "(%s * %s_ext%d + c%d)" acc im.iname d d)
            in
            go 1 "c0"
          in
          line ctx "%s[%s] = %s;" (iname im) pos (fill im)
        end
        else begin
          line ctx "for (int c%d = 0; c%d < %s_ext%d; c%d++) {" d d im.iname d
            d;
          push ctx;
          loops (d + 1);
          pop ctx;
          line ctx "}"
        end
      in
      loops 0)
    pipe.images;
  (* Outputs, call, checksum. *)
  List.iter
    (fun (f : Ast.func) -> line ctx "double* res_%s = NULL;" f.fname)
    pipe.outputs;
  let args =
    List.map pname pipe.params
    @ List.map iname pipe.images
    @ List.map (fun (f : Ast.func) -> spf "&res_%s" f.fname) pipe.outputs
  in
  line ctx "%s(%s);" (func_name ?name plan) (String.concat ", " args);
  if time_runs > 0 then begin
    (* timed repetitions: free the outputs of the warm-up/previous run *)
    line ctx "double t_best = 1e30;";
    line ctx "for (int rep = 0; rep < %d; rep++) {" time_runs;
    push ctx;
    List.iter
      (fun (f : Ast.func) -> line ctx "free(res_%s);" f.fname)
      pipe.outputs;
    line ctx "double t0 = now_ms();";
    line ctx "%s(%s);" (func_name ?name plan) (String.concat ", " args);
    line ctx "double t1 = now_ms();";
    line ctx "if (t1 - t0 < t_best) t_best = t1 - t0;";
    pop ctx;
    line ctx "}";
    line ctx "printf(\"TIME_MS %%.3f\\n\", t_best);"
  end;
  List.iter
    (fun (f : Ast.func) ->
      let exts =
        List.map
          (fun (iv : Interval.t) ->
            spf "imax(0, (%s) - (%s) + 1)" (cbound iv.hi) (cbound iv.lo))
          f.fdom
      in
      let total = String.concat " * " (List.map (fun e -> spf "(long)%s" e) exts) in
      line ctx "{ double s = 0; long n = %s;" total;
      push ctx;
      line ctx "for (long z = 0; z < n; z++) s += res_%s[z];" f.fname;
      line ctx "printf(\"%s %%ld %%.17g\\n\", n, s);" f.fname;
      pop ctx;
      line ctx "}")
    pipe.outputs;
  line ctx "return 0;";
  pop ctx;
  line ctx "}";
  base ^ "\n" ^ Buffer.contents ctx.b

let raw_magic = "PMRAW01\n"

let raw_helpers =
  {|#include <stdint.h>
#include <time.h>

static double pm_now_ms(void) {
  struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec * 1e-6;
}

static const char pm_magic[8] = {'P','M','R','A','W','0','1','\n'};

static double* pm_read_raw(const char* path, uint32_t rank,
                           const int64_t* extents) {
  FILE* f = fopen(path, "rb");
  if (!f) { fprintf(stderr, "polymage-raw: cannot open %s\n", path); exit(3); }
  char magic[8];
  if (fread(magic, 1, 8, f) != 8 || memcmp(magic, pm_magic, 8) != 0) {
    fprintf(stderr, "polymage-raw: bad magic in %s\n", path); exit(3);
  }
  uint32_t r;
  if (fread(&r, 4, 1, f) != 1 || r != rank) {
    fprintf(stderr, "polymage-raw: rank mismatch in %s\n", path); exit(3);
  }
  int64_t total = 1;
  for (uint32_t d = 0; d < rank; d++) {
    int64_t e;
    if (fread(&e, 8, 1, f) != 1 || e != extents[d]) {
      fprintf(stderr, "polymage-raw: extent mismatch in %s (dim %u)\n",
              path, d);
      exit(3);
    }
    total *= e;
  }
  double* buf = (double*)malloc(sizeof(double)
                                * (size_t)(total > 0 ? total : 1));
  if (!buf) { fprintf(stderr, "polymage-raw: oom for %s\n", path); exit(3); }
  if ((int64_t)fread(buf, sizeof(double), (size_t)total, f) != total) {
    fprintf(stderr, "polymage-raw: truncated payload in %s\n", path);
    exit(3);
  }
  fclose(f);
  return buf;
}

static void pm_write_raw(const char* path, uint32_t rank,
                         const int64_t* extents, const double* data) {
  FILE* f = fopen(path, "wb");
  if (!f) {
    fprintf(stderr, "polymage-raw: cannot open %s for writing\n", path);
    exit(3);
  }
  int64_t total = 1;
  fwrite(pm_magic, 1, 8, f);
  fwrite(&rank, 4, 1, f);
  for (uint32_t d = 0; d < rank; d++) {
    fwrite(&extents[d], 8, 1, f);
    total *= extents[d];
  }
  if ((int64_t)fwrite(data, sizeof(double), (size_t)total, f) != total
      || fclose(f) != 0) {
    fprintf(stderr, "polymage-raw: short write to %s\n", path); exit(3);
  }
}
|}

let emit_raw_main ?name ?simd (plan : C.Plan.t) =
  let pipe = plan.pipe in
  let base = emit ?name ?simd plan in
  Polymage_util.Trace.with_span ~cat:"codegen" "codegen.emit_raw_main"
  @@ fun () ->
  let ctx = { b = Buffer.create 1024; ind = 0 } in
  Buffer.add_string ctx.b raw_helpers;
  blank ctx;
  let np = List.length pipe.params
  and ni = List.length pipe.images
  and no = List.length pipe.outputs in
  line ctx "int main(int argc, char** argv)";
  line ctx "{";
  push ctx;
  line ctx "{ uint32_t one = 1;";
  line ctx "  if (*(uint8_t*)&one != 1) {";
  line ctx
    "    fprintf(stderr, \"polymage-raw: big-endian host unsupported\\n\");";
  line ctx "    return 3; } }";
  line ctx "if (argc != %d) {" (2 + np + ni + no);
  push ctx;
  line ctx
    "fprintf(stderr, \"usage: %%s <repeats> <%d params> <%d in.raw> <%d \
     out.raw>\\n\", argv[0]);"
    np ni no;
  line ctx "return 2;";
  pop ctx;
  line ctx "}";
  line ctx "const int repeats = atoi(argv[1]);";
  List.iteri
    (fun k (p : Types.param) ->
      line ctx "const int %s = atoi(argv[%d]);" (pname p) (2 + k))
    pipe.params;
  (* Read input images, validating geometry against the parameters. *)
  List.iteri
    (fun k (im : Ast.image) ->
      let n = List.length im.iextents in
      line ctx "int64_t ext_%s[%d];" im.iname (max n 1);
      List.iteri
        (fun d e ->
          line ctx "ext_%s[%d] = (int64_t)%s;" im.iname d (cbound e))
        im.iextents;
      line ctx "double* %s = pm_read_raw(argv[%d], %d, ext_%s);" (iname im)
        (2 + np + k) n im.iname)
    pipe.images;
  List.iter
    (fun (f : Ast.func) -> line ctx "double* res_%s = NULL;" f.fname)
    pipe.outputs;
  let args =
    List.map pname pipe.params
    @ List.map iname pipe.images
    @ List.map (fun (f : Ast.func) -> spf "&res_%s" f.fname) pipe.outputs
  in
  let call () = line ctx "%s(%s);" (func_name ?name plan) (String.concat ", " args) in
  call ();
  (* Timed repetitions after the warm-up, best-of like the bench main. *)
  line ctx "if (repeats > 0) {";
  push ctx;
  line ctx "double t_best = 1e30;";
  line ctx "for (int rep = 0; rep < repeats; rep++) {";
  push ctx;
  List.iter
    (fun (f : Ast.func) -> line ctx "free(res_%s);" f.fname)
    pipe.outputs;
  line ctx "double t0 = pm_now_ms();";
  call ();
  line ctx "double t1 = pm_now_ms();";
  line ctx "if (t1 - t0 < t_best) t_best = t1 - t0;";
  pop ctx;
  line ctx "}";
  line ctx "printf(\"TIME_MS %%.3f\\n\", t_best);";
  pop ctx;
  line ctx "}";
  (* Write outputs with their concrete geometry. *)
  List.iteri
    (fun k (f : Ast.func) ->
      let n = List.length f.fdom in
      line ctx "{";
      push ctx;
      line ctx "int64_t ext[%d];" (max n 1);
      List.iteri
        (fun d (iv : Interval.t) ->
          line ctx "ext[%d] = (int64_t)imax(0, (%s) - (%s) + 1);" d
            (cbound iv.hi) (cbound iv.lo))
        f.fdom;
      line ctx "pm_write_raw(argv[%d], %d, ext, res_%s);" (2 + np + ni + k) n
        f.fname;
      line ctx "free(res_%s);" f.fname;
      pop ctx;
      line ctx "}")
    pipe.outputs;
  List.iter (fun (im : Ast.image) -> line ctx "free(%s);" (iname im)) pipe.images;
  line ctx "return 0;";
  pop ctx;
  line ctx "}";
  base ^ "\n" ^ Buffer.contents ctx.b

(* ---------- shared-object entry point (the c-dlopen tier) ---------- *)

let raw_entry_symbol = "polymage_run"

(* The in-process ABI, compiled with -shared -fPIC and called through
   dlsym:

     int polymage_run(int nthreads, const int32_t* params,
                      const double* const* ins, double* const* outs,
                      const int64_t* out_totals);

   - [nthreads]: worker count for this call (0 = leave the OpenMP
     default); honored only when the artifact was built with OpenMP.
   - [params]: the pipeline's runtime parameters, in [pipe.params]
     order — one artifact serves every size, like the raw main.
   - [ins]: one pointer per input image, row-major doubles with the
     geometry the parameters imply.  The caller owns them.
   - [outs]: one caller-owned destination per output, each holding
     exactly the element count the parameters imply; results are
     copied in, so the artifact never retains pointers into the
     caller's heap.
   - [out_totals]: expected element count per output, validated
     BEFORE any pixel is computed; a mismatch returns k+1 for output
     k (the caller's geometry disagrees with the artifact's — the
     in-process analogue of the raw main's extent check).  NULL skips
     the validation.  Returns 0 on success. *)
let emit_raw_entry ?name ?simd (plan : C.Plan.t) =
  let pipe = plan.pipe in
  let base = emit ?name ?simd plan in
  Polymage_util.Trace.with_span ~cat:"codegen" "codegen.emit_raw_entry"
  @@ fun () ->
  let ctx = { b = Buffer.create 1024; ind = 0 } in
  Buffer.add_string ctx.b
    "#include <stdint.h>\n#ifdef _OPENMP\n#include <omp.h>\n#endif\n";
  blank ctx;
  line ctx
    "int %s(int nthreads, const int32_t* params, const double* const* ins,"
    raw_entry_symbol;
  line ctx "    double* const* outs, const int64_t* out_totals)";
  line ctx "{";
  push ctx;
  line ctx "#ifdef _OPENMP";
  line ctx "if (nthreads > 0) omp_set_num_threads(nthreads);";
  line ctx "#else";
  line ctx "(void)nthreads;";
  line ctx "#endif";
  List.iteri
    (fun k (p : Types.param) ->
      line ctx "const int %s = (int)params[%d];" (pname p) k)
    pipe.params;
  List.iteri
    (fun k (im : Ast.image) ->
      line ctx "const double* %s = ins[%d];" (iname im) k)
    pipe.images;
  (* Geometry check up front: no pixel is computed for a caller whose
     buffers cannot hold the result. *)
  List.iteri
    (fun k (f : Ast.func) ->
      let exts =
        List.map
          (fun (iv : Interval.t) ->
            spf "(int64_t)imax(0, (%s) - (%s) + 1)" (cbound iv.hi)
              (cbound iv.lo))
          f.fdom
      in
      line ctx "const int64_t total_%s = %s;" f.fname
        (String.concat " * " exts);
      line ctx "if (out_totals && out_totals[%d] != total_%s) return %d;" k
        f.fname (k + 1))
    pipe.outputs;
  List.iter
    (fun (f : Ast.func) -> line ctx "double* res_%s = NULL;" f.fname)
    pipe.outputs;
  let args =
    List.map pname pipe.params
    @ List.map iname pipe.images
    @ List.map (fun (f : Ast.func) -> spf "&res_%s" f.fname) pipe.outputs
  in
  line ctx "%s(%s);" (func_name ?name plan) (String.concat ", " args);
  List.iteri
    (fun k (f : Ast.func) ->
      line ctx
        "memcpy(outs[%d], res_%s, (size_t)total_%s * sizeof(double));" k
        f.fname f.fname;
      line ctx "free(res_%s);" f.fname)
    pipe.outputs;
  line ctx "return 0;";
  pop ctx;
  line ctx "}";
  base ^ "\n" ^ Buffer.contents ctx.b

(* ---------- plan introspection for explain ---------- *)

let plan_widths ?simd (plan : C.Plan.t) =
  match Option.map simd_of_level simd with
  | None -> Array.map (fun _ -> 1) plan.items
  | Some s ->
    let pipe = plan.pipe in
    (* Mirrors the emission gates above: a plan item strip-mines when
       at least one of its loop nests would — a boxed (split) case of
       a non-self-recursive Cases stage with transcendental work to
       batch. *)
    let strippable (f : Ast.func) =
      plan.opts.split_cases
      &&
      match f.Ast.fbody with
      | Ast.Cases cases ->
        List.exists
          (fun c -> piece_bounds f c <> None && case_batches c)
          cases
      | _ -> false
    in
    let self_rec (f : Ast.func) =
      let r = ref false in
      Array.iteri
        (fun i (st : Ast.func) ->
          if st.fid = f.Ast.fid && pipe.self_recursive.(i) then r := true)
        pipe.stages;
      !r
    in
    Array.map
      (fun item ->
        match (item : C.Plan.item) with
        | C.Plan.Straight i ->
          let f = pipe.stages.(i) in
          if (not pipe.self_recursive.(i)) && strippable f then s.width else 1
        | C.Plan.Tiled g ->
          if
            Array.exists
              (fun (m : C.Plan.member) ->
                (not (self_rec m.ms.func)) && strippable m.ms.func)
              g.members
          then s.width
          else 1)
      plan.items
