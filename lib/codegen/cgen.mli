(** C back end: emit a complete, compilable C translation unit for an
    execution plan, mirroring the paper's generated code (Fig. 7):
    one function per pipeline with OpenMP-parallel overlapped-tile
    loops, per-tile stack scratchpads with relative indexing, loop
    nests split per case, and [ivdep]-annotated unit-stride inner
    loops.

    All values are computed in [double] (matching the native
    executor), with element-type rounding/saturation applied on store,
    so a compiled run is numerically comparable to the OCaml executor
    — the round-trip test in the suite checks exactly that. *)

open Polymage_ir
module C := Polymage_compiler

(** Vector ISA level for explicit SIMD emission.  Chosen by the caller
    (the backend resolves {!C.Options.simd_mode} through
    [Toolchain.isa_lookup]); codegen itself never probes hardware. *)
type simd_level = Sse2 | Avx2 | Avx512

val simd_level_to_string : simd_level -> string

val simd_width : simd_level -> int
(** The strip width (doubles per block) emission uses for a level:
    16 vector registers' worth — 32 / 64 / 128 — chosen to amortize
    the batched fast-math calls while the per-strip arrays stay in
    L1. *)

val fastmath_source : string
(** The vector fast-math header every SIMD-emitting translation unit
    carries: batched Cephes-style [pm_vexp]/[pm_vlog]/[pm_vpow] with
    one full clone per ISA level behind
    [__attribute__((target("arch=...")))], selected at load time by a
    cpuid constructor (capped by the [POLYMAGE_ISA] environment
    variable, which can only lower the choice).  Self-contained C99 +
    GNU attributes; non-x86-64 or non-GNU builds compile only the
    portable fallback.  Exposed for the accuracy/vectorization tests. *)

val plan_widths : ?simd:simd_level -> C.Plan.t -> int array
(** Per plan item, the strip width explicit SIMD emission would use
    (1 = scalar: reductions, guarded cases, self-recursive stages,
    and loops with no transcendental work to batch — a plain
    arithmetic loop already autovectorizes under its ivdep
    annotation, so strip-mining it is pure overhead).  Drives
    [explain]'s per-group SIMD reporting. *)

val plan_batches : C.Plan.t -> bool
(** Whether SIMD emission strip-mines anything at all — i.e. some
    non-self-recursive Cases stage has a boxed case whose rhs calls
    [exp]/[log]/[pow].  When false the SIMD emission is byte-identical
    to the scalar one, and the backend drops
    {!Toolchain.simd_cflags} from the compile too. *)

val emit : ?name:string -> ?simd:simd_level -> C.Plan.t -> string
(** The pipeline function alone:
    [void pipeline_<name>(int <param>.., const double* <image>..,
    double** out_<stage>..)].  Output buffers are allocated inside
    (caller frees).  With [simd], loops that batch transcendentals
    are strip-mined to the level's width with batched fast-math calls
    and a scalar epilogue, and {!fastmath_source} is prepended
    (only when something batches); without [simd] the emission is
    scalar (annotated for autovectorization only) and byte-stable
    across hosts. *)

val emit_with_main :
  ?name:string ->
  ?simd:simd_level ->
  ?time_runs:int ->
  C.Plan.t ->
  fill:(Ast.image -> string) ->
  env:Types.bindings ->
  string
(** The pipeline function plus a [main] that binds the given parameter
    values, fills every input image with the C expression returned by
    [fill] (over coordinates [c0], [c1], ...), runs the pipeline, and
    prints one checksum line per output:
    ["<name> <count> <sum>"].  Used by the differential test against
    the native executor.  With [time_runs > 0] the main additionally
    times that many repetitions of the pipeline call (after one
    warm-up) and prints ["TIME_MS <best>"] — this is how the benchmark
    harness measures the generated code, mirroring the paper's
    methodology of timing compiled output. *)

val raw_magic : string
(** 8-byte magic opening every [.raw] blob: ["PMRAW01\n"]. *)

val emit_raw_main :
  ?name:string ->
  ?simd:simd_level ->
  C.Plan.t ->
  string
(** The pipeline function plus a runtime-parameterized [main] speaking
    the compiled-backend protocol:
    [argv = <repeats> <param values> <input .raw paths>
    <output .raw paths>] (params in [pipe.params] order, images in
    [pipe.images] order, outputs in [pipe.outputs] order).  Inputs and
    outputs are little-endian float64 blobs — magic {!raw_magic}, u32
    rank, i64 extents per dimension, then the row-major payload.  The
    main validates each input header against the concrete geometry,
    runs the pipeline once, optionally times [repeats] further runs
    (printing ["TIME_MS <best>"]), and writes every output blob.
    Because sizes arrive via argv, one compiled artifact serves every
    image size — this is what keeps the artifact cache warm across
    [--size] changes. *)

val raw_entry_symbol : string
(** The symbol exported by {!emit_raw_entry} artifacts:
    ["polymage_run"]. *)

val emit_raw_entry : ?name:string -> ?simd:simd_level -> C.Plan.t -> string
(** The pipeline function plus an exported in-process entry point (no
    [main]) for the shared-object tier:

    {[ int polymage_run(int nthreads, const int32_t* params,
                        const double* const* ins, double* const* outs,
                        const int64_t* out_totals); ]}

    Parameters arrive in [pipe.params] order, input pointers in
    [pipe.images] order, output destinations in [pipe.outputs] order —
    all caller-owned, row-major float64.  [nthreads > 0] sets the
    OpenMP thread count for the call (per call, since an in-process
    artifact cannot be steered by [OMP_NUM_THREADS] anymore); the
    expected per-output element counts in [out_totals] are validated
    {e before} any computation, returning [k+1] on a mismatch for
    output [k], else results are copied into [outs] and 0 is
    returned.  Compiled with the toolchain's shared-object flags and
    loaded via [dlopen]/[dlsym]; like the raw main, sizes arrive at
    call time, so one artifact serves every image size. *)
