(** C back end: emit a complete, compilable C translation unit for an
    execution plan, mirroring the paper's generated code (Fig. 7):
    one function per pipeline with OpenMP-parallel overlapped-tile
    loops, per-tile stack scratchpads with relative indexing, loop
    nests split per case, and [ivdep]-annotated unit-stride inner
    loops.

    All values are computed in [double] (matching the native
    executor), with element-type rounding/saturation applied on store,
    so a compiled run is numerically comparable to the OCaml executor
    — the round-trip test in the suite checks exactly that. *)

open Polymage_ir
module C := Polymage_compiler

val emit : ?name:string -> C.Plan.t -> string
(** The pipeline function alone:
    [void pipeline_<name>(int <param>.., const double* <image>..,
    double** out_<stage>..)].  Output buffers are allocated inside
    (caller frees). *)

val emit_with_main :
  ?name:string ->
  ?time_runs:int ->
  C.Plan.t ->
  fill:(Ast.image -> string) ->
  env:Types.bindings ->
  string
(** The pipeline function plus a [main] that binds the given parameter
    values, fills every input image with the C expression returned by
    [fill] (over coordinates [c0], [c1], ...), runs the pipeline, and
    prints one checksum line per output:
    ["<name> <count> <sum>"].  Used by the differential test against
    the native executor.  With [time_runs > 0] the main additionally
    times that many repetitions of the pipeline call (after one
    warm-up) and prints ["TIME_MS <best>"] — this is how the benchmark
    harness measures the generated code, mirroring the paper's
    methodology of timing compiled output. *)

val raw_magic : string
(** 8-byte magic opening every [.raw] blob: ["PMRAW01\n"]. *)

val emit_raw_main :
  ?name:string ->
  C.Plan.t ->
  string
(** The pipeline function plus a runtime-parameterized [main] speaking
    the compiled-backend protocol:
    [argv = <repeats> <param values> <input .raw paths>
    <output .raw paths>] (params in [pipe.params] order, images in
    [pipe.images] order, outputs in [pipe.outputs] order).  Inputs and
    outputs are little-endian float64 blobs — magic {!raw_magic}, u32
    rank, i64 extents per dimension, then the row-major payload.  The
    main validates each input header against the concrete geometry,
    runs the pipeline once, optionally times [repeats] further runs
    (printing ["TIME_MS <best>"]), and writes every output blob.
    Because sizes arrive via argv, one compiled artifact serves every
    image size — this is what keeps the artifact cache warm across
    [--size] changes. *)

val raw_entry_symbol : string
(** The symbol exported by {!emit_raw_entry} artifacts:
    ["polymage_run"]. *)

val emit_raw_entry : ?name:string -> C.Plan.t -> string
(** The pipeline function plus an exported in-process entry point (no
    [main]) for the shared-object tier:

    {[ int polymage_run(int nthreads, const int32_t* params,
                        const double* const* ins, double* const* outs,
                        const int64_t* out_totals); ]}

    Parameters arrive in [pipe.params] order, input pointers in
    [pipe.images] order, output destinations in [pipe.outputs] order —
    all caller-owned, row-major float64.  [nthreads > 0] sets the
    OpenMP thread count for the call (per call, since an in-process
    artifact cannot be steered by [OMP_NUM_THREADS] anymore); the
    expected per-output element counts in [out_totals] are validated
    {e before} any computation, returning [k+1] on a mismatch for
    output [k], else results are copied into [outs] and 0 is
    returned.  Compiled with the toolchain's shared-object flags and
    loaded via [dlopen]/[dlsym]; like the raw main, sizes arrive at
    call time, so one artifact serves every image size. *)
