exception Format_error of string

module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

let byte_of v =
  let b = int_of_float (Float.round (255. *. v)) in
  if b < 0 then 0 else if b > 255 then 255 else b

let write_header oc magic cols rows = Printf.fprintf oc "%s\n%d %d\n255\n" magic cols rows

let write_pgm file (b : Buffer.t) =
  if Array.length b.dims <> 2 then
    invalid_arg "Image_io.write_pgm: 2-D buffer expected";
  let rows = b.dims.(0) and cols = b.dims.(1) in
  Trace.with_span ~cat:"io" "io.write_pgm" ~args:[ ("file", file) ]
    (fun () ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          write_header oc "P5" cols rows;
          for x = 0 to rows - 1 do
            for y = 0 to cols - 1 do
              output_char oc (Char.chr (byte_of b.data.((x * cols) + y)))
            done
          done);
      Metrics.bumpn "io/images_written";
      Metrics.addn "io/bytes_written" (rows * cols))

let write_ppm file (b : Buffer.t) =
  if Array.length b.dims <> 3 || b.dims.(0) <> 3 then
    invalid_arg "Image_io.write_ppm: (3, rows, cols) buffer expected";
  let rows = b.dims.(1) and cols = b.dims.(2) in
  let plane = rows * cols in
  Trace.with_span ~cat:"io" "io.write_ppm" ~args:[ ("file", file) ]
    (fun () ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          write_header oc "P6" cols rows;
          for x = 0 to rows - 1 do
            for y = 0 to cols - 1 do
              for ch = 0 to 2 do
                output_char oc
                  (Char.chr (byte_of b.data.((ch * plane) + (x * cols) + y)))
              done
            done
          done);
      Metrics.bumpn "io/images_written";
      Metrics.addn "io/bytes_written" (3 * plane))

(* Netpbm headers: tokens separated by whitespace, with # comments. *)
let read_token ic =
  let buf = Stdlib.Buffer.create 8 in
  let rec skip () =
    match input_char ic with
    | ' ' | '\t' | '\n' | '\r' -> skip ()
    | '#' ->
      let rec to_eol () =
        match input_char ic with '\n' -> skip () | _ -> to_eol ()
      in
      to_eol ()
    | c -> c
  in
  let rec collect c =
    match c with
    | ' ' | '\t' | '\n' | '\r' -> Stdlib.Buffer.contents buf
    | c ->
      Stdlib.Buffer.add_char buf c;
      (match input_char ic with
      | c -> collect c
      | exception End_of_file -> Stdlib.Buffer.contents buf)
  in
  match skip () with
  | c -> collect c
  | exception End_of_file -> raise (Format_error "unexpected end of file")

let read_int ic =
  let t = read_token ic in
  match int_of_string_opt t with
  | Some n -> n
  | None -> raise (Format_error ("expected integer, got " ^ t))

let with_in file f =
  let ic = open_in_bin file in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let read_raster ic n =
  match really_input_string ic n with
  | bytes -> bytes
  | exception End_of_file ->
    raise (Format_error "truncated raster (fewer pixel bytes than the header promises)")

(* Header sanity shared by both readers: dimensions must be positive
   (and small enough that rows*cols cannot overflow), maxval in
   [1, 255] (only 1-byte-per-sample rasters are supported). *)
let check_header what cols rows maxv =
  if cols <= 0 || rows <= 0 then
    raise
      (Format_error
         (Printf.sprintf "%s: non-positive dimensions %dx%d" what cols rows));
  if cols > 1 lsl 20 || rows > 1 lsl 20 then
    raise
      (Format_error
         (Printf.sprintf "%s: implausible dimensions %dx%d" what cols rows));
  if maxv <= 0 || maxv > 255 then
    raise
      (Format_error
         (Printf.sprintf "%s: unsupported max value %d (want 1..255)" what
            maxv))

let read_pgm file =
  Trace.with_span ~cat:"io" "io.read_pgm" ~args:[ ("file", file) ]
    (fun () ->
      with_in file (fun ic ->
          (match read_token ic with
          | "P5" -> ()
          | m -> raise (Format_error ("not a binary PGM: " ^ m)));
          let cols = read_int ic in
          let rows = read_int ic in
          let maxv = read_int ic in
          check_header "PGM" cols rows maxv;
          let raster = read_raster ic (rows * cols) in
          let b = Buffer.create ~lo:[| 0; 0 |] ~dims:[| rows; cols |] in
          for k = 0 to (rows * cols) - 1 do
            b.data.(k) <-
              float_of_int (Char.code raster.[k]) /. float_of_int maxv
          done;
          Metrics.bumpn "io/images_read";
          Metrics.addn "io/bytes_read" (rows * cols);
          b))

let read_ppm file =
  Trace.with_span ~cat:"io" "io.read_ppm" ~args:[ ("file", file) ]
    (fun () ->
      with_in file (fun ic ->
          (match read_token ic with
          | "P6" -> ()
          | m -> raise (Format_error ("not a binary PPM: " ^ m)));
          let cols = read_int ic in
          let rows = read_int ic in
          let maxv = read_int ic in
          check_header "PPM" cols rows maxv;
          let raster = read_raster ic (rows * cols * 3) in
          let b = Buffer.create ~lo:[| 0; 0; 0 |] ~dims:[| 3; rows; cols |] in
          let plane = rows * cols in
          for k = 0 to plane - 1 do
            for ch = 0 to 2 do
              b.data.((ch * plane) + k) <-
                float_of_int (Char.code raster.[(k * 3) + ch])
                /. float_of_int maxv
            done
          done;
          Metrics.bumpn "io/images_read";
          Metrics.addn "io/bytes_read" (3 * plane);
          b))
