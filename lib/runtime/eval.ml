open Polymage_ir
module Err = Polymage_util.Err

type source = Src_func of int | Src_img of int

type view = {
  mutable data : float array;
  mutable off : int;
  strides : int array;
  mutable descr : string;
}

let view_of_strides descr strides =
  { data = [||]; off = 0; strides; descr }

let attach_buffer v (b : Buffer.t) =
  if v.strides <> b.strides then
    Err.fail Err.Exec ~stage:v.descr "Eval.attach_buffer: stride mismatch";
  v.data <- b.data;
  v.off <- Buffer.offset_of_origin b

let attach_scratch v data ~start =
  let off = ref 0 in
  for d = 0 to Array.length start - 1 do
    off := !off - (start.(d) * v.strides.(d))
  done;
  v.data <- data;
  v.off <- !off

let view_of_buffer descr (b : Buffer.t) =
  let v = view_of_strides descr b.strides in
  attach_buffer v b;
  v

let var_pos vars v =
  let rec go i = function
    | [] ->
      Err.failf Err.Exec "unbound variable %a at runtime" Types.pp_var v
    | w :: tl -> if Types.var_equal v w then i else go (i + 1) tl
  in
  go 0 vars

(* ---- index expressions (int-valued) ---- *)

let rec compile_index ~vars ~bindings e : int array -> int =
  match e with
  | Ast.Var v ->
    let i = var_pos vars v in
    fun c -> Array.unsafe_get c i
  | Ast.Const x when Float.is_integer x ->
    let k = int_of_float x in
    fun _ -> k
  | Ast.Param p ->
    let k = Types.bind_exn bindings p in
    fun _ -> k
  | Ast.Binop (Add, a, Ast.Const x) when Float.is_integer x ->
    let fa = compile_index ~vars ~bindings a in
    let k = int_of_float x in
    fun c -> fa c + k
  | Ast.Binop (Add, Ast.Const x, a) when Float.is_integer x ->
    let fa = compile_index ~vars ~bindings a in
    let k = int_of_float x in
    fun c -> fa c + k
  | Ast.Binop (Sub, a, Ast.Const x) when Float.is_integer x ->
    let fa = compile_index ~vars ~bindings a in
    let k = int_of_float x in
    fun c -> fa c - k
  | Ast.Binop (Mul, Ast.Const x, a) when Float.is_integer x ->
    let fa = compile_index ~vars ~bindings a in
    let k = int_of_float x in
    fun c -> k * fa c
  | Ast.Binop (Mul, a, Ast.Const x) when Float.is_integer x ->
    let fa = compile_index ~vars ~bindings a in
    let k = int_of_float x in
    fun c -> k * fa c
  | Ast.Binop (Add, a, b) ->
    let fa = compile_index ~vars ~bindings a
    and fb = compile_index ~vars ~bindings b in
    fun c -> fa c + fb c
  | Ast.Binop (Sub, a, b) ->
    let fa = compile_index ~vars ~bindings a
    and fb = compile_index ~vars ~bindings b in
    fun c -> fa c - fb c
  | Ast.IDiv (a, n) ->
    let fa = compile_index ~vars ~bindings a in
    fun c -> Polymage_util.Intmath.floor_div (fa c) n
  | Ast.IMod (a, n) ->
    let fa = compile_index ~vars ~bindings a in
    fun c -> Polymage_util.Intmath.pos_mod (fa c) n
  | _ -> raise Exit (* caller falls back to the float path *)

(* ---- float expressions ---- *)

let rec compile ~unsafe ~vars ~bindings ~lookup e : int array -> float =
  let self e = compile ~unsafe ~vars ~bindings ~lookup e in
  let index e =
    match compile_index ~vars ~bindings (Expr.simplify e) with
    | f -> f
    | exception Exit ->
      let f = self e in
      fun c -> int_of_float (Float.floor (f c))
  in
  match e with
  | Ast.Const x -> fun _ -> x
  | Ast.Param p ->
    let x = float_of_int (Types.bind_exn bindings p) in
    fun _ -> x
  | Ast.Var v ->
    let i = var_pos vars v in
    fun c -> float_of_int (Array.unsafe_get c i)
  | Ast.Call (f, args) ->
    read ~unsafe
      (lookup (Src_func f.Ast.fid))
      (Array.of_list (List.map index args))
  | Ast.Img (im, args) ->
    read ~unsafe
      (lookup (Src_img im.Ast.iid))
      (Array.of_list (List.map index args))
  | Ast.Binop (op, a, b) -> (
    let fa = self a and fb = self b in
    match op with
    | Add -> fun c -> fa c +. fb c
    | Sub -> fun c -> fa c -. fb c
    | Mul -> fun c -> fa c *. fb c
    | Div -> fun c -> fa c /. fb c
    | Min -> fun c -> Float.min (fa c) (fb c)
    | Max -> fun c -> Float.max (fa c) (fb c)
    | Pow -> fun c -> Float.pow (fa c) (fb c))
  | Ast.Unop (op, a) -> (
    let fa = self a in
    match op with
    | Neg -> fun c -> -.fa c
    | Abs -> fun c -> Float.abs (fa c)
    | Sqrt -> fun c -> Float.sqrt (fa c)
    | Exp -> fun c -> Float.exp (fa c)
    | Log -> fun c -> Float.log (fa c)
    | Floor -> fun c -> Float.floor (fa c))
  | Ast.IDiv (a, n) ->
    let fa = self a in
    let fn = float_of_int n in
    fun c -> Float.floor (fa c /. fn)
  | Ast.IMod (a, n) ->
    let fa = self a in
    let fn = float_of_int n in
    fun c ->
      let x = fa c in
      x -. (fn *. Float.floor (x /. fn))
  | Ast.Select (cond, a, b) ->
    let fc = compile_cond ~unsafe ~vars ~bindings ~lookup cond in
    let fa = self a and fb = self b in
    fun c -> if fc c then fa c else fb c
  | Ast.Cast (ty, a) ->
    let fa = self a in
    fun c -> Types.clamp_store ty (fa c)

and read ~unsafe (v : view) (idxs : (int array -> int) array) =
  match idxs with
  | [| i0 |] ->
    let s0 = v.strides.(0) in
    if unsafe then fun c ->
      Array.unsafe_get v.data (v.off + (i0 c * s0))
    else fun c -> checked_get v (v.off + (i0 c * s0))
  | [| i0; i1 |] ->
    let s0 = v.strides.(0) and s1 = v.strides.(1) in
    if unsafe then fun c ->
      Array.unsafe_get v.data (v.off + (i0 c * s0) + (i1 c * s1))
    else fun c -> checked_get v (v.off + (i0 c * s0) + (i1 c * s1))
  | [| i0; i1; i2 |] ->
    let s0 = v.strides.(0) and s1 = v.strides.(1) and s2 = v.strides.(2) in
    if unsafe then fun c ->
      Array.unsafe_get v.data (v.off + (i0 c * s0) + (i1 c * s1) + (i2 c * s2))
    else fun c ->
      checked_get v (v.off + (i0 c * s0) + (i1 c * s1) + (i2 c * s2))
  | _ ->
    let n = Array.length idxs in
    fun c ->
      let pos = ref v.off in
      for d = 0 to n - 1 do
        pos := !pos + (idxs.(d) c * v.strides.(d))
      done;
      if unsafe then Array.unsafe_get v.data !pos else checked_get v !pos

and checked_get v pos =
  if pos < 0 || pos >= Array.length v.data then
    Err.failf Err.Exec ~stage:v.descr
      "access out of window (position %d of %d)" pos (Array.length v.data)
  else Array.unsafe_get v.data pos

and compile_cond ~unsafe ~vars ~bindings ~lookup cond : int array -> bool =
  let selfc c = compile_cond ~unsafe ~vars ~bindings ~lookup c in
  let selfe e = compile ~unsafe ~vars ~bindings ~lookup e in
  match cond with
  | Ast.Cmp (op, a, b) -> (
    let fa = selfe a and fb = selfe b in
    match op with
    | Lt -> fun c -> fa c < fb c
    | Le -> fun c -> fa c <= fb c
    | Gt -> fun c -> fa c > fb c
    | Ge -> fun c -> fa c >= fb c
    | Eq -> fun c -> fa c = fb c
    | Ne -> fun c -> fa c <> fb c)
  | Ast.And (a, b) ->
    let fa = selfc a and fb = selfc b in
    fun c -> fa c && fb c
  | Ast.Or (a, b) ->
    let fa = selfc a and fb = selfc b in
    fun c -> fa c || fb c
  | Ast.Not a ->
    let fa = selfc a in
    fun c -> not (fa c)

let compile ~unsafe ~vars ~bindings ~lookup e =
  compile ~unsafe ~vars ~bindings ~lookup (Expr.simplify e)
