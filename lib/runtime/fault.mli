(** Seeded fault injection for the compile→execute path.

    A fault is armed for one named site with a seed; the [seed]-th hit
    of that site (0-based, counted atomically across workers) raises a
    {!Polymage_util.Err.Polymage_error}, exactly once.  Because the
    counter keeps advancing and never re-fires, a degraded retry of
    the same work observes the fault already consumed — which is what
    lets tests prove that the degradation ladder recovers.

    Arming is process-global (the injector exists to break things; it
    is not a per-pipeline facility).  The environment variable
    [POLYMAGE_FAULT=site:seed] arms the injector at startup. *)

type spec = { site : string; seed : int }

val sites : string list
(** The named sites:
    ["alloc"] — full-buffer and scratchpad allocation in the executor;
    ["kernel_compile"] — row-kernel compilation;
    ["tile_body"] — execution of one tile (or split-tiling region);
    ["worker_start"] — worker-pool startup;
    ["group_schedule"] — per-group schedule setup in the executor;
    ["dlopen"] — loading a shared-object artifact in the c-dlopen
    execution tier;
    ["exec_crash"] — execution of a compiled artifact (subprocess,
    canary or in-process), simulating an artifact that crashes;
    ["exec_hang"] — the same execution sites, simulating a hung
    artifact reaped by the watchdog;
    ["compile_flaky"] — a toolchain invocation, simulating a transient
    compiler failure that the retry-with-backoff path absorbs;
    ["serve_request"] — the serve daemon's per-request handler,
    simulating an internal failure that must surface as a structured
    error response while the server stays up. *)

val parse : string -> spec
(** Parse ["site:seed"]. @raise Polymage_util.Err.Polymage_error on an
    unknown site or malformed string. *)

val arm : site:string -> seed:int -> unit
(** Arm the injector, resetting the hit counter.
    @raise Polymage_util.Err.Polymage_error on an unknown site. *)

val disarm : unit -> unit
val armed : unit -> spec option

val ensure : (string * int) option -> unit
(** Arm from a carried option value ([Options.fault]) unless the same
    spec is already armed — re-running a plan must not reset the
    counter, or a one-shot fault would fire on every retry. [None]
    leaves the current arming alone (the env var stays effective). *)

val hit : string -> unit
(** Mark one hit of [site].  Raises on the armed site's seed-th hit.
    Near-free when the injector is disarmed. *)

val fired : unit -> bool
(** Whether the armed fault has already fired. *)
