open Polymage_ir
module Poly = Polymage_poly
module C = Polymage_compiler
module Err = Polymage_util.Err
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

type result = {
  buffers : Buffer.t option array;
  outputs : (Ast.func * Buffer.t) list;
}

type degradation = { rung : string; error : Err.t }

(* A stage whose body writes every cell of its domain: an
   unconditional case exists (evaluation always lands on some arm
   whose guard passed, and the unconditional arm catches the rest) or
   the body is a reduction (initialized with [rinit] up front).  Such
   buffers never expose uninitialized cells, so zeroing them at
   allocation is pure overhead. *)
let body_covers_domain (f : Ast.func) =
  match f.Ast.fbody with
  | Ast.Undefined -> false
  | Ast.Reduce _ -> true
  | Ast.Cases cases ->
    List.exists (fun { Ast.ccond; _ } -> ccond = None) cases

(* Full-buffer allocation, visible to the fault injector.  [zero]
   false skips the zeroing pass for buffers the caller proves fully
   overwritten before any read (see [body_covers_domain]); the
   [exec/alloc_zeroed|alloc_uninit] counters record the split. *)
let alloc_buffer ?(zero = true) (f : Ast.func) env =
  Fault.hit "alloc";
  if zero then begin
    Metrics.bumpn "exec/alloc_zeroed";
    Buffer.of_func f env
  end
  else begin
    Metrics.bumpn "exec/alloc_uninit";
    Buffer.of_func_uninit f env
  end

let floor_div = Polymage_util.Intmath.floor_div
let ceil_div = Polymage_util.Intmath.ceil_div

(* One arm of a piecewise stage definition, with its concrete box when
   the condition is box-analyzable (loop splitting, §3.7). *)
type piece = {
  pbox : (int * int) array option;  (* absolute bounds per stage dim *)
  pcond : Ast.cond option;  (* tested per point when pbox is None *)
  prhs : Ast.expr;
}

let concrete_dom (f : Ast.func) env =
  Array.of_list (List.map (fun iv -> Interval.eval iv env) f.Ast.fdom)

(* Split a stage body into pieces under the concrete domain. *)
let pieces_of (opts : C.Options.t) (f : Ast.func) env cases =
  let dom = concrete_dom f env in
  List.map
    (fun { Ast.ccond; rhs } ->
      match ccond with
      | None -> { pbox = Some (Array.copy dom); pcond = None; prhs = rhs }
      | Some c ->
        if not opts.split_cases then { pbox = None; pcond = Some c; prhs = rhs }
        else (
          match Expr.box_of_cond f.fvars c with
          | None -> { pbox = None; pcond = Some c; prhs = rhs }
          | Some box ->
            let b =
              Array.mapi
                (fun d (blo, bhi) ->
                  let dlo, dhi = dom.(d) in
                  ( (match blo with
                    | Some a -> max dlo (Abound.eval a env)
                    | None -> dlo),
                    match bhi with
                    | Some a -> min dhi (Abound.eval a env)
                    | None -> dhi ))
                box
            in
            { pbox = Some b; pcond = None; prhs = rhs }))
    cases

(* Per-stage instrumentation handles, resolved once per compiled piece
   so the hot loop bumps counters without registry lookups. *)
type stagectr = {
  sc_rows_kernel : Metrics.counter;
  sc_rows_closure : Metrics.counter;
  sc_rows_cond : Metrics.counter;
  sc_points : Metrics.counter;
  sc_kept : Metrics.counter;
  sc_dropped : Metrics.counter;
}

let stagectr_of (f : Ast.func) =
  let c what =
    Metrics.counter (Printf.sprintf "exec/stage/%s/%s" f.Ast.fname what)
  in
  {
    sc_rows_kernel = c "rows_kernel";
    sc_rows_closure = c "rows_closure";
    sc_rows_cond = c "rows_cond";
    sc_points = c "points";
    sc_kept = c "kernel_kept";
    sc_dropped = c "kernel_dropped";
  }

(* Measured kernel fallback (Options.kernel_measure): the first rows
   of a stage alternate between the compiled kernel and the closure
   path under a timer; once both sides have covered [measure_pts]
   points, the slower path is dropped to a 1-in-32 sampling rate and
   the choice is recorded in the stage's kernel_kept/kernel_dropped
   counters.  The sparse samples keep refreshing both accumulators
   (with exponential decay), so a choice made under transient load
   self-corrects instead of sticking forever.  Both paths are
   bit-identical, so switches are invisible in the output. *)
type kchoice = {
  mutable kern_ns : int;
  mutable kern_pts : int;
  mutable clos_ns : int;
  mutable clos_pts : int;
  mutable decided : int;  (* -1 measuring, 0 closure, 1 kernel *)
  mutable tick : int;  (* rows since the first decision *)
  mutable stride_log : int;
      (* log2 of the sampling interval: starts at 5 (every 32nd row);
         each confirmation doubles it up to 2^12, a flip resets it, so
         a settled choice costs almost nothing per row *)
}

(* Nanosecond monotonic clock (clock_gettime) for the row timings:
   rows run in the 0.1-3 microsecond range, far below what the
   wall-clock microsecond timestamps in {!Polymage_util.Trace} can
   resolve per row. *)
let mono_ns () = Int64.to_int (Monotonic_clock.now ())

(* Points each side must cover before the measured choice is made:
   enough sampled rows that scheduler noise averages out, small
   against any domain where the choice matters. *)
let measure_pts = 8192

(* Decisions persist for the process, keyed by the stage and the
   option bit that changes the compiled code ([vec] switches both
   paths to unchecked evaluation).  Re-measuring on every run would
   charge stages smaller than 2*[measure_pts] the closure/kernel cost
   gap forever; sticky choices confine it to the first run.  Workers
   share the record: the unsynchronized += on the accumulators can
   drop a sample under contention, which only delays the decision. *)
let kchoice_mu = Mutex.create ()

let kchoice_tbl : (int * bool, kchoice) Hashtbl.t = Hashtbl.create 64

let kchoice_for (f : Ast.func) (opts : C.Options.t) =
  let key = (f.Ast.fid, opts.C.Options.vec) in
  Mutex.protect kchoice_mu (fun () ->
      match Hashtbl.find_opt kchoice_tbl key with
      | Some ch -> ch
      | None ->
        let ch =
          {
            kern_ns = 0;
            kern_pts = 0;
            clos_ns = 0;
            clos_pts = 0;
            decided = -1;
            tick = 0;
            stride_log = 5;
          }
        in
        Hashtbl.add kchoice_tbl key ch;
        ch)

(* Forget every measured choice (tests, or after the machine's load
   profile changes). *)
let reset_kernel_choices () =
  Mutex.protect kchoice_mu (fun () -> Hashtbl.reset kchoice_tbl)

(* Compiled form of a piece for one worker.  [ckern] is the flat row
   kernel (CSE + cursors + hoisting) used for unconditional pieces;
   [crhs] is the closure fallback, always present. *)
type cpiece = {
  cbox : (int * int) array option;
  ccond : (int array -> bool) option;
  crhs : int array -> float;
  ckern : Kernel.t option;
  cchoice : kchoice option;  (* Some iff measuring kernel vs closure *)
  cstats : stagectr;
}

(* Shared by all executors: compile one piece for the current worker.
   The kernel is only attempted for unconditional pieces (a per-point
   condition needs the scalar loop anyway) and when the option is on. *)
let compile_cpiece (opts : C.Options.t) (f : Ast.func) env lookup p =
  let ckern =
    if opts.kernels && p.pcond = None then begin
      Fault.hit "kernel_compile";
      let k =
        Kernel.compile ~unsafe:opts.vec ~vars:f.fvars ~bindings:env ~lookup
          ~self:f.Ast.fid p.prhs
      in
      (match k with
      | Some _ -> Metrics.bumpn "exec/kernels_compiled"
      | None -> Metrics.bumpn "exec/kernel_fallbacks");
      k
    end
    else None
  in
  {
    cbox = p.pbox;
    ccond =
      Option.map
        (Eval.compile_cond ~unsafe:opts.vec ~vars:f.fvars ~bindings:env
           ~lookup)
        p.pcond;
    crhs = Eval.compile ~unsafe:opts.vec ~vars:f.fvars ~bindings:env ~lookup p.prhs;
    ckern;
    cchoice =
      (if ckern <> None && opts.kernel_measure then Some (kchoice_for f opts)
       else None);
    cstats = stagectr_of f;
  }

let intersect_box a b =
  Array.init (Array.length a) (fun d ->
      let alo, ahi = a.(d) and blo, bhi = b.(d) in
      (max alo blo, min ahi bhi))

let box_empty b = Array.exists (fun (lo, hi) -> lo > hi) b

(* Evaluate compiled pieces over [box] (absolute bounds per stage dim),
   writing through [view].  The innermost dimension is a tight loop
   with an incrementally maintained position; [vec] additionally
   unrolls it by 4 (the SIMD stand-in). *)
let run_pieces ~vec ~ty (view : Eval.view) (coords : int array)
    (cpieces : cpiece list) (box : (int * int) array) =
  let n = Array.length box in
  if n = 0 then Err.fail Err.Exec "Executor: zero-dimensional stage";
  let slast = view.strides.(n - 1) in
  List.iter
    (fun cp ->
      let b =
        match cp.cbox with Some pb -> intersect_box pb box | None -> box
      in
      if not (box_empty b) then begin
        if Metrics.enabled () then begin
          let rows = ref 1 in
          for d = 0 to n - 2 do
            let lo, hi = b.(d) in
            rows := !rows * (hi - lo + 1)
          done;
          let rows = !rows in
          let rlo, rhi = b.(n - 1) in
          Metrics.addn "exec/rows_total" rows;
          Metrics.add cp.cstats.sc_points (rows * (rhi - rlo + 1));
          (* The kernel/closure split under an undecided measured
             choice is only known per row; those rows are counted in
             [write_row] instead. *)
          match (cp.ccond, cp.ckern, cp.cchoice) with
          | Some _, _, _ ->
            Metrics.addn "exec/rows_cond" rows;
            Metrics.add cp.cstats.sc_rows_cond rows
          | None, Some _, None ->
            Metrics.addn "exec/rows_kernel" rows;
            Metrics.add cp.cstats.sc_rows_kernel rows
          | None, None, _ ->
            Metrics.addn "exec/rows_closure" rows;
            Metrics.add cp.cstats.sc_rows_closure rows
          | None, Some _, Some _ -> ()
        end;
        let write_row lo hi =
          (* position of (coords with last dim = lo) *)
          let pos0 = ref view.off in
          for d = 0 to n - 2 do
            pos0 := !pos0 + (coords.(d) * view.strides.(d))
          done;
          let pos0 = !pos0 + (lo * slast) in
          let data = view.data in
          match cp.ccond with
          | Some cnd ->
            for j = lo to hi do
              coords.(n - 1) <- j;
              if cnd coords then
                data.(pos0 + ((j - lo) * slast)) <-
                  Types.clamp_store ty (cp.crhs coords)
            done
          | None ->
            let run_closure () =
              if vec then begin
                (* 4x unrolled, bounds-check-free *)
                let j = ref lo in
                while !j + 3 <= hi do
                  let j0 = !j in
                  coords.(n - 1) <- j0;
                  let v0 = cp.crhs coords in
                  coords.(n - 1) <- j0 + 1;
                  let v1 = cp.crhs coords in
                  coords.(n - 1) <- j0 + 2;
                  let v2 = cp.crhs coords in
                  coords.(n - 1) <- j0 + 3;
                  let v3 = cp.crhs coords in
                  let base = pos0 + ((j0 - lo) * slast) in
                  Array.unsafe_set data base (Types.clamp_store ty v0);
                  Array.unsafe_set data (base + slast) (Types.clamp_store ty v1);
                  Array.unsafe_set data (base + (2 * slast)) (Types.clamp_store ty v2);
                  Array.unsafe_set data (base + (3 * slast)) (Types.clamp_store ty v3);
                  j := j0 + 4
                done;
                for j2 = !j to hi do
                  coords.(n - 1) <- j2;
                  Array.unsafe_set data
                    (pos0 + ((j2 - lo) * slast))
                    (Types.clamp_store ty (cp.crhs coords))
                done
              end
              else
                for j = lo to hi do
                  coords.(n - 1) <- j;
                  data.(pos0 + ((j - lo) * slast)) <-
                    Types.clamp_store ty (cp.crhs coords)
                done
            in
            (match cp.ckern with
            | None -> run_closure ()
            | Some k -> (
              let run_kernel () =
                Kernel.run_row k ~vec ~ty ~data ~pos0 ~dstride:slast ~coords
                  ~lo ~hi
              in
              let count_row kern =
                if Metrics.enabled () then
                  if kern then begin
                    Metrics.add cp.cstats.sc_rows_kernel 1;
                    Metrics.addn "exec/rows_kernel" 1
                  end
                  else begin
                    Metrics.add cp.cstats.sc_rows_closure 1;
                    Metrics.addn "exec/rows_closure" 1
                  end
              in
              let timed pick_kern =
                let t0 = mono_ns () in
                if pick_kern then run_kernel () else run_closure ();
                let dt = mono_ns () - t0 in
                let pts = hi - lo + 1 in
                (match cp.cchoice with
                | None -> ()
                | Some ch ->
                  (* decay at 2*measure_pts keeps the window fresh, so
                     old samples stop outvoting current conditions *)
                  if pick_kern then begin
                    ch.kern_ns <- ch.kern_ns + dt;
                    ch.kern_pts <- ch.kern_pts + pts;
                    if ch.kern_pts >= 2 * measure_pts then begin
                      ch.kern_ns <- ch.kern_ns / 2;
                      ch.kern_pts <- ch.kern_pts / 2
                    end
                  end
                  else begin
                    ch.clos_ns <- ch.clos_ns + dt;
                    ch.clos_pts <- ch.clos_pts + pts;
                    if ch.clos_pts >= 2 * measure_pts then begin
                      ch.clos_ns <- ch.clos_ns / 2;
                      ch.clos_pts <- ch.clos_pts / 2
                    end
                  end;
                  if ch.kern_pts >= measure_pts && ch.clos_pts >= measure_pts
                  then begin
                    (* compare per-point cost: kern_ns/kern_pts vs
                       clos_ns/clos_pts, cross-multiplied *)
                    let keep =
                      ch.kern_ns * ch.clos_pts <= ch.clos_ns * ch.kern_pts
                    in
                    let d = if keep then 1 else 0 in
                    if ch.decided <> d then begin
                      ch.decided <- d;
                      ch.stride_log <- 5;
                      if keep then begin
                        Metrics.bump cp.cstats.sc_kept;
                        Metrics.bumpn "exec/kernel_kept"
                      end
                      else begin
                        Metrics.bump cp.cstats.sc_dropped;
                        Metrics.bumpn "exec/kernel_dropped"
                      end
                    end
                    else if ch.stride_log < 12 then
                      ch.stride_log <- ch.stride_log + 1
                  end);
                count_row pick_kern
              in
              match cp.cchoice with
              | None -> run_kernel ()
              | Some ch ->
                if ch.decided < 0 then
                  (* dense measuring: run the side with fewer sampled
                     points under the timer *)
                  timed (ch.kern_pts <= ch.clos_pts)
                else begin
                  ch.tick <- ch.tick + 1;
                  if ch.tick land ((1 lsl ch.stride_log) - 1) = 0 then
                    (* sparse refresh: one timed row per interval, the
                       sampled side alternating, so a choice made
                       under transient load self-corrects *)
                    timed ((ch.tick lsr ch.stride_log) land 1 = 0)
                  else if ch.decided = 1 then begin
                    run_kernel ();
                    count_row true
                  end
                  else begin
                    run_closure ();
                    count_row false
                  end
                end))
        in
        let rec outer d =
          if d = n - 1 then
            let lo, hi = b.(n - 1) in
            write_row lo hi
          else
            let lo, hi = b.(d) in
            for x = lo to hi do
              coords.(d) <- x;
              outer (d + 1)
            done
        in
        outer 0
      end)
    cpieces

(* Zero a box of the view (scratch initialization for partially
   covered domains). *)
let zero_box (view : Eval.view) (coords : int array) (box : (int * int) array) =
  let n = Array.length box in
  let slast = view.strides.(n - 1) in
  let rec outer d =
    if d = n - 1 then begin
      let lo, hi = box.(n - 1) in
      let pos0 = ref view.off in
      for k = 0 to n - 2 do
        pos0 := !pos0 + (coords.(k) * view.strides.(k))
      done;
      let pos0 = !pos0 + (lo * slast) in
      for j = 0 to hi - lo do
        view.data.(pos0 + (j * slast)) <- 0.
      done
    end
    else begin
      let lo, hi = box.(d) in
      for x = lo to hi do
        coords.(d) <- x;
        outer (d + 1)
      done
    end
  in
  if not (box_empty box) then outer 0

(* Copy [box] from [src] view to [dst] view (live-outs that also feed
   the group: widened values live in the scratchpad, the owned region
   is copied out). *)
let copy_box (src : Eval.view) (dst : Eval.view) (coords : int array)
    (box : (int * int) array) =
  let n = Array.length box in
  let sl = src.strides.(n - 1) and dl = dst.strides.(n - 1) in
  let rec outer d =
    if d = n - 1 then begin
      let lo, hi = box.(n - 1) in
      let spos = ref src.off and dpos = ref dst.off in
      for k = 0 to n - 2 do
        spos := !spos + (coords.(k) * src.strides.(k));
        dpos := !dpos + (coords.(k) * dst.strides.(k))
      done;
      let spos = !spos + (lo * sl) and dpos = !dpos + (lo * dl) in
      for j = 0 to hi - lo do
        dst.data.(dpos + (j * dl)) <- src.data.(spos + (j * sl))
      done
    end
    else begin
      let lo, hi = box.(d) in
      for x = lo to hi do
        coords.(d) <- x;
        outer (d + 1)
      done
    end
  in
  if not (box_empty box) then outer 0

(* ---------- shared source lookup ---------- *)

let make_lookup (pipe : Pipeline.t) buffers images ~local =
  (* [local fid] lets tiled groups route in-group references to
     per-worker scratch views. *)
  let fid_to_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : Ast.func) -> Hashtbl.replace fid_to_idx f.fid i)
    pipe.stages;
  fun (src : Eval.source) ->
    match src with
    | Eval.Src_img iid -> (
      match
        List.find_opt (fun ((im : Ast.image), _) -> im.iid = iid) images
      with
      | Some (im, b) -> Eval.view_of_buffer im.iname b
      | None -> Err.fail Err.Exec "Executor: missing input image")
    | Eval.Src_func fid -> (
      match local fid with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt fid_to_idx fid with
        | None -> Err.fail Err.Exec "Executor: reference to a foreign stage"
        | Some i -> (
          match buffers.(i) with
          | Some b -> Eval.view_of_buffer pipe.stages.(i).Ast.fname b
          | None ->
            Err.fail Err.Exec ~stage:pipe.stages.(i).Ast.fname
              "Executor: stage read before computed")))

(* ---------- straight items ---------- *)

let exec_straight pool (plan : C.Plan.t) env buffers images i =
  let opts = plan.opts in
  let pipe = plan.pipe in
  let f = pipe.stages.(i) in
  let buf = alloc_buffer ~zero:(not (body_covers_domain f)) f env in
  buffers.(i) <- Some buf;
  match f.fbody with
  | Ast.Undefined -> assert false
  | Ast.Cases cases ->
    let dom = concrete_dom f env in
    if Array.exists (fun (lo, hi) -> lo > hi) dom then ()
    else begin
      let pieces = pieces_of opts f env cases in
      let nd = Array.length dom in
      let lo0, hi0 = dom.(0) in
      let rows = hi0 - lo0 + 1 in
      let sequential = pipe.self_recursive.(i) in
      let chunks =
        if sequential || Pool.size pool = 1 then 1
        else min rows (Pool.size pool * 4)
      in
      let key =
        Domain.DLS.new_key (fun () ->
            let lookup =
              make_lookup pipe buffers images ~local:(fun fid ->
                  if fid = f.fid then
                    Some (Eval.view_of_buffer f.fname buf)
                  else None)
            in
            let cps = List.map (compile_cpiece opts f env lookup) pieces in
            (cps, Eval.view_of_buffer f.fname buf, Array.make nd 0))
      in
      let run_chunk c =
        let cps, view, coords = Domain.DLS.get key in
        let per = ceil_div rows chunks in
        let clo = lo0 + (c * per) in
        let chi = min hi0 (clo + per - 1) in
        if clo <= chi then begin
          let box = Array.copy dom in
          box.(0) <- (clo, chi);
          run_pieces ~vec:opts.vec ~ty:f.ftyp view coords cps box
        end
      in
      if chunks = 1 then run_chunk 0 else Pool.parallel_for pool ~n:chunks run_chunk
    end
  | Ast.Reduce r ->
    Buffer.fill buf r.rinit;
    let rdom =
      Array.of_list (List.map (fun iv -> Interval.eval iv env) r.rdom)
    in
    if Array.exists (fun (lo, hi) -> lo > hi) rdom then ()
    else begin
      let nrv = Array.length rdom in
      let lo0, hi0 = rdom.(0) in
      let rows = hi0 - lo0 + 1 in
      (* Privatized parallel reduction: the operators are associative
         and commutative, so chunks of the outer reduction dimension
         accumulate into private copies which are then folded into the
         result (safe for any cell-index function, including
         data-dependent histograms). *)
      let nchunks =
        if Pool.size pool > 1 && Buffer.size buf <= 1 lsl 20 && rows >= 2
        then min rows (Pool.size pool * 2)
        else 1
      in
      let neutral = Ast.redop_init r.rop in
      let accumulate_range (target : Buffer.t) clo chi =
        let lookup = make_lookup pipe buffers images ~local:(fun _ -> None) in
        let value_fn =
          Eval.compile ~unsafe:false ~vars:r.rvars ~bindings:env ~lookup
            r.rvalue
        in
        let idx_fns =
          List.map
            (fun e ->
              let fe =
                Eval.compile ~unsafe:false ~vars:r.rvars ~bindings:env
                  ~lookup e
              in
              fun c -> int_of_float (Float.floor (fe c)))
            r.rindex
          |> Array.of_list
        in
        let coords = Array.make nrv 0 in
        let cell = Array.make (Array.length idx_fns) 0 in
        let rec go d =
          if d = nrv then begin
            for k = 0 to Array.length idx_fns - 1 do
              cell.(k) <- idx_fns.(k) coords
            done;
            let v = value_fn coords in
            Buffer.set target cell
              (Types.clamp_store f.ftyp
                 (Ast.apply_redop r.rop (Buffer.get target cell) v))
          end
          else begin
            let lo, hi = if d = 0 then (clo, chi) else rdom.(d) in
            for x = lo to hi do
              coords.(d) <- x;
              go (d + 1)
            done
          end
        in
        go 0
      in
      if nchunks = 1 then accumulate_range buf lo0 hi0
      else begin
        let partials = Array.make nchunks None in
        let per = ceil_div rows nchunks in
        Pool.parallel_for pool ~n:nchunks (fun ci ->
            let clo = lo0 + (ci * per) in
            let chi = min hi0 (clo + per - 1) in
            if clo <= chi then begin
              let p = alloc_buffer ~zero:false f env in
              Buffer.fill p neutral;
              accumulate_range p clo chi;
              partials.(ci) <- Some p
            end);
        Array.iter
          (function
            | None -> ()
            | Some (p : Buffer.t) ->
              let n = Buffer.size buf in
              for k = 0 to n - 1 do
                buf.data.(k) <-
                  Types.clamp_store f.ftyp
                    (Ast.apply_redop r.rop buf.data.(k) p.data.(k))
              done)
          partials
      end
    end

(* ---------- tiled groups ---------- *)

(* Tile space of a group: bounding box of the members' scaled domains,
   per canonical dim.  Shared by all three tiling strategies and by
   [tile_counts]. *)
let group_space (g : C.Plan.tiled) env =
  let ncd = g.sched.n_cdims in
  let space_lo = Array.make ncd max_int and space_hi = Array.make ncd min_int in
  Array.iter
    (fun (m : C.Plan.member) ->
      let sd = Poly.Schedule.scaled_domain ~n_cdims:ncd m.ms env in
      let covers = Array.make ncd false in
      Array.iter (fun d -> if d >= 0 then covers.(d) <- true) m.ms.align;
      Array.iteri
        (fun d (lo, hi) ->
          if covers.(d) then begin
            if lo < space_lo.(d) then space_lo.(d) <- lo;
            if hi > space_hi.(d) then space_hi.(d) <- hi
          end)
        sd)
    g.members;
  for d = 0 to ncd - 1 do
    if space_lo.(d) = max_int then begin
      space_lo.(d) <- 0;
      space_hi.(d) <- 0
    end
  done;
  (space_lo, space_hi)

let tiles_of_space ncd tau space_lo space_hi =
  Array.init ncd (fun d ->
      max 1 (ceil_div (space_hi.(d) - space_lo.(d) + 1) tau.(d)))

(* Tile layout (scaled tile sizes, tile-space origin, tiles per dim)
   for each strategy.  The executors and [tile_counts] both go through
   these, so reported tile counts agree with execution by
   construction. *)
let overlap_layout (g : C.Plan.tiled) env =
  let ncd = g.sched.n_cdims in
  let tau = Poly.Tiling.scaled_tile g.sched ~tile:g.tile in
  let space_lo, space_hi = group_space g env in
  (tau, space_lo, tiles_of_space ncd tau space_lo space_hi)

let group_heights (pipe : Pipeline.t) (g : C.Plan.tiled) =
  let sched = g.sched in
  let sink_level = pipe.level.(sched.members.(sched.sink).sidx) in
  let height (m : C.Plan.member) = sink_level - pipe.level.(m.ms.sidx) in
  let h_max = Array.fold_left (fun acc m -> max acc (height m)) 0 g.members in
  (height, h_max)

let parallelogram_layout (pipe : Pipeline.t) (g : C.Plan.tiled) env =
  let ncd = g.sched.n_cdims in
  let tau = Poly.Tiling.scaled_tile g.sched ~tile:g.tile in
  let _, h_max = group_heights pipe g in
  let skew = g.sched.slope_r in
  let space_lo, space_hi = group_space g env in
  (* extend left so the most-skewed member still covers its domain *)
  for d = 0 to ncd - 1 do
    space_lo.(d) <- space_lo.(d) - (h_max * skew.(d))
  done;
  (tau, space_lo, tiles_of_space ncd tau space_lo space_hi, h_max, skew)

let split_layout (pipe : Pipeline.t) (g : C.Plan.tiled) env =
  let sched = g.sched in
  let ncd = sched.n_cdims in
  let _, h_max = group_heights pipe g in
  (* symmetric slope per dim *)
  let sigma =
    Array.init ncd (fun d -> max sched.slope_l.(d) sched.slope_r.(d))
  in
  (* tiles must be wide enough that the sink's upward window is
     nonempty and phases only depend on earlier phases *)
  let tau0 = Poly.Tiling.scaled_tile sched ~tile:g.tile in
  let tau =
    Array.init ncd (fun d -> max tau0.(d) ((2 * h_max * sigma.(d)) + 2))
  in
  let space_lo, space_hi = group_space g env in
  (tau, space_lo, tiles_of_space ncd tau space_lo space_hi, h_max, sigma)

(* Total units of tile-level work per plan item (Tiled items only):
   tiles for Overlap/Parallelogram, trapezoid regions over all 2^d
   phases for Split.  Pure function of the plan and bindings; the
   executors' per-group "tiles" counters match these by construction. *)
let tile_counts (plan : C.Plan.t) env =
  let acc = ref [] in
  Array.iteri
    (fun k item ->
      match (item : C.Plan.item) with
      | C.Plan.Straight _ -> ()
      | C.Plan.Tiled g ->
        let total =
          match plan.opts.tiling with
          | C.Options.Overlap ->
            let _, _, n_tiles = overlap_layout g env in
            Array.fold_left ( * ) 1 n_tiles
          | C.Options.Parallelogram ->
            let _, _, n_tiles, _, _ = parallelogram_layout plan.pipe g env in
            Array.fold_left ( * ) 1 n_tiles
          | C.Options.Split ->
            let ncd = g.sched.n_cdims in
            let _, _, n_tiles, _, _ = split_layout plan.pipe g env in
            List.fold_left
              (fun acc mask ->
                let counts =
                  Array.init ncd (fun d ->
                      if mask land (1 lsl d) = 0 then n_tiles.(d)
                      else n_tiles.(d) + 1)
                in
                acc + Array.fold_left ( * ) 1 counts)
              0
              (List.init (1 lsl ncd) Fun.id)
        in
        acc := (k, total) :: !acc)
    plan.items;
  List.rev !acc

let group_counter gidx what =
  Metrics.counter (Printf.sprintf "exec/group%d/%s" gidx what)

type wmember = {
  mview : Eval.view;  (* where the stage writes (scratch or buffer) *)
  mbufview : Eval.view option;  (* full-buffer view for live-outs *)
  mscratch : float array option;  (* scratch storage, when used *)
  mcpieces : cpiece list;
  mcoords : int array;
  mneeds_zero : bool;  (* pieces may not cover the whole box *)
}

let exec_tiled pool (plan : C.Plan.t) env buffers images ~gidx
    (g : C.Plan.tiled) =
  Fault.hit "group_schedule";
  let opts = plan.opts in
  let pipe = plan.pipe in
  let sched = g.sched in
  let ncd = sched.n_cdims in
  let naive = opts.naive_overlap in
  let tau, space_lo, n_tiles = overlap_layout g env in
  let total_tiles = Array.fold_left ( * ) 1 n_tiles in
  let c_tiles = group_counter gidx "tiles" in
  let c_scratch = group_counter gidx "scratch_bytes" in
  let c_attach = group_counter gidx "scratch_attaches" in
  let nm = Array.length g.members in
  (* Allocate full buffers: live-outs always; every member when the
     scratchpad optimization is disabled. *)
  Array.iter
    (fun (m : C.Plan.member) ->
      if m.live_out || not opts.scratchpads then begin
        (* Scratchpad-backed members copy their owned box into the
           full buffer tile by tile, so an in-group live-out is fully
           overwritten even when its body is piecewise. *)
        let covered =
          body_covers_domain m.ms.func
          || (opts.scratchpads && m.used_in_group)
        in
        buffers.(m.ms.sidx) <-
          Some (alloc_buffer ~zero:(not covered) m.ms.func env)
      end)
    g.members;
  (* Concrete domains, widened/owned range computation per member. *)
  let doms = Array.map (fun (m : C.Plan.member) -> concrete_dom m.ms.func env) g.members in
  let widen_of (ms : Poly.Schedule.stage_sched) d =
    if naive then (ms.widen_l_naive.(d), ms.widen_r_naive.(d))
    else (ms.widen_l.(d), ms.widen_r.(d))
  in
  (* Per-worker compiled state. *)
  let key =
    Domain.DLS.new_key (fun () ->
        let wmembers = Array.make nm None in
        let local fid =
          (* in-group references read the member's scratch/buffer view *)
          let rec find k =
            if k >= nm then None
            else if g.members.(k).ms.func.Ast.fid = fid then
              Option.map (fun (w : wmember) -> w.mview) wmembers.(k)
            else find (k + 1)
          in
          find 0
        in
        let lookup = make_lookup pipe buffers images ~local in
        Array.iteri
          (fun k (m : C.Plan.member) ->
            let ms = m.ms in
            let f = ms.func in
            let use_scratch = m.used_in_group && opts.scratchpads in
            let mview, mscratch =
              if use_scratch then begin
                let ext = C.Storage.scratch_extents ~naive g env ms in
                let total = max 1 (Array.fold_left ( * ) 1 ext) in
                Fault.hit "alloc";
                Metrics.add c_scratch (total * 8);
                let data = Array.make total 0. in
                let strides =
                  let n = Array.length ext in
                  let s = Array.make n 1 in
                  for d = n - 2 downto 0 do
                    s.(d) <- s.(d + 1) * ext.(d + 1)
                  done;
                  s
                in
                let v = Eval.view_of_strides (f.fname ^ "[scratch]") strides in
                v.Eval.data <- data;
                (v, Some data)
              end
              else
                ( Eval.view_of_buffer f.fname
                    (Option.get buffers.(ms.sidx)),
                  None )
            in
            let mbufview =
              if m.live_out then
                Some
                  (Eval.view_of_buffer f.fname (Option.get buffers.(ms.sidx)))
              else None
            in
            let cases =
              match f.Ast.fbody with
              | Ast.Cases cs -> cs
              | _ ->
                Err.fail Err.Exec ~stage:f.Ast.fname
                  "Executor: non-pure stage in tiled group"
            in
            let pieces = pieces_of opts f env cases in
            let mcpieces = List.map (compile_cpiece opts f env lookup) pieces in
            let mneeds_zero =
              not
                (List.exists
                   (fun pc -> pc.pbox = None && pc.pcond = None)
                   pieces
                || List.exists
                     (fun pc ->
                       match pc.pbox with
                       | Some b -> b = doms.(k) && pc.pcond = None
                       | None -> false)
                     pieces)
            in
            wmembers.(k) <-
              Some { mview; mbufview; mscratch; mcpieces; mcoords = Array.make (Ast.func_arity f) 0; mneeds_zero })
          g.members;
        Array.map Option.get wmembers)
  in
  let run_tile t =
    Fault.hit "tile_body";
    Metrics.bump c_tiles;
    let wmembers = Domain.DLS.get key in
    (* tile index per canonical dim *)
    let tidx = Array.make ncd 0 in
    let rem = ref t in
    for d = ncd - 1 downto 0 do
      tidx.(d) <- !rem mod n_tiles.(d);
      rem := !rem / n_tiles.(d)
    done;
    let base = Array.init ncd (fun d -> space_lo.(d) + (tidx.(d) * tau.(d))) in
    Array.iteri
      (fun k (m : C.Plan.member) ->
        let ms = m.ms in
        let w = wmembers.(k) in
        let arity = Array.length w.mcoords in
        let widened = Array.make arity (0, 0) in
        let owned = Array.make arity (0, 0) in
        let start = Array.make arity 0 in
        for j = 0 to arity - 1 do
          let dlo, dhi = doms.(k).(j) in
          let d = ms.align.(j) in
          if d < 0 then begin
            widened.(j) <- (dlo, dhi);
            owned.(j) <- (dlo, dhi);
            start.(j) <- dlo
          end
          else begin
            let s = ms.scale.(j) in
            let wl, wr = widen_of ms d in
            let xlo = max dlo (ceil_div (base.(d) - wl) s) in
            let xhi = min dhi (floor_div (base.(d) + tau.(d) - 1 + wr) s) in
            widened.(j) <- (xlo, xhi);
            let olo = max dlo (ceil_div base.(d) s) in
            let ohi = min dhi (floor_div (base.(d) + tau.(d) - 1) s) in
            owned.(j) <- (olo, ohi);
            start.(j) <- xlo
          end
        done;
        let use_scratch = m.used_in_group && opts.scratchpads in
        if use_scratch then begin
          Eval.attach_scratch w.mview (Option.get w.mscratch) ~start;
          Metrics.bump c_attach
        end;
        (* Which box does this member compute in this tile? *)
        let box = if m.used_in_group then widened else owned in
        if not (box_empty box) then begin
          (* zero the window only when the pieces may not cover it in
             this tile (a single boxed piece covering the whole window
             is the common interior-tile case) *)
          let covered =
            match w.mcpieces with
            | [ { cbox = Some pb; ccond = None; _ } ] ->
              let ok = ref true in
              Array.iteri
                (fun d (lo, hi) ->
                  let plo, phi = pb.(d) in
                  if plo > lo || phi < hi then ok := false)
                box;
              !ok
            | _ -> false
          in
          if use_scratch && w.mneeds_zero && not covered then
            zero_box w.mview w.mcoords box;
          run_pieces ~vec:opts.vec ~ty:ms.func.Ast.ftyp w.mview w.mcoords
            w.mcpieces box;
          (* Live-outs computed in scratch: copy the owned region out. *)
          match w.mbufview with
          | Some bv when use_scratch ->
            if not (box_empty owned) then
              copy_box w.mview bv w.mcoords owned
          | _ -> ()
        end)
      g.members
  in
  Pool.parallel_for pool ~n:total_tiles run_tile

(* ---------- parallelogram tiling (paper §3.2 / Fig. 5) ----------

   The alternative tiling strategy the paper compares against: each
   stage's tile window is skewed by [height * slope] instead of being
   widened, so nothing is recomputed — but a tile depends on its left
   neighbours, execution is sequential (the paper: wavefront
   parallelism "effectively reduces to sequential execution"), and
   every member needs a full buffer since consumers read values across
   tile boundaries (no scratchpad storage optimization). *)

let exec_parallelogram (plan : C.Plan.t) env buffers images ~gidx
    (g : C.Plan.tiled) =
  let opts = plan.opts in
  let pipe = plan.pipe in
  let sched = g.sched in
  let ncd = sched.n_cdims in
  let height, _ = group_heights pipe g in
  (* Every member materializes. *)
  Array.iter
    (fun (m : C.Plan.member) ->
      buffers.(m.ms.sidx) <- Some (alloc_buffer m.ms.func env))
    g.members;
  let tau, space_lo, n_tiles, _, skew = parallelogram_layout pipe g env in
  let total_tiles = Array.fold_left ( * ) 1 n_tiles in
  let c_tiles = group_counter gidx "tiles" in
  let doms =
    Array.map (fun (m : C.Plan.member) -> concrete_dom m.ms.func env) g.members
  in
  (* Compile once (sequential: one worker's worth of state). *)
  let lookup = make_lookup pipe buffers images ~local:(fun _ -> None) in
  let compiled =
    Array.mapi
      (fun k (m : C.Plan.member) ->
        let f = m.ms.func in
        let cases =
          match f.Ast.fbody with
          | Ast.Cases cs -> cs
          | _ ->
            Err.fail Err.Exec ~stage:f.Ast.fname
              "Executor: non-pure stage in tiled group"
        in
        let cps =
          List.map (compile_cpiece opts f env lookup) (pieces_of opts f env cases)
        in
        ( cps,
          Eval.view_of_buffer f.fname (Option.get buffers.(m.ms.sidx)),
          Array.make (Ast.func_arity f) 0,
          height g.members.(k) ))
      g.members
  in
  let tidx = Array.make ncd 0 in
  for t = 0 to total_tiles - 1 do
    Metrics.bump c_tiles;
    let rem = ref t in
    for d = ncd - 1 downto 0 do
      tidx.(d) <- !rem mod n_tiles.(d);
      rem := !rem / n_tiles.(d)
    done;
    let base = Array.init ncd (fun d -> space_lo.(d) + (tidx.(d) * tau.(d))) in
    Array.iteri
      (fun k (m : C.Plan.member) ->
        let ms = m.ms in
        let cps, view, coords, h = compiled.(k) in
        let arity = Array.length coords in
        let box = Array.make arity (0, 0) in
        for j = 0 to arity - 1 do
          let dlo, dhi = doms.(k).(j) in
          let d = ms.align.(j) in
          if d < 0 then box.(j) <- (dlo, dhi)
          else begin
            let s = ms.scale.(j) in
            let shift = h * skew.(d) in
            let lo = max dlo (ceil_div (base.(d) + shift) s) in
            let hi = min dhi (floor_div (base.(d) + tau.(d) - 1 + shift) s) in
            box.(j) <- (lo, hi)
          end
        done;
        if not (box_empty box) then
          run_pieces ~vec:opts.vec ~ty:ms.func.Ast.ftyp view coords cps box)
      g.members
  done

(* ---------- split tiling (paper §3.2 / Fig. 5) ----------

   The two-phase strategy: upward-shrinking trapezoids first, then the
   complementary downward trapezoids rooted at the tile boundaries.
   With d tiled dimensions there are 2^d phases (one per subset of
   "downward" dimensions), executed in order of subset size; regions
   within a phase are independent and run in parallel.  No redundant
   computation, but values at trapezoid boundaries must stay live for
   the later phases, so every member gets a full buffer — the paper's
   reason to prefer overlapped tiling for storage optimization. *)

let exec_split pool (plan : C.Plan.t) env buffers images ~gidx
    (g : C.Plan.tiled) =
  let opts = plan.opts in
  let pipe = plan.pipe in
  let sched = g.sched in
  let ncd = sched.n_cdims in
  let height, h_max = group_heights pipe g in
  (* level-from-bottom ell = h_max - height *)
  Array.iter
    (fun (m : C.Plan.member) ->
      buffers.(m.ms.sidx) <- Some (alloc_buffer m.ms.func env))
    g.members;
  let tau, space_lo, n_tiles, _, sigma = split_layout pipe g env in
  let c_tiles = group_counter gidx "tiles" in
  let doms =
    Array.map (fun (m : C.Plan.member) -> concrete_dom m.ms.func env) g.members
  in
  (* Per-worker compiled state (full-buffer views only). *)
  let key =
    Domain.DLS.new_key (fun () ->
        let lookup = make_lookup pipe buffers images ~local:(fun _ -> None) in
        Array.map
          (fun (m : C.Plan.member) ->
            let f = m.ms.func in
            let cases =
              match f.Ast.fbody with
              | Ast.Cases cs -> cs
              | _ ->
                Err.fail Err.Exec ~stage:f.Ast.fname
                  "Executor: non-pure stage in tiled group"
            in
            let cps =
              List.map (compile_cpiece opts f env lookup)
                (pieces_of opts f env cases)
            in
            ( cps,
              Eval.view_of_buffer f.fname (Option.get buffers.(m.ms.sidx)),
              Array.make (Ast.func_arity f) 0 ))
          g.members)
  in
  (* Phase = bitmask of "downward" dimensions. *)
  let run_region mask (idx : int array) =
    Fault.hit "tile_body";
    Metrics.bump c_tiles;
    let compiled = Domain.DLS.get key in
    Array.iteri
      (fun k (m : C.Plan.member) ->
        let ms = m.ms in
        let cps, view, coords = compiled.(k) in
        let ell = h_max - height m in
        let arity = Array.length coords in
        let box = Array.make arity (0, 0) in
        for j = 0 to arity - 1 do
          let dlo, dhi = doms.(k).(j) in
          let d = ms.align.(j) in
          if d < 0 then box.(j) <- (dlo, dhi)
          else begin
            let s = ms.scale.(j) in
            let shrink = ell * sigma.(d) in
            let wlo, whi =
              if mask land (1 lsl d) = 0 then begin
                (* upward trapezoid of tile idx.(d) *)
                let base = space_lo.(d) + (idx.(d) * tau.(d)) in
                (base + shrink, base + tau.(d) - 1 - shrink)
              end
              else begin
                (* downward trapezoid at boundary idx.(d) *)
                let b = space_lo.(d) + (idx.(d) * tau.(d)) in
                (b - shrink, b + shrink - 1)
              end
            in
            box.(j) <- (max dlo (ceil_div wlo s), min dhi (floor_div whi s))
          end
        done;
        if not (box_empty box) then
          run_pieces ~vec:opts.vec ~ty:ms.func.Ast.ftyp view coords cps box)
      g.members
  in
  (* Enumerate phases by popcount, regions within a phase in parallel. *)
  let masks = List.init (1 lsl ncd) (fun m -> m) in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  List.iter
    (fun mask ->
      let counts =
        Array.init ncd (fun d ->
            if mask land (1 lsl d) = 0 then n_tiles.(d) else n_tiles.(d) + 1)
      in
      let total = Array.fold_left ( * ) 1 counts in
      Pool.parallel_for pool ~n:total (fun t ->
          let idx = Array.make ncd 0 in
          let rem = ref t in
          for d = ncd - 1 downto 0 do
            idx.(d) <- !rem mod counts.(d);
            rem := !rem / counts.(d)
          done;
          run_region mask idx))
    (List.sort (fun a b -> compare (popcount a) (popcount b)) masks)

(* ---------- driver ---------- *)

let run ?pool (plan : C.Plan.t) env ~images =
  Fault.ensure plan.opts.fault;
  if plan.opts.trace then begin
    Trace.enable ();
    Metrics.enable ()
  end;
  let pipe = plan.pipe in
  (* Check provided images. *)
  List.iter
    (fun (im : Ast.image) ->
      if not (List.exists (fun (jm, _) -> Ast.image_equal im jm) images) then
        Err.failf Err.Exec ~stage:im.iname
          "Executor.run: input image %s not provided" im.iname)
    pipe.images;
  let buffers = Array.make (Pipeline.n_stages pipe) None in
  let go pool =
    Trace.with_span ~cat:"exec" "exec.run" (fun () ->
        Array.iteri
          (fun k item ->
            match (item : C.Plan.item) with
            | C.Plan.Straight i ->
              Trace.with_span ~cat:"exec"
                ("exec.straight." ^ pipe.stages.(i).Ast.fname) (fun () ->
                  exec_straight pool plan env buffers images i)
            | C.Plan.Tiled g ->
              Trace.with_span ~cat:"exec"
                (Printf.sprintf "exec.group%d" k)
                ~args:
                  [ ("members", string_of_int (Array.length g.members)) ]
                (fun () ->
                  match plan.opts.tiling with
                  | C.Options.Overlap ->
                    exec_tiled pool plan env buffers images ~gidx:k g
                  | C.Options.Parallelogram ->
                    exec_parallelogram plan env buffers images ~gidx:k g
                  | C.Options.Split ->
                    exec_split pool plan env buffers images ~gidx:k g))
          plan.items);
    let outputs =
      List.map2
        (fun src f ->
          let i = Pipeline.stage_index pipe f in
          (src, Option.get buffers.(i)))
        plan.source_outputs pipe.outputs
    in
    { buffers; outputs }
  in
  match pool with
  | Some p -> go p
  | None -> Pool.with_pool plan.opts.workers go

(* Graceful degradation (ladder): run the plan as given; on failure,
   recompile from the user's outputs with the risky machinery switched
   off rung by rung and retry.  The injector's one-shot semantics (see
   Fault) make a retry observe an injected fault as consumed, so the
   ladder recovers from every injectable failure; genuine bugs that
   survive even naive execution are re-raised from the last rung. *)
let run_safe ?pool (plan : C.Plan.t) env ~images =
  Fault.ensure plan.opts.fault;
  let rungs =
    [
      ("opt+vec+kernels", fun () -> plan);
      ( "opt",
        fun () ->
          C.Compile.run
            { plan.opts with C.Options.vec = false; kernels = false }
            ~outputs:plan.source_outputs );
      ( "naive",
        fun () ->
          C.Compile.run
            {
              plan.opts with
              C.Options.vec = false;
              kernels = false;
              grouping_on = false;
            }
            ~outputs:plan.source_outputs );
    ]
  in
  let degradations = ref [] in
  let rec go = function
    | [] -> assert false
    | (name, mk) :: rest -> (
      match run ?pool (mk ()) env ~images with
      | r -> (r, List.rev !degradations)
      | exception e ->
        if rest = [] then Err.reraise e
        else begin
          Metrics.bumpn "exec/degradations";
          Trace.instant ~cat:"exec" ("degrade:" ^ name)
            ~args:[ ("error", Format.asprintf "%a" Err.pp (Err.of_exn e)) ];
          degradations := { rung = name; error = Err.of_exn e } :: !degradations;
          go rest
        end)
  in
  go rungs

let output_buffer r f =
  match List.find_opt (fun (g, _) -> Ast.func_equal f g) r.outputs with
  | Some (_, b) -> b
  | None -> raise Not_found
