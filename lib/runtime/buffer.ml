open Polymage_ir

type t = {
  data : float array;
  lo : int array;
  dims : int array;
  strides : int array;
}

let strides_of dims =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for d = n - 2 downto 0 do
    s.(d) <- s.(d + 1) * dims.(d + 1)
  done;
  s

let create ~lo ~dims =
  Array.iter
    (fun e -> if e < 0 then invalid_arg "Buffer.create: negative extent")
    dims;
  let total = Array.fold_left ( * ) 1 dims in
  { data = Array.make (max total 1) 0.; lo; dims; strides = strides_of dims }

(* Skip the zero fill: for buffers the caller proves fully overwritten
   (a stage with an unconditional case, or a scratch-to-buffer copy
   covering every owned cell) the O(n) clear on the allocation path is
   pure waste.  Degenerate (empty) domains keep the zeroed 1-cell
   allocation so checksum folds over [data] stay deterministic. *)
let create_uninit ~lo ~dims =
  Array.iter
    (fun e -> if e < 0 then invalid_arg "Buffer.create_uninit: negative extent")
    dims;
  let total = Array.fold_left ( * ) 1 dims in
  let data = if total = 0 then Array.make 1 0. else Array.create_float total in
  { data; lo; dims; strides = strides_of dims }

let geometry_of_func (f : Ast.func) env =
  let lo, dims =
    List.split
      (List.map
         (fun (iv : Interval.t) ->
           let l, h = Interval.eval iv env in
           (l, max 0 (h - l + 1)))
         f.fdom)
  in
  (Array.of_list lo, Array.of_list dims)

let of_func (f : Ast.func) env =
  let lo, dims = geometry_of_func f env in
  create ~lo ~dims

let of_func_uninit (f : Ast.func) env =
  let lo, dims = geometry_of_func f env in
  create_uninit ~lo ~dims

let of_image (im : Ast.image) env gen =
  let dims =
    Array.of_list (List.map (fun e -> max 0 (Abound.eval e env)) im.iextents)
  in
  let b = create ~lo:(Array.make (Array.length dims) 0) ~dims in
  let n = Array.length dims in
  let coords = Array.make n 0 in
  let rec go d pos =
    if d = n then b.data.(pos) <- gen coords
    else
      for x = 0 to dims.(d) - 1 do
        coords.(d) <- x;
        go (d + 1) (pos + (x * b.strides.(d)))
      done
  in
  if Array.fold_left ( * ) 1 dims > 0 then go 0 0;
  b

let rank b = Array.length b.dims

let index_exn b coords =
  let n = Array.length b.dims in
  if Array.length coords <> n then
    invalid_arg "Buffer: coordinate rank mismatch";
  let pos = ref 0 in
  for d = 0 to n - 1 do
    let x = coords.(d) - b.lo.(d) in
    if x < 0 || x >= b.dims.(d) then
      invalid_arg
        (Printf.sprintf "Buffer: index %d out of [%d, %d) in dim %d"
           coords.(d) b.lo.(d) (b.lo.(d) + b.dims.(d)) d);
    pos := !pos + (x * b.strides.(d))
  done;
  !pos

let get b coords = b.data.(index_exn b coords)
let set b coords v = b.data.(index_exn b coords) <- v

let offset_of_origin b =
  let pos = ref 0 in
  for d = 0 to Array.length b.dims - 1 do
    pos := !pos - (b.lo.(d) * b.strides.(d))
  done;
  !pos

let size b = Array.fold_left ( * ) 1 b.dims
let fill b v = Array.fill b.data 0 (Array.length b.data) v

let max_abs_diff a b =
  if a.dims <> b.dims then Float.nan
  else begin
    let m = ref 0. in
    let n = size a in
    for i = 0 to n - 1 do
      let d = Float.abs (a.data.(i) -. b.data.(i)) in
      if d > !m || Float.is_nan d then m := d
    done;
    !m
  end

let equal ?(eps = 0.) a b =
  a.dims = b.dims && a.lo = b.lo
  &&
  let d = max_abs_diff a b in
  (not (Float.is_nan d)) && d <= eps
