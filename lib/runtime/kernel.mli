(** Flat row kernels for the native executor.

    The closure compiler ({!Eval.compile}) turns each AST node into an
    [int array -> float] closure; evaluating a pixel then walks a tree
    of indirect calls, each of which boxes its float result.  This
    module instead compiles a stage body into a flat instruction tape
    over a preallocated float register file, with three optimizations:

    - {b common-subexpression elimination} — the body is hash-consed
      into a DAG, so a shared subexpression is computed once per pixel
      (or once per row, see below) no matter how often it occurs;
    - {b access cursors} — a stage/image reference whose indices are
      affine in the loop variables is strength-reduced to a flat
      position that advances by a constant per pixel, replacing the
      per-pixel multiply-and-sum of the closure path;
    - {b loop-invariant hoisting} — maximal subtrees independent of
      the innermost variable are evaluated once per row.

    [Select] arms (and comparison operands) compile to nested lazy
    sub-tapes: only the taken branch executes, preserving the guarding
    semantics of the closure path (a select arm may be out-of-window
    when not taken).  Anything the tape cannot express — non-affine
    accesses, unbound parameters — falls back to an embedded closure
    for that subtree, so compilation never changes semantics.

    All arithmetic replicates {!Eval} operation by operation, so a
    kernel is bit-identical to the closure path. *)

open Polymage_ir

type t

type info = {
  n_regs : int;
  n_invariant : int;  (** instructions run once per row *)
  n_inner : int;  (** instructions run once per pixel *)
  n_cursors : int;  (** strength-reduced accesses *)
}

val stats : t -> info

val affine_of :
  vars:Types.var list ->
  bindings:Types.bindings ->
  Ast.expr ->
  (int array * int) option
(** [affine_of ~vars ~bindings e] is [Some (coefs, const)] when [e]
    equals [const + sum coefs.(i) * vars_i] for all variable values,
    with parameters folded via [bindings]; [None] when [e] is not
    affine in [vars] (or a parameter is unbound).  Exposed for
    property tests of cursor stride computation. *)

val compile :
  unsafe:bool ->
  vars:Types.var list ->
  bindings:Types.bindings ->
  lookup:(Eval.source -> Eval.view) ->
  self:int ->
  Ast.expr ->
  t option
(** Compile a stage body to a row kernel.  [vars] orders the
    coordinate array (last = innermost); [self] is the [fid] of the
    stage being computed — reads of it are never hoisted, since the
    row being written may alias them.  Returns [None] when the body
    would degenerate to a single fallback closure (no advantage) or
    the stage has no variables.  Like {!Eval.compile}, [lookup] is
    called once per reference site at compile time, so the kernel must
    be built where the closure would have been (per worker, after
    views exist). *)

val run_row :
  t ->
  vec:bool ->
  ty:Types.scalar ->
  data:float array ->
  pos0:int ->
  dstride:int ->
  coords:int array ->
  lo:int ->
  hi:int ->
  unit
(** Evaluate one row: for [j] from [lo] to [hi], set the innermost
    coordinate to [j] and store the clamped result at
    [pos0 + (j - lo) * dstride] in [data].  Outer coordinates must
    already be set in [coords] (its innermost slot is clobbered).
    [vec] selects the 4x-unrolled loop with unchecked stores,
    mirroring the closure path's vectorized row loop. *)
