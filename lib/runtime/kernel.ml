open Polymage_ir

(* ------------------------------------------------------------------ *)
(* Affine analysis of index expressions                                 *)
(* ------------------------------------------------------------------ *)

exception Nonaffine

let var_index vars v =
  let rec go i = function
    | [] -> raise Nonaffine
    | w :: tl -> if Types.var_equal v w then i else go (i + 1) tl
  in
  go 0 vars

let affine_of ~vars ~bindings e =
  let n = List.length vars in
  let coefs = Array.make n 0 in
  let const = ref 0 in
  let const_of e =
    match e with
    | Ast.Const x when Float.is_integer x -> Some (int_of_float x)
    | Ast.Param p -> (
      match Types.bind_exn bindings p with
      | k -> Some k
      | exception Not_found -> raise Nonaffine)
    | _ -> None
  in
  let rec go mult e =
    match const_of e with
    | Some k -> const := !const + (mult * k)
    | None -> (
      match e with
      | Ast.Var v ->
        let i = var_index vars v in
        coefs.(i) <- coefs.(i) + mult
      | Ast.Binop (Add, a, b) ->
        go mult a;
        go mult b
      | Ast.Binop (Sub, a, b) ->
        go mult a;
        go (-mult) b
      | Ast.Unop (Neg, a) -> go (-mult) a
      | Ast.Binop (Mul, a, b) -> (
        match const_of a with
        | Some k -> go (mult * k) b
        | None -> (
          match const_of b with
          | Some k -> go (mult * k) a
          | None -> raise Nonaffine))
      | _ -> raise Nonaffine)
  in
  match go 1 e with
  | () -> Some (coefs, !const)
  | exception Nonaffine -> None

(* ------------------------------------------------------------------ *)
(* Affine select conditions                                             *)
(* ------------------------------------------------------------------ *)

let floor_div = Polymage_util.Intmath.floor_div
let ceil_div = Polymage_util.Intmath.ceil_div

(* A select condition that is affine in the loop variables, resolved
   at row setup into the interval of innermost coordinates where it
   holds (exact integer arithmetic, so it decides exactly as the
   per-pixel float comparison would).  The per-pixel test is then two
   integer compares instead of evaluating comparison sub-tapes — the
   common case: inlining guards every inlined producer with its
   domain's [in_box] condition. *)
type acond =
  | Acmp of Ast.cmp * int array * int
      (* lhs - rhs as (coefs, const); [Ne] only when the innermost
         coefficient is 0 (its true-set is not an interval) *)
  | Aand of acond * acond
  | Aor of acond * acond  (* both sides row-invariant *)
  | Anot of acond  (* row-invariant argument *)

type iselect = {
  iacond : acond;
  ijvar : int;  (* innermost coordinate slot *)
  mutable itlo : int;  (* condition holds iff itlo <= j <= ithi *)
  mutable ithi : int;
}

(* Classify a condition as affine in the loop variables.  Returns the
   compiled tree and whether it depends on the innermost variable.
   [Or] over innermost-dependent sides and [Not] of them are rejected
   (their true-set need not be an interval), as is [Ne]. *)
let acond_of_cond ~vars ~bindings c =
  let n = List.length vars in
  let rec go c =
    match c with
    | Ast.Cmp (op, a, b) -> (
      match (affine_of ~vars ~bindings a, affine_of ~vars ~bindings b) with
      | Some (ca, ka), Some (cb, kb) ->
        let d = Array.init n (fun i -> ca.(i) - cb.(i)) in
        let jdep = n > 0 && d.(n - 1) <> 0 in
        if jdep && op = Ast.Ne then None else Some (Acmp (op, d, ka - kb), jdep)
      | _ -> None)
    | Ast.And (a, b) -> (
      match (go a, go b) with
      | Some (na, ja), Some (nb, jb) -> Some (Aand (na, nb), ja || jb)
      | _ -> None)
    | Ast.Or (a, b) -> (
      match (go a, go b) with
      | Some (na, false), Some (nb, false) -> Some (Aor (na, nb), false)
      | _ -> None)
    | Ast.Not a -> (
      match go a with
      | Some (na, false) -> Some (Anot na, false)
      | _ -> None)
  in
  go c

(* Interval of innermost coordinates where [k*j + b >= 0], k <> 0. *)
let ge_interval k b =
  if k > 0 then (ceil_div (-b) k, max_int) else (min_int, floor_div b (-k))

let whole = (min_int, max_int)
let empty = (max_int, min_int)

(* Evaluate at row start: outer coordinates are set in [coords]. *)
let rec eval_acond coords nv c =
  match c with
  | Acmp (op, coefs, k0) ->
    let b = ref k0 in
    for v = 0 to nv - 2 do
      b := !b + (coefs.(v) * Array.unsafe_get coords v)
    done;
    let b = !b and k = coefs.(nv - 1) in
    if k = 0 then begin
      let t =
        match op with
        | Ast.Lt -> b < 0
        | Ast.Le -> b <= 0
        | Ast.Gt -> b > 0
        | Ast.Ge -> b >= 0
        | Ast.Eq -> b = 0
        | Ast.Ne -> b <> 0
      in
      if t then whole else empty
    end
    else begin
      match op with
      | Ast.Ge -> ge_interval k b
      | Ast.Gt -> ge_interval k (b - 1)
      | Ast.Le -> ge_interval (-k) (-b)
      | Ast.Lt -> ge_interval (-k) (-b - 1)
      | Ast.Eq -> if -b mod k = 0 then let j0 = -b / k in (j0, j0) else empty
      | Ast.Ne -> assert false (* rejected by acond_of_cond *)
    end
  | Aand (a, b) ->
    let lo1, hi1 = eval_acond coords nv a and lo2, hi2 = eval_acond coords nv b in
    (max lo1 lo2, min hi1 hi2)
  | Aor (a, b) ->
    (* both row-invariant: whole or empty *)
    let lo1, hi1 = eval_acond coords nv a and lo2, hi2 = eval_acond coords nv b in
    (min lo1 lo2, max hi1 hi2)
  | Anot a ->
    (* row-invariant argument: its interval is whole or empty *)
    let lo, hi = eval_acond coords nv a in
    if lo <= hi then empty else whole

(* ------------------------------------------------------------------ *)
(* Hash-consing keys: structural equality with funcs/images/vars        *)
(* compared by identity (func bodies may be cyclic through self-        *)
(* recursion, so generic structural equality must not be used).         *)
(* ------------------------------------------------------------------ *)

(* Constants compare by bit pattern: merging 0. with -0. (numerically
   equal) would change stored bits downstream. *)
let const_equal x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let rec eq_expr a b =
  a == b
  ||
  match (a, b) with
  | Ast.Const x, Ast.Const y -> const_equal x y
  | Ast.Var v, Ast.Var w -> Types.var_equal v w
  | Ast.Param p, Ast.Param q -> Types.param_equal p q
  | Ast.Call (f, xs), Ast.Call (g, ys) -> f.Ast.fid = g.Ast.fid && eq_args xs ys
  | Ast.Img (im, xs), Ast.Img (jm, ys) ->
    im.Ast.iid = jm.Ast.iid && eq_args xs ys
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
    o1 = o2 && eq_expr a1 a2 && eq_expr b1 b2
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) -> o1 = o2 && eq_expr a1 a2
  | Ast.IDiv (a1, n1), Ast.IDiv (a2, n2) -> n1 = n2 && eq_expr a1 a2
  | Ast.IMod (a1, n1), Ast.IMod (a2, n2) -> n1 = n2 && eq_expr a1 a2
  | Ast.Select (c1, a1, b1), Ast.Select (c2, a2, b2) ->
    eq_cond c1 c2 && eq_expr a1 a2 && eq_expr b1 b2
  | Ast.Cast (t1, a1), Ast.Cast (t2, a2) ->
    Types.scalar_equal t1 t2 && eq_expr a1 a2
  | _ -> false

and eq_args xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> eq_expr x y && eq_args xs ys
  | _ -> false

and eq_cond a b =
  match (a, b) with
  | Ast.Cmp (o1, a1, b1), Ast.Cmp (o2, a2, b2) ->
    o1 = o2 && eq_expr a1 a2 && eq_expr b1 b2
  | Ast.And (a1, b1), Ast.And (a2, b2) | Ast.Or (a1, b1), Ast.Or (a2, b2) ->
    eq_cond a1 a2 && eq_cond b1 b2
  | Ast.Not a1, Ast.Not a2 -> eq_cond a1 a2
  | _ -> false

let hc h v = (h * 31) + v

let rec hash_expr e =
  match e with
  | Ast.Const x -> hc 3 (Hashtbl.hash (Int64.bits_of_float x))
  | Ast.Var v -> hc 5 v.Types.vid
  | Ast.Param p -> hc 7 p.Types.pid
  | Ast.Call (f, xs) -> List.fold_left (fun h a -> hc h (hash_expr a)) (hc 11 f.Ast.fid) xs
  | Ast.Img (im, xs) ->
    List.fold_left (fun h a -> hc h (hash_expr a)) (hc 13 im.Ast.iid) xs
  | Ast.Binop (op, a, b) ->
    hc (hc (hc 17 (Hashtbl.hash op)) (hash_expr a)) (hash_expr b)
  | Ast.Unop (op, a) -> hc (hc 19 (Hashtbl.hash op)) (hash_expr a)
  | Ast.IDiv (a, n) -> hc (hc 23 n) (hash_expr a)
  | Ast.IMod (a, n) -> hc (hc 29 n) (hash_expr a)
  | Ast.Select (c, a, b) ->
    hc (hc (hc 31 (hash_cond c)) (hash_expr a)) (hash_expr b)
  | Ast.Cast (ty, a) -> hc (hc 37 (Hashtbl.hash ty)) (hash_expr a)

and hash_cond c =
  match c with
  | Ast.Cmp (op, a, b) ->
    hc (hc (hc 41 (Hashtbl.hash op)) (hash_expr a)) (hash_expr b)
  | Ast.And (a, b) -> hc (hc 43 (hash_cond a)) (hash_cond b)
  | Ast.Or (a, b) -> hc (hc 47 (hash_cond a)) (hash_cond b)
  | Ast.Not a -> hc 53 (hash_cond a)

module H = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = eq_expr
  let hash = hash_expr
end)

(* ------------------------------------------------------------------ *)
(* Compiled form                                                        *)
(* ------------------------------------------------------------------ *)

(* An affine buffer access, strength-reduced: the flattened position
   is an affine function of the loop coordinates, so the row loop
   advances it by a constant [cdelta] instead of recomputing the
   multiply-and-sum per pixel.  [cview] is the (repositionable) window
   the executor moves between tiles; [cpos] is recomputed from
   [cview.off] at every row start. *)
type cursor = {
  cview : Eval.view;
  ccoefs : int array;  (* position coefficient per loop variable *)
  cconst : int;  (* position constant (excluding view offset) *)
  cdelta : int;  (* = ccoefs.(innermost) *)
  mutable cpos : int;
}

(* One instruction of the flat tape.  The first [int] of every
   constructor is the destination register. *)
type instr =
  | Oconst of int * float
  | Ovar of int * int  (* coordinate position *)
  | Oload of int * cursor
  | Oopaque of int * (int array -> float)  (* closure fallback *)
  | Oadd of int * int * int
  | Osub of int * int * int
  | Omul of int * int * int
  | Odiv of int * int * int
  | Omin of int * int * int
  | Omax of int * int * int
  | Opow of int * int * int
  | Oneg of int * int
  | Oabs of int * int
  | Osqrt of int * int
  | Oexp of int * int
  | Olog of int * int
  | Ofloor of int * int
  | Oidiv of int * int * float
  | Oimod of int * int * float
  | Ocast of int * Types.scalar * int
  | Oselect of int * sdec * instr array * int * instr array * int
      (* arms are lazy sub-tapes: only the taken branch executes,
         preserving the closure path's guarding semantics *)

and sdec = Saff of iselect | Sdyn of scond

and scond =
  | Scmp of Ast.cmp * instr array * int * instr array * int
  | Sand of scond * scond
  | Sor of scond * scond
  | Snot of scond

type t = {
  nvars : int;
  regs : float array;
  cursors : cursor array;
  iselects : iselect array;  (* affine selects to resolve per row *)
  invariant : instr array;  (* once per row *)
  inner : instr array;  (* once per pixel *)
  root : int;
  unsafe : bool;
}

type info = {
  n_regs : int;
  n_invariant : int;
  n_inner : int;
  n_cursors : int;
}

let stats t =
  {
    n_regs = Array.length t.regs;
    n_invariant = Array.length t.invariant;
    n_inner = Array.length t.inner;
    n_cursors = Array.length t.cursors;
  }

(* ------------------------------------------------------------------ *)
(* Compilation                                                          *)
(* ------------------------------------------------------------------ *)

type node = {
  shape : nshape;
  n_inner : bool;  (* value depends on the innermost variable *)
  n_self : bool;  (* transitively reads the stage being computed *)
}

and nshape =
  | Nconst of float
  | Nvar of int
  | Ncursor of cursor
  | Nopaque of (int array -> float)
  | Nbin of Ast.binop * int * int
  | Nun of Ast.unop * int
  | Nidiv of int * int
  | Nimod of int * int
  | Ncast of Types.scalar * int
  | Nselect of nsel * int * int

and nsel = NSaff of iselect | NSdyn of ncond

and ncond =
  | NCcmp of Ast.cmp * int * int
  | NCand of ncond * ncond
  | NCor of ncond * ncond
  | NCnot of ncond

let compile ~unsafe ~vars ~bindings ~lookup ~self e =
  let nvars = List.length vars in
  if nvars = 0 then None
  else begin
    let e = Expr.simplify e in
    let inner_var = List.nth vars (nvars - 1) in
    let tbl = H.create 64 in
    let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
    let n_nodes = ref 0 in
    let cursors = ref [] in
    let iselects = ref [] in
    let add shape n_inner n_self =
      let id = !n_nodes in
      incr n_nodes;
      Hashtbl.replace nodes id { shape; n_inner; n_self };
      id
    in
    let node id = Hashtbl.find nodes id in
    let inner1 a = (node a).n_inner and self1 a = (node a).n_self in
    (* Fallback: compile the whole subtree with the closure compiler.
       Bit-identical to the pre-kernel executor by construction. *)
    let mk_opaque sub =
      let f = Eval.compile ~unsafe ~vars ~bindings ~lookup sub in
      let uses_inner =
        List.exists (Types.var_equal inner_var) (Expr.free_vars sub)
      in
      let reads_self = ref false in
      Expr.iter
        ~on_call:(fun (g : Ast.func) _ ->
          if g.Ast.fid = self then reads_self := true)
        sub;
      add (Nopaque f) uses_inner !reads_self
    in
    let mk_access whole src is_self args =
      match
        List.map
          (fun a ->
            match affine_of ~vars ~bindings (Expr.simplify a) with
            | Some af -> af
            | None -> raise Nonaffine)
          args
      with
      | affs ->
        let v : Eval.view = lookup src in
        let nd = List.length affs in
        if Array.length v.Eval.strides <> nd then mk_opaque whole
        else begin
          let ccoefs = Array.make nvars 0 in
          let cconst = ref 0 in
          List.iteri
            (fun d (coefs, k) ->
              let s = v.Eval.strides.(d) in
              for i = 0 to nvars - 1 do
                ccoefs.(i) <- ccoefs.(i) + (s * coefs.(i))
              done;
              cconst := !cconst + (s * k))
            affs;
          let cur =
            {
              cview = v;
              ccoefs;
              cconst = !cconst;
              cdelta = ccoefs.(nvars - 1);
              cpos = 0;
            }
          in
          cursors := cur :: !cursors;
          add (Ncursor cur) (cur.cdelta <> 0) is_self
        end
      | exception Nonaffine -> mk_opaque whole
    in
    let rec cons e =
      match H.find_opt tbl e with
      | Some id -> id
      | None ->
        let id =
          match e with
          | Ast.Const x -> add (Nconst x) false false
          | Ast.Param p -> (
            match Types.bind_exn bindings p with
            | k -> add (Nconst (float_of_int k)) false false
            | exception Not_found -> mk_opaque e (* raises like Eval *))
          | Ast.Var v -> (
            match var_index vars v with
            | i -> add (Nvar i) (Types.var_equal v inner_var) false
            | exception Nonaffine -> mk_opaque e)
          | Ast.Call (f, args) ->
            mk_access e (Eval.Src_func f.Ast.fid) (f.Ast.fid = self) args
          | Ast.Img (im, args) -> mk_access e (Eval.Src_img im.Ast.iid) false args
          | Ast.Binop (op, a, b) ->
            let ia = cons a in
            let ib = cons b in
            add (Nbin (op, ia, ib)) (inner1 ia || inner1 ib)
              (self1 ia || self1 ib)
          | Ast.Unop (op, a) ->
            let ia = cons a in
            add (Nun (op, ia)) (inner1 ia) (self1 ia)
          | Ast.IDiv (a, n) ->
            let ia = cons a in
            add (Nidiv (ia, n)) (inner1 ia) (self1 ia)
          | Ast.IMod (a, n) ->
            let ia = cons a in
            add (Nimod (ia, n)) (inner1 ia) (self1 ia)
          | Ast.Cast (ty, a) ->
            let ia = cons a in
            add (Ncast (ty, ia)) (inner1 ia) (self1 ia)
          | Ast.Select (c, a, b) -> (
            let ia = cons a in
            let ib = cons b in
            match acond_of_cond ~vars ~bindings c with
            | Some (ac, jdep) ->
              let isel =
                { iacond = ac; ijvar = nvars - 1; itlo = 0; ithi = -1 }
              in
              iselects := isel :: !iselects;
              add
                (Nselect (NSaff isel, ia, ib))
                (jdep || inner1 ia || inner1 ib)
                (self1 ia || self1 ib)
            | None ->
              let nc, ci, cs = cons_cond c in
              add
                (Nselect (NSdyn nc, ia, ib))
                (ci || inner1 ia || inner1 ib)
                (cs || self1 ia || self1 ib))
        in
        H.replace tbl e id;
        id
    and cons_cond c =
      match c with
      | Ast.Cmp (op, a, b) ->
        let ia = cons a in
        let ib = cons b in
        ( NCcmp (op, ia, ib),
          inner1 ia || inner1 ib,
          self1 ia || self1 ib )
      | Ast.And (a, b) ->
        let na, ia, sa = cons_cond a in
        let nb, ib, sb = cons_cond b in
        (NCand (na, nb), ia || ib, sa || sb)
      | Ast.Or (a, b) ->
        let na, ia, sa = cons_cond a in
        let nb, ib, sb = cons_cond b in
        (NCor (na, nb), ia || ib, sa || sb)
      | Ast.Not a ->
        let na, ia, sa = cons_cond a in
        (NCnot na, ia, sa)
    in
    let root = cons e in
    (* A kernel that degenerates to one closure call has no advantage
       over the closure path: report "not compilable". *)
    match (node root).shape with
    | Nopaque _ -> None
    | _ ->
      (* ---- schedule the DAG into tapes ---- *)
      let hoistable id =
        let n = node id in
        (not n.n_inner) && not n.n_self
      in
      let rec emit buf avail id =
        if not (Hashtbl.mem avail id) then begin
          let n = node id in
          let ins =
            match n.shape with
            | Nconst x -> Oconst (id, x)
            | Nvar i -> Ovar (id, i)
            | Ncursor cur -> Oload (id, cur)
            | Nopaque f -> Oopaque (id, f)
            | Nbin (op, a, b) -> (
              emit buf avail a;
              emit buf avail b;
              match op with
              | Add -> Oadd (id, a, b)
              | Sub -> Osub (id, a, b)
              | Mul -> Omul (id, a, b)
              | Div -> Odiv (id, a, b)
              | Min -> Omin (id, a, b)
              | Max -> Omax (id, a, b)
              | Pow -> Opow (id, a, b))
            | Nun (op, a) -> (
              emit buf avail a;
              match op with
              | Neg -> Oneg (id, a)
              | Abs -> Oabs (id, a)
              | Sqrt -> Osqrt (id, a)
              | Exp -> Oexp (id, a)
              | Log -> Olog (id, a)
              | Floor -> Ofloor (id, a))
            | Nidiv (a, k) ->
              emit buf avail a;
              Oidiv (id, a, float_of_int k)
            | Nimod (a, k) ->
              emit buf avail a;
              Oimod (id, a, float_of_int k)
            | Ncast (ty, a) ->
              emit buf avail a;
              Ocast (id, ty, a)
            | Nselect (sel, a, b) ->
              let sd =
                match sel with
                | NSaff s -> Saff s
                | NSdyn c -> Sdyn (emit_cond avail c)
              in
              let bt = emit_block avail a in
              let be = emit_block avail b in
              Oselect (id, sd, bt, a, be, b)
          in
          Hashtbl.replace avail id ();
          buf := ins :: !buf
        end
      and emit_block avail root =
        (* lazily-executed fragment: additions to availability must not
           leak to code that runs unconditionally *)
        let local = Hashtbl.copy avail in
        let buf = ref [] in
        emit buf local root;
        Array.of_list (List.rev !buf)
      and emit_cond avail c =
        match c with
        | NCcmp (op, a, b) ->
          Scmp (op, emit_block avail a, a, emit_block avail b, b)
        | NCand (a, b) -> Sand (emit_cond avail a, emit_cond avail b)
        | NCor (a, b) -> Sor (emit_cond avail a, emit_cond avail b)
        | NCnot a -> Snot (emit_cond avail a)
      in
      let avail = Hashtbl.create 64 in
      let inv_buf = ref [] in
      (* Hoist pass: walk the unconditionally-evaluated spine and move
         every maximal row-invariant subtree to the per-row tape.
         Select arms stay lazy, so they are never entered here. *)
      let rec hoist id =
        if hoistable id then emit inv_buf avail id
        else
          match (node id).shape with
          | Nbin (_, a, b) ->
            hoist a;
            hoist b
          | Nun (_, a) | Nidiv (a, _) | Nimod (a, _) | Ncast (_, a) -> hoist a
          | Nselect _ | Nconst _ | Nvar _ | Ncursor _ | Nopaque _ -> ()
      in
      hoist root;
      let inner_buf = ref [] in
      emit inner_buf avail root;
      (* Keep the kernel only when it beats the closure tree.  A fully
         native tape (every access a cursor, every select affine)
         always does: no indirect calls left.  One with embedded
         closures or dynamically-evaluated selects does closure-path
         work plus tape overhead — worth it only if hash-consing found
         real sharing, i.e. the closure tree would recompute shared
         subtrees the tape evaluates once (references in excess of
         emissions; re-emission inside lazy blocks cancels out). *)
      let rec tape_native tape =
        Array.for_all
          (fun ins ->
            match ins with
            | Oopaque _ -> false
            | Oselect (_, Sdyn _, _, _, _, _) -> false
            | Oselect (_, Saff _, bt, _, be, _) ->
              tape_native bt && tape_native be
            | _ -> true)
          tape
      in
      let inv = Array.of_list (List.rev !inv_buf)
      and inn = Array.of_list (List.rev !inner_buf) in
      let cse_savings () =
        let refs = Array.make !n_nodes 0 and emits = Array.make !n_nodes 0 in
        let bump r = refs.(r) <- refs.(r) + 1 in
        let rec walk tape =
          Array.iter
            (fun ins ->
              (match ins with
              | Oconst (d, _) | Ovar (d, _) | Oload (d, _) | Oopaque (d, _)
              | Oadd (d, _, _) | Osub (d, _, _) | Omul (d, _, _)
              | Odiv (d, _, _) | Omin (d, _, _) | Omax (d, _, _)
              | Opow (d, _, _) | Oneg (d, _) | Oabs (d, _) | Osqrt (d, _)
              | Oexp (d, _) | Olog (d, _) | Ofloor (d, _) | Oidiv (d, _, _)
              | Oimod (d, _, _) | Ocast (d, _, _) | Oselect (d, _, _, _, _, _)
                ->
                emits.(d) <- emits.(d) + 1);
              match ins with
              | Oconst _ | Ovar _ | Oload _ | Oopaque _ -> ()
              | Oadd (_, a, b) | Osub (_, a, b) | Omul (_, a, b)
              | Odiv (_, a, b) | Omin (_, a, b) | Omax (_, a, b)
              | Opow (_, a, b) ->
                bump a;
                bump b
              | Oneg (_, a) | Oabs (_, a) | Osqrt (_, a) | Oexp (_, a)
              | Olog (_, a) | Ofloor (_, a) | Oidiv (_, a, _)
              | Oimod (_, a, _) | Ocast (_, _, a) ->
                bump a
              | Oselect (_, dec, bt, rt, be, re) ->
                (match dec with Sdyn c -> walk_cond c | Saff _ -> ());
                walk bt;
                bump rt;
                walk be;
                bump re)
            tape
        and walk_cond c =
          match c with
          | Scmp (_, ba, ra, bb, rb) ->
            walk ba;
            bump ra;
            walk bb;
            bump rb
          | Sand (a, b) | Sor (a, b) ->
            walk_cond a;
            walk_cond b
          | Snot a -> walk_cond a
        in
        walk inv;
        walk inn;
        let s = ref 0 in
        for r = 0 to !n_nodes - 1 do
          let cheap =
            match (node r).shape with
            | Nconst _ | Nvar _ -> true
            | _ -> false
          in
          if (not cheap) && refs.(r) > emits.(r) then
            s := !s + (refs.(r) - emits.(r))
        done;
        !s
      in
      if not ((tape_native inv && tape_native inn) || cse_savings () >= 4)
      then None
      else
        Some
          {
            nvars;
            regs = Array.make (max 1 !n_nodes) 0.;
            cursors = Array.of_list (List.rev !cursors);
            iselects = Array.of_list (List.rev !iselects);
            invariant = inv;
            inner = inn;
            root;
            unsafe;
          }
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let rec run_tape regs (tape : instr array) coords unsafe =
  for k = 0 to Array.length tape - 1 do
    match Array.unsafe_get tape k with
    | Oconst (d, x) -> Array.unsafe_set regs d x
    | Ovar (d, i) ->
      Array.unsafe_set regs d (float_of_int (Array.unsafe_get coords i))
    | Oload (d, cur) ->
      Array.unsafe_set regs d
        (if unsafe then Array.unsafe_get cur.cview.Eval.data cur.cpos
         else Eval.checked_get cur.cview cur.cpos)
    | Oopaque (d, f) -> Array.unsafe_set regs d (f coords)
    | Oadd (d, a, b) ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a +. Array.unsafe_get regs b)
    | Osub (d, a, b) ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a -. Array.unsafe_get regs b)
    | Omul (d, a, b) ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a *. Array.unsafe_get regs b)
    | Odiv (d, a, b) ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a /. Array.unsafe_get regs b)
    | Omin (d, a, b) ->
      Array.unsafe_set regs d
        (Float.min (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | Omax (d, a, b) ->
      Array.unsafe_set regs d
        (Float.max (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | Opow (d, a, b) ->
      Array.unsafe_set regs d
        (Float.pow (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | Oneg (d, a) -> Array.unsafe_set regs d (-.(Array.unsafe_get regs a))
    | Oabs (d, a) ->
      Array.unsafe_set regs d (Float.abs (Array.unsafe_get regs a))
    | Osqrt (d, a) ->
      Array.unsafe_set regs d (Float.sqrt (Array.unsafe_get regs a))
    | Oexp (d, a) ->
      Array.unsafe_set regs d (Float.exp (Array.unsafe_get regs a))
    | Olog (d, a) ->
      Array.unsafe_set regs d (Float.log (Array.unsafe_get regs a))
    | Ofloor (d, a) ->
      Array.unsafe_set regs d (Float.floor (Array.unsafe_get regs a))
    | Oidiv (d, a, fn) ->
      Array.unsafe_set regs d (Float.floor (Array.unsafe_get regs a /. fn))
    | Oimod (d, a, fn) ->
      let x = Array.unsafe_get regs a in
      Array.unsafe_set regs d (x -. (fn *. Float.floor (x /. fn)))
    | Ocast (d, ty, a) ->
      Array.unsafe_set regs d (Types.clamp_store ty (Array.unsafe_get regs a))
    | Oselect (d, dec, bt, rt, be, re) ->
      let taken =
        match dec with
        | Saff s ->
          let j = Array.unsafe_get coords s.ijvar in
          j >= s.itlo && j <= s.ithi
        | Sdyn c -> run_scond regs coords unsafe c
      in
      if taken then begin
        run_tape regs bt coords unsafe;
        Array.unsafe_set regs d (Array.unsafe_get regs rt)
      end
      else begin
        run_tape regs be coords unsafe;
        Array.unsafe_set regs d (Array.unsafe_get regs re)
      end
  done

and run_scond regs coords unsafe c =
  match c with
  | Scmp (op, ba, ra, bb, rb) ->
    run_tape regs ba coords unsafe;
    run_tape regs bb coords unsafe;
    let x = Array.unsafe_get regs ra and y = Array.unsafe_get regs rb in
    (match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y)
  | Sand (a, b) ->
    run_scond regs coords unsafe a && run_scond regs coords unsafe b
  | Sor (a, b) ->
    run_scond regs coords unsafe a || run_scond regs coords unsafe b
  | Snot a -> not (run_scond regs coords unsafe a)

let run_row t ~vec ~ty ~data ~pos0 ~dstride ~coords ~lo ~hi =
  let nv = t.nvars in
  let cursors = t.cursors in
  (* row setup: absolute start position per cursor, from the view's
     current offset (the executor repositions views between tiles) *)
  for c = 0 to Array.length cursors - 1 do
    let cur = Array.unsafe_get cursors c in
    let p = ref (cur.cview.Eval.off + cur.cconst + (cur.cdelta * lo)) in
    for v = 0 to nv - 2 do
      p := !p + (cur.ccoefs.(v) * Array.unsafe_get coords v)
    done;
    cur.cpos <- !p
  done;
  let isels = t.iselects in
  for s = 0 to Array.length isels - 1 do
    let is = Array.unsafe_get isels s in
    let tlo, thi = eval_acond coords nv is.iacond in
    is.itlo <- tlo;
    is.ithi <- thi
  done;
  coords.(nv - 1) <- lo;
  let regs = t.regs and unsafe = t.unsafe in
  run_tape regs t.invariant coords unsafe;
  let inner = t.inner and root = t.root in
  let ncur = Array.length cursors in
  let advance () =
    for c = 0 to ncur - 1 do
      let cur = Array.unsafe_get cursors c in
      cur.cpos <- cur.cpos + cur.cdelta
    done
  in
  if vec then begin
    (* 4x unrolled, bounds-check-free stores: mirrors the closure
       path's "vectorized" row loop *)
    let j = ref lo and pos = ref pos0 in
    while !j + 3 <= hi do
      let j0 = !j in
      coords.(nv - 1) <- j0;
      run_tape regs inner coords unsafe;
      let v0 = Types.clamp_store ty (Array.unsafe_get regs root) in
      advance ();
      coords.(nv - 1) <- j0 + 1;
      run_tape regs inner coords unsafe;
      let v1 = Types.clamp_store ty (Array.unsafe_get regs root) in
      advance ();
      coords.(nv - 1) <- j0 + 2;
      run_tape regs inner coords unsafe;
      let v2 = Types.clamp_store ty (Array.unsafe_get regs root) in
      advance ();
      coords.(nv - 1) <- j0 + 3;
      run_tape regs inner coords unsafe;
      let v3 = Types.clamp_store ty (Array.unsafe_get regs root) in
      advance ();
      let base = !pos in
      Array.unsafe_set data base v0;
      Array.unsafe_set data (base + dstride) v1;
      Array.unsafe_set data (base + (2 * dstride)) v2;
      Array.unsafe_set data (base + (3 * dstride)) v3;
      pos := base + (4 * dstride);
      j := j0 + 4
    done;
    for j2 = !j to hi do
      coords.(nv - 1) <- j2;
      run_tape regs inner coords unsafe;
      Array.unsafe_set data !pos (Types.clamp_store ty (Array.unsafe_get regs root));
      advance ();
      pos := !pos + dstride
    done
  end
  else begin
    let pos = ref pos0 in
    for j = lo to hi do
      coords.(nv - 1) <- j;
      run_tape regs inner coords unsafe;
      data.(!pos) <- Types.clamp_store ty (Array.unsafe_get regs root);
      advance ();
      pos := !pos + dstride
    done
  end
