(** Profiling entry point shared by [bin/polymage.ml] ([profile]
    subcommand, [--trace-json]) and [bench/main.ml]: compile and run a
    pipeline under {!Polymage_util.Trace} + {!Polymage_util.Metrics}
    and render the per-phase / per-group report. *)

open Polymage_ir
module C = Polymage_compiler

type report = {
  plan : C.Plan.t;
  result : Executor.result;
  events : Polymage_util.Trace.event list;
  counters : (string * int) list;  (** metrics snapshot after the run *)
  tiles : (int * int) list;
      (** planned tiles per [Tiled] item, from {!Executor.tile_counts} *)
  wall_ms : float;  (** duration of the [exec.run] span *)
  env : Types.bindings;  (** bindings the run executed under *)
}

val run :
  opts:C.Options.t ->
  outputs:Ast.func list ->
  env:Types.bindings ->
  images:(Ast.image * Buffer.t) list ->
  report
(** Compile and execute with tracing forced on ([with_trace true]);
    trace/metrics global state is reset first and the previous
    enabled/disabled state is restored afterwards. *)

val pp_report : Format.formatter -> report -> unit
(** Per-phase span table, per-group tile/scratch table, counters. *)

val to_chrome_json : report -> string
val write_chrome_json : string -> report -> unit
