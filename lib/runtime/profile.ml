(* Shared profiling entry point for the CLI and the benchmark driver:
   compile and run a pipeline with tracing + metrics on, and render
   the per-phase / per-group report or the Chrome trace JSON. *)

module C = Polymage_compiler
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics

type report = {
  plan : C.Plan.t;
  result : Executor.result;
  events : Trace.event list;
  counters : (string * int) list;
  tiles : (int * int) list;  (* planned tiles per Tiled item *)
  wall_ms : float;  (* duration of the exec.run span *)
  env : Polymage_ir.Types.bindings;  (* bindings the run executed under *)
}

let run ~(opts : C.Options.t) ~outputs ~env ~images =
  let opts = C.Options.with_trace true opts in
  let metrics_were_on = Metrics.enabled () in
  Trace.reset ();
  Metrics.reset ();
  let (plan, result), events =
    Trace.capture (fun () ->
        let plan = C.Compile.run opts ~outputs in
        let result = Executor.run plan env ~images in
        (plan, result))
  in
  let counters = Metrics.snapshot () in
  if not metrics_were_on then Metrics.disable ();
  let wall_ms =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Trace.Span s when s.name = "exec.run" ->
          acc +. (float_of_int (s.t_end_ns - s.t_start_ns) /. 1e6)
        | _ -> acc)
      0. events
  in
  let tiles = Executor.tile_counts plan env in
  { plan; result; events; counters; tiles; wall_ms; env }

let pp_spans ppf events ~cat:want =
  let spans =
    List.filter_map
      (function
        | Trace.Span s when s.cat = want ->
          Some (s.name, s.args, s.t_start_ns, s.t_end_ns, s.depth)
        | _ -> None)
      events
  in
  let spans =
    List.sort
      (fun (_, _, a, _, da) (_, _, b, _, db) -> compare (a, da) (b, db))
      spans
  in
  List.iter
    (fun (name, args, t0, t1, depth) ->
      Format.fprintf ppf "  %s%-*s %10.3f ms%s@."
        (String.make (2 * depth) ' ')
        (max 1 (28 - (2 * depth)))
        name
        (float_of_int (t1 - t0) /. 1e6)
        (match args with
        | [] -> ""
        | args ->
          "  ("
          ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ ")"))
    spans

let pp_report ppf r =
  Format.fprintf ppf "== compile phases ==@.";
  pp_spans ppf r.events ~cat:"compile";
  Format.fprintf ppf "== execution ==@.";
  pp_spans ppf r.events ~cat:"exec";
  if r.tiles <> [] then begin
    Format.fprintf ppf "== tiled groups ==@.";
    Format.fprintf ppf "  %-6s %12s %12s %14s %10s@." "item" "tiles(plan)"
      "tiles(run)" "scratch KiB" "attaches";
    List.iter
      (fun (k, planned) ->
        let g s = Metrics.get (Printf.sprintf "exec/group%d/%s" k s) in
        Format.fprintf ppf "  %-6d %12d %12d %14.1f %10d@." k planned
          (g "tiles")
          (float_of_int (g "scratch_bytes") /. 1024.)
          (g "scratch_attaches"))
      r.tiles
  end;
  Format.fprintf ppf "== counters ==@.";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "  %-32s %12d@." n v)
    r.counters;
  Format.fprintf ppf "== wall ==@.  exec.run %.3f ms@." r.wall_ms

let to_chrome_json r = Trace.to_chrome_json r.events
let write_chrome_json file r = Trace.write_chrome_json file r.events
