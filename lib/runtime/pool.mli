(** A reusable pool of worker domains — the OpenMP-parallel-for
    substitute used to run tiles and row chunks concurrently
    (paper §3.7 marks the outermost tile loop parallel).

    The pool keeps [workers - 1] OCaml 5 domains alive across calls;
    the calling domain participates too.  Work items are distributed
    with an atomic counter (dynamic self-scheduling), which matches
    OpenMP's dynamic schedule and balances the uneven boundary tiles. *)

type t

val create : int -> t
(** [create workers] with [workers >= 1].  [create 1] executes
    everything inline on the caller. *)

val size : t -> int

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** Run [f 0 .. f (n-1)], distributing indices over the pool.  An
    exception raised by any worker is re-raised on the caller with the
    worker's backtrace (first one wins); once an error is recorded the
    remaining workers stop claiming indices (fail-fast drain), so
    indices after the failure may never run. Not reentrant. *)

val with_pool : int -> (t -> 'a) -> 'a
(** Create, use, and always shut down. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards. *)
