module Err = Polymage_util.Err

type spec = { site : string; seed : int }

let sites =
  [
    "alloc";
    "kernel_compile";
    "tile_body";
    "worker_start";
    "group_schedule";
    "dlopen";
    "exec_crash";
    "exec_hang";
    "compile_flaky";
    "serve_request";
  ]

let phase_of_site = function
  | "kernel_compile" -> Err.Kernel
  | "group_schedule" -> Err.Schedule
  | "compile_flaky" -> Err.Codegen
  | _ -> Err.Exec

type armed_state = { spec : spec; count : int Atomic.t; has_fired : bool Atomic.t }

(* Written only from arm/disarm (test or startup code); read on the
   hot path.  A plain ref is enough: arming mid-run is not supported. *)
let state : armed_state option ref = ref None

let check_site site =
  if not (List.mem site sites) then
    Err.failf Err.Exec "unknown fault site %S (known: %s)" site
      (String.concat ", " sites)

let arm ~site ~seed =
  check_site site;
  state :=
    Some
      {
        spec = { site; seed = max 0 seed };
        count = Atomic.make 0;
        has_fired = Atomic.make false;
      }

let disarm () = state := None
let armed () = Option.map (fun s -> s.spec) !state
let fired () = match !state with Some s -> Atomic.get s.has_fired | None -> false

let parse str =
  match String.index_opt str ':' with
  | None -> Err.failf Err.Exec "fault spec %S is not of the form site:seed" str
  | Some i -> (
    let site = String.sub str 0 i in
    let seed = String.sub str (i + 1) (String.length str - i - 1) in
    check_site site;
    match int_of_string_opt seed with
    | Some seed when seed >= 0 -> { site; seed }
    | _ -> Err.failf Err.Exec "fault spec %S: seed must be a non-negative int" str)

let ensure = function
  | None -> ()
  | Some (site, seed) -> (
    match !state with
    | Some s when s.spec.site = site && s.spec.seed = seed -> ()
    | _ -> arm ~site ~seed)

let hit site =
  match !state with
  | None -> ()
  | Some s ->
    if String.equal s.spec.site site then begin
      let n = Atomic.fetch_and_add s.count 1 in
      if n = s.spec.seed then begin
        Atomic.set s.has_fired true;
        Err.failf
          (phase_of_site site)
          ~stage:("fault:" ^ site)
          "injected fault at site %s (hit %d)" site n
      end
    end

let () =
  match Sys.getenv_opt "POLYMAGE_FAULT" with
  | None | Some "" -> ()
  | Some s ->
    let { site; seed } = parse s in
    arm ~site ~seed
