(** Dense n-dimensional value buffers.

    A buffer stores double-precision values for a stage domain or an
    input image in row-major order.  Domains need not start at zero:
    [lo] records the lower bound per dimension, and indexing is by
    absolute domain coordinates. *)

open Polymage_ir

type t = private {
  data : float array;
  lo : int array;  (** inclusive lower bound per dimension *)
  dims : int array;  (** extent per dimension *)
  strides : int array;  (** row-major, last dimension contiguous *)
}

val create : lo:int array -> dims:int array -> t
(** Zero-initialized. @raise Invalid_argument on negative extents. *)

val create_uninit : lo:int array -> dims:int array -> t
(** Like {!create} but the payload is left uninitialized — for buffers
    the caller proves fully overwritten before any read.  Empty domains
    still get a zeroed 1-cell allocation so folds over [data] stay
    deterministic. @raise Invalid_argument on negative extents. *)

val of_func : Ast.func -> Types.bindings -> t
(** A zero-initialized buffer covering the stage's concrete domain. *)

val of_func_uninit : Ast.func -> Types.bindings -> t
(** {!create_uninit} over the stage's concrete domain. *)

val geometry_of_func : Ast.func -> Types.bindings -> int array * int array
(** [(lo, dims)] of the stage's concrete domain under the bindings —
    the geometry {!of_func} allocates. *)

val of_image : Ast.image -> Types.bindings -> (int array -> float) -> t
(** Allocate an input image buffer and fill it pointwise from the
    generator (synthetic workloads). *)

val rank : t -> int
val get : t -> int array -> float
(** @raise Invalid_argument when out of bounds. *)

val set : t -> int array -> float -> unit
val offset_of_origin : t -> int
(** The flattened position of coordinate (0,...,0):
    [- sum lo_d * stride_d].  Absolute coordinates [x] map to
    [offset_of_origin + sum x_d * stride_d]. *)

val size : t -> int
val fill : t -> float -> unit
val equal : ?eps:float -> t -> t -> bool
(** Same shape and values (within [eps], default exact). *)

val max_abs_diff : t -> t -> float
(** Largest absolute difference; [nan] when shapes differ. *)
