type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;
  active : int Atomic.t;  (* workers still draining this job *)
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;
  have_work : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
}

(* Fail-fast: once any worker has recorded an error, the rest stop
   claiming new indices (checked before the fetch-and-add), so a
   failing job drains in O(workers) instead of running every remaining
   index.  The first error wins, with its backtrace. *)
let drain ~wid (j : job) =
  let claimed = ref 0 in
  let rec go () =
    if Atomic.get j.error = None then begin
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.n then begin
        incr claimed;
        (try j.f i with
        | e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set j.error None (Some (e, bt))));
        go ()
      end
    end
  in
  go ();
  (* one registry touch per drained job, not per task *)
  if !claimed > 0 then
    Polymage_util.Metrics.addn (Printf.sprintf "pool/w%d/tasks" wid) !claimed

let worker_loop t wid () =
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !last_gen do
      Condition.wait t.have_work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      last_gen := t.generation;
      let j = Option.get t.job in
      Mutex.unlock t.mutex;
      drain ~wid j;
      Mutex.lock t.mutex;
      if Atomic.fetch_and_add j.active (-1) = 1 then
        Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create workers =
  if workers < 1 then
    Polymage_util.Err.fail Polymage_util.Err.Exec
      "Pool.create: need at least one worker";
  (* The fault site fires before any domain is spawned, so a failed
     create never leaks workers blocked on the condition variable. *)
  Fault.hit "worker_start";
  let t =
    {
      workers = [||];
      mutex = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
    }
  in
  t.workers <-
    Array.init (workers - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
  t

let size t = Array.length t.workers + 1

let parallel_for t ~n f =
  if n <= 0 then ()
  else if Array.length t.workers = 0 then begin
    for i = 0 to n - 1 do
      f i
    done;
    Polymage_util.Metrics.addn "pool/w0/tasks" n
  end
  else begin
    let j =
      {
        f;
        n;
        next = Atomic.make 0;
        active = Atomic.make (Array.length t.workers + 1);
        error = Atomic.make None;
      }
    in
    Mutex.lock t.mutex;
    t.job <- Some j;
    t.generation <- t.generation + 1;
    Condition.broadcast t.have_work;
    Mutex.unlock t.mutex;
    drain ~wid:0 j;
    Mutex.lock t.mutex;
    if Atomic.fetch_and_add j.active (-1) <> 1 then
      while Atomic.get j.active > 0 do
        Condition.wait t.work_done t.mutex
      done
    else Condition.broadcast t.work_done;
    t.job <- None;
    Mutex.unlock t.mutex;
    match Atomic.get j.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers

let with_pool workers f =
  let t = create workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
