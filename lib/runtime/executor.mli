(** Plan execution: the native back end.

    Runs an execution {!C.Plan.t} under concrete parameter bindings.
    [Straight] items evaluate whole stages into full buffers
    (parallelized over outer-dimension chunks); [Tiled] items run
    overlapped tiles in parallel over a worker pool, with per-worker
    scratchpads for intermediates and relative indexing, following the
    paper's generated-code structure (Fig. 7). *)

open Polymage_ir
module C = Polymage_compiler

type result = {
  buffers : Buffer.t option array;
      (** per pipeline stage: the full buffer, when one was allocated
          (straight stages and group live-outs) *)
  outputs : (Ast.func * Buffer.t) list;
}

type degradation = {
  rung : string;
      (** the ladder rung that failed: ["opt+vec+kernels"] or ["opt"] *)
  error : Polymage_util.Err.t;  (** what went wrong on that rung *)
}

val run :
  ?pool:Pool.t ->
  C.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Buffer.t) list ->
  result
(** Execute the plan.  Every input image of the pipeline must be
    provided with matching extents.  When [pool] is absent a pool of
    [plan.opts.workers] workers is created for the call.  Arms the
    fault injector from [plan.opts.fault] first.
    @raise Polymage_util.Err.Polymage_error (phase [Exec]) on missing
    images, malformed plans, or out-of-window accesses (safe mode). *)

val run_safe :
  ?pool:Pool.t ->
  C.Plan.t ->
  Types.bindings ->
  images:(Ast.image * Buffer.t) list ->
  result * degradation list
(** Like {!run}, with graceful degradation: on failure the pipeline is
    recompiled from [plan.source_outputs] and retried down the ladder
    [opt+vec+kernels] (the plan as given) → [opt] (no vectorization,
    no row kernels) → [naive] (additionally no grouping: straight
    per-stage evaluation).  Returns the first successful result along
    with one {!degradation} per abandoned rung, in order.  Re-raises
    the last error when even the naive rung fails. *)

val output_buffer : result -> Ast.func -> Buffer.t
(** Buffer of a given output stage. @raise Not_found if absent. *)

val reset_kernel_choices : unit -> unit
(** Forget every measured kernel-vs-closure choice
    ([Options.kernel_measure]).  Choices persist for the process,
    keyed by stage, so repeated runs of the same plan pay the
    measuring phase only once; tests and long-lived processes whose
    load profile has changed can start over with this. *)

val tile_counts : C.Plan.t -> Types.bindings -> (int * int) list
(** [(item_index, total_tiles)] for each [Tiled] item of the plan
    under the given bindings: tiles for Overlap/Parallelogram tiling,
    trapezoid regions summed over all phases for Split.  Pure function
    of the plan; the executors' per-group
    [exec/group<k>/tiles] {!Polymage_util.Metrics} counters match
    these by construction. *)
