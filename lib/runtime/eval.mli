(** Expression-to-closure compiler: the native back end's equivalent
    of emitting C (paper §3.7).  Each stage body is compiled once per
    worker into closures over a coordinate array; stage and image
    references read through mutable {!view}s whose base offset is
    repositioned per tile, which is exactly the paper's relative
    indexing into scratchpads. *)

open Polymage_ir

(** Where a reference reads from: a stage's buffer/scratchpad or an
    input image. *)
type source = Src_func of int  (** [fid] *) | Src_img of int  (** [iid] *)

(** A repositionable window onto a flat float array.  The value at
    absolute coordinates [x] lives at [off + sum x_d * strides_d].
    [strides] are fixed at creation; [data]/[off] move per tile. *)
type view = {
  mutable data : float array;
  mutable off : int;
  strides : int array;
  mutable descr : string;  (** for error messages *)
}

val view_of_strides : string -> int array -> view
(** A view with no storage attached yet. *)

val attach_buffer : view -> Buffer.t -> unit
(** Point the view at a full buffer (absolute indexing). *)

val attach_scratch : view -> float array -> start:int array -> unit
(** Point the view at a scratchpad holding the window that begins at
    absolute coordinates [start] (relative indexing, §3.6). *)

val view_of_buffer : string -> Buffer.t -> view

val checked_get : view -> int -> float
(** Read a flat position with the window check of safe mode.
    @raise Polymage_util.Err.Polymage_error (phase [Exec], stage = the
    view's descriptor) when the position is outside the view's current
    storage. *)

val compile :
  unsafe:bool ->
  vars:Types.var list ->
  bindings:Types.bindings ->
  lookup:(source -> view) ->
  Ast.expr ->
  (int array -> float)
(** Compile an expression to a closure over the loop coordinate array
    (ordered as [vars]).  Parameters are folded to constants.
    [lookup] resolves each referenced source to its view; it is called
    once per reference site, at compile time.
    @raise Polymage_util.Err.Polymage_error (at call time) on an
    out-of-window access in safe mode. *)

val compile_cond :
  unsafe:bool ->
  vars:Types.var list ->
  bindings:Types.bindings ->
  lookup:(source -> view) ->
  Ast.cond ->
  (int array -> bool)
