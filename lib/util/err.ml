type phase =
  | Dsl
  | Bounds
  | Group
  | Schedule
  | Storage
  | Kernel
  | Exec
  | Codegen
  | IO

type t = { phase : phase; stage : string option; detail : string }

exception Polymage_error of t

let phase_name = function
  | Dsl -> "dsl"
  | Bounds -> "bounds"
  | Group -> "group"
  | Schedule -> "schedule"
  | Storage -> "storage"
  | Kernel -> "kernel"
  | Exec -> "exec"
  | Codegen -> "codegen"
  | IO -> "io"

let phase_of_name = function
  | "dsl" -> Some Dsl
  | "bounds" -> Some Bounds
  | "group" -> Some Group
  | "schedule" -> Some Schedule
  | "storage" -> Some Storage
  | "kernel" -> Some Kernel
  | "exec" -> Some Exec
  | "codegen" -> Some Codegen
  | "io" -> Some IO
  | _ -> None

let pp ppf e =
  match e.stage with
  | Some s -> Format.fprintf ppf "[%s] stage %s: %s" (phase_name e.phase) s e.detail
  | None -> Format.fprintf ppf "[%s] %s" (phase_name e.phase) e.detail

let to_string e = Format.asprintf "%a" pp e
let error ?stage phase detail = { phase; stage; detail }
let fail ?stage phase detail = raise (Polymage_error (error ?stage phase detail))

let failf ?stage phase fmt =
  Format.kasprintf (fun detail -> fail ?stage phase detail) fmt

let of_exn ?(phase = Exec) ?stage exn =
  match exn with
  | Polymage_error e -> (
    match (e.stage, stage) with
    | None, Some _ -> { e with stage }
    | _ -> e)
  | e -> { phase; stage; detail = Printexc.to_string e }

let reraise ?phase ?stage exn =
  let bt = Printexc.get_raw_backtrace () in
  Printexc.raise_with_backtrace (Polymage_error (of_exn ?phase ?stage exn)) bt

let with_stage phase stage f =
  try f () with
  | Polymage_error e when e.stage <> None -> raise (Polymage_error e)
  | e ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace
      (Polymage_error (of_exn ~phase ~stage e))
      bt

let () =
  Printexc.register_printer (function
    | Polymage_error e -> Some ("Polymage_error: " ^ to_string e)
    | _ -> None)
