(* Structured tracing: spans and instant events with monotonic
   timestamps, an in-memory sink, subscriber hooks for tests, and a
   Chrome-trace-format JSON emitter with its own mini JSON parser (no
   external JSON dependency).

   Design constraints:
   - the disabled fast path is a single atomic load, so leaving
     instrumentation compiled into hot code costs nothing measurable;
   - timestamps are clamped to be globally non-decreasing (CAS loop on
     the last observed value), so spans never have negative durations
     even if the wall clock steps backwards;
   - nesting depth is tracked per domain (DLS), so spans from worker
     domains nest independently of the caller's stack. *)

type event =
  | Span of {
      name : string;
      cat : string;
      args : (string * string) list;
      t_start_ns : int;
      t_end_ns : int;
      tid : int;
      depth : int;
    }
  | Instant of {
      name : string;
      cat : string;
      args : (string * string) list;
      t_ns : int;
      tid : int;
    }

(* ---- enable / disable ---- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* ---- clock ---- *)

let last_ns = Atomic.make 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let l = Atomic.get last_ns in
    if t <= l then l
    else if Atomic.compare_and_set last_ns l t then t
    else clamp ()
  in
  clamp ()

(* ---- sink: buffer + subscribers ---- *)

let sink_mutex = Mutex.create ()
let buffer : event list ref = ref []
let subscribers : (int * (event -> unit)) list ref = ref []
let next_sub = ref 0

let locked f =
  Mutex.lock sink_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) f

let emit ev =
  locked (fun () ->
      buffer := ev :: !buffer;
      List.iter (fun (_, f) -> f ev) !subscribers)

let subscribe f =
  locked (fun () ->
      let id = !next_sub in
      incr next_sub;
      subscribers := (id, f) :: !subscribers;
      id)

let unsubscribe id =
  locked (fun () ->
      subscribers := List.filter (fun (i, _) -> i <> id) !subscribers)

let events () = locked (fun () -> List.rev !buffer)
let reset () = locked (fun () -> buffer := [])

(* ---- spans ---- *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let tid () = (Domain.self () :> int)

let instant ?(cat = "event") ?(args = []) name =
  if enabled () then
    emit (Instant { name; cat; args; t_ns = now_ns (); tid = tid () })

(* A span whose endpoints were measured elsewhere — e.g. queue wait,
   where the enqueue happens on the submitting domain and the dequeue
   on the dispatcher.  Emitted at the current domain's nesting depth
   without entering a scope of its own. *)
let emit_span ?(cat = "phase") ?(args = []) ~t_start_ns ~t_end_ns name =
  if enabled () then begin
    let t_end_ns = if t_end_ns < t_start_ns then t_start_ns else t_end_ns in
    let depth = !(Domain.DLS.get depth_key) in
    emit (Span { name; cat; args; t_start_ns; t_end_ns; tid = tid (); depth })
  end

let with_span ?(cat = "phase") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let depth = !d in
    incr d;
    let t_start_ns = now_ns () in
    let finish () =
      let t_end_ns = now_ns () in
      decr d;
      emit (Span { name; cat; args; t_start_ns; t_end_ns; tid = tid (); depth })
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let capture f =
  let acc = ref [] in
  let id = subscribe (fun ev -> acc := ev :: !acc) in
  let was = enabled () in
  enable ();
  Fun.protect
    ~finally:(fun () ->
      unsubscribe id;
      if not was then disable ())
    (fun () ->
      let r = f () in
      (r, List.rev !acc))

(* ---- accessors ---- *)

let name = function Span s -> s.name | Instant i -> i.name
let cat = function Span s -> s.cat | Instant i -> i.cat

let duration_ns = function
  | Span s -> Some (s.t_end_ns - s.t_start_ns)
  | Instant _ -> None

(* ---- Chrome trace format ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string b "}"

let to_chrome_json evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",";
      (match ev with
      | Span s ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":"
             (json_escape s.name) (json_escape s.cat)
             (float_of_int s.t_start_ns /. 1e3)
             (float_of_int (s.t_end_ns - s.t_start_ns) /. 1e3)
             s.tid)
      | Instant i ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":"
             (json_escape i.name) (json_escape i.cat)
             (float_of_int i.t_ns /. 1e3)
             i.tid));
      (match ev with
      | Span s -> add_args b s.args
      | Instant i -> add_args b i.args);
      Buffer.add_string b "}")
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_json file evs =
  let oc = open_out file in
  output_string oc (to_chrome_json evs);
  close_out oc

(* ---- mini JSON parser (for schema validation in tests and tools) ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* ASCII stays ASCII; anything else becomes '?' — the
                  emitter only escapes control characters, so this is
                  lossless for round trips of our own output *)
               Buffer.add_char b
                 (if code < 0x80 then Char.chr code else '?');
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let sub = String.sub s start (!pos - start) in
    match float_of_string_opt sub with
    | Some f -> f
    | None -> fail ("bad number " ^ sub)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let rec json_to_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" v)
    else Buffer.add_string b (Printf.sprintf "%.12g" v)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (json_escape s);
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        json_to_buf b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\":";
        json_to_buf b v)
      fields;
    Buffer.add_char b '}'

let json_to_string v =
  let b = Buffer.create 256 in
  json_to_buf b v;
  Buffer.contents b

(* Schema check for the Chrome trace format we emit: top-level object
   with a "traceEvents" array; every event has a string name/cat/ph
   (ph one of X/i), a non-negative numeric ts, numeric pid/tid, and X
   events additionally carry a non-negative dur.  Returns the number
   of validated events. *)
let validate_chrome (src : string) : (int, string) result =
  match parse_json src with
  | Error e -> Error ("parse error: " ^ e)
  | Ok (Obj fields) -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Arr evs) -> (
      let check i ev =
        match ev with
        | Obj f -> (
          let str k =
            match List.assoc_opt k f with
            | Some (Str s) -> Ok s
            | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
          in
          let num k =
            match List.assoc_opt k f with
            | Some (Num v) -> Ok v
            | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
          in
          let ( let* ) = Result.bind in
          let* _ = str "name" in
          let* _ = str "cat" in
          let* ph = str "ph" in
          let* ts = num "ts" in
          let* _ = num "pid" in
          let* _ = num "tid" in
          if ts < 0. then Error (Printf.sprintf "event %d: negative ts" i)
          else
            match ph with
            | "X" ->
              let* dur = num "dur" in
              if dur < 0. then
                Error (Printf.sprintf "event %d: negative dur" i)
              else Ok ()
            | "i" -> Ok ()
            | _ -> Error (Printf.sprintf "event %d: bad ph %S" i ph))
        | _ -> Error (Printf.sprintf "event %d: not an object" i)
      in
      let rec go i = function
        | [] -> Ok (List.length evs)
        | ev :: rest -> (
          match check i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 evs)
    | _ -> Error "missing traceEvents array")
  | Ok _ -> Error "top level is not an object"

(* ---- environment hook ---- *)

let () =
  match Sys.getenv_opt "POLYMAGE_TRACE" with
  | Some ("1" | "true" | "on" | "yes") -> enable ()
  | _ -> ()
