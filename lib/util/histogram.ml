(* Lock-free log-bucketed histogram, HdrHistogram-style.

   Bucket layout for [m = sub_bits], [sc = 2^m]:
     index 0 .. sc-1            value v = index        (width 1, exact)
     octave o = 0, 1, ...       values [2^(m+o), 2^(m+o+1)) split into
                                [sc] sub-buckets of width [2^o]
   A bucket in octave [o] with sub-index [s] spans
   [(sc+s) * 2^o .. (sc+s+1) * 2^o - 1], so width / lower-bound is
   [1 / (sc+s) <= 2^-m]; quantiles report the midpoint, for a
   worst-case relative error of [2^-(m+1)].

   OCaml ints are 63-bit, so the highest bit position is 61 and the
   octave count is [62 - m]: the array has [sc * (63 - m)] buckets —
   1856 at the default [m = 5], one cache-friendly block of atomics
   covering the full non-negative int range with ~1.6% error. *)

type t = {
  m : int;  (* sub_bits *)
  buckets : int Atomic.t array;
  n : int Atomic.t;  (* total observations *)
  s : int Atomic.t;  (* sum of observations *)
  mn : int Atomic.t;  (* max_int when empty *)
  mx : int Atomic.t;  (* -1 when empty *)
}

let create ?(sub_bits = 5) () =
  let m = if sub_bits < 1 then 1 else if sub_bits > 8 then 8 else sub_bits in
  let size = (1 lsl m) * (63 - m) in
  {
    m;
    buckets = Array.init size (fun _ -> Atomic.make 0);
    n = Atomic.make 0;
    s = Atomic.make 0;
    mn = Atomic.make max_int;
    mx = Atomic.make (-1);
  }

let sub_bits t = t.m
let error_bound t = 1. /. float_of_int (2 lsl t.m)

(* position of the highest set bit of [v > 0], branch cascade *)
let high_bit v =
  let k = ref 0 and x = ref v in
  if !x lsr 32 <> 0 then (k := !k + 32; x := !x lsr 32);
  if !x lsr 16 <> 0 then (k := !k + 16; x := !x lsr 16);
  if !x lsr 8 <> 0 then (k := !k + 8; x := !x lsr 8);
  if !x lsr 4 <> 0 then (k := !k + 4; x := !x lsr 4);
  if !x lsr 2 <> 0 then (k := !k + 2; x := !x lsr 2);
  if !x lsr 1 <> 0 then incr k;
  !k

let bucket_index m v =
  let sc = 1 lsl m in
  if v < sc then v
  else
    let o = high_bit v - m in
    (* sub-index within the octave: top [m+1] bits of v, less the
       leading one *)
    (sc * (o + 1)) + ((v lsr o) - sc)

(* lower bound and width of bucket [i] *)
let bucket_bounds m i =
  let sc = 1 lsl m in
  if i < sc then (i, 1)
  else
    let j = i - sc in
    let o = j / sc and s = j mod sc in
    ((sc + s) lsl o, 1 lsl o)

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let record t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.buckets.(bucket_index t.m v) 1);
  ignore (Atomic.fetch_and_add t.n 1);
  ignore (Atomic.fetch_and_add t.s v);
  atomic_min t.mn v;
  atomic_max t.mx v

let count t = Atomic.get t.n
let sum t = Atomic.get t.s
let min_value t = if Atomic.get t.n = 0 then 0 else Atomic.get t.mn
let max_value t = if Atomic.get t.n = 0 then 0 else Atomic.get t.mx

let reset t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.n 0;
  Atomic.set t.s 0;
  Atomic.set t.mn max_int;
  Atomic.set t.mx (-1)

let merge a b =
  if a.m <> b.m then
    invalid_arg
      (Printf.sprintf "Histogram.merge: sub_bits mismatch (%d vs %d)" a.m b.m);
  let r = create ~sub_bits:a.m () in
  Array.iteri
    (fun i bk ->
      Atomic.set r.buckets.(i) (Atomic.get bk + Atomic.get b.buckets.(i)))
    a.buckets;
  Atomic.set r.n (Atomic.get a.n + Atomic.get b.n);
  Atomic.set r.s (Atomic.get a.s + Atomic.get b.s);
  Atomic.set r.mn (min (Atomic.get a.mn) (Atomic.get b.mn));
  Atomic.set r.mx (max (Atomic.get a.mx) (Atomic.get b.mx));
  r

type snapshot = {
  s_sub_bits : int;
  total : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  buckets : (int * int * int) list;
}

let snapshot (t : t) =
  let buckets = ref []
  and total = ref 0 in
  for i = Array.length t.buckets - 1 downto 0 do
    let c = Atomic.get t.buckets.(i) in
    if c > 0 then begin
      let lo, w = bucket_bounds t.m i in
      buckets := (lo, lo + w - 1, c) :: !buckets;
      total := !total + c
    end
  done;
  {
    s_sub_bits = t.m;
    (* bucket-sum, not the [n] atomic: keeps the snapshot
       self-consistent even when taken mid-record *)
    total = !total;
    s_sum = Atomic.get t.s;
    s_min = (if !total = 0 then 0 else Atomic.get t.mn);
    s_max = (if !total = 0 then 0 else Atomic.get t.mx);
    buckets = !buckets;
  }

let quantile s q =
  if s.total = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.total)) in
      if r < 1 then 1 else if r > s.total then s.total else r
    in
    let rec walk cum = function
      | [] -> float_of_int s.s_max (* unreachable: ranks <= total *)
      | (lo, hi, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then begin
          let mid = (float_of_int lo +. float_of_int hi) /. 2. in
          (* clamping to the observed extremes only tightens the
             midpoint toward the true rank value *)
          let mid = if mid < float_of_int s.s_min then float_of_int s.s_min else mid in
          if mid > float_of_int s.s_max then float_of_int s.s_max else mid
        end
        else walk cum rest
    in
    walk 0 s.buckets
  end

let mean s =
  if s.total = 0 then 0. else float_of_int s.s_sum /. float_of_int s.total
