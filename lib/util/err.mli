(** Structured errors for the whole compile→execute path.

    Every failure the system raises on purpose carries the compiler or
    runtime phase it belongs to and, when one is known, the pipeline
    stage involved.  This is what makes graceful degradation safe to
    automate: a handler can tell a kernel-compilation failure (retry
    without kernels) from a schedule failure (retry without grouping)
    without parsing message strings. *)

type phase =
  | Dsl  (** pipeline specification *)
  | Bounds  (** static bounds checking *)
  | Group  (** grouping heuristic *)
  | Schedule  (** alignment/scaling/tiling *)
  | Storage  (** scratchpad sizing / budgets *)
  | Kernel  (** row-kernel compilation *)
  | Exec  (** native execution *)
  | Codegen  (** C emission *)
  | IO  (** image file I/O *)

type t = {
  phase : phase;
  stage : string option;  (** pipeline stage or site, when known *)
  detail : string;
}

exception Polymage_error of t

val phase_name : phase -> string

val phase_of_name : string -> phase option
(** Inverse of {!phase_name} — lets structured errors cross a process
    or wire boundary (the serve protocol) without losing the phase. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val error : ?stage:string -> phase -> string -> t
val fail : ?stage:string -> phase -> string -> 'a
(** [fail phase detail] raises {!Polymage_error}. *)

val failf :
  ?stage:string -> phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Formatted {!fail}. *)

val of_exn : ?phase:phase -> ?stage:string -> exn -> t
(** Structured view of any exception: a {!Polymage_error} payload is
    returned as is (with [stage] filled in when it was missing); any
    other exception is wrapped under [phase] (default [Exec]) with
    [Printexc.to_string] as the detail. *)

val reraise : ?phase:phase -> ?stage:string -> exn -> 'a
(** Re-raise [exn] as a {!Polymage_error} carrying [phase]/[stage]
    context, preserving the current backtrace. *)

val with_stage : phase -> string -> (unit -> 'a) -> 'a
(** Run the thunk; any escaping exception is re-raised as a
    {!Polymage_error} naming [phase] and [stage] (an existing
    [Polymage_error] only gains the stage when it had none). *)
