(** Structured tracing: spans and instant events with monotonic
    timestamps, an in-memory sink, subscriber hooks for tests, and a
    Chrome-trace-format JSON emitter.  Zero external dependencies.

    The disabled fast path is a single atomic load; instrumentation
    left in hot code costs nothing measurable when tracing is off.
    Setting the environment variable [POLYMAGE_TRACE=1] enables
    tracing at program start. *)

type event =
  | Span of {
      name : string;
      cat : string;
      args : (string * string) list;
      t_start_ns : int;
      t_end_ns : int;  (** always [>= t_start_ns] *)
      tid : int;  (** domain id *)
      depth : int;  (** nesting depth within the domain at entry *)
    }
  | Instant of {
      name : string;
      cat : string;
      args : (string * string) list;
      t_ns : int;
      tid : int;
    }

(** {1 Enabling} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Recording} *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is enabled, records a
    [Span] covering its execution — including when [f] raises.  Spans
    nest per domain; [depth] reflects the nesting level. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point-in-time event when tracing is enabled. *)

val emit_span :
  ?cat:string ->
  ?args:(string * string) list ->
  t_start_ns:int ->
  t_end_ns:int ->
  string ->
  unit
(** Record a span with explicitly measured endpoints — for intervals
    whose start and end were observed on different domains (e.g. queue
    wait between enqueue and dispatch).  [t_end_ns] is clamped up to
    [t_start_ns]; the span carries the emitting domain's id and
    current nesting depth. *)

val now_ns : unit -> int
(** Monotonic (non-decreasing) wall-clock nanoseconds. *)

(** {1 Sink} *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val reset : unit -> unit
(** Clear the event buffer (subscribers stay registered). *)

val subscribe : (event -> unit) -> int
(** Register a callback invoked (under the sink lock) for every event;
    returns an id for {!unsubscribe}. *)

val unsubscribe : int -> unit

val capture : (unit -> 'a) -> 'a * event list
(** [capture f] enables tracing, runs [f], and returns its result with
    the events emitted during the call (oldest first).  The previous
    enabled state is restored afterwards. *)

(** {1 Accessors} *)

val name : event -> string
val cat : event -> string
val duration_ns : event -> int option
(** [Some] for spans (never negative), [None] for instants. *)

(** {1 Chrome trace format} *)

val to_chrome_json : event list -> string
(** Serialize as a Chrome trace ({i chrome://tracing} / Perfetto):
    [{"traceEvents":[...]}] with complete ("X") and instant ("i")
    events, timestamps in microseconds. *)

val write_chrome_json : string -> event list -> unit
(** [write_chrome_json file evs] writes {!to_chrome_json} to [file]. *)

(** {1 Mini JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result

val json_to_string : json -> string
(** Render a {!json} value compactly; integral [Num]s print without a
    decimal point, so [parse_json] round-trips them exactly. *)

val validate_chrome : string -> (int, string) result
(** Check a string against the Chrome trace schema we emit; [Ok n]
    gives the number of validated events. *)
