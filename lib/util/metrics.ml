(* Named monotonic counters.  Counters live in a global registry;
   bumping is an atomic increment gated on a single atomic flag load,
   so instrumentation in hot loops is free when metrics are off.
   Counter handles stay valid across [reset] (values return to 0). *)

type counter = { cname : string; v : int Atomic.t }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; v = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let name c = c.cname
let value c = Atomic.get c.v
let add c n = if enabled () then ignore (Atomic.fetch_and_add c.v n)
let bump c = add c 1

(* name-based convenience: no registry mutation when disabled *)
let addn name n = if enabled () then ignore (Atomic.fetch_and_add (counter name).v n)
let bumpn name = addn name 1

let get name =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt registry name with
    | Some c -> Atomic.get c.v
    | None -> 0
  in
  Mutex.unlock registry_mutex;
  v

let snapshot () =
  Mutex.lock registry_mutex;
  let all =
    Hashtbl.fold (fun _ c acc -> (c.cname, Atomic.get c.v) :: acc) registry []
  in
  Mutex.unlock registry_mutex;
  List.sort compare (List.filter (fun (_, v) -> v <> 0) all)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.v 0) registry;
  Mutex.unlock registry_mutex
