(* Named monotonic counters and level gauges.  Both live in global
   registries; updates are atomic operations gated on a single atomic
   flag load, so instrumentation in hot loops is free when metrics are
   off.  Handles stay valid across [reset] (values return to 0).

   A gauge is a level, not a rate: it goes up and down (queue depth,
   live connections) and remembers its high-water mark, which CAS-
   ratchets upward on every update. *)

type counter = { cname : string; v : int Atomic.t }
type gauge = { gname : string; g : int Atomic.t; gpeak : int Atomic.t }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; v = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let name c = c.cname
let value c = Atomic.get c.v
let add c n = if enabled () then ignore (Atomic.fetch_and_add c.v n)
let bump c = add c 1

(* name-based convenience: no registry mutation when disabled *)
let addn name n = if enabled () then ignore (Atomic.fetch_and_add (counter name).v n)
let bumpn name = addn name 1

(* ---- gauges ---- *)

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
      let g = { gname = name; g = Atomic.make 0; gpeak = Atomic.make 0 } in
      Hashtbl.add gauges name g;
      g
  in
  Mutex.unlock registry_mutex;
  g

let gauge_name g = g.gname
let gauge_value g = Atomic.get g.g
let gauge_peak g = Atomic.get g.gpeak

let rec ratchet_peak g v =
  let cur = Atomic.get g.gpeak in
  if v > cur && not (Atomic.compare_and_set g.gpeak cur v) then
    ratchet_peak g v

let gauge_set g v =
  if enabled () then begin
    Atomic.set g.g v;
    ratchet_peak g v
  end

let gauge_add g n =
  if enabled () then begin
    let v = Atomic.fetch_and_add g.g n + n in
    ratchet_peak g v
  end

let gauge_setn name v = if enabled () then gauge_set (gauge name) v
let gauge_addn name n = if enabled () then gauge_add (gauge name) n

let peak_suffix = "_peak"

(* [get] resolves counters first, then gauge levels, then — for names
   ending in "_peak" — the matching gauge's high-water mark, so
   "serve/queue_depth" kept its meaning when it migrated from a
   counter to a gauge. *)
let get name =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt registry name with
    | Some c -> Atomic.get c.v
    | None -> (
      match Hashtbl.find_opt gauges name with
      | Some g -> Atomic.get g.g
      | None ->
        let n = String.length name and pn = String.length peak_suffix in
        if n > pn && String.sub name (n - pn) pn = peak_suffix then
          match Hashtbl.find_opt gauges (String.sub name 0 (n - pn)) with
          | Some g -> Atomic.get g.gpeak
          | None -> 0
        else 0)
  in
  Mutex.unlock registry_mutex;
  v

let snapshot () =
  Mutex.lock registry_mutex;
  let all =
    Hashtbl.fold (fun _ c acc -> (c.cname, Atomic.get c.v) :: acc) registry []
  in
  let all =
    Hashtbl.fold
      (fun _ g acc ->
        (g.gname, Atomic.get g.g)
        :: (g.gname ^ peak_suffix, Atomic.get g.gpeak)
        :: acc)
      gauges all
  in
  Mutex.unlock registry_mutex;
  List.sort compare (List.filter (fun (_, v) -> v <> 0) all)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.v 0) registry;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g 0;
      Atomic.set g.gpeak 0)
    gauges;
  Mutex.unlock registry_mutex
