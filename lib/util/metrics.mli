(** Named monotonic counters with a global registry.  Bumps are atomic
    increments gated on one atomic flag load — free in hot loops when
    metrics are disabled.  Counter handles remain valid across
    {!reset}. *)

type counter

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val counter : string -> counter
(** Find or create the counter registered under [name]. *)

val name : counter -> string
val value : counter -> int

val bump : counter -> unit
(** Increment by 1 when enabled; no-op otherwise. *)

val add : counter -> int -> unit

val bumpn : string -> unit
(** [bumpn name] = [bump (counter name)], but allocates nothing and
    does not touch the registry when disabled. *)

val addn : string -> int -> unit

val get : string -> int
(** Current value of a named counter (0 if never created). *)

val snapshot : unit -> (string * int) list
(** All non-zero counters, sorted by name. *)

val reset : unit -> unit
(** Zero every counter; handles stay valid. *)
