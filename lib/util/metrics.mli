(** Named monotonic counters and level gauges with a global registry.
    Updates are atomic operations gated on one atomic flag load — free
    in hot loops when metrics are disabled.  Handles remain valid
    across {!reset}. *)

type counter
type gauge

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val counter : string -> counter
(** Find or create the counter registered under [name]. *)

val name : counter -> string
val value : counter -> int

val bump : counter -> unit
(** Increment by 1 when enabled; no-op otherwise. *)

val add : counter -> int -> unit

val bumpn : string -> unit
(** [bumpn name] = [bump (counter name)], but allocates nothing and
    does not touch the registry when disabled. *)

val addn : string -> int -> unit

(** {1 Gauges}

    A gauge tracks a level that rises and falls — queue depth, live
    connections — and ratchets a peak watermark upward on every
    update.  Like counters, updates are no-ops while disabled. *)

val gauge : string -> gauge
(** Find or create the gauge registered under [name]. *)

val gauge_name : gauge -> string

val gauge_value : gauge -> int
(** Current level. *)

val gauge_peak : gauge -> int
(** Highest level ever set while enabled (since the last {!reset}). *)

val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit

val gauge_setn : string -> int -> unit
(** [gauge_setn name v] = [gauge_set (gauge name) v], but does not
    touch the registry when disabled. *)

val gauge_addn : string -> int -> unit

(** {1 Reading} *)

val get : string -> int
(** Current value of a named counter or gauge (0 if never created).
    For a name ending in ["_peak"] with no counter or gauge of its
    own, the matching gauge's peak watermark. *)

val snapshot : unit -> (string * int) list
(** All non-zero counters and gauges, sorted by name; each gauge also
    contributes its ["<name>_peak"] watermark. *)

val reset : unit -> unit
(** Zero every counter, gauge and peak; handles stay valid. *)
