(** Lock-free log-bucketed latency histograms (HdrHistogram-style).

    A histogram is a fixed array of atomic bucket counters over the
    non-negative integers.  Values below [2^sub_bits] get their own
    width-1 bucket (exact); above that, each power-of-two octave is
    split into [2^sub_bits] equal sub-buckets, so a bucket's width
    divided by its lower bound never exceeds [2^-sub_bits].  Quantile
    estimates report a bucket's midpoint, halving that worst case: the
    documented relative error bound is [2^-(sub_bits+1)] — about 1.6%
    at the default [sub_bits = 5] — see {!error_bound}.

    [record] is O(1) and lock-free: one bucket index computation and a
    handful of atomic read-modify-writes, no allocation.  Any number
    of domains may record concurrently; every recorded value lands in
    exactly one bucket, so the bucket counts always sum to {!count}
    once recorders quiesce.  {!snapshot} taken during concurrent
    recording is internally consistent enough for monitoring (each
    counter is read atomically) but is not a point-in-time cut. *)

type t

val create : ?sub_bits:int -> unit -> t
(** A fresh histogram.  [sub_bits] (default 5, clamped to [1..8])
    fixes the bucket resolution and therefore {!error_bound}. *)

val sub_bits : t -> int

val error_bound : t -> float
(** Worst-case relative error of quantile estimates: [2^-(sub_bits+1)].
    Values below [2^sub_bits] are reported exactly. *)

val record : t -> int -> unit
(** Record one observation.  Negative values clamp to 0.  Lock-free,
    O(1), allocation-free. *)

val count : t -> int
(** Total observations recorded. *)

val sum : t -> int
(** Sum of all recorded values (after clamping). *)

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value; 0 when empty. *)

val reset : t -> unit
(** Zero every bucket and the count/sum/min/max.  Not atomic with
    respect to concurrent recorders: records racing a reset may or may
    not survive it, but the histogram stays internally consistent. *)

val merge : t -> t -> t
(** [merge a b] is a new histogram holding every observation of both.
    Associative and commutative up to snapshots.
    @raise Invalid_argument when [sub_bits] differ. *)

(** {1 Snapshots and quantiles} *)

type snapshot = {
  s_sub_bits : int;
  total : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  buckets : (int * int * int) list;
      (** non-empty buckets, ascending: (lower bound, upper bound
          inclusive, count) *)
}

val snapshot : t -> snapshot

val quantile : snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0. <= q <= 1.]) as the
    midpoint of the bucket holding the rank-[ceil q*total] value,
    clamped to the observed [s_min]/[s_max].  0 when empty.  Within
    {!error_bound} of the exact sorted quantile. *)

val mean : snapshot -> float
(** Exact mean from [s_sum]/[total]; 0 when empty. *)
