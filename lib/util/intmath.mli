(** Flooring integer division helpers.  OCaml's [/] and [mod] truncate
    toward zero; loop-bound and tile arithmetic needs the flooring
    behaviour for negative operands. *)

val floor_div : int -> int -> int
(** [floor_div a b] is [floor (a / b)] in exact arithmetic, for any
    nonzero [b] and any sign of [a]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] in exact arithmetic. *)

val pos_mod : int -> int -> int
(** [pos_mod a n] is the representative of [a mod n] in
    [\[0, abs n)]. *)
