(* Floor/ceil integer division and positive modulo, shared by the
   runtime executors and the polyhedral machinery.  OCaml's [/] and
   [mod] truncate toward zero; tile and window arithmetic needs the
   flooring variants. *)

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let ceil_div a b = -floor_div (-a) b

let pos_mod a n =
  let r = a mod n in
  if r < 0 then r + abs n else r
