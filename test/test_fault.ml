(* Robustness layer: seeded fault injection, the degradation ladder,
   the scratchpad budget, autotuner candidate isolation, pool
   fail-fast, and image I/O hardening.

   The central property: for random pipelines, with a fault armed at
   every site x a spread of seeds, [Executor.run_safe] either returns
   an output equal to the naive reference or raises a structured
   [Polymage_error] — it never returns a corrupt result. *)
module C = Polymage_compiler
module Rt = Polymage_rt
module Err = Polymage_util.Err
module Tune = Polymage_tune.Tune
module Apps = Polymage_apps.Apps

(* ---- the fault-injection property ---- *)

let fault_property () =
  let rand = Random.State.make [| 0x5eed; 42 |] in
  let specs = QCheck.Gen.generate ~rand ~n:2 Helpers.gen_pipeline in
  let seeds = [ 0; 1; 3; 7; 19 ] in
  let combos = ref 0 in
  Fun.protect
    ~finally:(fun () -> Rt.Fault.disarm ())
    (fun () ->
      List.iter
        (fun spec ->
          let img, out = Helpers.build_random spec in
          let env = [] in
          let images = Helpers.rand_images img env Helpers.fault_fill in
          let reference = Helpers.naive_output out env images in
          List.iter
            (fun site ->
              List.iter
                (fun seed ->
                  incr combos;
                  Rt.Fault.disarm ();
                  Rt.Fault.arm ~site ~seed;
                  let opts = C.Options.opt_vec ~estimates:env () in
                  match
                    let plan = C.Compile.run opts ~outputs:[ out ] in
                    Rt.Executor.run_safe plan env ~images
                  with
                  | r, degradations ->
                    let b = Rt.Executor.output_buffer r out in
                    if Rt.Buffer.max_abs_diff reference b > 1e-9 then
                      Alcotest.failf
                        "site %s seed %d: degraded output diverges from the \
                         naive reference (%d degradations)"
                        site seed
                        (List.length degradations);
                    if degradations <> [] && not (Rt.Fault.fired ()) then
                      Alcotest.failf
                        "site %s seed %d: degraded without a fired fault" site
                        seed
                  | exception Err.Polymage_error _ ->
                    (* a structured error is the one acceptable failure
                       mode; anything else (Invalid_argument, hang,
                       corrupt output) fails the test *)
                    ())
                seeds)
            Rt.Fault.sites)
        specs);
  Alcotest.(check bool)
    (Printf.sprintf "covered %d combos (want >= 50)" !combos)
    true (!combos >= 50)

(* ---- ladder order ---- *)

let ladder_order () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let plan0 =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
  in
  let images = Helpers.images_for app plan0 env in
  let reference = Rt.Executor.run plan0 env ~images in
  Fun.protect
    ~finally:(fun () -> Rt.Fault.disarm ())
    (fun () ->
      Rt.Fault.disarm ();
      Rt.Fault.arm ~site:"kernel_compile" ~seed:0;
      let plan =
        C.Compile.run (C.Options.opt_vec ~estimates:env ()) ~outputs:app.outputs
      in
      let r, degradations = Rt.Executor.run_safe plan env ~images in
      (match degradations with
      | [ (d : Rt.Executor.degradation) ] ->
        Alcotest.(check string)
          "abandoned rung" "opt+vec+kernels" d.rung;
        (match d.error.Err.phase with
        | Err.Kernel -> ()
        | p ->
          Alcotest.failf "expected phase kernel, got %s" (Err.phase_name p))
      | ds ->
        Alcotest.failf "expected exactly one degradation, got %d"
          (List.length ds));
      Alcotest.(check bool) "fault fired" true (Rt.Fault.fired ());
      Helpers.check_buffers_equal ~eps:1e-9 "degraded output"
        (Helpers.output_of app reference)
        (Helpers.output_of app r))

(* A one-shot fault at pool startup: the first rung dies creating the
   pool, the retry observes the fault consumed and succeeds. *)
let worker_start_recovers () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let plan0 =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
  in
  let images = Helpers.images_for app plan0 env in
  let reference = Rt.Executor.run plan0 env ~images in
  Fun.protect
    ~finally:(fun () -> Rt.Fault.disarm ())
    (fun () ->
      Rt.Fault.disarm ();
      Rt.Fault.arm ~site:"worker_start" ~seed:0;
      let plan =
        C.Compile.run
          (C.Options.opt ~workers:2 ~estimates:env ())
          ~outputs:app.outputs
      in
      let r, degradations = Rt.Executor.run_safe plan env ~images in
      Alcotest.(check int) "one degradation" 1 (List.length degradations);
      Helpers.check_buffers_equal ~eps:1e-9 "recovered output"
        (Helpers.output_of app reference)
        (Helpers.output_of app r))

(* run_safe on a healthy plan must not degrade. *)
let no_fault_no_degradation () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let plan0 =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
  in
  let images = Helpers.images_for app plan0 env in
  Rt.Fault.disarm ();
  let plan =
    C.Compile.run (C.Options.opt_vec ~estimates:env ()) ~outputs:app.outputs
  in
  let _, degradations = Rt.Executor.run_safe plan env ~images in
  Alcotest.(check int) "no degradations" 0 (List.length degradations)

(* ---- scratchpad budget demotion ---- *)

let scratch_budget () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts = C.Options.opt ~estimates:env () in
  let plan_free = C.Compile.run opts ~outputs:app.outputs in
  Alcotest.(check bool) "harris groups tile" true
    (C.Plan.n_tiled_groups plan_free > 0);
  Alcotest.(check int) "no budget, no demotions" 0
    (List.length plan_free.C.Plan.demotions);
  let plan_tight =
    C.Compile.run
      (C.Options.with_scratch_budget (Some 1) opts)
      ~outputs:app.outputs
  in
  Alcotest.(check bool) "demotions recorded" true
    (plan_tight.C.Plan.demotions <> []);
  Alcotest.(check int) "every group demoted" 0
    (C.Plan.n_tiled_groups plan_tight);
  List.iter
    (fun (d : C.Plan.demotion) ->
      Alcotest.(check bool) "demotion names stages" true (d.stages <> []);
      Alcotest.(check bool) "demotion over budget" true (d.bytes > 1))
    plan_tight.C.Plan.demotions;
  (* a generous budget demotes nothing *)
  let plan_loose =
    C.Compile.run
      (C.Options.with_scratch_budget (Some max_int) opts)
      ~outputs:app.outputs
  in
  Alcotest.(check int) "loose budget keeps groups"
    (C.Plan.n_tiled_groups plan_free)
    (C.Plan.n_tiled_groups plan_loose);
  (* the demoted plan still computes the right answer *)
  let images = Helpers.images_for app plan_free env in
  let r_free = Rt.Executor.run plan_free env ~images in
  let r_tight = Rt.Executor.run plan_tight env ~images in
  Helpers.check_buffers_equal ~eps:1e-9 "demoted output"
    (Helpers.output_of app r_free)
    (Helpers.output_of app r_tight)

(* ---- autotuner candidate isolation ---- *)

let tune_isolation () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let plan0 =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs
  in
  let images = Helpers.images_for app plan0 env in
  Fun.protect
    ~finally:(fun () -> Rt.Fault.disarm ())
    (fun () ->
      Rt.Fault.disarm ();
      (* the first candidate's warm-up hits the fault; the sweep must
         record it as Failed and keep going *)
      Rt.Fault.arm ~site:"kernel_compile" ~seed:0;
      let r =
        Tune.explore ~tiles:[ 8 ] ~thresholds:[ 0.2; 0.5 ] ~workers:1
          ~outputs:app.outputs ~env ~images ()
      in
      Alcotest.(check int) "full space swept" 2 (List.length r.samples);
      let failed =
        List.filter
          (fun (s : Tune.sample) ->
            match s.status with Tune.Failed _ -> true | Tune.Timed _ -> false)
          r.samples
      in
      Alcotest.(check int) "one candidate failed" 1 (List.length failed);
      match r.best.Tune.status with
      | Tune.Timed _ -> ()
      | Tune.Failed _ -> Alcotest.fail "best must be a timed sample")

(* ---- pool fail-fast ---- *)

let pool_failfast () =
  Rt.Pool.with_pool 2 (fun pool ->
      match
        Rt.Pool.parallel_for pool ~n:64 (fun i ->
            if i = 3 then failwith "boom")
      with
      | () -> Alcotest.fail "worker failure must propagate"
      | exception Failure m ->
        Alcotest.(check string) "original exception" "boom" m);
  (* the pool survives a failed job and runs the next one *)
  Rt.Pool.with_pool 2 (fun pool ->
      (try Rt.Pool.parallel_for pool ~n:8 (fun _ -> failwith "boom") with
      | Failure _ -> ());
      let hits = Atomic.make 0 in
      Rt.Pool.parallel_for pool ~n:8 (fun _ ->
          ignore (Atomic.fetch_and_add hits 1));
      Alcotest.(check int) "pool reusable after failure" 8 (Atomic.get hits))

(* ---- fault injector plumbing ---- *)

let fault_parse () =
  let s = Rt.Fault.parse "alloc:3" in
  Alcotest.(check string) "site" "alloc" s.Rt.Fault.site;
  Alcotest.(check int) "seed" 3 s.Rt.Fault.seed;
  let rejects what str =
    match Rt.Fault.parse str with
    | _ -> Alcotest.failf "%s: %S accepted" what str
    | exception Err.Polymage_error _ -> ()
  in
  rejects "unknown site" "bogus:1";
  rejects "missing seed" "alloc";
  rejects "bad seed" "alloc:x";
  rejects "negative seed" "alloc:-1"

(* ---- image I/O hardening ---- *)

let with_temp_file content f =
  let file = Filename.temp_file "polymage_test" ".pnm" in
  let oc = open_out_bin file in
  output_string oc content;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let image_io_malformed () =
  let rejects_pgm name content =
    with_temp_file content (fun file ->
        match Rt.Image_io.read_pgm file with
        | _ -> Alcotest.failf "%s: malformed PGM accepted" name
        | exception Rt.Image_io.Format_error _ -> ())
  in
  rejects_pgm "bad magic" "P4\n2 2\n255\n\000\000\000\000";
  rejects_pgm "zero cols" "P5\n0 2\n255\n";
  rejects_pgm "negative rows" "P5\n2 -2\n255\n\000\000";
  rejects_pgm "maxval zero" "P5\n2 2\n0\n\000\000\000\000";
  rejects_pgm "maxval too large" "P5\n2 2\n65535\n\000\000\000\000";
  rejects_pgm "non-integer dims" "P5\nab 2\n255\n";
  rejects_pgm "truncated raster" "P5\n4 4\n255\n\000\000";
  rejects_pgm "empty file" "";
  with_temp_file "P6\n2 2\n255\n\000\000" (fun file ->
      match Rt.Image_io.read_ppm file with
      | _ -> Alcotest.fail "truncated PPM accepted"
      | exception Rt.Image_io.Format_error _ -> ());
  (* a well-formed file still round-trips *)
  with_temp_file "P5\n2 2\n255\n\000\128\255\064" (fun file ->
      let b = Rt.Image_io.read_pgm file in
      Alcotest.(check int) "good PGM size" 4 (Rt.Buffer.size b);
      Alcotest.(check (float 1e-9)) "good PGM value" 1.
        (Rt.Buffer.get b [| 1; 0 |]))

(* ---- error type rendering ---- *)

let err_rendering () =
  let e = Err.error ~stage:"harris" Err.Exec "something broke" in
  Alcotest.(check string)
    "pp with stage" "[exec] stage harris: something broke" (Err.to_string e);
  let e2 = Err.error Err.Bounds "out of domain" in
  Alcotest.(check string)
    "pp without stage" "[bounds] out of domain" (Err.to_string e2);
  (* of_exn preserves a structured payload and wraps foreign ones *)
  let p = Err.of_exn (Err.Polymage_error e) in
  Alcotest.(check string) "of_exn structured" (Err.to_string e)
    (Err.to_string p);
  let w = Err.of_exn ~phase:Err.IO (Failure "disk on fire") in
  (match w.Err.phase with
  | Err.IO -> ()
  | ph -> Alcotest.failf "wrap phase: got %s" (Err.phase_name ph));
  Alcotest.(check bool) "wrap keeps message" true
    (let s = Err.to_string w and needle = "disk on fire" in
     let n = String.length needle in
     let rec at i =
       i + n <= String.length s && (String.sub s i n = needle || at (i + 1))
     in
     at 0)

let suite =
  ( "robustness",
    [
      Alcotest.test_case "error rendering" `Quick err_rendering;
      Alcotest.test_case "fault spec parsing" `Quick fault_parse;
      Alcotest.test_case "pool fail-fast" `Quick pool_failfast;
      Alcotest.test_case "image io rejects malformed files" `Quick
        image_io_malformed;
      Alcotest.test_case "scratch budget demotes groups" `Quick scratch_budget;
      Alcotest.test_case "ladder order" `Quick ladder_order;
      Alcotest.test_case "worker-start fault recovers" `Quick
        worker_start_recovers;
      Alcotest.test_case "healthy plan does not degrade" `Quick
        no_fault_no_degradation;
      Alcotest.test_case "autotuner isolates failed candidates" `Slow
        tune_isolation;
      Alcotest.test_case "fault sites x seeds: recover or raise" `Slow
        fault_property;
    ] )
