(* The report layer: the attribution span-tree fold on hand-built
   traces, [polymage explain] decision reports pinned against the
   compiled plan for harris and camera_pipe (structure, not timings),
   and the noise-aware regression gate exercised both ways on doctored
   baselines. *)
module C = Polymage_compiler
module Rt = Polymage_rt
module Trace = Polymage_util.Trace
module Apps = Polymage_apps.Apps
module Attribution = Polymage_report.Attribution
module Explain = Polymage_report.Explain
module Regress = Polymage_report.Regress
open Polymage_ir

(* ---- attribution: span-tree fold ---- *)

let span ?(cat = "t") ?(tid = 0) ?(depth = 0) name t0 t1 =
  Trace.Span
    { name; cat; args = []; t_start_ns = t0; t_end_ns = t1; tid; depth }

let msf = Alcotest.float 1e-9

let span_tree_nesting () =
  (* completion order, as the real buffer records it: children first *)
  let events =
    [
      span "b" 1_000_000 4_000_000 ~depth:1;
      span "d" 5_500_000 6_000_000 ~depth:2;
      span "c" 5_000_000 9_000_000 ~depth:1;
      span "a" 0 10_000_000;
      Trace.Instant { name = "i"; cat = "t"; args = []; t_ns = 7; tid = 0 };
    ]
  in
  match Attribution.span_tree events with
  | [ a ] ->
    Alcotest.(check string) "root" "a" a.Attribution.name;
    Alcotest.check msf "root duration" 10. a.Attribution.dur_ms;
    (* self = 10 - (3 + 4): the grandchild is not double-counted *)
    Alcotest.check msf "root self time" 3. a.Attribution.self_ms;
    (match a.Attribution.children with
    | [ b; c ] ->
      Alcotest.(check string) "first child in start order" "b"
        b.Attribution.name;
      Alcotest.check msf "leaf self = duration" 3. b.Attribution.self_ms;
      Alcotest.(check string) "second child" "c" c.Attribution.name;
      Alcotest.check msf "child self minus grandchild" 3.5
        c.Attribution.self_ms;
      (match c.Attribution.children with
      | [ d ] ->
        Alcotest.(check string) "grandchild" "d" d.Attribution.name;
        Alcotest.check msf "grandchild duration" 0.5 d.Attribution.dur_ms
      | l -> Alcotest.failf "expected 1 grandchild, got %d" (List.length l))
    | l -> Alcotest.failf "expected 2 children, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let span_tree_threads_and_ties () =
  let events =
    [
      span "a" 0 100;
      (* zero-length tie: depth breaks it, parent before child *)
      span "g1" 300 300 ~depth:1;
      span "g0" 300 300;
      span "f" 60 70 ~tid:1 ~depth:1;
      span "e" 50 200 ~tid:1;
    ]
  in
  let names ns = List.map (fun n -> n.Attribution.name) ns in
  let roots = Attribution.span_tree events in
  Alcotest.(check (list string))
    "roots per tid, start order" [ "a"; "g0"; "e" ] (names roots);
  let g0 = List.nth roots 1 and e = List.nth roots 2 in
  Alcotest.(check (list string))
    "zero-length child attaches" [ "g1" ]
    (names g0.Attribution.children);
  Alcotest.(check (list string))
    "other thread nests separately" [ "f" ]
    (names e.Attribution.children);
  Alcotest.check msf "zero-length self" 0. g0.Attribution.self_ms

let span_tree_siblings_not_nested () =
  (* disjoint spans at the same depth stay siblings: the stack unwinds *)
  let events = [ span "x" 0 50; span "y" 60 90 ] in
  match Attribution.span_tree events with
  | [ x; y ] ->
    Alcotest.(check string) "first" "x" x.Attribution.name;
    Alcotest.(check int) "no children" 0 (List.length x.Attribution.children);
    Alcotest.(check string) "second" "y" y.Attribution.name
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l)

(* attribution over a real profile run: counters, tiles, redundancy *)
let attribution_of_profile () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts =
    C.Options.with_kernel_measure false (C.Options.opt_vec ~estimates:env ())
  in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
      pipe.Pipeline.images
  in
  let report = Rt.Profile.run ~opts ~outputs:app.outputs ~env ~images in
  let a = Attribution.of_report report in
  Alcotest.(check int) "one profile item per plan item"
    (Array.length report.plan.items)
    (List.length a.Attribution.items);
  Alcotest.(check bool) "compile span attributed" true
    (a.Attribution.compile_ms > 0.);
  Alcotest.(check bool) "wall time recorded" true (a.Attribution.wall_ms >= 0.);
  let tiled =
    List.filter
      (fun it -> it.Attribution.tiles_planned > 0)
      a.Attribution.items
  in
  Alcotest.(check bool) "harris has a tiled item" true (tiled <> []);
  List.iter
    (fun it ->
      Alcotest.(check int)
        (it.Attribution.label ^ " ran every planned tile")
        it.Attribution.tiles_planned it.Attribution.tiles_run;
      Alcotest.(check bool) "members profiled" true
        (it.Attribution.stages <> []);
      List.iter
        (fun s ->
          let open Attribution in
          Alcotest.(check bool)
            (s.stage ^ " rows recorded")
            true
            (s.rows_kernel + s.rows_closure + s.rows_cond > 0);
          Alcotest.(check bool) (s.stage ^ " points counted") true (s.points > 0);
          Alcotest.(check bool)
            (s.stage ^ " domain sized")
            true (s.domain_points > 0);
          (* measured fallback pinned off: no decisions can fire *)
          Alcotest.(check int)
            (s.stage ^ " no fallback decisions")
            0
            (s.kernel_kept + s.kernel_dropped))
        it.Attribution.stages;
      match
        (it.Attribution.redundancy_predicted, it.Attribution.redundancy_measured)
      with
      | Some p, Some m ->
        Alcotest.(check bool) "predicted redundancy non-negative" true (p >= 0.);
        (* clamped tile windows compute at most the full-tile prediction *)
        Alcotest.(check bool) "measured <= predicted" true (m <= p +. 1e-6);
        Alcotest.(check bool) "measured above -1" true (m > -1.)
      | p, m ->
        Alcotest.failf "tiled item lost a redundancy ratio (pred %b, meas %b)"
          (p <> None) (m <> None))
    tiled

(* ---- explain: golden structure for harris and camera_pipe ---- *)

let explain_of app_name =
  let app = Apps.find app_name in
  let env = app.small_env in
  let opts = C.Options.opt_vec ~estimates:env () in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  (plan, env, Explain.make ~name:app_name plan ~env)

let tiled_items ex =
  List.filter
    (function Explain.Tiled_item _ -> true | Explain.Straight_item _ -> false)
    ex.Explain.items

let member_names (g : Explain.item_info) =
  match g with
  | Explain.Tiled_item g ->
    List.map (fun m -> m.Explain.stage) g.members |> List.sort compare
  | Explain.Straight_item s -> [ s.stage ]

let check_tiles_match_executor plan env ex =
  let planned = Rt.Executor.tile_counts plan env in
  List.iter
    (function
      | Explain.Tiled_item g ->
        Alcotest.(check int)
          (Printf.sprintf "item %d tiles_predicted = executor" g.item)
          (List.assoc g.item planned)
          g.tiles_predicted
      | Explain.Straight_item _ -> ())
    ex.Explain.items

let explain_harris () =
  let plan, env, ex = explain_of "harris" in
  Alcotest.(check int) "six stages after inlining" 6 ex.Explain.n_stages;
  Alcotest.(check int) "one plan item" 1 (List.length ex.Explain.items);
  (match ex.Explain.items with
  | [ (Explain.Tiled_item g as item) ] ->
    Alcotest.(check (list string))
      "fused group membership"
      [ "Ix"; "Iy"; "Sxx"; "Sxy"; "Syy"; "harris" ]
      (member_names item);
    Alcotest.(check (list string))
      "only the output is live-out" [ "harris" ]
      (List.filter_map
         (fun m -> if m.Explain.live_out then Some m.Explain.stage else None)
         g.members);
    Alcotest.(check int) "2-d tile" 2 (Array.length g.tile);
    Alcotest.(check (array int)) "overlap of the 4-wide stencil chain"
      [| 2; 2 |] g.overlap;
    Alcotest.(check bool) "scratchpad footprint accounted" true
      (g.scratch_bytes > 0);
    Alcotest.(check bool) "overlap predicts redundant work" true
      (g.redundancy_predicted > 0.)
  | _ -> Alcotest.fail "harris should compile to a single tiled group");
  Alcotest.(check bool) "products inlined into the box sums" true
    (List.mem ("Ixx", "Sxx") ex.Explain.inlined
    && List.mem ("trace", "harris") ex.Explain.inlined);
  Alcotest.(check bool) "every grouping verdict recorded" true
    (List.length ex.Explain.decisions >= 5
    && List.for_all
         (fun (d : C.Grouping.decision) -> d.verdict = C.Grouping.Merged)
         ex.Explain.decisions);
  check_tiles_match_executor plan env ex

let explain_camera_pipe () =
  let plan, env, ex = explain_of "camera_pipe" in
  Alcotest.(check int) "25 stages" 25 ex.Explain.n_stages;
  (match tiled_items ex with
  | [ Explain.Tiled_item g ] ->
    Alcotest.(check int) "every stage fuses into the one group"
      ex.Explain.n_stages
      (List.length g.members);
    Alcotest.(check (list string))
      "only the output is live-out" [ "processed" ]
      (List.filter_map
         (fun m -> if m.Explain.live_out then Some m.Explain.stage else None)
         g.members);
    Alcotest.(check int) "3-d tile (channel dim untiled)" 3
      (Array.length g.overlap);
    Alcotest.(check int) "channel dim has no overlap" 0 g.overlap.(0)
  | l -> Alcotest.failf "expected 1 tiled item, got %d" (List.length l));
  Alcotest.(check bool) "tone curve inlined into the output" true
    (List.mem ("curve", "processed") ex.Explain.inlined);
  Alcotest.(check int) "nothing demoted" 0 (List.length ex.Explain.demotions);
  check_tiles_match_executor plan env ex

let jfield name = function
  | Trace.Obj fields -> List.assoc_opt name fields
  | _ -> None

let explain_json_schema () =
  let plan, env, ex = explain_of "harris" in
  match Trace.parse_json (Explain.to_json_string ex) with
  | Error e -> Alcotest.failf "explain JSON does not parse: %s" e
  | Ok j ->
    (match jfield "schema_version" j with
    | Some (Trace.Num v) ->
      Alcotest.(check int) "schema version" Explain.schema_version
        (int_of_float v)
    | _ -> Alcotest.fail "schema_version missing");
    (match jfield "app" j with
    | Some (Trace.Str s) -> Alcotest.(check string) "app name" "harris" s
    | _ -> Alcotest.fail "app missing");
    List.iter
      (fun f ->
        if jfield f j = None then Alcotest.failf "top-level field %s missing" f)
      [ "options"; "n_stages"; "env"; "inlined"; "grouping_decisions";
        "items"; "demotions" ];
    (* acceptance: tiles_predicted in the JSON equals the executor's
       planned tile counts for the same plan and bindings *)
    let planned = Rt.Executor.tile_counts plan env in
    (match jfield "items" j with
    | Some (Trace.Arr items) ->
      let checked = ref 0 in
      List.iter
        (fun item ->
          match (jfield "kind" item, jfield "item" item) with
          | Some (Trace.Str "tiled"), Some (Trace.Num k) -> (
            incr checked;
            match jfield "tiles_predicted" item with
            | Some (Trace.Num t) ->
              Alcotest.(check int)
                (Printf.sprintf "json item %d tiles" (int_of_float k))
                (List.assoc (int_of_float k) planned)
                (int_of_float t)
            | _ -> Alcotest.fail "tiled item lacks tiles_predicted")
          | _ -> ())
        items;
      Alcotest.(check bool) "at least one tiled item serialized" true
        (!checked > 0)
    | _ -> Alcotest.fail "items missing")

(* ---- regression gate ---- *)

let m ?(noise = 0.) app metric value =
  { Regress.app; size = "8x8"; metric; value; noise }

let gate_within_tolerance () =
  let o =
    Regress.compare_cells ~tolerance:0.10
      ~baseline:[ m "harris" "kernel_speedup_base" 1.0 ]
      ~current:[ m "harris" "kernel_speedup_base" 0.95 ] ()
  in
  Alcotest.(check bool) "ok" true (Regress.ok o);
  (match o.Regress.cells with
  | [ c ] ->
    Alcotest.check (Alcotest.float 1e-9) "delta" (-0.05) c.Regress.delta;
    Alcotest.(check bool) "not regressed" false c.Regress.regressed
  | l -> Alcotest.failf "expected 1 cell, got %d" (List.length l));
  (* improvements never trip the gate *)
  let o =
    Regress.compare_cells ~tolerance:0.10
      ~baseline:[ m "harris" "kernel_speedup_base" 1.0 ]
      ~current:[ m "harris" "kernel_speedup_base" 2.0 ] ()
  in
  Alcotest.(check bool) "faster is fine" true (Regress.ok o)

let gate_catches_regression () =
  let o =
    Regress.compare_cells ~tolerance:0.10
      ~baseline:
        [
          m "harris" "kernel_speedup_base" 1.0;
          m "unsharp_mask" "kernel_speedup_base" 1.2;
        ]
      ~current:
        [
          m "harris" "kernel_speedup_base" 0.85;
          m "unsharp_mask" "kernel_speedup_base" 1.19;
        ]
      ()
  in
  Alcotest.(check bool) "gate fails" false (Regress.ok o);
  match Regress.regressions o with
  | [ c ] ->
    Alcotest.(check string) "the slow cell" "harris" c.Regress.capp;
    Alcotest.(check string) "right metric" "kernel_speedup_base"
      c.Regress.cmetric
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let gate_noise_widens_bar () =
  let baseline = [ m "harris" "kernel_speedup_base" 1.0 ] in
  (* -15% with a quiet run: beyond the 10% tolerance *)
  let noisy current =
    Regress.compare_cells ~tolerance:0.10 ~baseline ~current ()
  in
  Alcotest.(check bool) "quiet run regresses" false
    (Regress.ok (noisy [ m "harris" "kernel_speedup_base" 0.85 ]));
  (* same delta under measured noise: the bar widens, the gate holds *)
  let o = noisy [ m ~noise:0.08 "harris" "kernel_speedup_base" 0.85 ] in
  Alcotest.(check bool) "noisy run tolerated" true (Regress.ok o);
  (match o.Regress.cells with
  | [ c ] ->
    Alcotest.check (Alcotest.float 1e-9) "combined noise" 0.08
      c.Regress.cnoise
  | _ -> Alcotest.fail "expected 1 cell");
  (* baseline-side noise counts too *)
  let o =
    Regress.compare_cells ~tolerance:0.10
      ~baseline:[ m ~noise:0.04 "harris" "kernel_speedup_base" 1.0 ]
      ~current:[ m ~noise:0.04 "harris" "kernel_speedup_base" 0.85 ] ()
  in
  Alcotest.(check bool) "noise sums across both sides" true (Regress.ok o)

let gate_missing_and_degenerate () =
  let o =
    Regress.compare_cells ~tolerance:0.10
      ~baseline:
        [
          m "harris" "kernel_speedup_base" 1.0;
          m "harris" "kernel_speedup_opt_vec" 1.5;
          m "harris" "degenerate" 0.0;
        ]
      ~current:
        [
          m "harris" "kernel_speedup_base" 1.0;
          m "harris" "degenerate" 0.5;
        ]
      ()
  in
  Alcotest.(check int) "unmatched baseline cell reported" 1
    (List.length o.Regress.missing);
  Alcotest.(check bool) "missing cells do not regress the gate" true
    (Regress.ok o);
  let d =
    List.find (fun c -> c.Regress.cmetric = "degenerate") o.Regress.cells
  in
  Alcotest.check (Alcotest.float 1e-9) "zero baseline yields zero delta" 0.
    d.Regress.delta

let baseline_v2 =
  {|{"schema_version": 2, "bench": "kernels", "scale": 8,
     "apps": [{"name": "harris", "size": "96x72",
               "base_ms": 10.5, "kernel_speedup_base": 1.5}]}|}

let baseline_json_versions () =
  let parse src =
    match Trace.parse_json src with
    | Error e -> Alcotest.failf "baseline does not parse: %s" e
    | Ok j -> Regress.of_json j
  in
  (match parse baseline_v2 with
  | Error e -> Alcotest.failf "v2 baseline rejected: %s" e
  | Ok b ->
    Alcotest.(check int) "schema v2" 2 b.Regress.schema_version;
    Alcotest.(check string) "bench" "kernels" b.Regress.bench;
    Alcotest.(check int) "scale" 8 b.Regress.scale;
    Alcotest.(check int) "every numeric field is a cell" 2
      (List.length b.Regress.cells);
    List.iter
      (fun (c : Regress.measurement) ->
        Alcotest.(check string) "app" "harris" c.Regress.app;
        Alcotest.check (Alcotest.float 1e-9) "loaded cells carry no noise" 0.
          c.Regress.noise)
      b.Regress.cells);
  (* schema v3 carries the backend and host metadata *)
  (match
     parse
       {|{"schema_version": 3, "bench": "backend", "scale": 8,
          "backend": "c",
          "host": {"cores": 4, "workers": 2, "compiler": "cc 13.2"},
          "apps": [{"name": "harris", "size": "800x800",
                    "c_speedup_vs_native": 12.0}]}|}
   with
  | Error e -> Alcotest.failf "v3 baseline rejected: %s" e
  | Ok b ->
    Alcotest.(check int) "schema v3" 3 b.Regress.schema_version;
    Alcotest.(check string) "backend recorded" "c" b.Regress.backend;
    (match b.Regress.host with
    | None -> Alcotest.fail "v3 host metadata dropped"
    | Some h ->
      Alcotest.(check int) "cores" 4 h.Regress.cores;
      Alcotest.(check int) "workers" 2 h.Regress.workers;
      Alcotest.(check string) "compiler" "cc 13.2" h.Regress.compiler));
  (* PR1-era files predate the field: they load as version 1 *)
  (match
     parse
       {|{"bench": "kernels", "scale": 8,
          "apps": [{"name": "harris", "size": "96x72",
                    "kernel_speedup_base": 1.5}]}|}
   with
  | Error e -> Alcotest.failf "v1 baseline rejected: %s" e
  | Ok b -> Alcotest.(check int) "schema v1 default" 1 b.Regress.schema_version);
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed baseline %S" bad
      | Error _ -> ())
    [
      {|{"bench": "kernels"}|};
      {|{"apps": [{"size": "96x72", "kernel_speedup_base": 1.5}]}|};
      {|[1, 2]|};
    ]

(* Cross-backend comparisons are refused: compiled-binary and
   interpreter times differ by orders of magnitude, so a gate across
   them only measures the setup mistake. *)
let baseline_backend_guard () =
  let parse src =
    match Trace.parse_json src with
    | Error e -> Alcotest.failf "baseline does not parse: %s" e
    | Ok j -> (
      match Regress.of_json j with
      | Error e -> Alcotest.failf "baseline rejected: %s" e
      | Ok b -> b)
  in
  let v2 = parse baseline_v2 in
  Alcotest.(check string) "pre-v3 files default to native" "native"
    v2.Regress.backend;
  (match Regress.check_backend v2 ~current:"native" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "same-backend comparison refused: %s" e);
  (match Regress.check_backend v2 ~current:"c" with
  | Ok () -> Alcotest.fail "cross-backend comparison accepted"
  | Error e ->
    Alcotest.(check bool) "error names both backends" true
      (let has needle =
         let lh = String.length e and ln = String.length needle in
         let rec go i =
           i + ln <= lh && (String.sub e i ln = needle || go (i + 1))
         in
         go 0
       in
       has "\"native\"" && has "\"c\""));
  let v3 =
    parse
      {|{"schema_version": 3, "bench": "backend", "scale": 8,
         "backend": "c",
         "apps": [{"name": "harris", "size": "800x800",
                   "c_speedup_vs_native": 12.0}]}|}
  in
  match Regress.check_backend v3 ~current:"c" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "c-vs-c comparison refused: %s" e

(* Within the compiled backend, the subprocess and dlopen tiers time
   different things (spawn + blob I/O vs a bare call), so schema v4
   records the tier and the gate refuses to compare across tiers.
   Older files default the tier from the backend they measured. *)
let baseline_tier_guard () =
  let parse src =
    match Trace.parse_json src with
    | Error e -> Alcotest.failf "baseline does not parse: %s" e
    | Ok j -> (
      match Regress.of_json j with
      | Error e -> Alcotest.failf "baseline rejected: %s" e
      | Ok b -> b)
  in
  let v2 = parse baseline_v2 in
  Alcotest.(check string) "pre-v4 files default tier from backend" "native"
    v2.Regress.tier;
  (match Regress.check_tier v2 ~current:"native" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "same-tier comparison refused: %s" e);
  let v3 =
    parse
      {|{"schema_version": 3, "bench": "backend", "scale": 8,
         "backend": "c",
         "apps": [{"name": "harris", "size": "800x800",
                   "c_speedup_vs_native": 12.0}]}|}
  in
  Alcotest.(check string) "v3 tier defaults to its backend" "c"
    v3.Regress.tier;
  let v4 =
    parse
      {|{"schema_version": 4, "bench": "backend", "scale": 8,
         "backend": "c", "tier": "c-dlopen",
         "host": {"cores": 4, "workers": 1, "compiler": "cc 13.2"},
         "apps": [{"name": "harris", "size": "800x800",
                   "dlopen_steady_ms": 1.5, "c_steady_ms": 4.5}]}|}
  in
  Alcotest.(check int) "schema v4" 4 v4.Regress.schema_version;
  Alcotest.(check string) "v4 tier recorded" "c-dlopen" v4.Regress.tier;
  Alcotest.(check string) "v4 backend still coarse" "c" v4.Regress.backend;
  (match Regress.check_tier v4 ~current:"c-dlopen" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "dlopen-vs-dlopen comparison refused: %s" e);
  match Regress.check_tier v4 ~current:"c" with
  | Ok () -> Alcotest.fail "cross-tier comparison accepted"
  | Error e ->
    Alcotest.(check bool) "error names both tiers" true
      (let has needle =
         let lh = String.length e and ln = String.length needle in
         let rec go i =
           i + ln <= lh && (String.sub e i ln = needle || go (i + 1))
         in
         go 0
       in
       has "\"c-dlopen\"" && has "\"c\"")

(* Schema v5 records the measurement lifecycle: one-shot CLI runs and
   serve-mode latency percentiles are different quantities, so the
   gate refuses to compare across modes — in both directions.  Every
   older schema defaults to "oneshot". *)
let baseline_mode_guard () =
  let parse src =
    match Trace.parse_json src with
    | Error e -> Alcotest.failf "baseline does not parse: %s" e
    | Ok j -> (
      match Regress.of_json j with
      | Error e -> Alcotest.failf "baseline rejected: %s" e
      | Ok b -> b)
  in
  let v5 =
    parse
      {|{"schema_version": 5, "bench": "serve", "scale": 4,
         "mode": "serve", "backend": "c", "tier": "c-dlopen",
         "host": {"cores": 1, "workers": 1, "compiler": "cc 13.2"},
         "apps": [{"name": "harris", "size": "1600x1600",
                   "serve_p50_over_compute": 1.05,
                   "serve_p99_over_compute": 7.3}]}|}
  in
  Alcotest.(check int) "schema v5" 5 v5.Regress.schema_version;
  Alcotest.(check string) "v5 mode recorded" "serve" v5.Regress.mode;
  Alcotest.(check int) "ratio cells loaded" 2 (List.length v5.Regress.cells);
  (* every pre-v5 file is a one-shot measurement *)
  List.iter
    (fun (src, what) ->
      Alcotest.(check string)
        (what ^ " defaults to oneshot")
        "oneshot" (parse src).Regress.mode)
    [
      (baseline_v2, "v2");
      ( {|{"bench": "kernels", "scale": 8,
           "apps": [{"name": "harris", "size": "96x72",
                     "kernel_speedup_base": 1.5}]}|},
        "v1" );
      ( {|{"schema_version": 3, "bench": "backend", "scale": 8,
           "backend": "c",
           "apps": [{"name": "harris", "size": "800x800",
                     "c_speedup_vs_native": 12.0}]}|},
        "v3" );
      ( {|{"schema_version": 4, "bench": "backend", "scale": 8,
           "backend": "c", "tier": "c-dlopen",
           "apps": [{"name": "harris", "size": "800x800",
                     "dlopen_steady_ms": 1.5}]}|},
        "v4" );
    ];
  (match Regress.check_mode v5 ~current:"serve" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve-vs-serve comparison refused: %s" e);
  let has hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (* refused fast, both ways, naming both modes *)
  (match Regress.check_mode v5 ~current:"oneshot" with
  | Ok () -> Alcotest.fail "serve baseline accepted for a oneshot run"
  | Error e ->
    Alcotest.(check bool) "refusal names both modes" true
      (has e "\"serve\"" && has e "\"oneshot\""));
  match Regress.check_mode (parse baseline_v2) ~current:"serve" with
  | Ok () -> Alcotest.fail "oneshot baseline accepted for a serve run"
  | Error e ->
    Alcotest.(check bool) "refusal names both modes" true
      (has e "\"serve\"" && has e "\"oneshot\"")

(* Serve-mode cells are latency ratios — lower is better — so the
   gate's regression direction flips per metric. *)
let gate_lower_is_better () =
  let lower = fun metric -> metric = "serve_p99_over_compute" in
  let base = [ m "harris" "serve_p99_over_compute" 7.0 ] in
  (* a higher latency ratio beyond tolerance trips the flipped gate *)
  let o =
    Regress.compare_cells ~lower_is_better:lower ~tolerance:0.10
      ~baseline:base
      ~current:[ m "harris" "serve_p99_over_compute" 8.4 ]
      ()
  in
  Alcotest.(check bool) "doctored p99 increase regresses" false (Regress.ok o);
  (match o.Regress.cells with
  | [ c ] ->
    Alcotest.(check bool) "bar is positive for lower-is-better" true
      (c.Regress.cbar > 0.)
  | _ -> Alcotest.fail "expected 1 cell");
  (* a lower ratio is an improvement, not a regression *)
  let o =
    Regress.compare_cells ~lower_is_better:lower ~tolerance:0.10
      ~baseline:base
      ~current:[ m "harris" "serve_p99_over_compute" 3.5 ]
      ()
  in
  Alcotest.(check bool) "halved p99 passes" true (Regress.ok o);
  (* the same doctored increase without the flip sails through — the
     direction really is per-metric *)
  let o =
    Regress.compare_cells ~tolerance:0.10 ~baseline:base
      ~current:[ m "harris" "serve_p99_over_compute" 8.4 ]
      ()
  in
  Alcotest.(check bool) "unflipped gate ignores the increase" true
    (Regress.ok o);
  (* and the default direction still catches a drop on another metric
     in the same comparison *)
  let o =
    Regress.compare_cells ~lower_is_better:lower ~tolerance:0.10
      ~baseline:
        [
          m "harris" "serve_p99_over_compute" 7.0;
          m "harris" "throughput_rps" 10.0;
        ]
      ~current:
        [
          m "harris" "serve_p99_over_compute" 7.0;
          m "harris" "throughput_rps" 6.0;
        ]
      ()
  in
  (match Regress.regressions o with
  | [ c ] ->
    Alcotest.(check string) "throughput drop still regresses"
      "throughput_rps" c.Regress.cmetric;
    Alcotest.(check bool) "bar is negative for higher-is-better" true
      (c.Regress.cbar < 0.)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* noise widens the flipped bar too *)
  let o =
    Regress.compare_cells ~lower_is_better:lower ~tolerance:0.10
      ~baseline:base
      ~current:[ m ~noise:0.15 "harris" "serve_p99_over_compute" 8.4 ]
      ()
  in
  Alcotest.(check bool) "noisy flipped cell tolerated" true (Regress.ok o)

(* A serve baseline written to disk drives the file-based gate both
   ways, exactly as bench --compare consumes it. *)
let serve_baseline_file_gate () =
  let file = Filename.temp_file "pm_serve_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc
        {|{"schema_version": 5, "bench": "serve", "scale": 4,
           "mode": "serve", "backend": "c", "tier": "c-dlopen",
           "apps": [{"name": "unsharp_mask", "size": "512x512",
                     "serve_p50_over_compute": 1.16,
                     "serve_p99_over_compute": 11.2}]}|};
      close_out oc;
      match Regress.load file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok b ->
        Alcotest.(check string) "mode survives the file" "serve"
          b.Regress.mode;
        let ratios =
          List.filter
            (fun (c : Regress.measurement) ->
              Filename.check_suffix c.Regress.metric "_over_compute")
            b.Regress.cells
        in
        let lower = fun metric -> Filename.check_suffix metric "_over_compute" in
        let scaled k =
          List.map
            (fun (c : Regress.measurement) ->
              { c with Regress.value = c.Regress.value *. k })
            ratios
        in
        let gate current =
          Regress.ok
            (Regress.compare_cells ~lower_is_better:lower ~tolerance:0.10
               ~baseline:ratios ~current ())
        in
        Alcotest.(check bool) "identical run passes" true (gate ratios);
        Alcotest.(check bool) "doctored +50%% latency fires" false
          (gate (scaled 1.5));
        Alcotest.(check bool) "improved latency passes" true (gate (scaled 0.6)))

let baseline_load_and_compare () =
  let file = Filename.temp_file "pm_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc baseline_v2;
      close_out oc;
      match Regress.load file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok b ->
        let ratios =
          List.filter
            (fun (c : Regress.measurement) ->
              c.Regress.metric = "kernel_speedup_base")
            b.Regress.cells
        in
        (* doctored current at half the baseline: the gate must fire *)
        let halved =
          List.map
            (fun (c : Regress.measurement) ->
              { c with Regress.value = c.Regress.value /. 2. })
            ratios
        in
        let o =
          Regress.compare_cells ~tolerance:0.15 ~baseline:ratios
            ~current:halved ()
        in
        Alcotest.(check bool) "halved speedup regresses" false (Regress.ok o);
        (* and current == baseline passes *)
        let o =
          Regress.compare_cells ~tolerance:0.15 ~baseline:ratios
            ~current:ratios ()
        in
        Alcotest.(check bool) "identical run passes" true (Regress.ok o));
  (match Regress.load "/nonexistent/pm_baseline.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ())

(* ---- suite ---- *)

let suite =
  ( "report",
    [
      Alcotest.test_case "span tree: nesting and self time" `Quick
        span_tree_nesting;
      Alcotest.test_case "span tree: threads and zero-length ties" `Quick
        span_tree_threads_and_ties;
      Alcotest.test_case "span tree: disjoint siblings" `Quick
        span_tree_siblings_not_nested;
      Alcotest.test_case "attribution folds a harris profile" `Quick
        attribution_of_profile;
      Alcotest.test_case "explain harris: groups, tiles, inlining" `Quick
        explain_harris;
      Alcotest.test_case "explain camera_pipe: fusion and overlap" `Quick
        explain_camera_pipe;
      Alcotest.test_case "explain JSON matches schema and executor" `Quick
        explain_json_schema;
      Alcotest.test_case "gate: within tolerance" `Quick gate_within_tolerance;
      Alcotest.test_case "gate: catches a regression" `Quick
        gate_catches_regression;
      Alcotest.test_case "gate: noise widens the bar" `Quick
        gate_noise_widens_bar;
      Alcotest.test_case "gate: missing and zero cells" `Quick
        gate_missing_and_degenerate;
      Alcotest.test_case "baseline JSON: v1/v2 and malformed" `Quick
        baseline_json_versions;
      Alcotest.test_case "baseline backend guard" `Quick
        baseline_backend_guard;
      Alcotest.test_case "baseline tier guard (schema v4)" `Quick
        baseline_tier_guard;
      Alcotest.test_case "baseline mode guard (schema v5)" `Quick
        baseline_mode_guard;
      Alcotest.test_case "gate: lower-is-better metrics" `Quick
        gate_lower_is_better;
      Alcotest.test_case "serve baseline file: gate both ways" `Quick
        serve_baseline_file_gate;
      Alcotest.test_case "baseline file: load and gate both ways" `Quick
        baseline_load_and_compare;
    ] )
