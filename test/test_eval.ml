(* The closure compiler (Eval) must agree with the structural
   reference evaluator (Expr.eval) on arbitrary expressions, including
   stage and image reads — this pins the runtime's expression
   semantics to the IR's. *)
open Polymage_ir
module Rt = Polymage_rt
open Polymage_dsl.Dsl

(* Fixed scene: one producer buffer and one image, both 16x16 with lo
   (2,2) for the producer, plus a parameter bound to 5. *)
let xvar = Types.var ~name:"ex" ()
let yvar = Types.var ~name:"ey" ()
let par = Types.param ~name:"ep" ()
let bindings = [ (par, 5) ]
let img = image ~name:"eval_img" Float [ ib 16; ib 16 ]
let prod = func ~name:"eval_prod" Float
    [ (xvar, interval (ib 2) (ib 17)); (yvar, interval (ib 2) (ib 17)) ]

let () = define prod [ always (v xvar +: v yvar) ]

let prod_buf =
  let b = Rt.Buffer.create ~lo:[| 2; 2 |] ~dims:[| 16; 16 |] in
  for x = 2 to 17 do
    for y = 2 to 17 do
      Rt.Buffer.set b [| x; y |] (float_of_int ((x * 31) + y) /. 7.)
    done
  done;
  b

let img_buf =
  Rt.Buffer.of_image img bindings (fun c ->
      float_of_int ((c.(0) * 13) + (c.(1) * 3)) /. 11.)

(* Random expressions whose reads always land inside the windows:
   producer indices are clamped into [4, 15] via affine shifts of the
   loop variables, which range over [6, 12]. *)
let gen_expr =
  let open QCheck.Gen in
  let idx dv =
    let* d = int_range (-2) 2 in
    return (dv +: i d)
  in
  let leaf =
    oneof
      [
        map (fun n -> fl (float_of_int n /. 4.)) (int_range (-12) 12);
        return (v xvar);
        return (v yvar);
        return (p par);
        ( let* ix = idx (v xvar) in
          let* iy = idx (v yvar) in
          return (app prod [ ix; iy ]) );
        ( let* ix = idx (v xvar) in
          let* iy = idx (v yvar) in
          return (img_at img [ ix; iy ]) );
      ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> a +: b) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> a *: b) (go (n - 1)) (go (n - 1)));
          (1, map2 (fun a b -> a -: b) (go (n - 1)) (go (n - 1)));
          (1, map (fun a -> sqrt_ (abs_ a)) (go (n - 1)));
          (1, map (fun a -> a /^ 2) (go (n - 1)));
          (1, map (fun a -> cast UChar a) (go (n - 1)));
          ( 1,
            map2 (fun a b -> select (a <=: b) (a +: fl 1.) b) (go (n - 1))
              (go (n - 1)) );
          (1, map2 min_ (go (n - 1)) (go (n - 1)));
        ]
  in
  go 4

let oracle e (x, y) =
  Expr.eval
    ~var:(fun w ->
      if Types.var_equal w xvar then float_of_int x
      else if Types.var_equal w yvar then float_of_int y
      else Alcotest.fail "foreign var")
    ~param:(fun q ->
      if Types.param_equal q par then 5. else Alcotest.fail "foreign param")
    ~call:(fun f args ->
      assert (Ast.func_equal f prod);
      Rt.Buffer.get prod_buf (Array.map int_of_float args))
    ~img:(fun im args ->
      assert (Ast.image_equal im img);
      Rt.Buffer.get img_buf (Array.map int_of_float args))
    e

let compiled unsafe e =
  let lookup = function
    | Rt.Eval.Src_func _ -> Rt.Eval.view_of_buffer "prod" prod_buf
    | Rt.Eval.Src_img _ -> Rt.Eval.view_of_buffer "img" img_buf
  in
  Rt.Eval.compile ~unsafe ~vars:[ xvar; yvar ] ~bindings ~lookup e

let agree unsafe (e, (x, y)) =
  let a = oracle e (x, y) in
  let f = compiled unsafe e in
  let b = f [| x; y |] in
  (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-12

let point = QCheck.Gen.(pair (int_range 6 12) (int_range 6 12))

let suite =
  ( "eval",
    [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"compiled == oracle (safe)" ~count:300
           (QCheck.make
              ~print:(fun (e, (x, y)) ->
                Printf.sprintf "%s @ (%d,%d)" (Expr.to_string e) x y)
              QCheck.Gen.(pair gen_expr point))
           (agree false));
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"compiled == oracle (unsafe)" ~count:300
           (QCheck.make
              ~print:(fun (e, (x, y)) ->
                Printf.sprintf "%s @ (%d,%d)" (Expr.to_string e) x y)
              QCheck.Gen.(pair gen_expr point))
           (agree true));
      Alcotest.test_case "out-of-window read reports" `Quick (fun () ->
          let e = app prod [ v xvar +: i 100; v yvar ] in
          let f = compiled false e in
          match f [| 6; 6 |] with
          | exception Polymage_util.Err.Polymage_error { phase = Exec; _ } -> ()
          | _ -> Alcotest.fail "expected Polymage_error");
      Alcotest.test_case "view repositioning" `Quick (fun () ->
          (* reading through a scratch view attached at an offset start
             must agree with absolute reads *)
          let data = Array.init 25 (fun k -> float_of_int k) in
          let view = Rt.Eval.view_of_strides "scr" [| 5; 1 |] in
          Rt.Eval.attach_scratch view data ~start:[| 10; 20 |];
          let e = app prod [ v xvar; v yvar ] in
          let lookup = function
            | Rt.Eval.Src_func _ -> view
            | Rt.Eval.Src_img _ -> Alcotest.fail "no image"
          in
          let f =
            Rt.Eval.compile ~unsafe:false ~vars:[ xvar; yvar ] ~bindings
              ~lookup e
          in
          (* absolute (11, 22) is scratch cell (1, 2) = 7 *)
          Alcotest.(check (float 0.)) "relative indexing" 7.
            (f [| 11; 22 |]));
    ] )
