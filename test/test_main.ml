let () =
  Alcotest.run "polymage"
    [
      Test_util.suite;
      Test_histogram.suite;
      Test_ir.suite;
      Test_dsl.suite;
      Test_poly.suite;
      Test_compiler.suite;
      Test_runtime.suite;
      Test_eval.suite;
      Test_more_props.suite;
      Test_kernel.suite;
      Test_exec_matrix.suite;
      Test_random.suite;
      Test_apps.suite;
      Test_codegen.suite;
      Test_tune.suite;
      Test_fault.suite;
      Test_trace.suite;
      Test_report.suite;
      Test_backend.suite;
      Test_robust.suite;
      Test_serve.suite;
      Test_simd.suite;
    ]
