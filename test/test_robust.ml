(* Robustness layer: structured signal reporting and the watchdog in
   Proc, rlimit backstops, capped captures, crash markers and trust
   persistence across cache meta formats, cross-process single-flight
   locking, and the quarantine protocol end to end against planted
   hostile artifacts (SIGSEGV, infinite loop) and injected faults
   (exec_crash, exec_hang, compile_flaky).  The planted-artifact tests
   are the headline guarantee: a crashing or hanging shared object
   must never take the parent down — the canary child absorbs it, the
   entry is invalidated, and the ladder still serves a correct
   result. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Cgen = Polymage_codegen.Cgen
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Toolchain = Polymage_backend.Toolchain
module Proc = Polymage_backend.Proc
module Cache = Polymage_backend.Cache
module Backend = Polymage_backend.Backend
module Exec_tier = Polymage_backend.Exec_tier

let have_cc = lazy (Toolchain.available ())

let fresh_dir () =
  let d = Filename.temp_file "pm_robust" "" in
  Sys.remove d;
  d

let plan_for ?(opts = fun env -> C.Options.opt_vec ~estimates:env ())
    name =
  let app = Apps.find name in
  let env = app.App.small_env in
  let plan = C.Compile.run (opts env) ~outputs:app.App.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.App.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  (plan, env, images)

let with_metrics f =
  let were_on = Metrics.enabled () in
  Metrics.enable ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> if not were_on then Metrics.disable ())
    f

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let check_outputs_match ~what native
    (outputs : (Ast.func * Rt.Buffer.t) list) =
  List.iter
    (fun ((f : Ast.func), (cb : Rt.Buffer.t)) ->
      let nb = Rt.Executor.output_buffer native f in
      let maxabs =
        Array.fold_left
          (fun a v -> Float.max a (Float.abs v))
          0. nb.Rt.Buffer.data
      in
      let tol = 1e-6 *. (1. +. maxabs) in
      let d = Rt.Buffer.max_abs_diff nb cb in
      let tol =
        match f.Ast.ftyp with
        | Types.Float | Types.Double -> tol
        | Types.UChar | Types.Short | Types.Int -> 1. +. tol
      in
      if not (d <= tol) then
        Alcotest.failf "%s/%s: |native - compiled| = %g exceeds %g" what
          f.Ast.fname d tol)
    outputs

(* ---- Proc: structured signal reporting ---- *)

let proc_signal_reporting () =
  let r = Proc.run "sh" [ "-c"; "exit 3" ] in
  Alcotest.(check int) "plain exit passes through" 3 r.Proc.status;
  Alcotest.(check (option string)) "no signal on plain exit" None
    r.Proc.signal;
  let r = Proc.run "sh" [ "-c"; "kill -11 $$" ] in
  Alcotest.(check int) "signal death follows 128+N" 139 r.Proc.status;
  Alcotest.(check (option string)) "the signal is named" (Some "SIGSEGV")
    r.Proc.signal;
  Alcotest.(check bool) "a crash is not a watchdog kill" false
    r.Proc.timed_out;
  Alcotest.(check bool) "describe_status names the signal" true
    (contains ~needle:"SIGSEGV" (Proc.describe_status r))

(* ---- Proc: watchdog ---- *)

let proc_watchdog_kills_hung_child () =
  with_metrics @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let r = Proc.run ~timeout_ms:300 "sleep" [ "30" ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "the deadline fired" true r.Proc.timed_out;
  Alcotest.(check bool) "SIGTERM sufficed" true
    (r.Proc.signal = Some "SIGTERM");
  Alcotest.(check bool) "reaped well under 2x the deadline" true
    (elapsed < 3.0);
  Alcotest.(check bool) "the kill was counted" true
    (Metrics.get "backend/watchdog_kills" >= 1);
  Alcotest.(check bool) "describe_status blames the watchdog" true
    (contains ~needle:"watchdog" (Proc.describe_status r));
  (* A child that ignores SIGTERM gets SIGKILL after the grace
     window.  trap '' TERM is inherited across fork+exec, so the whole
     process group shrugs off the first kill. *)
  let t0 = Unix.gettimeofday () in
  let r = Proc.run ~timeout_ms:300 "sh" [ "-c"; "trap '' TERM; sleep 30" ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "the stubborn child still timed out" true
    r.Proc.timed_out;
  Alcotest.(check (option string)) "escalated to SIGKILL" (Some "SIGKILL")
    r.Proc.signal;
  Alcotest.(check bool) "total reap time stays bounded" true
    (elapsed < 3.0)

(* ---- Proc: CPU rlimit backstop ---- *)

let proc_rlimit_cpu () =
  let r =
    Proc.run ~timeout_ms:20_000 ~rlimit_cpu_s:1 "sh"
      [ "-c"; "while :; do :; done" ]
  in
  Alcotest.(check bool) "the kernel stopped the spin" true
    (r.Proc.signal = Some "SIGXCPU" || r.Proc.signal = Some "SIGKILL");
  Alcotest.(check bool) "the watchdog never had to" false r.Proc.timed_out

(* ---- Proc: capped capture with an explicit truncation marker ---- *)

let proc_capture_truncation () =
  with_metrics @@ fun () ->
  let r =
    Proc.run "sh" [ "-c"; "head -c 200000 /dev/zero | tr '\\0' x" ]
  in
  Alcotest.(check int) "producer exits cleanly" 0 r.Proc.status;
  let marker = Printf.sprintf "... [truncated at %d bytes]" Proc.capture_limit in
  Alcotest.(check bool) "capture ends with the truncation marker" true
    (contains ~needle:marker r.Proc.stdout);
  Alcotest.(check int) "capture is capped at the limit plus marker"
    (Proc.capture_limit + 1 + String.length marker)
    (String.length r.Proc.stdout);
  Alcotest.(check bool) "truncation was counted" true
    (Metrics.get "backend/capture_truncated" >= 1)

(* ---- Cache: trust across meta formats 1/2/3 ---- *)

let meta_format_back_compat () =
  let dir = fresh_dir () in
  let key = String.make 32 'a' in
  let art =
    Cache.store ~kind:Cache.So ~entry:"polymage_run" ~dir ~key
      ~build:(fun p -> write_file p "not really an object")
      ()
  in
  let size = (Unix.stat art).Unix.st_size in
  Alcotest.(check bool) "a fresh store is quarantined" true
    (Cache.trust ~dir key = Some Cache.Quarantined);
  Cache.set_trust ~dir ~key Cache.Trusted;
  Alcotest.(check bool) "promotion persists" true
    (Cache.trust ~dir key = Some Cache.Trusted);
  Alcotest.(check bool) "format-3 entry still hits" true
    (Cache.lookup ~kind:Cache.So ~dir key <> None);
  (* format 2 (PR 6): no trust line — reads back quarantined *)
  let meta = Filename.concat dir (key ^ ".meta") in
  write_file meta
    (Printf.sprintf "size %d\nkind so\nentry polymage_run\n" size);
  Alcotest.(check bool) "format-2 meta reads quarantined" true
    (Cache.trust ~dir key = Some Cache.Quarantined);
  Alcotest.(check bool) "format-2 entry still hits" true
    (Cache.lookup ~kind:Cache.So ~dir key <> None);
  Alcotest.(check (option string)) "format-2 entry symbol survives"
    (Some "polymage_run")
    (Cache.entry_symbol ~dir key);
  (* an unknown trust value is distrust, not corruption *)
  write_file meta
    (Printf.sprintf "size %d\nkind so\nentry polymage_run\ntrust shady\n"
       size);
  Alcotest.(check bool) "unknown trust value reads quarantined" true
    (Cache.trust ~dir key = Some Cache.Quarantined);
  Alcotest.(check bool) "unknown trust value is not corruption" true
    (Cache.lookup ~kind:Cache.So ~dir key <> None);
  (* a promotion upgrades the file in place to format 3 *)
  Cache.set_trust ~dir ~key Cache.Trusted;
  Alcotest.(check bool) "promotion upgrades an old meta" true
    (Cache.trust ~dir key = Some Cache.Trusted);
  (* format 1 (PR 5): size only — kind exe, entry main *)
  let key2 = String.make 32 'b' in
  let art2 =
    Cache.store ~kind:Cache.Exe ~dir ~key:key2
      ~build:(fun p ->
        write_file p "#!/bin/sh\nexit 0\n";
        Unix.chmod p 0o755)
      ()
  in
  let size2 = (Unix.stat art2).Unix.st_size in
  write_file
    (Filename.concat dir (key2 ^ ".meta"))
    (Printf.sprintf "size %d\n" size2);
  Alcotest.(check bool) "format-1 entry still hits as exe" true
    (Cache.lookup ~kind:Cache.Exe ~dir key2 <> None);
  Alcotest.(check (option string)) "format-1 entry symbol defaults"
    (Some "main")
    (Cache.entry_symbol ~dir key2);
  Alcotest.(check bool) "format-1 meta reads quarantined" true
    (Cache.trust ~dir key2 = Some Cache.Quarantined)

(* ---- Cache: crash markers ---- *)

let crash_markers () =
  let dir = fresh_dir () in
  let key = String.make 32 'c' in
  Alcotest.(check bool) "no marker is not stale" false
    (Cache.stale_marker ~dir key);
  Cache.write_marker ~dir key;
  Alcotest.(check bool) "own live pid is not stale" false
    (Cache.stale_marker ~dir key);
  Cache.clear_marker ~dir key;
  Alcotest.(check bool) "cleared marker is not stale" false
    (Cache.stale_marker ~dir key);
  let marker = Filename.concat dir (key ^ ".inflight") in
  (* a pid that is certainly dead: a child Proc.run already reaped *)
  let r = Proc.run "sh" [ "-c"; "echo $$" ] in
  let dead = int_of_string (String.trim r.Proc.stdout) in
  write_file marker (string_of_int dead ^ "\n");
  Alcotest.(check bool) "a dead owner means a mid-call crash" true
    (Cache.stale_marker ~dir key);
  (* pid 1 is alive (kill 0 says so, or EPERM does): concurrent run *)
  write_file marker "1\n";
  Alcotest.(check bool) "a live owner is a concurrent run" false
    (Cache.stale_marker ~dir key);
  (* an unreadable marker cannot be attributed: distrust *)
  write_file marker "not-a-pid\n";
  Alcotest.(check bool) "garbage marker distrusts" true
    (Cache.stale_marker ~dir key)

(* ---- Cache: cross-process single-flight ---- *)

(* A helper process (plain C, so it can sit on the lock from another
   process — fcntl locks do not exclude within one process) that takes
   the key's advisory lock, signals readiness through a file, and
   holds the lock for a while. *)
let holder_source =
  {|
#include <fcntl.h>
#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>
int main(int argc, char **argv)
{
  if (argc < 4) return 2;
  int fd = open(argv[1], O_RDWR | O_CREAT, 0600);
  if (fd < 0 || lockf(fd, F_LOCK, 0) != 0) return 1;
  FILE *f = fopen(argv[2], "w");
  if (!f) return 1;
  fputs("ready\n", f);
  fclose(f);
  usleep((useconds_t)atoi(argv[3]) * 1000);
  return 0;
}
|}

let build_holder dir =
  let tc = Toolchain.get () in
  let src = Filename.concat dir "holder.c" in
  let exe = Filename.concat dir "holder" in
  write_file src holder_source;
  let r = Proc.run ~timeout_ms:60_000 tc.Toolchain.cc [ "-o"; exe; src ] in
  if r.Proc.status <> 0 then
    Alcotest.failf "cannot build lock holder: %s" r.Proc.stderr;
  exe

(* Start the holder detached (via sh's &) on [key]'s lock file and
   wait until it holds the lock. *)
let start_holder ~holder ~dir ~key ~hold_ms =
  let lock = Filename.concat dir (key ^ ".lock") in
  let ready = Filename.concat dir (key ^ ".ready") in
  let cmd =
    Printf.sprintf "%s %s %s %d >/dev/null 2>&1 &" (Filename.quote holder)
      (Filename.quote lock) (Filename.quote ready) hold_ms
  in
  let r = Proc.run "sh" [ "-c"; cmd ] in
  Alcotest.(check int) "holder launcher exits cleanly" 0 r.Proc.status;
  let rec await n =
    if Sys.file_exists ready then ()
    else if n = 0 then Alcotest.fail "lock holder never became ready"
    else begin
      Unix.sleepf 0.02;
      await (n - 1)
    end
  in
  await 250;
  Sys.remove ready

let single_flight_lock () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    Unix.mkdir dir 0o755;
    let holder = build_holder dir in
    (* another process holds the key's lock: with_flight waits for it *)
    with_metrics (fun () ->
        let key = String.make 32 'd' in
        start_holder ~holder ~dir ~key ~hold_ms:700;
        let t0 = Unix.gettimeofday () in
        let ran = ref false in
        Cache.with_flight ~dir ~key (fun () -> ran := true);
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "the critical section ran" true !ran;
        Alcotest.(check bool) "the waiter actually waited" true
          (elapsed >= 0.2);
        Alcotest.(check bool) "the wait was counted" true
          (Metrics.get "backend/flight_waits" >= 1);
        Alcotest.(check int) "the lock was never declared stale" 0
          (Metrics.get "backend/flight_stale"));
    (* a pathologically slow holder: past the deadline the waiter
       proceeds unlocked rather than wedge *)
    with_metrics (fun () ->
        let key = String.make 32 'e' in
        start_holder ~holder ~dir ~key ~hold_ms:8_000;
        let t0 = Unix.gettimeofday () in
        let ran = ref false in
        Cache.with_flight ~stale_ms:300 ~dir ~key (fun () -> ran := true);
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "the critical section still ran" true !ran;
        Alcotest.(check bool) "the waiter gave up at the deadline" true
          (elapsed < 5.0);
        Alcotest.(check bool) "the stale takeover was counted" true
          (Metrics.get "backend/flight_stale" >= 1))
  end

(* ---- planted hostile artifacts ---- *)

let so_available () =
  Lazy.force have_cc && (Toolchain.get ()).Toolchain.so_flags <> None

(* Plant [evil_source] as a compiled .so under the exact cache key the
   dlopen tier will compute for [plan], quarantined (the default for
   any store), so the first execution goes through the canary. *)
let plant_so ~dir ~(plan : C.Plan.t) evil_source =
  let tc = Toolchain.get () in
  let flags = Toolchain.so_flags_exn tc in
  let key =
    Cache.key ~tag:"" ~cc:tc.Toolchain.cc ~version:tc.Toolchain.version ~flags
      ~source:(Cgen.emit_raw_entry plan)
  in
  ignore
    (Cache.store ~kind:Cache.So ~entry:Cgen.raw_entry_symbol ~dir ~key
       ~build:(fun out ->
         let csrc = Filename.temp_file "pm_evil" ".c" in
         write_file csrc evil_source;
         let r =
           Proc.run ~timeout_ms:60_000 tc.Toolchain.cc
             (Toolchain.split_flags flags
             @ [ "-std=gnu99"; "-o"; out; csrc ])
         in
         Sys.remove csrc;
         if r.Proc.status <> 0 then
           Alcotest.failf "cannot build planted .so: %s" r.Proc.stderr)
       ())

let evil_prelude =
  "#include <stdint.h>\n\
   int polymage_run(int nthreads, const int32_t *params,\n\
  \                 const double *const *ins, double *const *outs,\n\
  \                 const int64_t *out_totals)\n"

let segv_source =
  evil_prelude
  ^ "{ (void)nthreads; (void)params; (void)ins; (void)outs;\n\
    \  (void)out_totals; volatile int *p = 0; return *p; }\n"

let hang_source =
  evil_prelude
  ^ "{ (void)nthreads; (void)params; (void)ins; (void)outs;\n\
    \  (void)out_totals; for (;;) { } return 0; }\n"

let planted_segv_is_contained () =
  if not (so_available ()) then ()
  else begin
    let dir = fresh_dir () in
    (* simd off so plant_so's legacy key matches the backend's *)
    let plan, env, images =
      plan_for
        ~opts:(fun env ->
          C.Options.with_simd C.Options.Simd_off
            (C.Options.opt_vec ~estimates:env ()))
        "harris"
    in
    plant_so ~dir ~plan segv_source;
    with_metrics @@ fun () ->
    let (result, st), degr =
      Exec_tier.run_safe ~cache_dir:dir Exec_tier.C_dlopen plan env ~images
    in
    (* reaching this line at all is the tentpole guarantee: the
       SIGSEGV landed in the canary child, not in this process *)
    (match degr with
    | { Rt.Executor.rung = "c-dlopen"; error } :: _ ->
      Alcotest.(check bool) "the failure names the crash signal" true
        (contains ~needle:"SIGSEGV" (Err.to_string error))
    | _ -> Alcotest.fail "expected a c-dlopen degradation rung");
    Alcotest.(check bool) "the canary absorbed the crash" true
      (Metrics.get "backend/quarantine_failures" >= 1);
    Alcotest.(check int) "a crashing artifact is never promoted" 0
      (Metrics.get "backend/promotions");
    Alcotest.(check int) "a quarantined artifact is never dlopen'd" 0
      (Metrics.get "backend/dl_loads");
    Alcotest.(check bool) "the subprocess tier served the result" true
      (st <> None);
    let native = Rt.Executor.run plan env ~images in
    check_outputs_match ~what:"after planted SIGSEGV" native
      result.Rt.Executor.outputs
  end

let planted_hang_is_contained () =
  if not (so_available ()) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images =
      plan_for
        ~opts:(fun env ->
          C.Options.with_simd C.Options.Simd_off
            (C.Options.with_exec_timeout (Some 1000)
               (C.Options.opt_vec ~estimates:env ())))
        "harris"
    in
    plant_so ~dir ~plan hang_source;
    with_metrics @@ fun () ->
    let (result, st), degr =
      Exec_tier.run_safe ~cache_dir:dir Exec_tier.C_dlopen plan env ~images
    in
    (match degr with
    | { Rt.Executor.rung = "c-dlopen"; error } :: _ ->
      Alcotest.(check bool) "the failure blames the watchdog" true
        (contains ~needle:"watchdog" (Err.to_string error))
    | _ -> Alcotest.fail "expected a c-dlopen degradation rung");
    Alcotest.(check bool) "the hung canary was killed" true
      (Metrics.get "backend/watchdog_kills" >= 1);
    Alcotest.(check bool) "the hang counted against quarantine" true
      (Metrics.get "backend/quarantine_failures" >= 1);
    Alcotest.(check bool) "the subprocess tier served the result" true
      (st <> None);
    let native = Rt.Executor.run plan env ~images in
    check_outputs_match ~what:"after planted hang" native
      result.Rt.Executor.outputs
  end

(* ---- injected faults ---- *)

(* exec_crash / exec_hang fire inside the canary on a cold cache; the
   one-shot fault is consumed there, so the ladder's c-subprocess rung
   (whose exec hits the same sites) succeeds. *)
let fault_in_canary_degrades () =
  if not (so_available ()) then ()
  else
    List.iter
      (fun site ->
        let dir = fresh_dir () in
        let plan, env, images = plan_for "harris" in
        Rt.Fault.arm ~site ~seed:0;
        Fun.protect
          ~finally:(fun () -> Rt.Fault.disarm ())
          (fun () ->
            let (result, st), degr =
              Exec_tier.run_safe ~cache_dir:dir Exec_tier.C_dlopen plan
                env ~images
            in
            Alcotest.(check bool) (site ^ ": the fault fired") true
              (Rt.Fault.fired ());
            (match degr with
            | { Rt.Executor.rung = "c-dlopen"; error } :: _ ->
              Alcotest.(check bool)
                (site ^ ": degradation carries an exec-phase error") true
                (error.Err.phase = Err.Exec)
            | _ ->
              Alcotest.fail (site ^ ": expected a c-dlopen degradation"));
            Alcotest.(check bool)
              (site ^ ": the subprocess tier served the result") true
              (st <> None);
            let native = Rt.Executor.run plan env ~images in
            check_outputs_match ~what:(site ^ " degraded") native
              result.Rt.Executor.outputs))
      [ "exec_crash"; "exec_hang" ]

let fault_compile_flaky_retries () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    with_metrics @@ fun () ->
    Rt.Fault.arm ~site:"compile_flaky" ~seed:0;
    Fun.protect
      ~finally:(fun () -> Rt.Fault.disarm ())
      (fun () ->
        let compiled, (st : Backend.stats) =
          Backend.run ~cache_dir:dir plan env ~images
        in
        Alcotest.(check bool) "the transient failure fired" true
          (Rt.Fault.fired ());
        Alcotest.(check bool) "the compile was retried" true
          (Metrics.get "backend/compile_retries" >= 1);
        Alcotest.(check bool) "retries happen within one build" true
          (Metrics.get "backend/compile_invocations" >= 2);
        Alcotest.(check bool) "the retry still paid a compile" true
          (st.Backend.compile_ms > 0.);
        let native = Rt.Executor.run plan env ~images in
        check_outputs_match ~what:"after flaky compile" native
          compiled.Rt.Executor.outputs)
  end

(* ---- suite ---- *)

let suite =
  ( "robust",
    [
      Alcotest.test_case "proc: signal-killed child is reported" `Quick
        proc_signal_reporting;
      Alcotest.test_case "proc: watchdog kills a hung child" `Quick
        proc_watchdog_kills_hung_child;
      Alcotest.test_case "proc: CPU rlimit backstop" `Quick
        proc_rlimit_cpu;
      Alcotest.test_case "proc: capture cap leaves a marker" `Quick
        proc_capture_truncation;
      Alcotest.test_case "cache: trust across meta formats 1/2/3" `Quick
        meta_format_back_compat;
      Alcotest.test_case "cache: crash marker attribution" `Quick
        crash_markers;
      Alcotest.test_case "cache: cross-process single-flight" `Slow
        single_flight_lock;
      Alcotest.test_case "planted SIGSEGV .so cannot kill the parent"
        `Slow planted_segv_is_contained;
      Alcotest.test_case "planted infinite-loop .so is timed out" `Slow
        planted_hang_is_contained;
      Alcotest.test_case "exec faults in the canary degrade the ladder"
        `Slow fault_in_canary_degrades;
      Alcotest.test_case "transient compile failure is retried" `Slow
        fault_compile_flaky_retries;
    ] )
