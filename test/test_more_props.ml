(* Additional property tests: affine access extraction semantics,
   Abound's linear form, buffer round trips, grouping monotonicity
   with respect to the tile-shape approximation, and app-variant
   equivalences for the parameterized pipelines. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Poly = Polymage_poly
module Apps = Polymage_apps.Apps
open Polymage_dsl.Dsl

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* ---- access extraction: the analyzed form computes the same index
   as the original expression ---- *)

let xv = Types.var ~name:"ax" ()

let access_gen =
  QCheck.Gen.(
    let* num = int_range 1 4 in
    let* den = oneofl [ 1; 2; 4 ] in
    let* off = int_range (-6) 6 in
    (* build floor((num*x + off) / den) syntactically, in two shapes *)
    let* shape = bool in
    let e =
      if den = 1 then (i num *: v xv) +: i off
      else if shape && num = 1 then (v xv +: i off) /^ den
      else ((i num *: v xv) +: i off) /^ den
    in
    return (num, den, off, e))

let floor_div = Polymage_util.Intmath.floor_div

let access_semantics =
  prop "access extraction computes floor((n*x+o)/d)" 300
    (QCheck.make
       ~print:(fun ((n, d, o, e), x) ->
         Printf.sprintf "n=%d d=%d o=%d x=%d e=%s" n d o x (Expr.to_string e))
       QCheck.Gen.(pair access_gen (int_range (-20) 20)))
    (fun ((_, _, _, e), x) ->
      match Poly.Access.of_expr e with
      | Poly.Access.Dynamic -> false
      | Poly.Access.Affine a ->
        let expected =
          Expr.eval
            ~var:(fun _ -> float_of_int x)
            ~param:(fun _ -> assert false)
            ~call:(fun _ _ -> assert false)
            ~img:(fun _ _ -> assert false)
            e
        in
        let got =
          match a.v with
          | None -> floor_div a.off a.den
          | Some _ -> floor_div ((a.num * x) + a.off) a.den
        in
        float_of_int got = expected)

(* ---- Abound.to_linear agrees with eval ---- *)

let ab_param = Types.param ~name:"abp" ()
let ab_param2 = Types.param ~name:"abq" ()

let abound_gen =
  QCheck.Gen.(
    let* c = int_range (-20) 20 in
    let* k1 = int_range (-4) 4 in
    let* k2 = int_range (-4) 4 in
    let* d = oneofl [ 1; 2; 3; 4; 8 ] in
    let b =
      Abound.add
        (Abound.add (Abound.const c)
           (Abound.scale
              (Polymage_util.Rational.make k1 d)
              (Abound.of_param ab_param)))
        (Abound.scale
           (Polymage_util.Rational.make k2 d)
           (Abound.of_param ab_param2))
    in
    return b)

let abound_linear =
  prop "to_linear is floor((c + sum k_i p_i) / den)" 300
    (QCheck.make
       ~print:(fun (b, (p1, p2)) ->
         Format.asprintf "%a @@ (%d,%d)" Abound.pp b p1 p2)
       QCheck.Gen.(pair abound_gen (pair (int_range 0 40) (int_range 0 40))))
    (fun (b, (p1, p2)) ->
      let env = [ (ab_param, p1); (ab_param2, p2) ] in
      let cst, terms, den = Abound.to_linear b in
      let num =
        List.fold_left
          (fun acc (p, k) -> acc + (k * Types.bind_exn env p))
          cst terms
      in
      floor_div num den = Abound.eval b env)

(* ---- buffer round trips ---- *)

let buffer_roundtrip =
  prop "buffer set/get round trip" 200
    (QCheck.make
       QCheck.Gen.(
         let* r = int_range 1 6 and* c = int_range 1 6 in
         let* lr = int_range (-3) 3 and* lc = int_range (-3) 3 in
         let* pts =
           list_size (int_range 1 20)
             (triple (int_range 0 (r - 1)) (int_range 0 (c - 1))
                (map float_of_int (int_range (-100) 100)))
         in
         return (r, c, lr, lc, pts)))
    (fun (r, c, lr, lc, pts) ->
      let b = Rt.Buffer.create ~lo:[| lr; lc |] ~dims:[| r; c |] in
      List.iter
        (fun (x, y, v) -> Rt.Buffer.set b [| lr + x; lc + y |] v)
        pts;
      (* last write per coordinate wins *)
      let expect = Hashtbl.create 8 in
      List.iter (fun (x, y, v) -> Hashtbl.replace expect (x, y) v) pts;
      Hashtbl.fold
        (fun (x, y) v acc ->
          acc && Rt.Buffer.get b [| lr + x; lc + y |] = v)
        expect true)

(* ---- grouping: over-approximated shapes merge no more than tight ---- *)

let naive_overlap_merges_less () =
  List.iter
    (fun name ->
      let app = Apps.find name in
      let env = app.small_env in
      let pipe = Pipeline.build ~outputs:app.outputs in
      let pipe, _ = C.Inline.run pipe in
      let groups_of naive =
        let cfg =
          { (C.Grouping.default_config ~estimates:env) with
            C.Grouping.naive_overlap = naive }
        in
        Array.length (C.Grouping.run pipe cfg).groups
      in
      Alcotest.(check bool)
        (name ^ ": naive shapes => at least as many groups")
        true
        (groups_of true >= groups_of false))
    [ "harris"; "pyramid_blend"; "local_laplacian" ]

(* ---- parameterized app variants stay correct ---- *)

let variant_equiv build name =
  let app : Polymage_apps.App.t = build () in
  let env = app.small_env in
  let _, r1 = Helpers.run_app app (C.Options.base ~estimates:env ()) env in
  let _, r2 =
    Helpers.run_app app
      (C.Options.with_tile [| 8; 16 |] (C.Options.opt_vec ~estimates:env ()))
      env
  in
  Helpers.check_buffers_equal ~eps:1e-9 name (Helpers.output_of app r1)
    (Helpers.output_of app r2)

let variants () =
  variant_equiv (fun () -> Polymage_apps.Pyramid.build ~levels:3 ()) "pyramid L3";
  variant_equiv (fun () -> Polymage_apps.Pyramid.build ~levels:5 ()) "pyramid L5";
  variant_equiv
    (fun () -> Polymage_apps.Interpolate.build ~levels:3 ())
    "interpolate L3";
  variant_equiv
    (fun () -> Polymage_apps.Laplacian.build ~k_levels:3 ~j_levels:3 ())
    "laplacian K3 J3";
  variant_equiv
    (fun () -> Polymage_apps.Laplacian.build ~k_levels:2 ~j_levels:5 ())
    "laplacian K2 J5"

(* ---- storage scales with tile size, not image size ---- *)

let scratch_scaling () =
  let app = Apps.find "harris" in
  let small = app.small_env in
  let big = List.map (fun (p, v) -> (p, v * 4)) small in
  let opts = C.Options.opt ~estimates:small () in
  let scratch env =
    (C.Storage.stats (C.Compile.run opts ~outputs:app.outputs) env)
      .C.Storage.scratch_cells
  in
  (* the y-tile dominates the scratch extent; quadrupling the image
     must grow scratch by far less than 16x (it is tile-bound) *)
  let s_small = scratch small and s_big = scratch big in
  Alcotest.(check bool) "scratch is tile-bound" true
    (s_big <= s_small * 6);
  let full env =
    (C.Storage.stats (C.Compile.run opts ~outputs:app.outputs) env)
      .C.Storage.full_cells
  in
  Alcotest.(check bool) "full buffers are image-bound" true
    (full big >= full small * 10)

let suite =
  ( "more-properties",
    [
      access_semantics;
      abound_linear;
      buffer_roundtrip;
      Alcotest.test_case "naive overlap merges less" `Quick
        naive_overlap_merges_less;
      Alcotest.test_case "parameterized app variants" `Slow variants;
      Alcotest.test_case "scratch scales with tiles" `Quick scratch_scaling;
    ] )

(* The paper: "The generated pipeline is optimized for the parameter
   values around the estimates.  However, the implementation is valid
   for all parameter sizes."  Compile with deliberately wrong
   estimates and run at very different sizes. *)
let wrong_estimates_still_correct () =
  List.iter
    (fun name ->
      let app = Apps.find name in
      let run_env = app.small_env in
      (* estimates an order of magnitude off, in both directions *)
      List.iter
        (fun factor ->
          let est =
            List.map
              (fun (p, v) -> (p, max 16 (v * factor / 4)))
              app.small_env
          in
          let opts = C.Options.opt_vec ~estimates:est () in
          let _, r1 = Helpers.run_app app opts run_env in
          let _, r2 =
            Helpers.run_app app (C.Options.base ~estimates:run_env ()) run_env
          in
          Helpers.check_buffers_equal ~eps:1e-9
            (Printf.sprintf "%s estimates x%d/4" name factor)
            (Helpers.output_of app r2) (Helpers.output_of app r1))
        [ 1; 40 ])
    [ "harris"; "pyramid_blend" ]

(* Failure injection: an input buffer with the wrong extents must be
   caught (safe mode reports the out-of-window access). *)
let wrong_image_extent_detected () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts = C.Options.opt ~estimates:env () in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let im = List.hd plan.pipe.Pipeline.images in
  (* too small by half in each dimension *)
  let bad =
    Rt.Buffer.create ~lo:[| 0; 0 |] ~dims:[| 40; 30 |]
  in
  match Rt.Executor.run plan env ~images:[ (im, bad) ] with
  | exception Polymage_util.Err.Polymage_error _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized input must be detected"

(* Compile.phases runs the verbose pipeline (Fig. 4) without error and
   narrates every phase. *)
let phases_smoke () =
  let app = Apps.find "unsharp_mask" in
  let buf = Stdlib.Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let opts = C.Options.opt ~estimates:app.small_env () in
  let plan = C.Compile.phases ppf opts ~outputs:app.outputs in
  Format.pp_print_flush ppf ();
  let s = Stdlib.Buffer.contents buf in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (let lh = String.length s and ln = String.length needle in
         let rec go i =
           i + ln <= lh && (String.sub s i ln = needle || go (i + 1))
         in
         go 0))
    [ "stage graph"; "bounds check"; "grouping"; "storage" ];
  Alcotest.(check bool) "plan produced" true (Array.length plan.items > 0)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "valid for all parameter sizes" `Slow
          wrong_estimates_still_correct;
        Alcotest.test_case "wrong image extents detected" `Quick
          wrong_image_extent_detected;
        Alcotest.test_case "compiler phases narration" `Quick phases_smoke;
      ] )
